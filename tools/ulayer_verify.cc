// ulayer_verify: run the static Graph/Plan verifiers from the command line.
//
// Verifies a model (zoo name or ulayer-graph text file) and a plan (the
// partitioner's, a single-processor baseline's, or a ulayer-plan text file)
// and prints every diagnostic to stderr (stdout carries only the --print-plan
// dump, so it pipes cleanly). Exit status: 0 when clean (warnings allowed),
// 1 when any error-severity diagnostic fired, 2 on usage/parse problems.
//
// Examples:
//   ulayer_verify --model vgg16
//   ulayer_verify --model googlenet --soc 7880 --config pf
//   ulayer_verify --graph net.graph --plan net.plan --config qu8
//   ulayer_verify --model mobilenet --single gpu --print-plan
//   ulayer_verify --model googlenet --faults "gpu.kernel@call:3=device-lost"

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "baselines/baselines.h"
#include "common/error.h"
#include "core/executor.h"
#include "core/partitioner.h"
#include "core/predictor.h"
#include "core/runtime.h"
#include "fault/fault.h"
#include "io/io.h"
#include "models/model.h"
#include "net/coordinator.h"
#include "serve/request.h"
#include "serve/server.h"
#include "soc/timing.h"
#include "trace/chrome.h"
#include "trace/metrics.h"
#include "verify/verify.h"

namespace {

using namespace ulayer;

constexpr const char* kUsage = R"(usage: ulayer_verify [options]

Model selection (one of):
  --model <name>    zoo model: lenet5 alexnet vgg16 googlenet squeezenet
                    mobilenet resnet18 resnet50 inceptionv3
  --graph <file>    ulayer-graph v1 text file (see GraphToText)

Plan selection (default: the partitioner's plan):
  --plan <file>     ulayer-plan v1 text file (see PlanToText)
  --single cpu|gpu  single-processor baseline plan
  --l2p             layer-to-processor baseline plan

Options:
  --soc 7420|7880   SoC preset the plan targets (default 7420)
  --config f32|f16|qu8|pf
                    execution config (default f32; pf = processor-friendly)
  --threads <n>     CPU thread budget assumed for simulated CPU kernel time
                    (default 0 = full CPU cluster; functional runs also honor
                    the ULAYER_CPU_THREADS environment variable)
  --print-plan      dump the plan being verified (ulayer-plan v1)
  --graph-only      verify the graph and stop (no plan)
  --analyze         additionally run the static memory-access analyzer
                    (src/analysis, A5xx/A6xx/A7xx codes): packs the
                    activation pool exactly as the executor would and proves
                    race/liveness/chunking invariants of this plan over it.
                    Weight-free — works on bare zoo graphs
  --faults <spec>   after verifying, run a timing-only simulation with this
                    fault-injection spec (fault/fault.h grammar, same as the
                    ULAYER_FAULTS environment variable) and print the
                    resulting DegradationReport to stdout. Examples:
                      gpu.kernel@call:3=enqueue-failed
                      seed=42;gpu.any@prob:0.1=timeout:500
                      gpu.kernel=slow:2.5
  --trace-out <file>
                    run a traced timing-only simulation (composes with
                    --faults), check the trace invariants (T4xx codes) and
                    write Chrome trace-event JSON to <file> — loadable in
                    Perfetto (ui.perfetto.dev) or chrome://tracing
  --metrics         as above, but aggregate three runs into a metrics
                    registry and print it plus the predicted-vs-simulated
                    drift table to stdout
  --metrics-out <file>
                    like --metrics, writing the registry as JSON to <file>
  --serve-smoke     ignore model/plan flags and run a small functional
                    serving smoke: a deterministic LeNet-5 request trace
                    through the multi-tenant server (src/serve), printing the
                    batch log and per-request completion log (with FNV-1a
                    output digests) to stdout. The output is byte-identical
                    at any ULAYER_CPU_THREADS value — CI diffs two runs
  --net-smoke       ignore plan flags and run a functional distributed smoke
                    over a simulated cluster (src/net): partition --model
                    (default lenet5) across --net-nodes workers, execute
                    through the fault-tolerant coordinator (composes with
                    --faults: net.link / net.worker rules inject drops,
                    delays, partitions and worker deaths), check the N-series
                    run invariants (N8xx codes) and print the run summary,
                    degradation report and FNV-1a output digest to stdout.
                    The digest line is byte-identical at any node count,
                    thread count or recoverable fault spec — CI diffs them
  --net-nodes <n>   worker count for --net-smoke (default 2)
  --adapt           ignore plan flags and run the closed adaptation loop
                    (timing-only) over a committed throttle ramp: 4 clean
                    baseline runs, 6 runs under the --faults spec (default
                    gpu.kernel=slow:2.5), 8 clean recovery runs. Drives an
                    adaptive runtime (drift-fed predictor corrections +
                    health-keyed plan cache) against a static one pinned to
                    its profile-time plan, prints per-run latencies, the
                    correction table, plan-cache statistics and the H-series
                    verdicts (H9xx codes). The output is byte-identical at
                    any ULAYER_CPU_THREADS value — CI diffs two runs
  -h, --help        this text
)";

[[noreturn]] void UsageError(const std::string& msg) {
  std::cerr << "ulayer_verify: " << msg << "\n\n" << kUsage;
  std::exit(2);
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    UsageError("cannot open '" + path + "'");
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

Model MakeZooModel(const std::string& name) {
  if (name == "lenet5") return MakeLeNet5();
  if (name == "alexnet") return MakeAlexNet();
  if (name == "vgg16") return MakeVgg16();
  if (name == "googlenet") return MakeGoogLeNet();
  if (name == "squeezenet") return MakeSqueezeNetV11();
  if (name == "mobilenet") return MakeMobileNetV1();
  if (name == "resnet18") return MakeResNet18();
  if (name == "resnet50") return MakeResNet50();
  if (name == "inceptionv3") return MakeInceptionV3();
  UsageError("unknown model '" + name + "'");
}

ExecConfig MakeConfig(const std::string& name) {
  if (name == "f32") return ExecConfig::AllF32();
  if (name == "f16") return ExecConfig::AllF16();
  if (name == "qu8") return ExecConfig::AllQU8();
  if (name == "pf") return ExecConfig::ProcessorFriendly();
  UsageError("unknown config '" + name + "' (want f32|f16|qu8|pf)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_name;
  std::string graph_path;
  std::string plan_path;
  std::string single_proc;
  std::string soc_name = "7420";
  std::string config_name = "f32";
  std::string faults_spec;
  bool run_faults = false;
  std::string trace_out;
  std::string metrics_out;
  bool metrics = false;
  int cpu_threads = 0;
  bool l2p = false;
  bool print_plan = false;
  bool graph_only = false;
  bool analyze = false;
  bool serve_smoke = false;
  bool net_smoke = false;
  bool adapt_smoke = false;
  int net_nodes = 2;

  auto next_arg = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      UsageError(std::string(flag) + " needs a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--model") {
      model_name = next_arg(i, "--model");
    } else if (a == "--graph") {
      graph_path = next_arg(i, "--graph");
    } else if (a == "--plan") {
      plan_path = next_arg(i, "--plan");
    } else if (a == "--single") {
      single_proc = next_arg(i, "--single");
    } else if (a == "--l2p") {
      l2p = true;
    } else if (a == "--soc") {
      soc_name = next_arg(i, "--soc");
    } else if (a == "--config") {
      config_name = next_arg(i, "--config");
    } else if (a == "--threads") {
      try {
        cpu_threads = std::stoi(next_arg(i, "--threads"));
      } catch (const std::exception&) {
        UsageError("--threads wants an integer");
      }
      if (cpu_threads < 0) {
        UsageError("--threads wants a non-negative integer");
      }
    } else if (a == "--faults") {
      faults_spec = next_arg(i, "--faults");
      run_faults = true;
    } else if (a.rfind("--faults=", 0) == 0) {
      faults_spec = a.substr(std::string("--faults=").size());
      run_faults = true;
    } else if (a == "--trace-out") {
      trace_out = next_arg(i, "--trace-out");
    } else if (a.rfind("--trace-out=", 0) == 0) {
      trace_out = a.substr(std::string("--trace-out=").size());
    } else if (a == "--metrics") {
      metrics = true;
    } else if (a == "--metrics-out") {
      metrics_out = next_arg(i, "--metrics-out");
    } else if (a.rfind("--metrics-out=", 0) == 0) {
      metrics_out = a.substr(std::string("--metrics-out=").size());
    } else if (a == "--print-plan") {
      print_plan = true;
    } else if (a == "--graph-only") {
      graph_only = true;
    } else if (a == "--analyze") {
      analyze = true;
    } else if (a == "--serve-smoke") {
      serve_smoke = true;
    } else if (a == "--net-smoke") {
      net_smoke = true;
    } else if (a == "--adapt") {
      adapt_smoke = true;
    } else if (a == "--net-nodes") {
      try {
        net_nodes = std::stoi(next_arg(i, "--net-nodes"));
      } catch (const std::exception&) {
        UsageError("--net-nodes wants an integer");
      }
      if (net_nodes <= 0) {
        UsageError("--net-nodes wants a positive integer");
      }
    } else if (a == "-h" || a == "--help") {
      std::cout << kUsage;
      return 0;
    } else {
      UsageError("unknown argument '" + a + "'");
    }
  }
  // --- Serving smoke (--serve-smoke) -----------------------------------------
  if (serve_smoke) {
    ExecConfig config = MakeConfig(config_name);
    config.cpu_threads = cpu_threads;
    SocSpec soc;
    if (soc_name == "7420") {
      soc = MakeExynos7420();
    } else if (soc_name == "7880") {
      soc = MakeExynos7880();
    } else {
      UsageError("unknown SoC '" + soc_name + "' (want 7420|7880)");
    }
    try {
      serve::ServerOptions opts;
      opts.cache.batch_sizes = {1, 2, 4};
      opts.cache.lanes = 2;
      opts.cache.functional = true;  // Real tensor math -> output digests.
      opts.queue_capacity = 16;
      serve::Server server(soc, config, opts);
      server.RegisterModel("lenet5");
      if (run_faults) {
        server.SetFaultPlan(fault::FaultPlan::Parse(faults_spec));
      }
      serve::TraceSpec spec;
      spec.seed = 7;
      spec.num_requests = 24;
      spec.models = {"lenet5"};
      spec.sessions = 4;
      // 4x the batch=1 saturation rate with tight interactive deadlines:
      // forces multi-request batches and some shedding, so the smoke
      // exercises both outcome paths.
      const double service1 = server.cache().ServiceUs("lenet5", 1);
      spec.duration_us = 24.0 * service1 / 4.0;
      spec.interactive_deadline_us = 5.0 * service1;
      spec.batch_deadline_us = 25.0 * service1;
      const serve::ServeReport rep = server.Run(serve::GenerateTrace(spec));
      std::cout << rep.BatchLog() << rep.CompletionLog();
      std::cout << "serve-smoke lenet5 (soc " << soc.name << ", config " << config_name
                << "): completed " << rep.completed << ", shed " << rep.shed
                << ", deadline-met " << rep.deadline_met << ", mean batch "
                << rep.MeanBatchSize() << "\n";
      return 0;
    } catch (const Error& e) {
      std::cerr << "ulayer_verify: serve-smoke failed (" << ErrorCodeName(e.code())
                << "): " << e.what() << "\n";
      return 1;
    }
  }

  // --- Distributed smoke (--net-smoke) ---------------------------------------
  if (net_smoke) {
    ExecConfig config = MakeConfig(config_name);
    config.cpu_threads = cpu_threads;
    fault::FaultPlan fault_plan;
    if (run_faults) {
      try {
        fault_plan = fault::FaultPlan::Parse(faults_spec);
      } catch (const Error& e) {
        std::cerr << "ulayer_verify: bad --faults spec: " << e.what() << "\n";
        return 2;
      }
    }
    try {
      Model model = MakeZooModel(model_name.empty() ? "lenet5" : model_name);
      model.MaterializeWeights();
      PreparedModel prepared(model, config);
      if (config.storage == DType::kQUInt8) {
        std::vector<Tensor> calib;
        for (int i = 0; i < 2; ++i) {
          Tensor t(model.graph.node(0).out_shape, DType::kF32);
          FillUniform(t, 0xca11 + static_cast<uint64_t>(i));
          calib.push_back(std::move(t));
        }
        prepared.Calibrate(calib);
      }
      const net::ClusterSpec cluster = net::MakeUniformCluster(net_nodes);
      const net::NetPartitioner partitioner(model.graph, cluster);
      // The even plan guarantees every worker participates on every
      // splittable layer — the latency-optimal plan may keep a small model
      // local, which would leave the fault machinery unexercised.
      const net::NetPlan plan = net::MakeEvenPlan(model.graph, net_nodes);
      net::Coordinator coord(prepared, cluster);
      if (run_faults) {
        coord.SetFaultPlan(std::move(fault_plan));
      }
      Tensor input(model.graph.node(0).out_shape, DType::kF32);
      FillUniform(input, 0x5eed);
      const net::NetRunResult r = coord.Run(plan, &input);

      const Report net_report = net::VerifyNetRun(model.graph, cluster, r);
      std::cerr << "net (" << model.name << ", " << net_nodes << " nodes, config "
                << config_name << "): " << r.messages.size() << " messages, "
                << net_report.error_count() << " errors, " << net_report.warning_count()
                << " warnings\n";
      if (!net_report.diagnostics().empty()) {
        std::cerr << net_report.ToString();
      }
      if (!net_report.ok()) {
        return 1;
      }

      // The digest line intentionally omits node count / latency: CI diffs it
      // verbatim across --net-nodes values, thread counts and fault specs.
      std::ostringstream digest;
      digest << std::hex << r.output_digest;
      std::cout << "net-smoke " << model.name << " (config " << config_name
                << "): digest 0x" << digest.str() << "\n";
      std::cout << "net-smoke " << net_nodes << " nodes: latency " << r.latency_us
                << " us, " << r.wire_messages << " messages, " << r.wire_bytes
                << " wire bytes\n";
      std::cout << plan.ToString() << "\n" << r.degradation.ToString() << "\n";

      if (metrics || !metrics_out.empty()) {
        trace::MetricsRegistry registry;
        net::AddNetRun(registry, r);
        if (metrics) {
          std::cout << registry.ToString();
        }
        if (!metrics_out.empty()) {
          std::ofstream f(metrics_out);
          if (!f) {
            UsageError("cannot write '" + metrics_out + "'");
          }
          f << registry.ToJson();
          std::cerr << "metrics written to " << metrics_out << "\n";
        }
      }

      // Throughput-oriented pipeline partitioning over the same cluster
      // (timing-only, fault-free by contract).
      const net::NetPlan pipe = partitioner.BuildPipeline(net_nodes);
      const net::PipelineResult pr = coord.RunPipeline(pipe, 8);
      std::cout << "net-pipeline " << pipe.stage_worker.size() << " stages, " << pr.items
                << " items: makespan " << pr.makespan_us << " us, bottleneck "
                << pr.bottleneck_us << " us, throughput " << pr.throughput_per_s
                << "/s\n";
      return 0;
    } catch (const Error& e) {
      std::cerr << "ulayer_verify: net-smoke failed (" << ErrorCodeName(e.code())
                << "): " << e.what() << "\n";
      return 1;
    }
  }

  // --- Adaptation loop smoke (--adapt) ---------------------------------------
  if (adapt_smoke) {
    ExecConfig config = MakeConfig(config_name);
    config.cpu_threads = cpu_threads;
    SocSpec soc;
    if (soc_name == "7420") {
      soc = MakeExynos7420();
    } else if (soc_name == "7880") {
      soc = MakeExynos7880();
    } else {
      UsageError("unknown SoC '" + soc_name + "' (want 7420|7880)");
    }
    const std::string spec = run_faults ? faults_spec : "gpu.kernel=slow:2.5";
    fault::FaultPlan throttle;
    try {
      throttle = fault::FaultPlan::Parse(spec);
    } catch (const Error& e) {
      std::cerr << "ulayer_verify: bad --faults spec: " << e.what() << "\n";
      return 2;
    }
    try {
      const Model model = MakeZooModel(model_name.empty() ? "googlenet" : model_name);
      ULayerRuntime::Options aopts;
      aopts.config = config;
      aopts.adapt.enabled = true;
      ULayerRuntime adaptive(model, soc, aopts);
      ULayerRuntime::Options sopts;
      sopts.config = config;
      sopts.degradation_replan = false;
      ULayerRuntime static_rt(model, soc, sopts);
      const std::string baseline_plan = PlanToText(adaptive.plan(), model.graph);

      std::cout << "adapt " << model.name << " (soc " << soc.name << ", config "
                << config_name << "): throttle spec \"" << spec << "\"\n";
      const auto phase = [&](const char* name, const fault::FaultPlan& plan, int runs) {
        adaptive.SetFaultPlan(plan);
        static_rt.SetFaultPlan(plan);
        for (int i = 0; i < runs; ++i) {
          char line[160];
          const double a = adaptive.Run().latency_us;
          const double s = static_rt.Run().latency_us;
          std::snprintf(line, sizeof(line),
                        "  %-8s run %d: adaptive %12.1f us  static %12.1f us  dev %.4f  %s",
                        name, i, a, s, adaptive.last_relative_deviation(),
                        std::string(RunModeName(adaptive.mode())).c_str());
          std::cout << line << "\n";
        }
      };
      phase("baseline", fault::FaultPlan(), 4);
      const size_t throttle_begin = adaptive.drift_history().size();
      phase("throttle", throttle, 6);
      const size_t throttle_end = adaptive.drift_history().size();
      phase("recovery", fault::FaultPlan(), 8);

      std::cout << "correction table:\n" << adaptive.predictor().corrections().ToString()
                << "\n";
      const PlanCacheStats cs = adaptive.plan_cache().stats();
      std::cout << "plan cache: " << cs.hits << " hits, " << cs.misses << " misses, "
                << cs.insertions << " insertions, " << cs.evictions << " evictions; "
                << adaptive.partitioner_builds() << " partitioner builds, "
                << adaptive.replans() << " replans\n";
      std::cout << "plan restored to baseline: "
                << (PlanToText(adaptive.plan(), model.graph) == baseline_plan ? "yes" : "no")
                << "\n";

      Report report = VerifyCorrectionTable(adaptive.predictor().corrections());
      report.Merge(VerifyPlanCache(model.graph, adaptive.plan_cache(), adaptive.config()));
      const std::vector<double> throttle_devs(
          adaptive.drift_history().begin() + static_cast<long>(throttle_begin),
          adaptive.drift_history().begin() + static_cast<long>(throttle_end));
      report.Merge(VerifyDriftConvergence(throttle_devs, 0.05));
      std::cerr << "adapt (" << model.name << ", config " << config_name
                << "): " << report.error_count() << " errors, " << report.warning_count()
                << " warnings\n";
      if (!report.diagnostics().empty()) {
        std::cerr << report.ToString();
      }
      return report.ok() ? 0 : 1;
    } catch (const Error& e) {
      std::cerr << "ulayer_verify: adapt smoke failed (" << ErrorCodeName(e.code())
                << "): " << e.what() << "\n";
      return 1;
    }
  }

  if (model_name.empty() == graph_path.empty()) {
    UsageError("pick exactly one of --model / --graph");
  }
  if (static_cast<int>(!plan_path.empty()) + static_cast<int>(!single_proc.empty()) +
          static_cast<int>(l2p) >
      1) {
    UsageError("pick at most one of --plan / --single / --l2p");
  }

  ExecConfig config = MakeConfig(config_name);
  config.cpu_threads = cpu_threads;
  SocSpec soc;
  if (soc_name == "7420") {
    soc = MakeExynos7420();
  } else if (soc_name == "7880") {
    soc = MakeExynos7880();
  } else {
    UsageError("unknown SoC '" + soc_name + "' (want 7420|7880)");
  }

  // --- Graph -----------------------------------------------------------------
  Model model;
  std::string source;
  if (!model_name.empty()) {
    model = MakeZooModel(model_name);
    source = model.name;
  } else {
    try {
      model.graph = GraphFromText(ReadFile(graph_path));
    } catch (const ParseError& e) {
      std::cerr << "ulayer_verify: parse error in '" << graph_path << "': " << e.what() << "\n";
      return 2;
    }
    model.name = source = graph_path;
  }

  const Report graph_report = VerifyGraph(model.graph);
  std::cerr << "graph " << source << ": " << model.graph.size() << " nodes, "
            << graph_report.error_count() << " errors, " << graph_report.warning_count()
            << " warnings\n";
  if (!graph_report.diagnostics().empty()) {
    std::cerr << graph_report.ToString();
  }
  if (graph_only) {
    return graph_report.ok() ? 0 : 1;
  }
  if (!graph_report.ok()) {
    // A broken graph makes plan diagnostics unreliable; stop here.
    return 1;
  }

  // --- Plan ------------------------------------------------------------------
  const TimingModel timing(soc);
  Plan plan;
  std::string plan_source;
  if (!plan_path.empty()) {
    try {
      plan = PlanFromText(ReadFile(plan_path), model.graph);
    } catch (const ParseError& e) {
      std::cerr << "ulayer_verify: parse error in '" << plan_path << "': " << e.what() << "\n";
      return 2;
    }
    plan_source = plan_path;
  } else if (!single_proc.empty()) {
    if (single_proc != "cpu" && single_proc != "gpu") {
      UsageError("--single wants cpu|gpu");
    }
    plan = MakeSingleProcessorPlan(model.graph,
                                   single_proc == "cpu" ? ProcKind::kCpu : ProcKind::kGpu);
    plan_source = "single-" + single_proc;
  } else {
    const LatencyPredictor predictor(timing, config, {&model.graph});
    if (l2p) {
      plan = MakeLayerToProcessorPlan(model.graph, timing, config, predictor);
      plan_source = "layer-to-processor";
    } else {
      plan = Partitioner(model.graph, timing, config, predictor).Build();
      plan_source = "partitioner";
    }
  }

  if (print_plan) {
    std::cout << PlanToText(plan, model.graph);
  }

  const Report plan_report = VerifyPlan(model.graph, plan, config);
  std::cerr << "plan " << plan_source << " (soc " << soc.name << ", config " << config_name
            << "): " << plan_report.error_count() << " errors, " << plan_report.warning_count()
            << " warnings\n";
  if (!plan_report.diagnostics().empty()) {
    std::cerr << plan_report.ToString();
  }
  if (!plan_report.ok()) {
    return 1;
  }

  // --- Static memory-access analysis (--analyze) -----------------------------
  if (analyze) {
    try {
      const PreparedModel prepared(model, config);
      const Report analysis_report = analysis::AnalyzePlan(prepared, plan);
      std::cerr << "analysis " << source << " (plan " << plan_source << ", config "
                << config_name << "): " << analysis_report.error_count() << " errors, "
                << analysis_report.warning_count() << " warnings\n";
      if (!analysis_report.diagnostics().empty()) {
        std::cerr << analysis_report.ToString();
      }
      if (!analysis_report.ok()) {
        return 1;
      }
    } catch (const Error& e) {
      std::cerr << "ulayer_verify: analysis failed (" << ErrorCodeName(e.code())
                << "): " << e.what() << "\n";
      return 1;
    }
  }

  // --- Simulation (--faults / --trace-out / --metrics) -----------------------
  const bool want_trace = !trace_out.empty() || metrics || !metrics_out.empty();
  if (run_faults || want_trace) {
    fault::FaultPlan fault_plan;
    if (run_faults) {
      try {
        fault_plan = fault::FaultPlan::Parse(faults_spec);
      } catch (const Error& e) {
        std::cerr << "ulayer_verify: bad --faults spec: " << e.what() << "\n";
        return 2;
      }
    }
    try {
      config.trace = want_trace;
      PreparedModel prepared(model, config);
      Executor executor(prepared, soc);
      if (run_faults) {
        executor.SetFaultPlan(std::move(fault_plan));
      }
      RunResult r = executor.Run(plan);
      if (run_faults) {
        std::cout << "fault simulation (" << source << ", plan " << plan_source << ", soc "
                  << soc.name << "): latency " << r.latency_us << " us\n"
                  << r.degradation.ToString();
      }
      if (want_trace) {
        const Report trace_report = VerifyRunTrace(r.run_trace);
        std::cerr << "trace (" << source << ", plan " << plan_source << "): "
                  << r.run_trace.spans.size() << " spans, " << trace_report.error_count()
                  << " errors, " << trace_report.warning_count() << " warnings\n";
        if (!trace_report.diagnostics().empty()) {
          std::cerr << trace_report.ToString();
        }
        if (!trace_report.ok()) {
          return 1;
        }
        if (!trace_out.empty()) {
          trace::ChromeExportOptions opts;
          opts.graph = &model.graph;
          opts.model = source;
          opts.soc = soc.name;
          opts.config = config_name;
          std::ofstream f(trace_out);
          if (!f) {
            UsageError("cannot write '" + trace_out + "'");
          }
          f << trace::ChromeTraceJson(r.run_trace, opts);
          std::cerr << "trace written to " << trace_out << "\n";
        }
        if (metrics || !metrics_out.empty()) {
          // Aggregate three runs — deterministic simulation, so the spread is
          // zero, but the reuse path (RunInto) is the one CI exercises.
          trace::MetricsRegistry registry;
          registry.AddRun(r.run_trace);
          for (int i = 0; i < 2; ++i) {
            executor.RunInto(plan, nullptr, r);
            registry.AddRun(r.run_trace);
          }
          if (metrics) {
            std::cout << registry.ToString();
            std::cout << trace::BuildDriftReport(r.run_trace).ToString(&model.graph);
          }
          if (!metrics_out.empty()) {
            std::ofstream f(metrics_out);
            if (!f) {
              UsageError("cannot write '" + metrics_out + "'");
            }
            f << registry.ToJson();
            std::cerr << "metrics written to " << metrics_out << "\n";
          }
        }
      }
    } catch (const Error& e) {
      std::cerr << "ulayer_verify: simulation failed ("
                << ErrorCodeName(e.code()) << "): " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}
