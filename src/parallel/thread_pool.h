// Persistent CPU thread pool and the ParallelFor helper the functional
// kernels use to spread work across the host cores (the paper's CPU numbers
// assume all four big cores of the SoC, Section 6 / Table 2).
//
// Determinism contract: ParallelFor splits [begin, end) into fixed chunks of
// `grain` iterations. The chunk boundaries depend only on (begin, end,
// grain) — never on the thread count — and every chunk is executed exactly
// once, so a kernel whose per-iteration work is independent produces
// byte-identical output for any thread budget, including 1 (see DESIGN.md
// "Parallel execution model").
//
// Thread budget resolution (strongest wins):
//   1. SetCpuThreads(n > 0)       — explicit, e.g. from ExecConfig::cpu_threads
//   2. ULAYER_CPU_THREADS env var — tools/bench override, parsed once
//   3. std::thread::hardware_concurrency()
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ulayer::parallel {

// Non-owning callable reference. Unlike std::function it never heap-allocates
// (one context pointer + one trampoline), which is what keeps steady-state
// ParallelFor dispatch allocation-free (DESIGN.md Section 9). The referenced
// callable must outlive every invocation — ParallelFor/ThreadPool::Run only
// invoke it while the caller is blocked inside the call, so passing a
// temporary lambda at the call site is safe.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FunctionRef>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
  FunctionRef(F&& f)
      : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* ctx, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(ctx))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(ctx_, std::forward<Args>(args)...); }
  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* ctx_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

// Pins the process-wide CPU thread budget. `n > 0` forces exactly n
// participating threads (the calling thread counts as one); `n == 0`
// restores the automatic resolution above. The executor applies
// ExecConfig::cpu_threads through this on every Run.
void SetCpuThreads(int n);

// The resolved thread budget (always >= 1).
int CpuThreads();

// Runs fn(chunk_begin, chunk_end) over every grain-sized chunk of
// [begin, end), distributing chunks across up to CpuThreads() threads
// (calling thread included). Blocks until every chunk completed. The first
// exception thrown by `fn` is rethrown on the calling thread once all
// workers have drained. Nested calls from inside a ParallelFor body run
// serially on the calling worker (no deadlock, same determinism).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 FunctionRef<void(int64_t, int64_t)> fn);

// Chunk size aiming for ~64K scalar operations per chunk, given the cost of
// one iteration. Coarse enough to amortize dispatch, fine enough to balance
// the skewed channel counts of real networks.
int64_t GrainForOps(double ops_per_iteration);

// --- Chunk decomposition (the determinism contract, made inspectable) -------
// ParallelFor's fixed chunking of [begin, end) with grain `grain`. These are
// the exact boundaries the dispatch above executes — exposed so the static
// memory-access analyzer (src/analysis) can prove per-chunk write ranges
// disjoint for the same decomposition the kernels actually run.

// Number of chunks ParallelFor(begin, end, grain, ...) produces (0 when the
// range is empty). Grain is clamped to >= 1 exactly as ParallelFor does.
int64_t ChunkCount(int64_t begin, int64_t end, int64_t grain);

// Half-open iteration range of chunk `chunk` (0-based, < ChunkCount).
struct ChunkRange {
  int64_t begin = 0;
  int64_t end = 0;
};
ChunkRange ChunkBounds(int64_t begin, int64_t end, int64_t grain, int64_t chunk);

// The pool behind ParallelFor. Exposed for tests; kernels should only use
// ParallelFor.
class ThreadPool {
 public:
  static ThreadPool& Global();

  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Executes fn(i) for every i in [0, num_chunks) using up to `threads`
  // participants (the calling thread included). Serializes concurrent
  // top-level calls; safe to call from any thread. `fn` is only invoked
  // before Run returns.
  void Run(int64_t num_chunks, int threads, FunctionRef<void(int64_t)> fn);

  // Workers currently alive (grows on demand, never shrinks).
  int worker_count() const;

 private:
  // One ParallelFor invocation: workers pull chunk indices from `next` until
  // exhausted. Heap-allocated and shared so a worker waking up late (after
  // the caller already returned) still holds a valid state to no-op on.
  // States are recycled through `spare_` so a steady-state ParallelFor makes
  // no heap allocation at all.
  struct TaskState {
    FunctionRef<void(int64_t)> fn;
    int64_t num_chunks = 0;
    std::atomic<int64_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mu;
    std::exception_ptr error;

    void RunChunks();
  };

  void EnsureWorkersLocked(int n);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait here for a task.
  std::condition_variable done_cv_;  // The caller waits here for completion.
  std::vector<std::thread> workers_;
  std::shared_ptr<TaskState> task_;  // Current task, null when idle.
  uint64_t generation_ = 0;          // Bumped per task; workers latch it.
  int claimable_ = 0;                // Worker slots left to join the task.
  int active_ = 0;                   // Workers currently inside the task.
  bool shutdown_ = false;

  std::mutex run_mu_;  // Serializes concurrent top-level Run calls.
  // Last finished task, recycled by the next Run when no late worker still
  // holds a reference (guarded by run_mu_).
  std::shared_ptr<TaskState> spare_;
};

}  // namespace ulayer::parallel
