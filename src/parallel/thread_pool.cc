#include "parallel/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace ulayer::parallel {
namespace {

// Upper bound on the budget: protects against a wild ULAYER_CPU_THREADS or
// ExecConfig value spawning thousands of threads.
constexpr int kMaxThreads = 256;

// Marks threads currently executing a ParallelFor body so nested calls run
// serially instead of deadlocking on the (single-task) pool.
thread_local bool tls_in_parallel_region = false;

std::atomic<int> g_cpu_threads{0};  // 0 = automatic resolution.

int EnvCpuThreads() {
  static const int cached = [] {
    const char* s = std::getenv("ULAYER_CPU_THREADS");
    if (s == nullptr || *s == '\0') {
      return 0;
    }
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || v <= 0) {
      return 0;  // Malformed or non-positive: fall through to hardware.
    }
    return static_cast<int>(std::min<long>(v, kMaxThreads));
  }();
  return cached;
}

}  // namespace

void SetCpuThreads(int n) { g_cpu_threads.store(std::max(n, 0), std::memory_order_relaxed); }

int CpuThreads() {
  int n = g_cpu_threads.load(std::memory_order_relaxed);
  if (n <= 0) {
    n = EnvCpuThreads();
  }
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::clamp(n, 1, kMaxThreads);
}

int64_t GrainForOps(double ops_per_iteration) {
  constexpr double kTargetOpsPerChunk = 64.0 * 1024.0;
  if (ops_per_iteration <= 1.0) {
    ops_per_iteration = 1.0;
  }
  const double grain = kTargetOpsPerChunk / ops_per_iteration;
  return std::max<int64_t>(1, static_cast<int64_t>(grain));
}

void ThreadPool::TaskState::RunChunks() {
  for (;;) {
    const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_chunks || failed.load(std::memory_order_relaxed)) {
      return;
    }
    try {
      fn(i);
    } catch (...) {
      failed.store(true, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!error) {
        error = std::current_exception();
      }
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();  // Leaked: workers may outlive main.
  return *pool;
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

int ThreadPool::worker_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::EnsureWorkersLocked(int n) {
  n = std::min(n, kMaxThreads - 1);
  while (static_cast<int>(workers_.size()) < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || (generation_ != seen && claimable_ > 0); });
    if (shutdown_) {
      return;
    }
    seen = generation_;
    --claimable_;
    ++active_;
    const std::shared_ptr<TaskState> task = task_;
    lock.unlock();

    tls_in_parallel_region = true;
    task->RunChunks();
    tls_in_parallel_region = false;

    lock.lock();
    --active_;
    if (active_ == 0 && claimable_ == 0) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::Run(int64_t num_chunks, int threads, FunctionRef<void(int64_t)> fn) {
  if (num_chunks <= 0) {
    return;
  }
  if (threads <= 1 || num_chunks == 1 || tls_in_parallel_region) {
    for (int64_t i = 0; i < num_chunks; ++i) {
      fn(i);
    }
    return;
  }

  const std::lock_guard<std::mutex> run_lock(run_mu_);
  // Recycle the previous task's state when every worker has let go of it;
  // steady-state dispatch then performs zero heap allocations.
  std::shared_ptr<TaskState> task;
  if (spare_ != nullptr && spare_.use_count() == 1) {
    task = std::move(spare_);
    task->next.store(0, std::memory_order_relaxed);
    task->failed.store(false, std::memory_order_relaxed);
    task->error = nullptr;
  } else {
    spare_.reset();
    task = std::make_shared<TaskState>();
  }
  task->fn = fn;
  task->num_chunks = num_chunks;

  const int wanted =
      static_cast<int>(std::min<int64_t>(threads, num_chunks)) - 1;  // Minus the caller.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    EnsureWorkersLocked(wanted);
    task_ = task;
    claimable_ = std::min<int>(wanted, static_cast<int>(workers_.size()));
    ++generation_;
  }
  work_cv_.notify_all();

  tls_in_parallel_region = true;
  task->RunChunks();
  tls_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_ == 0 && claimable_ == 0; });
    task_.reset();
  }
  std::exception_ptr error = task->error;
  // The FunctionRef inside `task` dangles once this frame unwinds; clear it
  // before parking the state for reuse.
  task->fn = {};
  spare_ = std::move(task);
  if (error) {
    std::rethrow_exception(error);
  }
}

int64_t ChunkCount(int64_t begin, int64_t end, int64_t grain) {
  if (end <= begin) {
    return 0;
  }
  grain = std::max<int64_t>(grain, 1);
  return (end - begin + grain - 1) / grain;
}

ChunkRange ChunkBounds(int64_t begin, int64_t end, int64_t grain, int64_t chunk) {
  grain = std::max<int64_t>(grain, 1);
  const int64_t b = begin + chunk * grain;
  return ChunkRange{b, std::min<int64_t>(b + grain, end)};
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 FunctionRef<void(int64_t, int64_t)> fn) {
  const int64_t num_chunks = ChunkCount(begin, end, grain);
  if (num_chunks == 0) {
    return;
  }
  ThreadPool::Global().Run(num_chunks, CpuThreads(), [&](int64_t chunk) {
    const ChunkRange c = ChunkBounds(begin, end, grain, chunk);
    fn(c.begin, c.end);
  });
}

}  // namespace ulayer::parallel
