// Serving-layer request types and the deterministic trace generator
// (DESIGN.md Section 14).
//
// A Request is one inference to run against a zoo model family under an SLO:
// an absolute deadline plus a priority class. Requests arrive as a trace
// (generated here or hand-built), are admitted into per-family queues, and
// leave as Completions — either executed inside a batch or shed. Everything
// is plain data keyed by integer ids so serving runs are reproducible
// byte-for-byte from (trace, seed) alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ulayer::serve {

// Scheduling class. Lower value = more urgent: the scheduler always drains
// interactive work before batch work, and EDF orders within a class.
enum class Priority : uint8_t { kInteractive = 0, kBatch = 1 };

std::string_view PriorityName(Priority p);

struct Request {
  int64_t id = -1;            // Unique, monotone in arrival order.
  std::string model;          // Zoo family key ("lenet5", "alexnet", ...).
  int64_t session = 0;        // Tenant/session id (executor-lane affinity).
  Priority priority = Priority::kInteractive;
  double arrival_us = 0.0;    // Absolute arrival time.
  double deadline_us = 0.0;   // Absolute SLO deadline (> arrival_us).
  uint64_t input_seed = 0;    // Seeds this request's input tensor (functional).
};

// What happened to a request.
enum class Outcome : uint8_t {
  kCompleted,      // Executed; see latency/deadline_met/digest.
  kShedQueueFull,  // Rejected at admission: the family queue was full.
  kShedDeadline,   // Rejected at admission: predicted finish past deadline.
  kShedExpired,    // Dropped at dispatch: deadline passed while queued.
};

std::string_view OutcomeName(Outcome o);

struct Completion {
  int64_t id = -1;
  Outcome outcome = Outcome::kCompleted;
  double finish_us = 0.0;   // Completion or shed decision time.
  double latency_us = 0.0;  // finish - arrival (kCompleted only).
  int batch_size = 0;       // Size of the batch it executed in (kCompleted).
  bool deadline_met = false;
  uint64_t output_digest = 0;  // FNV-1a of this request's output row bytes
                               // (functional runs only; 0 otherwise).
};

// FNV-1a 64-bit over a byte range — the digest used to compare per-request
// outputs across serving configurations (batched vs. sequential, different
// thread budgets) without storing tensors.
uint64_t Fnv1a64(const void* data, size_t bytes, uint64_t basis = 0xcbf29ce484222325ull);

// Deterministic open-loop trace: `num_requests` arrivals uniform over
// [0, duration_us), families/sessions/classes sampled from the seeded Rng.
// Identical spec -> identical trace, on every platform.
struct TraceSpec {
  uint64_t seed = 1;
  int num_requests = 64;
  double duration_us = 1e6;
  std::vector<std::string> models{"lenet5"};  // Sampled uniformly.
  int sessions = 4;
  double interactive_fraction = 0.5;
  // Deadline = arrival + the class budget.
  double interactive_deadline_us = 50e3;
  double batch_deadline_us = 500e3;
};

// Requests sorted by (arrival_us, id), ids dense from 0.
std::vector<Request> GenerateTrace(const TraceSpec& spec);

}  // namespace ulayer::serve
