// Multi-tenant serving: queue -> batch assembler -> SLO scheduler ->
// executor pool (DESIGN.md Section 14).
//
// The Server replays a request trace through a deterministic discrete-event
// loop over the simulated SoC: one device complex executes one batch at a
// time (the ucl timelines are per-executor; serving throughput comes from
// batching, not from pretending two batches can share the SoC). At every
// scheduling point it
//   1. admits arrivals into per-family bounded queues, shedding on
//      queue-full or predicted deadline infeasibility (admission control),
//   2. picks the most urgent family head by (priority class, deadline, id),
//   3. drops queued requests whose deadline already passed (expiry shed),
//   4. assembles the largest prepared batch size that the head class can
//      fill (greedy largest-fit, never mixing classes or families),
//   5. executes it on one pooled executor lane (session-affine) and charges
//      the simulated service time to the device clock.
// Everything is ordered by (deadline, id) with std::map-ordered family
// iteration, so a (trace, config) pair reproduces the identical batch
// composition, execution order and — in functional mode — byte-identical
// outputs at any host thread count.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/model_cache.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "trace/metrics.h"

namespace ulayer::serve {

struct ServerOptions {
  ModelCache::Options cache;     // Batch sizes, lanes, functional, image_hw.
  size_t queue_capacity = 64;    // Per-family, shared across classes.
  // Admission control: shed a request at arrival when
  //   max(now, device_free) + queued_unit_cost + unit_cost(family)
  // exceeds its deadline — the unit cost prices queued work at max-batch
  // throughput, so admission reflects what batching can actually absorb.
  // Off: only queue-full and expiry shedding remain.
  bool admission_control = true;
};

// One executed batch, for logs and determinism checks.
struct BatchRecord {
  int64_t seq = 0;      // Dispatch order.
  std::string model;
  int batch = 0;
  int lane = 0;
  double start_us = 0.0;
  double end_us = 0.0;
  std::vector<int64_t> ids;  // Member requests, in EDF pop order.
};

struct ServeReport {
  std::vector<Completion> completions;  // Sorted by request id.
  std::vector<BatchRecord> batches;     // In dispatch order.
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t deadline_met = 0;
  double makespan_us = 0.0;  // Last completion/shed decision time.

  double ThroughputRps() const {
    return makespan_us > 0.0 ? static_cast<double>(completed) * 1e6 / makespan_us : 0.0;
  }
  double ShedFraction() const {
    const int64_t total = completed + shed;
    return total > 0 ? static_cast<double>(shed) / static_cast<double>(total) : 0.0;
  }
  // Exact latency quantile over completed requests (p in [0,1]); 0 when none
  // completed. (The MetricsRegistry histogram is the estimated counterpart.)
  double LatencyQuantileUs(double p) const;
  double MeanBatchSize() const;

  // Deterministic per-batch text log ("batch 0 model=... n=... ids=...") —
  // diffing two of these proves identical batch composition and order.
  std::string BatchLog() const;
  // Deterministic per-request text log with outcome, latency and (functional
  // runs) the FNV-1a output digest.
  std::string CompletionLog() const;
};

class Server {
 public:
  // `config.cpu_threads` is normalized to 0 by the ModelCache (canonical
  // simulated timing — see model_cache.h); the functional thread budget
  // still follows ULAYER_CPU_THREADS, and outputs are byte-identical at any
  // value by the ParallelFor determinism contract.
  Server(const SocSpec& soc, const ExecConfig& config, ServerOptions options);

  // Prepares the family's (batch-size x lane) execution contexts and creates
  // its request queue. Idempotent.
  void RegisterModel(const std::string& family);

  // Installs a fault plan on every executor lane: injected GPU faults are
  // absorbed per the config's recovery policy, stretching service times
  // (throughput degrades, shedding engages) while outputs stay correct.
  void SetFaultPlan(const fault::FaultPlan& plan) { cache_.SetFaultPlan(plan); }

  // Replays `trace` (sorted by arrival_us; every model registered) to
  // completion. Optionally folds serving metrics into `metrics`:
  //   counters   serve.requests, serve.completed, serve.shed-<reason>,
  //              serve.batches
  //   histograms serve.latency_us, serve.batch_size, serve.service_us,
  //              serve.queue_depth.<family>
  // Not thread-safe: one Run at a time per Server.
  ServeReport Run(const std::vector<Request>& trace,
                  trace::MetricsRegistry* metrics = nullptr);

  ModelCache& cache() { return cache_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct FamilyState {
    std::string name;
    RequestQueue queue;
    double unit_us = 0.0;  // ServiceUs(b_max)/b_max admission price.

    FamilyState(std::string n, size_t cap, double unit)
        : name(std::move(n)), queue(cap), unit_us(unit) {}
  };

  FamilyState& StateOf(const std::string& family);
  bool QueuesEmpty() const;
  FamilyState* PickFamily();  // Most urgent head; null when all empty.

  void Admit(const Request& r, double now, ServeReport& rep, trace::MetricsRegistry* metrics);
  void Shed(const Request& r, Outcome why, double now, ServeReport& rep,
            trace::MetricsRegistry* metrics);
  void ExecuteBatch(FamilyState& f, std::vector<Request>& reqs, double now, ServeReport& rep,
                    trace::MetricsRegistry* metrics);

  SocSpec soc_;
  ServerOptions options_;
  ModelCache cache_;
  std::map<std::string, FamilyState, std::less<>> families_;

  // Per-Run scheduler state.
  double device_free_us_ = 0.0;
  double queued_unit_us_ = 0.0;  // Admission price of everything queued.
  int64_t batch_seq_ = 0;
  std::vector<Request> batch_buf_;
};

}  // namespace ulayer::serve
