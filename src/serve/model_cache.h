// Shared PreparedModel cache + per-entry executor lanes (DESIGN.md §14).
//
// Preparing a model (weight quantization, F16/packed-panel caches,
// calibration) is the expensive part of serving; the cache does it once per
// (family, batch) and const-shares the PreparedModel across executor lanes —
// legal by the PreparedModel thread-safety contract (core/prepared.h). For
// every registered family the cache builds one entry per configured batch
// size N: a batch-N Model (weights are deterministic given the seed and
// independent of N), a partitioner plan priced on the batch-N graph (so the
// timing model and latency predictor see N-scaled MACs/activation traffic
// against batch-invariant weight traffic), a fault-free service-time
// estimate, and a pool of executor lanes whose arenas/activation pools and
// staging tensors are allocated up front — the steady-state serving path
// never allocates.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/executor.h"
#include "core/plan.h"
#include "fault/fault.h"
#include "models/model.h"
#include "net/partition.h"
#include "soc/spec.h"

namespace ulayer::serve {

// Builds the named zoo model at batch N. `image_hw` overrides the family's
// input resolution when positive (ignored by lenet5, which is fixed 28x28).
// Throws Error(kInvalidArgument) for an unknown family.
Model MakeZooModel(const std::string& family, int batch, int image_hw = 0);

class ModelCache {
 public:
  struct Options {
    // Batch sizes to prepare plans for, ascending; must contain 1. The
    // assembler only ever forms batches of these sizes (greedy largest-fit,
    // no padding).
    std::vector<int> batch_sizes{1, 2, 4, 8};
    // Executor lanes per (family, batch) entry. A lane is the unit of
    // single-flight execution (core/executor.h): one executor + one reused
    // RunResult + preallocated input staging. Requests are mapped to lanes by
    // session id.
    int lanes = 2;
    // Functional serving: materialize weights, calibrate QUInt8 configs, and
    // allocate staging tensors so batches carry real tensor payloads.
    // Off: simulate-only (latency/energy), no weights.
    bool functional = false;
    // Input-resolution override passed to MakeZooModel (0 = family default).
    int image_hw = 0;
    // Multi-node backend: > 0 prices service_us with a distributed plan over
    // an N-worker uniform cluster (net::Coordinator, timing-only) instead of
    // the single-SoC executor. Functional lane execution stays local — the
    // distributed layer is byte-identical by construction, so correctness is
    // unaffected; only the admission controller's cost model changes.
    int net_nodes = 0;
    // Calibration inputs per entry (QUInt8 storage + functional only).
    int calibration_inputs = 2;
    uint64_t calibration_seed = 0xca11;
  };

  // One prepared (family, batch) execution context.
  struct Lane {
    Executor exec;
    RunResult result;  // Reused across runs; capacity survives.
    Tensor staging;    // [N,C,H,W] F32 batch assembly buffer (functional).
    Tensor image;      // [1,C,H,W] F32 per-request fill buffer (functional).

    Lane(const PreparedModel& pm, const SocSpec& soc) : exec(pm, soc) {}
  };

  struct Entry {
    int batch = 1;
    std::unique_ptr<Model> model;  // Owns graph+weights; outlives `prepared`.
    std::unique_ptr<PreparedModel> prepared;
    Plan plan;                // Partitioner plan for the batch-N graph.
    double service_us = 0.0;  // Fault-free simulated latency of one execution.
    // Options::net_nodes > 0 only: the distributed channel plan whose
    // fault-free Coordinator latency became service_us.
    std::unique_ptr<net::NetPlan> net_plan;
    std::vector<std::unique_ptr<Lane>> lanes;

    Lane& LaneFor(int64_t session) {
      return *lanes[static_cast<size_t>(session) % lanes.size()];
    }
  };

  // `config.cpu_threads` is normalized to 0 (the full-cluster canonical
  // timing): the thread budget changes simulated CPU kernel time, which
  // would change batch composition — serving timing must not depend on the
  // host's functional thread count for cross-thread-count determinism.
  ModelCache(const SocSpec& soc, const ExecConfig& config, Options options);

  // Prepares every (family, batch-size) entry. Idempotent. Applies the
  // current fault plan to the new lanes.
  void Register(const std::string& family);
  bool Has(const std::string& family) const;

  Entry& entry(const std::string& family, int batch);
  const Entry& entry(const std::string& family, int batch) const;

  // Fault-free service estimate of one batch-N execution.
  double ServiceUs(const std::string& family, int batch) const;
  // Optimistic per-request cost at the largest batch size:
  // service(b_max)/b_max. The admission controller prices queued work with
  // this, so feasibility reflects batched throughput, not batch=1 latency.
  double UnitUs(const std::string& family) const;

  // Largest registered batch size <= n (>= 1; size 1 is always registered).
  int LargestBatchLE(int64_t n) const;

  const std::vector<int>& batch_sizes() const { return options_.batch_sizes; }
  const Options& options() const { return options_; }
  const ExecConfig& config() const { return config_; }
  const SocSpec& soc() const { return soc_; }
  const std::vector<std::string>& families() const { return families_; }

  // Installs `plan` on every lane executor, current and future (degraded
  // serving: faults throttle throughput, never correctness). Service
  // estimates stay fault-free by design — drift under faults is what the
  // admission controller absorbs via shedding.
  void SetFaultPlan(const fault::FaultPlan& plan);

 private:
  struct FamilyEntries {
    std::vector<std::unique_ptr<Entry>> by_batch;  // Parallel to batch_sizes.
  };

  std::unique_ptr<Entry> Prepare(const std::string& family, int batch);

  SocSpec soc_;
  ExecConfig config_;
  Options options_;
  fault::FaultPlan fault_plan_;
  std::map<std::string, FamilyEntries, std::less<>> entries_;
  std::vector<std::string> families_;  // Registration order.
};

}  // namespace ulayer::serve
