#include "serve/queue.h"

#include <algorithm>
#include <cassert>

namespace ulayer::serve {
namespace {

// EDF order with the id as deterministic tiebreaker.
bool Urgent(const Request& a, const Request& b) {
  if (a.deadline_us != b.deadline_us) {
    return a.deadline_us < b.deadline_us;
  }
  return a.id < b.id;
}

}  // namespace

RequestQueue::RequestQueue(size_t capacity) : capacity_(capacity) {
  interactive_.reserve(capacity);
  batch_.reserve(capacity);
}

std::vector<Request>& RequestQueue::ClassOf(Priority p) {
  return p == Priority::kInteractive ? interactive_ : batch_;
}

const std::vector<Request>* RequestQueue::HeadClass() const {
  if (!interactive_.empty()) {
    return &interactive_;
  }
  if (!batch_.empty()) {
    return &batch_;
  }
  return nullptr;
}

bool RequestQueue::Push(const Request& r) {
  if (size() >= capacity_) {
    return false;
  }
  std::vector<Request>& q = ClassOf(r.priority);
  q.insert(std::upper_bound(q.begin(), q.end(), r, Urgent), r);
  return true;
}

size_t RequestQueue::size() const { return interactive_.size() + batch_.size(); }

const Request& RequestQueue::Head() const {
  const std::vector<Request>* q = HeadClass();
  assert(q != nullptr);
  return q->front();
}

Request RequestQueue::PopHead() {
  std::vector<Request>* q = const_cast<std::vector<Request>*>(HeadClass());
  assert(q != nullptr);
  Request r = std::move(q->front());
  q->erase(q->begin());
  return r;
}

void RequestQueue::PopClassInto(size_t n, std::vector<Request>& out) {
  std::vector<Request>* q = const_cast<std::vector<Request>*>(HeadClass());
  if (q == nullptr) {
    return;
  }
  const size_t take = std::min(n, q->size());
  for (size_t i = 0; i < take; ++i) {
    out.push_back(std::move((*q)[i]));
  }
  q->erase(q->begin(), q->begin() + static_cast<ptrdiff_t>(take));
}

size_t RequestQueue::HeadClassSize() const {
  const std::vector<Request>* q = HeadClass();
  return q == nullptr ? 0 : q->size();
}

}  // namespace ulayer::serve
