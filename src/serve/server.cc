#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/error.h"

namespace ulayer::serve {
namespace {

// (priority, deadline, id) urgency order across family heads.
bool MoreUrgent(const Request& a, const Request& b) {
  if (a.priority != b.priority) {
    return static_cast<uint8_t>(a.priority) < static_cast<uint8_t>(b.priority);
  }
  if (a.deadline_us != b.deadline_us) {
    return a.deadline_us < b.deadline_us;
  }
  return a.id < b.id;
}

std::string FixedUs(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

double ServeReport::LatencyQuantileUs(double p) const {
  std::vector<double> lat;
  lat.reserve(completions.size());
  for (const Completion& c : completions) {
    if (c.outcome == Outcome::kCompleted) {
      lat.push_back(c.latency_us);
    }
  }
  if (lat.empty()) {
    return 0.0;
  }
  std::sort(lat.begin(), lat.end());
  const double rank = std::clamp(p, 0.0, 1.0) * static_cast<double>(lat.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, lat.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return lat[lo] + (lat[hi] - lat[lo]) * frac;
}

double ServeReport::MeanBatchSize() const {
  if (batches.empty()) {
    return 0.0;
  }
  int64_t total = 0;
  for (const BatchRecord& b : batches) {
    total += b.batch;
  }
  return static_cast<double>(total) / static_cast<double>(batches.size());
}

std::string ServeReport::BatchLog() const {
  std::ostringstream os;
  for (const BatchRecord& b : batches) {
    os << "batch " << b.seq << " model=" << b.model << " n=" << b.batch << " lane=" << b.lane
       << " start=" << FixedUs(b.start_us) << " end=" << FixedUs(b.end_us) << " ids=";
    for (size_t i = 0; i < b.ids.size(); ++i) {
      os << (i > 0 ? "," : "") << b.ids[i];
    }
    os << "\n";
  }
  return os.str();
}

std::string ServeReport::CompletionLog() const {
  std::ostringstream os;
  for (const Completion& c : completions) {
    os << "req " << c.id << " " << OutcomeName(c.outcome) << " finish=" << FixedUs(c.finish_us);
    if (c.outcome == Outcome::kCompleted) {
      os << " latency=" << FixedUs(c.latency_us) << " batch=" << c.batch_size
         << " deadline=" << (c.deadline_met ? "met" : "missed");
      if (c.output_digest != 0) {
        char d[20];
        std::snprintf(d, sizeof(d), "%016llx", static_cast<unsigned long long>(c.output_digest));
        os << " digest=" << d;
      }
    }
    os << "\n";
  }
  return os.str();
}

Server::Server(const SocSpec& soc, const ExecConfig& config, ServerOptions options)
    : soc_(soc), options_(std::move(options)), cache_(soc, config, options_.cache) {
  if (options_.queue_capacity == 0) {
    throw Error(ErrorCode::kInvalidArgument, "Server: queue_capacity must be positive");
  }
  batch_buf_.reserve(static_cast<size_t>(cache_.batch_sizes().back()));
}

void Server::RegisterModel(const std::string& family) {
  if (families_.find(family) != families_.end()) {
    return;
  }
  cache_.Register(family);
  families_.emplace(family,
                    FamilyState(family, options_.queue_capacity, cache_.UnitUs(family)));
}

Server::FamilyState& Server::StateOf(const std::string& family) {
  const auto it = families_.find(family);
  if (it == families_.end()) {
    throw Error(ErrorCode::kInvalidArgument,
                "Server: request for unregistered model '" + family + "'");
  }
  return it->second;
}

bool Server::QueuesEmpty() const {
  for (const auto& [name, f] : families_) {
    (void)name;
    if (!f.queue.empty()) {
      return false;
    }
  }
  return true;
}

Server::FamilyState* Server::PickFamily() {
  FamilyState* best = nullptr;
  for (auto& [name, f] : families_) {
    (void)name;
    if (f.queue.empty()) {
      continue;
    }
    if (best == nullptr || MoreUrgent(f.queue.Head(), best->queue.Head())) {
      best = &f;
    }
  }
  return best;
}

void Server::Shed(const Request& r, Outcome why, double now, ServeReport& rep,
                  trace::MetricsRegistry* metrics) {
  Completion c;
  c.id = r.id;
  c.outcome = why;
  c.finish_us = now;
  rep.completions.push_back(std::move(c));
  ++rep.shed;
  if (metrics != nullptr) {
    metrics->Count("serve." + std::string(OutcomeName(why)));  // serve.shed-<reason>
  }
}

void Server::Admit(const Request& r, double now, ServeReport& rep,
                   trace::MetricsRegistry* metrics) {
  FamilyState& f = StateOf(r.model);
  if (metrics != nullptr) {
    metrics->Count("serve.requests");
  }
  if (f.queue.size() >= f.queue.capacity()) {
    Shed(r, Outcome::kShedQueueFull, now, rep, metrics);
    return;
  }
  if (options_.admission_control) {
    const double start = std::max(now, device_free_us_);
    const double predicted = start + queued_unit_us_ + f.unit_us;
    if (predicted > r.deadline_us) {
      Shed(r, Outcome::kShedDeadline, now, rep, metrics);
      return;
    }
  }
  f.queue.Push(r);  // Capacity checked above.
  queued_unit_us_ += f.unit_us;
}

void Server::ExecuteBatch(FamilyState& f, std::vector<Request>& reqs, double now,
                          ServeReport& rep, trace::MetricsRegistry* metrics) {
  const int b = static_cast<int>(reqs.size());
  ModelCache::Entry& e = cache_.entry(f.name, b);
  const auto lane_idx =
      static_cast<int>(static_cast<size_t>(reqs[0].session) % e.lanes.size());
  ModelCache::Lane& lane = *e.lanes[static_cast<size_t>(lane_idx)];

  const bool functional = cache_.options().functional;
  if (functional) {
    // Assemble the batch input: each request's payload is generated from its
    // own seed into the per-image buffer, then copied into its batch row —
    // so a request's input bytes are identical no matter which batch (or
    // batch position) it rides in.
    const int64_t row_bytes = lane.image.SizeBytes();
    for (int i = 0; i < b; ++i) {
      FillUniform(lane.image, reqs[static_cast<size_t>(i)].input_seed);
      std::memcpy(lane.staging.raw() + static_cast<int64_t>(i) * row_bytes, lane.image.raw(),
                  static_cast<size_t>(row_bytes));
    }
  }
  lane.exec.RunInto(e.plan, functional ? &lane.staging : nullptr, lane.result);

  const double service = lane.result.latency_us;
  const double end = now + service;
  device_free_us_ = end;

  BatchRecord br;
  br.seq = batch_seq_++;
  br.model = f.name;
  br.batch = b;
  br.lane = lane_idx;
  br.start_us = now;
  br.end_us = end;
  br.ids.reserve(reqs.size());

  const Tensor* out = lane.result.output.has_value() ? &*lane.result.output : nullptr;
  const int64_t out_row_bytes = out != nullptr ? out->SizeBytes() / b : 0;
  for (int i = 0; i < b; ++i) {
    const Request& r = reqs[static_cast<size_t>(i)];
    br.ids.push_back(r.id);
    Completion c;
    c.id = r.id;
    c.outcome = Outcome::kCompleted;
    c.finish_us = end;
    c.latency_us = end - r.arrival_us;
    c.batch_size = b;
    c.deadline_met = end <= r.deadline_us;
    if (out != nullptr) {
      c.output_digest =
          Fnv1a64(out->raw() + static_cast<int64_t>(i) * out_row_bytes,
                  static_cast<size_t>(out_row_bytes));
    }
    ++rep.completed;
    rep.deadline_met += c.deadline_met ? 1 : 0;
    if (metrics != nullptr) {
      metrics->Count("serve.completed");
      metrics->Observe("serve.latency_us", c.latency_us);
    }
    rep.completions.push_back(std::move(c));
  }
  rep.batches.push_back(std::move(br));
  if (metrics != nullptr) {
    metrics->Count("serve.batches");
    metrics->Observe("serve.batch_size", static_cast<double>(b));
    metrics->Observe("serve.service_us", service);
    metrics->Observe("serve.queue_depth." + f.name, static_cast<double>(f.queue.size()));
  }
}

ServeReport Server::Run(const std::vector<Request>& trace, trace::MetricsRegistry* metrics) {
  for (size_t i = 0; i + 1 < trace.size(); ++i) {
    if (trace[i + 1].arrival_us < trace[i].arrival_us) {
      throw Error(ErrorCode::kInvalidArgument, "Server::Run: trace not sorted by arrival_us");
    }
  }
  for (const Request& r : trace) {
    StateOf(r.model);  // Throws for unregistered models before any work runs.
  }

  ServeReport rep;
  device_free_us_ = 0.0;
  queued_unit_us_ = 0.0;
  batch_seq_ = 0;
  double now = 0.0;
  size_t idx = 0;

  while (true) {
    if (QueuesEmpty()) {
      if (idx >= trace.size()) {
        break;
      }
      now = std::max(now, trace[idx].arrival_us);
    }
    now = std::max(now, device_free_us_);
    while (idx < trace.size() && trace[idx].arrival_us <= now) {
      Admit(trace[idx], now, rep, metrics);
      ++idx;
    }
    FamilyState* f = PickFamily();
    if (f == nullptr) {
      continue;  // Everything admitted this wake was shed; jump to next arrival.
    }
    // Expiry shed: EDF surfaces the earliest deadline first, so draining the
    // head until it is feasible drops exactly the expired ones.
    while (!f->queue.empty() && f->queue.Head().deadline_us < now) {
      const Request r = f->queue.PopHead();
      queued_unit_us_ -= f->unit_us;
      Shed(r, Outcome::kShedExpired, now, rep, metrics);
    }
    if (f->queue.empty()) {
      continue;
    }
    const int b = cache_.LargestBatchLE(static_cast<int64_t>(f->queue.HeadClassSize()));
    batch_buf_.clear();
    f->queue.PopClassInto(static_cast<size_t>(b), batch_buf_);
    queued_unit_us_ -= f->unit_us * static_cast<double>(batch_buf_.size());
    ExecuteBatch(*f, batch_buf_, now, rep, metrics);
  }

  for (const Completion& c : rep.completions) {
    rep.makespan_us = std::max(rep.makespan_us, c.finish_us);
  }
  std::sort(rep.completions.begin(), rep.completions.end(),
            [](const Completion& a, const Completion& b2) { return a.id < b2.id; });
  return rep;
}

}  // namespace ulayer::serve
