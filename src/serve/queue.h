// Bounded per-family request queue with priority classes + EDF order
// (DESIGN.md Section 14).
//
// Two priority classes (interactive, batch); within a class requests are
// kept in earliest-deadline-first order with the request id as the
// deterministic tiebreaker. Capacity is shared across classes: a Push into a
// full queue is rejected (the caller sheds kShedQueueFull) — bounded queues
// are the backpressure mechanism, unbounded queueing is exactly the failure
// mode the SLO scheduler exists to avoid.
//
// Implementation: one sorted vector per class. Capacities are small (tens),
// so ordered insertion is cheap, and with reserve()d storage the queue is
// allocation-free in steady state.
#pragma once

#include <cstddef>
#include <vector>

#include "serve/request.h"

namespace ulayer::serve {

class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity);

  // False when the queue is at capacity (caller sheds the request).
  bool Push(const Request& r);

  bool empty() const { return size() == 0; }
  size_t size() const;
  size_t capacity() const { return capacity_; }

  // The most urgent queued request: head of the highest-urgency nonempty
  // class, i.e. ordered by (priority, deadline, id). Queue must be nonempty.
  const Request& Head() const;

  // Pops the head request.
  Request PopHead();

  // Pops up to `n` requests in EDF order from the head's priority class into
  // `out` (appended; caller clears). Batches never mix classes: a batch
  // assembled for backlogged low-priority work must not absorb an
  // interactive request that EDF would have scheduled first anyway.
  void PopClassInto(size_t n, std::vector<Request>& out);

  // Queued requests of the head's class (batch-assembly bound).
  size_t HeadClassSize() const;

 private:
  std::vector<Request>& ClassOf(Priority p);
  const std::vector<Request>* HeadClass() const;

  size_t capacity_;
  // Sorted by (deadline_us, id) ascending; index 0 = most urgent.
  std::vector<Request> interactive_;
  std::vector<Request> batch_;
};

}  // namespace ulayer::serve
