#include "serve/model_cache.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "core/partitioner.h"
#include "core/predictor.h"
#include "net/coordinator.h"
#include "soc/timing.h"

namespace ulayer::serve {

Model MakeZooModel(const std::string& family, int batch, int image_hw) {
  if (family == "lenet5") {
    return MakeLeNet5(batch);  // Fixed 28x28 input; no resolution knob.
  }
  if (family == "alexnet") {
    return image_hw > 0 ? MakeAlexNet(batch, image_hw) : MakeAlexNet(batch);
  }
  if (family == "vgg16") {
    return image_hw > 0 ? MakeVgg16(batch, image_hw) : MakeVgg16(batch);
  }
  if (family == "googlenet") {
    return image_hw > 0 ? MakeGoogLeNet(batch, image_hw) : MakeGoogLeNet(batch);
  }
  if (family == "squeezenet") {
    return image_hw > 0 ? MakeSqueezeNetV11(batch, image_hw) : MakeSqueezeNetV11(batch);
  }
  if (family == "mobilenet") {
    return image_hw > 0 ? MakeMobileNetV1(batch, image_hw) : MakeMobileNetV1(batch);
  }
  if (family == "resnet18") {
    return image_hw > 0 ? MakeResNet18(batch, image_hw) : MakeResNet18(batch);
  }
  if (family == "resnet50") {
    return image_hw > 0 ? MakeResNet50(batch, image_hw) : MakeResNet50(batch);
  }
  if (family == "inceptionv3") {
    return image_hw > 0 ? MakeInceptionV3(batch, image_hw) : MakeInceptionV3(batch);
  }
  throw Error(ErrorCode::kInvalidArgument, "unknown zoo model family '" + family + "'");
}

ModelCache::ModelCache(const SocSpec& soc, const ExecConfig& config, Options options)
    : soc_(soc), config_(config), options_(std::move(options)) {
  // Canonical timing: the simulated schedule must not depend on the
  // functional thread budget (see the header contract).
  config_.cpu_threads = 0;
  if (options_.batch_sizes.empty() ||
      !std::is_sorted(options_.batch_sizes.begin(), options_.batch_sizes.end()) ||
      options_.batch_sizes.front() != 1 || options_.lanes <= 0) {
    throw Error(ErrorCode::kInvalidArgument,
                "ModelCache: batch_sizes must be ascending and start at 1, lanes positive");
  }
  for (int b : options_.batch_sizes) {
    if (b <= 0) {
      throw Error(ErrorCode::kInvalidArgument, "ModelCache: non-positive batch size");
    }
  }
  if (options_.net_nodes < 0) {
    throw Error(ErrorCode::kInvalidArgument, "ModelCache: negative net_nodes");
  }
}

std::unique_ptr<ModelCache::Entry> ModelCache::Prepare(const std::string& family, int batch) {
  auto e = std::make_unique<Entry>();
  e->batch = batch;
  e->model = std::make_unique<Model>(MakeZooModel(family, batch, options_.image_hw));
  if (options_.functional) {
    e->model->MaterializeWeights();  // Deterministic; independent of batch.
  }
  e->prepared = std::make_unique<PreparedModel>(*e->model, config_);

  const Graph& g = e->model->graph;
  const Shape in_shape = g.node(0).out_shape;
  if (options_.functional && config_.storage == DType::kQUInt8) {
    std::vector<Tensor> calib;
    calib.reserve(static_cast<size_t>(options_.calibration_inputs));
    for (int i = 0; i < options_.calibration_inputs; ++i) {
      Tensor t(in_shape, DType::kF32);
      FillUniform(t, options_.calibration_seed + static_cast<uint64_t>(i));
      calib.push_back(std::move(t));
    }
    e->prepared->Calibrate(calib);
  }

  // Partitioner plan priced on the batch-N graph: the predictor fits the
  // N-scaled work, so cooperative split ratios are tuned per batch size.
  const TimingModel timing(soc_);
  const LatencyPredictor predictor(timing, config_, {&g});
  e->plan = Partitioner(g, timing, config_, predictor, Partitioner::Options{}).Build();

  for (int l = 0; l < options_.lanes; ++l) {
    auto lane = std::make_unique<Lane>(*e->prepared, soc_);
    if (options_.functional) {
      lane->staging = Tensor(in_shape, DType::kF32);
      lane->image = Tensor(Shape{1, in_shape.c, in_shape.h, in_shape.w}, DType::kF32);
    }
    e->lanes.push_back(std::move(lane));
  }

  // Fault-free service estimate (simulate-only run on lane 0, before any
  // fault plan is installed).
  e->lanes[0]->exec.RunInto(e->plan, nullptr, e->lanes[0]->result);
  e->service_us = e->lanes[0]->result.latency_us;

  if (options_.net_nodes > 0) {
    // Multi-node backend: the admission controller prices work against a
    // distributed channel plan instead of the single-SoC schedule.
    const net::ClusterSpec cluster = net::MakeUniformCluster(options_.net_nodes);
    e->net_plan = std::make_unique<net::NetPlan>(net::NetPartitioner(g, cluster).Build());
    net::Coordinator coord(*e->prepared, cluster);
    e->service_us = coord.Run(*e->net_plan).latency_us;
  }

  if (!fault_plan_.empty()) {
    for (auto& lane : e->lanes) {
      lane->exec.SetFaultPlan(fault_plan_);
    }
  }
  return e;
}

void ModelCache::Register(const std::string& family) {
  if (Has(family)) {
    return;
  }
  FamilyEntries fe;
  fe.by_batch.reserve(options_.batch_sizes.size());
  for (int b : options_.batch_sizes) {
    fe.by_batch.push_back(Prepare(family, b));
  }
  entries_.emplace(family, std::move(fe));
  families_.push_back(family);
}

bool ModelCache::Has(const std::string& family) const {
  return entries_.find(family) != entries_.end();
}

ModelCache::Entry& ModelCache::entry(const std::string& family, int batch) {
  return const_cast<Entry&>(std::as_const(*this).entry(family, batch));
}

const ModelCache::Entry& ModelCache::entry(const std::string& family, int batch) const {
  const auto it = entries_.find(family);
  if (it == entries_.end()) {
    throw Error(ErrorCode::kInvalidArgument, "ModelCache: family '" + family + "' not registered");
  }
  for (size_t i = 0; i < options_.batch_sizes.size(); ++i) {
    if (options_.batch_sizes[i] == batch) {
      return *it->second.by_batch[i];
    }
  }
  throw Error(ErrorCode::kInvalidArgument,
              "ModelCache: batch size " + std::to_string(batch) + " not registered");
}

double ModelCache::ServiceUs(const std::string& family, int batch) const {
  return entry(family, batch).service_us;
}

double ModelCache::UnitUs(const std::string& family) const {
  const int bmax = options_.batch_sizes.back();
  return ServiceUs(family, bmax) / static_cast<double>(bmax);
}

int ModelCache::LargestBatchLE(int64_t n) const {
  int best = 1;
  for (int b : options_.batch_sizes) {
    if (b <= n) {
      best = b;
    }
  }
  return best;
}

void ModelCache::SetFaultPlan(const fault::FaultPlan& plan) {
  fault_plan_ = plan;
  for (auto& [name, fe] : entries_) {
    (void)name;
    for (auto& e : fe.by_batch) {
      for (auto& lane : e->lanes) {
        lane->exec.SetFaultPlan(fault_plan_);
      }
    }
  }
}

}  // namespace ulayer::serve
