#include "serve/request.h"

#include <algorithm>

#include "common/error.h"
#include "tensor/rng.h"

namespace ulayer::serve {

std::string_view PriorityName(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
  }
  return "?";
}

std::string_view OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kCompleted:
      return "completed";
    case Outcome::kShedQueueFull:
      return "shed-queue-full";
    case Outcome::kShedDeadline:
      return "shed-deadline";
    case Outcome::kShedExpired:
      return "shed-expired";
  }
  return "?";
}

uint64_t Fnv1a64(const void* data, size_t bytes, uint64_t basis) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = basis;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::vector<Request> GenerateTrace(const TraceSpec& spec) {
  if (spec.num_requests < 0 || spec.models.empty() || spec.sessions <= 0 ||
      !(spec.duration_us >= 0.0)) {
    throw Error(ErrorCode::kInvalidArgument, "GenerateTrace: malformed TraceSpec");
  }
  Rng rng(spec.seed);
  std::vector<Request> trace;
  trace.reserve(static_cast<size_t>(spec.num_requests));
  for (int i = 0; i < spec.num_requests; ++i) {
    Request r;
    r.model = spec.models[rng.Below(spec.models.size())];
    r.session = static_cast<int64_t>(rng.Below(static_cast<uint64_t>(spec.sessions)));
    r.priority = static_cast<double>(rng.Uniform(0.0f, 1.0f)) < spec.interactive_fraction
                     ? Priority::kInteractive
                     : Priority::kBatch;
    r.arrival_us = static_cast<double>(rng.Uniform(0.0f, 1.0f)) * spec.duration_us;
    r.deadline_us = r.arrival_us + (r.priority == Priority::kInteractive
                                        ? spec.interactive_deadline_us
                                        : spec.batch_deadline_us);
    r.input_seed = rng.Next();
    trace.push_back(std::move(r));
  }
  // Arrival order defines the id order (stable: equal arrivals keep their
  // generation order, so the trace is a pure function of the spec).
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Request& a, const Request& b) { return a.arrival_us < b.arrival_us; });
  for (size_t i = 0; i < trace.size(); ++i) {
    trace[i].id = static_cast<int64_t>(i);
  }
  return trace;
}

}  // namespace ulayer::serve
