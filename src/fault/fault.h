// Deterministic fault injection for the ucl device timelines (DESIGN.md
// Section 10) and the simulated network links (DESIGN.md Section 15).
//
// Real mobile GPU stacks fail in ways the paper's model ignores:
// driver-dependent enqueue/map errors, device resets, and DVFS/thermal
// throttling that silently invalidates the latencies the partitioner planned
// against. A FaultPlan describes such behaviour as a seeded, reproducible
// set of rules; a FaultInjector evaluates them against every ucl enqueue
// call (and the executor's staging points), so the same plan always yields
// the same fault trace, latency and DegradationReport.
//
// The distributed layer (src/net) speaks the same grammar: `net.link` and
// `net.worker` targets describe transport faults (message drops, added
// delay, persistent partitions) and worker deaths on the same seeded
// splitmix64 stream, so a cluster-level fault trace is as reproducible as a
// device-level one.
//
// Spec string grammar (ULAYER_FAULTS / FaultPlan::Parse):
//   spec     := item (';' item)*
//   item     := 'seed=' uint | rule
//   rule     := target selector* '=' effect
//   target   := ('cpu'|'gpu') '.' ('kernel'|'map'|'unmap'|'any')
//             | 'net' '.' ('link'|'worker')
//   selector := '@node:' int      -- fire only on this graph node id
//             | '@call:' int      -- fire on the Nth (1-based) matching call
//             | '@prob:' float    -- fire with this probability (seeded RNG)
//             | '@limit:' int     -- fire at most N times
//             | '@id:' int        -- net targets: this link/worker id only
//   effect   := 'enqueue-failed' | 'map-failed' | 'device-lost'
//             | 'timeout:' float(us) | 'slow:' float(factor)
//             | 'drop' | 'delay:' float(us) | 'partition' | 'death'
// Device effects require a device target; `drop`, `delay` and `partition`
// require a `net.link` target and `death` a `net.worker` target.
// Examples:
//   gpu.kernel@call:3=enqueue-failed
//   gpu.kernel@node:7=device-lost
//   seed=42;gpu.any@prob:0.1=timeout:500
//   gpu.kernel=slow:2.5            (persistent thermal throttle)
//   net.link@id:1@call:2=drop      (drop worker 1's 2nd message attempt)
//   net.link@prob:0.05=delay:250   (lossy-ish WiFi: 5% of messages +250us)
//   net.worker@id:2=death          (kill worker 2 at its first assignment)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "soc/spec.h"

namespace ulayer::fault {

enum class FaultKind : uint8_t {
  kEnqueueFailed,  // clEnqueueNDRangeKernel returned an error.
  kMapFailed,      // clEnqueueMapBuffer / unmap returned an error.
  kDeviceLost,     // CL_DEVICE_NOT_AVAILABLE-style reset: trips the breaker.
  kTimeout,        // The command hung; the device is busy until the timeout.
  kSlowdown,       // DVFS/thermal throttle: the kernel body is stretched.
  kDrop,           // net.link: this message attempt is lost in flight.
  kDelay,          // net.link: this message arrives delay_us late.
  kPartition,      // net.link: the link goes down for the rest of the run.
  kWorkerDeath,    // net.worker: the worker dies at this slice assignment.
};

enum class OpKind : uint8_t { kKernel, kMap, kUnmap, kAny };

// What a rule (or an injected event) applies to: a device timeline inside
// the SoC, or one of the simulated cluster's links/workers.
enum class FaultTarget : uint8_t { kDevice, kNetLink, kNetWorker };

std::string_view FaultKindName(FaultKind kind);
std::string_view OpKindName(OpKind op);
std::string_view FaultTargetName(FaultTarget target);

struct FaultRule {
  FaultTarget target = FaultTarget::kDevice;
  ProcKind device = ProcKind::kGpu;  // kDevice targets only.
  OpKind op = OpKind::kKernel;       // kDevice targets only.
  FaultKind kind = FaultKind::kEnqueueFailed;
  // Selectors; negative means "unused". A rule fires only when every set
  // selector matches.
  int net_id = -1;            // Net targets: link/worker id (-1 = any).
  int node = -1;              // Executor-tagged graph node id.
  int64_t call = -1;          // 1-based count of matching-target calls.
  double probability = -1.0;  // Seeded Bernoulli draw per matching call.
  int64_t limit = -1;         // Max firings of this rule; -1 = unlimited.
  double timeout_us = 0.0;    // kTimeout: device-busy window before failing.
  double factor = 1.0;        // kSlowdown: body-time multiplier.
  double delay_us = 0.0;      // kDelay: extra in-flight time for the message.

  std::string ToString() const;
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  uint64_t seed = 0x5eedULL;

  bool empty() const { return rules.empty(); }

  // Parses the spec grammar above; throws ulayer::Error (kParse) on
  // malformed input. An empty/whitespace spec yields an empty plan.
  static FaultPlan Parse(const std::string& spec);
  // Parses the ULAYER_FAULTS environment variable; empty plan when unset.
  static FaultPlan FromEnv();
  // Round-trips through Parse.
  std::string ToString() const;
};

// One injected fault occurrence, in injection order.
struct FaultEvent {
  FaultKind kind = FaultKind::kEnqueueFailed;
  FaultTarget target = FaultTarget::kDevice;
  ProcKind device = ProcKind::kGpu;  // kDevice events only.
  OpKind op = OpKind::kKernel;       // kDevice events only.
  int net_id = -1;       // Net events: the link/worker id the fault hit.
  int node = -1;         // Graph node the executor tagged, or -1.
  int64_t call = 0;      // Matching-target call count at injection time.
  double at_us = 0.0;    // Device/cluster-timeline time of the call.
  // Busy time the fault itself consumed: the timeout window for kTimeout,
  // the added in-flight time for kDelay, 0 for fail-fast kinds. Lets tests
  // audit that timeouts/delays are charged exactly once and fail-fast faults
  // never charge (the retry accounting invariant of DESIGN.md Section 11).
  double charged_us = 0.0;

  std::string ToString() const;
};

// Stateful rule evaluator. One injector serves one ucl::Context (or one
// net::Coordinator); the executor resets it at the top of every Run so
// per-run fault traces are reproducible regardless of how many runs share
// the executor. Not thread-safe: all calls come from the executor's issuing
// thread (matching the ucl timeline contract).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // What a fired rule does to the call being evaluated.
  struct Decision {
    FaultKind kind = FaultKind::kEnqueueFailed;
    double timeout_us = 0.0;
    double factor = 1.0;
    double delay_us = 0.0;
  };

  // Evaluates the device rules against one enqueue call at device-time
  // `now_us`. Counts the call, draws probability selectors, records a
  // FaultEvent when a rule fires, and returns the first matching rule's
  // decision. Net rules never match here.
  std::optional<Decision> OnCall(ProcKind device, OpKind op, double now_us);

  // Evaluates the net rules against one link-message attempt or worker
  // slice assignment at cluster-time `now_us`. `id` is the link/worker id
  // (the worker's index in the ClusterSpec). Same counting, probability and
  // first-match-wins semantics as OnCall, on the same RNG stream — so a plan
  // mixing device and net rules has one reproducible trace. Device rules
  // never match here.
  std::optional<Decision> OnNetCall(FaultTarget target, int id, double now_us);

  // Tags subsequent calls with the graph node being executed (-1 = none).
  void set_current_node(int node) { node_ = node; }

  // Rewinds call counts, rule firing counts, the RNG and the event log to
  // the plan's seed state. Called by the executor at the top of each Run.
  void ResetRun();

  const FaultPlan& plan() const { return plan_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  // Injected slowdowns (not part of events(): a persistent throttle would
  // log one event per kernel).
  int64_t slowdown_count() const { return slowdowns_; }

 private:
  // Call counter for one (target, instance, op-class) timeline. Devices use
  // instance 0 (cpu) / 1 (gpu); net targets use the link/worker id, plus a
  // per-target aggregate instance (kAnyInstance) that any-id rules count
  // against. A map keyed on the full triple replaces the old counts_[2][3]
  // table, which assumed exactly 2 devices x 3 op classes and would have
  // silently aliased any new target onto a device slot.
  static constexpr int kAnyInstance = 0xffff;
  int64_t& CallCount(FaultTarget target, int instance, OpKind op);
  double NextUniform();  // [0, 1) from the seeded splitmix64 stream.

  FaultPlan plan_;
  int node_ = -1;
  uint64_t rng_state_ = 0;
  std::map<uint32_t, int64_t> counts_;
  std::vector<int64_t> fired_;  // Per-rule firing counts.
  std::vector<FaultEvent> events_;
  int64_t slowdowns_ = 0;
};

}  // namespace ulayer::fault
