#include "fault/fault.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/error.h"

namespace ulayer::fault {
namespace {

[[noreturn]] void ParseFail(const std::string& spec, const std::string& why) {
  throw Error(ErrorCode::kParse, "fault spec '" + spec + "': " + why);
}

// splitmix64: tiny, seedable, and good enough for Bernoulli draws. The whole
// point is determinism, not statistical quality.
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string FormatNumber(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

bool IsNetKind(FaultKind kind) {
  return kind == FaultKind::kDrop || kind == FaultKind::kDelay ||
         kind == FaultKind::kPartition || kind == FaultKind::kWorkerDeath;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEnqueueFailed:
      return "enqueue-failed";
    case FaultKind::kMapFailed:
      return "map-failed";
    case FaultKind::kDeviceLost:
      return "device-lost";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kSlowdown:
      return "slow";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kWorkerDeath:
      return "death";
  }
  return "unknown";
}

std::string_view OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kKernel:
      return "kernel";
    case OpKind::kMap:
      return "map";
    case OpKind::kUnmap:
      return "unmap";
    case OpKind::kAny:
      return "any";
  }
  return "unknown";
}

std::string_view FaultTargetName(FaultTarget target) {
  switch (target) {
    case FaultTarget::kDevice:
      return "device";
    case FaultTarget::kNetLink:
      return "net.link";
    case FaultTarget::kNetWorker:
      return "net.worker";
  }
  return "unknown";
}

std::string FaultRule::ToString() const {
  std::ostringstream os;
  if (target == FaultTarget::kDevice) {
    os << (device == ProcKind::kCpu ? "cpu" : "gpu") << "." << OpKindName(op);
  } else {
    os << FaultTargetName(target);
  }
  if (net_id >= 0) {
    os << "@id:" << net_id;
  }
  if (node >= 0) {
    os << "@node:" << node;
  }
  if (call >= 0) {
    os << "@call:" << call;
  }
  if (probability >= 0.0) {
    os << "@prob:" << FormatNumber(probability);
  }
  if (limit >= 0) {
    os << "@limit:" << limit;
  }
  os << "=" << FaultKindName(kind);
  if (kind == FaultKind::kTimeout) {
    os << ":" << FormatNumber(timeout_us);
  } else if (kind == FaultKind::kSlowdown) {
    os << ":" << FormatNumber(factor);
  } else if (kind == FaultKind::kDelay) {
    os << ":" << FormatNumber(delay_us);
  }
  return os.str();
}

std::string FaultEvent::ToString() const {
  std::ostringstream os;
  os << FaultKindName(kind) << " on ";
  if (target == FaultTarget::kDevice) {
    os << (device == ProcKind::kCpu ? "cpu" : "gpu") << "." << OpKindName(op);
  } else {
    os << FaultTargetName(target) << ":" << net_id;
  }
  os << " call " << call;
  if (node >= 0) {
    os << " (node " << node << ")";
  }
  os << " at " << FormatNumber(at_us) << "us";
  return os.str();
}

FaultPlan FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t sep = spec.find(';', pos);
    if (sep == std::string::npos) {
      sep = spec.size();
    }
    std::string item = spec.substr(pos, sep - pos);
    pos = sep + 1;
    // Trim surrounding whitespace.
    const size_t b = item.find_first_not_of(" \t\n");
    if (b == std::string::npos) {
      if (pos > spec.size()) {
        break;
      }
      continue;  // Empty item (trailing ';' or blank spec).
    }
    item = item.substr(b, item.find_last_not_of(" \t\n") - b + 1);

    if (item.rfind("seed=", 0) == 0) {
      try {
        plan.seed = std::stoull(item.substr(5));
      } catch (const std::exception&) {
        ParseFail(spec, "bad seed '" + item + "'");
      }
      continue;
    }

    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      ParseFail(spec, "rule '" + item + "' has no '=effect'");
    }
    const std::string lhs = item.substr(0, eq);
    const std::string effect = item.substr(eq + 1);
    FaultRule rule;

    // Target: device '.' op (or 'net' '.' link|worker), then '@'-separated
    // selectors.
    const size_t at = lhs.find('@');
    const std::string target = lhs.substr(0, at);
    const size_t dot = target.find('.');
    if (dot == std::string::npos) {
      ParseFail(spec, "target '" + target + "' wants <device>.<op> or net.<link|worker>");
    }
    const std::string dev = target.substr(0, dot);
    const std::string op = target.substr(dot + 1);
    if (dev == "cpu" || dev == "gpu") {
      rule.target = FaultTarget::kDevice;
      rule.device = dev == "cpu" ? ProcKind::kCpu : ProcKind::kGpu;
      if (op == "kernel") {
        rule.op = OpKind::kKernel;
      } else if (op == "map") {
        rule.op = OpKind::kMap;
      } else if (op == "unmap") {
        rule.op = OpKind::kUnmap;
      } else if (op == "any") {
        rule.op = OpKind::kAny;
      } else {
        ParseFail(spec, "unknown op '" + op + "' (want kernel|map|unmap|any)");
      }
    } else if (dev == "net") {
      if (op == "link") {
        rule.target = FaultTarget::kNetLink;
      } else if (op == "worker") {
        rule.target = FaultTarget::kNetWorker;
      } else {
        ParseFail(spec, "unknown net target '" + op + "' (want link|worker)");
      }
    } else {
      ParseFail(spec, "unknown device '" + dev + "' (want cpu|gpu|net)");
    }

    size_t sel_pos = at;
    while (sel_pos != std::string::npos && sel_pos < lhs.size()) {
      size_t next = lhs.find('@', sel_pos + 1);
      const std::string sel =
          lhs.substr(sel_pos + 1, (next == std::string::npos ? lhs.size() : next) - sel_pos - 1);
      const size_t colon = sel.find(':');
      if (colon == std::string::npos) {
        ParseFail(spec, "selector '@" + sel + "' wants '<key>:<value>'");
      }
      const std::string key = sel.substr(0, colon);
      const std::string value = sel.substr(colon + 1);
      try {
        if (key == "node") {
          rule.node = std::stoi(value);
        } else if (key == "call") {
          rule.call = std::stoll(value);
        } else if (key == "prob") {
          rule.probability = std::stod(value);
        } else if (key == "limit") {
          rule.limit = std::stoll(value);
        } else if (key == "id") {
          rule.net_id = std::stoi(value);
        } else {
          ParseFail(spec, "unknown selector '" + key + "' (want node|call|prob|limit|id)");
        }
      } catch (const Error&) {
        throw;
      } catch (const std::exception&) {
        ParseFail(spec, "selector '@" + sel + "' has a malformed value");
      }
      sel_pos = next;
    }
    if (rule.net_id >= 0 && rule.target == FaultTarget::kDevice) {
      ParseFail(spec, "selector '@id' in '" + item + "' wants a net.link/net.worker target");
    }
    if (rule.node < -1 || rule.net_id < -1 || rule.call == 0 || rule.call < -1 ||
        rule.limit < -1 ||
        (rule.probability >= 0.0 &&
         !(rule.probability > 0.0 && rule.probability <= 1.0))) {
      ParseFail(spec, "selector out of domain in '" + item +
                          "' (call is 1-based; prob in (0, 1])");
    }

    const size_t ecolon = effect.find(':');
    const std::string ename = effect.substr(0, ecolon);
    double earg = 0.0;
    bool has_arg = ecolon != std::string::npos;
    if (has_arg) {
      try {
        earg = std::stod(effect.substr(ecolon + 1));
      } catch (const std::exception&) {
        ParseFail(spec, "effect '" + effect + "' has a malformed argument");
      }
    }
    if (ename == "enqueue-failed") {
      rule.kind = FaultKind::kEnqueueFailed;
    } else if (ename == "map-failed") {
      rule.kind = FaultKind::kMapFailed;
    } else if (ename == "device-lost") {
      rule.kind = FaultKind::kDeviceLost;
    } else if (ename == "timeout") {
      rule.kind = FaultKind::kTimeout;
      if (!has_arg || !(earg >= 0.0) || !std::isfinite(earg)) {
        ParseFail(spec, "timeout wants a non-negative microsecond argument");
      }
      rule.timeout_us = earg;
    } else if (ename == "slow") {
      rule.kind = FaultKind::kSlowdown;
      if (!has_arg || !(earg >= 1.0) || !std::isfinite(earg)) {
        ParseFail(spec, "slow wants a factor >= 1");
      }
      rule.factor = earg;
    } else if (ename == "drop") {
      rule.kind = FaultKind::kDrop;
    } else if (ename == "delay") {
      rule.kind = FaultKind::kDelay;
      if (!has_arg || !(earg >= 0.0) || !std::isfinite(earg)) {
        ParseFail(spec, "delay wants a non-negative microsecond argument");
      }
      rule.delay_us = earg;
    } else if (ename == "partition") {
      rule.kind = FaultKind::kPartition;
    } else if (ename == "death") {
      rule.kind = FaultKind::kWorkerDeath;
    } else {
      ParseFail(spec, "unknown effect '" + ename +
                          "' (want enqueue-failed|map-failed|device-lost|timeout:<us>|"
                          "slow:<factor>|drop|delay:<us>|partition|death)");
    }
    // Effects are target-specific: device kinds need a device timeline,
    // drop/delay/partition a link, death a worker.
    if (rule.target == FaultTarget::kDevice && IsNetKind(rule.kind)) {
      ParseFail(spec, "effect '" + ename + "' in '" + item +
                          "' wants a net.link/net.worker target");
    }
    if (rule.target == FaultTarget::kNetLink && rule.kind == FaultKind::kWorkerDeath) {
      ParseFail(spec, "effect 'death' in '" + item + "' wants a net.worker target");
    }
    if (rule.target == FaultTarget::kNetWorker && rule.kind != FaultKind::kWorkerDeath) {
      ParseFail(spec, "net.worker in '" + item + "' only supports the 'death' effect");
    }
    if (rule.target != FaultTarget::kDevice && !IsNetKind(rule.kind)) {
      ParseFail(spec, "effect '" + ename + "' in '" + item + "' wants a cpu/gpu target");
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

FaultPlan FaultPlan::FromEnv() {
  const char* spec = std::getenv("ULAYER_FAULTS");
  if (spec == nullptr || spec[0] == '\0') {
    return FaultPlan{};
  }
  return Parse(spec);
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "seed=" << seed;
  for (const FaultRule& r : rules) {
    os << ";" << r.ToString();
  }
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) { ResetRun(); }

void FaultInjector::ResetRun() {
  rng_state_ = plan_.seed;
  // Zero in place rather than clear(): the key set is stable across runs of
  // one plan, so warmed steady-state runs never allocate map nodes (the
  // allocation-count contract of tests/arena_test.cc).
  for (auto& [key, count] : counts_) {
    (void)key;
    count = 0;
  }
  fired_.assign(plan_.rules.size(), 0);
  events_.clear();
  slowdowns_ = 0;
  node_ = -1;
}

int64_t& FaultInjector::CallCount(FaultTarget target, int instance, OpKind op) {
  const uint32_t key = (static_cast<uint32_t>(target) << 24) |
                       ((static_cast<uint32_t>(instance) & 0xffffu) << 8) |
                       static_cast<uint32_t>(op);
  return counts_[key];  // Zero-initialized on first touch.
}

double FaultInjector::NextUniform() {
  return static_cast<double>(SplitMix64(rng_state_) >> 11) * 0x1.0p-53;
}

std::optional<FaultInjector::Decision> FaultInjector::OnCall(ProcKind device, OpKind op,
                                                             double now_us) {
  const int dev_instance = device == ProcKind::kCpu ? 0 : 1;
  const int64_t count = ++CallCount(FaultTarget::kDevice, dev_instance, op);
  std::optional<Decision> decision;
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& r = plan_.rules[i];
    if (r.target != FaultTarget::kDevice || r.device != device ||
        (r.op != OpKind::kAny && r.op != op)) {
      continue;
    }
    if (r.limit >= 0 && fired_[i] >= r.limit) {
      continue;
    }
    if (r.node >= 0 && r.node != node_) {
      continue;
    }
    // kAny rules with a @call selector count calls across all op classes.
    const int64_t matched_calls =
        r.op == OpKind::kAny
            ? CallCount(FaultTarget::kDevice, dev_instance, OpKind::kKernel) +
                  CallCount(FaultTarget::kDevice, dev_instance, OpKind::kMap) +
                  CallCount(FaultTarget::kDevice, dev_instance, OpKind::kUnmap)
            : count;
    if (r.call >= 0 && r.call != matched_calls) {
      continue;
    }
    // The draw happens on every evaluation of a probabilistic rule so the
    // stream position — hence the whole fault trace — is a pure function of
    // (plan, call sequence).
    if (r.probability >= 0.0 && NextUniform() >= r.probability) {
      continue;
    }
    if (decision.has_value()) {
      continue;  // First matching rule wins; later rules still draw above.
    }
    ++fired_[i];
    decision = Decision{r.kind, r.timeout_us, r.factor, r.delay_us};
    if (r.kind == FaultKind::kSlowdown) {
      ++slowdowns_;
    } else {
      FaultEvent ev;
      ev.kind = r.kind;
      ev.target = FaultTarget::kDevice;
      ev.device = device;
      ev.op = op;
      ev.node = node_;
      ev.call = count;
      ev.at_us = now_us;
      ev.charged_us = r.kind == FaultKind::kTimeout ? r.timeout_us : 0.0;
      events_.push_back(ev);
    }
  }
  return decision;
}

std::optional<FaultInjector::Decision> FaultInjector::OnNetCall(FaultTarget target, int id,
                                                                double now_us) {
  // Count the call on both the per-id timeline (specific-id rules) and the
  // per-target aggregate (any-id rules), so `net.link@call:3` means "the
  // 3rd message on any link" while `net.link@id:1@call:3` means "worker 1's
  // 3rd message".
  const int64_t id_count = ++CallCount(target, id, OpKind::kKernel);
  const int64_t any_count = ++CallCount(target, kAnyInstance, OpKind::kKernel);
  std::optional<Decision> decision;
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& r = plan_.rules[i];
    if (r.target != target) {
      continue;
    }
    if (r.net_id >= 0 && r.net_id != id) {
      continue;
    }
    if (r.limit >= 0 && fired_[i] >= r.limit) {
      continue;
    }
    if (r.node >= 0 && r.node != node_) {
      continue;
    }
    const int64_t matched_calls = r.net_id >= 0 ? id_count : any_count;
    if (r.call >= 0 && r.call != matched_calls) {
      continue;
    }
    if (r.probability >= 0.0 && NextUniform() >= r.probability) {
      continue;
    }
    if (decision.has_value()) {
      continue;  // First matching rule wins; later rules still draw above.
    }
    ++fired_[i];
    decision = Decision{r.kind, r.timeout_us, r.factor, r.delay_us};
    FaultEvent ev;
    ev.kind = r.kind;
    ev.target = target;
    ev.net_id = id;
    ev.node = node_;
    ev.call = id_count;
    ev.at_us = now_us;
    ev.charged_us = r.kind == FaultKind::kDelay ? r.delay_us : 0.0;
    events_.push_back(ev);
  }
  return decision;
}

}  // namespace ulayer::fault
