// Winograd F(2x2, 3x3) convolution (Lavin & Gray, 2016).
//
// ARM Compute Library ships Winograd kernels for 3x3 stride-1 convolutions;
// they trade 36 multiplies per output tile for 16 (2.25x fewer MACs) plus
// cheap input/filter/output transforms. ulayer's executor keeps the paper's
// GEMM lowering (gemmlowp operates on GEMMs), but the kernel and its cost
// model are provided for algorithm-choice studies (bench/winograd_ablation).
#pragma once

#include "kernels/access_spec.h"
#include "kernels/params.h"
#include "tensor/tensor.h"

namespace ulayer {

// True if the layer shape is eligible: 3x3 kernel, stride 1.
bool WinogradApplicable(const Conv2DParams& p);

// F32 Winograd convolution with the usual output-channel range contract.
// Requires WinogradApplicable(p). Bit-compatible with Conv2DF32 up to
// floating-point reassociation (the transforms reorder additions).
void WinogradConv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
                       const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0,
                       int64_t oc_end = -1);

// Declared access specification (kernels/access_spec.h): the oc-parallel
// loop writes rows [oc_begin, oc_end) of every batch (the batch loop runs
// inside each chunk) and reads the full input.
AccessSpec WinogradConv2DAccessSpec(const Shape& input_shape, const Shape& filter_shape,
                                    const Conv2DParams& p, const Shape& out_shape,
                                    int64_t oc_begin, int64_t oc_end);

}  // namespace ulayer
