// NEON (aarch64) micro-kernels. Compiled with -ffp-contract=off; the F32
// tile uses separate vmulq/vaddq (never vmlaq/vfmaq, which fuse) so results
// stay bit-identical to the scalar reference. There is no NEON F16 tile: the
// per-step-rounded Half chain stays on the scalar software path, which is
// the semantic contract.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "kernels/simd_internal.h"

namespace ulayer::simd::detail {
namespace {

// Force full unroll of the R <= 4 per-row loops so the accumulator arrays
// scalarize into vector registers instead of spilling to the stack (GCC 12
// at -O2 leaves constant-trip loops rolled; see simd_avx2.cc).
#define ULAYER_UNROLL_R _Pragma("GCC unroll 4")

template <int R>
void Qu8Tile(const uint8_t* const* a_rows, int64_t a_kstride, const int32_t* a_zp,
             const uint8_t* b, int64_t ldb, int64_t jn, int64_t k, int32_t* acc,
             int64_t acc_ld) {
  int64_t jb = 0;
  for (; jb + 8 <= jn; jb += 8) {
    int32x4_t acc0[R];
    int32x4_t acc1[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      int32_t* ar = acc + r * acc_ld + jb;
      acc0[r] = vld1q_s32(ar);
      acc1[r] = vld1q_s32(ar + 4);
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const uint8x8_t braw = vld1_u8(b + kk * ldb + jb);
      const uint16x8_t b16 = vmovl_u8(braw);
      const int32x4_t bv0 =
          vreinterpretq_s32_u32(vmovl_u16(vget_low_u16(b16)));
      const int32x4_t bv1 =
          vreinterpretq_s32_u32(vmovl_u16(vget_high_u16(b16)));
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const int32_t av =
            static_cast<int32_t>(a_rows[r][kk * a_kstride]) - a_zp[r];
        const int32x4_t avv = vdupq_n_s32(av);
        // Integer multiply-accumulate is exact; vmlaq is fine here.
        acc0[r] = vmlaq_s32(acc0[r], avv, bv0);
        acc1[r] = vmlaq_s32(acc1[r], avv, bv1);
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      int32_t* ar = acc + r * acc_ld + jb;
      vst1q_s32(ar, acc0[r]);
      vst1q_s32(ar + 4, acc1[r]);
    }
  }
  if (jb < jn) {
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      const uint8_t* arow = a_rows[r];
      const int32_t zp = a_zp[r];
      int32_t* ar = acc + r * acc_ld;
      for (int64_t kk = 0; kk < k; ++kk) {
        const int32_t av = static_cast<int32_t>(arow[kk * a_kstride]) - zp;
        const uint8_t* brow = b + kk * ldb;
        for (int64_t j = jb; j < jn; ++j) {
          ar[j] += av * static_cast<int32_t>(brow[j]);
        }
      }
    }
  }
}

void Qu8Neon(const uint8_t* const* a_rows, int64_t a_kstride, const int32_t* a_zp,
             const uint8_t* b, int64_t ldb, int64_t rows, int64_t jn, int64_t k,
             int32_t* acc, int64_t acc_ld) {
  switch (rows) {
    case 1:
      Qu8Tile<1>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    case 2:
      Qu8Tile<2>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    case 3:
      Qu8Tile<3>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    case 4:
      Qu8Tile<4>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    default:
      break;
  }
}

template <int R>
void F32Tile(const float* const* a_rows, int64_t a_kstride, const float* b,
             int64_t ldb, int64_t jn, int64_t k, float* const* c_rows) {
  int64_t jb = 0;
  for (; jb + 8 <= jn; jb += 8) {
    float32x4_t acc0[R];
    float32x4_t acc1[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      acc0[r] = vld1q_f32(c_rows[r] + jb);
      acc1[r] = vld1q_f32(c_rows[r] + jb + 4);
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * ldb + jb;
      const float32x4_t bv0 = vld1q_f32(brow);
      const float32x4_t bv1 = vld1q_f32(brow + 4);
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const float av = a_rows[r][kk * a_kstride];
        if (av != 0.0f) {
          const float32x4_t avv = vdupq_n_f32(av);
          acc0[r] = vaddq_f32(acc0[r], vmulq_f32(avv, bv0));
          acc1[r] = vaddq_f32(acc1[r], vmulq_f32(avv, bv1));
        }
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      vst1q_f32(c_rows[r] + jb, acc0[r]);
      vst1q_f32(c_rows[r] + jb + 4, acc1[r]);
    }
  }
  if (jb < jn) {
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      const float* arow = a_rows[r];
      float* crow = c_rows[r];
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk * a_kstride];
        if (av == 0.0f) {
          continue;
        }
        const float* brow = b + kk * ldb;
        for (int64_t j = jb; j < jn; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  }
}

void F32Neon(const float* const* a_rows, int64_t a_kstride, const float* b,
             int64_t ldb, int64_t rows, int64_t jn, int64_t k, float* const* c_rows) {
  switch (rows) {
    case 1:
      F32Tile<1>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 2:
      F32Tile<2>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 3:
      F32Tile<3>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 4:
      F32Tile<4>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    default:
      break;
  }
}

void WinoMaddNeon(const float* u, const float* v, float* m, int64_t count) {
  float32x4_t m0 = vld1q_f32(m);
  float32x4_t m1 = vld1q_f32(m + 4);
  float32x4_t m2 = vld1q_f32(m + 8);
  float32x4_t m3 = vld1q_f32(m + 12);
  for (int64_t c = 0; c < count; ++c) {
    const float* uc = u + c * 16;
    const float* vc = v + c * 16;
    m0 = vaddq_f32(m0, vmulq_f32(vld1q_f32(uc), vld1q_f32(vc)));
    m1 = vaddq_f32(m1, vmulq_f32(vld1q_f32(uc + 4), vld1q_f32(vc + 4)));
    m2 = vaddq_f32(m2, vmulq_f32(vld1q_f32(uc + 8), vld1q_f32(vc + 8)));
    m3 = vaddq_f32(m3, vmulq_f32(vld1q_f32(uc + 12), vld1q_f32(vc + 12)));
  }
  vst1q_f32(m, m0);
  vst1q_f32(m + 4, m1);
  vst1q_f32(m + 8, m2);
  vst1q_f32(m + 12, m3);
}

}  // namespace

const GemmMicroKernels* NeonTable() {
  static const GemmMicroKernels table = {Isa::kNeon, Qu8Neon, F32Neon, F16Scalar,
                                         WinoMaddNeon};
  return &table;
}

}  // namespace ulayer::simd::detail

#else  // !defined(__aarch64__)

#include "kernels/simd_internal.h"

namespace ulayer::simd::detail {
const GemmMicroKernels* NeonTable() { return nullptr; }
}  // namespace ulayer::simd::detail

#endif  // aarch64
