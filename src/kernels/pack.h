// Prepare-time filter-panel packing (DESIGN.md Section 13).
//
// The GEMM micro-kernels read kRowTile A-rows (filter rows) together; with
// plain row-major filters those reads are k-strided gathers from 4 rows that
// may sit megabytes apart. Packing interleaves each group of kRowTile rows
// k-major —
//   panel[tile][kk][r] = a[(tile*kRowTile + r) * k + kk]
// — so one tile's worth of A is a single contiguous, cache- and
// prefetch-friendly stream. Partial final tiles are zero-padded; the
// micro-kernels only dereference `rows` of the tile's row pointers, so the
// padding is never read as data, it just keeps the layout uniform.
//
// Packing is gemmlowp's packed-LHS design (Jacob et al.) applied at prepare
// time: filters are constant, so the pack cost is paid once per model, not
// per call (see PreparedModel).
#pragma once

#include <cstdint>

#include "quant/half.h"

namespace ulayer {

// Number of T elements a packed panel buffer for `rows` x `k` occupies
// (rows rounded up to a whole number of kRowTile tiles).
int64_t PackedPanelElems(int64_t rows, int64_t k);

// Packs row-major a[rows][k] into the interleaved panel layout above.
// `out` must hold PackedPanelElems(rows, k) elements.
void PackRowPanels(const uint8_t* a, int64_t rows, int64_t k, uint8_t* out);
void PackRowPanels(const float* a, int64_t rows, int64_t k, float* out);
void PackRowPanels(const Half* a, int64_t rows, int64_t k, Half* out);

}  // namespace ulayer
