#include "kernels/pool.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "parallel/thread_pool.h"
#include "quant/half.h"

namespace ulayer {
namespace {

int64_t ResolveEnd(int64_t end, int64_t limit) {
  const int64_t e = end < 0 ? limit : end;
  assert(e <= limit);
  return e;
}

// Window iteration shared by all dtypes. `Reduce` sees the in-bounds window
// elements; out-of-bounds elements are excluded (Caffe semantics: average
// divides by the in-bounds count).
template <typename T, typename Reduce>
void PoolImpl(const Tensor& input, const Pool2DParams& p, Tensor& output, int64_t c_begin,
              int64_t c_end, Reduce reduce) {
  const Shape& is = input.shape();
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, is.c, out_h, out_w));
  const double ops_per_channel = static_cast<double>(out_h) * out_w * p.kernel_h * p.kernel_w;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    parallel::ParallelFor(c_begin, c_end, parallel::GrainForOps(ops_per_channel), [&](
                              int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        const T* in_c = input.Data<T>() + is.Offset(ni, c, 0, 0);
        T* out = output.Data<T>() + output.shape().Offset(ni, c, 0, 0);
        for (int oh = 0; oh < out_h; ++oh) {
          for (int ow = 0; ow < out_w; ++ow) {
            int h0 = std::max(oh * p.stride_h - p.pad_h, 0);
            int w0 = std::max(ow * p.stride_w - p.pad_w, 0);
            int h1 = std::min(oh * p.stride_h - p.pad_h + p.kernel_h,
                              static_cast<int>(is.h));
            int w1 = std::min(ow * p.stride_w - p.pad_w + p.kernel_w,
                              static_cast<int>(is.w));
            // Ceil-mode windows near the border can land fully in the
            // padding; clamp to the nearest in-bounds element (Caffe clips
            // the same way). A window entirely above/left of the input has
            // h1 <= 0 (resp. w1 <= 0) — clamp the end to one in-bounds
            // element first so the h0/w0 clamp below cannot go negative and
            // read out of bounds; a window entirely below/right is handled
            // by the h0/w0 clamp.
            h1 = std::max(h1, 1);
            w1 = std::max(w1, 1);
            h0 = std::min(h0, h1 - 1);
            w0 = std::min(w0, w1 - 1);
            out[oh * out_w + ow] =
                reduce(in_c, static_cast<int>(is.w), h0, h1, w0, w1);
          }
        }
      }
    });
  }
}

template <typename T>
T MaxWindow(const T* in, int width, int h0, int h1, int w0, int w1) {
  T best = in[h0 * width + w0];
  for (int h = h0; h < h1; ++h) {
    for (int w = w0; w < w1; ++w) {
      const T v = in[h * width + w];
      if (best < v) {
        best = v;
      }
    }
  }
  return best;
}

float AvgWindowF32(const float* in, int width, int h0, int h1, int w0, int w1) {
  float sum = 0.0f;
  for (int h = h0; h < h1; ++h) {
    for (int w = w0; w < w1; ++w) {
      sum += in[h * width + w];
    }
  }
  return sum / static_cast<float>((h1 - h0) * (w1 - w0));
}

Half AvgWindowF16(const Half* in, int width, int h0, int h1, int w0, int w1) {
  Half sum(0.0f);
  for (int h = h0; h < h1; ++h) {
    for (int w = w0; w < w1; ++w) {
      sum += in[h * width + w];
    }
  }
  return sum / Half(static_cast<float>((h1 - h0) * (w1 - w0)));
}

uint8_t AvgWindowQU8(const uint8_t* in, int width, int h0, int h1, int w0, int w1) {
  int32_t sum = 0;
  for (int h = h0; h < h1; ++h) {
    for (int w = w0; w < w1; ++w) {
      sum += in[h * width + w];
    }
  }
  const int32_t count = (h1 - h0) * (w1 - w0);
  // Round-half-away-from-zero on the non-negative sum.
  return static_cast<uint8_t>((sum + count / 2) / count);
}

}  // namespace

void Pool2DF32(const Tensor& input, const Pool2DParams& p, Tensor& output, int64_t c_begin,
               int64_t c_end) {
  assert(input.dtype() == DType::kF32);
  c_end = ResolveEnd(c_end, input.shape().c);
  if (p.kind == PoolKind::kMax) {
    PoolImpl<float>(input, p, output, c_begin, c_end, MaxWindow<float>);
  } else {
    PoolImpl<float>(input, p, output, c_begin, c_end, AvgWindowF32);
  }
}

void Pool2DF16(const Tensor& input, const Pool2DParams& p, Tensor& output, int64_t c_begin,
               int64_t c_end) {
  assert(input.dtype() == DType::kF16);
  c_end = ResolveEnd(c_end, input.shape().c);
  if (p.kind == PoolKind::kMax) {
    PoolImpl<Half>(input, p, output, c_begin, c_end, MaxWindow<Half>);
  } else {
    PoolImpl<Half>(input, p, output, c_begin, c_end, AvgWindowF16);
  }
}

void Pool2DQU8(const Tensor& input, const Pool2DParams& p, Tensor& output, int64_t c_begin,
               int64_t c_end) {
  assert(input.dtype() == DType::kQUInt8);
  c_end = ResolveEnd(c_end, input.shape().c);
  output.set_quant_params(input.scale(), input.zero_point());
  if (p.kind == PoolKind::kMax) {
    PoolImpl<uint8_t>(input, p, output, c_begin, c_end, MaxWindow<uint8_t>);
  } else {
    PoolImpl<uint8_t>(input, p, output, c_begin, c_end, AvgWindowQU8);
  }
}

void GlobalAvgPoolF32(const Tensor& input, Tensor& output, int64_t c_begin, int64_t c_end) {
  assert(input.dtype() == DType::kF32);
  const Shape& is = input.shape();
  c_end = ResolveEnd(c_end, is.c);
  assert(output.shape() == Shape(is.n, is.c, 1, 1));
  const int64_t spatial = is.h * is.w;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    parallel::ParallelFor(
        c_begin, c_end, parallel::GrainForOps(static_cast<double>(spatial)),
        [&](int64_t cb, int64_t ce) {
          for (int64_t c = cb; c < ce; ++c) {
            const float* in_c = input.Data<float>() + is.Offset(ni, c, 0, 0);
            double sum = 0.0;
            for (int64_t i = 0; i < spatial; ++i) {
              sum += static_cast<double>(in_c[i]);
            }
            output.Data<float>()[ni * is.c + c] =
                static_cast<float>(sum / static_cast<double>(spatial));
          }
        });
  }
}

void GlobalAvgPoolF16(const Tensor& input, Tensor& output, int64_t c_begin, int64_t c_end) {
  assert(input.dtype() == DType::kF16);
  const Shape& is = input.shape();
  c_end = ResolveEnd(c_end, is.c);
  const int64_t spatial = is.h * is.w;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    parallel::ParallelFor(
        c_begin, c_end, parallel::GrainForOps(static_cast<double>(spatial)),
        [&](int64_t cb, int64_t ce) {
          for (int64_t c = cb; c < ce; ++c) {
            const Half* in_c = input.Data<Half>() + is.Offset(ni, c, 0, 0);
            Half sum(0.0f);
            for (int64_t i = 0; i < spatial; ++i) {
              sum += in_c[i];
            }
            output.Data<Half>()[ni * is.c + c] = sum / Half(static_cast<float>(spatial));
          }
        });
  }
}

void GlobalAvgPoolQU8(const Tensor& input, Tensor& output, int64_t c_begin, int64_t c_end) {
  assert(input.dtype() == DType::kQUInt8);
  const Shape& is = input.shape();
  c_end = ResolveEnd(c_end, is.c);
  output.set_quant_params(input.scale(), input.zero_point());
  const int64_t spatial = is.h * is.w;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    parallel::ParallelFor(
        c_begin, c_end, parallel::GrainForOps(static_cast<double>(spatial)),
        [&](int64_t cb, int64_t ce) {
          for (int64_t c = cb; c < ce; ++c) {
            const uint8_t* in_c = input.Data<uint8_t>() + is.Offset(ni, c, 0, 0);
            int64_t sum = 0;
            for (int64_t i = 0; i < spatial; ++i) {
              sum += in_c[i];
            }
            output.Data<uint8_t>()[ni * is.c + c] =
                static_cast<uint8_t>((sum + spatial / 2) / spatial);
          }
        });
  }
}

AccessSpec Pool2DAccessSpec(DType storage, const Shape& input_shape, const Pool2DParams& p,
                            const Shape& out_shape, int64_t c_begin, int64_t c_end) {
  c_end = ResolveEnd(c_end, out_shape.c);
  const int64_t elem = DTypeSize(storage);
  AccessSpec spec;
  spec.has_spec = true;
  spec.writes = ChannelSliceRanges(out_shape, elem, c_begin, c_end);
  spec.reads.push_back(ChannelSliceRanges(input_shape, elem, c_begin, c_end));
  LoopSpec loop;
  loop.begin = c_begin;
  loop.end = c_end;
  loop.grain = parallel::GrainForOps(static_cast<double>(out_shape.h) *
                                     static_cast<double>(out_shape.w) * p.kernel_h *
                                     p.kernel_w);
  loop.stride_bytes = out_shape.h * out_shape.w * elem;
  loop.iter_bytes = out_shape.h * out_shape.w * elem;
  loop.bases = BatchBases(out_shape, elem);
  spec.loops.push_back(loop);
  return spec;
}

AccessSpec GlobalAvgPoolAccessSpec(DType storage, const Shape& input_shape,
                                   const Shape& out_shape, int64_t c_begin, int64_t c_end) {
  c_end = ResolveEnd(c_end, out_shape.c);
  const int64_t elem = DTypeSize(storage);
  AccessSpec spec;
  spec.has_spec = true;
  spec.writes = ChannelSliceRanges(out_shape, elem, c_begin, c_end);
  spec.reads.push_back(ChannelSliceRanges(input_shape, elem, c_begin, c_end));
  LoopSpec loop;
  loop.begin = c_begin;
  loop.end = c_end;
  loop.grain = parallel::GrainForOps(static_cast<double>(input_shape.h) *
                                     static_cast<double>(input_shape.w));
  loop.stride_bytes = elem;  // Out spatial is 1x1: channel c writes one element.
  loop.iter_bytes = elem;
  loop.bases = BatchBases(out_shape, elem);
  spec.loops.push_back(loop);
  return spec;
}

}  // namespace ulayer
