#include "kernels/winograd.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "kernels/simd.h"
#include "parallel/thread_pool.h"

namespace ulayer {
namespace {

// Filter transform U = G g G^T, G = [[1,0,0],[.5,.5,.5],[.5,-.5,.5],[0,0,1]].
void TransformFilter(const float* g, float* u) {
  // Rows: t = G g (4x3).
  float t[4][3];
  for (int c = 0; c < 3; ++c) {
    const float g0 = g[0 * 3 + c], g1 = g[1 * 3 + c], g2 = g[2 * 3 + c];
    t[0][c] = g0;
    t[1][c] = 0.5f * (g0 + g1 + g2);
    t[2][c] = 0.5f * (g0 - g1 + g2);
    t[3][c] = g2;
  }
  // Columns: U = t G^T (4x4).
  for (int r = 0; r < 4; ++r) {
    const float t0 = t[r][0], t1 = t[r][1], t2 = t[r][2];
    u[r * 4 + 0] = t0;
    u[r * 4 + 1] = 0.5f * (t0 + t1 + t2);
    u[r * 4 + 2] = 0.5f * (t0 - t1 + t2);
    u[r * 4 + 3] = t2;
  }
}

// Input transform V = B^T d B,
// B^T = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]].
void TransformInput(const float d[4][4], float* v) {
  float t[4][4];
  for (int c = 0; c < 4; ++c) {
    t[0][c] = d[0][c] - d[2][c];
    t[1][c] = d[1][c] + d[2][c];
    t[2][c] = d[2][c] - d[1][c];
    t[3][c] = d[1][c] - d[3][c];
  }
  for (int r = 0; r < 4; ++r) {
    v[r * 4 + 0] = t[r][0] - t[r][2];
    v[r * 4 + 1] = t[r][1] + t[r][2];
    v[r * 4 + 2] = t[r][2] - t[r][1];
    v[r * 4 + 3] = t[r][1] - t[r][3];
  }
}

// Output transform y = A^T m A, A^T = [[1,1,1,0],[0,1,-1,-1]].
void TransformOutput(const float* m, float y[2][2]) {
  float t[2][4];
  for (int c = 0; c < 4; ++c) {
    t[0][c] = m[0 * 4 + c] + m[1 * 4 + c] + m[2 * 4 + c];
    t[1][c] = m[1 * 4 + c] - m[2 * 4 + c] - m[3 * 4 + c];
  }
  for (int r = 0; r < 2; ++r) {
    y[r][0] = t[r][0] + t[r][1] + t[r][2];
    y[r][1] = t[r][1] - t[r][2] - t[r][3];
  }
}

}  // namespace

bool WinogradApplicable(const Conv2DParams& p) {
  return p.kernel_h == 3 && p.kernel_w == 3 && p.stride_h == 1 && p.stride_w == 1;
}

void WinogradConv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
                       const Conv2DParams& p, Tensor& output, int64_t oc_begin, int64_t oc_end) {
  assert(WinogradApplicable(p));
  assert(input.dtype() == DType::kF32 && filters.dtype() == DType::kF32);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  if (oc_end < 0) {
    oc_end = fs.n;
  }
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));
  const int64_t ic = is.c;

  // Pre-transform the filter slice: U[oc - oc_begin][ic][16].
  std::vector<float> u(static_cast<size_t>((oc_end - oc_begin) * ic * 16));
  for (int64_t oc = oc_begin; oc < oc_end; ++oc) {
    for (int64_t c = 0; c < ic; ++c) {
      TransformFilter(filters.Data<float>() + fs.Offset(oc, c, 0, 0),
                      u.data() + ((oc - oc_begin) * ic + c) * 16);
    }
  }

  const int tiles_h = (out_h + 1) / 2;
  const int tiles_w = (out_w + 1) / 2;

  // Output channels are independent; each chunk walks every tile with its own
  // input-transform buffer (the transforms are cheap next to the per-channel
  // multiply-accumulate, so redoing them per chunk trades a little work for
  // zero sharing). The precomputed `u` is read-only.
  const double ops_per_oc = static_cast<double>(tiles_h) * tiles_w *
                            static_cast<double>(ic) * 16.0;
  const simd::GemmMicroKernels& mk = simd::ActiveGemmMicroKernels();
  parallel::ParallelFor(oc_begin, oc_end, parallel::GrainForOps(ops_per_oc), [&](
                            int64_t ob, int64_t oe) {
    std::vector<float> v(static_cast<size_t>(ic) * 16);
    for (int64_t ni = 0; ni < is.n; ++ni) {
      for (int th = 0; th < tiles_h; ++th) {
        for (int tw = 0; tw < tiles_w; ++tw) {
          // Gather the 4x4 input tile for every input channel (with padding).
          const int ih0 = th * 2 - p.pad_h;
          const int iw0 = tw * 2 - p.pad_w;
          for (int64_t c = 0; c < ic; ++c) {
            float d[4][4];
            const float* in_c = input.Data<float>() + is.Offset(ni, c, 0, 0);
            for (int r = 0; r < 4; ++r) {
              for (int cc = 0; cc < 4; ++cc) {
                const int ih = ih0 + r;
                const int iw = iw0 + cc;
                d[r][cc] = (ih < 0 || ih >= is.h || iw < 0 || iw >= is.w)
                               ? 0.0f
                               : in_c[ih * is.w + iw];
              }
            }
            TransformInput(d, v.data() + c * 16);
          }
          // Element-wise multiply-accumulate in the transform domain. The
          // micro-kernel keeps the per-lane ascending-c order with separate
          // mul+add, so m[] stays bit-identical to the scalar loop.
          for (int64_t oc = ob; oc < oe; ++oc) {
            float m[16] = {};
            const float* u_oc = u.data() + (oc - oc_begin) * ic * 16;
            mk.wino_madd(u_oc, v.data(), m, ic);
            float y[2][2];
            TransformOutput(m, y);
            const float b0 = bias.empty() ? 0.0f : bias.Data<float>()[oc];
            float* out = output.Data<float>() + output.shape().Offset(ni, oc, 0, 0);
            for (int r = 0; r < 2; ++r) {
              const int oh = th * 2 + r;
              if (oh >= out_h) {
                continue;
              }
              for (int cc = 0; cc < 2; ++cc) {
                const int ow = tw * 2 + cc;
                if (ow >= out_w) {
                  continue;
                }
                float val = y[r][cc] + b0;
                if (p.relu) {
                  val = std::max(val, 0.0f);
                }
                out[oh * out_w + ow] = val;
              }
            }
          }
        }
      }
    }
  });
}

AccessSpec WinogradConv2DAccessSpec(const Shape& input_shape, const Shape& filter_shape,
                                    const Conv2DParams& /*p*/, const Shape& out_shape,
                                    int64_t oc_begin, int64_t oc_end) {
  if (oc_end < 0) {
    oc_end = out_shape.c;
  }
  const int tiles_h = (static_cast<int>(out_shape.h) + 1) / 2;
  const int tiles_w = (static_cast<int>(out_shape.w) + 1) / 2;
  AccessSpec spec;
  spec.has_spec = true;
  spec.writes = ChannelSliceRanges(out_shape, int64_t{sizeof(float)}, oc_begin, oc_end);
  spec.reads.push_back(
      {AccessRange{0, input_shape.NumElements() * int64_t{sizeof(float)}}});
  // Iteration oc writes its spatial row of EVERY batch (the batch loop runs
  // inside each chunk), hence one base per batch on a single loop.
  LoopSpec loop;
  loop.begin = oc_begin;
  loop.end = oc_end;
  loop.grain = parallel::GrainForOps(static_cast<double>(tiles_h) * tiles_w *
                                     static_cast<double>(filter_shape.c) * 16.0);
  loop.stride_bytes = out_shape.h * out_shape.w * int64_t{sizeof(float)};
  loop.iter_bytes = out_shape.h * out_shape.w * int64_t{sizeof(float)};
  loop.bases = BatchBases(out_shape, int64_t{sizeof(float)});
  spec.loops.push_back(loop);
  return spec;
}

}  // namespace ulayer
