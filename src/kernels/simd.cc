#include "kernels/simd.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "kernels/simd_internal.h"

namespace ulayer::simd {
namespace {

Isa DetectBestIsa() {
#if defined(__x86_64__) || defined(__i386__)
  // AVX2 is only useful to us together with F16C (the F16 tile converts per
  // step); every AVX2 part ships F16C, but check both to be safe.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c")) {
    return Isa::kAvx2;
  }
  if (__builtin_cpu_supports("sse4.1")) {
    return Isa::kSse41;
  }
#elif defined(__aarch64__)
  return Isa::kNeon;
#endif
  return Isa::kScalar;
}

bool Supported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse41:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse4.1") != 0;
#else
      return false;
#endif
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("f16c") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

// ULAYER_SIMD=scalar|sse41|avx2|neon|auto. Read once; unknown values and
// unsupported requests fall back to detection (a typo must not change
// results, only possibly speed).
Isa ResolveFromEnv() {
  const char* env = std::getenv("ULAYER_SIMD");
  if (env != nullptr && env[0] != '\0') {
    const std::string v(env);
    Isa req = Isa::kScalar;
    bool known = true;
    if (v == "scalar") {
      req = Isa::kScalar;
    } else if (v == "sse41") {
      req = Isa::kSse41;
    } else if (v == "avx2") {
      req = Isa::kAvx2;
    } else if (v == "neon") {
      req = Isa::kNeon;
    } else {
      known = v == "auto";  // "auto" and anything else both detect.
    }
    if (known && v != "auto" && Supported(req)) {
      return req;
    }
  }
  return DetectBestIsa();
}

bool g_forced = false;
Isa g_forced_isa = Isa::kScalar;

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse41:
      return "sse41";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Isa ActiveIsa() {
  if (g_forced) {
    return g_forced_isa;
  }
  static const Isa resolved = ResolveFromEnv();
  return resolved;
}

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kAvx2, Isa::kNeon, Isa::kSse41, Isa::kScalar}) {
    if (Supported(isa)) {
      out.push_back(isa);
    }
  }
  return out;
}

void ForceIsa(Isa isa) {
  g_forced = true;
  g_forced_isa = Supported(isa) ? isa : DetectBestIsa();
}

void ResetForcedIsa() { g_forced = false; }

namespace detail {

void Qu8Scalar(const uint8_t* const* a_rows, int64_t a_kstride, const int32_t* a_zp,
               const uint8_t* b, int64_t ldb, int64_t rows, int64_t jn, int64_t k,
               int32_t* acc, int64_t acc_ld) {
  constexpr int64_t kKUnroll = 4;
  for (int64_t r = 0; r < rows; ++r) {
    const uint8_t* arow = a_rows[r];
    const int32_t zp = a_zp[r];
    int32_t* ar = acc + r * acc_ld;
    int64_t kk = 0;
    for (; kk + kKUnroll <= k; kk += kKUnroll) {
      const int32_t av0 = static_cast<int32_t>(arow[kk * a_kstride]) - zp;
      const int32_t av1 = static_cast<int32_t>(arow[(kk + 1) * a_kstride]) - zp;
      const int32_t av2 = static_cast<int32_t>(arow[(kk + 2) * a_kstride]) - zp;
      const int32_t av3 = static_cast<int32_t>(arow[(kk + 3) * a_kstride]) - zp;
      const uint8_t* b0p = b + kk * ldb;
      const uint8_t* b1p = b0p + ldb;
      const uint8_t* b2p = b1p + ldb;
      const uint8_t* b3p = b2p + ldb;
      for (int64_t j = 0; j < jn; ++j) {
        ar[j] += av0 * static_cast<int32_t>(b0p[j]) +
                 av1 * static_cast<int32_t>(b1p[j]) +
                 av2 * static_cast<int32_t>(b2p[j]) +
                 av3 * static_cast<int32_t>(b3p[j]);
      }
    }
    for (; kk < k; ++kk) {
      const int32_t av = static_cast<int32_t>(arow[kk * a_kstride]) - zp;
      const uint8_t* brow = b + kk * ldb;
      for (int64_t j = 0; j < jn; ++j) {
        ar[j] += av * static_cast<int32_t>(brow[j]);
      }
    }
  }
}

void F32Scalar(const float* const* a_rows, int64_t a_kstride, const float* b,
               int64_t ldb, int64_t rows, int64_t jn, int64_t k, float* const* c_rows) {
  constexpr int64_t kKUnroll = 4;
  for (int64_t r = 0; r < rows; ++r) {
    const float* arow = a_rows[r];
    float* crow = c_rows[r];
    int64_t kk = 0;
    for (; kk + kKUnroll <= k; kk += kKUnroll) {
      const float av0 = arow[kk * a_kstride];
      const float av1 = arow[(kk + 1) * a_kstride];
      const float av2 = arow[(kk + 2) * a_kstride];
      const float av3 = arow[(kk + 3) * a_kstride];
      const float* b0p = b + kk * ldb;
      const float* b1p = b0p + ldb;
      const float* b2p = b1p + ldb;
      const float* b3p = b2p + ldb;
      if (av0 != 0.0f && av1 != 0.0f && av2 != 0.0f && av3 != 0.0f) {
        for (int64_t j = 0; j < jn; ++j) {
          float t = crow[j];
          t += av0 * b0p[j];
          t += av1 * b1p[j];
          t += av2 * b2p[j];
          t += av3 * b3p[j];
          crow[j] = t;
        }
      } else {
        for (int64_t u = 0; u < kKUnroll; ++u) {
          const float av = arow[(kk + u) * a_kstride];
          if (av == 0.0f) {
            continue;
          }
          const float* brow = b + (kk + u) * ldb;
          for (int64_t j = 0; j < jn; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
    for (; kk < k; ++kk) {
      const float av = arow[kk * a_kstride];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b + kk * ldb;
      for (int64_t j = 0; j < jn; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void F16Scalar(const Half* const* a_rows, int64_t a_kstride, const Half* b,
               int64_t ldb, int64_t rows, int64_t jn, int64_t k, Half* const* c_rows) {
  // i-k-j with the C row as the running Half accumulator: per element this is
  // the chain c = RN16(c + RN16(a*b)) with ascending k — the exact op
  // sequence of the naive j-outer/k-inner register accumulator, but with B
  // streamed row-wise instead of strided column loads.
  for (int64_t r = 0; r < rows; ++r) {
    const Half* arow = a_rows[r];
    Half* crow = c_rows[r];
    for (int64_t kk = 0; kk < k; ++kk) {
      const Half av = arow[kk * a_kstride];
      const Half* brow = b + kk * ldb;
      for (int64_t j = 0; j < jn; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void WinoMaddScalar(const float* u, const float* v, float* m, int64_t count) {
  for (int64_t c = 0; c < count; ++c) {
    const float* uc = u + c * 16;
    const float* vc = v + c * 16;
    for (int64_t j = 0; j < 16; ++j) {
      m[j] += uc[j] * vc[j];
    }
  }
}

}  // namespace detail

const GemmMicroKernels& GemmMicroKernelsFor(Isa isa) {
  static const GemmMicroKernels scalar = {Isa::kScalar, detail::Qu8Scalar,
                                          detail::F32Scalar, detail::F16Scalar,
                                          detail::WinoMaddScalar};
  if (!Supported(isa)) {
    return scalar;  // Never hand out a table the CPU cannot execute.
  }
  const GemmMicroKernels* t = nullptr;
  switch (isa) {
    case Isa::kScalar:
      break;
    case Isa::kSse41:
      t = detail::Sse41Table();
      break;
    case Isa::kAvx2:
      t = detail::Avx2Table();
      break;
    case Isa::kNeon:
      t = detail::NeonTable();
      break;
  }
  return t != nullptr ? *t : scalar;
}

const GemmMicroKernels& ActiveGemmMicroKernels() {
  return GemmMicroKernelsFor(ActiveIsa());
}

}  // namespace ulayer::simd
