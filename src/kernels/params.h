// Parameter structs shared by the convolution and pooling kernels.
#pragma once

#include <cstdint>

namespace ulayer {

// Spatial parameters of a 2-D convolution (square kernels are the common
// case but rectangular ones are supported).
struct Conv2DParams {
  int kernel_h = 1;
  int kernel_w = 1;
  int stride_h = 1;
  int stride_w = 1;
  int pad_h = 0;
  int pad_w = 0;
  bool relu = false;  // Fused ReLU on the output.

  // Output spatial size for a given input size.
  int OutH(int in_h) const { return (in_h + 2 * pad_h - kernel_h) / stride_h + 1; }
  int OutW(int in_w) const { return (in_w + 2 * pad_w - kernel_w) / stride_w + 1; }
};

enum class PoolKind : uint8_t { kMax, kAvg };

struct Pool2DParams {
  PoolKind kind = PoolKind::kMax;
  int kernel_h = 2;
  int kernel_w = 2;
  int stride_h = 2;
  int stride_w = 2;
  int pad_h = 0;
  int pad_w = 0;
  // Ceil-mode output size (Caffe-style), used by GoogLeNet/SqueezeNet pools.
  bool ceil_mode = false;

  int OutDim(int in, int kernel, int stride, int pad) const {
    const int numer = in + 2 * pad - kernel;
    if (ceil_mode) {
      return (numer + stride - 1) / stride + 1;
    }
    return numer / stride + 1;
  }
  int OutH(int in_h) const { return OutDim(in_h, kernel_h, stride_h, pad_h); }
  int OutW(int in_w) const { return OutDim(in_w, kernel_w, stride_w, pad_w); }
};

// Local Response Normalization (across channels), AlexNet-style.
struct LrnParams {
  int local_size = 5;
  float alpha = 1e-4f;
  float beta = 0.75f;
  float k = 2.0f;
};

}  // namespace ulayer
