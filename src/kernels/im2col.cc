#include "kernels/im2col.h"

namespace ulayer {
namespace {

// Shared implementation across element types.
template <typename T>
void Im2ColImpl(const T* input, int channels, int height, int width, const Conv2DParams& p,
                T* cols, T pad_value) {
  const int out_h = p.OutH(height);
  const int out_w = p.OutW(width);
  const int64_t out_spatial = static_cast<int64_t>(out_h) * out_w;
  int64_t row = 0;
  for (int c = 0; c < channels; ++c) {
    const T* in_c = input + static_cast<int64_t>(c) * height * width;
    for (int kh = 0; kh < p.kernel_h; ++kh) {
      for (int kw = 0; kw < p.kernel_w; ++kw, ++row) {
        T* out_row = cols + row * out_spatial;
        int64_t idx = 0;
        for (int oh = 0; oh < out_h; ++oh) {
          const int ih = oh * p.stride_h - p.pad_h + kh;
          if (ih < 0 || ih >= height) {
            for (int ow = 0; ow < out_w; ++ow, ++idx) {
              out_row[idx] = pad_value;
            }
            continue;
          }
          const T* in_row = in_c + static_cast<int64_t>(ih) * width;
          for (int ow = 0; ow < out_w; ++ow, ++idx) {
            const int iw = ow * p.stride_w - p.pad_w + kw;
            out_row[idx] = (iw < 0 || iw >= width) ? pad_value : in_row[iw];
          }
        }
      }
    }
  }
}

}  // namespace

void Im2ColF32(const float* input, int channels, int height, int width, const Conv2DParams& p,
               float* cols, float pad_value) {
  Im2ColImpl(input, channels, height, width, p, cols, pad_value);
}

void Im2ColF16(const Half* input, int channels, int height, int width, const Conv2DParams& p,
               Half* cols, Half pad_value) {
  Im2ColImpl(input, channels, height, width, p, cols, pad_value);
}

void Im2ColQU8(const uint8_t* input, int channels, int height, int width, const Conv2DParams& p,
               uint8_t* cols, uint8_t pad_value) {
  Im2ColImpl(input, channels, height, width, p, cols, pad_value);
}

AccessRange Im2ColWriteRange(int channels, int height, int width, const Conv2DParams& p,
                             int64_t elem_bytes) {
  const int64_t rows = static_cast<int64_t>(channels) * p.kernel_h * p.kernel_w;
  const int64_t out_spatial = static_cast<int64_t>(p.OutH(height)) * p.OutW(width);
  return AccessRange{0, rows * out_spatial * elem_bytes};
}

}  // namespace ulayer
