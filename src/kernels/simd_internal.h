// Internal plumbing between simd.cc and the per-ISA translation units.
// Not part of the public kernel API.
#pragma once

#include "kernels/simd.h"

namespace ulayer::simd::detail {

// Scalar reference micro-kernels — the arithmetic contract every SIMD
// variant must reproduce (bit-identical QU8/F32, value-identical F16).
// Shared with the SSE4.1 table, which has no F16C and reuses the scalar F16.
void Qu8Scalar(const uint8_t* const* a_rows, int64_t a_kstride, const int32_t* a_zp,
               const uint8_t* b, int64_t ldb, int64_t rows, int64_t jn, int64_t k,
               int32_t* acc, int64_t acc_ld);
void F32Scalar(const float* const* a_rows, int64_t a_kstride, const float* b,
               int64_t ldb, int64_t rows, int64_t jn, int64_t k, float* const* c_rows);
void F16Scalar(const Half* const* a_rows, int64_t a_kstride, const Half* b,
               int64_t ldb, int64_t rows, int64_t jn, int64_t k, Half* const* c_rows);
void WinoMaddScalar(const float* u, const float* v, float* m, int64_t count);

// Per-ISA dispatch tables. Each returns nullptr when the variant is not
// compiled into this binary (the TU is only added on matching
// architectures); simd.cc provides the nullptr stubs for the others.
const GemmMicroKernels* Sse41Table();
const GemmMicroKernels* Avx2Table();
const GemmMicroKernels* NeonTable();

}  // namespace ulayer::simd::detail
