#include "kernels/conv.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "kernels/gemm.h"
#include "kernels/im2col.h"
#include "kernels/simd.h"
#include "parallel/thread_pool.h"
#include "quant/half.h"
#include "quant/quantize.h"

namespace ulayer {
namespace {

// Resolves oc_end == -1 and validates the range.
int64_t ResolveEnd(int64_t end, int64_t limit) {
  const int64_t e = end < 0 ? limit : end;
  assert(e <= limit);
  return e;
}

int64_t AlignUp64(int64_t bytes) { return (bytes + 63) & ~int64_t{63}; }

// Mirror of the GEMM blocking (see gemm.cc) for the per-channel kernel.
constexpr int64_t kRowTile = simd::kRowTile;
constexpr int64_t kColTileQ = 256;

// Slice view into the prepare-time packed filter panels (kernels/pack.h):
// panels interleave absolute output channels in groups of kRowTile, so a
// slice can only enter at a tile boundary. Cooperative split grains are
// kRowTile-aligned; an odd oc_begin (tests, hand-built plans) falls back to
// the row-major filters by returning null.
template <typename T>
const T* PackedSlice(const T* packed, int64_t oc_begin, int64_t k) {
  if (packed == nullptr || oc_begin % kRowTile != 0) {
    return nullptr;
  }
  return packed + (oc_begin / kRowTile) * (kRowTile * k);
}

// Rounds a ParallelFor grain up to a multiple of kRowTile so chunk boundaries
// do not split row tiles (GrainForOps returns 1 for large per-row op counts).
int64_t RowTileGrain(double ops_per_row) {
  const int64_t g = parallel::GrainForOps(ops_per_row);
  return ((g + kRowTile - 1) / kRowTile) * kRowTile;
}

// Scratch buffer: arena-backed when an arena is supplied (no heap
// allocation, contents uninitialized), per-call heap vector otherwise (the
// legacy path kept behind ExecConfig::scratch_arena). Every user below fully
// overwrites the buffer before reading it, so the uninitialized arena
// contents are never observed.
template <typename T>
class ScratchVec {
 public:
  ScratchVec(memory::ScratchArena* arena, size_t n) {
    if (arena != nullptr) {
      ptr_ = arena->AllocN<T>(n);
    } else {
      own_.resize(n);
      ptr_ = own_.data();
    }
  }
  T* data() { return ptr_; }

 private:
  T* ptr_ = nullptr;
  std::vector<T> own_;
};

}  // namespace

void Conv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin, int64_t oc_end,
               const ConvAux& aux) {
  assert(input.dtype() == DType::kF32 && filters.dtype() == DType::kF32);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();  // [OC, IC, KH, KW]
  assert(fs.c == is.c && fs.h == p.kernel_h && fs.w == p.kernel_w);
  oc_end = ResolveEnd(oc_end, fs.n);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));

  const int64_t k = fs.c * fs.h * fs.w;           // GEMM depth
  const int64_t spatial = int64_t{out_h} * out_w;  // GEMM columns
  ScratchVec<float> cols(aux.scratch, static_cast<size_t>(k * spatial));

  const float* bias_ptr = bias.empty() ? nullptr : bias.Data<float>() + oc_begin;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const float* img = input.Data<float>() + ni * is.c * is.h * is.w;
    Im2ColF32(img, static_cast<int>(is.c), static_cast<int>(is.h), static_cast<int>(is.w), p,
              cols.data());
    float* out = output.Data<float>() + output.shape().Offset(ni, oc_begin, 0, 0);
    const float* w = filters.Data<float>() + oc_begin * k;
    GemmF32(w, cols.data(), out, oc_end - oc_begin, spatial, k, bias_ptr, p.relu,
            PackedSlice(aux.filters_packed_f32, oc_begin, k));
  }
}

void Conv2DF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin, int64_t oc_end,
               const ConvAux& aux) {
  assert(input.dtype() == DType::kF16 && filters.dtype() == DType::kF16);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  oc_end = ResolveEnd(oc_end, fs.n);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));

  const int64_t k = fs.c * fs.h * fs.w;
  const int64_t spatial = int64_t{out_h} * out_w;
  ScratchVec<Half> cols(aux.scratch, static_cast<size_t>(k * spatial));

  const Half* bias_ptr = bias.empty() ? nullptr : bias.Data<Half>() + oc_begin;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const Half* img = input.Data<Half>() + ni * is.c * is.h * is.w;
    Im2ColF16(img, static_cast<int>(is.c), static_cast<int>(is.h), static_cast<int>(is.w), p,
              cols.data());
    Half* out = output.Data<Half>() + output.shape().Offset(ni, oc_begin, 0, 0);
    const Half* w = filters.Data<Half>() + oc_begin * k;
    GemmF16(w, cols.data(), out, oc_end - oc_begin, spatial, k, bias_ptr, p.relu,
            PackedSlice(aux.filters_packed_f16, oc_begin, k));
  }
}

void Conv2DQU8(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin, int64_t oc_end,
               const ConvAux& aux) {
  assert(input.dtype() == DType::kQUInt8 && filters.dtype() == DType::kQUInt8);
  assert(output.dtype() == DType::kQUInt8);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  oc_end = ResolveEnd(oc_end, fs.n);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));

  const int64_t k = fs.c * fs.h * fs.w;
  const int64_t spatial = int64_t{out_h} * out_w;
  ScratchVec<uint8_t> cols(aux.scratch, static_cast<size_t>(k * spatial));

  const RequantScale rs =
      aux.requant != nullptr
          ? *aux.requant
          : ComputeRequantScale(static_cast<double>(input.scale()) *
                                static_cast<double>(filters.scale()) /
                                static_cast<double>(output.scale()));
  const uint8_t in_pad = static_cast<uint8_t>(input.zero_point());
  const int32_t* rowsum =
      aux.filter_rowsum != nullptr ? aux.filter_rowsum + oc_begin : nullptr;

  const int32_t* bias_ptr = bias.empty() ? nullptr : bias.Data<int32_t>() + oc_begin;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const uint8_t* img = input.Data<uint8_t>() + ni * is.c * is.h * is.w;
    Im2ColQU8(img, static_cast<int>(is.c), static_cast<int>(is.h), static_cast<int>(is.w), p,
              cols.data(), in_pad);
    uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, oc_begin, 0, 0);
    const uint8_t* w = filters.Data<uint8_t>() + oc_begin * k;
    GemmQU8(w, filters.zero_point(), cols.data(), input.zero_point(), out, output.zero_point(), rs,
            oc_end - oc_begin, spatial, k, bias_ptr, p.relu, rowsum,
            PackedSlice(aux.filters_packed_qu8, oc_begin, k));
  }
}

void Conv2DQU8PerChannel(const Tensor& input, const Tensor& filters,
                         const PerChannelParams& w_params, const Tensor& bias,
                         const Conv2DParams& p, Tensor& output, int64_t oc_begin,
                         int64_t oc_end, const ConvAux& aux) {
  assert(input.dtype() == DType::kQUInt8 && filters.dtype() == DType::kQUInt8);
  assert(output.dtype() == DType::kQUInt8);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  oc_end = ResolveEnd(oc_end, fs.n);
  assert(w_params.channels.size() == static_cast<size_t>(fs.n));
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));

  const int64_t k = fs.c * fs.h * fs.w;
  const int64_t spatial = int64_t{out_h} * out_w;
  assert(k <= INT32_MAX / (255 * 255) && "int32 accumulator would overflow");
  ScratchVec<uint8_t> cols(aux.scratch, static_cast<size_t>(k * spatial));
  const uint8_t in_pad = static_cast<uint8_t>(input.zero_point());
  const int32_t in_zp = input.zero_point();
  const int32_t out_zp = output.zero_point();

  // Per-channel requantization multipliers: prepare-time cache (absolute
  // output-channel indexing) or a per-call table over this slice.
  std::vector<RequantScale> rs_local;
  if (aux.requant_per_channel == nullptr) {
    rs_local.resize(static_cast<size_t>(oc_end - oc_begin));
    for (int64_t oc = oc_begin; oc < oc_end; ++oc) {
      rs_local[static_cast<size_t>(oc - oc_begin)] =
          ComputeRequantScale(static_cast<double>(input.scale()) *
                              static_cast<double>(w_params.channels[static_cast<size_t>(oc)].scale) /
                              static_cast<double>(output.scale()));
    }
  }
  const auto requant_for = [&](int64_t oc) -> const RequantScale& {
    return aux.requant_per_channel != nullptr
               ? aux.requant_per_channel[oc]
               : rs_local[static_cast<size_t>(oc - oc_begin)];
  };

  const uint8_t* wdata = filters.Data<uint8_t>();
  // Absolute-indexed packed panels: chunk starts are oc_begin plus a multiple
  // of the kRowTile-aligned grain, so every tile start is tile-aligned
  // whenever oc_begin is.
  const uint8_t* packed =
      oc_begin % kRowTile == 0 ? aux.filters_packed_qu8 : nullptr;
  const simd::GemmMicroKernels& mk = simd::ActiveGemmMicroKernels();
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const uint8_t* img = input.Data<uint8_t>() + ni * is.c * is.h * is.w;
    Im2ColQU8(img, static_cast<int>(is.c), static_cast<int>(is.h), static_cast<int>(is.w), p,
              cols.data(), in_pad);
    // Output channels are independent; each chunk works on stack tiles (same
    // blocked shape and zero-point hoist as GemmQU8, but with per-row filter
    // zero points and requant multipliers).
    parallel::ParallelFor(
        oc_begin, oc_end,
        RowTileGrain(static_cast<double>(k) * static_cast<double>(spatial)),
        [&](int64_t ob, int64_t oe) {
          int32_t acc[kRowTile][kColTileQ];
          int32_t w_zp[kRowTile];
          int32_t srow[kRowTile];  // sum_k (w[oc,k] - w_zp[oc])
          int32_t b0[kRowTile];
          const uint8_t* w_rows[kRowTile];
          for (int64_t oc0 = ob; oc0 < oe; oc0 += kRowTile) {
            const int64_t rows = std::min(kRowTile, oe - oc0);
            int64_t w_kstride = 1;
            if (packed != nullptr) {
              assert(oc0 % kRowTile == 0);
              const uint8_t* panel = packed + (oc0 / kRowTile) * (kRowTile * k);
              for (int64_t r = 0; r < rows; ++r) {
                w_rows[r] = panel + r;
              }
              w_kstride = kRowTile;
            } else {
              for (int64_t r = 0; r < rows; ++r) {
                w_rows[r] = wdata + (oc0 + r) * k;
              }
            }
            for (int64_t r = 0; r < rows; ++r) {
              const int64_t oc = oc0 + r;
              w_zp[r] = w_params.channels[static_cast<size_t>(oc)].zero_point;
              int32_t raw = 0;
              if (aux.filter_rowsum != nullptr) {
                raw = aux.filter_rowsum[oc];
              } else {
                const uint8_t* wrow = w_rows[r];
                for (int64_t kk = 0; kk < k; ++kk) {
                  raw += static_cast<int32_t>(wrow[kk * w_kstride]);
                }
              }
              srow[r] = raw - static_cast<int32_t>(k) * w_zp[r];
              b0[r] = bias.empty() ? 0 : bias.Data<int32_t>()[oc];
            }
            for (int64_t jb = 0; jb < spatial; jb += kColTileQ) {
              const int64_t jn = std::min(kColTileQ, spatial - jb);
              for (int64_t r = 0; r < rows; ++r) {
                std::fill(acc[r], acc[r] + jn, b0[r]);
              }
              mk.qu8(w_rows, w_kstride, w_zp, cols.data() + jb, spatial, rows, jn,
                     k, &acc[0][0], kColTileQ);
              for (int64_t r = 0; r < rows; ++r) {
                const int64_t oc = oc0 + r;
                const int32_t corr = in_zp * srow[r];
                const RequantScale& rs = requant_for(oc);
                uint8_t* out =
                    output.Data<uint8_t>() + output.shape().Offset(ni, oc, 0, 0) + jb;
                for (int64_t j = 0; j < jn; ++j) {
                  uint8_t q = RequantizeOne(acc[r][j] - corr, rs, out_zp);
                  if (p.relu && q < out_zp) {
                    q = static_cast<uint8_t>(out_zp);
                  }
                  out[j] = q;
                }
              }
            }
          }
        });
  }
}

void Conv2DQU8ViaF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                     const Conv2DParams& p, Tensor& output, int64_t oc_begin, int64_t oc_end,
                     const ConvAux& aux) {
  assert(input.dtype() == DType::kQUInt8 && filters.dtype() == DType::kQUInt8);
  assert(output.dtype() == DType::kQUInt8);
  assert(bias.empty() || bias.dtype() == DType::kF32);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  oc_end = ResolveEnd(oc_end, fs.n);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));

  const QuantParams in_qp{input.scale(), input.zero_point()};
  const QuantParams w_qp{filters.scale(), filters.zero_point()};
  const QuantParams out_qp{output.scale(), output.zero_point()};

  const int64_t k = fs.c * fs.h * fs.w;
  const int64_t spatial = int64_t{out_h} * out_w;

  // F16 operands: the PreparedModel cache when available (built once at
  // prepare time), otherwise dequantized into staging buffers per call —
  // exactly the values a GPU kernel would produce per load. The packed
  // panels hold the same cached Half values in tile order, so when they
  // apply the per-call dequantization is skipped entirely.
  const Half* w_packed = PackedSlice(aux.filters_packed_f16, oc_begin, k);
  const Half* w16 = nullptr;
  const bool need_w16_staging = aux.filters_f16 == nullptr && w_packed == nullptr;
  ScratchVec<Half> w16_own(
      aux.scratch,
      need_w16_staging ? static_cast<size_t>((oc_end - oc_begin) * k) : 0);
  if (aux.filters_f16 != nullptr) {
    w16 = aux.filters_f16 + oc_begin * k;
  } else if (need_w16_staging) {
    const uint8_t* wq = filters.Data<uint8_t>() + oc_begin * k;
    const size_t wn = static_cast<size_t>((oc_end - oc_begin) * k);
    for (size_t i = 0; i < wn; ++i) {
      w16_own.data()[i] = Half(w_qp.Dequantize(wq[i]));
    }
    w16 = w16_own.data();
  }
  // No staging buffer at all when the layer has no bias.
  const Half* bias16 = nullptr;
  ScratchVec<Half> bias16_own(
      aux.scratch, (bias.empty() || aux.bias_f16 != nullptr)
                       ? 0
                       : static_cast<size_t>(oc_end - oc_begin));
  if (!bias.empty()) {
    if (aux.bias_f16 != nullptr) {
      bias16 = aux.bias_f16 + oc_begin;
    } else {
      const float* bp = bias.Data<float>() + oc_begin;
      for (int64_t i = 0; i < oc_end - oc_begin; ++i) {
        bias16_own.data()[i] = Half(bp[i]);
      }
      bias16 = bias16_own.data();
    }
  }

  // The dequantize+im2col producer: per-call buffers, unless the executor
  // staged the columns once for the whole node (cooperative slices would
  // otherwise redo this identically per slice).
  const Half* staged = aux.staged_cols;
  ScratchVec<Half> img16(aux.scratch,
                         staged != nullptr ? 0 : static_cast<size_t>(is.c * is.h * is.w));
  ScratchVec<Half> cols(aux.scratch,
                        staged != nullptr ? 0 : static_cast<size_t>(k * spatial));
  ScratchVec<Half> out16(aux.scratch, static_cast<size_t>((oc_end - oc_begin) * spatial));
  const int64_t img_elems = is.c * is.h * is.w;
  const int64_t out_elems = (oc_end - oc_begin) * spatial;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const Half* cols_ptr;
    if (staged != nullptr) {
      cols_ptr = staged + ni * k * spatial;
    } else {
      const uint8_t* img = input.Data<uint8_t>() + ni * img_elems;
      parallel::ParallelFor(0, img_elems, parallel::GrainForOps(1.0),
                            [&](int64_t b, int64_t e) {
                              for (int64_t i = b; i < e; ++i) {
                                img16.data()[i] = Half(in_qp.Dequantize(img[i]));
                              }
                            });
      Im2ColF16(img16.data(), static_cast<int>(is.c), static_cast<int>(is.h),
                static_cast<int>(is.w), p, cols.data());
      cols_ptr = cols.data();
    }
    GemmF16(w16, cols_ptr, out16.data(), oc_end - oc_begin, spatial, k, bias16, p.relu,
            w_packed);
    // Requantize the F16 results back to the shared QUInt8 output buffer.
    uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, oc_begin, 0, 0);
    parallel::ParallelFor(0, out_elems, parallel::GrainForOps(1.0),
                          [&](int64_t b, int64_t e) {
                            for (int64_t i = b; i < e; ++i) {
                              out[i] = out_qp.Quantize(out16.data()[i].ToFloat());
                            }
                          });
  }
}

const Half* Conv2DQU8ViaF16StageCols(const Tensor& input, const Shape& filter_shape,
                                     const Conv2DParams& p,
                                     memory::ScratchArena* arena) {
  if (arena == nullptr) {
    return nullptr;
  }
  assert(input.dtype() == DType::kQUInt8);
  const Shape& is = input.shape();
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  const int64_t k = filter_shape.c * filter_shape.h * filter_shape.w;
  const int64_t spatial = int64_t{out_h} * out_w;
  const int64_t img_elems = is.c * is.h * is.w;
  const QuantParams in_qp{input.scale(), input.zero_point()};

  Half* cols = arena->AllocN<Half>(static_cast<size_t>(is.n * k * spatial));
  Half* img16 = arena->AllocN<Half>(static_cast<size_t>(img_elems));
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const uint8_t* img = input.Data<uint8_t>() + ni * img_elems;
    // Same dequantize expression and im2col as the per-call path, so the
    // staged columns are byte-identical to what each slice would rebuild.
    parallel::ParallelFor(0, img_elems, parallel::GrainForOps(1.0),
                          [&](int64_t b, int64_t e) {
                            for (int64_t i = b; i < e; ++i) {
                              img16[i] = Half(in_qp.Dequantize(img[i]));
                            }
                          });
    Im2ColF16(img16, static_cast<int>(is.c), static_cast<int>(is.h),
              static_cast<int>(is.w), p, cols + ni * k * spatial);
  }
  return cols;
}

int64_t Conv2DViaF16StagedColsBytes(const Shape& input_shape, const Shape& filter_shape,
                                    const Conv2DParams& p) {
  const int out_h = p.OutH(static_cast<int>(input_shape.h));
  const int out_w = p.OutW(static_cast<int>(input_shape.w));
  const int64_t k = filter_shape.c * filter_shape.h * filter_shape.w;
  const int64_t spatial = int64_t{out_h} * out_w;
  const int64_t img_elems = input_shape.c * input_shape.h * input_shape.w;
  return AlignUp64(input_shape.n * k * spatial * int64_t{sizeof(Half)}) +
         AlignUp64(img_elems * int64_t{sizeof(Half)});
}

namespace {

template <typename T, typename Acc>
void DepthwiseImpl(const Tensor& input, const Tensor& filters, const Tensor& bias,
                   const Conv2DParams& p, Tensor& output, int64_t c_begin, int64_t c_end,
                   T pad_value) {
  const Shape& is = input.shape();
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  const double ops_per_channel =
      static_cast<double>(out_h) * out_w * p.kernel_h * p.kernel_w;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    parallel::ParallelFor(c_begin, c_end, parallel::GrainForOps(ops_per_channel), [&](
                              int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        const T* in_c = input.Data<T>() + is.Offset(ni, c, 0, 0);
        const T* w = filters.Data<T>() + c * p.kernel_h * p.kernel_w;
        const Acc b0 = bias.empty() ? Acc(0.0f) : Acc(bias.Data<T>()[c]);
        T* out = output.Data<T>() + output.shape().Offset(ni, c, 0, 0);
        for (int oh = 0; oh < out_h; ++oh) {
          for (int ow = 0; ow < out_w; ++ow) {
            Acc acc = b0;
            for (int kh = 0; kh < p.kernel_h; ++kh) {
              const int ih = oh * p.stride_h - p.pad_h + kh;
              for (int kw = 0; kw < p.kernel_w; ++kw) {
                const int iw = ow * p.stride_w - p.pad_w + kw;
                const T v = (ih < 0 || ih >= is.h || iw < 0 || iw >= is.w)
                                ? pad_value
                                : in_c[ih * is.w + iw];
                acc += Acc(v) * Acc(w[kh * p.kernel_w + kw]);
              }
            }
            if (p.relu && acc < Acc(0.0f)) {
              acc = Acc(0.0f);
            }
            out[oh * out_w + ow] = T(acc);
          }
        }
      }
    });
  }
}

}  // namespace

void DepthwiseConv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin, int64_t c_end) {
  assert(input.dtype() == DType::kF32);
  c_end = ResolveEnd(c_end, input.shape().c);
  DepthwiseImpl<float, float>(input, filters, bias, p, output, c_begin, c_end, 0.0f);
}

void DepthwiseConv2DF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin, int64_t c_end) {
  assert(input.dtype() == DType::kF16);
  c_end = ResolveEnd(c_end, input.shape().c);
  DepthwiseImpl<Half, Half>(input, filters, bias, p, output, c_begin, c_end, Half(0.0f));
}

void DepthwiseConv2DQU8(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin, int64_t c_end,
                        const ConvAux& aux) {
  assert(input.dtype() == DType::kQUInt8 && output.dtype() == DType::kQUInt8);
  const Shape& is = input.shape();
  c_end = ResolveEnd(c_end, is.c);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));

  const RequantScale rs =
      aux.requant != nullptr
          ? *aux.requant
          : ComputeRequantScale(static_cast<double>(input.scale()) *
                                static_cast<double>(filters.scale()) /
                                static_cast<double>(output.scale()));
  const int32_t in_zp = input.zero_point();
  const int32_t w_zp = filters.zero_point();
  const int32_t out_zp = output.zero_point();

  const double ops_per_channel =
      static_cast<double>(out_h) * out_w * p.kernel_h * p.kernel_w;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    parallel::ParallelFor(c_begin, c_end, parallel::GrainForOps(ops_per_channel), [&](
                              int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        const uint8_t* in_c = input.Data<uint8_t>() + is.Offset(ni, c, 0, 0);
        const uint8_t* w = filters.Data<uint8_t>() + c * p.kernel_h * p.kernel_w;
        const int32_t b0 = bias.empty() ? 0 : bias.Data<int32_t>()[c];
        uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, c, 0, 0);
        for (int oh = 0; oh < out_h; ++oh) {
          for (int ow = 0; ow < out_w; ++ow) {
            int32_t acc = b0;
            for (int kh = 0; kh < p.kernel_h; ++kh) {
              const int ih = oh * p.stride_h - p.pad_h + kh;
              for (int kw = 0; kw < p.kernel_w; ++kw) {
                const int iw = ow * p.stride_w - p.pad_w + kw;
                // Padding contributes (in_zp - in_zp) = 0 exactly.
                const int32_t v = (ih < 0 || ih >= is.h || iw < 0 || iw >= is.w)
                                      ? in_zp
                                      : in_c[ih * is.w + iw];
                acc += (v - in_zp) * (static_cast<int32_t>(w[kh * p.kernel_w + kw]) - w_zp);
              }
            }
            uint8_t q = RequantizeOne(acc, rs, out_zp);
            if (p.relu && q < out_zp) {
              q = static_cast<uint8_t>(out_zp);
            }
            out[oh * out_w + ow] = q;
          }
        }
      }
    });
  }
}

void DepthwiseConv2DQU8ViaF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                              const Conv2DParams& p, Tensor& output, int64_t c_begin,
                              int64_t c_end, const ConvAux& aux) {
  assert(input.dtype() == DType::kQUInt8 && output.dtype() == DType::kQUInt8);
  assert(bias.empty() || bias.dtype() == DType::kF32);
  const Shape& is = input.shape();
  c_end = ResolveEnd(c_end, is.c);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));

  const QuantParams in_qp{input.scale(), input.zero_point()};
  const QuantParams w_qp{filters.scale(), filters.zero_point()};
  const QuantParams out_qp{output.scale(), output.zero_point()};

  const double ops_per_channel =
      static_cast<double>(out_h) * out_w * p.kernel_h * p.kernel_w;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    parallel::ParallelFor(c_begin, c_end, parallel::GrainForOps(ops_per_channel), [&](
                              int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        const uint8_t* in_c = input.Data<uint8_t>() + is.Offset(ni, c, 0, 0);
        const int64_t ksize = int64_t{p.kernel_h} * p.kernel_w;
        const uint8_t* w = filters.Data<uint8_t>() + c * ksize;
        // Cached dequantized weights/bias produce the exact same Half values
        // as the inline conversion (they were built with the same
        // expressions at prepare time).
        const Half* w16 = aux.filters_f16 != nullptr ? aux.filters_f16 + c * ksize : nullptr;
        const Half b0 = bias.empty()
                            ? Half(0.0f)
                            : (aux.bias_f16 != nullptr ? aux.bias_f16[c]
                                                       : Half(bias.Data<float>()[c]));
        uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, c, 0, 0);
        for (int oh = 0; oh < out_h; ++oh) {
          for (int ow = 0; ow < out_w; ++ow) {
            Half acc = b0;
            for (int kh = 0; kh < p.kernel_h; ++kh) {
              const int ih = oh * p.stride_h - p.pad_h + kh;
              for (int kw = 0; kw < p.kernel_w; ++kw) {
                const int iw = ow * p.stride_w - p.pad_w + kw;
                const float v = (ih < 0 || ih >= is.h || iw < 0 || iw >= is.w)
                                    ? 0.0f
                                    : in_qp.Dequantize(in_c[ih * is.w + iw]);
                const Half wv = w16 != nullptr
                                    ? w16[kh * p.kernel_w + kw]
                                    : Half(w_qp.Dequantize(w[kh * p.kernel_w + kw]));
                acc += Half(v) * wv;
              }
            }
            float r = acc.ToFloat();
            if (p.relu) {
              r = std::max(r, 0.0f);
            }
            out[oh * out_w + ow] = out_qp.Quantize(r);
          }
        }
      }
    });
  }
}

int64_t Conv2DScratchBytes(DType storage, DType compute, const Shape& input_shape,
                           const Shape& filter_shape, const Conv2DParams& p,
                           bool staged_cols) {
  const int out_h = p.OutH(static_cast<int>(input_shape.h));
  const int out_w = p.OutW(static_cast<int>(input_shape.w));
  const int64_t k = filter_shape.c * filter_shape.h * filter_shape.w;
  const int64_t spatial = int64_t{out_h} * out_w;
  const int64_t oc = filter_shape.n;
  switch (storage) {
    case DType::kF32:
      return AlignUp64(k * spatial * int64_t{sizeof(float)});
    case DType::kF16:
      return AlignUp64(k * spatial * int64_t{sizeof(Half)});
    case DType::kQUInt8: {
      if (compute == DType::kF16) {
        // img16 + cols + out16, plus the w16/bias16 fallbacks for callers
        // without the prepare-time cache. With staged_cols the image and
        // column buffers come from ConvAux::staged_cols instead.
        const int64_t img_elems = input_shape.c * input_shape.h * input_shape.w;
        const int64_t per_call = staged_cols
                                     ? 0
                                     : AlignUp64(img_elems * int64_t{sizeof(Half)}) +
                                           AlignUp64(k * spatial * int64_t{sizeof(Half)});
        return per_call + AlignUp64(oc * spatial * int64_t{sizeof(Half)}) +
               AlignUp64(oc * k * int64_t{sizeof(Half)}) +
               AlignUp64(oc * int64_t{sizeof(Half)});
      }
      return AlignUp64(k * spatial);
    }
    case DType::kInt32:
      break;
  }
  return 0;
}

AccessSpec Conv2DAccessSpec(DType storage, DType compute, bool per_channel,
                            const Shape& input_shape, const Shape& filter_shape,
                            const Conv2DParams& p, const Shape& out_shape, int64_t oc_begin,
                            int64_t oc_end) {
  oc_end = ResolveEnd(oc_end, out_shape.c);
  const int64_t k = filter_shape.c * filter_shape.h * filter_shape.w;
  const int64_t spatial = int64_t{out_shape.h} * out_shape.w;
  const int64_t m = oc_end - oc_begin;
  const int64_t out_elem = DTypeSize(storage);

  AccessSpec spec;
  spec.has_spec = true;
  spec.writes = ChannelSliceRanges(out_shape, out_elem, oc_begin, oc_end);
  // Dense conv/FC reads every input channel (im2col unfolds the full image).
  spec.reads.push_back(
      {AccessRange{0, input_shape.NumElements() * DTypeSize(storage)}});
  spec.scratch_bytes = Conv2DScratchBytes(storage, compute, input_shape, filter_shape, p);

  if (storage == DType::kF32 || storage == DType::kF16) {
    // Im2Col fills scratch serially, then the GEMM row loop writes the output.
    LoopSpec gemm = GemmWriteLoopSpec(storage, m, spatial, k, 0);
    gemm.bases.clear();
    for (int64_t ni = 0; ni < out_shape.n; ++ni) {
      gemm.bases.push_back(out_shape.Offset(ni, oc_begin, 0, 0) * out_elem);
    }
    spec.loops.push_back(gemm);
  } else if (compute == DType::kF16) {
    // Via-F16 GPU path: the image-dequantize loop and the F16 GEMM write
    // scratch (img16 / out16); only the final requantize loop touches the
    // output tensor.
    LoopSpec img =
        ElementwiseLoopSpec(input_shape.c * input_shape.h * input_shape.w,
                            int64_t{sizeof(Half)}, 0);
    img.writes_scratch = true;
    spec.loops.push_back(img);
    LoopSpec gemm = GemmWriteLoopSpec(DType::kF16, m, spatial, k, 0);
    gemm.writes_scratch = true;
    spec.loops.push_back(gemm);
    LoopSpec requant = ElementwiseLoopSpec(m * spatial, 1, 0);
    requant.bases.clear();
    for (int64_t ni = 0; ni < out_shape.n; ++ni) {
      requant.bases.push_back(out_shape.Offset(ni, oc_begin, 0, 0));
    }
    spec.loops.push_back(requant);
  } else if (per_channel) {
    // Conv2DQU8PerChannel iterates absolute output channels with the
    // row-tile-aligned grain; channel oc writes its spatial row.
    LoopSpec loop;
    loop.begin = oc_begin;
    loop.end = oc_end;
    loop.grain = RowTileGrain(static_cast<double>(k) * static_cast<double>(spatial));
    loop.stride_bytes = spatial;
    loop.iter_bytes = spatial;
    loop.bases = BatchBases(out_shape, 1);
    spec.loops.push_back(loop);
  } else {
    LoopSpec gemm = GemmWriteLoopSpec(DType::kQUInt8, m, spatial, k, 0);
    gemm.bases.clear();
    for (int64_t ni = 0; ni < out_shape.n; ++ni) {
      gemm.bases.push_back(out_shape.Offset(ni, oc_begin, 0, 0));
    }
    spec.loops.push_back(gemm);
  }
  return spec;
}

AccessSpec DepthwiseConv2DAccessSpec(DType storage, const Shape& input_shape,
                                     const Conv2DParams& p, const Shape& out_shape,
                                     int64_t c_begin, int64_t c_end) {
  c_end = ResolveEnd(c_end, out_shape.c);
  const int64_t elem = DTypeSize(storage);
  AccessSpec spec;
  spec.has_spec = true;
  spec.writes = ChannelSliceRanges(out_shape, elem, c_begin, c_end);
  spec.reads.push_back(ChannelSliceRanges(input_shape, elem, c_begin, c_end));
  LoopSpec loop;
  loop.begin = c_begin;
  loop.end = c_end;
  loop.grain = parallel::GrainForOps(static_cast<double>(out_shape.h) *
                                     static_cast<double>(out_shape.w) * p.kernel_h *
                                     p.kernel_w);
  loop.stride_bytes = out_shape.h * out_shape.w * elem;
  loop.iter_bytes = out_shape.h * out_shape.w * elem;
  loop.bases = BatchBases(out_shape, elem);
  spec.loops.push_back(loop);
  return spec;
}

}  // namespace ulayer
