#include "kernels/conv.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "kernels/gemm.h"
#include "kernels/im2col.h"
#include "parallel/thread_pool.h"
#include "quant/half.h"
#include "quant/quantize.h"

namespace ulayer {
namespace {

// Resolves oc_end == -1 and validates the range.
int64_t ResolveEnd(int64_t end, int64_t limit) {
  const int64_t e = end < 0 ? limit : end;
  assert(e <= limit);
  return e;
}

}  // namespace

void Conv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin, int64_t oc_end) {
  assert(input.dtype() == DType::kF32 && filters.dtype() == DType::kF32);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();  // [OC, IC, KH, KW]
  assert(fs.c == is.c && fs.h == p.kernel_h && fs.w == p.kernel_w);
  oc_end = ResolveEnd(oc_end, fs.n);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));

  const int64_t k = fs.c * fs.h * fs.w;           // GEMM depth
  const int64_t spatial = int64_t{out_h} * out_w;  // GEMM columns
  std::vector<float> cols(k * spatial);

  const float* bias_ptr = bias.empty() ? nullptr : bias.Data<float>() + oc_begin;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const float* img = input.Data<float>() + ni * is.c * is.h * is.w;
    Im2ColF32(img, static_cast<int>(is.c), static_cast<int>(is.h), static_cast<int>(is.w), p,
              cols.data());
    float* out = output.Data<float>() + output.shape().Offset(ni, oc_begin, 0, 0);
    const float* w = filters.Data<float>() + oc_begin * k;
    GemmF32(w, cols.data(), out, oc_end - oc_begin, spatial, k, bias_ptr, p.relu);
  }
}

void Conv2DF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin, int64_t oc_end) {
  assert(input.dtype() == DType::kF16 && filters.dtype() == DType::kF16);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  oc_end = ResolveEnd(oc_end, fs.n);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));

  const int64_t k = fs.c * fs.h * fs.w;
  const int64_t spatial = int64_t{out_h} * out_w;
  std::vector<Half> cols(k * spatial);

  const Half* bias_ptr = bias.empty() ? nullptr : bias.Data<Half>() + oc_begin;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const Half* img = input.Data<Half>() + ni * is.c * is.h * is.w;
    Im2ColF16(img, static_cast<int>(is.c), static_cast<int>(is.h), static_cast<int>(is.w), p,
              cols.data());
    Half* out = output.Data<Half>() + output.shape().Offset(ni, oc_begin, 0, 0);
    const Half* w = filters.Data<Half>() + oc_begin * k;
    GemmF16(w, cols.data(), out, oc_end - oc_begin, spatial, k, bias_ptr, p.relu);
  }
}

void Conv2DQU8(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin, int64_t oc_end) {
  assert(input.dtype() == DType::kQUInt8 && filters.dtype() == DType::kQUInt8);
  assert(output.dtype() == DType::kQUInt8);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  oc_end = ResolveEnd(oc_end, fs.n);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));

  const int64_t k = fs.c * fs.h * fs.w;
  const int64_t spatial = int64_t{out_h} * out_w;
  std::vector<uint8_t> cols(k * spatial);

  const double real_mult = static_cast<double>(input.scale()) * static_cast<double>(filters.scale()) /
      static_cast<double>(output.scale());
  const RequantScale rs = ComputeRequantScale(real_mult);
  const uint8_t in_pad = static_cast<uint8_t>(input.zero_point());

  const int32_t* bias_ptr = bias.empty() ? nullptr : bias.Data<int32_t>() + oc_begin;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const uint8_t* img = input.Data<uint8_t>() + ni * is.c * is.h * is.w;
    Im2ColQU8(img, static_cast<int>(is.c), static_cast<int>(is.h), static_cast<int>(is.w), p,
              cols.data(), in_pad);
    uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, oc_begin, 0, 0);
    const uint8_t* w = filters.Data<uint8_t>() + oc_begin * k;
    GemmQU8(w, filters.zero_point(), cols.data(), input.zero_point(), out, output.zero_point(), rs,
            oc_end - oc_begin, spatial, k, bias_ptr, p.relu);
  }
}

void Conv2DQU8PerChannel(const Tensor& input, const Tensor& filters,
                         const PerChannelParams& w_params, const Tensor& bias,
                         const Conv2DParams& p, Tensor& output, int64_t oc_begin,
                         int64_t oc_end) {
  assert(input.dtype() == DType::kQUInt8 && filters.dtype() == DType::kQUInt8);
  assert(output.dtype() == DType::kQUInt8);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  oc_end = ResolveEnd(oc_end, fs.n);
  assert(w_params.channels.size() == static_cast<size_t>(fs.n));
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));

  const int64_t k = fs.c * fs.h * fs.w;
  const int64_t spatial = int64_t{out_h} * out_w;
  std::vector<uint8_t> cols(k * spatial);
  const uint8_t in_pad = static_cast<uint8_t>(input.zero_point());

  // Per-channel requantization multipliers.
  std::vector<RequantScale> rs(static_cast<size_t>(oc_end - oc_begin));
  for (int64_t oc = oc_begin; oc < oc_end; ++oc) {
    rs[static_cast<size_t>(oc - oc_begin)] =
        ComputeRequantScale(static_cast<double>(input.scale()) *
                            static_cast<double>(w_params.channels[static_cast<size_t>(oc)].scale) /
                            static_cast<double>(output.scale()));
  }

  for (int64_t ni = 0; ni < is.n; ++ni) {
    const uint8_t* img = input.Data<uint8_t>() + ni * is.c * is.h * is.w;
    Im2ColQU8(img, static_cast<int>(is.c), static_cast<int>(is.h), static_cast<int>(is.w), p,
              cols.data(), in_pad);
    // Output channels are independent; each chunk owns its accumulator row.
    parallel::ParallelFor(
        oc_begin, oc_end,
        parallel::GrainForOps(static_cast<double>(k) * static_cast<double>(spatial)),
        [&](int64_t ob, int64_t oe) {
          std::vector<int32_t> acc(static_cast<size_t>(spatial));
          for (int64_t oc = ob; oc < oe; ++oc) {
            const int32_t w_zp = w_params.channels[static_cast<size_t>(oc)].zero_point;
            const uint8_t* wrow = filters.Data<uint8_t>() + oc * k;
            const int32_t b0 = bias.empty() ? 0 : bias.Data<int32_t>()[oc];
            std::fill(acc.begin(), acc.end(), b0);
            for (int64_t kk = 0; kk < k; ++kk) {
              const int32_t wv = static_cast<int32_t>(wrow[kk]) - w_zp;
              if (wv == 0) {
                continue;
              }
              const uint8_t* crow = cols.data() + kk * spatial;
              for (int64_t j = 0; j < spatial; ++j) {
                acc[static_cast<size_t>(j)] +=
                    wv * (static_cast<int32_t>(crow[j]) - input.zero_point());
              }
            }
            uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, oc, 0, 0);
            const RequantScale& r = rs[static_cast<size_t>(oc - oc_begin)];
            for (int64_t j = 0; j < spatial; ++j) {
              uint8_t q = RequantizeOne(acc[static_cast<size_t>(j)], r, output.zero_point());
              if (p.relu && q < output.zero_point()) {
                q = static_cast<uint8_t>(output.zero_point());
              }
              out[j] = q;
            }
          }
        });
  }
}

void Conv2DQU8ViaF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                     const Conv2DParams& p, Tensor& output, int64_t oc_begin, int64_t oc_end) {
  assert(input.dtype() == DType::kQUInt8 && filters.dtype() == DType::kQUInt8);
  assert(output.dtype() == DType::kQUInt8);
  assert(bias.empty() || bias.dtype() == DType::kF32);
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  oc_end = ResolveEnd(oc_end, fs.n);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  assert(output.shape() == Shape(is.n, fs.n, out_h, out_w));

  const QuantParams in_qp{input.scale(), input.zero_point()};
  const QuantParams w_qp{filters.scale(), filters.zero_point()};
  const QuantParams out_qp{output.scale(), output.zero_point()};

  const int64_t k = fs.c * fs.h * fs.w;
  const int64_t spatial = int64_t{out_h} * out_w;

  // On-the-fly conversion: dequantize the QUInt8 operands straight into F16
  // staging buffers (this is what the GPU kernels do per load; staging keeps
  // the reference kernel simple while producing identical values).
  std::vector<Half> w16(static_cast<size_t>((oc_end - oc_begin) * k));
  const uint8_t* wq = filters.Data<uint8_t>() + oc_begin * k;
  for (size_t i = 0; i < w16.size(); ++i) {
    w16[i] = Half(w_qp.Dequantize(wq[i]));
  }
  std::vector<Half> bias16(static_cast<size_t>(oc_end - oc_begin));
  if (!bias.empty()) {
    const float* bp = bias.Data<float>() + oc_begin;
    for (size_t i = 0; i < bias16.size(); ++i) {
      bias16[i] = Half(bp[i]);
    }
  }

  std::vector<Half> img16(static_cast<size_t>(is.c * is.h * is.w));
  std::vector<Half> cols(k * spatial);
  std::vector<Half> out16((oc_end - oc_begin) * spatial);
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const uint8_t* img = input.Data<uint8_t>() + ni * is.c * is.h * is.w;
    parallel::ParallelFor(0, static_cast<int64_t>(img16.size()), parallel::GrainForOps(1.0),
                          [&](int64_t b, int64_t e) {
                            for (int64_t i = b; i < e; ++i) {
                              img16[static_cast<size_t>(i)] = Half(in_qp.Dequantize(img[i]));
                            }
                          });
    Im2ColF16(img16.data(), static_cast<int>(is.c), static_cast<int>(is.h),
              static_cast<int>(is.w), p, cols.data());
    GemmF16(w16.data(), cols.data(), out16.data(), oc_end - oc_begin, spatial, k,
            bias.empty() ? nullptr : bias16.data(), p.relu);
    // Requantize the F16 results back to the shared QUInt8 output buffer.
    uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, oc_begin, 0, 0);
    parallel::ParallelFor(0, static_cast<int64_t>(out16.size()), parallel::GrainForOps(1.0),
                          [&](int64_t b, int64_t e) {
                            for (int64_t i = b; i < e; ++i) {
                              out[i] = out_qp.Quantize(out16[static_cast<size_t>(i)].ToFloat());
                            }
                          });
  }
}

namespace {

template <typename T, typename Acc>
void DepthwiseImpl(const Tensor& input, const Tensor& filters, const Tensor& bias,
                   const Conv2DParams& p, Tensor& output, int64_t c_begin, int64_t c_end,
                   T pad_value) {
  const Shape& is = input.shape();
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  const double ops_per_channel =
      static_cast<double>(out_h) * out_w * p.kernel_h * p.kernel_w;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    parallel::ParallelFor(c_begin, c_end, parallel::GrainForOps(ops_per_channel), [&](
                              int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        const T* in_c = input.Data<T>() + is.Offset(ni, c, 0, 0);
        const T* w = filters.Data<T>() + c * p.kernel_h * p.kernel_w;
        const Acc b0 = bias.empty() ? Acc(0.0f) : Acc(bias.Data<T>()[c]);
        T* out = output.Data<T>() + output.shape().Offset(ni, c, 0, 0);
        for (int oh = 0; oh < out_h; ++oh) {
          for (int ow = 0; ow < out_w; ++ow) {
            Acc acc = b0;
            for (int kh = 0; kh < p.kernel_h; ++kh) {
              const int ih = oh * p.stride_h - p.pad_h + kh;
              for (int kw = 0; kw < p.kernel_w; ++kw) {
                const int iw = ow * p.stride_w - p.pad_w + kw;
                const T v = (ih < 0 || ih >= is.h || iw < 0 || iw >= is.w)
                                ? pad_value
                                : in_c[ih * is.w + iw];
                acc += Acc(v) * Acc(w[kh * p.kernel_w + kw]);
              }
            }
            if (p.relu && acc < Acc(0.0f)) {
              acc = Acc(0.0f);
            }
            out[oh * out_w + ow] = T(acc);
          }
        }
      }
    });
  }
}

}  // namespace

void DepthwiseConv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin, int64_t c_end) {
  assert(input.dtype() == DType::kF32);
  c_end = ResolveEnd(c_end, input.shape().c);
  DepthwiseImpl<float, float>(input, filters, bias, p, output, c_begin, c_end, 0.0f);
}

void DepthwiseConv2DF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin, int64_t c_end) {
  assert(input.dtype() == DType::kF16);
  c_end = ResolveEnd(c_end, input.shape().c);
  DepthwiseImpl<Half, Half>(input, filters, bias, p, output, c_begin, c_end, Half(0.0f));
}

void DepthwiseConv2DQU8(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin, int64_t c_end) {
  assert(input.dtype() == DType::kQUInt8 && output.dtype() == DType::kQUInt8);
  const Shape& is = input.shape();
  c_end = ResolveEnd(c_end, is.c);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));

  const double real_mult = static_cast<double>(input.scale()) * static_cast<double>(filters.scale()) /
      static_cast<double>(output.scale());
  const RequantScale rs = ComputeRequantScale(real_mult);
  const int32_t in_zp = input.zero_point();
  const int32_t w_zp = filters.zero_point();
  const int32_t out_zp = output.zero_point();

  const double ops_per_channel =
      static_cast<double>(out_h) * out_w * p.kernel_h * p.kernel_w;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    parallel::ParallelFor(c_begin, c_end, parallel::GrainForOps(ops_per_channel), [&](
                              int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        const uint8_t* in_c = input.Data<uint8_t>() + is.Offset(ni, c, 0, 0);
        const uint8_t* w = filters.Data<uint8_t>() + c * p.kernel_h * p.kernel_w;
        const int32_t b0 = bias.empty() ? 0 : bias.Data<int32_t>()[c];
        uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, c, 0, 0);
        for (int oh = 0; oh < out_h; ++oh) {
          for (int ow = 0; ow < out_w; ++ow) {
            int32_t acc = b0;
            for (int kh = 0; kh < p.kernel_h; ++kh) {
              const int ih = oh * p.stride_h - p.pad_h + kh;
              for (int kw = 0; kw < p.kernel_w; ++kw) {
                const int iw = ow * p.stride_w - p.pad_w + kw;
                // Padding contributes (in_zp - in_zp) = 0 exactly.
                const int32_t v = (ih < 0 || ih >= is.h || iw < 0 || iw >= is.w)
                                      ? in_zp
                                      : in_c[ih * is.w + iw];
                acc += (v - in_zp) * (static_cast<int32_t>(w[kh * p.kernel_w + kw]) - w_zp);
              }
            }
            uint8_t q = RequantizeOne(acc, rs, out_zp);
            if (p.relu && q < out_zp) {
              q = static_cast<uint8_t>(out_zp);
            }
            out[oh * out_w + ow] = q;
          }
        }
      }
    });
  }
}

void DepthwiseConv2DQU8ViaF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                              const Conv2DParams& p, Tensor& output, int64_t c_begin,
                              int64_t c_end) {
  assert(input.dtype() == DType::kQUInt8 && output.dtype() == DType::kQUInt8);
  assert(bias.empty() || bias.dtype() == DType::kF32);
  const Shape& is = input.shape();
  c_end = ResolveEnd(c_end, is.c);
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));

  const QuantParams in_qp{input.scale(), input.zero_point()};
  const QuantParams w_qp{filters.scale(), filters.zero_point()};
  const QuantParams out_qp{output.scale(), output.zero_point()};

  const double ops_per_channel =
      static_cast<double>(out_h) * out_w * p.kernel_h * p.kernel_w;
  for (int64_t ni = 0; ni < is.n; ++ni) {
    parallel::ParallelFor(c_begin, c_end, parallel::GrainForOps(ops_per_channel), [&](
                              int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        const uint8_t* in_c = input.Data<uint8_t>() + is.Offset(ni, c, 0, 0);
        const uint8_t* w = filters.Data<uint8_t>() + c * p.kernel_h * p.kernel_w;
        const Half b0 = bias.empty() ? Half(0.0f) : Half(bias.Data<float>()[c]);
        uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, c, 0, 0);
        for (int oh = 0; oh < out_h; ++oh) {
          for (int ow = 0; ow < out_w; ++ow) {
            Half acc = b0;
            for (int kh = 0; kh < p.kernel_h; ++kh) {
              const int ih = oh * p.stride_h - p.pad_h + kh;
              for (int kw = 0; kw < p.kernel_w; ++kw) {
                const int iw = ow * p.stride_w - p.pad_w + kw;
                const float v = (ih < 0 || ih >= is.h || iw < 0 || iw >= is.w)
                                    ? 0.0f
                                    : in_qp.Dequantize(in_c[ih * is.w + iw]);
                acc += Half(v) * Half(w_qp.Dequantize(w[kh * p.kernel_w + kw]));
              }
            }
            float r = acc.ToFloat();
            if (p.relu) {
              r = std::max(r, 0.0f);
            }
            out[oh * out_w + ow] = out_qp.Quantize(r);
          }
        }
      }
    });
  }
}

}  // namespace ulayer
