#include "kernels/pack.h"

#include "kernels/simd.h"

namespace ulayer {
namespace {

template <typename T>
void PackRowPanelsImpl(const T* a, int64_t rows, int64_t k, T* out) {
  constexpr int64_t kTile = simd::kRowTile;
  const T zero{};
  for (int64_t i0 = 0; i0 < rows; i0 += kTile) {
    T* panel = out + (i0 / kTile) * (kTile * k);
    for (int64_t kk = 0; kk < k; ++kk) {
      for (int64_t r = 0; r < kTile; ++r) {
        panel[kk * kTile + r] = i0 + r < rows ? a[(i0 + r) * k + kk] : zero;
      }
    }
  }
}

}  // namespace

int64_t PackedPanelElems(int64_t rows, int64_t k) {
  constexpr int64_t kTile = simd::kRowTile;
  return ((rows + kTile - 1) / kTile) * kTile * k;
}

void PackRowPanels(const uint8_t* a, int64_t rows, int64_t k, uint8_t* out) {
  PackRowPanelsImpl(a, rows, k, out);
}
void PackRowPanels(const float* a, int64_t rows, int64_t k, float* out) {
  PackRowPanelsImpl(a, rows, k, out);
}
void PackRowPanels(const Half* a, int64_t rows, int64_t k, Half* out) {
  PackRowPanelsImpl(a, rows, k, out);
}

}  // namespace ulayer
