// Pooling kernels. A pooling layer applies its window per channel, so the
// channel range [c_begin, c_end) distributes both input and output channels
// (paper Section 3.2, Figure 7b).
#pragma once

#include "kernels/access_spec.h"
#include "kernels/params.h"
#include "tensor/tensor.h"

namespace ulayer {

void Pool2DF32(const Tensor& input, const Pool2DParams& p, Tensor& output, int64_t c_begin = 0,
               int64_t c_end = -1);
void Pool2DF16(const Tensor& input, const Pool2DParams& p, Tensor& output, int64_t c_begin = 0,
               int64_t c_end = -1);

// Quantized pooling. Max pooling operates directly on the uint8 codes (the
// affine map is monotonic); average pooling accumulates in int32 and rounds.
// Input and output share quantization parameters.
void Pool2DQU8(const Tensor& input, const Pool2DParams& p, Tensor& output, int64_t c_begin = 0,
               int64_t c_end = -1);

// Global average pooling (spatial -> 1x1), used by GoogLeNet / SqueezeNet /
// MobileNet heads.
void GlobalAvgPoolF32(const Tensor& input, Tensor& output, int64_t c_begin = 0,
                      int64_t c_end = -1);
void GlobalAvgPoolF16(const Tensor& input, Tensor& output, int64_t c_begin = 0,
                      int64_t c_end = -1);
void GlobalAvgPoolQU8(const Tensor& input, Tensor& output, int64_t c_begin = 0,
                      int64_t c_end = -1);

// Declared access specifications (kernels/access_spec.h): pooling reads and
// writes exactly channels [c_begin, c_end) of every batch.
AccessSpec Pool2DAccessSpec(DType storage, const Shape& input_shape, const Pool2DParams& p,
                            const Shape& out_shape, int64_t c_begin, int64_t c_end);
AccessSpec GlobalAvgPoolAccessSpec(DType storage, const Shape& input_shape,
                                   const Shape& out_shape, int64_t c_begin, int64_t c_end);

}  // namespace ulayer
