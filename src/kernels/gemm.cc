#include "kernels/gemm.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "kernels/simd.h"
#include "parallel/thread_pool.h"

namespace ulayer {
namespace {

// Blocking parameters (DESIGN.md Sections 9 and 13).
//
// All three GEMMs process kRowTile A-rows per micro-kernel tile so each B
// panel read is amortized over four output rows. The QU8 kernel additionally
// blocks columns over kColTileQ-wide int32 accumulator tiles kept on the
// stack (1 KB per row: L1-resident, and no per-call heap allocation). The
// inner tiles themselves live in kernels/simd.h and are runtime-dispatched
// to the best available ISA.
constexpr int64_t kRowTile = simd::kRowTile;
constexpr int64_t kColTileQ = 256;

// Rounds a ParallelFor grain up to a multiple of kRowTile so chunk boundaries
// do not split row tiles (GrainForOps returns 1 for large n*k), then floors it
// at kMinGrainRows: the cache blocking below amortizes its B panel staging
// over every row tile of a chunk, so a 4-row chunk (what GrainForOps alone
// yields on any real layer) would re-stream the panel once per tile and never
// hit the packed path. 32 rows = 8 row tiles per chunk still splits typical
// layer oc counts across a multi-core budget, and the grain stays a pure
// function of the shape — chunk boundaries never depend on the thread count
// (the determinism contract in parallel/thread_pool.h).
constexpr int64_t kMinGrainRows = 32;

int64_t RowTileGrain(double ops_per_row) {
  const int64_t g = parallel::GrainForOps(ops_per_row);
  const int64_t tiles = ((g + kRowTile - 1) / kRowTile) * kRowTile;
  return std::max(tiles, kMinGrainRows);
}

// Resolves the kRowTile row pointers for the tile starting at row i0: either
// into the packed panel (k-major interleaved groups of kRowTile rows,
// kernels/pack.h) or into plain row-major A. Returns the element stride
// between consecutive k values.
template <typename T>
int64_t TileRowPointers(const T* a, const T* a_packed, int64_t i0, int64_t rows,
                        int64_t k, const T* rows_out[]) {
  if (a_packed != nullptr) {
    assert(i0 % kRowTile == 0 && "packed panels require tile-aligned rows");
    const T* panel = a_packed + (i0 / kRowTile) * (kRowTile * k);
    for (int64_t r = 0; r < rows; ++r) {
      rows_out[r] = panel + r;
    }
    return kRowTile;
  }
  for (int64_t r = 0; r < rows; ++r) {
    rows_out[r] = a + (i0 + r) * k;
  }
  return 1;
}

}  // namespace

void GemmF32(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
             const float* bias, bool relu, const float* a_packed) {
  // Rows are independent: parallelize over m in kRowTile groups. Within the
  // micro-kernel every C element accumulates over ascending k with one
  // sequential += per term and the naive kernel's av == 0 skip preserved per
  // (row, k), so float results stay bit-identical to the naive i-k-j loop
  // regardless of the dispatched ISA (skipping matters only for the sign of
  // zero, but the baseline skipped, so every variant must too).
  //
  // Cache blocking, two levels. Columns: one B panel (k x jtile floats,
  // jtile capped so a strip fits L1) stays L2-resident across all row tiles
  // of a chunk — without it the full B matrix streams from memory once per
  // row tile. k: each micro-kernel call covers a kKStripF32-row strip of B
  // (kstrip x jtile x 4B ~ 32 KB, L1-resident across the strip's column
  // sub-blocks; a full-k walk at row stride n*4 costs a TLB miss per touch
  // on large layers). Blocking only reorders whole (row, column, k-range)
  // units of work: each C element still accumulates its terms in ascending
  // k — partial sums round-trip through C exactly — and sees one bias-fill
  // and one relu, so outputs stay bit-identical to the unblocked loop.
  //
  // When the chunk spans enough row tiles to amortize the copy, each B panel
  // is additionally packed into a contiguous (k x jn) buffer before use: at
  // large n the strided panel spans one 4 KB page per couple of B rows, so a
  // k-strip walk touches more pages than the L1 dTLB holds and every row
  // load stalls on a translation. The packed panel is dense (a 32 KB strip
  // covers 8 pages) and prefetch-friendly. Packing is pure data movement —
  // the kernels consume the same values in the same order via ldb.
  constexpr int64_t kBPanelElems = int64_t{1} << 18;  // 1 MiB of floats.
  constexpr int64_t kKStripF32 = 64;
  int64_t jtile = (kBPanelElems / std::max<int64_t>(k, 1)) & ~int64_t{15};
  jtile = std::min<int64_t>(std::max<int64_t>(jtile, 16), 128);
  const simd::GemmMicroKernels& mk = simd::ActiveGemmMicroKernels();
  parallel::ParallelFor(
      0, m, RowTileGrain(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        const float* a_rows[kRowTile];
        const float* a_rows_ks[kRowTile];
        float* c_rows[kRowTile];
        const bool pack_b = i_end - i_begin >= 4 * kRowTile;
        std::vector<float> bpanel(pack_b ? static_cast<size_t>(jtile * k) : 0);
        for (int64_t jc = 0; jc < n; jc += jtile) {
          const int64_t jn = std::min(jtile, n - jc);
          const float* bp = b + jc;
          int64_t bldb = n;
          if (pack_b) {
            for (int64_t kk = 0; kk < k; ++kk) {
              std::copy_n(b + kk * n + jc, jn, bpanel.data() + kk * jn);
            }
            bp = bpanel.data();
            bldb = jn;
          }
          // k strips outermost within the column block: one 32 KB B strip
          // stays L1-resident across every row tile instead of re-streaming
          // the whole panel from L2 once per tile. Each C element still sees
          // bias first, then its k terms in ascending order (strips ascend,
          // kk ascends within a strip), then one relu.
          for (int64_t i = i_begin; i < i_end; ++i) {
            float* crow = c + i * n + jc;
            const float b0 = bias != nullptr ? bias[i] : 0.0f;
            std::fill(crow, crow + jn, b0);
          }
          for (int64_t ks = 0; ks < k; ks += kKStripF32) {
            const int64_t kn = std::min(kKStripF32, k - ks);
            for (int64_t i0 = i_begin; i0 < i_end; i0 += kRowTile) {
              const int64_t rows = std::min(kRowTile, i_end - i0);
              const int64_t a_kstride = TileRowPointers(a, a_packed, i0, rows, k, a_rows);
              for (int64_t r = 0; r < rows; ++r) {
                a_rows_ks[r] = a_rows[r] + ks * a_kstride;
                c_rows[r] = c + (i0 + r) * n + jc;
              }
              mk.f32(a_rows_ks, a_kstride, bp + ks * bldb, bldb, rows, jn, kn, c_rows);
            }
          }
          if (relu) {
            for (int64_t i = i_begin; i < i_end; ++i) {
              float* crow = c + i * n + jc;
              for (int64_t j = 0; j < jn; ++j) {
                crow[j] = std::max(crow[j], 0.0f);
              }
            }
          }
        }
      });
}

void GemmF16(const Half* a, const Half* b, Half* c, int64_t m, int64_t n, int64_t k,
             const Half* bias, bool relu, const Half* a_packed) {
  // Same row-tiled structure as GemmF32; the C row doubles as the running
  // Half accumulator, so per element the op chain is c = RN16(c + RN16(a*b))
  // over ascending k — exactly the naive register-accumulator sequence, and
  // the F16C variant implements the identical per-step rounding in hardware.
  const Half zero(0.0f);
  const simd::GemmMicroKernels& mk = simd::ActiveGemmMicroKernels();
  parallel::ParallelFor(
      0, m, RowTileGrain(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        const Half* a_rows[kRowTile];
        Half* c_rows[kRowTile];
        for (int64_t i0 = i_begin; i0 < i_end; i0 += kRowTile) {
          const int64_t rows = std::min(kRowTile, i_end - i0);
          for (int64_t r = 0; r < rows; ++r) {
            c_rows[r] = c + (i0 + r) * n;
            const Half b0 = bias != nullptr ? bias[i0 + r] : zero;
            std::fill(c_rows[r], c_rows[r] + n, b0);
          }
          const int64_t a_kstride = TileRowPointers(a, a_packed, i0, rows, k, a_rows);
          mk.f16(a_rows, a_kstride, b, n, rows, n, k, c_rows);
          if (relu) {
            for (int64_t r = 0; r < rows; ++r) {
              Half* crow = c_rows[r];
              for (int64_t j = 0; j < n; ++j) {
                if (crow[j] < zero) {
                  crow[j] = zero;
                }
              }
            }
          }
        }
      });
}

void GemmQU8(const uint8_t* a, int32_t a_zp, const uint8_t* b, int32_t b_zp, uint8_t* c,
             int32_t c_zp, const RequantScale& rs, int64_t m, int64_t n, int64_t k,
             const int32_t* bias, bool relu, const int32_t* a_rowsum,
             const uint8_t* a_packed) {
  // Accumulation bound: every partial sum of (a - a_zp) * b terms is within
  // |bias| + 255*255*k, the same bound as the naive (a-a_zp)(b-b_zp) kernel,
  // because the b_zp correction is applied only after the k loop.
  assert(k <= INT32_MAX / (255 * 255) && "int32 accumulator would overflow");
  const simd::GemmMicroKernels& mk = simd::ActiveGemmMicroKernels();
  parallel::ParallelFor(
      0, m, RowTileGrain(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        // Stack tiles: no per-chunk heap allocation (DESIGN.md Section 9).
        int32_t acc[kRowTile][kColTileQ];
        int32_t srow[kRowTile];  // Signed row sums: sum_k (a[i,k] - a_zp).
        int32_t zps[kRowTile];
        const uint8_t* a_rows[kRowTile];
        std::fill(zps, zps + kRowTile, a_zp);
        for (int64_t i0 = i_begin; i0 < i_end; i0 += kRowTile) {
          const int64_t rows = std::min(kRowTile, i_end - i0);
          const int64_t a_kstride = TileRowPointers(a, a_packed, i0, rows, k, a_rows);
          for (int64_t r = 0; r < rows; ++r) {
            int32_t raw = 0;
            if (a_rowsum != nullptr) {
              raw = a_rowsum[i0 + r];
            } else {
              const uint8_t* arow = a_rows[r];
              for (int64_t kk = 0; kk < k; ++kk) {
                raw += static_cast<int32_t>(arow[kk * a_kstride]);
              }
            }
            srow[r] = raw - static_cast<int32_t>(k) * a_zp;
          }
          for (int64_t jb = 0; jb < n; jb += kColTileQ) {
            const int64_t jn = std::min(kColTileQ, n - jb);
            for (int64_t r = 0; r < rows; ++r) {
              const int32_t b0 = bias != nullptr ? bias[i0 + r] : 0;
              std::fill(acc[r], acc[r] + jn, b0);
            }
            mk.qu8(a_rows, a_kstride, zps, b + jb, n, rows, jn, k, &acc[0][0],
                   kColTileQ);
            for (int64_t r = 0; r < rows; ++r) {
              const int32_t corr = b_zp * srow[r];
              uint8_t* crow = c + (i0 + r) * n + jb;
              for (int64_t j = 0; j < jn; ++j) {
                uint8_t q = RequantizeOne(acc[r][j] - corr, rs, c_zp);
                if (relu && q < c_zp) {
                  // Quantized ReLU: real zero is stored as c_zp.
                  q = static_cast<uint8_t>(c_zp);
                }
                crow[j] = q;
              }
            }
          }
        }
      });
}

LoopSpec GemmWriteLoopSpec(DType dtype, int64_t m, int64_t n, int64_t k, int64_t c_base_bytes) {
  const double ops = static_cast<double>(n) * static_cast<double>(k);
  LoopSpec loop;
  loop.begin = 0;
  loop.end = m;
  loop.grain = RowTileGrain(ops);  // All three GEMMs are row-tiled now.
  loop.stride_bytes = n * DTypeSize(dtype);
  loop.iter_bytes = n * DTypeSize(dtype);
  loop.bases = {c_base_bytes};
  return loop;
}

}  // namespace ulayer
