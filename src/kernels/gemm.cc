#include "kernels/gemm.h"

#include <algorithm>
#include <vector>

#include "parallel/thread_pool.h"

namespace ulayer {

void GemmF32(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
             const float* bias, bool relu) {
  // Rows are independent: parallelize over m. Within a chunk, the i-k-j loop
  // order streams B rows, keeps the C row hot, and lets the compiler
  // vectorize the inner j loop.
  parallel::ParallelFor(
      0, m, parallel::GrainForOps(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        for (int64_t i = i_begin; i < i_end; ++i) {
          float* crow = c + i * n;
          const float b0 = bias != nullptr ? bias[i] : 0.0f;
          std::fill(crow, crow + n, b0);
          const float* arow = a + i * k;
          for (int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) {
              continue;
            }
            const float* brow = b + kk * n;
            for (int64_t j = 0; j < n; ++j) {
              crow[j] += av * brow[j];
            }
          }
          if (relu) {
            for (int64_t j = 0; j < n; ++j) {
              crow[j] = std::max(crow[j], 0.0f);
            }
          }
        }
      });
}

void GemmF16(const Half* a, const Half* b, Half* c, int64_t m, int64_t n, int64_t k,
             const Half* bias, bool relu) {
  const Half zero(0.0f);
  parallel::ParallelFor(
      0, m, parallel::GrainForOps(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        for (int64_t i = i_begin; i < i_end; ++i) {
          Half* crow = c + i * n;
          const Half b0 = bias != nullptr ? bias[i] : zero;
          const Half* arow = a + i * k;
          for (int64_t j = 0; j < n; ++j) {
            Half acc = b0;
            for (int64_t kk = 0; kk < k; ++kk) {
              acc += arow[kk] * b[kk * n + j];
            }
            if (relu && acc < zero) {
              acc = zero;
            }
            crow[j] = acc;
          }
        }
      });
}

void GemmQU8(const uint8_t* a, int32_t a_zp, const uint8_t* b, int32_t b_zp, uint8_t* c,
             int32_t c_zp, const RequantScale& rs, int64_t m, int64_t n, int64_t k,
             const int32_t* bias, bool relu) {
  parallel::ParallelFor(
      0, m, parallel::GrainForOps(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        // Per-chunk accumulator row: chunks run concurrently.
        std::vector<int32_t> acc(static_cast<size_t>(n));
        for (int64_t i = i_begin; i < i_end; ++i) {
          const int32_t b0 = bias != nullptr ? bias[i] : 0;
          std::fill(acc.begin(), acc.end(), b0);
          const uint8_t* arow = a + i * k;
          for (int64_t kk = 0; kk < k; ++kk) {
            const int32_t av = static_cast<int32_t>(arow[kk]) - a_zp;
            if (av == 0) {
              continue;
            }
            const uint8_t* brow = b + kk * n;
            for (int64_t j = 0; j < n; ++j) {
              acc[static_cast<size_t>(j)] += av * (static_cast<int32_t>(brow[j]) - b_zp);
            }
          }
          uint8_t* crow = c + i * n;
          for (int64_t j = 0; j < n; ++j) {
            uint8_t q = RequantizeOne(acc[static_cast<size_t>(j)], rs, c_zp);
            if (relu && q < c_zp) {
              // Quantized ReLU: real zero is stored as c_zp.
              q = static_cast<uint8_t>(c_zp);
            }
            crow[j] = q;
          }
        }
      });
}

}  // namespace ulayer
