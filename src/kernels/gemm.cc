#include "kernels/gemm.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "parallel/thread_pool.h"

namespace ulayer {
namespace {

// Blocking parameters (DESIGN.md Section 9).
//
// kKUnroll B-panel rows are streamed per pass so each C element is loaded and
// stored once per kKUnroll k-steps instead of once per k-step — accumulator
// traffic is the bottleneck of the naive i-k-j loop. The QU8 kernel
// additionally processes kRowTile A-rows together over kColTileQ-column int32
// accumulator tiles kept on the stack (1 KB per row: L1-resident, and no
// per-call heap allocation).
constexpr int64_t kKUnroll = 4;
constexpr int64_t kRowTile = 4;
constexpr int64_t kColTileQ = 256;

// Rounds a ParallelFor grain up to a multiple of kRowTile so chunk boundaries
// do not split row tiles (GrainForOps returns 1 for large n*k).
int64_t RowTileGrain(double ops_per_row) {
  const int64_t g = parallel::GrainForOps(ops_per_row);
  return ((g + kRowTile - 1) / kRowTile) * kRowTile;
}

}  // namespace

void GemmF32(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
             const float* bias, bool relu) {
  // Rows are independent: parallelize over m. Within a row, k is unrolled by
  // kKUnroll with one sequential += per term, so for each (i, j) the
  // accumulation order over k is ascending exactly as in the naive i-k-j
  // loop and the float results are bit-identical. The naive kernel's av == 0
  // skip is preserved by diverting to a per-k tail whenever any unrolled
  // coefficient is zero (skipping matters only for the sign of zero, but the
  // baseline skipped, so we must too).
  parallel::ParallelFor(
      0, m, parallel::GrainForOps(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        for (int64_t i = i_begin; i < i_end; ++i) {
          float* crow = c + i * n;
          const float b0 = bias != nullptr ? bias[i] : 0.0f;
          std::fill(crow, crow + n, b0);
          const float* arow = a + i * k;
          int64_t kk = 0;
          for (; kk + kKUnroll <= k; kk += kKUnroll) {
            const float av0 = arow[kk];
            const float av1 = arow[kk + 1];
            const float av2 = arow[kk + 2];
            const float av3 = arow[kk + 3];
            const float* b0p = b + kk * n;
            const float* b1p = b0p + n;
            const float* b2p = b1p + n;
            const float* b3p = b2p + n;
            if (av0 != 0.0f && av1 != 0.0f && av2 != 0.0f && av3 != 0.0f) {
              for (int64_t j = 0; j < n; ++j) {
                float t = crow[j];
                t += av0 * b0p[j];
                t += av1 * b1p[j];
                t += av2 * b2p[j];
                t += av3 * b3p[j];
                crow[j] = t;
              }
            } else {
              for (int64_t u = 0; u < kKUnroll; ++u) {
                const float av = arow[kk + u];
                if (av == 0.0f) {
                  continue;
                }
                const float* brow = b + (kk + u) * n;
                for (int64_t j = 0; j < n; ++j) {
                  crow[j] += av * brow[j];
                }
              }
            }
          }
          for (; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) {
              continue;
            }
            const float* brow = b + kk * n;
            for (int64_t j = 0; j < n; ++j) {
              crow[j] += av * brow[j];
            }
          }
          if (relu) {
            for (int64_t j = 0; j < n; ++j) {
              crow[j] = std::max(crow[j], 0.0f);
            }
          }
        }
      });
}

void GemmF16(const Half* a, const Half* b, Half* c, int64_t m, int64_t n, int64_t k,
             const Half* bias, bool relu) {
  const Half zero(0.0f);
  parallel::ParallelFor(
      0, m, parallel::GrainForOps(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        for (int64_t i = i_begin; i < i_end; ++i) {
          Half* crow = c + i * n;
          const Half b0 = bias != nullptr ? bias[i] : zero;
          const Half* arow = a + i * k;
          for (int64_t j = 0; j < n; ++j) {
            Half acc = b0;
            for (int64_t kk = 0; kk < k; ++kk) {
              acc += arow[kk] * b[kk * n + j];
            }
            if (relu && acc < zero) {
              acc = zero;
            }
            crow[j] = acc;
          }
        }
      });
}

void GemmQU8(const uint8_t* a, int32_t a_zp, const uint8_t* b, int32_t b_zp, uint8_t* c,
             int32_t c_zp, const RequantScale& rs, int64_t m, int64_t n, int64_t k,
             const int32_t* bias, bool relu, const int32_t* a_rowsum) {
  // Accumulation bound: every partial sum of (a - a_zp) * b terms is within
  // |bias| + 255*255*k, the same bound as the naive (a-a_zp)(b-b_zp) kernel,
  // because the b_zp correction is applied only after the k loop.
  assert(k <= INT32_MAX / (255 * 255) && "int32 accumulator would overflow");
  parallel::ParallelFor(
      0, m, RowTileGrain(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        // Stack tiles: no per-chunk heap allocation (DESIGN.md Section 9).
        int32_t acc[kRowTile][kColTileQ];
        int32_t srow[kRowTile];  // Signed row sums: sum_k (a[i,k] - a_zp).
        for (int64_t i0 = i_begin; i0 < i_end; i0 += kRowTile) {
          const int64_t rows = std::min(kRowTile, i_end - i0);
          for (int64_t r = 0; r < rows; ++r) {
            int32_t raw = 0;
            if (a_rowsum != nullptr) {
              raw = a_rowsum[i0 + r];
            } else {
              const uint8_t* arow = a + (i0 + r) * k;
              for (int64_t kk = 0; kk < k; ++kk) {
                raw += static_cast<int32_t>(arow[kk]);
              }
            }
            srow[r] = raw - static_cast<int32_t>(k) * a_zp;
          }
          for (int64_t jb = 0; jb < n; jb += kColTileQ) {
            const int64_t jn = std::min(kColTileQ, n - jb);
            for (int64_t r = 0; r < rows; ++r) {
              const int32_t b0 = bias != nullptr ? bias[i0 + r] : 0;
              std::fill(acc[r], acc[r] + jn, b0);
            }
            int64_t kk = 0;
            for (; kk + kKUnroll <= k; kk += kKUnroll) {
              const uint8_t* b0p = b + kk * n + jb;
              const uint8_t* b1p = b0p + n;
              const uint8_t* b2p = b1p + n;
              const uint8_t* b3p = b2p + n;
              for (int64_t r = 0; r < rows; ++r) {
                const uint8_t* arow = a + (i0 + r) * k + kk;
                const int32_t av0 = static_cast<int32_t>(arow[0]) - a_zp;
                const int32_t av1 = static_cast<int32_t>(arow[1]) - a_zp;
                const int32_t av2 = static_cast<int32_t>(arow[2]) - a_zp;
                const int32_t av3 = static_cast<int32_t>(arow[3]) - a_zp;
                int32_t* ar = acc[r];
                for (int64_t j = 0; j < jn; ++j) {
                  ar[j] += av0 * static_cast<int32_t>(b0p[j]) +
                           av1 * static_cast<int32_t>(b1p[j]) +
                           av2 * static_cast<int32_t>(b2p[j]) +
                           av3 * static_cast<int32_t>(b3p[j]);
                }
              }
            }
            for (; kk < k; ++kk) {
              const uint8_t* brow = b + kk * n + jb;
              for (int64_t r = 0; r < rows; ++r) {
                const int32_t av = static_cast<int32_t>(a[(i0 + r) * k + kk]) - a_zp;
                int32_t* ar = acc[r];
                for (int64_t j = 0; j < jn; ++j) {
                  ar[j] += av * static_cast<int32_t>(brow[j]);
                }
              }
            }
            for (int64_t r = 0; r < rows; ++r) {
              const int32_t corr = b_zp * srow[r];
              uint8_t* crow = c + (i0 + r) * n + jb;
              for (int64_t j = 0; j < jn; ++j) {
                uint8_t q = RequantizeOne(acc[r][j] - corr, rs, c_zp);
                if (relu && q < c_zp) {
                  // Quantized ReLU: real zero is stored as c_zp.
                  q = static_cast<uint8_t>(c_zp);
                }
                crow[j] = q;
              }
            }
          }
        }
      });
}

LoopSpec GemmWriteLoopSpec(DType dtype, int64_t m, int64_t n, int64_t k, int64_t c_base_bytes) {
  const double ops = static_cast<double>(n) * static_cast<double>(k);
  LoopSpec loop;
  loop.begin = 0;
  loop.end = m;
  loop.grain = dtype == DType::kQUInt8 ? RowTileGrain(ops) : parallel::GrainForOps(ops);
  loop.stride_bytes = n * DTypeSize(dtype);
  loop.iter_bytes = n * DTypeSize(dtype);
  loop.bases = {c_base_bytes};
  return loop;
}

}  // namespace ulayer
