// Declared memory-access specifications for the kernel families.
//
// Every compute kernel in src/kernels declares, next to its implementation, a
// small AccessSpec: the byte ranges it reads from each input tensor, the byte
// ranges it writes into the output tensor, its scratch-arena demand, and the
// exact ParallelFor loops it runs — all as affine functions of the layer
// shape, the channel slice [c_begin, c_end) and the chunk decomposition. The
// static analyzer (src/analysis) evaluates these specs symbolically per plan
// to prove the A5xx/A6xx/A7xx invariants of DESIGN.md §12, and a debug-build
// dynamic cross-check (memory/shadow.h) verifies at run time that no kernel
// touches pool bytes outside its declaration — so an under-declaring spec
// fails loudly instead of silently weakening the proof.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.h"

namespace ulayer {

// Half-open byte interval [begin, end) relative to a tensor's first byte.
struct AccessRange {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t size() const { return end - begin; }
  bool empty() const { return end <= begin; }
};

// One ParallelFor(begin, end, grain, ...) whose body writes memory. The
// model is affine: iteration i (a raw domain index — absolute channel for
// channel-domain loops, zero-based row/element index otherwise) writes
// [base + i * stride_bytes, base + i * stride_bytes + iter_bytes) for every
// base in `bases`. Kernels that rerun the same loop per batch (or write the
// same rows of several batches per iteration, like Winograd) list one base
// per instance. The analyzer enumerates parallel::ChunkBounds over the
// domain to prove chunk write sets pairwise disjoint (A701) and their union
// equal to the declared writes (A702).
struct LoopSpec {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t stride_bytes = 0;
  int64_t iter_bytes = 0;
  std::vector<int64_t> bases;
  // True when the loop writes kernel scratch (arena) instead of the output
  // tensor. Scratch loops get the A701 disjointness check only; their bases
  // are scratch-relative and never alias the activation pool (A6xx covers
  // the arena/pool separation).
  bool writes_scratch = false;
};

// A kernel invocation's declared accesses for one (node, slice) step.
struct AccessSpec {
  // False when no spec exists for the node kind/dtype combination; the
  // analyzer reports A703 for splittable compute nodes without one.
  bool has_spec = false;

  // Bytes written into the output tensor (relative to its first byte).
  std::vector<AccessRange> writes;
  // reads[i] = bytes read from input ordinal i (Node::inputs order),
  // relative to that input tensor's first byte.
  std::vector<std::vector<AccessRange>> reads;

  // Worst-case scratch-arena bytes the call may request (alignment slack
  // included), checked against the executor's reservation (A603).
  int64_t scratch_bytes = 0;

  // The ParallelFor loops the kernel runs, in program order.
  std::vector<LoopSpec> loops;
};

// The flat element-wise loop shared by the quantize family
// (QuantizeTensor / DequantizeTensor / F16 conversions in src/quant), ReLU,
// and eltwise-add: ParallelFor(0, elems, GrainForOps(1.0)) where element i
// occupies elem_bytes at base_bytes + i * elem_bytes. Declared here because
// src/quant cannot depend on src/kernels.
LoopSpec ElementwiseLoopSpec(int64_t elems, int64_t elem_bytes, int64_t base_bytes);

// Per-batch byte ranges covering channels [c_begin, c_end) of a tensor with
// shape `s`: one [Offset(ni, c_begin, 0, 0), Offset(ni, c_end, 0, 0)) * elem
// range per batch.
std::vector<AccessRange> ChannelSliceRanges(const Shape& s, int64_t elem_bytes, int64_t c_begin,
                                            int64_t c_end);

// One base offset per batch: the first byte of batch ni.
std::vector<int64_t> BatchBases(const Shape& s, int64_t elem_bytes);

}  // namespace ulayer
