// Convolution kernels (im2col + GEMM lowering) in F32, F16, QUInt8 and the
// processor-friendly-quantization GPU path (QUInt8 storage, F16 arithmetic).
//
// Every kernel accepts an output-channel range [oc_begin, oc_end) and writes
// only that slice of the (full-size) output tensor. This is the primitive
// behind channel-wise workload distribution (paper Section 3.2): the CPU and
// the GPU run the same kernel on disjoint channel ranges of a shared output
// buffer, so the merge step is free.
#pragma once

#include "kernels/params.h"
#include "quant/quantize.h"
#include "tensor/tensor.h"

namespace ulayer {

// F32 convolution. filters: [OC, IC, KH, KW]; bias: [OC] (may be empty).
// oc_end == -1 means "all output channels".
void Conv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0, int64_t oc_end = -1);

// F16 convolution; all tensors kF16. Arithmetic rounds to binary16 per
// operation (native-F16-ALU semantics).
void Conv2DF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0, int64_t oc_end = -1);

// Quantized convolution (the CPU path of processor-friendly quantization).
// input/filters/output: kQUInt8 with quant params in tensor metadata;
// bias: kInt32 quantized with scale in_scale*filter_scale, zero_point 0.
void Conv2DQU8(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0, int64_t oc_end = -1);

// Per-output-channel quantized convolution (extension; see
// quant/quantize.h). Each output channel oc uses its own filter quant
// params `w_params.channels[oc]`, its own requantization multiplier, and a
// per-channel int32 bias quantized at scale in_scale * w_scale[oc].
void Conv2DQU8PerChannel(const Tensor& input, const Tensor& filters,
                         const PerChannelParams& w_params, const Tensor& bias,
                         const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0,
                         int64_t oc_end = -1);

// The GPU path of processor-friendly quantization (paper Section 4.2):
// loads QUInt8 input and filters, converts them on the fly to F16, performs
// all arithmetic in F16, and requantizes the result to the QUInt8 output.
// bias: kF32 (dequantized filter bias), converted to F16 on the fly.
void Conv2DQU8ViaF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                     const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0,
                     int64_t oc_end = -1);

// Depthwise convolution (MobileNet): one filter [C, KH, KW] per channel;
// channel c of the output depends only on channel c of the input, so the
// channel range distributes both input and output.
void DepthwiseConv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin = 0,
                        int64_t c_end = -1);
void DepthwiseConv2DF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin = 0,
                        int64_t c_end = -1);
void DepthwiseConv2DQU8(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin = 0,
                        int64_t c_end = -1);
void DepthwiseConv2DQU8ViaF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                              const Conv2DParams& p, Tensor& output, int64_t c_begin = 0,
                              int64_t c_end = -1);

}  // namespace ulayer
