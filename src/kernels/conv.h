// Convolution kernels (im2col + GEMM lowering) in F32, F16, QUInt8 and the
// processor-friendly-quantization GPU path (QUInt8 storage, F16 arithmetic).
//
// Every kernel accepts an output-channel range [oc_begin, oc_end) and writes
// only that slice of the (full-size) output tensor. This is the primitive
// behind channel-wise workload distribution (paper Section 3.2): the CPU and
// the GPU run the same kernel on disjoint channel ranges of a shared output
// buffer, so the merge step is free.
//
// Every kernel additionally accepts a ConvAux of prepare-time caches and a
// scratch arena (DESIGN.md Section 9). All ConvAux fields are optional: a
// default-constructed aux reproduces the self-contained per-call behavior
// (used by tests and the calibration forward pass), while the executor
// passes the PreparedModel caches so steady-state runs recompute and
// heap-allocate nothing.
#pragma once

#include "kernels/access_spec.h"
#include "kernels/params.h"
#include "memory/arena.h"
#include "quant/half.h"
#include "quant/quantize.h"
#include "tensor/tensor.h"

namespace ulayer {

// Optional prepare-time context for the conv kernels. Pointers are non-owning
// and may be null independently; indices are absolute output channels (the
// caches cover the full tensor, kernels offset by oc_begin themselves).
struct ConvAux {
  // Scratch arena for im2col / staging buffers. Null: kernels fall back to
  // per-call heap vectors (the pre-arena behavior, kept behind
  // ExecConfig::scratch_arena for one release).
  memory::ScratchArena* scratch = nullptr;

  // QUInt8 paths: per-tensor requantization multiplier
  // (in_scale * w_scale / out_scale), precomputed by PreparedModel::Calibrate.
  const RequantScale* requant = nullptr;
  // Per-channel mode: one multiplier per absolute output channel.
  const RequantScale* requant_per_channel = nullptr;
  // Raw filter row sums: sum_k filters[oc, k] of the quantized uint8 weights,
  // one per absolute output channel (the zero-point hoist, see GemmQU8).
  const int32_t* filter_rowsum = nullptr;

  // Via-F16 paths: dequantized filter values Half(w_scale * (w - w_zp)) in
  // filter layout, and Half-converted F32 bias, cached at prepare time
  // instead of being rebuilt on every call.
  const Half* filters_f16 = nullptr;
  const Half* bias_f16 = nullptr;

  // Prepare-time packed filter panels (kernels/pack.h): the full filter
  // matrix [OC, IC*KH*KW] repacked into kRowTile-interleaved panels, indexed
  // by absolute output channel. Used only when oc_begin is tile-aligned
  // (cooperative split grains are; odd slices fall back to the row-major
  // filters). filters_packed_f16 packs the filters_f16 cache above.
  const uint8_t* filters_packed_qu8 = nullptr;
  const float* filters_packed_f32 = nullptr;
  const Half* filters_packed_f16 = nullptr;

  // Via-F16 cooperative staging: the dequantized-and-im2col'd input columns
  // for ALL batches, [N][IC*KH*KW][OH*OW] in Half, built once per node by
  // Conv2DQU8ViaF16StageCols. When set, Conv2DQU8ViaF16 skips its per-call
  // image dequantize + im2col — the producer work both cooperative slices
  // would otherwise redo identically.
  const Half* staged_cols = nullptr;
};

// F32 convolution. filters: [OC, IC, KH, KW]; bias: [OC] (may be empty).
// oc_end == -1 means "all output channels".
void Conv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0, int64_t oc_end = -1,
               const ConvAux& aux = {});

// F16 convolution; all tensors kF16. Arithmetic rounds to binary16 per
// operation (native-F16-ALU semantics).
void Conv2DF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0, int64_t oc_end = -1,
               const ConvAux& aux = {});

// Quantized convolution (the CPU path of processor-friendly quantization).
// input/filters/output: kQUInt8 with quant params in tensor metadata;
// bias: kInt32 quantized with scale in_scale*filter_scale, zero_point 0.
void Conv2DQU8(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0, int64_t oc_end = -1,
               const ConvAux& aux = {});

// Per-output-channel quantized convolution (extension; see
// quant/quantize.h). Each output channel oc uses its own filter quant
// params `w_params.channels[oc]`, its own requantization multiplier, and a
// per-channel int32 bias quantized at scale in_scale * w_scale[oc].
void Conv2DQU8PerChannel(const Tensor& input, const Tensor& filters,
                         const PerChannelParams& w_params, const Tensor& bias,
                         const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0,
                         int64_t oc_end = -1, const ConvAux& aux = {});

// The GPU path of processor-friendly quantization (paper Section 4.2):
// loads QUInt8 input and filters, converts them on the fly to F16, performs
// all arithmetic in F16, and requantizes the result to the QUInt8 output.
// bias: kF32 (dequantized filter bias), converted to F16 on the fly.
void Conv2DQU8ViaF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                     const Conv2DParams& p, Tensor& output, int64_t oc_begin = 0,
                     int64_t oc_end = -1, const ConvAux& aux = {});

// Depthwise convolution (MobileNet): one filter [C, KH, KW] per channel;
// channel c of the output depends only on channel c of the input, so the
// channel range distributes both input and output.
void DepthwiseConv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin = 0,
                        int64_t c_end = -1);
void DepthwiseConv2DF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin = 0,
                        int64_t c_end = -1);
void DepthwiseConv2DQU8(const Tensor& input, const Tensor& filters, const Tensor& bias,
                        const Conv2DParams& p, Tensor& output, int64_t c_begin = 0,
                        int64_t c_end = -1, const ConvAux& aux = {});
void DepthwiseConv2DQU8ViaF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                              const Conv2DParams& p, Tensor& output, int64_t c_begin = 0,
                              int64_t c_end = -1, const ConvAux& aux = {});

// Builds the via-F16 staged input columns for all batches into `arena`:
// dequantizes the QU8 input image to Half and im2cols it, laid out
// [N][IC*KH*KW][OH*OW]. Pass the result as ConvAux::staged_cols to every
// cooperative slice of the node (take an arena Mark right after staging and
// ResetTo it between slices so the staging survives while per-slice scratch
// is recycled). Returns null when `arena` is null.
const Half* Conv2DQU8ViaF16StageCols(const Tensor& input, const Shape& filter_shape,
                                     const Conv2DParams& p,
                                     memory::ScratchArena* arena);

// Arena bytes Conv2DQU8ViaF16StageCols allocates (cols for all batches plus
// the Half image staging buffer, with alignment slack).
int64_t Conv2DViaF16StagedColsBytes(const Shape& input_shape, const Shape& filter_shape,
                                    const Conv2DParams& p);

// Worst-case scratch-arena bytes one call of the QUInt8/F16/F32 conv kernels
// may request for the given shapes under `storage`/`compute` dtypes
// (includes per-buffer alignment slack). Used by the executor's prepare-time
// dry run to size the arena. With `staged_cols` true, returns the (smaller)
// per-call need of a via-F16 call that receives ConvAux::staged_cols — the
// image and column buffers are excluded.
int64_t Conv2DScratchBytes(DType storage, DType compute, const Shape& input_shape,
                           const Shape& filter_shape, const Conv2DParams& p,
                           bool staged_cols = false);

// --- Declared access specifications (kernels/access_spec.h) -----------------

// AccessSpec of one dense conv/FC call on output channels [oc_begin, oc_end)
// under the given storage/compute dtypes. Mirrors the variant dispatch in
// core/compute.cc (F32/F16 storage; QU8 storage with F16 compute = via-F16
// GPU path; otherwise integer QU8, per-channel when `per_channel`). Ranges
// are relative to each tensor's first byte; reads[0] covers the one
// activation input (weights live outside the activation pool).
AccessSpec Conv2DAccessSpec(DType storage, DType compute, bool per_channel,
                            const Shape& input_shape, const Shape& filter_shape,
                            const Conv2DParams& p, const Shape& out_shape, int64_t oc_begin,
                            int64_t oc_end);

// AccessSpec of one depthwise conv call: channel c of the output depends
// only on channel c of the input, so both reads and writes cover exactly
// channels [c_begin, c_end) of every batch.
AccessSpec DepthwiseConv2DAccessSpec(DType storage, const Shape& input_shape,
                                     const Conv2DParams& p, const Shape& out_shape,
                                     int64_t c_begin, int64_t c_end);

}  // namespace ulayer
