#include "kernels/elementwise.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/thread_pool.h"
#include "quant/half.h"
#include "quant/quantize.h"

namespace ulayer {
namespace {

int64_t ResolveEnd(int64_t end, int64_t limit) {
  const int64_t e = end < 0 ? limit : end;
  assert(e <= limit);
  return e;
}

}  // namespace

void ReluF32(Tensor& t, int64_t c_begin, int64_t c_end) {
  assert(t.dtype() == DType::kF32);
  const Shape& s = t.shape();
  c_end = ResolveEnd(c_end, s.c);
  for (int64_t ni = 0; ni < s.n; ++ni) {
    float* p = t.Data<float>() + s.Offset(ni, c_begin, 0, 0);
    const int64_t count = (c_end - c_begin) * s.h * s.w;
    parallel::ParallelFor(0, count, parallel::GrainForOps(1.0), [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        p[i] = std::max(p[i], 0.0f);
      }
    });
  }
}

void ReluF16(Tensor& t, int64_t c_begin, int64_t c_end) {
  assert(t.dtype() == DType::kF16);
  const Shape& s = t.shape();
  c_end = ResolveEnd(c_end, s.c);
  const Half zero(0.0f);
  for (int64_t ni = 0; ni < s.n; ++ni) {
    Half* p = t.Data<Half>() + s.Offset(ni, c_begin, 0, 0);
    const int64_t count = (c_end - c_begin) * s.h * s.w;
    parallel::ParallelFor(0, count, parallel::GrainForOps(1.0), [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        if (p[i] < zero) {
          p[i] = zero;
        }
      }
    });
  }
}

void ReluQU8(Tensor& t, int64_t c_begin, int64_t c_end) {
  assert(t.dtype() == DType::kQUInt8);
  const Shape& s = t.shape();
  c_end = ResolveEnd(c_end, s.c);
  const uint8_t zp = static_cast<uint8_t>(t.zero_point());
  for (int64_t ni = 0; ni < s.n; ++ni) {
    uint8_t* p = t.Data<uint8_t>() + s.Offset(ni, c_begin, 0, 0);
    const int64_t count = (c_end - c_begin) * s.h * s.w;
    parallel::ParallelFor(0, count, parallel::GrainForOps(1.0), [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        p[i] = std::max(p[i], zp);
      }
    });
  }
}

namespace {

// Shared F32 LRN core; `load`/`store` adapt the element type.
template <typename Load, typename Store>
void LrnCore(const Shape& s, const LrnParams& p, int64_t c_begin, int64_t c_end, Load load,
             Store store) {
  const int half_size = p.local_size / 2;
  // Rows are independent (the window only spans channels); parallelize over h.
  const double ops_per_row =
      static_cast<double>(s.w) * static_cast<double>(c_end - c_begin) * p.local_size;
  for (int64_t ni = 0; ni < s.n; ++ni) {
    parallel::ParallelFor(0, s.h, parallel::GrainForOps(ops_per_row), [&](int64_t hb,
                                                                          int64_t he) {
      for (int64_t hi = hb; hi < he; ++hi) {
        for (int64_t wi = 0; wi < s.w; ++wi) {
          for (int64_t c = c_begin; c < c_end; ++c) {
            const int64_t lo = std::max<int64_t>(0, c - half_size);
            const int64_t hi_c = std::min<int64_t>(s.c - 1, c + half_size);
            float sum_sq = 0.0f;
            for (int64_t cc = lo; cc <= hi_c; ++cc) {
              const float v = load(ni, cc, hi, wi);
              sum_sq += v * v;
            }
            const float denom =
                std::pow(p.k + p.alpha / static_cast<float>(p.local_size) * sum_sq, p.beta);
            store(ni, c, hi, wi, load(ni, c, hi, wi) / denom);
          }
        }
      }
    });
  }
}

}  // namespace

void LrnF32(const Tensor& input, const LrnParams& p, Tensor& output, int64_t c_begin,
            int64_t c_end) {
  assert(input.dtype() == DType::kF32);
  const Shape& s = input.shape();
  c_end = ResolveEnd(c_end, s.c);
  const float* in = input.Data<float>();
  float* out = output.Data<float>();
  LrnCore(
      s, p, c_begin, c_end, [&](int64_t n, int64_t c, int64_t h, int64_t w) {
        return in[s.Offset(n, c, h, w)];
      },
      [&](int64_t n, int64_t c, int64_t h, int64_t w, float v) { out[s.Offset(n, c, h, w)] = v; });
}

void LrnF16(const Tensor& input, const LrnParams& p, Tensor& output, int64_t c_begin,
            int64_t c_end) {
  assert(input.dtype() == DType::kF16);
  const Shape& s = input.shape();
  c_end = ResolveEnd(c_end, s.c);
  const Half* in = input.Data<Half>();
  Half* out = output.Data<Half>();
  LrnCore(
      s, p, c_begin, c_end, [&](int64_t n, int64_t c, int64_t h, int64_t w) {
        return in[s.Offset(n, c, h, w)].ToFloat();
      },
      [&](int64_t n, int64_t c, int64_t h, int64_t w, float v) {
        out[s.Offset(n, c, h, w)] = Half(v);
      });
}

void LrnQU8(const Tensor& input, const LrnParams& p, Tensor& output, int64_t c_begin,
            int64_t c_end) {
  assert(input.dtype() == DType::kQUInt8 && output.dtype() == DType::kQUInt8);
  const Shape& s = input.shape();
  c_end = ResolveEnd(c_end, s.c);
  const QuantParams in_qp{input.scale(), input.zero_point()};
  const QuantParams out_qp{output.scale(), output.zero_point()};
  const uint8_t* in = input.Data<uint8_t>();
  uint8_t* out = output.Data<uint8_t>();
  LrnCore(
      s, p, c_begin, c_end, [&](int64_t n, int64_t c, int64_t h, int64_t w) {
        return in_qp.Dequantize(in[s.Offset(n, c, h, w)]);
      },
      [&](int64_t n, int64_t c, int64_t h, int64_t w, float v) {
        out[s.Offset(n, c, h, w)] = out_qp.Quantize(v);
      });
}

void ConcatChannels(const std::vector<const Tensor*>& inputs, Tensor& output) {
  assert(!inputs.empty());
  const Shape& os = output.shape();
  int64_t c_off = 0;
  for (const Tensor* in : inputs) {
    const Shape& is = in->shape();
    assert(is.n == os.n && is.h == os.h && is.w == os.w);
    assert(in->dtype() == output.dtype());
    if (output.dtype() == DType::kQUInt8 &&
        (in->scale() != output.scale() || in->zero_point() != output.zero_point())) {
      // Requantize into the output's parameters.
      const QuantParams in_qp{in->scale(), in->zero_point()};
      const QuantParams out_qp{output.scale(), output.zero_point()};
      for (int64_t ni = 0; ni < is.n; ++ni) {
        const uint8_t* src = in->Data<uint8_t>() + is.Offset(ni, 0, 0, 0);
        uint8_t* dst = output.Data<uint8_t>() + os.Offset(ni, c_off, 0, 0);
        const int64_t count = is.c * is.h * is.w;
        for (int64_t i = 0; i < count; ++i) {
          dst[i] = out_qp.Quantize(in_qp.Dequantize(src[i]));
        }
      }
    } else {
      const int64_t elem = DTypeSize(output.dtype());
      for (int64_t ni = 0; ni < is.n; ++ni) {
        const uint8_t* src = in->raw() + is.Offset(ni, 0, 0, 0) * elem;
        uint8_t* dst = output.raw() + os.Offset(ni, c_off, 0, 0) * elem;
        std::memcpy(dst, src, static_cast<size_t>(is.c * is.h * is.w * elem));
      }
    }
    c_off += is.c;
  }
  assert(c_off == os.c);
}

void EltwiseAddF32(const Tensor& a, const Tensor& b, Tensor& output, bool relu, int64_t c_begin,
                   int64_t c_end) {
  assert(a.dtype() == DType::kF32 && b.dtype() == DType::kF32);
  assert(a.shape() == b.shape() && a.shape() == output.shape());
  const Shape& s = a.shape();
  c_end = ResolveEnd(c_end, s.c);
  for (int64_t ni = 0; ni < s.n; ++ni) {
    const int64_t off = s.Offset(ni, c_begin, 0, 0);
    const int64_t count = (c_end - c_begin) * s.h * s.w;
    const float* pa = a.Data<float>() + off;
    const float* pb = b.Data<float>() + off;
    float* po = output.Data<float>() + off;
    parallel::ParallelFor(0, count, parallel::GrainForOps(1.0), [&](int64_t bb, int64_t be) {
      for (int64_t i = bb; i < be; ++i) {
        const float v = pa[i] + pb[i];
        po[i] = relu ? std::max(v, 0.0f) : v;
      }
    });
  }
}

void EltwiseAddF16(const Tensor& a, const Tensor& b, Tensor& output, bool relu, int64_t c_begin,
                   int64_t c_end) {
  assert(a.dtype() == DType::kF16 && b.dtype() == DType::kF16);
  const Shape& s = a.shape();
  c_end = ResolveEnd(c_end, s.c);
  const Half zero(0.0f);
  for (int64_t ni = 0; ni < s.n; ++ni) {
    const int64_t off = s.Offset(ni, c_begin, 0, 0);
    const int64_t count = (c_end - c_begin) * s.h * s.w;
    const Half* pa = a.Data<Half>() + off;
    const Half* pb = b.Data<Half>() + off;
    Half* po = output.Data<Half>() + off;
    parallel::ParallelFor(0, count, parallel::GrainForOps(1.0), [&](int64_t bb, int64_t be) {
      for (int64_t i = bb; i < be; ++i) {
        Half v = pa[i] + pb[i];
        if (relu && v < zero) {
          v = zero;
        }
        po[i] = v;
      }
    });
  }
}

void EltwiseAddQU8(const Tensor& a, const Tensor& b, Tensor& output, bool relu, int64_t c_begin,
                   int64_t c_end) {
  assert(a.dtype() == DType::kQUInt8 && b.dtype() == DType::kQUInt8);
  assert(output.dtype() == DType::kQUInt8);
  const Shape& s = a.shape();
  c_end = ResolveEnd(c_end, s.c);
  const QuantParams a_qp{a.scale(), a.zero_point()};
  const QuantParams b_qp{b.scale(), b.zero_point()};
  const QuantParams o_qp{output.scale(), output.zero_point()};
  const uint8_t o_zp = static_cast<uint8_t>(output.zero_point());
  for (int64_t ni = 0; ni < s.n; ++ni) {
    const int64_t off = s.Offset(ni, c_begin, 0, 0);
    const int64_t count = (c_end - c_begin) * s.h * s.w;
    const uint8_t* pa = a.Data<uint8_t>() + off;
    const uint8_t* pb = b.Data<uint8_t>() + off;
    uint8_t* po = output.Data<uint8_t>() + off;
    parallel::ParallelFor(0, count, parallel::GrainForOps(1.0), [&](int64_t bb, int64_t be) {
      for (int64_t i = bb; i < be; ++i) {
        uint8_t q = o_qp.Quantize(a_qp.Dequantize(pa[i]) + b_qp.Dequantize(pb[i]));
        if (relu && q < o_zp) {
          q = o_zp;
        }
        po[i] = q;
      }
    });
  }
}

void Softmax(const Tensor& input, Tensor& output) {
  assert(output.dtype() == DType::kF32);
  const Shape& s = input.shape();
  assert(output.shape() == s);

  // Materialize an F32 view of the input.
  const Tensor* f32 = &input;
  Tensor tmp;
  if (input.dtype() == DType::kQUInt8) {
    tmp = DequantizeTensor(input);
    f32 = &tmp;
  } else if (input.dtype() == DType::kF16) {
    tmp = F16ToF32Tensor(input);
    f32 = &tmp;
  }

  const float* in = f32->Data<float>();
  float* out = output.Data<float>();
  for (int64_t ni = 0; ni < s.n; ++ni) {
    for (int64_t hi = 0; hi < s.h; ++hi) {
      for (int64_t wi = 0; wi < s.w; ++wi) {
        float max_v = in[s.Offset(ni, 0, hi, wi)];
        for (int64_t c = 1; c < s.c; ++c) {
          max_v = std::max(max_v, in[s.Offset(ni, c, hi, wi)]);
        }
        float sum = 0.0f;
        for (int64_t c = 0; c < s.c; ++c) {
          const float e = std::exp(in[s.Offset(ni, c, hi, wi)] - max_v);
          out[s.Offset(ni, c, hi, wi)] = e;
          sum += e;
        }
        for (int64_t c = 0; c < s.c; ++c) {
          out[s.Offset(ni, c, hi, wi)] /= sum;
        }
      }
    }
  }
}

AccessSpec ReluAccessSpec(DType storage, const Shape& shape, int64_t c_begin, int64_t c_end) {
  c_end = ResolveEnd(c_end, shape.c);
  const int64_t elem = DTypeSize(storage);
  AccessSpec spec;
  spec.has_spec = true;
  spec.writes = ChannelSliceRanges(shape, elem, c_begin, c_end);
  spec.reads.push_back(ChannelSliceRanges(shape, elem, c_begin, c_end));
  LoopSpec loop = ElementwiseLoopSpec((c_end - c_begin) * shape.h * shape.w, elem, 0);
  loop.bases.clear();
  for (int64_t ni = 0; ni < shape.n; ++ni) {
    loop.bases.push_back(shape.Offset(ni, c_begin, 0, 0) * elem);
  }
  spec.loops.push_back(loop);
  return spec;
}

AccessSpec LrnAccessSpec(DType storage, const Shape& shape, const LrnParams& p, int64_t c_begin,
                         int64_t c_end) {
  c_end = ResolveEnd(c_end, shape.c);
  const int64_t elem = DTypeSize(storage);
  const int64_t half_size = p.local_size / 2;
  AccessSpec spec;
  spec.has_spec = true;
  spec.writes = ChannelSliceRanges(shape, elem, c_begin, c_end);
  spec.reads.push_back(ChannelSliceRanges(shape, elem,
                                          std::max<int64_t>(0, c_begin - half_size),
                                          std::min<int64_t>(shape.c, c_end + half_size)));
  // LrnCore parallelizes over rows: iteration hi writes row hi of every
  // output channel in [c_begin, c_end) of every batch — one base per (ni, c).
  LoopSpec loop;
  loop.begin = 0;
  loop.end = shape.h;
  loop.grain = parallel::GrainForOps(static_cast<double>(shape.w) *
                                     static_cast<double>(c_end - c_begin) * p.local_size);
  loop.stride_bytes = shape.w * elem;
  loop.iter_bytes = shape.w * elem;
  for (int64_t ni = 0; ni < shape.n; ++ni) {
    for (int64_t c = c_begin; c < c_end; ++c) {
      loop.bases.push_back(shape.Offset(ni, c, 0, 0) * elem);
    }
  }
  spec.loops.push_back(loop);
  return spec;
}

AccessSpec ConcatAccessSpec(const std::vector<Shape>& input_shapes, DType storage,
                            const Shape& out_shape) {
  const int64_t elem = DTypeSize(storage);
  AccessSpec spec;
  spec.has_spec = true;
  spec.writes = {AccessRange{0, out_shape.NumElements() * elem}};
  spec.reads.reserve(input_shapes.size());
  for (const Shape& is : input_shapes) {
    spec.reads.push_back({AccessRange{0, is.NumElements() * elem}});
  }
  return spec;  // Serial: no parallel loops.
}

AccessSpec EltwiseAddAccessSpec(DType storage, const Shape& shape, int64_t c_begin,
                                int64_t c_end) {
  c_end = ResolveEnd(c_end, shape.c);
  const int64_t elem = DTypeSize(storage);
  AccessSpec spec;
  spec.has_spec = true;
  spec.writes = ChannelSliceRanges(shape, elem, c_begin, c_end);
  spec.reads.push_back(ChannelSliceRanges(shape, elem, c_begin, c_end));
  spec.reads.push_back(ChannelSliceRanges(shape, elem, c_begin, c_end));
  LoopSpec loop = ElementwiseLoopSpec((c_end - c_begin) * shape.h * shape.w, elem, 0);
  loop.bases.clear();
  for (int64_t ni = 0; ni < shape.n; ++ni) {
    loop.bases.push_back(shape.Offset(ni, c_begin, 0, 0) * elem);
  }
  spec.loops.push_back(loop);
  return spec;
}

AccessSpec SoftmaxAccessSpec(DType storage, const Shape& shape) {
  AccessSpec spec;
  spec.has_spec = true;
  // Output is always F32 (PreparedModel::ActivationDType); input is read
  // fully in the storage dtype. Serial: no parallel loops. The QU8/F16
  // dequantize temp is a per-call heap tensor, not pool memory.
  spec.writes = {AccessRange{0, shape.NumElements() * int64_t{4}}};
  spec.reads.push_back({AccessRange{0, shape.NumElements() * DTypeSize(storage)}});
  return spec;
}

}  // namespace ulayer
