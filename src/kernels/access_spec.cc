#include "kernels/access_spec.h"

#include "parallel/thread_pool.h"

namespace ulayer {

LoopSpec ElementwiseLoopSpec(int64_t elems, int64_t elem_bytes, int64_t base_bytes) {
  LoopSpec loop;
  loop.begin = 0;
  loop.end = elems;
  loop.grain = parallel::GrainForOps(1.0);
  loop.stride_bytes = elem_bytes;
  loop.iter_bytes = elem_bytes;
  loop.bases = {base_bytes};
  return loop;
}

std::vector<AccessRange> ChannelSliceRanges(const Shape& s, int64_t elem_bytes, int64_t c_begin,
                                            int64_t c_end) {
  std::vector<AccessRange> ranges;
  ranges.reserve(static_cast<size_t>(s.n));
  for (int64_t ni = 0; ni < s.n; ++ni) {
    ranges.push_back(
        AccessRange{s.Offset(ni, c_begin, 0, 0) * elem_bytes, s.Offset(ni, c_end, 0, 0) * elem_bytes});
  }
  return ranges;
}

std::vector<int64_t> BatchBases(const Shape& s, int64_t elem_bytes) {
  std::vector<int64_t> bases;
  bases.reserve(static_cast<size_t>(s.n));
  for (int64_t ni = 0; ni < s.n; ++ni) {
    bases.push_back(s.Offset(ni, 0, 0, 0) * elem_bytes);
  }
  return bases;
}

}  // namespace ulayer
