// Runtime SIMD dispatch for the GEMM micro-kernels (DESIGN.md Section 13).
//
// One binary carries scalar, SSE4.1, AVX2(+F16C) and NEON variants of the
// inner GEMM tiles; the best ISA the CPU supports is picked once at startup
// (overridable with the ULAYER_SIMD environment variable, or ForceIsa() from
// tests). Every variant implements the *same arithmetic contract* as the
// scalar reference — byte-identical QU8/F32 results and value-identical
// per-step-rounded F16 results — so dispatch never changes output bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/half.h"

namespace ulayer::simd {

enum class Isa { kScalar, kSse41, kAvx2, kNeon };

// Human-readable name ("scalar", "sse41", "avx2", "neon") — recorded in
// BENCH_kernels.json provenance.
const char* IsaName(Isa isa);

// The ISA micro-kernels dispatch to. Resolution order: ForceIsa() override if
// set, else the ULAYER_SIMD env var (scalar|sse41|avx2|neon|auto, read once),
// else the best ISA the CPU reports. Requests for an unsupported ISA fall
// back to the best supported one.
Isa ActiveIsa();

// All ISAs usable on this machine, best first; always ends with kScalar.
// Tests iterate this to run the dispatch matrix.
std::vector<Isa> SupportedIsas();

// Test/CI hook: pin dispatch to `isa` (clamped to a supported ISA) until
// ResetForcedIsa(). Not thread-safe; call only from test setup.
void ForceIsa(Isa isa);
void ResetForcedIsa();

// A-rows processed together by one micro-kernel tile; packed filter panels
// (kernels/pack.h) interleave rows in groups of kRowTile.
inline constexpr int64_t kRowTile = 4;

// Micro-kernel tile contracts. Common conventions:
//  - `a_rows[r]` points at element k=0 of A-row r; consecutive k elements are
//    `a_kstride` elements apart (1 for plain row-major A, kRowTile for packed
//    panels). 1 <= rows <= kRowTile.
//  - `b` is the row-major B panel top-left for this column block; B row kk
//    starts at b + kk*ldb. `jn` columns are produced, over `k` accumulation
//    steps.
//  - Accumulators are read-modify-write: callers pre-fill with bias.
struct GemmMicroKernels {
  Isa isa = Isa::kScalar;

  // QU8: acc[r*acc_ld + j] += sum_kk (a_rows[r][kk*a_kstride] - a_zp[r]) * b.
  // Pure int32 arithmetic — any summation order, exact by construction.
  // a_zp is per-row so the per-channel conv kernel can reuse the tile.
  void (*qu8)(const uint8_t* const* a_rows, int64_t a_kstride, const int32_t* a_zp,
              const uint8_t* b, int64_t ldb, int64_t rows, int64_t jn, int64_t k,
              int32_t* acc, int64_t acc_ld);

  // F32: c_rows[r][j] += a*b with ascending-k single-add order per element
  // and the av == 0.0f skip preserved per (row, k) — bit-identical to the
  // naive i-k-j loop (variants are built with -ffp-contract=off; no FMA).
  void (*f32)(const float* const* a_rows, int64_t a_kstride, const float* b,
              int64_t ldb, int64_t rows, int64_t jn, int64_t k, float* const* c_rows);

  // F16: per element, c = RN16(c + RN16(a*b)) ascending k — every
  // multiply-accumulate rounds to binary16 exactly like software Half
  // arithmetic (hardware F16C conversions implement the identical
  // round-to-nearest-even; see DESIGN.md Section 13).
  void (*f16)(const Half* const* a_rows, int64_t a_kstride, const Half* b,
              int64_t ldb, int64_t rows, int64_t jn, int64_t k, Half* const* c_rows);

  // Winograd transform-domain MAC: m[j] += sum_b u[b*16 + j] * v[b*16 + j]
  // for j in [0, 16). Per-lane ascending-b single-add order, no FMA — bit
  // identical to the scalar c-loop in winograd.cc.
  void (*wino_madd)(const float* u, const float* v, float* m, int64_t count);
};

// The table for ActiveIsa(). Resolve once per kernel call (cheap), before
// entering ParallelFor.
const GemmMicroKernels& ActiveGemmMicroKernels();

// The table for a specific ISA (scalar is always available; unsupported ISAs
// return the scalar table). Exposed for the bench and dispatch-matrix tests.
const GemmMicroKernels& GemmMicroKernelsFor(Isa isa);

}  // namespace ulayer::simd
