// Reference GEMM kernels in the three data types ulayer executes.
//
// All matrices are row-major. The QUInt8 GEMM follows gemmlowp exactly:
// uint8 operands with zero points, int32 accumulation, then fixed-point
// requantization back to uint8 (see quant/quantize.h).
#pragma once

#include <cstdint>

#include "kernels/access_spec.h"
#include "quant/half.h"
#include "quant/quantize.h"
#include "tensor/dtype.h"

namespace ulayer {

// C[M,N] = A[M,K] * B[K,N] (+ bias[M] broadcast across columns, if non-null).
// Row-tiled over kernels/simd.h micro-kernels (runtime-dispatched SIMD);
// per-element accumulation order is unchanged (ascending k, separate
// mul+add, zero-skip preserved), so results are bit-identical to the naive
// loop on every ISA.
//
// `a_packed`, when non-null, is A repacked into kRowTile-interleaved panels
// (kernels/pack.h, PackedPanelElems(m, k) elements) — e.g. the prepare-time
// filter panels cached by PreparedModel. The plain `a` may then be null.
void GemmF32(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
             const float* bias = nullptr, bool relu = false,
             const float* a_packed = nullptr);

// Same contract as GemmF32 but every multiply-accumulate rounds to binary16,
// emulating a native F16 ALU (accumulator is F16 as on Mali FP16 paths): per
// element c = RN16(c + RN16(a*b)) over ascending k. The AVX2+F16C variant
// implements the identical per-step rounding in hardware (DESIGN.md §13).
void GemmF16(const Half* a, const Half* b, Half* c, int64_t m, int64_t n, int64_t k,
             const Half* bias = nullptr, bool relu = false,
             const Half* a_packed = nullptr);

// Quantized GEMM: c_q[M,N] = requantize(sum_k (a[m,k]-a_zp)*(b[k,n]-b_zp)
//                                        + bias_i32[m]).
// `rs` encodes (a_scale*b_scale)/c_scale; `relu` clamps at c_zp (quantized 0).
//
// Implemented with the row-sum zero-point hoist (Jacob et al., gemmlowp):
//   sum_k (a-a_zp)(b-b_zp) = sum_k (a-a_zp)*b  -  b_zp * sum_k (a-a_zp),
// so the hot loop multiplies raw uint8 B values and the b_zp contribution is
// folded in once per (row, column tile) after the k loop. Integer arithmetic
// is exact, hence outputs are byte-identical to the naive formulation (see
// DESIGN.md Section 9 for the derivation and the overflow-bound argument).
//
// `a_rowsum`, when non-null, holds the precomputed raw row sums
// sum_k a[m,k] (uint8 values, int32 totals) — e.g. the prepare-time filter
// row sums cached by PreparedModel. When null they are computed on the fly.
// `a_packed` is the optional kRowTile-interleaved panel form of A
// (kernels/pack.h), as for GemmF32. Requires k <= INT32_MAX / 255^2 so int32
// accumulation cannot overflow (same bound as the naive kernel).
void GemmQU8(const uint8_t* a, int32_t a_zp, const uint8_t* b, int32_t b_zp, uint8_t* c,
             int32_t c_zp, const RequantScale& rs, int64_t m, int64_t n, int64_t k,
             const int32_t* bias = nullptr, bool relu = false,
             const int32_t* a_rowsum = nullptr, const uint8_t* a_packed = nullptr);

// Declared write loop of the GEMMs above (see kernels/access_spec.h): the
// row-parallel ParallelFor over [0, m) where row i occupies
// [c_base_bytes + i*n*elem, +n*elem) of C. All three GEMMs now use the
// row-tile-aligned grain (RowTileGrain(n*k)); `dtype` selects the element
// size — exactly the values the kernels pass to ParallelFor.
LoopSpec GemmWriteLoopSpec(DType dtype, int64_t m, int64_t n, int64_t k, int64_t c_base_bytes);

}  // namespace ulayer
