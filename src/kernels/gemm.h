// Reference GEMM kernels in the three data types ulayer executes.
//
// All matrices are row-major. The QUInt8 GEMM follows gemmlowp exactly:
// uint8 operands with zero points, int32 accumulation, then fixed-point
// requantization back to uint8 (see quant/quantize.h).
#pragma once

#include <cstdint>

#include "quant/half.h"
#include "quant/quantize.h"

namespace ulayer {

// C[M,N] = A[M,K] * B[K,N] (+ bias[M] broadcast across columns, if non-null).
void GemmF32(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
             const float* bias = nullptr, bool relu = false);

// Same contract as GemmF32 but every multiply-accumulate rounds to binary16,
// emulating a native F16 ALU (accumulator is F16 as on Mali FP16 paths).
void GemmF16(const Half* a, const Half* b, Half* c, int64_t m, int64_t n, int64_t k,
             const Half* bias = nullptr, bool relu = false);

// Quantized GEMM: c_q[M,N] = requantize(sum_k (a[m,k]-a_zp)*(b[k,n]-b_zp)
//                                        + bias_i32[m]).
// `rs` encodes (a_scale*b_scale)/c_scale; `relu` clamps at c_zp (quantized 0).
void GemmQU8(const uint8_t* a, int32_t a_zp, const uint8_t* b, int32_t b_zp, uint8_t* c,
             int32_t c_zp, const RequantScale& rs, int64_t m, int64_t n, int64_t k,
             const int32_t* bias = nullptr, bool relu = false);

}  // namespace ulayer
