// Element-wise and normalization kernels: ReLU, LRN, channel concat,
// softmax. Channel ranges follow the same distribution convention as
// conv/pool kernels.
#pragma once

#include <vector>

#include "kernels/access_spec.h"
#include "kernels/params.h"
#include "tensor/tensor.h"

namespace ulayer {

// In-place ReLU over channels [c_begin, c_end).
void ReluF32(Tensor& t, int64_t c_begin = 0, int64_t c_end = -1);
void ReluF16(Tensor& t, int64_t c_begin = 0, int64_t c_end = -1);
void ReluQU8(Tensor& t, int64_t c_begin = 0, int64_t c_end = -1);

// Local Response Normalization across channels (AlexNet/GoogLeNet).
// Note: each output channel reads a window of input channels, so the output
// channel range needs the full input — the executor accounts for that.
void LrnF32(const Tensor& input, const LrnParams& p, Tensor& output, int64_t c_begin = 0,
            int64_t c_end = -1);
void LrnF16(const Tensor& input, const LrnParams& p, Tensor& output, int64_t c_begin = 0,
            int64_t c_end = -1);
// Quantized LRN dequantizes, normalizes in F32, and requantizes with the
// output tensor's parameters (ACL-style fallback path).
void LrnQU8(const Tensor& input, const LrnParams& p, Tensor& output, int64_t c_begin = 0,
            int64_t c_end = -1);

// Concatenates inputs along the channel dimension into `output`.
// For QUInt8, inputs with differing quant params are requantized into the
// output's parameters.
void ConcatChannels(const std::vector<const Tensor*>& inputs, Tensor& output);

// Element-wise sum over channels [c_begin, c_end) of two same-shaped
// tensors, with optional fused ReLU (ResNet residual joins).
void EltwiseAddF32(const Tensor& a, const Tensor& b, Tensor& output, bool relu,
                   int64_t c_begin = 0, int64_t c_end = -1);
void EltwiseAddF16(const Tensor& a, const Tensor& b, Tensor& output, bool relu,
                   int64_t c_begin = 0, int64_t c_end = -1);
// Quantized add: both operands are rescaled into the output's quantization
// parameters before summing (TFLite-style ADD with per-input rescale).
void EltwiseAddQU8(const Tensor& a, const Tensor& b, Tensor& output, bool relu,
                   int64_t c_begin = 0, int64_t c_end = -1);

// Softmax across channels (per (n, h, w) position). QUInt8 input is
// dequantized; output of all variants is F32 class probabilities.
void Softmax(const Tensor& input, Tensor& output);

// --- Declared access specifications (kernels/access_spec.h) -----------------

// ReLU as the executor runs it (core/compute.cc): copy channels
// [c_begin, c_end) input -> output, then clamp in place. Reads and writes
// the channel slice symmetrically.
AccessSpec ReluAccessSpec(DType storage, const Shape& shape, int64_t c_begin, int64_t c_end);

// LRN writes channels [c_begin, c_end) but reads the input channel window
// [c_begin - local_size/2, c_end + local_size/2) clamped to [0, C).
AccessSpec LrnAccessSpec(DType storage, const Shape& shape, const LrnParams& p, int64_t c_begin,
                         int64_t c_end);

// Concat is serial and never channel-split: reads every input fully, writes
// the output fully.
AccessSpec ConcatAccessSpec(const std::vector<Shape>& input_shapes, DType storage,
                            const Shape& out_shape);

// Element-wise add reads channels [c_begin, c_end) of both operands and
// writes the same slice of the output.
AccessSpec EltwiseAddAccessSpec(DType storage, const Shape& shape, int64_t c_begin,
                                int64_t c_end);

// Softmax is serial and never channel-split; its output is always F32
// (see PreparedModel::ActivationDType).
AccessSpec SoftmaxAccessSpec(DType storage, const Shape& shape);

}  // namespace ulayer
