// AVX2 + F16C micro-kernels. Compiled with -mavx2 -mf16c -ffp-contract=off
// on x86 (the table degrades to a nullptr stub anywhere those flags are
// absent; no -mfma: contraction would fuse the separate mul+add below and
// break bit-identity with the scalar reference). Only dispatched to when the
// CPU reports both avx2 and f16c.
#if defined(__AVX2__) && defined(__F16C__)

#include <immintrin.h>

#include "kernels/simd_internal.h"

namespace ulayer::simd::detail {
namespace {

constexpr int kRoundNearest = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

// Every per-row loop below runs R <= 4 iterations and is forced fully
// unrolled: without the pragma GCC 12 at -O2 leaves the loops rolled, which
// keeps the __m256 accumulator arrays addressable — they spill to the stack
// and the hot k loop round-trips every accumulator through memory per step
// (verified in the generated assembly). Unrolling scalarizes the arrays into
// ymm registers. It does not reorder any arithmetic: rows are independent and
// each row's op sequence is unchanged, so bit-identity is preserved.
#define ULAYER_UNROLL_R _Pragma("GCC unroll 4")

// ---- QU8: int32 accumulate tiles (exact in any order) ----------------------

template <int R>
void Qu8Tile(const uint8_t* const* a_rows, int64_t a_kstride, const int32_t* a_zp,
             const uint8_t* b, int64_t ldb, int64_t jn, int64_t k, int32_t* acc,
             int64_t acc_ld) {
  const uint8_t* arp[R];
  int32_t azp[R];
  ULAYER_UNROLL_R
  for (int r = 0; r < R; ++r) {
    arp[r] = a_rows[r];
    azp[r] = a_zp[r];
  }
  int64_t jb = 0;
  for (; jb + 16 <= jn; jb += 16) {
    __m256i acc0[R];
    __m256i acc1[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      int32_t* arow = acc + r * acc_ld + jb;
      acc0[r] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arow));
      acc1[r] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arow + 8));
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const uint8_t* brow = b + kk * ldb + jb;
      const __m256i bv0 = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(brow)));
      const __m256i bv1 = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(brow + 8)));
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const int32_t av =
            static_cast<int32_t>(arp[r][kk * a_kstride]) - azp[r];
        const __m256i avv = _mm256_set1_epi32(av);
        acc0[r] = _mm256_add_epi32(acc0[r], _mm256_mullo_epi32(avv, bv0));
        acc1[r] = _mm256_add_epi32(acc1[r], _mm256_mullo_epi32(avv, bv1));
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      int32_t* arow = acc + r * acc_ld + jb;
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(arow), acc0[r]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(arow + 8), acc1[r]);
    }
  }
  for (; jb + 8 <= jn; jb += 8) {
    __m256i accv[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      accv[r] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(acc + r * acc_ld + jb));
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256i bv = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + kk * ldb + jb)));
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const int32_t av =
            static_cast<int32_t>(arp[r][kk * a_kstride]) - azp[r];
        accv[r] = _mm256_add_epi32(
            accv[r], _mm256_mullo_epi32(_mm256_set1_epi32(av), bv));
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * acc_ld + jb),
                          accv[r]);
    }
  }
  if (jb < jn) {
    for (int r = 0; r < R; ++r) {
      const uint8_t* arow = a_rows[r];
      const int32_t zp = a_zp[r];
      int32_t* ar = acc + r * acc_ld;
      for (int64_t kk = 0; kk < k; ++kk) {
        const int32_t av = static_cast<int32_t>(arow[kk * a_kstride]) - zp;
        const uint8_t* brow = b + kk * ldb;
        for (int64_t j = jb; j < jn; ++j) {
          ar[j] += av * static_cast<int32_t>(brow[j]);
        }
      }
    }
  }
}

void Qu8Avx2(const uint8_t* const* a_rows, int64_t a_kstride, const int32_t* a_zp,
             const uint8_t* b, int64_t ldb, int64_t rows, int64_t jn, int64_t k,
             int32_t* acc, int64_t acc_ld) {
  switch (rows) {
    case 1:
      Qu8Tile<1>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    case 2:
      Qu8Tile<2>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    case 3:
      Qu8Tile<3>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    case 4:
      Qu8Tile<4>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    default:
      break;
  }
}

// ---- F32: separate mul+add, per-(row,k) zero skip --------------------------

// CHECK selects whether the per-(row, k) av == 0 skip test is emitted. The
// caller prescans the A tile: when no value is zero the skip can never fire,
// so the unchecked body executes the identical op sequence — but without
// four data-dependent branches per k step the compiler keeps the accumulator
// arrays in ymm registers and the loop runs at port throughput.
template <int R, bool CHECK>
void F32TileImpl(const float* const* a_rows, int64_t a_kstride, const float* b,
                 int64_t ldb, int64_t jn, int64_t k, float* const* c_rows) {
  const float* ar[R];
  ULAYER_UNROLL_R
  for (int r = 0; r < R; ++r) {
    ar[r] = a_rows[r];
  }
  int64_t jb = 0;
  for (; jb + 16 <= jn; jb += 16) {
    __m256 acc0[R];
    __m256 acc1[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      acc0[r] = _mm256_loadu_ps(c_rows[r] + jb);
      acc1[r] = _mm256_loadu_ps(c_rows[r] + jb + 8);
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * ldb + jb;
      const __m256 bv0 = _mm256_loadu_ps(brow);
      const __m256 bv1 = _mm256_loadu_ps(brow + 8);
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const float av = ar[r][kk * a_kstride];
        if (!CHECK || av != 0.0f) {
          const __m256 avv = _mm256_set1_ps(av);
          acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(avv, bv0));
          acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(avv, bv1));
        }
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_ps(c_rows[r] + jb, acc0[r]);
      _mm256_storeu_ps(c_rows[r] + jb + 8, acc1[r]);
    }
  }
  for (; jb + 8 <= jn; jb += 8) {
    __m256 accv[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      accv[r] = _mm256_loadu_ps(c_rows[r] + jb);
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256 bv = _mm256_loadu_ps(b + kk * ldb + jb);
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const float av = ar[r][kk * a_kstride];
        if (!CHECK || av != 0.0f) {
          accv[r] = _mm256_add_ps(accv[r], _mm256_mul_ps(_mm256_set1_ps(av), bv));
        }
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_ps(c_rows[r] + jb, accv[r]);
    }
  }
  if (jb < jn) {
    for (int r = 0; r < R; ++r) {
      const float* arow = a_rows[r];
      float* crow = c_rows[r];
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk * a_kstride];
        if (CHECK && av == 0.0f) {
          continue;
        }
        const float* brow = b + kk * ldb;
        for (int64_t j = jb; j < jn; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  }
}

template <int R>
void F32Tile(const float* const* a_rows, int64_t a_kstride, const float* b,
             int64_t ldb, int64_t jn, int64_t k, float* const* c_rows) {
  bool any_zero = false;
  for (int r = 0; r < R && !any_zero; ++r) {
    const float* arow = a_rows[r];
    for (int64_t kk = 0; kk < k; ++kk) {
      if (arow[kk * a_kstride] == 0.0f) {
        any_zero = true;
        break;
      }
    }
  }
  if (any_zero) {
    F32TileImpl<R, true>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
  } else {
    F32TileImpl<R, false>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
  }
}

void F32Avx2(const float* const* a_rows, int64_t a_kstride, const float* b,
             int64_t ldb, int64_t rows, int64_t jn, int64_t k, float* const* c_rows) {
  switch (rows) {
    case 1:
      F32Tile<1>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 2:
      F32Tile<2>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 3:
      F32Tile<3>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 4:
      F32Tile<4>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    default:
      break;
  }
}

// ---- F16: per-step round-to-binary16 via F16C ------------------------------
//
// Software Half computes c += a*b as
//   p = RN16(RN32(ToFloat(a) * ToFloat(b)))   (RN32 is exact: 11-bit mantissas)
//   c = RN16(RN32(ToFloat(c) + ToFloat(p)))
// which is exactly mul_ps / cvtps_ph / cvtph_ps / add_ps / cvtps_ph here —
// F16C conversions are IEEE round-to-nearest-even, the same rounding
// Half::FromFloat implements (half_test pins that equivalence).

template <int R>
void F16Tile(const Half* const* a_rows, int64_t a_kstride, const Half* b,
             int64_t ldb, int64_t jn, int64_t k, Half* const* c_rows) {
  const Half* ar[R];
  ULAYER_UNROLL_R
  for (int r = 0; r < R; ++r) {
    ar[r] = a_rows[r];
  }
  int64_t jb = 0;
  for (; jb + 8 <= jn; jb += 8) {
    __m256 acc[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm256_cvtph_ps(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(c_rows[r] + jb)));
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256 bv = _mm256_cvtph_ps(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + kk * ldb + jb)));
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const __m256 avv = _mm256_cvtph_ps(_mm_set1_epi16(
            static_cast<int16_t>(ar[r][kk * a_kstride].bits())));
        const __m256 prod = _mm256_mul_ps(avv, bv);
        const __m256 prod16 =
            _mm256_cvtph_ps(_mm256_cvtps_ph(prod, kRoundNearest));
        const __m256 sum = _mm256_add_ps(acc[r], prod16);
        acc[r] = _mm256_cvtph_ps(_mm256_cvtps_ph(sum, kRoundNearest));
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c_rows[r] + jb),
                       _mm256_cvtps_ph(acc[r], kRoundNearest));
    }
  }
  if (jb < jn) {
    for (int r = 0; r < R; ++r) {
      const Half* arow = a_rows[r];
      Half* crow = c_rows[r];
      for (int64_t kk = 0; kk < k; ++kk) {
        const Half av = arow[kk * a_kstride];
        const Half* brow = b + kk * ldb;
        for (int64_t j = jb; j < jn; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  }
}

void F16Avx2(const Half* const* a_rows, int64_t a_kstride, const Half* b,
             int64_t ldb, int64_t rows, int64_t jn, int64_t k, Half* const* c_rows) {
  switch (rows) {
    case 1:
      F16Tile<1>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 2:
      F16Tile<2>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 3:
      F16Tile<3>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 4:
      F16Tile<4>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    default:
      break;
  }
}

// ---- Winograd transform-domain MAC -----------------------------------------

void WinoMaddAvx2(const float* u, const float* v, float* m, int64_t count) {
  __m256 m0 = _mm256_loadu_ps(m);
  __m256 m1 = _mm256_loadu_ps(m + 8);
  for (int64_t c = 0; c < count; ++c) {
    const float* uc = u + c * 16;
    const float* vc = v + c * 16;
    m0 = _mm256_add_ps(m0, _mm256_mul_ps(_mm256_loadu_ps(uc), _mm256_loadu_ps(vc)));
    m1 = _mm256_add_ps(
        m1, _mm256_mul_ps(_mm256_loadu_ps(uc + 8), _mm256_loadu_ps(vc + 8)));
  }
  _mm256_storeu_ps(m, m0);
  _mm256_storeu_ps(m + 8, m1);
}

}  // namespace

const GemmMicroKernels* Avx2Table() {
  static const GemmMicroKernels table = {Isa::kAvx2, Qu8Avx2, F32Avx2, F16Avx2,
                                         WinoMaddAvx2};
  return &table;
}

}  // namespace ulayer::simd::detail

#else  // !(__AVX2__ && __F16C__)

#include "kernels/simd_internal.h"

namespace ulayer::simd::detail {
const GemmMicroKernels* Avx2Table() { return nullptr; }
}  // namespace ulayer::simd::detail

#endif  // __AVX2__ && __F16C__
