// SSE4.1 micro-kernels. Compiled with -msse4.1 -ffp-contract=off on x86 (the
// table degrades to a nullptr stub anywhere the flag is absent). SSE4.1 has
// no F16C, so the F16 tile reuses the scalar software-Half reference (which
// is the semantic contract anyway).
#if defined(__SSE4_1__)

#include <smmintrin.h>

#include <cstring>

#include "kernels/simd_internal.h"

namespace ulayer::simd::detail {
namespace {

// Force full unroll of the R <= 4 per-row loops so the accumulator arrays
// scalarize into vector registers instead of spilling to the stack (GCC 12
// at -O2 leaves constant-trip loops rolled; see simd_avx2.cc).
#define ULAYER_UNROLL_R _Pragma("GCC unroll 4")

// Unaligned 4-byte uint8 load widened to 4x int32.
inline __m128i LoadU8x4(const uint8_t* p) {
  int32_t raw;
  std::memcpy(&raw, p, sizeof(raw));
  return _mm_cvtepu8_epi32(_mm_cvtsi32_si128(raw));
}

template <int R>
void Qu8Tile(const uint8_t* const* a_rows, int64_t a_kstride, const int32_t* a_zp,
             const uint8_t* b, int64_t ldb, int64_t jn, int64_t k, int32_t* acc,
             int64_t acc_ld) {
  int64_t jb = 0;
  for (; jb + 8 <= jn; jb += 8) {
    __m128i acc0[R];
    __m128i acc1[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      int32_t* ar = acc + r * acc_ld + jb;
      acc0[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ar));
      acc1[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ar + 4));
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const uint8_t* brow = b + kk * ldb + jb;
      const __m128i bv0 = LoadU8x4(brow);
      const __m128i bv1 = LoadU8x4(brow + 4);
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const int32_t av =
            static_cast<int32_t>(a_rows[r][kk * a_kstride]) - a_zp[r];
        const __m128i avv = _mm_set1_epi32(av);
        acc0[r] = _mm_add_epi32(acc0[r], _mm_mullo_epi32(avv, bv0));
        acc1[r] = _mm_add_epi32(acc1[r], _mm_mullo_epi32(avv, bv1));
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      int32_t* ar = acc + r * acc_ld + jb;
      _mm_storeu_si128(reinterpret_cast<__m128i*>(ar), acc0[r]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(ar + 4), acc1[r]);
    }
  }
  for (; jb + 4 <= jn; jb += 4) {
    __m128i accv[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      accv[r] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(acc + r * acc_ld + jb));
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m128i bv = LoadU8x4(b + kk * ldb + jb);
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const int32_t av =
            static_cast<int32_t>(a_rows[r][kk * a_kstride]) - a_zp[r];
        accv[r] = _mm_add_epi32(accv[r], _mm_mullo_epi32(_mm_set1_epi32(av), bv));
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + r * acc_ld + jb),
                       accv[r]);
    }
  }
  if (jb < jn) {
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      const uint8_t* arow = a_rows[r];
      const int32_t zp = a_zp[r];
      int32_t* ar = acc + r * acc_ld;
      for (int64_t kk = 0; kk < k; ++kk) {
        const int32_t av = static_cast<int32_t>(arow[kk * a_kstride]) - zp;
        const uint8_t* brow = b + kk * ldb;
        for (int64_t j = jb; j < jn; ++j) {
          ar[j] += av * static_cast<int32_t>(brow[j]);
        }
      }
    }
  }
}

void Qu8Sse41(const uint8_t* const* a_rows, int64_t a_kstride, const int32_t* a_zp,
              const uint8_t* b, int64_t ldb, int64_t rows, int64_t jn, int64_t k,
              int32_t* acc, int64_t acc_ld) {
  switch (rows) {
    case 1:
      Qu8Tile<1>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    case 2:
      Qu8Tile<2>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    case 3:
      Qu8Tile<3>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    case 4:
      Qu8Tile<4>(a_rows, a_kstride, a_zp, b, ldb, jn, k, acc, acc_ld);
      break;
    default:
      break;
  }
}

template <int R>
void F32Tile(const float* const* a_rows, int64_t a_kstride, const float* b,
             int64_t ldb, int64_t jn, int64_t k, float* const* c_rows) {
  int64_t jb = 0;
  for (; jb + 8 <= jn; jb += 8) {
    __m128 acc0[R];
    __m128 acc1[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      acc0[r] = _mm_loadu_ps(c_rows[r] + jb);
      acc1[r] = _mm_loadu_ps(c_rows[r] + jb + 4);
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * ldb + jb;
      const __m128 bv0 = _mm_loadu_ps(brow);
      const __m128 bv1 = _mm_loadu_ps(brow + 4);
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const float av = a_rows[r][kk * a_kstride];
        if (av != 0.0f) {
          const __m128 avv = _mm_set1_ps(av);
          acc0[r] = _mm_add_ps(acc0[r], _mm_mul_ps(avv, bv0));
          acc1[r] = _mm_add_ps(acc1[r], _mm_mul_ps(avv, bv1));
        }
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      _mm_storeu_ps(c_rows[r] + jb, acc0[r]);
      _mm_storeu_ps(c_rows[r] + jb + 4, acc1[r]);
    }
  }
  for (; jb + 4 <= jn; jb += 4) {
    __m128 accv[R];
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      accv[r] = _mm_loadu_ps(c_rows[r] + jb);
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m128 bv = _mm_loadu_ps(b + kk * ldb + jb);
      ULAYER_UNROLL_R
      for (int r = 0; r < R; ++r) {
        const float av = a_rows[r][kk * a_kstride];
        if (av != 0.0f) {
          accv[r] = _mm_add_ps(accv[r], _mm_mul_ps(_mm_set1_ps(av), bv));
        }
      }
    }
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      _mm_storeu_ps(c_rows[r] + jb, accv[r]);
    }
  }
  if (jb < jn) {
    ULAYER_UNROLL_R
    for (int r = 0; r < R; ++r) {
      const float* arow = a_rows[r];
      float* crow = c_rows[r];
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk * a_kstride];
        if (av == 0.0f) {
          continue;
        }
        const float* brow = b + kk * ldb;
        for (int64_t j = jb; j < jn; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  }
}

void F32Sse41(const float* const* a_rows, int64_t a_kstride, const float* b,
              int64_t ldb, int64_t rows, int64_t jn, int64_t k, float* const* c_rows) {
  switch (rows) {
    case 1:
      F32Tile<1>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 2:
      F32Tile<2>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 3:
      F32Tile<3>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    case 4:
      F32Tile<4>(a_rows, a_kstride, b, ldb, jn, k, c_rows);
      break;
    default:
      break;
  }
}

void WinoMaddSse41(const float* u, const float* v, float* m, int64_t count) {
  __m128 m0 = _mm_loadu_ps(m);
  __m128 m1 = _mm_loadu_ps(m + 4);
  __m128 m2 = _mm_loadu_ps(m + 8);
  __m128 m3 = _mm_loadu_ps(m + 12);
  for (int64_t c = 0; c < count; ++c) {
    const float* uc = u + c * 16;
    const float* vc = v + c * 16;
    m0 = _mm_add_ps(m0, _mm_mul_ps(_mm_loadu_ps(uc), _mm_loadu_ps(vc)));
    m1 = _mm_add_ps(m1, _mm_mul_ps(_mm_loadu_ps(uc + 4), _mm_loadu_ps(vc + 4)));
    m2 = _mm_add_ps(m2, _mm_mul_ps(_mm_loadu_ps(uc + 8), _mm_loadu_ps(vc + 8)));
    m3 = _mm_add_ps(m3, _mm_mul_ps(_mm_loadu_ps(uc + 12), _mm_loadu_ps(vc + 12)));
  }
  _mm_storeu_ps(m, m0);
  _mm_storeu_ps(m + 4, m1);
  _mm_storeu_ps(m + 8, m2);
  _mm_storeu_ps(m + 12, m3);
}

}  // namespace

const GemmMicroKernels* Sse41Table() {
  static const GemmMicroKernels table = {Isa::kSse41, Qu8Sse41, F32Sse41,
                                         F16Scalar, WinoMaddSse41};
  return &table;
}

}  // namespace ulayer::simd::detail

#else  // !defined(__SSE4_1__)

#include "kernels/simd_internal.h"

namespace ulayer::simd::detail {
const GemmMicroKernels* Sse41Table() { return nullptr; }
}  // namespace ulayer::simd::detail

#endif  // __SSE4_1__
