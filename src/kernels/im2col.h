// im2col: unfolds convolution input patches into a matrix so that a
// convolution becomes a single GEMM (the standard mobile conv lowering used
// by ARM Compute Library and gemmlowp-based stacks).
#pragma once

#include <cstdint>

#include "kernels/access_spec.h"
#include "kernels/params.h"
#include "quant/half.h"

namespace ulayer {

// Unfolds one image `input` [C,H,W] into `cols` [C*kh*kw, out_h*out_w].
// Out-of-bounds (padding) elements are written as `pad_value`.
void Im2ColF32(const float* input, int channels, int height, int width, const Conv2DParams& p,
               float* cols, float pad_value = 0.0f);

void Im2ColF16(const Half* input, int channels, int height, int width, const Conv2DParams& p,
               Half* cols, Half pad_value = Half(0.0f));

// For quantized inputs the padding value must be the input zero point so it
// dequantizes to real 0.
void Im2ColQU8(const uint8_t* input, int channels, int height, int width, const Conv2DParams& p,
               uint8_t* cols, uint8_t pad_value);

// Declared write range of one Im2Col call into `cols`, relative to the cols
// buffer: [0, channels*kh*kw * OutH*OutW * elem_bytes). Im2Col is serial, so
// this is a plain range, not a LoopSpec.
AccessRange Im2ColWriteRange(int channels, int height, int width, const Conv2DParams& p,
                             int64_t elem_bytes);

}  // namespace ulayer
