#include "baselines/baselines.h"

namespace ulayer {

Plan MakeSingleProcessorPlan(const Graph& g, ProcKind proc) {
  Plan plan;
  plan.batch = g.BatchSize();
  plan.nodes.assign(static_cast<size_t>(g.size()), NodeAssignment{StepKind::kSingle, proc, 1.0});
  return plan;
}

Plan MakeLayerToProcessorPlan(const Graph& g, const TimingModel& timing, const ExecConfig& config,
                              const LatencyPredictor& predictor) {
  Partitioner::Options opts;
  opts.channel_distribution = false;
  opts.branch_distribution = false;
  return Partitioner(g, timing, config, predictor, opts).Build();
}

RunResult RunSingleProcessor(const Model& m, const SocSpec& soc, ProcKind proc,
                             const ExecConfig& config, const Tensor* input) {
  PreparedModel pm(m, config);
  Executor ex(pm, soc);
  return ex.Run(MakeSingleProcessorPlan(m.graph, proc), input);
}

RunResult RunLayerToProcessor(const Model& m, const SocSpec& soc, const ExecConfig& config,
                              const Tensor* input) {
  const TimingModel timing(soc);
  const LatencyPredictor predictor(timing, config, {&m.graph});
  PreparedModel pm(m, config);
  Executor ex(pm, soc);
  return ex.Run(MakeLayerToProcessorPlan(m.graph, timing, config, predictor), input);
}

ThroughputResult RunNetworkToProcessor(const Model& m, const SocSpec& soc,
                                       const ExecConfig& config, int num_inputs) {
  // Whole-network latency on each processor (simulate-only).
  const double cpu_us =
      RunSingleProcessor(m, soc, ProcKind::kCpu, config, nullptr).latency_us;
  const double gpu_us =
      RunSingleProcessor(m, soc, ProcKind::kGpu, config, nullptr).latency_us;

  ThroughputResult r;
  r.first_input_us = std::min(cpu_us, gpu_us);
  double cpu_free = 0.0;
  double gpu_free = 0.0;
  for (int i = 0; i < num_inputs; ++i) {
    // Greedy: give the next input to the processor that would finish it
    // sooner (MCDNN-style load balancing).
    if (cpu_free + cpu_us <= gpu_free + gpu_us) {
      cpu_free += cpu_us;
      ++r.cpu_inputs;
    } else {
      gpu_free += gpu_us;
      ++r.gpu_inputs;
    }
  }
  r.makespan_us = std::max(cpu_free, gpu_free);
  r.per_input_us = num_inputs > 0 ? r.makespan_us / num_inputs : 0.0;
  return r;
}

}  // namespace ulayer
