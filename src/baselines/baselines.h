// Baseline NN execution mechanisms the paper evaluates against
// (Section 2.2 / Figure 4):
//  - single-processor:    the whole NN on the CPU or the GPU;
//  - layer-to-processor:  each layer on its faster processor (DeepX-style);
//  - network-to-processor: whole inputs distributed across processors
//                          (MCDNN-style; improves throughput, not latency).
#pragma once

#include "core/executor.h"
#include "core/partitioner.h"
#include "models/model.h"

namespace ulayer {

// Plan that runs every layer on `proc`.
Plan MakeSingleProcessorPlan(const Graph& g, ProcKind proc);

// Plan that runs each layer on the processor with the lower predicted
// latency (no channel splitting, no branch distribution).
Plan MakeLayerToProcessorPlan(const Graph& g, const TimingModel& timing, const ExecConfig& config,
                              const LatencyPredictor& predictor);

// Convenience runners (simulate-only unless `input` is provided).
RunResult RunSingleProcessor(const Model& m, const SocSpec& soc, ProcKind proc,
                             const ExecConfig& config, const Tensor* input = nullptr);
RunResult RunLayerToProcessor(const Model& m, const SocSpec& soc, const ExecConfig& config,
                              const Tensor* input = nullptr);

// Network-to-processor mapping over `num_inputs` independent inputs: each
// input runs entirely on one processor; inputs are assigned greedily to the
// processor that frees up first.
struct ThroughputResult {
  double makespan_us = 0.0;   // Until the last input completes.
  double per_input_us = 0.0;  // makespan / num_inputs (throughput measure).
  double first_input_us = 0.0;  // Single-input latency (unchanged by this mapping).
  int cpu_inputs = 0;
  int gpu_inputs = 0;
};
ThroughputResult RunNetworkToProcessor(const Model& m, const SocSpec& soc,
                                       const ExecConfig& config, int num_inputs);

}  // namespace ulayer
