#include "net/coordinator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "common/error.h"
#include "core/compute.h"
#include "net/wire.h"

namespace ulayer::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The roofline prices work at QUInt8 storage, matching the partitioner's
// cost model (and multi::SliceWork); functional numerics are unaffected.
constexpr DType kCostDType = DType::kQUInt8;

std::string FormatUs(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string NetDegradation::ToString() const {
  std::ostringstream os;
  os << "net degradation: "
     << (degraded() ? "degraded" : "none")
     << " (retransmits=" << retransmits << " reroutes=" << reroutes
     << " worker-deaths=" << worker_deaths << " partitions=" << partitions
     << " delays=" << delays << " heartbeat-timeouts=" << heartbeat_timeouts
     << " faults-injected=" << faults_injected << ")";
  for (const fault::FaultEvent& ev : events) {
    os << "\n  " << ev.ToString();
  }
  return os.str();
}

Coordinator::Coordinator(const PreparedModel& pm, ClusterSpec cluster)
    : pm_(pm), cluster_(std::move(cluster)) {
  injector_ = std::make_unique<fault::FaultInjector>(fault::FaultPlan{});
}

void Coordinator::SetFaultPlan(fault::FaultPlan plan) {
  injector_ = std::make_unique<fault::FaultInjector>(std::move(plan));
}

NetRunResult Coordinator::Run(const NetPlan& plan, const Tensor* input) {
  const Graph& g = pm_.graph();
  const size_t v = static_cast<size_t>(g.size());
  const size_t nw = cluster_.workers.size();
  if (plan.kind != NetPlanKind::kChannel) {
    throw Error(ErrorCode::kInvalidArgument,
                "Run wants a channel plan; use RunPipeline for pipeline plans");
  }
  if (plan.fractions.size() != v) {
    throw Error(ErrorCode::kInvalidArgument,
                "net plan has " + std::to_string(plan.fractions.size()) + " rows for a " +
                    std::to_string(v) + "-node graph");
  }
  injector_->ResetRun();

  NetRunResult r;
  r.worker_busy_us.assign(nw, 0.0);
  r.worker_alive.assign(nw, true);
  r.death_us.assign(nw, kInf);

  std::vector<Link> links;
  links.reserve(nw);
  for (const WorkerSpec& w : cluster_.workers) {
    links.emplace_back(w.link);
  }
  std::vector<char> link_down(nw, 0);
  std::vector<char> alive(nw, 1);

  const bool functional = input != nullptr;
  std::vector<Tensor> act;
  std::vector<std::vector<Tensor>> wact;
  // Which full (merged) tensors each worker holds — tracked in timing-only
  // runs too, so both modes send identical message sequences and the fault
  // stream of a timing run predicts the functional one exactly.
  std::vector<std::vector<char>> whas(nw, std::vector<char>(v, 0));
  if (functional) {
    act.resize(v);
    wact.assign(nw, std::vector<Tensor>(v));
  }

  std::vector<double> done(v, 0.0);
  std::vector<double> worker_time(nw, 0.0);
  double coord_time = 0.0;
  int64_t seq = 0;

  const multi::MultiProcessor coord_proc{cluster_.coordinator_proc,
                                         cluster_.coordinator_compute};
  auto worker_proc = [&](int w) {
    return multi::MultiProcessor{cluster_.workers[static_cast<size_t>(w)].proc,
                                 cluster_.workers[static_cast<size_t>(w)].compute};
  };

  struct SendOutcome {
    bool delivered = false;
    double arrive_us = -1.0;
  };

  // One message over worker `w`'s link with drop/delay/partition injection
  // and bounded exponential-backoff retransmits.
  auto send_message = [&](int w, MessageKind kind, int node_id, int64_t c0, int64_t c1,
                          double ready_us, bool to_worker) -> SendOutcome {
    const size_t wi = static_cast<size_t>(w);
    const Node& node = g.node(node_id);
    const int64_t bytes = WireSliceBytes(node.out_shape, pm_.ActivationDType(node_id), c0, c1);
    MessageRecord rec;
    rec.seq = seq++;
    rec.kind = kind;
    rec.worker = w;
    rec.node = node_id;
    rec.c_begin = c0;
    rec.c_end = c1;
    rec.bytes = bytes;
    rec.frags = FragmentCount(bytes, links[wi].spec().mtu_bytes);
    rec.to_worker = to_worker;
    rec.send_us = ready_us;

    SendOutcome out;
    int attempts = 0;
    double t = ready_us;
    const int max_attempts = cluster_.max_retransmits + 1;
    while (!out.delivered && attempts < max_attempts && link_down[wi] == 0) {
      ++attempts;
      const Delivery d = links[wi].Send(t, bytes);
      rec.send_us = d.depart_us;
      const auto dec = injector_->OnNetCall(fault::FaultTarget::kNetLink, w, d.depart_us);
      if (!dec.has_value()) {
        out.delivered = true;
        out.arrive_us = d.arrive_us;
      } else if (dec->kind == fault::FaultKind::kDelay) {
        out.delivered = true;
        out.arrive_us = d.arrive_us + dec->delay_us;
        ++r.degradation.delays;
      } else if (dec->kind == fault::FaultKind::kPartition) {
        link_down[wi] = 1;  // Down for the rest of the run; message lost.
        ++r.degradation.partitions;
      } else {
        // kDrop: lost in flight; retransmit after the exponential backoff.
        t = d.depart_us + d.occupancy_us +
            cluster_.retransmit_backoff_us * std::ldexp(1.0, attempts - 1);
      }
    }
    rec.attempts = attempts;
    rec.delivered = out.delivered;
    rec.arrive_us = out.arrive_us;
    r.degradation.retransmits += std::max(0, attempts - 1);
    ++r.wire_messages;
    r.wire_bytes += bytes * attempts;
    r.messages.push_back(rec);
    return out;
  };

  // Functional input delivery: the producer tensor actually travels through
  // the wire format (encode -> MTU fragmentation -> reassembly -> decode ->
  // scatter), so a functional run exercises the full transport end to end.
  auto deliver_input = [&](int w, int p) {
    const size_t wi = static_cast<size_t>(w);
    whas[wi][static_cast<size_t>(p)] = 1;
    if (!functional) {
      return;
    }
    const Tensor& src = act[static_cast<size_t>(p)];
    const std::vector<uint8_t> bytes = EncodeTensorSlice(src, p, 0, src.shape().c);
    const WireSlice slice = DecodeTensorSlice(ReassembleMessage(
        FragmentMessage(static_cast<uint64_t>(seq), bytes, links[wi].spec().mtu_bytes)));
    Tensor dst(src.shape(), src.dtype());
    dst.set_quant_params(src.scale(), src.zero_point());
    ScatterSlice(slice, dst);
    wact[wi][static_cast<size_t>(p)] = std::move(dst);
  };

  // Declares worker `w` lost at `detect_us` (heartbeat expiry).
  auto declare_lost = [&](int w, double detect_us) {
    alive[static_cast<size_t>(w)] = 0;
    r.worker_alive[static_cast<size_t>(w)] = false;
    r.death_us[static_cast<size_t>(w)] = detect_us;
    ++r.degradation.heartbeat_timeouts;
  };

  for (const Node& node : g.nodes()) {
    const size_t id = static_cast<size_t>(node.id);
    injector_->set_current_node(node.id);
    if (node.desc.kind == LayerKind::kInput) {
      if (functional) {
        act[id] = pm_.PrepareInput(*input);
      }
      done[id] = 0.0;
      continue;
    }
    const int64_t channels = node.out_shape.c;
    double ready = 0.0;
    for (int p : node.inputs) {
      ready = std::max(ready, done[static_cast<size_t>(p)]);
    }

    // The plan row, restricted to workers still alive; SliceBoundaries
    // renormalizes, so a surviving subset absorbs a dead worker's share.
    std::vector<double> row = plan.fractions[id];
    row.resize(nw, 0.0);
    for (size_t w = 0; w < nw; ++w) {
      if (alive[w] == 0) {
        row[w] = 0.0;
      }
    }
    const std::vector<int64_t> bounds = SliceBoundaries(channels, row);
    std::vector<int> participants;
    for (size_t w = 0; w < nw; ++w) {
      if (bounds[w + 1] > bounds[w]) {
        participants.push_back(static_cast<int>(w));
      }
    }
    if (!multi::SplittableLayer(node.desc.kind) && participants.size() > 1) {
      throw Error(ErrorCode::kInvalidArgument,
                  "net plan splits non-splittable node " + std::to_string(node.id));
    }

    if (participants.empty()) {
      // Coordinator computes the whole node locally.
      if (functional) {
        act[id] = pm_.MakeActivation(node.id);
        ComputeNodeSlice(pm_, node.id, ProcKind::kCpu, act, 0, channels);
      }
      const double dur = multi::KernelLatencyUs(
          coord_proc, ComputeWork(g, node, kCostDType, 0, channels));
      const double start = std::max(ready, coord_time);
      coord_time = start + dur;
      r.coordinator_busy_us += dur;
      done[id] = coord_time;
      continue;
    }

    if (functional) {
      act[id] = pm_.MakeActivation(node.id);
    }

    struct LostSlice {
      int worker = -1;
      int64_t c0 = 0;
      int64_t c1 = 0;
      double detect_us = 0.0;
    };
    std::vector<LostSlice> lost;
    std::vector<double> arrivals;
    int delivered_slices = 0;

    // Runs slice [c0, c1) on worker `w`: ships missing producers, computes,
    // returns the result. Used for planned assignments and re-routes alike.
    auto run_on_worker = [&](int w, int64_t c0, int64_t c1, double assign_us,
                             bool rerouted) -> void {
      const size_t wi = static_cast<size_t>(w);
      // Worker-death faults fire at slice assignment; the silent death is
      // detected one heartbeat window later.
      const auto dec =
          injector_->OnNetCall(fault::FaultTarget::kNetWorker, w, assign_us);
      if (dec.has_value() && dec->kind == fault::FaultKind::kWorkerDeath) {
        ++r.degradation.worker_deaths;
        const double detect = assign_us + cluster_.heartbeat_timeout_us;
        declare_lost(w, detect);
        lost.push_back(LostSlice{w, c0, c1, detect});
        return;
      }
      double in_ready = assign_us;
      for (int p : node.inputs) {
        if (whas[wi][static_cast<size_t>(p)] != 0) {
          continue;
        }
        const SendOutcome in = send_message(
            w, MessageKind::kInput, p, 0, g.node(p).out_shape.c,
            std::max(assign_us, done[static_cast<size_t>(p)]), /*to_worker=*/true);
        if (!in.delivered) {
          const double detect =
              std::max(assign_us, links[wi].busy_until()) + cluster_.heartbeat_timeout_us;
          declare_lost(w, detect);
          lost.push_back(LostSlice{w, c0, c1, detect});
          return;
        }
        deliver_input(w, p);
        in_ready = std::max(in_ready, in.arrive_us);
      }
      const double start = std::max(in_ready, worker_time[wi]);
      const double dur = multi::KernelLatencyUs(
          worker_proc(w), ComputeWork(g, node, kCostDType, c0, c1));
      worker_time[wi] = start + dur;
      r.worker_busy_us[wi] += dur;
      if (functional) {
        if (wact[wi][id].empty()) {
          wact[wi][id] = pm_.MakeActivation(node.id);
        }
        // Always the deterministic CPU-flavor kernels, whatever the worker's
        // timing dtype: this is what makes any re-partition byte-identical.
        ComputeNodeSlice(pm_, node.id, ProcKind::kCpu, wact[wi], c0, c1);
      }
      const SendOutcome res = send_message(w, MessageKind::kResult, node.id, c0, c1,
                                           worker_time[wi], /*to_worker=*/false);
      SliceRecord srec;
      srec.node = node.id;
      srec.worker = w;
      srec.c_begin = c0;
      srec.c_end = c1;
      srec.start_us = start;
      srec.end_us = worker_time[wi];
      srec.rerouted = rerouted;
      srec.delivered = res.delivered;
      r.slices.push_back(srec);
      if (!res.delivered) {
        // The slice was computed but its result never arrived: the worker is
        // unreachable, so the coordinator re-routes after the heartbeat.
        const double detect =
            std::max(worker_time[wi], links[wi].busy_until()) + cluster_.heartbeat_timeout_us;
        declare_lost(w, detect);
        lost.push_back(LostSlice{w, c0, c1, detect});
        return;
      }
      if (functional) {
        const std::vector<uint8_t> bytes = EncodeTensorSlice(wact[wi][id], node.id, c0, c1);
        ScatterSlice(DecodeTensorSlice(bytes), act[id]);
      }
      arrivals.push_back(res.arrive_us);
      ++delivered_slices;
    };

    for (int w : participants) {
      run_on_worker(w, bounds[static_cast<size_t>(w)], bounds[static_cast<size_t>(w) + 1],
                    ready, /*rerouted=*/false);
    }

    // Recovery: re-route every lost slice to the lowest-id surviving worker,
    // or absorb it on the coordinator when nobody is left. Cascading
    // failures append to `lost` and drain in FIFO order; the coordinator
    // itself never fails, so this terminates.
    for (size_t li = 0; li < lost.size(); ++li) {
      const LostSlice l = lost[li];
      ++r.degradation.reroutes;
      int target = -1;
      for (size_t w = 0; w < nw; ++w) {
        if (alive[w] != 0) {
          target = static_cast<int>(w);
          break;
        }
      }
      if (target >= 0) {
        run_on_worker(target, l.c0, l.c1, l.detect_us, /*rerouted=*/true);
      } else {
        const double start = std::max(l.detect_us, coord_time);
        const double dur = multi::KernelLatencyUs(
            coord_proc, ComputeWork(g, node, kCostDType, l.c0, l.c1));
        coord_time = start + dur;
        r.coordinator_busy_us += dur;
        if (functional) {
          ComputeNodeSlice(pm_, node.id, ProcKind::kCpu, act, l.c0, l.c1);
        }
        SliceRecord srec;
        srec.node = node.id;
        srec.worker = -1;
        srec.c_begin = l.c0;
        srec.c_end = l.c1;
        srec.start_us = start;
        srec.end_us = coord_time;
        srec.rerouted = true;
        srec.delivered = true;
        r.slices.push_back(srec);
        arrivals.push_back(coord_time);
        ++delivered_slices;
      }
    }

    double end = ready;
    for (double a : arrivals) {
      end = std::max(end, a);
    }
    if (delivered_slices > 1) {
      // The coordinator scatters multiple slices back together.
      const double mstart = std::max(end, coord_time);
      coord_time = mstart + cluster_.merge_us;
      r.coordinator_busy_us += cluster_.merge_us;
      end = coord_time;
    }
    done[id] = end;
  }

  injector_->set_current_node(-1);
  r.latency_us = done[v - 1];
  r.degradation.events = injector_->events();
  r.degradation.faults_injected = static_cast<int64_t>(injector_->events().size());
  if (functional) {
    r.output = std::move(act[v - 1]);
    r.output_digest =
        Fnv1a64(r.output->raw(), static_cast<size_t>(r.output->SizeBytes()));
  }
  return r;
}

PipelineResult Coordinator::RunPipeline(const NetPlan& plan, int items) {
  if (plan.kind != NetPlanKind::kPipeline) {
    throw Error(ErrorCode::kInvalidArgument, "RunPipeline wants a kPipeline plan");
  }
  if (items <= 0) {
    throw Error(ErrorCode::kInvalidArgument, "RunPipeline wants items > 0");
  }
  const Graph& g = pm_.graph();
  const int v = g.size();
  const size_t stages = plan.stage_worker.size();

  // Per-stage compute cost and boundary traffic (constant per item).
  std::vector<double> stage_cost(stages, 0.0);
  std::vector<int64_t> stage_in_bytes(stages, 0);
  for (int id = 0; id < v; ++id) {
    const int s = plan.stage_of_node[static_cast<size_t>(id)];
    if (s < 0) {
      continue;
    }
    const Node& node = g.node(id);
    const int w = plan.stage_worker[static_cast<size_t>(s)];
    const multi::MultiProcessor proc =
        w < 0 ? multi::MultiProcessor{cluster_.coordinator_proc, cluster_.coordinator_compute}
              : multi::MultiProcessor{cluster_.workers[static_cast<size_t>(w)].proc,
                                      cluster_.workers[static_cast<size_t>(w)].compute};
    stage_cost[static_cast<size_t>(s)] += multi::KernelLatencyUs(
        proc, ComputeWork(g, node, kCostDType, 0, node.out_shape.c));
    for (int p : node.inputs) {
      if (plan.stage_of_node[static_cast<size_t>(p)] != s) {
        const Shape& ps = g.node(p).out_shape;
        stage_in_bytes[static_cast<size_t>(s)] +=
            WireSliceBytes(ps, pm_.ActivationDType(p), 0, ps.c);
      }
    }
  }
  const Shape& out_shape = g.node(v - 1).out_shape;
  const int64_t out_bytes = WireSliceBytes(out_shape, pm_.ActivationDType(v - 1), 0, out_shape.c);

  std::vector<Link> links;
  links.reserve(cluster_.workers.size());
  for (const WorkerSpec& w : cluster_.workers) {
    links.emplace_back(w.link);
  }

  PipelineResult pr;
  pr.items = items;
  pr.stage_busy_us.assign(stages, 0.0);
  std::vector<double> stage_free(stages, 0.0);
  double last_arrive = 0.0;
  for (int item = 0; item < items; ++item) {
    double at = 0.0;  // Every item is available at the coordinator at t=0;
                      // link occupancy and stage busy-ness stagger them.
    for (size_t s = 0; s < stages; ++s) {
      const int w = plan.stage_worker[s];
      double arrive = at;
      if (w >= 0 && stage_in_bytes[s] > 0) {
        const Delivery d = links[static_cast<size_t>(w)].Send(at, stage_in_bytes[s]);
        arrive = d.arrive_us;
        pr.wire_bytes += stage_in_bytes[s];
      }
      const double start = std::max(arrive, stage_free[s]);
      stage_free[s] = start + stage_cost[s];
      pr.stage_busy_us[s] += stage_cost[s];
      at = stage_free[s];
    }
    if (!plan.stage_worker.empty() && plan.stage_worker.back() >= 0) {
      const Delivery d =
          links[static_cast<size_t>(plan.stage_worker.back())].Send(at, out_bytes);
      at = d.arrive_us;
      pr.wire_bytes += out_bytes;
    }
    last_arrive = std::max(last_arrive, at);
  }
  pr.makespan_us = last_arrive;
  pr.throughput_per_s = last_arrive > 0.0 ? static_cast<double>(items) / (last_arrive * 1e-6) : 0.0;
  for (size_t s = 0; s < stages; ++s) {
    double serialize_us = 0.0;
    const int w = plan.stage_worker[s];
    if (w >= 0 && stage_in_bytes[s] > 0) {
      const LinkSpec& link = cluster_.workers[static_cast<size_t>(w)].link;
      serialize_us =
          static_cast<double>(FragmentCount(stage_in_bytes[s], link.mtu_bytes)) *
              link.per_packet_us +
          static_cast<double>(stage_in_bytes[s]) / (link.gb_per_s * 1e3);
    }
    pr.bottleneck_us = std::max(pr.bottleneck_us, stage_cost[s] + serialize_us);
  }
  return pr;
}

Report VerifyNetRun(const Graph& g, const ClusterSpec& cluster, const NetRunResult& r) {
  Report rep;
  const int nw = static_cast<int>(cluster.workers.size());
  constexpr double kEps = 1e-6;

  // --- N804 message sanity + per-message retransmit bounds (N803) -----------
  int64_t retransmits = 0;
  for (const MessageRecord& m : r.messages) {
    if (m.worker < 0 || m.worker >= nw) {
      rep.Error(DiagCode::kNetMessageInvalid, m.node,
                "message seq " + std::to_string(m.seq) + " names worker " +
                    std::to_string(m.worker) + " outside [0, " + std::to_string(nw) + ")");
      continue;
    }
    const LinkSpec& link = cluster.workers[static_cast<size_t>(m.worker)].link;
    if (m.bytes <= 0) {
      rep.Error(DiagCode::kNetMessageInvalid, m.node,
                "message seq " + std::to_string(m.seq) + " carries no bytes");
    }
    if (m.frags != FragmentCount(m.bytes, link.mtu_bytes)) {
      rep.Error(DiagCode::kNetMessageInvalid, m.node,
                "message seq " + std::to_string(m.seq) + " has " + std::to_string(m.frags) +
                    " fragments; mtu " + std::to_string(link.mtu_bytes) + " implies " +
                    std::to_string(FragmentCount(m.bytes, link.mtu_bytes)));
    }
    if (m.delivered && m.arrive_us + kEps < m.send_us + link.latency_us) {
      rep.Error(DiagCode::kNetMessageInvalid, m.node,
                "message seq " + std::to_string(m.seq) + " arrived at " +
                    FormatUs(m.arrive_us) + "us, before send + link latency");
    }
    if (m.attempts > cluster.max_retransmits + 1) {
      rep.Error(DiagCode::kNetRetransmitMismatch, m.node,
                "message seq " + std::to_string(m.seq) + " used " +
                    std::to_string(m.attempts) + " attempts; bound is " +
                    std::to_string(cluster.max_retransmits + 1));
    }
    if (!m.delivered && m.worker < static_cast<int>(r.worker_alive.size()) &&
        r.worker_alive[static_cast<size_t>(m.worker)]) {
      rep.Error(DiagCode::kNetRetransmitMismatch, m.node,
                "message seq " + std::to_string(m.seq) +
                    " was never delivered, yet worker " + std::to_string(m.worker) +
                    " survived the run");
    }
    retransmits += std::max(0, m.attempts - 1);
  }

  // --- N803 retransmit accounting -------------------------------------------
  if (retransmits != r.degradation.retransmits) {
    rep.Error(DiagCode::kNetRetransmitMismatch, -1,
              "messages record " + std::to_string(retransmits) +
                  " retransmits; the degradation report claims " +
                  std::to_string(r.degradation.retransmits));
  }

  // --- N801 slice coverage / N802 double delivery ---------------------------
  std::map<int, std::vector<const SliceRecord*>> delivered_by_node;
  for (const SliceRecord& s : r.slices) {
    if (s.delivered) {
      delivered_by_node[s.node].push_back(&s);
    }
  }
  for (auto& [node_id, slices] : delivered_by_node) {
    const int64_t channels = g.node(node_id).out_shape.c;
    std::sort(slices.begin(), slices.end(),
              [](const SliceRecord* a, const SliceRecord* b) {
                return a->c_begin != b->c_begin ? a->c_begin < b->c_begin
                                                : a->c_end < b->c_end;
              });
    int64_t cursor = 0;
    bool overlap = false;
    bool gap = false;
    for (const SliceRecord* s : slices) {
      if (s->c_begin < 0 || s->c_end > channels || s->c_end <= s->c_begin) {
        rep.Error(DiagCode::kNetSliceCoverage, node_id,
                  "delivered slice [" + std::to_string(s->c_begin) + ", " +
                      std::to_string(s->c_end) + ") outside [0, " +
                      std::to_string(channels) + ")");
        continue;
      }
      if (s->c_begin < cursor) {
        overlap = true;
      } else if (s->c_begin > cursor) {
        gap = true;
      }
      cursor = std::max(cursor, s->c_end);
    }
    if (overlap) {
      rep.Error(DiagCode::kNetDoubleDelivery, node_id,
                "a channel range was delivered more than once");
    }
    if (gap || cursor != channels) {
      rep.Error(DiagCode::kNetSliceCoverage, node_id,
                "delivered slices do not partition [0, " + std::to_string(channels) + ")");
    }
  }

  // --- N805 no activity past a worker's death -------------------------------
  for (const SliceRecord& s : r.slices) {
    if (s.worker < 0 || static_cast<size_t>(s.worker) >= r.death_us.size()) {
      continue;
    }
    const double death = r.death_us[static_cast<size_t>(s.worker)];
    if (std::isfinite(death) && s.end_us > death + kEps) {
      rep.Error(DiagCode::kNetDeadWorkerActivity, s.node,
                "worker " + std::to_string(s.worker) + " computed a slice ending at " +
                    FormatUs(s.end_us) + "us, after its death at " + FormatUs(death) + "us");
    }
  }
  for (const MessageRecord& m : r.messages) {
    if (m.worker < 0 || static_cast<size_t>(m.worker) >= r.death_us.size()) {
      continue;
    }
    const double death = r.death_us[static_cast<size_t>(m.worker)];
    if (std::isfinite(death) && m.send_us > death + kEps) {
      rep.Error(DiagCode::kNetDeadWorkerActivity, m.node,
                "message seq " + std::to_string(m.seq) + " departed at " +
                    FormatUs(m.send_us) + "us, after worker " + std::to_string(m.worker) +
                    "'s death at " + FormatUs(death) + "us");
    }
  }
  return rep;
}

void AddNetRun(trace::MetricsRegistry& m, const NetRunResult& r) {
  m.Count("net.runs");
  m.Count("net.messages", r.wire_messages);
  m.Count("net.bytes", r.wire_bytes);
  m.Count("net.retransmits", r.degradation.retransmits);
  int64_t drops = 0;
  for (const fault::FaultEvent& ev : r.degradation.events) {
    drops += ev.kind == fault::FaultKind::kDrop ? 1 : 0;
  }
  m.Count("net.drops", drops);
  m.Count("net.reroutes", r.degradation.reroutes);
  m.Count("net.worker_deaths", r.degradation.worker_deaths);
  m.Count("net.partitions", r.degradation.partitions);
  m.Count("net.delays", r.degradation.delays);
  m.Count("net.heartbeat_timeouts", r.degradation.heartbeat_timeouts);
  m.Count("net.faults_injected", r.degradation.faults_injected);
  m.Observe("net.latency_us", r.latency_us);
  for (const MessageRecord& rec : r.messages) {
    m.Observe("net.msg_bytes", static_cast<double>(rec.bytes));
    if (rec.delivered) {
      m.Observe("net.msg_us", rec.arrive_us - rec.send_us);
    }
  }
  for (const SliceRecord& s : r.slices) {
    m.Observe("net.slice_us", s.end_us - s.start_us);
  }
}

}  // namespace ulayer::net
