// Deterministic point-to-point link simulator (DESIGN.md Section 15).
//
// Each worker connects to the coordinator over one half-duplex link with a
// bandwidth, a propagation latency, an MTU and a fixed per-packet overhead.
// A link is a virtual busy timeline, exactly like the ucl device timelines:
// a message occupies the link for its serialization time (per-packet
// overhead x fragment count + bytes / bandwidth) starting no earlier than
// both the sender's ready time and the link's previous departure, and
// arrives one propagation latency after the occupancy ends. No wall clock,
// no randomness: the same send sequence always yields the same timeline.
#pragma once

#include <cstdint>

namespace ulayer::net {

struct LinkSpec {
  double gb_per_s = 1.0;       // Serialization bandwidth (1 GB/s = 1e3 B/us).
  double latency_us = 100.0;   // One-way propagation latency.
  int64_t mtu_bytes = 1472;    // Fragment payload bound (Ethernet-ish).
  double per_packet_us = 1.0;  // Fixed per-fragment overhead (headers, ACK).
};

// When a message departed and arrived.
struct Delivery {
  double depart_us = 0.0;     // Serialization start on the link.
  double occupancy_us = 0.0;  // Link busy time (serialization + per-packet).
  double arrive_us = 0.0;     // depart + occupancy + propagation latency.
  int64_t frags = 0;          // MTU fragments the message was split into.
};

class Link {
 public:
  explicit Link(LinkSpec spec) : spec_(spec) {}

  // Transmits `bytes` no earlier than `ready_us`, advancing the busy
  // timeline. Both directions share the timeline (half-duplex).
  Delivery Send(double ready_us, int64_t bytes);

  // Rewinds the busy timeline to 0 (top of a run).
  void Reset() { busy_until_ = 0.0; }

  const LinkSpec& spec() const { return spec_; }
  double busy_until() const { return busy_until_; }

 private:
  LinkSpec spec_;
  double busy_until_ = 0.0;
};

}  // namespace ulayer::net
