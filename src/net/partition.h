// Cluster description and the N-node distributed partitioner
// (DESIGN.md Section 15).
//
// This generalizes src/multi from N processors inside one SoC to N simulated
// nodes behind links: the same channel-wise fraction search (over
// multi::FractionGrid) and branch distribution (N^B enumeration over
// FindBranchGroups), but the cost model adds what a SoC never pays — input
// broadcast and result-slice return over each worker's link. A second plan
// kind partitions the graph into contiguous pipeline stages for
// throughput-oriented serving: latency per item is worse (every boundary
// crosses a link) but stages overlap across a stream of items.
#pragma once

#include <string>
#include <vector>

#include "multi/multi.h"
#include "net/link.h"
#include "nn/branch.h"
#include "soc/spec.h"

namespace ulayer::net {

// One simulated worker node: its processor, the dtype its roofline prices
// compute at, and its link to the coordinator. Functional execution always
// runs the deterministic CPU-flavor kernels regardless of `compute` — that
// is what makes re-routing a slice to any surviving node byte-identical —
// so `compute` only shapes the timing model.
struct WorkerSpec {
  std::string name;
  ProcessorSpec proc;
  DType compute = DType::kQUInt8;
  LinkSpec link;
};

struct ClusterSpec {
  std::string name;
  ProcessorSpec coordinator_proc;       // Computes non-splittable nodes,
                                        // merges, and absorbs re-routes.
  DType coordinator_compute = DType::kQUInt8;
  std::vector<WorkerSpec> workers;
  double merge_us = 40.0;               // Coordinator cost per slice merge.
  double heartbeat_timeout_us = 2000.0; // Silence window before a worker is
                                        // declared lost.
  int max_retransmits = 3;              // Bounded retransmit attempts per
                                        // message beyond the first.
  double retransmit_backoff_us = 100.0; // Base of the exponential backoff.
};

// `n` identical CPU-class workers behind 1 GB/s / 100us / 1472B links,
// coordinated by the same processor. The default cluster of the tools,
// benches and tests.
ClusterSpec MakeUniformCluster(int n);

enum class NetPlanKind : uint8_t { kChannel, kPipeline };

struct NetPlan;

// Even channel distribution: every splittable node gets fraction 1/n on each
// of the `workers` workers; everything else stays on the coordinator. Not
// latency-optimal (NetPartitioner::Build may well keep a small model local
// when links dominate) — this is the plan smokes and tests use to guarantee
// every worker participates, so fault injection and recovery actually engage.
NetPlan MakeEvenPlan(const Graph& g, int workers);

struct NetPlan {
  NetPlanKind kind = NetPlanKind::kChannel;

  // Per node id, per worker: the output-channel fraction the worker
  // computes. An all-zero (or empty) row means the coordinator computes the
  // node locally. Rows always renormalize over the workers still alive at
  // execution time, so a plan built for N nodes stays valid as workers die.
  std::vector<std::vector<double>> fractions;

  // kPipeline only: stage index per node id (-1 = coordinator, e.g. the
  // input node) and the worker id running each stage (-1 = coordinator).
  std::vector<int> stage_of_node;
  std::vector<int> stage_worker;

  std::string ToString() const;
};

class NetPartitioner {
 public:
  struct Options {
    bool channel_distribution = true;
    bool branch_distribution = true;
    double grid_step = 0.25;
  };

  NetPartitioner(const Graph& graph, const ClusterSpec& cluster, Options options);
  NetPartitioner(const Graph& graph, const ClusterSpec& cluster)
      : NetPartitioner(graph, cluster, Options()) {}

  // Latency-oriented channel/branch distribution (one item at a time).
  NetPlan Build() const;

  // Throughput-oriented pipeline partitioning: contiguous node ranges
  // assigned round-robin to workers, stage count = min(stages, workers,
  // non-input nodes). Minimizes the bottleneck stage (compute + boundary
  // transfer) by dynamic programming.
  NetPlan BuildPipeline(int stages) const;

  // Estimated latency of one node under a fraction row (transfer-inclusive).
  double EstimateNodeUs(const Node& node, const std::vector<double>& fractions) const;

 private:
  double WorkerSliceUs(int w, const Node& node, int64_t c0, int64_t c1) const;

  const Graph& graph_;
  const ClusterSpec& cluster_;
  Options options_;
};

// Cumulative-rounding slice boundaries: splits [0, C) across `fractions`
// (renormalized over their positive sum) so the slices exactly partition
// [0, C) for any fraction vector and any C — the invariant byte-identical
// merging rests on. Entries may receive an empty slice when C is small or
// rounding collapses them; callers skip those. Returns {b_0=0, ..., b_k=C}.
std::vector<int64_t> SliceBoundaries(int64_t channels, const std::vector<double>& fractions);

}  // namespace ulayer::net
