#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace ulayer::net {
namespace {

[[noreturn]] void WireFail(const std::string& why) {
  throw Error(ErrorCode::kParse, "wire: " + why);
}

// Explicit little-endian scalar writes/reads: the golden byte-layout test
// must hold on any host endianness.
void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xffu));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

bool ValidWireDType(uint8_t v) {
  switch (static_cast<DType>(v)) {
    case DType::kF32:
    case DType::kF16:
    case DType::kQUInt8:
    case DType::kInt32:
      return true;
  }
  return false;
}

}  // namespace

int64_t WireSlicePayloadBytes(const Shape& shape, DType dtype, int64_t c_begin, int64_t c_end) {
  return shape.n * (c_end - c_begin) * shape.h * shape.w * DTypeSize(dtype);
}

int64_t WireSliceBytes(const Shape& shape, DType dtype, int64_t c_begin, int64_t c_end) {
  return kWireHeaderBytes + WireSlicePayloadBytes(shape, dtype, c_begin, c_end);
}

std::vector<uint8_t> EncodeTensorSlice(const Tensor& t, int node, int64_t c_begin,
                                       int64_t c_end) {
  const Shape& s = t.shape();
  if (c_begin < 0 || c_end <= c_begin || c_end > s.c) {
    throw Error(ErrorCode::kInvalidArgument,
                "wire: channel slice [" + std::to_string(c_begin) + ", " +
                    std::to_string(c_end) + ") out of range for c=" + std::to_string(s.c));
  }
  const int64_t esize = DTypeSize(t.dtype());
  const int64_t payload_bytes = WireSlicePayloadBytes(s, t.dtype(), c_begin, c_end);
  std::vector<uint8_t> out;
  out.reserve(static_cast<size_t>(kWireHeaderBytes + payload_bytes));
  PutU32(out, kWireMagic);
  PutU16(out, kWireVersion);
  out.push_back(static_cast<uint8_t>(t.dtype()));
  out.push_back(0);  // reserved
  PutU32(out, static_cast<uint32_t>(node));
  PutU32(out, static_cast<uint32_t>(s.n));
  PutU32(out, static_cast<uint32_t>(s.c));
  PutU32(out, static_cast<uint32_t>(s.h));
  PutU32(out, static_cast<uint32_t>(s.w));
  PutU64(out, static_cast<uint64_t>(c_begin));
  PutU64(out, static_cast<uint64_t>(c_end));
  uint32_t scale_bits = 0;
  const float scale = t.scale();
  std::memcpy(&scale_bits, &scale, sizeof(scale_bits));
  PutU32(out, scale_bits);
  PutU32(out, static_cast<uint32_t>(t.zero_point()));
  PutU64(out, static_cast<uint64_t>(payload_bytes));
  // Channels [c_begin, c_end) are contiguous within one batch row of an NCHW
  // buffer, so the gather is one copy per row.
  const int64_t row_bytes = (c_end - c_begin) * s.h * s.w * esize;
  const uint8_t* raw = t.raw();
  for (int64_t ni = 0; ni < s.n; ++ni) {
    const int64_t src = s.Offset(ni, c_begin, 0, 0) * esize;
    out.insert(out.end(), raw + src, raw + src + row_bytes);
  }
  return out;
}

WireSlice DecodeTensorSlice(const uint8_t* data, size_t size) {
  if (data == nullptr || size < static_cast<size_t>(kWireHeaderBytes)) {
    WireFail("message shorter than the " + std::to_string(kWireHeaderBytes) + "-byte header");
  }
  if (GetU32(data) != kWireMagic) {
    WireFail("bad magic");
  }
  if (GetU16(data + 4) != kWireVersion) {
    WireFail("unsupported version " + std::to_string(GetU16(data + 4)));
  }
  if (!ValidWireDType(data[6])) {
    WireFail("unknown dtype value " + std::to_string(data[6]));
  }
  WireSlice slice;
  slice.dtype = static_cast<DType>(data[6]);
  slice.node = static_cast<int32_t>(GetU32(data + 8));
  slice.shape = Shape(static_cast<int32_t>(GetU32(data + 12)),
                      static_cast<int32_t>(GetU32(data + 16)),
                      static_cast<int32_t>(GetU32(data + 20)),
                      static_cast<int32_t>(GetU32(data + 24)));
  slice.c_begin = static_cast<int64_t>(GetU64(data + 28));
  slice.c_end = static_cast<int64_t>(GetU64(data + 36));
  const uint32_t scale_bits = GetU32(data + 44);
  std::memcpy(&slice.scale, &scale_bits, sizeof(slice.scale));
  slice.zero_point = static_cast<int32_t>(GetU32(data + 48));
  const uint64_t payload_bytes = GetU64(data + 52);
  if (!slice.shape.IsValid()) {
    WireFail("invalid shape " + slice.shape.ToString());
  }
  if (slice.c_begin < 0 || slice.c_end <= slice.c_begin || slice.c_end > slice.shape.c) {
    WireFail("channel slice [" + std::to_string(slice.c_begin) + ", " +
             std::to_string(slice.c_end) + ") out of range for " + slice.shape.ToString());
  }
  const int64_t expected =
      WireSlicePayloadBytes(slice.shape, slice.dtype, slice.c_begin, slice.c_end);
  if (payload_bytes != static_cast<uint64_t>(expected)) {
    WireFail("payload size " + std::to_string(payload_bytes) + " != expected " +
             std::to_string(expected));
  }
  if (size != static_cast<size_t>(kWireHeaderBytes) + payload_bytes) {
    WireFail("message size " + std::to_string(size) + " != header + payload");
  }
  slice.payload.assign(data + kWireHeaderBytes, data + size);
  return slice;
}

void ScatterSlice(const WireSlice& slice, Tensor& dst) {
  if (dst.shape() != slice.shape || dst.dtype() != slice.dtype) {
    throw Error(ErrorCode::kInvalidArgument,
                "wire: scatter target " + dst.shape().ToString() +
                    " does not match slice tensor " + slice.shape.ToString());
  }
  const Shape& s = slice.shape;
  const int64_t esize = DTypeSize(slice.dtype);
  const int64_t row_bytes = (slice.c_end - slice.c_begin) * s.h * s.w * esize;
  uint8_t* raw = dst.raw();
  for (int64_t ni = 0; ni < s.n; ++ni) {
    const int64_t off = s.Offset(ni, slice.c_begin, 0, 0) * esize;
    std::memcpy(raw + off, slice.payload.data() + ni * row_bytes,
                static_cast<size_t>(row_bytes));
  }
}

int64_t FragmentCount(int64_t bytes, int64_t mtu) {
  if (mtu <= 0 || bytes <= 0) {
    return bytes > 0 ? 1 : 0;
  }
  return (bytes + mtu - 1) / mtu;
}

std::vector<Fragment> FragmentMessage(uint64_t seq, const std::vector<uint8_t>& bytes,
                                      int64_t mtu) {
  if (mtu <= 0) {
    throw Error(ErrorCode::kInvalidArgument, "wire: mtu must be positive");
  }
  const int64_t total = static_cast<int64_t>(bytes.size());
  const int64_t count = FragmentCount(total, mtu);
  std::vector<Fragment> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    Fragment f;
    f.seq = seq;
    f.index = static_cast<uint32_t>(i);
    f.count = static_cast<uint32_t>(count);
    const int64_t begin = i * mtu;
    const int64_t end = std::min<int64_t>(begin + mtu, total);
    f.bytes.assign(bytes.begin() + begin, bytes.begin() + end);
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<uint8_t> ReassembleMessage(const std::vector<Fragment>& fragments) {
  if (fragments.empty()) {
    WireFail("reassembly of an empty fragment set");
  }
  const uint64_t seq = fragments.front().seq;
  const uint32_t count = fragments.front().count;
  if (count == 0 || fragments.size() != count) {
    WireFail("fragment count " + std::to_string(fragments.size()) + " != declared " +
             std::to_string(count) + " (seq " + std::to_string(seq) + ")");
  }
  std::vector<const Fragment*> ordered(count, nullptr);
  for (const Fragment& f : fragments) {
    if (f.seq != seq) {
      WireFail("mixed sequence numbers " + std::to_string(seq) + " and " +
               std::to_string(f.seq));
    }
    if (f.count != count) {
      WireFail("inconsistent fragment counts within seq " + std::to_string(seq));
    }
    if (f.index >= count) {
      WireFail("fragment index " + std::to_string(f.index) + " out of range (seq " +
               std::to_string(seq) + ")");
    }
    if (ordered[f.index] != nullptr) {
      WireFail("duplicate fragment " + std::to_string(f.index) + " (seq " +
               std::to_string(seq) + ")");
    }
    ordered[f.index] = &f;
  }
  std::vector<uint8_t> out;
  for (const Fragment* f : ordered) {
    if (f == nullptr) {
      WireFail("missing fragment (seq " + std::to_string(seq) + ")");
    }
    out.insert(out.end(), f->bytes.begin(), f->bytes.end());
  }
  return out;
}

uint64_t Fnv1a64(const void* data, size_t bytes, uint64_t basis) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = basis;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace ulayer::net
