// Fault-tolerant coordinator-worker execution over simulated links
// (DESIGN.md Section 15).
//
// The coordinator owns the ground-truth activations and walks the graph in
// topological order. For each node a NetPlan row names the workers (and
// output-channel fractions) that compute it: the coordinator broadcasts any
// producer tensor a worker does not yet hold (wire-serialized, MTU
// fragmented, priced on the worker's link timeline), each worker computes
// its channel slice, returns it as a wire message, and the coordinator
// scatters the slices back together. Non-splittable nodes (input, concat,
// softmax) and all-zero rows run on the coordinator itself.
//
// Fault tolerance (same FaultPlan/seeded-stream machinery as the device
// layer): every message attempt consults net.link rules (drop -> bounded
// exponential-backoff retransmit; delay -> late arrival; partition -> the
// link goes down for the run) and every slice assignment consults net.worker
// rules (death). A worker that dies, partitions away, or exhausts its
// retransmit budget is detected after the cluster's heartbeat timeout and
// its channel slice is re-routed to the surviving workers — or, with nobody
// left, to the coordinator. Because every node computes slices with the
// same deterministic CPU-flavor kernels over one shared PreparedModel,
// any disjoint re-partition merges byte-identically: a recovered run's
// output digest equals the fault-free run's, and the damage shows up only
// in latency and the NetDegradation report.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/prepared.h"
#include "fault/fault.h"
#include "net/link.h"
#include "net/partition.h"
#include "trace/metrics.h"
#include "verify/diagnostics.h"

namespace ulayer::net {

enum class MessageKind : uint8_t {
  kInput,   // Coordinator -> worker: a full producer tensor broadcast.
  kResult,  // Worker -> coordinator: a computed output-channel slice.
};

// One message on a link timeline, after retransmits resolved.
struct MessageRecord {
  int64_t seq = 0;
  MessageKind kind = MessageKind::kInput;
  int worker = -1;       // Link id (== worker id).
  int node = -1;         // Graph node the tensor belongs to.
  int64_t c_begin = 0;   // Channel range carried (full tensor for kInput).
  int64_t c_end = 0;
  int64_t bytes = 0;     // Wire bytes (header + payload), per attempt.
  int64_t frags = 0;     // MTU fragments per attempt.
  int attempts = 0;      // 1 = first try delivered; attempts-1 retransmits.
  double send_us = 0.0;  // Link-departure time of the last attempt.
  double arrive_us = 0.0;  // Delivery time; < 0 when never delivered.
  bool delivered = false;
  bool to_worker = false;  // Direction (kInput: true, kResult: false).
};

// One slice computation on a worker (or the coordinator, worker == -1).
struct SliceRecord {
  int node = -1;
  int worker = -1;       // -1 = coordinator.
  int64_t c_begin = 0;
  int64_t c_end = 0;
  double start_us = 0.0;
  double end_us = 0.0;
  bool rerouted = false;   // Recovery work for a lost worker's slice.
  bool delivered = true;   // False: computed but the result never arrived.
};

// What recovery did during one distributed run; all zeros when fault-free.
struct NetDegradation {
  int retransmits = 0;         // Message attempts beyond each first send.
  int reroutes = 0;            // Slices moved off a lost worker.
  int worker_deaths = 0;       // net.worker death faults fired.
  int partitions = 0;          // Links that went down for the run.
  int delays = 0;              // Delayed message deliveries.
  int heartbeat_timeouts = 0;  // Lost-worker detections (each charges the
                               // cluster heartbeat window to latency).
  int64_t faults_injected = 0;
  std::vector<fault::FaultEvent> events;  // Injector log, in order.

  bool degraded() const {
    return retransmits > 0 || reroutes > 0 || worker_deaths > 0 || partitions > 0 ||
           delays > 0 || heartbeat_timeouts > 0;
  }
  std::string ToString() const;
};

struct NetRunResult {
  double latency_us = 0.0;

  std::vector<double> worker_busy_us;  // Compute time per worker.
  double coordinator_busy_us = 0.0;    // Local compute + merges.
  int64_t wire_messages = 0;
  int64_t wire_bytes = 0;  // Sum over delivered and lost attempts.

  std::vector<MessageRecord> messages;  // In send order.
  std::vector<SliceRecord> slices;      // In completion-record order.

  // End-of-run worker state; death_us is +inf for survivors, else the
  // cluster time the coordinator declared the worker lost.
  std::vector<bool> worker_alive;
  std::vector<double> death_us;

  NetDegradation degradation;

  // Functional runs: the network output and its FNV-1a digest. The digest is
  // the byte-identity contract: equal across node counts, thread counts and
  // any recovered fault schedule.
  std::optional<Tensor> output;
  uint64_t output_digest = 0;

  double latency_ms() const { return latency_us * 1e-3; }
};

// Timing-only pipeline replay of a stream of inputs (NetPlanKind::kPipeline).
struct PipelineResult {
  int items = 0;
  double makespan_us = 0.0;      // First send to last output arrival.
  double bottleneck_us = 0.0;    // Slowest stage (compute + boundary I/O).
  double throughput_per_s = 0.0;
  std::vector<double> stage_busy_us;
  int64_t wire_bytes = 0;
};

class Coordinator {
 public:
  // `pm` must outlive the coordinator and (for functional runs) must be
  // calibrated per its storage dtype, exactly like Executor.
  Coordinator(const PreparedModel& pm, ClusterSpec cluster);

  // Installs (or with an empty plan removes) the fault plan consulted by
  // every message attempt and slice assignment. Reset at the top of each
  // Run, so every run sees the same deterministic fault stream.
  void SetFaultPlan(fault::FaultPlan plan);
  const fault::FaultInjector* injector() const { return injector_.get(); }

  // Executes one inference under `plan`. Functional when `input` is non-null
  // (tensor values move over the wire and the output digest is computed);
  // timing-only otherwise — both price identical message sequences, so the
  // fault trace of a timing run predicts the functional one exactly.
  NetRunResult Run(const NetPlan& plan, const Tensor* input = nullptr);

  // Streams `items` back-to-back inputs through a pipeline plan
  // (timing-only; stage timelines and link occupancy overlap across items).
  PipelineResult RunPipeline(const NetPlan& plan, int items);

  const ClusterSpec& cluster() const { return cluster_; }

 private:
  const PreparedModel& pm_;
  ClusterSpec cluster_;
  std::unique_ptr<fault::FaultInjector> injector_;
};

// N-series invariants over one finished run (DESIGN.md Section 15):
//   N801 delivered slices exactly partition [0, C_out) per sliced node
//   N802 no channel range is delivered twice for one node
//   N803 retransmit accounting: sum(attempts-1) == degradation.retransmits,
//        attempts <= max_retransmits+1, undelivered traffic only for lost
//        workers
//   N804 message sanity: positive bytes, frags == ceil(bytes/mtu), arrival
//        respects the link's propagation latency, worker ids in range
//   N805 nothing runs on a worker after its recorded death time
Report VerifyNetRun(const Graph& g, const ClusterSpec& cluster, const NetRunResult& r);

// Folds one run into `m` under the net.* namespace:
//   counters:   net.runs, net.messages, net.bytes, net.retransmits,
//               net.drops, net.reroutes, net.worker_deaths, net.partitions,
//               net.delays, net.heartbeat_timeouts, net.faults_injected
//   histograms: net.latency_us, net.msg_bytes, net.msg_us, net.slice_us
void AddNetRun(trace::MetricsRegistry& m, const NetRunResult& r);

}  // namespace ulayer::net
