#include "net/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "net/wire.h"

namespace ulayer::net {
namespace {

// One-way cost of `bytes` over an idle link (the partitioner plans against
// uncontended links; the executor's shared timelines add queueing on top).
double LinkUs(const LinkSpec& link, int64_t bytes) {
  return static_cast<double>(FragmentCount(bytes, link.mtu_bytes)) * link.per_packet_us +
         static_cast<double>(bytes) / (link.gb_per_s * 1e3) + link.latency_us;
}

// The cost model prices work at QUInt8 storage, matching multi::SliceWork.
constexpr DType kCostDType = DType::kQUInt8;

}  // namespace

ClusterSpec MakeUniformCluster(int n) {
  const SocSpec base = MakeExynos7420();
  ClusterSpec cluster;
  cluster.name = "uniform-x" + std::to_string(n);
  cluster.coordinator_proc = base.cpu;
  cluster.coordinator_compute = DType::kQUInt8;
  for (int i = 0; i < n; ++i) {
    WorkerSpec w;
    w.name = "worker" + std::to_string(i);
    w.proc = base.cpu;
    w.compute = DType::kQUInt8;
    w.link = LinkSpec{};
    cluster.workers.push_back(std::move(w));
  }
  return cluster;
}

NetPlan MakeEvenPlan(const Graph& g, int workers) {
  NetPlan plan;
  plan.kind = NetPlanKind::kChannel;
  plan.fractions.assign(static_cast<size_t>(g.size()), std::vector<double>());
  if (workers <= 0) {
    return plan;
  }
  const double share = 1.0 / static_cast<double>(workers);
  for (const Node& node : g.nodes()) {
    if (node.desc.kind == LayerKind::kInput || !multi::SplittableLayer(node.desc.kind)) {
      continue;
    }
    plan.fractions[static_cast<size_t>(node.id)].assign(static_cast<size_t>(workers), share);
  }
  return plan;
}

std::vector<int64_t> SliceBoundaries(int64_t channels, const std::vector<double>& fractions) {
  std::vector<int64_t> bounds;
  bounds.reserve(fractions.size() + 1);
  bounds.push_back(0);
  double total = 0.0;
  for (double f : fractions) {
    total += std::max(f, 0.0);
  }
  if (total <= 0.0) {
    for (size_t i = 0; i < fractions.size(); ++i) {
      bounds.push_back(0);
    }
    return bounds;
  }
  double cum = 0.0;
  for (size_t i = 0; i < fractions.size(); ++i) {
    cum += std::max(fractions[i], 0.0) / total;
    int64_t b = static_cast<int64_t>(std::llround(cum * static_cast<double>(channels)));
    b = std::clamp<int64_t>(b, bounds.back(), channels);
    if (i + 1 == fractions.size()) {
      b = channels;  // The last boundary always closes the partition.
    }
    bounds.push_back(b);
  }
  return bounds;
}

std::string NetPlan::ToString() const {
  std::ostringstream os;
  if (kind == NetPlanKind::kChannel) {
    int split = 0;
    int single = 0;
    int local = 0;
    for (const std::vector<double>& row : fractions) {
      int active = 0;
      for (double f : row) {
        active += f > 0.0 ? 1 : 0;
      }
      if (active == 0) {
        ++local;
      } else if (active == 1) {
        ++single;
      } else {
        ++split;
      }
    }
    os << "channel plan: " << fractions.size() << " nodes (" << split << " split, " << single
       << " single-worker, " << local << " coordinator)";
  } else {
    os << "pipeline plan: " << stage_worker.size() << " stages [";
    for (size_t s = 0; s < stage_worker.size(); ++s) {
      os << (s > 0 ? " " : "")
         << (stage_worker[s] < 0 ? std::string("coord") : "w" + std::to_string(stage_worker[s]));
    }
    os << "]";
  }
  return os.str();
}

NetPartitioner::NetPartitioner(const Graph& graph, const ClusterSpec& cluster, Options options)
    : graph_(graph), cluster_(cluster), options_(options) {}

double NetPartitioner::WorkerSliceUs(int w, const Node& node, int64_t c0, int64_t c1) const {
  const WorkerSpec& spec = cluster_.workers[static_cast<size_t>(w)];
  double in_us = 0.0;
  for (int p : node.inputs) {
    const Shape& ps = graph_.node(p).out_shape;
    in_us += LinkUs(spec.link, WireSliceBytes(ps, kCostDType, 0, ps.c));
  }
  const multi::MultiProcessor proc{spec.proc, spec.compute};
  const double compute_us =
      multi::KernelLatencyUs(proc, ComputeWork(graph_, node, kCostDType, c0, c1));
  const double out_us =
      LinkUs(spec.link, WireSliceBytes(node.out_shape, kCostDType, c0, c1));
  return in_us + compute_us + out_us;
}

double NetPartitioner::EstimateNodeUs(const Node& node,
                                      const std::vector<double>& fractions) const {
  int active = 0;
  for (double f : fractions) {
    active += f > 0.0 ? 1 : 0;
  }
  if (active == 0) {
    const multi::MultiProcessor coord{cluster_.coordinator_proc, cluster_.coordinator_compute};
    return multi::KernelLatencyUs(coord,
                                  ComputeWork(graph_, node, kCostDType, 0, node.out_shape.c));
  }
  const std::vector<int64_t> bounds = SliceBoundaries(node.out_shape.c, fractions);
  double worst = 0.0;
  int slices = 0;
  for (size_t w = 0; w < fractions.size(); ++w) {
    const int64_t c0 = bounds[w];
    const int64_t c1 = bounds[w + 1];
    if (c1 <= c0) {
      continue;
    }
    ++slices;
    worst = std::max(worst, WorkerSliceUs(static_cast<int>(w), node, c0, c1));
  }
  if (slices > 1) {
    worst += cluster_.merge_us;
  }
  return worst;
}

NetPlan NetPartitioner::Build() const {
  NetPlan plan;
  const size_t nw = cluster_.workers.size();
  plan.fractions.assign(static_cast<size_t>(graph_.size()), std::vector<double>(nw, 0.0));
  std::vector<bool> planned(static_cast<size_t>(graph_.size()), false);

  if (options_.branch_distribution && nw > 0) {
    for (const BranchGroup& group : FindBranchGroups(graph_)) {
      const size_t nb = group.branches.size();
      // Targets: -1 = coordinator, 0..nw-1 = workers; (nw+1)^B enumeration.
      const size_t nt = nw + 1;
      const double total_combos =
          std::pow(static_cast<double>(nt), static_cast<double>(nb));
      if (total_combos > 1e6) {
        continue;
      }
      std::vector<int> assign(nb, 0);
      std::vector<int> best(nb, 0);
      double best_cost = std::numeric_limits<double>::infinity();
      auto evaluate = [&]() {
        // Per-target serial cost: compute of every node in its branches,
        // plus one fork-input broadcast and one join-output return per
        // branch on a worker target.
        std::vector<double> per_target(nt, 0.0);
        for (size_t b = 0; b < nb; ++b) {
          const size_t t = static_cast<size_t>(assign[b]);
          for (int id : group.branches[b]) {
            const Node& n = graph_.node(id);
            const multi::MultiProcessor proc =
                t == 0 ? multi::MultiProcessor{cluster_.coordinator_proc,
                                               cluster_.coordinator_compute}
                       : multi::MultiProcessor{cluster_.workers[t - 1].proc,
                                               cluster_.workers[t - 1].compute};
            per_target[t] +=
                multi::KernelLatencyUs(proc, ComputeWork(graph_, n, kCostDType, 0,
                                                         n.out_shape.c));
          }
          if (t > 0 && !group.branches[b].empty()) {
            const LinkSpec& link = cluster_.workers[t - 1].link;
            const Shape& fork_shape = graph_.node(group.fork).out_shape;
            const Shape& tail_shape =
                graph_.node(group.branches[b].back()).out_shape;
            per_target[t] +=
                LinkUs(link, WireSliceBytes(fork_shape, kCostDType, 0, fork_shape.c)) +
                LinkUs(link, WireSliceBytes(tail_shape, kCostDType, 0, tail_shape.c));
          }
        }
        double worst = 0.0;
        int active_workers = 0;
        for (size_t t = 0; t < nt; ++t) {
          worst = std::max(worst, per_target[t]);
          active_workers += (t > 0 && per_target[t] > 0.0) ? 1 : 0;
        }
        return worst + (active_workers > 0 ? cluster_.merge_us : 0.0);
      };
      auto recurse = [&](auto&& self, size_t b) -> void {
        if (b == nb) {
          const double cost = evaluate();
          if (cost < best_cost) {
            best_cost = cost;
            best = assign;
          }
          return;
        }
        for (size_t t = 0; t < nt; ++t) {
          assign[b] = static_cast<int>(t);
          self(self, b + 1);
        }
      };
      recurse(recurse, 0);

      for (size_t b = 0; b < nb; ++b) {
        for (int id : group.branches[b]) {
          std::vector<double>& row = plan.fractions[static_cast<size_t>(id)];
          row.assign(nw, 0.0);
          if (best[b] > 0) {
            row[static_cast<size_t>(best[b] - 1)] = 1.0;
          }
          planned[static_cast<size_t>(id)] = true;
        }
      }
    }
  }

  for (const Node& node : graph_.nodes()) {
    if (planned[static_cast<size_t>(node.id)] || node.desc.kind == LayerKind::kInput) {
      continue;
    }
    // Candidate rows: coordinator-local, each single worker, and (for
    // splittable layers) every grid composition across the workers.
    std::vector<std::vector<double>> candidates;
    candidates.emplace_back(nw, 0.0);
    for (size_t w = 0; w < nw; ++w) {
      std::vector<double> row(nw, 0.0);
      row[w] = 1.0;
      candidates.push_back(std::move(row));
    }
    if (nw >= 2 && options_.channel_distribution &&
        multi::SplittableLayer(node.desc.kind)) {
      for (std::vector<double>& row : multi::FractionGrid(nw, options_.grid_step)) {
        candidates.push_back(std::move(row));
      }
    }
    double best_cost = std::numeric_limits<double>::infinity();
    for (const std::vector<double>& row : candidates) {
      const double cost = EstimateNodeUs(node, row);
      if (cost < best_cost) {
        best_cost = cost;
        plan.fractions[static_cast<size_t>(node.id)] = row;
      }
    }
  }
  return plan;
}

NetPlan NetPartitioner::BuildPipeline(int stages) const {
  NetPlan plan;
  plan.kind = NetPlanKind::kPipeline;
  const size_t nw = cluster_.workers.size();
  const int v = graph_.size();
  plan.fractions.assign(static_cast<size_t>(v), std::vector<double>(nw, 0.0));
  plan.stage_of_node.assign(static_cast<size_t>(v), -1);

  // Stage-able nodes are everything but the input (node 0 by the G002
  // invariant); stages are contiguous id ranges, worker s % nw runs stage s.
  const int first = 1;
  const int count = v - first;
  const int s_max =
      std::max(1, std::min({stages, static_cast<int>(nw == 0 ? 1 : nw), count}));
  plan.stage_worker.resize(static_cast<size_t>(s_max));
  for (int s = 0; s < s_max; ++s) {
    plan.stage_worker[static_cast<size_t>(s)] =
        nw == 0 ? -1 : static_cast<int>(static_cast<size_t>(s) % nw);
  }

  // Cost of stage `s` covering node ids [a, b].
  auto stage_cost = [&](int s, int a, int b) {
    const int w = plan.stage_worker[static_cast<size_t>(s)];
    const multi::MultiProcessor proc =
        w < 0 ? multi::MultiProcessor{cluster_.coordinator_proc, cluster_.coordinator_compute}
              : multi::MultiProcessor{cluster_.workers[static_cast<size_t>(w)].proc,
                                      cluster_.workers[static_cast<size_t>(w)].compute};
    double cost = 0.0;
    for (int id = a; id <= b; ++id) {
      const Node& n = graph_.node(id);
      cost += multi::KernelLatencyUs(proc, ComputeWork(graph_, n, kCostDType, 0,
                                                       n.out_shape.c));
    }
    if (w >= 0) {
      const LinkSpec& link = cluster_.workers[static_cast<size_t>(w)].link;
      // Boundary traffic on this worker's link: producers outside [a, b]
      // consumed inside (in-transfer), plus every node inside whose output
      // is consumed outside — or is the network output (out-transfer).
      for (int id = a; id <= b; ++id) {
        for (int p : graph_.node(id).inputs) {
          if (p < a) {
            const Shape& ps = graph_.node(p).out_shape;
            cost += LinkUs(link, WireSliceBytes(ps, kCostDType, 0, ps.c));
          }
        }
      }
      for (int id = a; id <= b; ++id) {
        bool crosses = id == v - 1;
        for (int q = b + 1; q < v && !crosses; ++q) {
          for (int p : graph_.node(q).inputs) {
            if (p == id) {
              crosses = true;
              break;
            }
          }
        }
        if (crosses) {
          const Shape& os = graph_.node(id).out_shape;
          cost += LinkUs(link, WireSliceBytes(os, kCostDType, 0, os.c));
        }
      }
    }
    return cost;
  };

  // DP over (stage, first uncovered node) minimizing the bottleneck stage.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> f(static_cast<size_t>(s_max + 1),
                                     std::vector<double>(static_cast<size_t>(count + 1), inf));
  std::vector<std::vector<int>> cut(static_cast<size_t>(s_max + 1),
                                    std::vector<int>(static_cast<size_t>(count + 1), -1));
  f[0][0] = 0.0;
  for (int s = 1; s <= s_max; ++s) {
    for (int j = s; j <= count; ++j) {
      for (int i = s - 1; i < j; ++i) {
        if (f[static_cast<size_t>(s - 1)][static_cast<size_t>(i)] == inf) {
          continue;
        }
        const double c =
            std::max(f[static_cast<size_t>(s - 1)][static_cast<size_t>(i)],
                     stage_cost(s - 1, first + i, first + j - 1));
        if (c < f[static_cast<size_t>(s)][static_cast<size_t>(j)]) {
          f[static_cast<size_t>(s)][static_cast<size_t>(j)] = c;
          cut[static_cast<size_t>(s)][static_cast<size_t>(j)] = i;
        }
      }
    }
  }
  // Walk the cuts back into stage assignments.
  int j = count;
  for (int s = s_max; s >= 1; --s) {
    const int i = cut[static_cast<size_t>(s)][static_cast<size_t>(j)];
    for (int id = first + std::max(i, 0); id < first + j; ++id) {
      plan.stage_of_node[static_cast<size_t>(id)] = s - 1;
      const int w = plan.stage_worker[static_cast<size_t>(s - 1)];
      if (w >= 0) {
        plan.fractions[static_cast<size_t>(id)][static_cast<size_t>(w)] = 1.0;
      }
    }
    j = std::max(i, 0);
  }
  return plan;
}

}  // namespace ulayer::net
