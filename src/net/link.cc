#include "net/link.h"

#include <algorithm>

#include "net/wire.h"

namespace ulayer::net {

Delivery Link::Send(double ready_us, int64_t bytes) {
  Delivery d;
  d.frags = FragmentCount(bytes, spec_.mtu_bytes);
  d.depart_us = std::max(ready_us, busy_until_);
  d.occupancy_us = static_cast<double>(d.frags) * spec_.per_packet_us +
                   static_cast<double>(bytes) / (spec_.gb_per_s * 1e3);
  busy_until_ = d.depart_us + d.occupancy_us;
  d.arrive_us = busy_until_ + spec_.latency_us;
  return d;
}

}  // namespace ulayer::net
