// Tensor-slice wire format for the simulated cluster (DESIGN.md Section 15).
//
// A coordinator-worker run moves activation tensors (full broadcasts) and
// output-channel slices (worker results) over simulated links. Both travel
// as one message format: a fixed little-endian header describing the full
// tensor shape, dtype, quantization parameters and the channel range the
// payload carries, followed by the NCHW-gathered bytes of channels
// [c_begin, c_end) for every batch row. The layout is explicit byte writes —
// never a struct memcpy — so the golden byte-layout test in
// tests/net_wire_test.cc pins it on every platform and the format cannot
// drift silently.
//
// Messages larger than a link's MTU are split into sequence-numbered
// fragments; reassembly accepts any fragment order and rejects gaps,
// duplicates and mixed sequences with typed kParse errors.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ulayer::net {

// Fixed header size in bytes. Layout (all little-endian):
//   offset  0  u32  magic (kWireMagic)
//   offset  4  u16  version (kWireVersion)
//   offset  6  u8   dtype (DType numeric value)
//   offset  7  u8   reserved (0)
//   offset  8  i32  node id the tensor belongs to
//   offset 12  i32  n   -- full tensor shape, not the slice's
//   offset 16  i32  c
//   offset 20  i32  h
//   offset 24  i32  w
//   offset 28  i64  c_begin  -- channel slice carried by the payload
//   offset 36  i64  c_end
//   offset 44  u32  scale (IEEE-754 float bits)
//   offset 48  i32  zero_point
//   offset 52  u64  payload_bytes
//   offset 60  payload
inline constexpr int64_t kWireHeaderBytes = 60;
inline constexpr uint32_t kWireMagic = 0x754C5731u;  // "1WLu" on the wire.
inline constexpr uint16_t kWireVersion = 1;

// A decoded tensor-slice message.
struct WireSlice {
  int node = -1;
  Shape shape;  // Full tensor shape.
  DType dtype = DType::kF32;
  int64_t c_begin = 0;
  int64_t c_end = 0;
  float scale = 1.0f;
  int32_t zero_point = 0;
  std::vector<uint8_t> payload;  // Channels [c_begin, c_end), every batch row.
};

// Payload bytes of a [c_begin, c_end) slice of a `shape`/`dtype` tensor.
int64_t WireSlicePayloadBytes(const Shape& shape, DType dtype, int64_t c_begin, int64_t c_end);
// Total message bytes (header + payload). The link simulator prices both
// timing-only and functional runs with this, so their message byte counts —
// hence fault-injector draw sequences — are identical by construction.
int64_t WireSliceBytes(const Shape& shape, DType dtype, int64_t c_begin, int64_t c_end);

// Serializes channels [c_begin, c_end) of `t` (tagged as node `node`).
// Throws ulayer::Error (kInvalidArgument) on an empty or out-of-range slice.
std::vector<uint8_t> EncodeTensorSlice(const Tensor& t, int node, int64_t c_begin, int64_t c_end);

// Parses one message. Throws ulayer::Error (kParse) on truncation, bad
// magic/version/dtype, an invalid shape or channel range, or a payload size
// that disagrees with the header.
WireSlice DecodeTensorSlice(const uint8_t* data, size_t size);
inline WireSlice DecodeTensorSlice(const std::vector<uint8_t>& bytes) {
  return DecodeTensorSlice(bytes.data(), bytes.size());
}

// Writes the slice's channels back into `dst` (which must match the slice's
// full shape and dtype; throws kInvalidArgument otherwise). A full-range
// slice restores the whole tensor.
void ScatterSlice(const WireSlice& slice, Tensor& dst);

// --- MTU fragmentation -------------------------------------------------------

struct Fragment {
  uint64_t seq = 0;    // Message sequence number; all fragments share it.
  uint32_t index = 0;  // 0-based fragment position.
  uint32_t count = 0;  // Total fragments of the message.
  std::vector<uint8_t> bytes;
};

// ceil(bytes / mtu), the number of packets a message occupies on a link.
int64_t FragmentCount(int64_t bytes, int64_t mtu);

// Splits `bytes` into <= mtu-sized fragments. mtu must be positive.
std::vector<Fragment> FragmentMessage(uint64_t seq, const std::vector<uint8_t>& bytes,
                                      int64_t mtu);

// Restores the original message from fragments in any order. Throws
// ulayer::Error (kParse) on an empty set, mixed sequence numbers,
// inconsistent counts, duplicate or missing indices.
std::vector<uint8_t> ReassembleMessage(const std::vector<Fragment>& fragments);

// FNV-1a 64-bit digest, the net layer's output-identity fingerprint. (serve
// has its own copy; net cannot depend on serve since serve's multi-node
// backend depends on net.)
uint64_t Fnv1a64(const void* data, size_t bytes, uint64_t basis = 0xcbf29ce484222325ull);

}  // namespace ulayer::net
