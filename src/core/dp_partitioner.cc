#include "core/dp_partitioner.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ulayer {
namespace {

bool Splittable(LayerKind k) {
  switch (k) {
    case LayerKind::kConv:
    case LayerKind::kDepthwiseConv:
    case LayerKind::kFullyConnected:
    case LayerKind::kPool:
    case LayerKind::kGlobalAvgPool:
    case LayerKind::kRelu:
    case LayerKind::kLrn:
    case LayerKind::kEltwiseAdd:
      return true;
    case LayerKind::kInput:
    case LayerKind::kConcat:
    case LayerKind::kSoftmax:
      return false;
  }
  return false;
}

// Where a node's output is visible after executing under an assignment.
struct Visibility {
  bool cpu = false;
  bool gpu = false;
};

Visibility VisOf(const NodeAssignment& a) {
  switch (a.kind) {
    case StepKind::kCooperative:
      return {true, true};
    case StepKind::kSingle:
    case StepKind::kBranch:
      return {a.proc == ProcKind::kCpu, a.proc == ProcKind::kGpu};
  }
  return {true, true};
}

// A DP state: one candidate assignment for a layer.
struct State {
  NodeAssignment assignment;
  Visibility vis;
};

}  // namespace

DpPartitioner::DpPartitioner(const Graph& graph, const TimingModel& timing,
                             const ExecConfig& config, const LatencyPredictor& predictor,
                             Options options)
    : graph_(graph),
      timing_(timing),
      config_(config),
      predictor_(predictor),
      options_(std::move(options)) {}

Plan DpPartitioner::Build() const {
  // Start from the greedy plan: it supplies branch-group decisions and a
  // valid assignment for anything the DP does not cover.
  Partitioner::Options greedy_opts;
  greedy_opts.channel_distribution = options_.channel_distribution;
  greedy_opts.branch_distribution = options_.branch_distribution;
  greedy_opts.split_candidates = options_.split_candidates;
  greedy_opts.use_oracle = options_.use_oracle;
  Partitioner greedy(graph_, timing_, config_, predictor_, greedy_opts);
  Plan plan = greedy.Build();
  estimated_us_ = 0.0;

  // Nodes owned by branch groups are fixed.
  std::vector<bool> fixed(static_cast<size_t>(graph_.size()), false);
  for (const BranchPlan& bp : plan.branch_plans) {
    for (const auto& branch : bp.group.branches) {
      for (int id : branch) {
        fixed[static_cast<size_t>(id)] = true;
      }
    }
  }

  // Consumer counts for chain detection.
  std::vector<int> consumers(static_cast<size_t>(graph_.size()), 0);
  for (const Node& n : graph_.nodes()) {
    for (int in : n.inputs) {
      ++consumers[static_cast<size_t>(in)];
    }
  }

  // Candidate states per node kind.
  auto states_for = [&](const Node& n) {
    std::vector<State> states;
    states.push_back({NodeAssignment{StepKind::kSingle, ProcKind::kCpu, 1.0}, {true, false}});
    states.push_back({NodeAssignment{StepKind::kSingle, ProcKind::kGpu, 1.0}, {false, true}});
    if (options_.channel_distribution && Splittable(n.desc.kind)) {
      for (const double p : options_.split_candidates) {
        states.push_back({NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, p},
                          {true, true}});
      }
    }
    return states;
  };

  auto exec_cost = [&](const Node& n, const State& s) {
    if (s.assignment.kind == StepKind::kCooperative) {
      return greedy.EstimateCoopUs(n, s.assignment.cpu_fraction);
    }
    return greedy.EstimateSingleUs(n, s.assignment.proc);
  };

  // Transition cost: one sync whenever the consumer needs the data on a
  // device the producers did not leave it on (mirrors Executor::ReadyTime).
  auto transition = [&](const Visibility& prev, const State& s) {
    const bool needs_cpu =
        s.vis.cpu || s.assignment.kind == StepKind::kCooperative;
    const bool needs_gpu =
        s.vis.gpu || s.assignment.kind == StepKind::kCooperative;
    const bool miss = (needs_cpu && !prev.cpu) || (needs_gpu && !prev.gpu);
    return miss ? timing_.SyncUs() : 0.0;
  };

  // Entry visibility of a node = intersection over its producers' current
  // plan assignments.
  auto entry_vis = [&](const Node& n) {
    Visibility v{true, true};
    for (int in : n.inputs) {
      if (graph_.node(in).desc.kind == LayerKind::kInput) {
        continue;  // The input buffer is shared zero-copy memory.
      }
      const Visibility pv = VisOf(plan.nodes[static_cast<size_t>(in)]);
      v.cpu = v.cpu && pv.cpu;
      v.gpu = v.gpu && pv.gpu;
    }
    return v;
  };

  // Walk maximal chain segments and run the DP on each.
  std::vector<bool> visited(static_cast<size_t>(graph_.size()), false);
  for (const Node& start : graph_.nodes()) {
    if (start.desc.kind == LayerKind::kInput || fixed[static_cast<size_t>(start.id)] ||
        visited[static_cast<size_t>(start.id)]) {
      continue;
    }
    // Collect the chain: consecutive single-input/single-consumer links.
    std::vector<int> chain{start.id};
    visited[static_cast<size_t>(start.id)] = true;
    int cur = start.id;
    while (consumers[static_cast<size_t>(cur)] == 1) {
      const std::vector<int> next = graph_.Consumers(cur);
      const Node& nx = graph_.node(next[0]);
      if (nx.inputs.size() != 1 || fixed[static_cast<size_t>(nx.id)] ||
          visited[static_cast<size_t>(nx.id)]) {
        break;
      }
      chain.push_back(nx.id);
      visited[static_cast<size_t>(nx.id)] = true;
      cur = nx.id;
    }

    // DP over the chain.
    const Visibility v0 = entry_vis(graph_.node(chain[0]));
    std::vector<std::vector<double>> cost(chain.size());
    std::vector<std::vector<int>> back(chain.size());
    std::vector<std::vector<State>> all_states(chain.size());
    for (size_t i = 0; i < chain.size(); ++i) {
      const Node& n = graph_.node(chain[i]);
      all_states[i] = states_for(n);
      cost[i].assign(all_states[i].size(), std::numeric_limits<double>::infinity());
      back[i].assign(all_states[i].size(), -1);
      for (size_t s = 0; s < all_states[i].size(); ++s) {
        const double exec = exec_cost(n, all_states[i][s]);
        if (i == 0) {
          cost[i][s] = transition(v0, all_states[i][s]) + exec;
          continue;
        }
        for (size_t ps = 0; ps < all_states[i - 1].size(); ++ps) {
          const double c =
              cost[i - 1][ps] + transition(all_states[i - 1][ps].vis, all_states[i][s]) + exec;
          if (c < cost[i][s]) {
            cost[i][s] = c;
            back[i][s] = static_cast<int>(ps);
          }
        }
      }
    }
    // Backtrack the optimum into the plan.
    const size_t last = chain.size() - 1;
    size_t best = 0;
    for (size_t s = 1; s < cost[last].size(); ++s) {
      if (cost[last][s] < cost[last][best]) {
        best = s;
      }
    }
    estimated_us_ += cost[last][best];
    for (size_t i = last;; --i) {
      plan.nodes[static_cast<size_t>(chain[i])] = all_states[i][best].assignment;
      if (i == 0) {
        break;
      }
      best = static_cast<size_t>(back[i][best]);
    }
  }
  return plan;
}

}  // namespace ulayer
