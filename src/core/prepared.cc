#include "core/prepared.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "core/reference.h"
#include "kernels/pack.h"
#include "parallel/thread_pool.h"

namespace ulayer {
namespace {

bool IsParameterized(LayerKind k) {
  return k == LayerKind::kConv || k == LayerKind::kDepthwiseConv ||
         k == LayerKind::kFullyConnected;
}

QuantParams TensorMinMaxParams(const Tensor& f32) {
  MinMaxObserver obs;
  obs.Observe(f32);
  return obs.Params();
}

// The QU8 pooling kernels propagate their input's quantization parameters
// onto the output tensor at run time (pooling is value-preserving), so the
// scale a consumer actually observes on act[id] is the one upstream of any
// pool chain — not act_qp_[id]. Cached requantization multipliers must use
// the same effective scale the kernels will see.
int EffectiveQuantSource(const Graph& g, int id) {
  const Node* n = &g.node(id);
  while (n->desc.kind == LayerKind::kPool || n->desc.kind == LayerKind::kGlobalAvgPool) {
    n = &g.node(n->inputs[0]);
  }
  return n->id;
}

// Panel packing applies to dense convolutions only. FC layers are GEMV
// (spatial = 1: the micro-kernel column loop degenerates, so panels buy no
// reuse) and their classifier matrices dominate parameter count — doubling
// them in memory for nothing is a bad trade. Depthwise convs never reach the
// GEMM.
bool ShouldPackFilters(const Node& n) { return n.desc.kind == LayerKind::kConv; }

template <typename T>
void PackFilterTensor(const T* w, const Shape& fs, std::vector<T>& out) {
  const int64_t k = fs.c * fs.h * fs.w;
  out.resize(static_cast<size_t>(PackedPanelElems(fs.n, k)));
  PackRowPanels(w, fs.n, k, out.data());
}

}  // namespace

PreparedModel::PreparedModel(const Model& model, const ExecConfig& config)
    : model_(&model), config_(config), act_qp_(static_cast<size_t>(model.graph.size())) {
  if (!model.has_weights()) {
    return;  // Simulate-only use: no weight conversion needed.
  }
  for (const Node& n : model.graph.nodes()) {
    if (!IsParameterized(n.desc.kind)) {
      continue;
    }
    const LayerWeights& w = model.weights.at(n.id);
    PreparedWeights pw;
    switch (config.storage) {
      case DType::kF32:
        pw.filters = w.filters;
        pw.bias = w.bias;
        if (config.scratch_arena && ShouldPackFilters(n)) {
          PackFilterTensor(pw.filters.Data<float>(), pw.filters.shape(),
                           pw.filters_packed_f32);
        }
        break;
      case DType::kF16:
        pw.filters = ToF16Tensor(w.filters);
        pw.bias = ToF16Tensor(w.bias);
        if (config.scratch_arena && ShouldPackFilters(n)) {
          PackFilterTensor(pw.filters.Data<Half>(), pw.filters.shape(),
                           pw.filters_packed_f16);
        }
        break;
      case DType::kQUInt8:
        if (config.per_channel_weights && n.desc.kind != LayerKind::kDepthwiseConv) {
          pw.filters = QuantizeFiltersPerChannel(w.filters, pw.per_channel);
        } else {
          pw.filters = QuantizeTensor(w.filters, TensorMinMaxParams(w.filters));
        }
        // bias_i32 needs the input activation scale; filled by Calibrate().
        if (config.scratch_arena) {
          BuildWeightCaches(n, pw);
        }
        break;
      case DType::kInt32:
        assert(false && "kInt32 is not a storage dtype");
        break;
    }
    weights_.emplace(n.id, std::move(pw));
  }
}

void PreparedModel::BuildWeightCaches(const Node& n, PreparedWeights& pw) const {
  const Tensor& qf = pw.filters;
  const Shape& fs = qf.shape();
  const uint8_t* w = qf.Data<uint8_t>();
  // Raw uint8 filter row sums, one per output channel: the precomputed half
  // of the GEMM zero-point hoist (see GemmQU8). Depthwise kernels do not use
  // row sums (their inner product is per-channel and tiny).
  if (n.desc.kind != LayerKind::kDepthwiseConv) {
    const int64_t k = fs.c * fs.h * fs.w;
    pw.filter_rowsum.resize(static_cast<size_t>(fs.n));
    for (int64_t oc = 0; oc < fs.n; ++oc) {
      int32_t raw = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        raw += static_cast<int32_t>(w[oc * k + kk]);
      }
      pw.filter_rowsum[static_cast<size_t>(oc)] = raw;
    }
  }
  // F16 operand caches for the on-the-fly-F16 (GPU) path: precompute exactly
  // the Half values the kernel's per-call conversion would produce, using the
  // same tensor-embedded quant params and the same expressions.
  if (config_.cpu_compute == DType::kF16 || config_.gpu_compute == DType::kF16) {
    const QuantParams w_qp{qf.scale(), qf.zero_point()};
    pw.filters_f16.resize(static_cast<size_t>(qf.NumElements()));
    for (int64_t i = 0; i < qf.NumElements(); ++i) {
      pw.filters_f16[static_cast<size_t>(i)] = Half(w_qp.Dequantize(w[i]));
    }
    const Tensor& bias_f32 = model_->weights.at(n.id).bias;
    if (!bias_f32.empty()) {
      const float* bp = bias_f32.Data<float>();
      pw.bias_f16.resize(static_cast<size_t>(bias_f32.NumElements()));
      for (int64_t i = 0; i < bias_f32.NumElements(); ++i) {
        pw.bias_f16[static_cast<size_t>(i)] = Half(bp[i]);
      }
    }
  }
  // Packed panels for the GEMM micro-kernels: the raw quantized filters for
  // the integer path, and the dequantized F16 cache for the via-F16 path.
  if (ShouldPackFilters(n)) {
    PackFilterTensor(w, fs, pw.filters_packed_qu8);
    if (!pw.filters_f16.empty()) {
      PackFilterTensor(pw.filters_f16.data(), fs, pw.filters_packed_f16);
    }
  }
}

void PreparedModel::Calibrate(const std::vector<Tensor>& inputs) {
  assert(config_.storage == DType::kQUInt8 && "only QUInt8 storage needs calibration");
  assert(model_->has_weights());
  assert(!inputs.empty());
  // The calibration forward passes run the same threaded kernels as
  // execution; honor this config's thread budget.
  parallel::SetCpuThreads(config_.cpu_threads);

  // Observe per-node F32 activation ranges across the calibration set.
  std::vector<MinMaxObserver> obs(static_cast<size_t>(graph().size()));
  for (const Tensor& input : inputs) {
    const std::vector<Tensor> act = ForwardF32(*model_, input);
    for (const Node& n : graph().nodes()) {
      obs[static_cast<size_t>(n.id)].Observe(act[static_cast<size_t>(n.id)]);
    }
  }
  for (const Node& n : graph().nodes()) {
    act_qp_[static_cast<size_t>(n.id)] = obs[static_cast<size_t>(n.id)].Params();
  }

  // Quantize biases: bias_real = bias_i32 * (in_scale * w_scale).
  for (const Node& n : graph().nodes()) {
    if (!IsParameterized(n.desc.kind)) {
      continue;
    }
    PreparedWeights& pw = weights_.at(n.id);
    const Tensor& bias_f32 = model_->weights.at(n.id).bias;
    const float in_scale = act_qp_[static_cast<size_t>(n.inputs[0])].scale;
    pw.bias_i32 = Tensor(bias_f32.shape(), DType::kInt32);
    const float* src = bias_f32.Data<float>();
    int32_t* dst = pw.bias_i32.Data<int32_t>();
    const bool per_channel = !pw.per_channel.channels.empty();
    for (int64_t i = 0; i < bias_f32.NumElements(); ++i) {
      const float w_scale =
          per_channel ? pw.per_channel.channels[static_cast<size_t>(i)].scale
                      : pw.filters.scale();
      const float prod = in_scale * w_scale;
      // A zero/denormal/non-finite scale product would send the quotient to
      // +-inf and make the float->long conversion in lround undefined
      // behavior. Reject it like ComputeRequantScale rejects a degenerate
      // multiplier.
      if (!std::isfinite(prod) || prod < std::numeric_limits<float>::min()) {
        throw Error(ErrorCode::kQuantization,
                    "bias quantization: in_scale * w_scale is zero, denormal, or "
                    "non-finite",
                    n.id);
      }
      dst[i] = static_cast<int32_t>(std::lround(src[i] / prod));
    }
  }

  // Precompute the requantization multipliers the kernels would otherwise
  // derive per call. On a degenerate multiplier the cache entry is left
  // empty, so kernels recompute per call and the quantization Error surfaces
  // at Run() — the same error site as the uncached path.
  if (config_.scratch_arena) {
    for (const Node& n : graph().nodes()) {
      if (!IsParameterized(n.desc.kind)) {
        continue;
      }
      PreparedWeights& pw = weights_.at(n.id);
      const float in_scale =
          act_qp_[static_cast<size_t>(EffectiveQuantSource(graph(), n.inputs[0]))].scale;
      const float out_scale = act_qp_[static_cast<size_t>(n.id)].scale;
      try {
        if (!pw.per_channel.channels.empty()) {
          pw.requant_per_channel.resize(pw.per_channel.channels.size());
          for (size_t oc = 0; oc < pw.per_channel.channels.size(); ++oc) {
            pw.requant_per_channel[oc] =
                ComputeRequantScale(static_cast<double>(in_scale) *
                                    static_cast<double>(pw.per_channel.channels[oc].scale) /
                                    static_cast<double>(out_scale));
          }
        } else {
          pw.requant = ComputeRequantScale(static_cast<double>(in_scale) *
                                           static_cast<double>(pw.filters.scale()) /
                                           static_cast<double>(out_scale));
          pw.has_requant = true;
        }
      } catch (const Error&) {
        pw.requant_per_channel.clear();
        pw.has_requant = false;
      }
    }
  }
  calibrated_ = true;
}

DType PreparedModel::ActivationDType(int id) const {
  // Softmax output is class probabilities in F32 in every configuration.
  if (graph().node(id).desc.kind == LayerKind::kSoftmax) {
    return DType::kF32;
  }
  return config_.storage;
}

Tensor PreparedModel::MakeActivation(int id) const {
  const Node& n = graph().node(id);
  Tensor t(n.out_shape, ActivationDType(id));
  if (t.dtype() == DType::kQUInt8) {
    const QuantParams& qp = act_qp_[static_cast<size_t>(id)];
    t.set_quant_params(qp.scale, qp.zero_point);
  }
  return t;
}

Tensor PreparedModel::MakeActivationView(int id, uint8_t* buffer) const {
  const Node& n = graph().node(id);
  Tensor t = Tensor::View(n.out_shape, ActivationDType(id), buffer);
  if (t.dtype() == DType::kQUInt8) {
    const QuantParams& qp = act_qp_[static_cast<size_t>(id)];
    t.set_quant_params(qp.scale, qp.zero_point);
  }
  return t;
}

const Half* PreparedModel::FiltersF16Ptr(int id) const {
  const auto it = weights_.find(id);
  if (it == weights_.end() || it->second.filters_f16.empty()) {
    return nullptr;
  }
  return it->second.filters_f16.data();
}

const Half* PreparedModel::BiasF16Ptr(int id) const {
  const auto it = weights_.find(id);
  if (it == weights_.end() || it->second.bias_f16.empty()) {
    return nullptr;
  }
  return it->second.bias_f16.data();
}

const int32_t* PreparedModel::FilterRowSumPtr(int id) const {
  const auto it = weights_.find(id);
  if (it == weights_.end() || it->second.filter_rowsum.empty()) {
    return nullptr;
  }
  return it->second.filter_rowsum.data();
}

const RequantScale* PreparedModel::RequantPtr(int id) const {
  const auto it = weights_.find(id);
  if (it == weights_.end() || !it->second.has_requant) {
    return nullptr;
  }
  return &it->second.requant;
}

const uint8_t* PreparedModel::PackedFiltersQU8Ptr(int id) const {
  const auto it = weights_.find(id);
  if (it == weights_.end() || it->second.filters_packed_qu8.empty()) {
    return nullptr;
  }
  return it->second.filters_packed_qu8.data();
}

const float* PreparedModel::PackedFiltersF32Ptr(int id) const {
  const auto it = weights_.find(id);
  if (it == weights_.end() || it->second.filters_packed_f32.empty()) {
    return nullptr;
  }
  return it->second.filters_packed_f32.data();
}

const Half* PreparedModel::PackedFiltersF16Ptr(int id) const {
  const auto it = weights_.find(id);
  if (it == weights_.end() || it->second.filters_packed_f16.empty()) {
    return nullptr;
  }
  return it->second.filters_packed_f16.data();
}

const RequantScale* PreparedModel::PerChannelRequantPtr(int id) const {
  const auto it = weights_.find(id);
  if (it == weights_.end() || it->second.requant_per_channel.empty()) {
    return nullptr;
  }
  return it->second.requant_per_channel.data();
}

Tensor PreparedModel::PrepareInput(const Tensor& f32_input) const {
  assert(f32_input.dtype() == DType::kF32);
  switch (config_.storage) {
    case DType::kF32:
      return f32_input;
    case DType::kF16:
      return ToF16Tensor(f32_input);
    case DType::kQUInt8: {
      assert(calibrated_);
      // The graph input is node 0 by construction.
      return QuantizeTensor(f32_input, act_qp_[0]);
    }
    case DType::kInt32:
      break;
  }
  assert(false && "unsupported storage dtype");
  return f32_input;
}

}  // namespace ulayer
