#include "core/prepared.h"

#include <cassert>
#include <cmath>

#include "core/reference.h"
#include "parallel/thread_pool.h"

namespace ulayer {
namespace {

bool IsParameterized(LayerKind k) {
  return k == LayerKind::kConv || k == LayerKind::kDepthwiseConv ||
         k == LayerKind::kFullyConnected;
}

QuantParams TensorMinMaxParams(const Tensor& f32) {
  MinMaxObserver obs;
  obs.Observe(f32);
  return obs.Params();
}

}  // namespace

PreparedModel::PreparedModel(const Model& model, const ExecConfig& config)
    : model_(&model), config_(config), act_qp_(static_cast<size_t>(model.graph.size())) {
  if (!model.has_weights()) {
    return;  // Simulate-only use: no weight conversion needed.
  }
  for (const Node& n : model.graph.nodes()) {
    if (!IsParameterized(n.desc.kind)) {
      continue;
    }
    const LayerWeights& w = model.weights.at(n.id);
    PreparedWeights pw;
    switch (config.storage) {
      case DType::kF32:
        pw.filters = w.filters;
        pw.bias = w.bias;
        break;
      case DType::kF16:
        pw.filters = ToF16Tensor(w.filters);
        pw.bias = ToF16Tensor(w.bias);
        break;
      case DType::kQUInt8:
        if (config.per_channel_weights && n.desc.kind != LayerKind::kDepthwiseConv) {
          pw.filters = QuantizeFiltersPerChannel(w.filters, pw.per_channel);
        } else {
          pw.filters = QuantizeTensor(w.filters, TensorMinMaxParams(w.filters));
        }
        // bias_i32 needs the input activation scale; filled by Calibrate().
        break;
      case DType::kInt32:
        assert(false && "kInt32 is not a storage dtype");
        break;
    }
    weights_.emplace(n.id, std::move(pw));
  }
}

void PreparedModel::Calibrate(const std::vector<Tensor>& inputs) {
  assert(config_.storage == DType::kQUInt8 && "only QUInt8 storage needs calibration");
  assert(model_->has_weights());
  assert(!inputs.empty());
  // The calibration forward passes run the same threaded kernels as
  // execution; honor this config's thread budget.
  parallel::SetCpuThreads(config_.cpu_threads);

  // Observe per-node F32 activation ranges across the calibration set.
  std::vector<MinMaxObserver> obs(static_cast<size_t>(graph().size()));
  for (const Tensor& input : inputs) {
    const std::vector<Tensor> act = ForwardF32(*model_, input);
    for (const Node& n : graph().nodes()) {
      obs[static_cast<size_t>(n.id)].Observe(act[static_cast<size_t>(n.id)]);
    }
  }
  for (const Node& n : graph().nodes()) {
    act_qp_[static_cast<size_t>(n.id)] = obs[static_cast<size_t>(n.id)].Params();
  }

  // Quantize biases: bias_real = bias_i32 * (in_scale * w_scale).
  for (const Node& n : graph().nodes()) {
    if (!IsParameterized(n.desc.kind)) {
      continue;
    }
    PreparedWeights& pw = weights_.at(n.id);
    const Tensor& bias_f32 = model_->weights.at(n.id).bias;
    const float in_scale = act_qp_[static_cast<size_t>(n.inputs[0])].scale;
    pw.bias_i32 = Tensor(bias_f32.shape(), DType::kInt32);
    const float* src = bias_f32.Data<float>();
    int32_t* dst = pw.bias_i32.Data<int32_t>();
    const bool per_channel = !pw.per_channel.channels.empty();
    for (int64_t i = 0; i < bias_f32.NumElements(); ++i) {
      const float w_scale =
          per_channel ? pw.per_channel.channels[static_cast<size_t>(i)].scale
                      : pw.filters.scale();
      dst[i] = static_cast<int32_t>(std::lround(src[i] / (in_scale * w_scale)));
    }
  }
  calibrated_ = true;
}

DType PreparedModel::ActivationDType(int id) const {
  // Softmax output is class probabilities in F32 in every configuration.
  if (graph().node(id).desc.kind == LayerKind::kSoftmax) {
    return DType::kF32;
  }
  return config_.storage;
}

Tensor PreparedModel::MakeActivation(int id) const {
  const Node& n = graph().node(id);
  Tensor t(n.out_shape, ActivationDType(id));
  if (t.dtype() == DType::kQUInt8) {
    const QuantParams& qp = act_qp_[static_cast<size_t>(id)];
    t.set_quant_params(qp.scale, qp.zero_point);
  }
  return t;
}

Tensor PreparedModel::PrepareInput(const Tensor& f32_input) const {
  assert(f32_input.dtype() == DType::kF32);
  switch (config_.storage) {
    case DType::kF32:
      return f32_input;
    case DType::kF16:
      return ToF16Tensor(f32_input);
    case DType::kQUInt8: {
      assert(calibrated_);
      // The graph input is node 0 by construction.
      return QuantizeTensor(f32_input, act_qp_[0]);
    }
    case DType::kInt32:
      break;
  }
  assert(false && "unsupported storage dtype");
  return f32_input;
}

}  // namespace ulayer
