// Closed adaptation loop (DESIGN.md Section 16): the state the runtime
// maintains to keep the partitioner's latency model honest while the device
// drifts (thermal throttling, co-tenant contention, driver hiccups).
//
// Two pieces live here because both the predictor and the runtime need them
// without depending on each other:
//
//  - CorrectionTable: per-(layer kind, processor) multiplicative latency
//    corrections the LatencyPredictor applies on top of its fitted
//    regression. The runtime feeds it from trace::BuildDriftReport
//    aggregates (EWMA over duration-weighted observed/predicted ratios), so
//    the predictor tracks the device's *current* speed instead of the
//    profile-time speed. The identity table (all 1.0) leaves predictions
//    bit-identical to the pre-adaptation path.
//
//  - PlanCache: plans keyed by quantized device-health state
//    (gpu_available, bucketed gpu_time_scale, correction-table
//    fingerprint), so revisiting a health state the runtime has already
//    planned for is an O(1) lookup instead of a full Partitioner::Build().
//    Quantization is deliberate: raw EWMA values never repeat exactly, but
//    health states a few percent apart want the same plan.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.h"
#include "nn/graph.h"

namespace ulayer {

// Multiplicative latency corrections indexed by (LayerKind, processor).
// Values are clamped to [kMinScale, kMaxScale]: anything outside that band
// is not a plausible device state and would poison every later plan
// (verified as H901 by VerifyCorrectionTable).
class CorrectionTable {
 public:
  static constexpr double kMinScale = 1.0 / 64.0;
  static constexpr double kMaxScale = 64.0;

  CorrectionTable();

  double Get(LayerKind kind, ProcKind proc) const;
  // Sets the factor directly (clamped into the sanity band).
  void Set(LayerKind kind, ProcKind proc, double scale);
  // EWMA step toward `observed_ratio` (simulated/predicted from a drift
  // aggregate): scale <- (1 - alpha) * scale + alpha * observed_ratio.
  void Update(LayerKind kind, ProcKind proc, double observed_ratio, double alpha);

  // True when every cell is exactly 1.0 (the bit-identical baseline).
  bool IsIdentity() const;

  // Log-space quantization bucket of one factor: round(log(scale) /
  // log(growth)). Bucket 0 spans scales within half a growth step of 1.0.
  static int32_t BucketOf(double scale, double growth);
  // FNV-1a over the per-cell buckets. Two tables land on the same
  // fingerprint exactly when every cell quantizes to the same bucket — the
  // plan-cache key treats them as the same device state.
  uint64_t Fingerprint(double growth) const;

  // One line per non-identity cell ("conv/gpu 2.5"); "identity" when clean.
  std::string ToString() const;

  bool operator==(const CorrectionTable&) const = default;

 private:
  // [kind][0=cpu, 1=gpu].
  std::array<std::array<double, 2>, static_cast<size_t>(kLayerKindCount)> scale_;
};

// Quantized device-health state a cached plan was built for.
struct PlanCacheKey {
  bool gpu_available = true;  // Circuit breaker / probation state.
  int32_t scale_bucket = 0;   // BucketOf(gpu_time_scale, growth).
  uint64_t correction_fp = 0; // CorrectionTable::Fingerprint(growth).

  bool operator==(const PlanCacheKey&) const = default;
  std::string ToString() const;
};

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
};

// Bounded LRU map from health key to plan. Deterministic: lookup order is
// the only clock, so identical call sequences produce identical hit/miss/
// eviction traces at any thread count.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity);

  // Returns the cached plan (bumping its recency) or nullptr; counts the
  // outcome either way.
  const Plan* Lookup(const PlanCacheKey& key);
  // Inserts (or replaces) the plan for `key`, evicting the least recently
  // used entry when at capacity. A capacity of 0 disables caching.
  void Insert(const PlanCacheKey& key, Plan plan);
  void Clear();

  struct Entry {
    PlanCacheKey key;
    Plan plan;
    uint64_t last_use = 0;
  };

  const std::vector<Entry>& entries() const { return entries_; }
  const PlanCacheStats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  uint64_t tick_ = 0;
  std::vector<Entry> entries_;
  PlanCacheStats stats_;
};

}  // namespace ulayer
