// Shared activation-pool layout planning (DESIGN.md §9 and §12).
//
// The executor and the static memory-access analyzer must agree byte-for-byte
// on where every activation tensor lives inside the packed pool, so the
// layout is built here, once, from the PreparedModel alone (weights need not
// be materialized).
//
// Packing uses a CONCURRENCY-SAFE conflict rule, not plain liveness-interval
// overlap: two buffers may share pool bytes only when every use of the
// earlier one happens-before the later producer ALONG GRAPH EDGES. Interval
// overlap alone is unsound here — node ids are topological, but a branch
// plan executes independent branches concurrently, so a buffer whose
// interval ended (by id order) can still be read while a concurrent branch
// writes the bytes it would otherwise recycle.
#pragma once

#include <cstdint>
#include <vector>

#include "core/prepared.h"

namespace ulayer {

// reach[i][j] == true when node j is reachable from node i via one or more
// consumer edges (strict: reach[i][i] is false unless the graph has a cycle,
// which VerifyGraph rejects).
std::vector<std::vector<bool>> BuildReachability(const Graph& g);

struct MemoryLayout {
  // Byte offset of each node's activation inside the pool (index = node id).
  std::vector<int64_t> offsets;
  // Pool bytes of each node's activation (0 for the input node, which stays
  // an owning tensor outside the pool).
  std::vector<int64_t> bytes;
  // Last step (node id) that reads each activation; the graph output gets
  // the virtual step g.size() (it is read after the node loop).
  std::vector<int64_t> last_use;
  int64_t pool_bytes = 0;
  // Worst-case single-node kernel scratch demand (the arena is Reset between
  // kernels, so the peak is one node's staging buffers).
  int64_t scratch_bytes = 0;
};

// Builds the packed activation-pool layout and the scratch reservation for
// `pm`. Deterministic; works without materialized weights.
MemoryLayout BuildMemoryLayout(const PreparedModel& pm);

}  // namespace ulayer
