#include "core/partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ulayer {
namespace {

constexpr double kIssueCallUs = 2.0;  // Matches executor.cc.

bool Splittable(LayerKind k) {
  switch (k) {
    case LayerKind::kConv:
    case LayerKind::kDepthwiseConv:
    case LayerKind::kFullyConnected:
    case LayerKind::kPool:
    case LayerKind::kGlobalAvgPool:
    case LayerKind::kRelu:
    case LayerKind::kLrn:
    case LayerKind::kEltwiseAdd:
      return true;
    case LayerKind::kInput:
    case LayerKind::kConcat:
    case LayerKind::kSoftmax:
      return false;
  }
  return false;
}

// Mirrors predictor.cc: c == 0 would make std::clamp's hi < lo (UB), so
// degenerate nodes map to the empty range.
int64_t FractionChannels(const Node& node, double fraction) {
  const int64_t c = node.out_shape.c;
  if (c <= 0) {
    return 0;
  }
  return std::clamp<int64_t>(static_cast<int64_t>(std::llround(fraction * static_cast<double>(c))),
                             1, c);
}

}  // namespace

Partitioner::Partitioner(const Graph& graph, const TimingModel& timing, const ExecConfig& config,
                         const LatencyPredictor& predictor, Options options)
    : graph_(graph),
      timing_(timing),
      config_(config),
      predictor_(predictor),
      options_(std::move(options)) {}

double Partitioner::LayerUs(const Node& node, ProcKind proc, double fraction) const {
  if (fraction <= 0.0) {
    return 0.0;
  }
  double us;
  if (!options_.use_oracle) {
    us = predictor_.PredictUs(graph_, node, proc, fraction);
  } else {
    const int64_t c_end = FractionChannels(node, fraction);
    const LayerWork w = ComputeWork(graph_, node, config_.storage, 0, c_end);
    us = timing_.KernelLatencyUs(w, proc, config_.ComputeFor(proc), config_.cpu_threads);
  }
  // Degraded-mode estimate scaling. Guarded so the default scale of 1.0
  // leaves the arithmetic bit-identical to the unscaled path.
  if (proc == ProcKind::kGpu && options_.gpu_time_scale != 1.0) {
    us *= options_.gpu_time_scale;
  }
  return us;
}

double Partitioner::EstimateSingleUs(const Node& node, ProcKind proc) const {
  return LayerUs(node, proc, 1.0);
}

double Partitioner::EstimateCoopUs(const Node& node, double p) const {
  const double cpu_us = kIssueCallUs + LayerUs(node, ProcKind::kCpu, p);
  const double gpu_us = kIssueCallUs + timing_.MapUs() + LayerUs(node, ProcKind::kGpu, 1.0 - p);
  return std::max(cpu_us, gpu_us) + timing_.SyncUs();
}

double Partitioner::EstimateSingleMj(const Node& node, ProcKind proc) const {
  const EnergyModel energy(timing_.soc());
  const int64_t c_end = node.out_shape.c;
  const LayerWork w = ComputeWork(graph_, node, config_.storage, 0, c_end);
  const double busy = LayerUs(node, proc, 1.0);
  return energy.ComputeEnergyMj(proc, config_.ComputeFor(proc), busy, 0.0) +
         energy.DramEnergyMj(w.TotalBytes()) + energy.IdleEnergyMj(busy);
}

double Partitioner::EstimateCoopMj(const Node& node, double p) const {
  const EnergyModel energy(timing_.soc());
  const LayerWork w = ComputeWork(graph_, node, config_.storage);
  const double cpu_busy = LayerUs(node, ProcKind::kCpu, p);
  const double gpu_busy = LayerUs(node, ProcKind::kGpu, 1.0 - p);
  return energy.ComputeEnergyMj(ProcKind::kCpu, config_.ComputeFor(ProcKind::kCpu), cpu_busy,
                                0.0) +
         energy.ComputeEnergyMj(ProcKind::kGpu, config_.ComputeFor(ProcKind::kGpu), gpu_busy,
                                0.0) +
         energy.DramEnergyMj(w.TotalBytes()) + energy.IdleEnergyMj(EstimateCoopUs(node, p));
}

double Partitioner::EstimateBranchGroupUs(const BranchGroup& group,
                                          const std::vector<ProcKind>& assignment) const {
  assert(assignment.size() == group.branches.size());
  double cpu_total = 0.0;
  double gpu_total = 0.0;
  for (size_t b = 0; b < group.branches.size(); ++b) {
    double t = 0.0;
    for (int id : group.branches[b]) {
      t += LayerUs(graph_.node(id), assignment[b], 1.0);
    }
    (assignment[b] == ProcKind::kCpu ? cpu_total : gpu_total) += t;
  }
  const bool both = cpu_total > 0.0 && gpu_total > 0.0;
  // Both-processor mappings pay a fork handoff and a join synchronization.
  return std::max(cpu_total, gpu_total) + (both ? 2.0 * timing_.SyncUs() : 0.0);
}

Plan Partitioner::Build() const {
  Plan plan;
  plan.batch = graph_.BatchSize();
  plan.nodes.resize(static_cast<size_t>(graph_.size()));
  std::vector<bool> planned(static_cast<size_t>(graph_.size()), false);

  // Circuit breaker tripped: the GPU is out of the candidate set, so the
  // whole network runs as single-processor CPU steps.
  if (!options_.gpu_available) {
    for (const Node& n : graph_.nodes()) {
      if (n.desc.kind != LayerKind::kInput) {
        plan.nodes[static_cast<size_t>(n.id)] =
            NodeAssignment{StepKind::kSingle, ProcKind::kCpu, 1.0};
      }
    }
    return plan;
  }

  // --- Branch distribution (Section 5) -------------------------------------
  if (options_.branch_distribution) {
    for (const BranchGroup& group : FindBranchGroups(graph_)) {
      const size_t nb = group.branches.size();
      if (nb > 16) {
        continue;  // 2^B enumeration guard; never hit by realistic NNs.
      }
      // Best branch-to-processor mapping by exhaustive enumeration.
      double best_cost = std::numeric_limits<double>::infinity();
      uint32_t best_mask = 0;
      for (uint32_t mask = 0; mask < (1u << nb); ++mask) {
        std::vector<ProcKind> assign(nb);
        for (size_t b = 0; b < nb; ++b) {
          assign[b] = (mask >> b) & 1u ? ProcKind::kGpu : ProcKind::kCpu;
        }
        const double cost = EstimateBranchGroupUs(group, assign);
        if (cost < best_cost) {
          best_cost = cost;
          best_mask = mask;
        }
      }
      // Selectivity: adopt branch distribution only when it beats running the
      // group's layers cooperatively (channel-split) one after another.
      double coop_cost = 0.0;
      for (const auto& branch : group.branches) {
        for (int id : branch) {
          double layer_best = std::min(EstimateSingleUs(graph_.node(id), ProcKind::kCpu),
                                       EstimateSingleUs(graph_.node(id), ProcKind::kGpu));
          if (options_.channel_distribution && Splittable(graph_.node(id).desc.kind)) {
            for (const double p : options_.split_candidates) {
              layer_best = std::min(layer_best, EstimateCoopUs(graph_.node(id), p));
            }
          }
          coop_cost += layer_best;
        }
      }
      if (best_cost >= coop_cost) {
        continue;
      }
      BranchPlan bp;
      bp.group = group;
      bp.assignment.resize(nb);
      for (size_t b = 0; b < nb; ++b) {
        bp.assignment[b] = (best_mask >> b) & 1u ? ProcKind::kGpu : ProcKind::kCpu;
        for (int id : group.branches[b]) {
          plan.nodes[static_cast<size_t>(id)] =
              NodeAssignment{StepKind::kBranch, bp.assignment[b], 1.0};
          planned[static_cast<size_t>(id)] = true;
        }
      }
      plan.branch_plans.push_back(std::move(bp));
    }
  }

  // --- Per-layer planning ---------------------------------------------------
  for (const Node& n : graph_.nodes()) {
    if (planned[static_cast<size_t>(n.id)] || n.desc.kind == LayerKind::kInput) {
      continue;
    }
    NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    // Objective value of a candidate assignment.
    auto single_score = [&](ProcKind proc) {
      const double us = EstimateSingleUs(n, proc);
      switch (options_.objective) {
        case Objective::kLatency:
          return us;
        case Objective::kEnergy:
          return EstimateSingleMj(n, proc);
        case Objective::kEdp:
          return us * EstimateSingleMj(n, proc);
      }
      return us;
    };
    auto coop_score = [&](double p) {
      const double us = EstimateCoopUs(n, p);
      switch (options_.objective) {
        case Objective::kLatency:
          return us;
        case Objective::kEnergy:
          return EstimateCoopMj(n, p);
        case Objective::kEdp:
          return us * EstimateCoopMj(n, p);
      }
      return us;
    };
    const double cpu_score = single_score(ProcKind::kCpu);
    const double gpu_score = single_score(ProcKind::kGpu);
    a = NodeAssignment{StepKind::kSingle,
                       cpu_score <= gpu_score ? ProcKind::kCpu : ProcKind::kGpu, 1.0};
    double best = std::min(cpu_score, gpu_score);
    if (options_.channel_distribution && Splittable(n.desc.kind)) {
      for (const double p : options_.split_candidates) {
        const double coop = coop_score(p);
        if (coop < best) {
          best = coop;
          a = NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, p};
        }
      }
    }
  }
  return plan;
}

}  // namespace ulayer
