// Reference F32 forward pass, used for activation-range calibration and as
// the accuracy baseline of the quantization experiments (Figure 10).
#pragma once

#include <vector>

#include "models/model.h"

namespace ulayer {

// Computes every node's F32 activation for `input` (which must match the
// graph's input shape). Returns activations indexed by node id. Model
// weights must be materialized.
std::vector<Tensor> ForwardF32(const Model& m, const Tensor& input);

// Argmax class index of an output (n=1) probability/logit tensor.
int64_t Argmax(const Tensor& probs);

// Indices of the top-k classes, highest first.
std::vector<int64_t> TopK(const Tensor& probs, int k);

}  // namespace ulayer
