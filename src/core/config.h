// ExecConfig: how tensors are stored and how each processor computes.
//
// Processor-friendly quantization (paper Section 4.2) is expressed as one
// configuration: storage QUInt8, CPU computes QUInt8, GPU computes F16.
#pragma once

#include "tensor/dtype.h"
#include "soc/spec.h"

namespace ulayer {

struct ExecConfig {
  // Storage dtype of every network tensor (activations and filters) — this
  // is what memory traffic is priced at.
  DType storage = DType::kF32;
  // Arithmetic dtype per processor. With QUInt8 storage, a processor whose
  // compute dtype is kF16 converts values on the fly (the GPU path).
  DType cpu_compute = DType::kF32;
  DType gpu_compute = DType::kF32;

  // Implementation optimizations of Section 6 (both on for real ulayer;
  // switchable for the overhead-ablation bench).
  bool zero_copy = true;    // Shared CPU-GPU memory via CL_MEM_ALLOC_HOST_PTR.
  bool async_issue = true;  // Overlap GPU command issuing with CPU-side work.

  // Extension: quantize conv/FC filters per output channel instead of per
  // tensor (QUInt8 storage only). Improves accuracy at identical speed; see
  // bench/per_channel_quant.
  bool per_channel_weights = false;

  // CPU threads used by the functional kernels (src/parallel) and assumed by
  // the simulated CPU kernel-body time. 0 = automatic: the ULAYER_CPU_THREADS
  // environment override when set, otherwise the host's hardware concurrency
  // (functional side) and the full CPU cluster (timing side). 1 restores the
  // single-threaded behavior; outputs are byte-identical for any value (see
  // DESIGN.md "Parallel execution model").
  int cpu_threads = 0;

  // Run the Graph/Plan static verifiers (src/verify) at the Runtime and
  // Executor entry points; invariant violations throw VerifyError instead of
  // silently producing wrong latencies or garbage tensors. The passes are
  // O(nodes) — cheap next to any real run — so they stay on by default;
  // latency-measurement loops may switch them off.
  bool verify = true;

  // Record a structured RunTrace (src/trace, DESIGN.md Section 11): typed
  // spans with overhead/fault attribution, queue-depth samples and the
  // injector's event log, surfaced on RunResult::run_trace and exportable as
  // Chrome trace-event JSON. The ULAYER_TRACE environment variable (any
  // value but "0") enables it without touching the config. Off by default:
  // recording only reads the timelines, so the simulated schedule is
  // bit-identical either way, but spans cost memory and time to collect.
  bool trace = false;

  // Steady-state memory planning (DESIGN.md Section 9): prepare-time weight
  // caches, a monotonic scratch arena for kernel staging buffers, and
  // liveness-planned activation pooling. Off restores the per-call-allocation
  // path (kept for one release as a byte-identical regression baseline).
  bool scratch_arena = true;

  // Static memory-access analysis (src/analysis, DESIGN.md §12): at the first
  // functional Run() of each plan, prove the A5xx/A6xx/A7xx invariants of the
  // packed pool layout against the kernels' declared AccessSpecs and throw
  // VerifyError on violation. Prepare-time only — the result is cached per
  // plan fingerprint, so steady-state runs stay allocation-free and
  // bit-identical. On by default in debug/sanitizer builds, off in release.
#ifdef NDEBUG
  bool analyze = false;
#else
  bool analyze = true;
#endif

  // --- Fault recovery policy (DESIGN.md Section 10) -------------------------
  // A failed GPU enqueue is retried this many times with exponential backoff
  // before the executor falls back to the CPU.
  int fault_max_retries = 2;
  // Base backoff before the first retry; doubles per attempt. Charged to the
  // CPU timeline (the host thread owns the retry loop).
  double fault_backoff_us = 25.0;
  // After retries are exhausted, re-execute the failed GPU channel slice on
  // the CPU (paying a sync plus the CPU-flavor kernel time). When off, an
  // unrecovered GPU fault aborts the run with ulayer::Error(kFault).
  bool fault_cpu_fallback = true;

  DType ComputeFor(ProcKind k) const { return k == ProcKind::kCpu ? cpu_compute : gpu_compute; }

  // --- Common configurations ---
  // Everything in F32 (the mobile-framework default).
  static ExecConfig AllF32() { return ExecConfig{}; }
  // Everything in F16.
  static ExecConfig AllF16() {
    return ExecConfig{DType::kF16, DType::kF16, DType::kF16, true, true};
  }
  // Everything in QUInt8 (TFLite-style; both processors run integer math).
  static ExecConfig AllQU8() {
    return ExecConfig{DType::kQUInt8, DType::kQUInt8, DType::kQUInt8, true, true};
  }
  // Processor-friendly quantization: QUInt8 storage, CPU integer math,
  // GPU F16 math (Section 4.2).
  static ExecConfig ProcessorFriendly() {
    return ExecConfig{DType::kQUInt8, DType::kQUInt8, DType::kF16, true, true};
  }
};

}  // namespace ulayer
