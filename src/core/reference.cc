#include "core/reference.h"

#include <algorithm>
#include <cassert>

#include "kernels/conv.h"
#include "kernels/elementwise.h"
#include "kernels/pool.h"

namespace ulayer {

std::vector<Tensor> ForwardF32(const Model& m, const Tensor& input) {
  assert(m.has_weights() && "call MaterializeWeights() first");
  const Graph& g = m.graph;
  std::vector<Tensor> act(static_cast<size_t>(g.size()));
  for (const Node& n : g.nodes()) {
    Tensor& out = act[static_cast<size_t>(n.id)];
    switch (n.desc.kind) {
      case LayerKind::kInput:
        assert(input.shape() == n.out_shape);
        out = input;
        break;
      case LayerKind::kConv:
      case LayerKind::kFullyConnected: {
        const LayerWeights& w = m.weights.at(n.id);
        out = Tensor(n.out_shape, DType::kF32);
        Conv2DF32(act[static_cast<size_t>(n.inputs[0])], w.filters, w.bias, n.desc.conv, out);
        break;
      }
      case LayerKind::kDepthwiseConv: {
        const LayerWeights& w = m.weights.at(n.id);
        out = Tensor(n.out_shape, DType::kF32);
        DepthwiseConv2DF32(act[static_cast<size_t>(n.inputs[0])], w.filters, w.bias, n.desc.conv,
                           out);
        break;
      }
      case LayerKind::kPool:
        out = Tensor(n.out_shape, DType::kF32);
        Pool2DF32(act[static_cast<size_t>(n.inputs[0])], n.desc.pool, out);
        break;
      case LayerKind::kGlobalAvgPool:
        out = Tensor(n.out_shape, DType::kF32);
        GlobalAvgPoolF32(act[static_cast<size_t>(n.inputs[0])], out);
        break;
      case LayerKind::kRelu:
        out = act[static_cast<size_t>(n.inputs[0])];
        ReluF32(out);
        break;
      case LayerKind::kLrn:
        out = Tensor(n.out_shape, DType::kF32);
        LrnF32(act[static_cast<size_t>(n.inputs[0])], n.desc.lrn, out);
        break;
      case LayerKind::kConcat: {
        out = Tensor(n.out_shape, DType::kF32);
        std::vector<const Tensor*> ins;
        ins.reserve(n.inputs.size());
        for (int in : n.inputs) {
          ins.push_back(&act[static_cast<size_t>(in)]);
        }
        ConcatChannels(ins, out);
        break;
      }
      case LayerKind::kEltwiseAdd: {
        out = Tensor(n.out_shape, DType::kF32);
        // Accumulate without ReLU; apply the fused ReLU once at the end.
        EltwiseAddF32(act[static_cast<size_t>(n.inputs[0])], act[static_cast<size_t>(n.inputs[1])],
                      out, /*relu=*/false);
        for (size_t i = 2; i < n.inputs.size(); ++i) {
          EltwiseAddF32(out, act[static_cast<size_t>(n.inputs[i])], out, /*relu=*/false);
        }
        if (n.desc.conv.relu) {
          ReluF32(out);
        }
        break;
      }
      case LayerKind::kSoftmax:
        out = Tensor(n.out_shape, DType::kF32);
        Softmax(act[static_cast<size_t>(n.inputs[0])], out);
        break;
    }
  }
  return act;
}

int64_t Argmax(const Tensor& probs) {
  assert(probs.dtype() == DType::kF32);
  const float* p = probs.Data<float>();
  return std::max_element(p, p + probs.NumElements()) - p;
}

std::vector<int64_t> TopK(const Tensor& probs, int k) {
  assert(probs.dtype() == DType::kF32);
  const float* p = probs.Data<float>();
  std::vector<int64_t> idx(static_cast<size_t>(probs.NumElements()));
  for (size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<int64_t>(i);
  }
  const size_t kk = std::min<size_t>(static_cast<size_t>(k), idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<int64_t>(kk), idx.end(),
                    [&](int64_t a, int64_t b) { return p[a] > p[b]; });
  idx.resize(kk);
  return idx;
}

}  // namespace ulayer
