// Execution plans: the output of the NN partitioner (paper Section 6).
//
// A plan assigns every graph node to one of three step kinds:
//  - kSingle:      the node runs entirely on one processor.
//  - kCooperative: the node's output channels are split CPU:GPU = p:(1-p)
//                  (channel-wise workload distribution, Section 3.2).
//  - kBranch:      the node belongs to a branch group whose branches are
//                  assigned whole to processors (branch distribution,
//                  Section 5). The assignment is stored on the group.
#pragma once

#include <vector>

#include "nn/branch.h"
#include "soc/spec.h"

namespace ulayer {

enum class StepKind : uint8_t { kSingle, kCooperative, kBranch };

struct NodeAssignment {
  StepKind kind = StepKind::kSingle;
  ProcKind proc = ProcKind::kCpu;  // kSingle / kBranch: the executing processor.
  double cpu_fraction = 1.0;       // kCooperative: the split ratio p.
};

struct BranchPlan {
  BranchGroup group;
  // Processor per branch, same order as group.branches.
  std::vector<ProcKind> assignment;
};

struct Plan {
  // Indexed by node id.
  std::vector<NodeAssignment> nodes;
  std::vector<BranchPlan> branch_plans;

  // Fraction of nodes executed cooperatively (reporting).
  double CooperativeFraction() const {
    if (nodes.empty()) {
      return 0.0;
    }
    int coop = 0;
    for (const NodeAssignment& a : nodes) {
      coop += a.kind == StepKind::kCooperative ? 1 : 0;
    }
    return static_cast<double>(coop) / static_cast<double>(nodes.size());
  }
};

}  // namespace ulayer
