// Execution plans: the output of the NN partitioner (paper Section 6).
//
// A plan assigns every graph node to one of three step kinds:
//  - kSingle:      the node runs entirely on one processor.
//  - kCooperative: the node's output channels are split CPU:GPU = p:(1-p)
//                  (channel-wise workload distribution, Section 3.2).
//  - kBranch:      the node belongs to a branch group whose branches are
//                  assigned whole to processors (branch distribution,
//                  Section 5). The assignment is stored on the group.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/branch.h"
#include "soc/spec.h"

namespace ulayer {

enum class StepKind : uint8_t { kSingle, kCooperative, kBranch };

// Half-open channel interval [begin, end).
struct ChannelRange {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t size() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool operator==(const ChannelRange&) const = default;
};

struct NodeAssignment {
  StepKind kind = StepKind::kSingle;
  ProcKind proc = ProcKind::kCpu;  // kSingle / kBranch: the executing processor.
  double cpu_fraction = 1.0;       // kCooperative: the split ratio p.
  // kCooperative: the GPU-side ratio. Negative means "derived": 1 - p. An
  // explicit value lets serialized or mutated plans express ratio errors the
  // verifier must catch (Section 3.2 requires p + q = 1).
  double gpu_fraction = -1.0;
  // kCooperative: explicit output-channel slices. When unset (end < 0) the
  // executor derives them from cpu_fraction (CPU takes the first
  // round(p * C) channels, the GPU the rest).
  ChannelRange cpu_slice{0, -1};
  ChannelRange gpu_slice{0, -1};

  bool has_explicit_slices() const { return cpu_slice.end >= 0 || gpu_slice.end >= 0; }
  double GpuFraction() const { return gpu_fraction < 0.0 ? 1.0 - cpu_fraction : gpu_fraction; }
};

// The channel slices a cooperative step actually executes, over `channels`
// output channels. This is the single source of truth shared by the
// executor and the plan verifier.
struct ResolvedSplit {
  ChannelRange cpu;
  ChannelRange gpu;
};

inline ResolvedSplit ResolveSplit(const NodeAssignment& a, int64_t channels) {
  if (a.has_explicit_slices()) {
    return ResolvedSplit{a.cpu_slice, a.gpu_slice};
  }
  const double p = a.cpu_fraction;
  const int64_t c_split =
      std::isfinite(p)
          ? std::clamp<int64_t>(
                static_cast<int64_t>(std::llround(p * static_cast<double>(channels))), 0, channels)
          : 0;
  return ResolvedSplit{ChannelRange{0, c_split}, ChannelRange{c_split, channels}};
}

struct BranchPlan {
  BranchGroup group;
  // Processor per branch, same order as group.branches.
  std::vector<ProcKind> assignment;
};

struct Plan {
  // Indexed by node id.
  std::vector<NodeAssignment> nodes;
  std::vector<BranchPlan> branch_plans;
  // Batch size this plan was built (and priced) for. The partitioner and the
  // baseline builders stamp the graph's input batch here so serving-layer
  // caches can't pair a plan with a graph of a different N — the timing model
  // prices MACs and activation traffic per batch element while weight traffic
  // is batch-invariant, so splits tuned at one N are wrong at another. 0
  // means "unspecified" (hand-built plans); the verifier only checks a
  // positive batch against the graph (P115).
  int64_t batch = 0;

  // Fraction of nodes executed cooperatively (reporting).
  double CooperativeFraction() const {
    if (nodes.empty()) {
      return 0.0;
    }
    int coop = 0;
    for (const NodeAssignment& a : nodes) {
      coop += a.kind == StepKind::kCooperative ? 1 : 0;
    }
    return static_cast<double>(coop) / static_cast<double>(nodes.size());
  }
};

}  // namespace ulayer
