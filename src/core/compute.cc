#include "core/compute.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "kernels/conv.h"
#include "kernels/elementwise.h"
#include "kernels/pool.h"

namespace ulayer {
namespace {

// Copies channels [c0, c1) of `src` into `dst` (same shape and dtype).
void CopyChannelSlice(const Tensor& src, Tensor& dst, int64_t c0, int64_t c1) {
  const Shape& s = src.shape();
  const int64_t elem = DTypeSize(src.dtype());
  for (int64_t ni = 0; ni < s.n; ++ni) {
    const int64_t off = s.Offset(ni, c0, 0, 0) * elem;
    const int64_t len = (c1 - c0) * s.h * s.w * elem;
    std::memcpy(dst.raw() + off, src.raw() + off, static_cast<size_t>(len));
  }
}

}  // namespace

void ComputeNodeSlice(const PreparedModel& pm, int id, ProcKind proc, std::vector<Tensor>& act,
                      int64_t c0, int64_t c1, memory::ScratchArena* scratch,
                      const Half* staged_cols) {
  const Graph& g = pm.graph();
  const Node& n = g.node(id);
  const ExecConfig& cfg = pm.config();
  const DType storage = cfg.storage;
  const DType compute = cfg.ComputeFor(proc);
  Tensor& out = act[static_cast<size_t>(id)];
  const Tensor& in0 = act[static_cast<size_t>(n.inputs.empty() ? id : n.inputs[0])];

  // Prepare-time caches; every pointer is null when the cache is absent
  // (legacy path, pre-Calibrate, or degenerate quant params), in which case
  // the kernels compute the value per call exactly as before.
  ConvAux aux;
  aux.scratch = scratch;
  aux.requant = pm.RequantPtr(id);
  aux.requant_per_channel = pm.PerChannelRequantPtr(id);
  aux.filter_rowsum = pm.FilterRowSumPtr(id);
  aux.filters_f16 = pm.FiltersF16Ptr(id);
  aux.bias_f16 = pm.BiasF16Ptr(id);
  aux.filters_packed_qu8 = pm.PackedFiltersQU8Ptr(id);
  aux.filters_packed_f32 = pm.PackedFiltersF32Ptr(id);
  aux.filters_packed_f16 = pm.PackedFiltersF16Ptr(id);
  aux.staged_cols = compute == DType::kF16 ? staged_cols : nullptr;

  switch (n.desc.kind) {
    case LayerKind::kInput:
      return;  // Filled by the caller via PrepareInput().
    case LayerKind::kConv:
    case LayerKind::kFullyConnected: {
      if (storage == DType::kF32) {
        Conv2DF32(in0, pm.Filters(id), pm.Bias(id), n.desc.conv, out, c0, c1, aux);
      } else if (storage == DType::kF16) {
        Conv2DF16(in0, pm.Filters(id), pm.Bias(id), n.desc.conv, out, c0, c1, aux);
      } else if (compute == DType::kF16) {
        // GPU path: QUInt8 storage, on-the-fly F16 arithmetic (Section 4.2).
        Conv2DQU8ViaF16(in0, pm.Filters(id), pm.BiasF32(id), n.desc.conv, out, c0, c1, aux);
      } else if (cfg.per_channel_weights) {
        // CPU path with per-output-channel filter quantization (extension).
        Conv2DQU8PerChannel(in0, pm.Filters(id), pm.FilterChannelParams(id), pm.BiasI32(id),
                            n.desc.conv, out, c0, c1, aux);
      } else {
        // CPU path: integer arithmetic with int32 accumulation.
        Conv2DQU8(in0, pm.Filters(id), pm.BiasI32(id), n.desc.conv, out, c0, c1, aux);
      }
      return;
    }
    case LayerKind::kDepthwiseConv: {
      if (storage == DType::kF32) {
        DepthwiseConv2DF32(in0, pm.Filters(id), pm.Bias(id), n.desc.conv, out, c0, c1);
      } else if (storage == DType::kF16) {
        DepthwiseConv2DF16(in0, pm.Filters(id), pm.Bias(id), n.desc.conv, out, c0, c1);
      } else if (compute == DType::kF16) {
        DepthwiseConv2DQU8ViaF16(in0, pm.Filters(id), pm.BiasF32(id), n.desc.conv, out, c0, c1,
                                 aux);
      } else {
        DepthwiseConv2DQU8(in0, pm.Filters(id), pm.BiasI32(id), n.desc.conv, out, c0, c1, aux);
      }
      return;
    }
    case LayerKind::kPool: {
      // Pooling is monotonic / integer-friendly: run in the storage dtype on
      // both processors (no F16 conversion needed on the GPU path).
      if (storage == DType::kF32) {
        Pool2DF32(in0, n.desc.pool, out, c0, c1);
      } else if (storage == DType::kF16) {
        Pool2DF16(in0, n.desc.pool, out, c0, c1);
      } else {
        Pool2DQU8(in0, n.desc.pool, out, c0, c1);
      }
      return;
    }
    case LayerKind::kGlobalAvgPool: {
      if (storage == DType::kF32) {
        GlobalAvgPoolF32(in0, out, c0, c1);
      } else if (storage == DType::kF16) {
        GlobalAvgPoolF16(in0, out, c0, c1);
      } else {
        GlobalAvgPoolQU8(in0, out, c0, c1);
      }
      return;
    }
    case LayerKind::kRelu: {
      CopyChannelSlice(in0, out, c0, c1);
      if (storage == DType::kF32) {
        ReluF32(out, c0, c1);
      } else if (storage == DType::kF16) {
        ReluF16(out, c0, c1);
      } else {
        ReluQU8(out, c0, c1);
      }
      return;
    }
    case LayerKind::kLrn: {
      if (storage == DType::kF32) {
        LrnF32(in0, n.desc.lrn, out, c0, c1);
      } else if (storage == DType::kF16) {
        LrnF16(in0, n.desc.lrn, out, c0, c1);
      } else {
        LrnQU8(in0, n.desc.lrn, out, c0, c1);
      }
      return;
    }
    case LayerKind::kConcat: {
      assert(c0 == 0 && c1 == n.out_shape.c && "concat is never channel-split");
      std::vector<const Tensor*> ins;
      ins.reserve(n.inputs.size());
      for (int in : n.inputs) {
        ins.push_back(&act[static_cast<size_t>(in)]);
      }
      ConcatChannels(ins, out);
      return;
    }
    case LayerKind::kEltwiseAdd: {
      assert(n.inputs.size() == 2 && "executor supports binary residual adds");
      const Tensor& in1 = act[static_cast<size_t>(n.inputs[1])];
      if (storage == DType::kF32) {
        EltwiseAddF32(in0, in1, out, n.desc.conv.relu, c0, c1);
      } else if (storage == DType::kF16) {
        EltwiseAddF16(in0, in1, out, n.desc.conv.relu, c0, c1);
      } else {
        EltwiseAddQU8(in0, in1, out, n.desc.conv.relu, c0, c1);
      }
      return;
    }
    case LayerKind::kSoftmax: {
      assert(c0 == 0 && c1 == n.out_shape.c && "softmax is never channel-split");
      Softmax(in0, out);
      return;
    }
  }
}

void ComputeNode(const PreparedModel& pm, int id, ProcKind proc, std::vector<Tensor>& act,
                 memory::ScratchArena* scratch) {
  ComputeNodeSlice(pm, id, proc, act, 0, pm.graph().node(id).out_shape.c, scratch);
}

const Half* StageViaF16Cols(const PreparedModel& pm, int id, const std::vector<Tensor>& act,
                            memory::ScratchArena* arena) {
  if (arena == nullptr || pm.config().storage != DType::kQUInt8) {
    return nullptr;
  }
  const Graph& g = pm.graph();
  const Node& n = g.node(id);
  if (n.desc.kind != LayerKind::kConv && n.desc.kind != LayerKind::kFullyConnected) {
    return nullptr;
  }
  const Tensor& in0 = act[static_cast<size_t>(n.inputs[0])];
  return Conv2DQU8ViaF16StageCols(in0, FilterShape(g, n), n.desc.conv, arena);
}

int64_t NodeScratchBytes(const PreparedModel& pm, const Node& n) {
  // Only the dense conv/FC kernels use the scratch arena (im2col and F16
  // staging buffers); everything else computes in place or element-wise.
  if (n.desc.kind != LayerKind::kConv && n.desc.kind != LayerKind::kFullyConnected) {
    return 0;
  }
  const ExecConfig& cfg = pm.config();
  const Graph& g = pm.graph();
  const Shape& in_shape = g.node(n.inputs[0]).out_shape;
  // Graph-derived filter shape: identical to pm.Filters(n.id).shape() when
  // weights are materialized, but also available weight-free (the analyzer
  // and ulayer_verify --analyze size layouts without weights).
  const Shape filter_shape = FilterShape(g, n);
  // The plan decides at Run() time which processor (hence compute dtype)
  // executes the node; size for the worst case over both.
  int64_t bytes = 0;
  for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
    bytes = std::max(bytes, Conv2DScratchBytes(cfg.storage, cfg.ComputeFor(proc), in_shape,
                                               filter_shape, n.desc.conv));
  }
  // When every cooperative slice of this node would compute in kF16, the
  // executor stages the input columns once and shares them across slices;
  // the arena then holds the staging plus the (smaller) per-slice residual.
  if (cfg.storage == DType::kQUInt8 && cfg.ComputeFor(ProcKind::kCpu) == DType::kF16 &&
      cfg.ComputeFor(ProcKind::kGpu) == DType::kF16) {
    bytes = std::max(bytes,
                     Conv2DViaF16StagedColsBytes(in_shape, filter_shape, n.desc.conv) +
                         Conv2DScratchBytes(cfg.storage, DType::kF16, in_shape, filter_shape,
                                            n.desc.conv, /*staged_cols=*/true));
  }
  return bytes;
}

}  // namespace ulayer
