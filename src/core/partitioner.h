// NN partitioner (paper Section 6): builds the execution plan.
//
// For every layer the partitioner evaluates the candidate split ratios
// p in {0.25, 0.5, 0.75} (plus the single-processor fallbacks p = 0, 1)
// using the latency predictor, and picks the fastest. With branch
// distribution enabled, divergent branch groups are planned first: all
// branch-to-processor mappings are enumerated and the one minimizing the
// makespan estimate is chosen; layers inside a branch are never split
// (Section 5).
#pragma once

#include <memory>
#include <vector>

#include "core/plan.h"
#include "core/predictor.h"

namespace ulayer {

class Partitioner {
 public:
  // What the per-layer search minimizes. The paper optimizes latency; energy
  // and energy-delay-product objectives matter for battery-bound deployments
  // (Section 7.3) and are provided as an extension.
  enum class Objective { kLatency, kEnergy, kEdp };

  struct Options {
    // Enable channel-wise workload distribution (Section 3.2). When false,
    // every layer runs on its single fastest processor — i.e. the
    // layer-to-processor baseline of the evaluation.
    bool channel_distribution = true;
    // Enable branch distribution (Section 5).
    bool branch_distribution = true;
    // Candidate CPU fractions for cooperative layers.
    std::vector<double> split_candidates = {0.25, 0.5, 0.75};
    // Query the timing model directly instead of the fitted regression
    // (oracle ablation: isolates the cost of predictor error).
    bool use_oracle = false;
    Objective objective = Objective::kLatency;

    // --- Degraded-mode planning (DESIGN.md Section 10) ----------------------
    // When false the GPU is excluded entirely (circuit breaker tripped):
    // every layer is planned as a single-processor CPU step.
    bool gpu_available = true;
    // Scales every GPU latency estimate (observed thermal-throttle factor
    // from the runtime's degradation policy). 1.0 leaves the estimates
    // bit-identical to the unscaled path.
    double gpu_time_scale = 1.0;
  };

  // `graph` and `predictor` must outlive the partitioner.
  Partitioner(const Graph& graph, const TimingModel& timing, const ExecConfig& config,
              const LatencyPredictor& predictor, Options options);
  Partitioner(const Graph& graph, const TimingModel& timing, const ExecConfig& config,
              const LatencyPredictor& predictor)
      : Partitioner(graph, timing, config, predictor, Options()) {}

  Plan Build() const;

  // Estimated latency of the plan's critical path (used by tests and by the
  // Figure 12 bench to reason about mapping quality).
  double EstimateBranchGroupUs(const BranchGroup& group,
                               const std::vector<ProcKind>& assignment) const;

  // Estimated cooperative latency of one node at CPU fraction p.
  double EstimateCoopUs(const Node& node, double p) const;
  // Estimated single-processor latency of one node.
  double EstimateSingleUs(const Node& node, ProcKind proc) const;

  // Estimated energy (mJ) of one node: single-processor or cooperative.
  double EstimateSingleMj(const Node& node, ProcKind proc) const;
  double EstimateCoopMj(const Node& node, double p) const;

 private:
  double LayerUs(const Node& node, ProcKind proc, double fraction) const;

  const Graph& graph_;
  TimingModel timing_;
  ExecConfig config_;
  const LatencyPredictor& predictor_;
  Options options_;
};

}  // namespace ulayer
