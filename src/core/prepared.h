// PreparedModel: a Model transformed for execution under an ExecConfig.
//
// For QUInt8 storage this performs what the paper assumes exists up front
// ("ulayer assumes that the 8-bit linear quantization is already applied to
// the given NN", Section 6): per-layer weight quantization, activation-range
// calibration over a calibration set, and int32 bias quantization. For
// F16/F32 storage it converts weights to the storage dtype.
#pragma once

#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "models/model.h"
#include "quant/half.h"
#include "quant/quantize.h"

namespace ulayer {

class PreparedModel {
 public:
  // Model must outlive the PreparedModel. Weights must be materialized when
  // functional execution or calibration is intended.
  PreparedModel(const Model& model, const ExecConfig& config);

  // Thread-safety contract: a PreparedModel is immutable once prepared. The
  // constructor and Calibrate() are the only mutators, and both must finish
  // before the instance is shared. After that, any number of executors may
  // const-share one instance concurrently — every accessor below returns
  // references/pointers into caches written at prepare time only (verified by
  // the TSan concurrent-readers test in tests/prepared_test.cc). Copying and
  // moving are disabled so a shared instance cannot silently fork and
  // invalidate the raw cache pointers long-lived callers (the serving-layer
  // model cache, executor pools) hold into it.
  PreparedModel(const PreparedModel&) = delete;
  PreparedModel& operator=(const PreparedModel&) = delete;
  PreparedModel(PreparedModel&&) = delete;
  PreparedModel& operator=(PreparedModel&&) = delete;

  const Model& model() const { return *model_; }
  const Graph& graph() const { return model_->graph; }
  const ExecConfig& config() const { return config_; }

  // Runs the F32 reference over `inputs`, records per-node activation
  // ranges, derives QuantParams, and quantizes biases. Required before
  // functional QUInt8 execution. One input = the paper's naive
  // post-training quantization; many inputs = the calibrated ("fake quant
  // retrained") setting of Section 4.3.
  void Calibrate(const std::vector<Tensor>& inputs);
  bool calibrated() const { return calibrated_; }

  // Activation quantization parameters of node `id` (QUInt8 storage only).
  const QuantParams& ActivationParams(int id) const { return act_qp_[static_cast<size_t>(id)]; }
  // All per-node activation parameters (indexed by node id), for the
  // quantization-sanity verifier pass.
  const std::vector<QuantParams>& activation_params() const { return act_qp_; }

  // Weights in storage dtype. QUInt8 filters carry their QuantParams.
  const Tensor& Filters(int id) const { return weights_.at(id).filters; }
  // Per-output-channel filter params (config().per_channel_weights only).
  const PerChannelParams& FilterChannelParams(int id) const {
    return weights_.at(id).per_channel;
  }
  // Bias variants: int32 for the CPU QUInt8 path, F32 for the GPU on-the-fly
  // F16 path, storage-dtype for F16/F32 modes.
  const Tensor& BiasI32(int id) const { return weights_.at(id).bias_i32; }
  const Tensor& BiasF32(int id) const { return model_->weights.at(id).bias; }
  const Tensor& Bias(int id) const { return weights_.at(id).bias; }

  // Allocates the activation tensor for node `id` with the right dtype and
  // quantization parameters (softmax outputs are always F32).
  Tensor MakeActivation(int id) const;
  // Same dtype/quant-params setup, but as a non-owning view over
  // caller-managed storage (the executor's planned activation pool).
  Tensor MakeActivationView(int id, uint8_t* buffer) const;

  // Storage dtype of node `id`'s activation (softmax outputs are always F32).
  DType ActivationDType(int id) const;

  // Converts a user-supplied F32 input into the network storage dtype.
  Tensor PrepareInput(const Tensor& f32_input) const;

  // --- Prepare-time kernel caches (DESIGN.md Section 9) ---------------------
  // All return nullptr when the cache is absent (non-QUInt8 storage,
  // config().scratch_arena off, pre-Calibrate, or degenerate quant params);
  // kernels then fall back to per-call computation. Pointers index absolute
  // output channels.
  const Half* FiltersF16Ptr(int id) const;
  const Half* BiasF16Ptr(int id) const;
  const int32_t* FilterRowSumPtr(int id) const;
  const RequantScale* RequantPtr(int id) const;
  const RequantScale* PerChannelRequantPtr(int id) const;

  // Packed filter panels (kernels/pack.h) in each dtype the conv kernels
  // consume; built for dense conv layers only (kConv). FC layers are GEMV
  // (n = 1) where panels buy nothing and the classifier matrices dominate
  // model size, and depthwise kernels do not run through the GEMM.
  const uint8_t* PackedFiltersQU8Ptr(int id) const;
  const float* PackedFiltersF32Ptr(int id) const;
  const Half* PackedFiltersF16Ptr(int id) const;

 private:
  struct PreparedWeights {
    Tensor filters;   // storage dtype
    Tensor bias;      // storage dtype (F32/F16 modes)
    Tensor bias_i32;  // QUInt8 mode, filled by Calibrate().
    PerChannelParams per_channel;  // QUInt8 + per_channel_weights mode.

    // Prepare-time caches (QUInt8 storage + config.scratch_arena only).
    std::vector<Half> filters_f16;   // Dequantized filters, F16 (GPU path).
    std::vector<Half> bias_f16;      // F32 bias converted to F16 (GPU path).
    std::vector<int32_t> filter_rowsum;  // Raw uint8 row sums per out channel.
    // Packed panels of the filter matrix [OC, IC*KH*KW] (dense conv only;
    // the dtype matching `filters` plus the F16 pack of filters_f16).
    std::vector<uint8_t> filters_packed_qu8;
    std::vector<float> filters_packed_f32;
    std::vector<Half> filters_packed_f16;
    RequantScale requant;            // Per-tensor multiplier (Calibrate).
    bool has_requant = false;
    std::vector<RequantScale> requant_per_channel;  // Per-channel multipliers.
  };

  // Fills the calibration-independent caches (row sums, F16 operands) of one
  // quantized layer. Called from the constructor when config.scratch_arena.
  void BuildWeightCaches(const Node& n, PreparedWeights& pw) const;

  const Model* model_;
  ExecConfig config_;
  std::unordered_map<int, PreparedWeights> weights_;
  std::vector<QuantParams> act_qp_;
  bool calibrated_ = false;
};

// Compile-time pin of the const-share contract above: executors and serving
// caches share one prepared instance by reference, so nothing may copy it.
static_assert(!std::is_copy_constructible_v<PreparedModel> &&
                  !std::is_copy_assignable_v<PreparedModel>,
              "PreparedModel is const-shared across executors; copying would fork its caches");

}  // namespace ulayer
