#include "core/adapt.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ulayer {
namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t Fnv1a64(const void* data, size_t bytes, uint64_t basis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = basis;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

size_t ProcIndex(ProcKind proc) { return proc == ProcKind::kGpu ? 1 : 0; }

}  // namespace

CorrectionTable::CorrectionTable() {
  for (auto& row : scale_) {
    row = {1.0, 1.0};
  }
}

double CorrectionTable::Get(LayerKind kind, ProcKind proc) const {
  return scale_[static_cast<size_t>(kind)][ProcIndex(proc)];
}

void CorrectionTable::Set(LayerKind kind, ProcKind proc, double scale) {
  if (!std::isfinite(scale)) {
    return;
  }
  scale_[static_cast<size_t>(kind)][ProcIndex(proc)] = std::clamp(scale, kMinScale, kMaxScale);
}

void CorrectionTable::Update(LayerKind kind, ProcKind proc, double observed_ratio, double alpha) {
  if (!std::isfinite(observed_ratio) || observed_ratio <= 0.0) {
    return;
  }
  alpha = std::clamp(alpha, 0.0, 1.0);
  double& cell = scale_[static_cast<size_t>(kind)][ProcIndex(proc)];
  cell = std::clamp((1.0 - alpha) * cell + alpha * observed_ratio, kMinScale, kMaxScale);
}

bool CorrectionTable::IsIdentity() const {
  for (const auto& row : scale_) {
    if (row[0] != 1.0 || row[1] != 1.0) {
      return false;
    }
  }
  return true;
}

int32_t CorrectionTable::BucketOf(double scale, double growth) {
  if (!(scale > 0.0) || !(growth > 1.0)) {
    return 0;
  }
  return static_cast<int32_t>(std::llround(std::log(scale) / std::log(growth)));
}

uint64_t CorrectionTable::Fingerprint(double growth) const {
  uint64_t h = kFnvBasis;
  for (const auto& row : scale_) {
    for (double cell : row) {
      const int32_t bucket = BucketOf(cell, growth);
      h = Fnv1a64(&bucket, sizeof(bucket), h);
    }
  }
  return h;
}

std::string CorrectionTable::ToString() const {
  std::ostringstream os;
  bool any = false;
  for (size_t k = 0; k < scale_.size(); ++k) {
    for (size_t p = 0; p < 2; ++p) {
      if (scale_[k][p] == 1.0) {
        continue;
      }
      if (any) {
        os << "\n";
      }
      any = true;
      os << LayerKindName(static_cast<LayerKind>(k)) << "/" << (p == 1 ? "gpu" : "cpu");
      os.precision(6);
      os << " " << scale_[k][p];
    }
  }
  return any ? os.str() : "identity";
}

std::string PlanCacheKey::ToString() const {
  std::ostringstream os;
  os << "gpu=" << (gpu_available ? 1 : 0) << " scale_bucket=" << scale_bucket << " corrections=0x"
     << std::hex << correction_fp;
  return os.str();
}

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {}

const Plan* PlanCache::Lookup(const PlanCacheKey& key) {
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.last_use = ++tick_;
      ++stats_.hits;
      return &e.plan;
    }
  }
  ++stats_.misses;
  return nullptr;
}

void PlanCache::Insert(const PlanCacheKey& key, Plan plan) {
  if (capacity_ == 0) {
    return;
  }
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.plan = std::move(plan);
      e.last_use = ++tick_;
      ++stats_.insertions;
      return;
    }
  }
  if (entries_.size() >= capacity_) {
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.last_use < b.last_use; });
    entries_.erase(victim);
    ++stats_.evictions;
  }
  entries_.push_back(Entry{key, std::move(plan), ++tick_});
  ++stats_.insertions;
}

void PlanCache::Clear() {
  entries_.clear();
  tick_ = 0;
}

}  // namespace ulayer
