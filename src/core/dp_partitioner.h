// DpPartitioner: dynamic-programming plan construction that accounts for
// *cross-layer* synchronization costs.
//
// The paper's NN partitioner (and our Partitioner) chooses each layer's
// assignment locally; it never sees that putting layer i on the GPU forces a
// CPU-GPU sync if layer i-1 lives on the CPU. That blind spot is exactly why
// the layer-to-processor baseline can lose to a single processor (paper
// Figure 16, VGG-16 high-end). This planner fixes it with a DP over the
// network's backbone chain:
//
//   dp[i][s] = min over s' of dp[i-1][s'] + transition(s', s) + exec(i, s)
//
// where a state s is Single(CPU), Single(GPU) or Cooperative(p), and
// transition() charges one sync whenever the consumer needs the data on a
// device the producer did not leave it on.
//
// Branch groups are planned first (same enumeration as Partitioner) and
// collapsed into fixed super-steps; the DP runs over the remaining backbone.
// It is exact for chains — which is what the evaluation networks are once
// branch groups are collapsed — and falls back to the greedy result for any
// residual non-chain structure.
#pragma once

#include "core/partitioner.h"

namespace ulayer {

class DpPartitioner {
 public:
  struct Options {
    bool channel_distribution = true;
    bool branch_distribution = true;
    std::vector<double> split_candidates = {0.25, 0.5, 0.75};
    bool use_oracle = false;
  };

  DpPartitioner(const Graph& graph, const TimingModel& timing, const ExecConfig& config,
                const LatencyPredictor& predictor, Options options);
  DpPartitioner(const Graph& graph, const TimingModel& timing, const ExecConfig& config,
                const LatencyPredictor& predictor)
      : DpPartitioner(graph, timing, config, predictor, Options()) {}

  Plan Build() const;

  // Estimated end-to-end latency of the DP-optimal backbone (for studies).
  double EstimatedBackboneUs() const { return estimated_us_; }

 private:
  const Graph& graph_;
  TimingModel timing_;
  ExecConfig config_;
  const LatencyPredictor& predictor_;
  Options options_;
  mutable double estimated_us_ = 0.0;
};

}  // namespace ulayer
