// LatencyPredictor: Neurosurgeon-style regression latency estimates.
//
// The NN partitioner needs per-layer latency estimates for candidate
// split ratios without executing anything. Following the paper (Section 6),
// we extend Neurosurgeon's logarithmic regression: for each
// (layer kind, processor) pair we fit
//     log t = a + b*log(1 + MACs) + c*log(1 + bytes)
// over profiled samples, then scale the estimate by the channel fraction p.
// The fit is deliberately approximate (the profile is the ground truth); the
// partitioner tolerates the error, and bench/predictor_fidelity reports it.
#pragma once

#include <array>
#include <vector>

#include "core/adapt.h"
#include "core/config.h"
#include "nn/graph.h"
#include "soc/timing.h"

namespace ulayer {

class LatencyPredictor {
 public:
  // Fits the regression from profiled samples of every layer in `training`
  // graphs, measured on `timing` with the compute dtypes of `config`.
  // In the real system this profile comes from on-device measurements; here
  // the timing model plays that role.
  LatencyPredictor(const TimingModel& timing, const ExecConfig& config,
                   const std::vector<const Graph*>& training);

  // Predicted latency (us) of output-channel fraction `fraction` of `node`
  // on processor `proc` (kernel launch included).
  double PredictUs(const Graph& g, const Node& node, ProcKind proc, double fraction = 1.0) const;

  // Prediction error statistics against the timing model over a graph.
  struct Fidelity {
    double mean_abs_rel_err = 0.0;
    double max_abs_rel_err = 0.0;
    int samples = 0;
  };
  Fidelity Evaluate(const Graph& g) const;

  // Online drift corrections (DESIGN.md Section 16). PredictUs multiplies
  // the regression estimate by the per-(kind, proc) correction; an identity
  // table (the initial state) leaves predictions bit-identical to the
  // uncorrected path.
  const CorrectionTable& corrections() const { return corrections_; }
  // EWMA step of one cell toward an observed simulated/predicted ratio.
  void UpdateCorrection(LayerKind kind, ProcKind proc, double observed_ratio, double alpha) {
    corrections_.Update(kind, proc, observed_ratio, alpha);
  }
  // Deterministic replay: capture the correction state and restore it later
  // to re-run the exact same prediction sequence.
  CorrectionTable SnapshotCorrections() const { return corrections_; }
  void RestoreCorrections(const CorrectionTable& t) { corrections_ = t; }

 private:
  struct Coeffs {
    double a = 0.0, b = 0.0, c = 0.0;
    bool fitted = false;
  };

  static constexpr int kKinds = kLayerKindCount;
  const Coeffs& CoeffsFor(LayerKind kind, ProcKind proc) const;

  // Ground-truth sample used for fitting and fallback.
  double MeasureUs(const Graph& g, const Node& node, ProcKind proc, double fraction) const;

  TimingModel timing_;
  ExecConfig config_;
  std::array<std::array<Coeffs, 2>, kKinds> coeffs_{};
  CorrectionTable corrections_;
};

}  // namespace ulayer
