// ULayerRuntime: the top-level facade (Figure 13) tying together the NN
// partitioner, the latency predictor and the NN executor.
//
// Typical use:
//   Model model = MakeGoogLeNet();
//   ULayerRuntime rt(model, MakeExynos7420());
//   RunResult r = rt.Run();                 // simulate-only
//   // functional: materialize weights, calibrate, pass an input
//   model.MaterializeWeights();
//   ULayerRuntime rt2(model, MakeExynos7420());
//   rt2.Calibrate(calibration_inputs);
//   RunResult r2 = rt2.Run(&input);
#pragma once

#include <memory>

#include "core/executor.h"
#include "core/partitioner.h"

namespace ulayer {

class ULayerRuntime {
 public:
  struct Options {
    ExecConfig config = ExecConfig::ProcessorFriendly();
    Partitioner::Options partitioner;

    // --- Fault tolerance (DESIGN.md Section 10) -----------------------------
    // Fault plan installed on the executor. When empty, the ULAYER_FAULTS
    // environment spec is parsed instead (empty plan when unset too).
    fault::FaultPlan faults;
    // Replan after this many consecutive runs needing retries/fallbacks.
    int replan_after_failures = 2;
    // Replan when the observed-vs-predicted GPU latency ratio exceeds the
    // currently applied scale by this factor (thermal-throttle detection).
    double throttle_replan_ratio = 1.25;
    // Master switch for the degradation policy (health tracking + replans).
    bool degradation_replan = true;
  };

  // Per-device health the degradation policy tracks across runs.
  struct DeviceHealth {
    int consecutive_failures = 0;  // Runs in a row with retries/fallbacks.
    // Observed GPU kernel time over the timing model's expectation, from the
    // last run's KernelTrace (exactly 1.0 fault-free).
    double observed_over_predicted = 1.0;
    double applied_time_scale = 1.0;  // gpu_time_scale the current plan used.
    bool excluded = false;            // Circuit breaker: GPU out of the plan.
  };

  // `model` must outlive the runtime.
  ULayerRuntime(const Model& model, const SocSpec& soc, Options options);
  ULayerRuntime(const Model& model, const SocSpec& soc)
      : ULayerRuntime(model, soc, Options()) {}

  // Required before functional QUInt8 runs (no-op for other storage types).
  void Calibrate(const std::vector<Tensor>& inputs);

  const Plan& plan() const { return plan_; }
  const LatencyPredictor& predictor() const { return predictor_; }
  const PreparedModel& prepared() const { return prepared_; }
  const ExecConfig& config() const { return options_.config; }
  const DeviceHealth& gpu_health() const { return gpu_health_; }
  RunMode mode() const { return mode_; }
  int replans() const { return replans_; }

  // Runs the planned network. Functional when `input` != nullptr. After the
  // run, the degradation policy inspects the result: repeated failures or an
  // open circuit breaker exclude the GPU and replan CPU-only; an observed
  // throttle ratio beyond throttle_replan_ratio replans with GPU latency
  // estimates rescaled. RunResult::degradation carries the outcome.
  RunResult Run(const Tensor* input = nullptr);

 private:
  // Rebuilds plan_ with degraded-mode partitioner options.
  void Replan(bool gpu_available, double gpu_time_scale);
  // Observed/expected GPU kernel time over the run's trace (0 = no GPU work).
  double ObservedGpuRatio(const RunResult& r) const;
  void ApplyDegradationPolicy(const RunResult& r);

  const Model* model_;
  Options options_;
  TimingModel timing_;
  PreparedModel prepared_;
  LatencyPredictor predictor_;
  Plan plan_;
  Executor executor_;

  DeviceHealth gpu_health_;
  RunMode mode_ = RunMode::kNormal;
  int replans_ = 0;
};

}  // namespace ulayer
