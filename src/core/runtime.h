// ULayerRuntime: the top-level facade (Figure 13) tying together the NN
// partitioner, the latency predictor and the NN executor.
//
// Typical use:
//   Model model = MakeGoogLeNet();
//   ULayerRuntime rt(model, MakeExynos7420());
//   RunResult r = rt.Run();                 // simulate-only
//   // functional: materialize weights, calibrate, pass an input
//   model.MaterializeWeights();
//   ULayerRuntime rt2(model, MakeExynos7420());
//   rt2.Calibrate(calibration_inputs);
//   RunResult r2 = rt2.Run(&input);
#pragma once

#include <memory>

#include "core/executor.h"
#include "core/partitioner.h"

namespace ulayer {

class ULayerRuntime {
 public:
  struct Options {
    ExecConfig config = ExecConfig::ProcessorFriendly();
    Partitioner::Options partitioner;
  };

  // `model` must outlive the runtime.
  ULayerRuntime(const Model& model, const SocSpec& soc, Options options);
  ULayerRuntime(const Model& model, const SocSpec& soc)
      : ULayerRuntime(model, soc, Options()) {}

  // Required before functional QUInt8 runs (no-op for other storage types).
  void Calibrate(const std::vector<Tensor>& inputs);

  const Plan& plan() const { return plan_; }
  const LatencyPredictor& predictor() const { return predictor_; }
  const PreparedModel& prepared() const { return prepared_; }
  const ExecConfig& config() const { return options_.config; }

  // Runs the planned network. Functional when `input` != nullptr.
  RunResult Run(const Tensor* input = nullptr);

 private:
  Options options_;
  TimingModel timing_;
  PreparedModel prepared_;
  LatencyPredictor predictor_;
  Plan plan_;
  Executor executor_;
};

}  // namespace ulayer
