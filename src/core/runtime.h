// ULayerRuntime: the top-level facade (Figure 13) tying together the NN
// partitioner, the latency predictor and the NN executor.
//
// Typical use:
//   Model model = MakeGoogLeNet();
//   ULayerRuntime rt(model, MakeExynos7420());
//   RunResult r = rt.Run();                 // simulate-only
//   // functional: materialize weights, calibrate, pass an input
//   model.MaterializeWeights();
//   ULayerRuntime rt2(model, MakeExynos7420());
//   rt2.Calibrate(calibration_inputs);
//   RunResult r2 = rt2.Run(&input);
//
// Beyond one-shot execution the runtime closes the adaptation loop
// (DESIGN.md Section 16): each run's drift report feeds the predictor's
// correction table, sustained drift triggers a replan, and plans are cached
// by quantized device-health state so a revisited health state replans
// without a Partitioner::Build().
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/adapt.h"
#include "core/executor.h"
#include "core/partitioner.h"

namespace ulayer {

class ULayerRuntime {
 public:
  // Knobs of the drift-adaptation loop. Off by default: with `enabled`
  // false the runtime behaves exactly like the pre-adaptation policy
  // (scalar throttle factor, no correction table, no plan cache).
  struct AdaptOptions {
    bool enabled = false;
    // EWMA weight of each run's observed per-cell ratio.
    double ewma_alpha = 0.5;
    // Replan when the duration-weighted relative deviation (observed ratio
    // vs current correction) stays above this...
    double drift_replan_threshold = 0.10;
    // ...for this many consecutive runs.
    int sustained_runs = 2;
    // Log-space quantization step for cache keys and correction
    // fingerprints: scales within half a step bucket together.
    double bucket_growth = 1.05;
    // Plan-cache entries (0 disables caching).
    size_t plan_cache_capacity = 8;
  };

  struct Options {
    ExecConfig config = ExecConfig::ProcessorFriendly();
    Partitioner::Options partitioner;

    // --- Fault tolerance (DESIGN.md Section 10) -----------------------------
    // Fault plan installed on the executor. When empty, the ULAYER_FAULTS
    // environment spec is parsed instead (empty plan when unset too).
    fault::FaultPlan faults;
    // Replan after this many consecutive runs needing retries/fallbacks;
    // also the number of consecutive clean below-scale runs before a
    // throttled plan recovers to a lower scale.
    int replan_after_failures = 2;
    // Replan when the observed-vs-predicted GPU latency ratio exceeds the
    // currently applied scale by this factor (thermal-throttle detection);
    // recover when it falls below applied_time_scale / this factor.
    double throttle_replan_ratio = 1.25;
    // Master switch for the degradation policy (health tracking + replans).
    bool degradation_replan = true;
    // Probation: after this many runs without GPU evidence (breaker open,
    // or a rescaled plan that schedules no GPU work), replan optimistically
    // for one probe run and judge the GPU on its outcome. 0 disables.
    int gpu_probe_interval = 8;

    AdaptOptions adapt;

    // Observability/test seam: called with every replanned plan after it
    // verifies but before it is installed. A throwing hook aborts the
    // install (the runtime keeps its current plan and stays usable).
    std::function<void(const Plan&)> on_replan;
  };

  // Per-device health the degradation policy tracks across runs.
  struct DeviceHealth {
    int consecutive_failures = 0;  // Runs in a row with retries/fallbacks.
    // Observed GPU kernel time over the timing model's expectation, from the
    // last run with GPU evidence (exactly 1.0 fault-free).
    double observed_over_predicted = 1.0;
    // False when the last run scheduled no GPU kernels: the ratio above is
    // stale history, not evidence about the GPU's current speed.
    bool evidence_last_run = false;
    double applied_time_scale = 1.0;  // gpu_time_scale the current plan used.
    bool excluded = false;            // Circuit breaker: GPU out of the plan.
    // Two-way throttle tracking: clean runs in a row whose observed ratio
    // fell below applied_time_scale / throttle_replan_ratio.
    int clean_below_scale_runs = 0;
    int runs_since_probe = 0;  // Evidence-free runs since the last probe.
    bool probing = false;      // The current plan is a one-run GPU probe.
  };

  // `model` must outlive the runtime.
  ULayerRuntime(const Model& model, const SocSpec& soc, Options options);
  ULayerRuntime(const Model& model, const SocSpec& soc)
      : ULayerRuntime(model, soc, Options()) {}

  // Required before functional QUInt8 runs (no-op for other storage types).
  void Calibrate(const std::vector<Tensor>& inputs);

  const Plan& plan() const { return plan_; }
  const LatencyPredictor& predictor() const { return predictor_; }
  const PreparedModel& prepared() const { return prepared_; }
  const ExecConfig& config() const { return options_.config; }
  const DeviceHealth& gpu_health() const { return gpu_health_; }
  RunMode mode() const { return mode_; }
  int replans() const { return replans_; }

  // Adaptation-loop observability.
  const PlanCache& plan_cache() const { return plan_cache_; }
  // Full Partitioner::Build() invocations, including the constructor's
  // initial build. replans_ - (partitioner_builds_ - 1) replans were served
  // from the cache.
  int64_t partitioner_builds() const { return partitioner_builds_; }
  // Duration-weighted relative drift deviation per adapted run (the series
  // VerifyDriftConvergence checks over a stationary scenario).
  const std::vector<double>& drift_history() const { return drift_history_; }
  double last_relative_deviation() const { return last_relative_deviation_; }

  // Swaps the executor's fault plan between runs (multi-phase schedules:
  // throttle ramps, recovery scenarios).
  void SetFaultPlan(fault::FaultPlan faults);
  void set_on_replan(std::function<void(const Plan&)> hook) {
    options_.on_replan = std::move(hook);
  }

  // Deterministic replay: the complete adaptive state of the runtime at a
  // point in its run sequence. Restoring it and re-running the same inputs
  // under the same fault plans reproduces the original runs exactly. The
  // plan cache is not captured: cached plans equal freshly built ones by
  // determinism, so only hit/miss statistics can differ after a Restore.
  struct AdaptSnapshot {
    CorrectionTable corrections;
    DeviceHealth health;
    RunMode mode = RunMode::kNormal;
    Plan plan;
    int replans = 0;
    int drift_streak = 0;
    bool replan_pending = false;
    double last_relative_deviation = 0.0;
    std::vector<double> drift_history;
  };
  AdaptSnapshot Snapshot() const;
  void Restore(const AdaptSnapshot& snap);

  // Runs the planned network. Functional when `input` != nullptr. After the
  // run, the degradation policy inspects the result: repeated failures or an
  // open circuit breaker exclude the GPU and replan CPU-only (with periodic
  // probation probes so a recovered GPU rejoins); an observed throttle ratio
  // beyond throttle_replan_ratio replans with GPU latency estimates
  // rescaled, and sustained clean runs below the applied scale replan back
  // down. With adaptation enabled, the run's drift report additionally
  // updates the predictor's correction table and sustained drift replans
  // through the health-keyed plan cache. RunResult::degradation carries the
  // outcome.
  RunResult Run(const Tensor* input = nullptr);

 private:
  // Rebuilds plan_ with degraded-mode partitioner options (one
  // Partitioner::Build + verify + install).
  void Replan(bool gpu_available, double gpu_time_scale);
  // Replan through the plan cache: O(1) install on a health-key hit, full
  // Replan + cache insert on a miss. Falls back to Replan with adaptation
  // off.
  void InstallPlan(bool gpu_available, double gpu_time_scale);
  PlanCacheKey MakeCacheKey(bool gpu_available, double gpu_time_scale) const;
  // Observed/expected GPU kernel time over the run's trace; nullopt when the
  // run produced no GPU evidence (no GPU kernels scheduled).
  std::optional<double> ObservedGpuRatio(const RunResult& r) const;
  void ApplyDegradationPolicy(const RunResult& r);
  // Feeds the run's drift aggregate into the correction table and replans
  // on sustained drift.
  void ApplyAdaptation(const RunResult& r);

  static Options NormalizeOptions(Options options);

  const Model* model_;
  Options options_;
  TimingModel timing_;
  PreparedModel prepared_;
  LatencyPredictor predictor_;
  Plan plan_;
  Executor executor_;

  DeviceHealth gpu_health_;
  RunMode mode_ = RunMode::kNormal;
  int replans_ = 0;

  PlanCache plan_cache_;
  int64_t partitioner_builds_ = 0;
  int drift_streak_ = 0;
  // Set when sustained drift demands a replan, cleared only after one
  // succeeds: a throwing install (verification, observer hook) retries on
  // the next evidence run instead of silently running on the stale plan.
  bool replan_pending_ = false;
  double last_relative_deviation_ = 0.0;
  std::vector<double> drift_history_;
};

}  // namespace ulayer
