// Functional execution of one node slice under an ExecConfig.
//
// This is where processor-friendly quantization becomes concrete: with
// QUInt8 storage, a processor whose compute dtype is kQUInt8 runs the
// integer kernels (CPU path) while a processor whose compute dtype is kF16
// runs the on-the-fly-F16 kernels (GPU path). Both write disjoint channel
// slices of the same output tensor, so cooperative results merge for free.
#pragma once

#include <vector>

#include "core/prepared.h"
#include "memory/arena.h"
#include "soc/spec.h"

namespace ulayer {

// Computes output channels [c0, c1) of node `id` into act[id]. `act` is
// indexed by node id; producers must already be computed. For kConcat and
// kSoftmax the range must cover all channels (they are never split).
//
// `scratch`, when non-null, supplies kernel staging buffers (im2col, F16
// conversions) from a prepare-sized arena; the caller must Reset() it
// between kernel invocations. Null: kernels heap-allocate per call (legacy
// path). The PreparedModel's weight caches are forwarded to the kernels
// whenever present.
void ComputeNodeSlice(const PreparedModel& pm, int id, ProcKind proc, std::vector<Tensor>& act,
                      int64_t c0, int64_t c1, memory::ScratchArena* scratch = nullptr);

// Convenience: computes the full node on one processor.
void ComputeNode(const PreparedModel& pm, int id, ProcKind proc, std::vector<Tensor>& act,
                 memory::ScratchArena* scratch = nullptr);

// Worst-case scratch bytes one ComputeNodeSlice call on `n` may request, over
// every processor/compute-dtype this config could route it to. Used by the
// executor's prepare-time dry run to size its arena.
int64_t NodeScratchBytes(const PreparedModel& pm, const Node& n);

}  // namespace ulayer
