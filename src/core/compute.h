// Functional execution of one node slice under an ExecConfig.
//
// This is where processor-friendly quantization becomes concrete: with
// QUInt8 storage, a processor whose compute dtype is kQUInt8 runs the
// integer kernels (CPU path) while a processor whose compute dtype is kF16
// runs the on-the-fly-F16 kernels (GPU path). Both write disjoint channel
// slices of the same output tensor, so cooperative results merge for free.
#pragma once

#include <vector>

#include "core/prepared.h"
#include "soc/spec.h"

namespace ulayer {

// Computes output channels [c0, c1) of node `id` into act[id]. `act` is
// indexed by node id; producers must already be computed. For kConcat and
// kSoftmax the range must cover all channels (they are never split).
void ComputeNodeSlice(const PreparedModel& pm, int id, ProcKind proc, std::vector<Tensor>& act,
                      int64_t c0, int64_t c1);

// Convenience: computes the full node on one processor.
void ComputeNode(const PreparedModel& pm, int id, ProcKind proc, std::vector<Tensor>& act);

}  // namespace ulayer
