// Functional execution of one node slice under an ExecConfig.
//
// This is where processor-friendly quantization becomes concrete: with
// QUInt8 storage, a processor whose compute dtype is kQUInt8 runs the
// integer kernels (CPU path) while a processor whose compute dtype is kF16
// runs the on-the-fly-F16 kernels (GPU path). Both write disjoint channel
// slices of the same output tensor, so cooperative results merge for free.
#pragma once

#include <vector>

#include "core/prepared.h"
#include "memory/arena.h"
#include "soc/spec.h"

namespace ulayer {

// Computes output channels [c0, c1) of node `id` into act[id]. `act` is
// indexed by node id; producers must already be computed. For kConcat and
// kSoftmax the range must cover all channels (they are never split).
//
// `scratch`, when non-null, supplies kernel staging buffers (im2col, F16
// conversions) from a prepare-sized arena; the caller must Reset() it
// between kernel invocations. Null: kernels heap-allocate per call (legacy
// path). The PreparedModel's weight caches are forwarded to the kernels
// whenever present.
//
// `staged_cols`, when non-null, is the via-F16 staged input columns built by
// StageViaF16Cols for this node — forwarded as ConvAux::staged_cols so the
// via-F16 conv skips its per-call dequantize + im2col. Only meaningful for
// dense conv/FC slices whose compute dtype is kF16; ignored otherwise.
void ComputeNodeSlice(const PreparedModel& pm, int id, ProcKind proc, std::vector<Tensor>& act,
                      int64_t c0, int64_t c1, memory::ScratchArena* scratch = nullptr,
                      const Half* staged_cols = nullptr);

// Convenience: computes the full node on one processor.
void ComputeNode(const PreparedModel& pm, int id, ProcKind proc, std::vector<Tensor>& act,
                 memory::ScratchArena* scratch = nullptr);

// Builds the via-F16 staged input columns of node `id` into `arena`
// (kernels/conv.h Conv2DQU8ViaF16StageCols) — the dequantize + im2col
// producer work every via-F16 slice of the node would otherwise redo
// identically. Returns null (and allocates nothing) unless the node is a
// dense conv/FC under QUInt8 storage and `arena` is non-null. The executor
// calls this once per node when BOTH cooperative slices compute in kF16,
// takes an arena Mark, and ResetTo()s it between slices.
const Half* StageViaF16Cols(const PreparedModel& pm, int id, const std::vector<Tensor>& act,
                            memory::ScratchArena* arena);

// Worst-case scratch bytes one ComputeNodeSlice call on `n` may request, over
// every processor/compute-dtype this config could route it to — including the
// staged-columns pattern above when this config can trigger it (staging plus
// the per-slice residual share the arena).
int64_t NodeScratchBytes(const PreparedModel& pm, const Node& n);

}  // namespace ulayer
