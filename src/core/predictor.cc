#include "core/predictor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ulayer {
namespace {

// Latency floor for fit samples (microseconds): keeps log(t) finite for
// zero-latency samples without disturbing any realistic measurement.
constexpr double kMinSampleUs = 1e-9;

// Channel range covering the leading `fraction` of a node's output channels.
// A corrupt graph can carry c == 0 (zero output channels); std::clamp with
// hi < lo is UB, so such nodes map to the empty range instead.
int64_t FractionChannels(const Node& node, double fraction) {
  const int64_t c = node.out_shape.c;
  if (c <= 0) {
    return 0;
  }
  return std::clamp<int64_t>(static_cast<int64_t>(std::llround(fraction * static_cast<double>(c))),
                             1, c);
}

// Solves the 3x3 linear system A*x = b by Gaussian elimination with partial
// pivoting. Returns false if singular.
bool Solve3(double a[3][3], double b[3], double x[3]) {
  int idx[3] = {0, 1, 2};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::fabs(a[idx[r]][col]) > std::fabs(a[idx[pivot]][col])) {
        pivot = r;
      }
    }
    std::swap(idx[col], idx[pivot]);
    const double diag = a[idx[col]][col];
    if (std::fabs(diag) < 1e-12) {
      return false;
    }
    for (int r = col + 1; r < 3; ++r) {
      const double f = a[idx[r]][col] / diag;
      for (int cc = col; cc < 3; ++cc) {
        a[idx[r]][cc] -= f * a[idx[col]][cc];
      }
      b[idx[r]] -= f * b[idx[col]];
    }
  }
  for (int col = 2; col >= 0; --col) {
    double v = b[idx[col]];
    for (int cc = col + 1; cc < 3; ++cc) {
      v -= a[idx[col]][cc] * x[cc];
    }
    x[col] = v / a[idx[col]][col];
  }
  return true;
}

struct Accum {
  // Normal equations for least squares over features (1, x1, x2).
  double ata[3][3] = {};
  double atb[3] = {};
  int n = 0;

  void Add(double x1, double x2, double y) {
    const double f[3] = {1.0, x1, x2};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        ata[i][j] += f[i] * f[j];
      }
      atb[i] += f[i] * y;
    }
    ++n;
  }
};

}  // namespace

double LatencyPredictor::MeasureUs(const Graph& g, const Node& node, ProcKind proc,
                                   double fraction) const {
  if (fraction <= 0.0) {
    return 0.0;
  }
  const int64_t c_end = FractionChannels(node, fraction);
  if (c_end <= 0) {
    return 0.0;
  }
  const LayerWork w = ComputeWork(g, node, config_.storage, 0, c_end);
  return timing_.KernelLatencyUs(w, proc, config_.ComputeFor(proc), config_.cpu_threads);
}

LatencyPredictor::LatencyPredictor(const TimingModel& timing, const ExecConfig& config,
                                   const std::vector<const Graph*>& training)
    : timing_(timing), config_(config) {
  std::array<std::array<Accum, 2>, kKinds> acc{};
  const double fractions[] = {0.25, 0.5, 0.75, 1.0};
  for (const Graph* g : training) {
    for (const Node& node : g->nodes()) {
      if (node.desc.kind == LayerKind::kInput) {
        continue;
      }
      for (int pi = 0; pi < 2; ++pi) {
        const ProcKind proc = pi == 0 ? ProcKind::kCpu : ProcKind::kGpu;
        for (const double f : fractions) {
          const int64_t c_end = FractionChannels(node, f);
          const LayerWork w = ComputeWork(*g, node, config_.storage, 0, c_end);
          const double t =
              timing_.KernelLatencyUs(w, proc, config_.ComputeFor(proc), config_.cpu_threads);
          // A degenerate layer or a zero-cost timing configuration can yield
          // t == 0 (log -> -inf) or a non-finite t; either would poison the
          // normal equations for this (kind, proc) and every later
          // prediction. Floor at a sub-nanosecond epsilon and drop anything
          // still non-finite.
          if (!std::isfinite(t)) {
            continue;
          }
          const double log_t = std::log(std::max(t, kMinSampleUs));
          acc[static_cast<size_t>(node.desc.kind)][static_cast<size_t>(pi)].Add(
              std::log1p(w.macs), std::log1p(w.TotalBytes()), log_t);
        }
      }
    }
  }
  for (int kind = 0; kind < kKinds; ++kind) {
    for (int pi = 0; pi < 2; ++pi) {
      Accum& a = acc[static_cast<size_t>(kind)][static_cast<size_t>(pi)];
      if (a.n < 4) {
        continue;  // Too few samples: fall back to direct measurement.
      }
      double x[3];
      // Regularize lightly to keep near-singular fits stable (e.g. layers
      // whose MACs and bytes are perfectly correlated).
      for (int i = 0; i < 3; ++i) {
        a.ata[i][i] += 1e-9 * (1.0 + a.ata[i][i]);
      }
      if (Solve3(a.ata, a.atb, x)) {
        Coeffs& c = coeffs_[static_cast<size_t>(kind)][static_cast<size_t>(pi)];
        c.a = x[0];
        c.b = x[1];
        c.c = x[2];
        c.fitted = true;
      }
    }
  }
}

const LatencyPredictor::Coeffs& LatencyPredictor::CoeffsFor(LayerKind kind, ProcKind proc) const {
  return coeffs_[static_cast<size_t>(kind)][proc == ProcKind::kCpu ? 0 : 1];
}

double LatencyPredictor::PredictUs(const Graph& g, const Node& node, ProcKind proc,
                                   double fraction) const {
  if (fraction <= 0.0 || node.desc.kind == LayerKind::kInput) {
    return 0.0;
  }
  const double correction = corrections_.Get(node.desc.kind, proc);
  const Coeffs& c = CoeffsFor(node.desc.kind, proc);
  if (!c.fitted) {
    const double t = MeasureUs(g, node, proc, fraction);
    return correction != 1.0 ? correction * t : t;
  }
  const int64_t c_end = FractionChannels(node, fraction);
  if (c_end <= 0) {
    return 0.0;
  }
  const LayerWork w = ComputeWork(g, node, config_.storage, 0, c_end);
  const double t = std::exp(c.a + c.b * std::log1p(w.macs) + c.c * std::log1p(w.TotalBytes()));
  return correction != 1.0 ? correction * t : t;
}

LatencyPredictor::Fidelity LatencyPredictor::Evaluate(const Graph& g) const {
  Fidelity f;
  double sum = 0.0;
  for (const Node& node : g.nodes()) {
    if (node.desc.kind == LayerKind::kInput) {
      continue;
    }
    for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
      const double truth = MeasureUs(g, node, proc, 1.0);
      const double pred = PredictUs(g, node, proc, 1.0);
      const double rel = std::fabs(pred - truth) / std::max(truth, 1e-9);
      sum += rel;
      f.max_abs_rel_err = std::max(f.max_abs_rel_err, rel);
      ++f.samples;
    }
  }
  f.mean_abs_rel_err = f.samples > 0 ? sum / f.samples : 0.0;
  return f;
}

}  // namespace ulayer
