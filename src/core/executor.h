// NN executor (paper Section 6): runs a Plan over the ucl device timelines,
// optionally computing real tensor values.
//
// Timing semantics per step:
//  - kSingle / kBranch: one kernel on the assigned device; if a producer ran
//    on the other device, the dependency pays one CPU-GPU sync.
//  - kCooperative: the CPU issues the GPU command (asynchronously when
//    config.async_issue), both devices compute their channel slices, and a
//    merge synchronization joins the timelines:
//        done = max(cpu_end, gpu_end) + sync_us.
//    With zero-copy disabled, the GPU's view of the shared input/output is
//    staged through bandwidth-priced copies (overhead-ablation path).
#pragma once

#include <optional>
#include <vector>

#include "core/plan.h"
#include "core/prepared.h"
#include "memory/arena.h"
#include "ucl/ucl.h"

namespace ulayer {

// One kernel occurrence on a device timeline (for tracing/visualization).
struct KernelTrace {
  int node = -1;
  ProcKind proc = ProcKind::kCpu;
  double start_us = 0.0;
  double end_us = 0.0;
};

struct RunResult {
  double latency_us = 0.0;

  // Per-kernel schedule, in issue order (both devices interleaved).
  std::vector<KernelTrace> trace;

  double cpu_busy_us = 0.0;
  double gpu_busy_us = 0.0;
  int sync_count = 0;

  double cpu_energy_mj = 0.0;
  double gpu_energy_mj = 0.0;
  double idle_energy_mj = 0.0;
  double total_energy_mj = 0.0;

  // Network output (softmax probabilities), present in functional runs.
  std::optional<Tensor> output;

  double latency_ms() const { return latency_us * 1e-3; }
};

class Executor {
 public:
  // `pm` must outlive the executor.
  Executor(const PreparedModel& pm, const SocSpec& soc);

  // Executes `plan`. If `input` is non-null the run is functional: tensor
  // values are computed with the dtype-accurate kernels and the network
  // output is returned. Otherwise only the timing/energy simulation runs.
  RunResult Run(const Plan& plan, const Tensor* input = nullptr);

 private:
  struct NodeDone {
    ucl::Event event;
    bool on_cpu = false;
    bool on_gpu = false;
  };

  // Dependency ready-time for running `node` on `proc` (or cooperatively on
  // both when `both` is set), charging cross-device syncs.
  double ReadyTime(const Node& node, bool on_cpu, bool on_gpu,
                   const std::vector<NodeDone>& done, int* syncs) const;

  // Prepare-time memory planning (config.scratch_arena functional runs):
  // sizes the kernel scratch arena from a dry run over the graph and packs
  // the activation tensors into one liveness-planned pool. Idempotent; runs
  // once on the first functional Run().
  void EnsureMemoryPlan();

  const PreparedModel& pm_;
  ucl::Context ctx_;

  // Steady-state memory plan (DESIGN.md Section 9).
  memory::ScratchArena scratch_;
  std::vector<uint8_t> act_pool_;      // Shared activation storage.
  std::vector<int64_t> act_offsets_;   // Per-node offset into act_pool_.
  bool mem_ready_ = false;
};

}  // namespace ulayer
