// NN executor (paper Section 6): runs a Plan over the ucl device timelines,
// optionally computing real tensor values.
//
// Timing semantics per step:
//  - kSingle / kBranch: one kernel on the assigned device; if a producer ran
//    on the other device, the dependency pays one CPU-GPU sync.
//  - kCooperative: the CPU issues the GPU command (asynchronously when
//    config.async_issue), both devices compute their channel slices, and a
//    merge synchronization joins the timelines:
//        done = max(cpu_end, gpu_end) + sync_us.
//    With zero-copy disabled, the GPU's view of the shared input/output is
//    staged through bandwidth-priced copies (overhead-ablation path).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/memory_plan.h"
#include "core/plan.h"
#include "core/prepared.h"
#include "fault/fault.h"
#include "memory/arena.h"
#include "trace/trace.h"
#include "ucl/ucl.h"

namespace ulayer {

// One kernel occurrence on a device timeline (for tracing/visualization).
// Fault recovery annotates entries instead of hiding them: a failed GPU
// attempt appears tagged kFailedAttempt (timeouts span their occupancy
// window, fail-fast attempts are zero-width), the CPU re-execution of its
// work is tagged kFallback, and breaker-rerouted steps kRerouted — so
// gpu_busy_us and the trace tell the same story (DESIGN.md Section 11).
struct KernelTrace {
  int node = -1;
  ProcKind proc = ProcKind::kCpu;
  double start_us = 0.0;
  double end_us = 0.0;
  trace::FaultTag tag = trace::FaultTag::kNone;
};

// How the run ultimately executed (DESIGN.md Section 10).
enum class RunMode : uint8_t {
  kNormal,    // The planned schedule ran untouched.
  kDegraded,  // Faults were absorbed (retries/fallbacks/slowdowns/replans).
  kCpuOnly,   // The GPU circuit breaker is open; everything runs on the CPU.
};

std::string_view RunModeName(RunMode mode);

// Explicit severity lattice kNormal < kDegraded < kCpuOnly. Combining run
// modes must go through these — not std::max over the raw enum — so the
// ranking survives any reordering of the enumerators.
int RunModeSeverity(RunMode mode);
RunMode CombineRunMode(RunMode a, RunMode b);

// What fault recovery did during a run: injected faults, retries, CPU
// fallbacks, steps rerouted after the circuit breaker opened, and (at the
// runtime level) replans. All zeros on a fault-free run.
struct DegradationReport {
  int retries = 0;         // Backoff-and-retry attempts after failed enqueues.
  int fallbacks = 0;       // GPU work re-executed on the CPU after retries.
  int rerouted_steps = 0;  // Steps moved to the CPU by the open breaker.
  int replans = 0;         // Runtime-level plan rebuilds (ULayerRuntime).
  int64_t faults_injected = 0;  // Failure faults the injector fired.
  int64_t slowdowns = 0;        // Slowdown (throttle) faults applied.
  bool circuit_open = false;    // A kDeviceLost tripped the GPU breaker.
  RunMode final_mode = RunMode::kNormal;
  std::vector<fault::FaultEvent> events;  // Injected failures, in order.

  bool degraded() const {
    return retries > 0 || fallbacks > 0 || rerouted_steps > 0 || replans > 0 ||
           slowdowns > 0 || circuit_open;
  }
  // Multi-line human-readable summary (tools/ulayer_verify --faults).
  std::string ToString() const;
};

struct RunResult {
  double latency_us = 0.0;

  // Per-kernel schedule, in issue order (both devices interleaved).
  std::vector<KernelTrace> trace;

  double cpu_busy_us = 0.0;
  double gpu_busy_us = 0.0;
  int sync_count = 0;

  double cpu_energy_mj = 0.0;
  double gpu_energy_mj = 0.0;
  double idle_energy_mj = 0.0;
  double total_energy_mj = 0.0;

  // Fault-recovery accounting for this run (all zeros when fault-free).
  DegradationReport degradation;

  // Structured observability trace (DESIGN.md Section 11), recorded when
  // ExecConfig::trace or ULAYER_TRACE is set; empty (enabled == false)
  // otherwise. Export with trace::ChromeTraceJson, check invariants with
  // VerifyRunTrace, aggregate with trace::MetricsRegistry.
  trace::RunTrace run_trace;

  // Network output (softmax probabilities), present in functional runs.
  std::optional<Tensor> output;

  double latency_ms() const { return latency_us * 1e-3; }
};

class Executor {
 public:
  // `pm` must outlive the executor. Throws VerifyError when the prepared
  // config fails VerifyExecConfig (bad dtype combination, negative thread or
  // fault-policy knobs).
  Executor(const PreparedModel& pm, const SocSpec& soc);

  // Installs (or, with an empty plan, removes) the fault plan consulted by
  // every enqueue of subsequent Run calls. The injector is reset at the top
  // of each Run, so every run sees the same deterministic fault stream.
  void SetFaultPlan(fault::FaultPlan plan);
  const fault::FaultInjector* fault_injector() const { return injector_.get(); }

  // Executes `plan`. If `input` is non-null the run is functional: tensor
  // values are computed with the dtype-accurate kernels and the network
  // output is returned. Otherwise only the timing/energy simulation runs.
  //
  // Injected GPU faults are absorbed per the config's fault recovery policy
  // (retry with backoff, then CPU fallback); the outcome is reported in
  // RunResult::degradation. Unrecoverable faults (CPU-device failures, or
  // GPU failures with fault_cpu_fallback off) throw ulayer::Error(kFault);
  // the executor stays reusable and the next Run is unaffected.
  RunResult Run(const Plan& plan, const Tensor* input = nullptr);

  // Like Run, but writes into a caller-owned result whose vectors keep their
  // capacity across calls. After one warm-up call per plan shape, a
  // timing-only RunInto performs no heap allocation (the steady-state
  // contract of DESIGN.md Section 9, tested in tests/arena_test.cc) —
  // including cooperative plans with fault recovery and tracing enabled.
  // Functional runs still allocate for the cloned output tensor.
  //
  // Single-flight: an executor services one run at a time — the scratch
  // arena, packed activation pool and via-F16 staged columns
  // (StageViaF16Cols) are per-run state keyed by node only, not by request,
  // so concurrent runs through one executor would alias them. Re-entry while
  // a run is in flight throws Error(kInvalidArgument). Callers that serve
  // concurrent requests pool executors (src/serve ExecutorPool: one lane =
  // one executor) over a const-shared PreparedModel, which IS safe to share.
  void RunInto(const Plan& plan, const Tensor* input, RunResult& out);

 private:
  struct NodeDone {
    ucl::Event event;
    bool on_cpu = false;
    bool on_gpu = false;
  };

  // Dependency ready-time for running `node` on `proc` (or cooperatively on
  // both when `both` is set), charging cross-device syncs against done_ and
  // emitting kSync gap spans on `sink`.
  double ReadyTime(const Node& node, bool on_cpu, bool on_gpu, int* syncs,
                   trace::TraceSink& sink) const;

  // Prepare-time memory planning (config.scratch_arena functional runs):
  // sizes the kernel scratch arena from a dry run over the graph and packs
  // the activation tensors into one liveness-planned pool. Idempotent; runs
  // once on the first functional Run().
  void EnsureMemoryPlan();

  // Static memory-access analysis (ExecConfig::analyze, DESIGN.md §12): runs
  // analysis::AnalyzePlan over the packed layout once per plan fingerprint,
  // throwing VerifyError on A-series violations. A steady-state Run with an
  // unchanged plan re-hashes the plan (allocation-free) and returns.
  void EnsureAnalyzed(const Plan& plan);

  // Run body; RunInto wraps it so a mid-run throw leaves the executor
  // reusable.
  void RunImpl(const Plan& plan, const Tensor* input, RunResult& out);
  // Restores invariants after a mid-run throw: device timelines and the
  // scratch arena are reset and the injector rewound, so the next Run is
  // byte-identical to one on a fresh executor.
  void AbortRun();

  const PreparedModel& pm_;
  ucl::Context ctx_;
  std::unique_ptr<fault::FaultInjector> injector_;

  // Steady-state memory plan (DESIGN.md Section 9), built by
  // core/memory_plan.cc so the analyzer sees the identical layout.
  memory::ScratchArena scratch_;
  std::vector<uint8_t> act_pool_;  // Shared activation storage.
  MemoryLayout mem_layout_;        // Offsets/bytes/liveness of act_pool_.
  bool mem_ready_ = false;
  // Plan fingerprint of the last successful EnsureAnalyzed.
  uint64_t analyzed_fp_ = 0;
  bool analyzed_ = false;

  // Per-node completion state, reused across runs (capacity survives so a
  // steady-state RunInto never reallocates it).
  std::vector<NodeDone> done_;

  // Single-flight guard (see RunInto): set for the duration of a run so
  // accidental re-entry — e.g. a pooled executor handed to two requests —
  // fails loudly instead of aliasing the arena and staged columns. Atomic so
  // the misuse detection itself is race-free (the guard rejects concurrent
  // callers; it does not make the executor thread-safe).
  std::atomic<bool> in_flight_{false};
};

}  // namespace ulayer
