#include "core/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/compute.h"
#include "parallel/thread_pool.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

// CPU time spent making one asynchronous enqueue call (clEnqueueNDRangeKernel
// returning immediately). The GPU-side launch overhead is separate and lives
// in ProcessorSpec::kernel_launch_us.
constexpr double kIssueCallUs = 2.0;

}  // namespace

Executor::Executor(const PreparedModel& pm, const SocSpec& soc) : pm_(pm), ctx_(soc) {}

double Executor::ReadyTime(const Node& node, bool on_cpu, bool on_gpu,
                           const std::vector<NodeDone>& done, int* syncs) const {
  double ready = 0.0;
  for (int in : node.inputs) {
    const NodeDone& d = done[static_cast<size_t>(in)];
    double t = d.event.complete_us;
    // If this step needs the data on a device the producer did not run on,
    // the dependency crosses the CPU-GPU boundary and pays one sync.
    const bool needs_sync = (on_cpu && !d.on_cpu) || (on_gpu && !d.on_gpu);
    if (needs_sync) {
      t += ctx_.timing().SyncUs();
      ++*syncs;
    }
    ready = std::max(ready, t);
  }
  return ready;
}

RunResult Executor::Run(const Plan& plan, const Tensor* input) {
  const Graph& g = pm_.graph();
  const ExecConfig& cfg = pm_.config();
  if (cfg.verify) {
    // Reject structurally invalid plans before they turn into wrong latency
    // numbers or out-of-bounds tensor writes (functional runs).
    ThrowIfErrors("plan verification failed", VerifyPlan(g, plan, cfg));
  }
  assert(plan.nodes.size() == static_cast<size_t>(g.size()));
  // Apply this run's CPU thread budget to the functional kernels. The budget
  // is process-wide; the last configured run wins (matches how a real
  // runtime pins its worker pool once per session).
  parallel::SetCpuThreads(cfg.cpu_threads);
  ctx_.Reset();
  const TimingModel& timing = ctx_.timing();

  std::vector<NodeDone> done(static_cast<size_t>(g.size()));
  std::vector<KernelTrace> trace;
  trace.reserve(static_cast<size_t>(g.size()) + 16);
  int syncs = 0;

  // Functional state.
  std::vector<Tensor> act;
  if (input != nullptr) {
    act.resize(static_cast<size_t>(g.size()));
    act[0] = pm_.PrepareInput(*input);
    for (const Node& n : g.nodes()) {
      if (n.desc.kind != LayerKind::kInput) {
        act[static_cast<size_t>(n.id)] = pm_.MakeActivation(n.id);
      }
    }
  }

  for (const Node& n : g.nodes()) {
    const NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    NodeDone& nd = done[static_cast<size_t>(n.id)];
    if (n.desc.kind == LayerKind::kInput) {
      // The input buffer is zero-copy shared memory: visible to both devices.
      nd = NodeDone{ucl::Event{0.0}, true, true};
      continue;
    }

    const int64_t oc = n.out_shape.c;
    const ResolvedSplit split = ResolveSplit(a, oc);
    const bool cooperative =
        a.kind == StepKind::kCooperative && !split.cpu.empty() && !split.gpu.empty();
    if (!cooperative) {
      // Single-processor step (kSingle, kBranch, or a degenerate split where
      // one side's channel slice is empty).
      const ProcKind proc =
          a.kind == StepKind::kCooperative
              ? (split.gpu.empty() ? ProcKind::kCpu : ProcKind::kGpu)
              : a.proc;
      const bool on_cpu = proc == ProcKind::kCpu;
      const double ready = ReadyTime(n, on_cpu, !on_cpu, done, &syncs);
      const LayerWork w = ComputeWork(g, n, cfg.storage);
      const double body = timing.KernelBodyUs(w, proc, cfg.ComputeFor(proc), cfg.cpu_threads);
      const ucl::Event ev = ctx_.queue(proc).EnqueueKernelAt(ready, body, cfg.ComputeFor(proc),
                                                             w.TotalBytes());
      trace.push_back(KernelTrace{n.id, proc, ev.start_us, ev.complete_us});
      nd = NodeDone{ev, on_cpu, !on_cpu};
      if (input != nullptr) {
        ComputeNode(pm_, n.id, proc, act);
      }
      continue;
    }

    // --- Cooperative step: channel-wise workload distribution -------------
    const double ready = ReadyTime(n, /*on_cpu=*/true, /*on_gpu=*/true, done, &syncs);

    const LayerWork cpu_w = ComputeWork(g, n, cfg.storage, split.cpu.begin, split.cpu.end);
    const LayerWork gpu_w = ComputeWork(g, n, cfg.storage, split.gpu.begin, split.gpu.end);

    // The CPU issues the GPU command first (Section 6). Asynchronous issue
    // costs the CPU only the enqueue call; synchronous issue blocks the CPU
    // for the whole GPU launch.
    ucl::Device& cpu = ctx_.device(ProcKind::kCpu);
    double cpu_free;
    double gpu_ready;
    if (cfg.async_issue) {
      cpu_free = cpu.Schedule(ready, kIssueCallUs, DType::kF32, 0.0);
      gpu_ready = cpu_free;
    } else {
      cpu_free = cpu.Schedule(ready, ctx_.device(ProcKind::kGpu).spec().kernel_launch_us,
                              DType::kF32, 0.0);
      gpu_ready = cpu_free;
    }

    // Shared-memory handoff: zero-copy buffers pay cache maintenance only;
    // otherwise the GPU's input view and output slice are staged through
    // bandwidth-priced copies on the CPU.
    if (cfg.zero_copy) {
      gpu_ready += timing.MapUs();
    } else {
      const double stage_us =
          timing.MapUs() + gpu_w.input_bytes / (ctx_.soc().copy_gb_per_s * 1e3);
      cpu_free = cpu.Schedule(cpu_free, stage_us, DType::kF32, gpu_w.input_bytes);
      gpu_ready = cpu_free;
    }

    const ucl::Event gpu_ev = ctx_.queue(ProcKind::kGpu)
                                  .EnqueueKernelAt(gpu_ready, timing.KernelBodyUs(
                                                                  gpu_w, ProcKind::kGpu,
                                                                  cfg.ComputeFor(ProcKind::kGpu)),
                                                   cfg.ComputeFor(ProcKind::kGpu),
                                                   gpu_w.TotalBytes());
    // The CPU runs its own slice; its kernel-launch overhead applies.
    const double cpu_body = timing.KernelBodyUs(cpu_w, ProcKind::kCpu,
                                                cfg.ComputeFor(ProcKind::kCpu), cfg.cpu_threads);
    const ucl::Event cpu_ev = ctx_.queue(ProcKind::kCpu)
                                  .EnqueueKernelAt(cpu_free, cpu_body,
                                                   cfg.ComputeFor(ProcKind::kCpu),
                                                   cpu_w.TotalBytes());
    trace.push_back(KernelTrace{n.id, ProcKind::kGpu, gpu_ev.start_us, gpu_ev.complete_us});
    trace.push_back(KernelTrace{n.id, ProcKind::kCpu, cpu_ev.start_us, cpu_ev.complete_us});

    double merged = std::max(cpu_ev.complete_us, gpu_ev.complete_us);
    if (!cfg.zero_copy) {
      // Stage the GPU's output slice back for CPU visibility.
      merged = cpu.Schedule(merged, gpu_w.output_bytes / (ctx_.soc().copy_gb_per_s * 1e3),
                            DType::kF32, gpu_w.output_bytes);
    }
    merged += timing.SyncUs();
    ++syncs;
    // Both devices resume from the merge point (the executor waits for the
    // GPU before the next layer, Section 6).
    ctx_.device(ProcKind::kCpu).Schedule(merged, 0.0, DType::kF32, 0.0);
    ctx_.device(ProcKind::kGpu).Schedule(merged, 0.0, DType::kF32, 0.0);
    nd = NodeDone{ucl::Event{merged}, true, true};

    if (input != nullptr) {
      ComputeNodeSlice(pm_, n.id, ProcKind::kCpu, act, split.cpu.begin, split.cpu.end);
      ComputeNodeSlice(pm_, n.id, ProcKind::kGpu, act, split.gpu.begin, split.gpu.end);
    }
  }

  // --- Result assembly ------------------------------------------------------
  RunResult r;
  r.latency_us = ctx_.NowUs();
  r.trace = std::move(trace);
  r.sync_count = syncs;
  const EnergyModel energy(ctx_.soc());
  for (const ProcKind k : {ProcKind::kCpu, ProcKind::kGpu}) {
    const ucl::Device& d = ctx_.device(k);
    double e = 0.0;
    for (const DType t : {DType::kF32, DType::kF16, DType::kQUInt8}) {
      e += energy.ComputeEnergyMj(k, t, d.BusyUs(t), 0.0);
    }
    e += energy.DramEnergyMj(d.TotalBytes());
    if (k == ProcKind::kCpu) {
      r.cpu_busy_us = d.TotalBusyUs();
      r.cpu_energy_mj = e;
    } else {
      r.gpu_busy_us = d.TotalBusyUs();
      r.gpu_energy_mj = e;
    }
  }
  r.idle_energy_mj = energy.IdleEnergyMj(r.latency_us);
  r.total_energy_mj = r.cpu_energy_mj + r.gpu_energy_mj + r.idle_energy_mj;
  if (input != nullptr) {
    r.output = act[static_cast<size_t>(g.OutputId())];
  }
  return r;
}

}  // namespace ulayer
