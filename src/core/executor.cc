#include "core/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "analysis/analyzer.h"
#include "common/error.h"
#include "core/compute.h"
#include "parallel/thread_pool.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

// CPU time spent making one asynchronous enqueue call (clEnqueueNDRangeKernel
// returning immediately). The GPU-side launch overhead is separate and lives
// in ProcessorSpec::kernel_launch_us.
constexpr double kIssueCallUs = 2.0;

// Failure status for a fault injected at the executor's inline map point
// (the zero-copy handoff charges map cost directly instead of calling
// ucl::EnqueueMap, so the executor consults the injector itself).
ucl::Status MapFailureStatus(fault::FaultKind kind) {
  switch (kind) {
    case fault::FaultKind::kDeviceLost:
      return ucl::Status::kDeviceLost;
    case fault::FaultKind::kEnqueueFailed:
      return ucl::Status::kEnqueueFailed;
    default:
      return ucl::Status::kMapFailed;
  }
}

// Exact worst-case KernelTrace entry count for `plan`, derived from its step
// kinds. A cooperative step completes as a GPU and a CPU entry; a single step
// as one. With an injector attached, every GPU-touching step can additionally
// log one annotated failed attempt per allowed try (retries + 1); the
// fallback re-execution replaces the successful GPU entry, so the bound
// stays base + attempts.
size_t TraceCapacity(const Graph& g, const Plan& plan, const ExecConfig& cfg, bool faults) {
  const size_t per_gpu_fail =
      faults ? static_cast<size_t>(std::max(cfg.fault_max_retries, 0)) + 1 : 0;
  size_t cap = 0;
  for (const Node& n : g.nodes()) {
    if (n.desc.kind == LayerKind::kInput) {
      continue;
    }
    const NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    const bool coop = a.kind == StepKind::kCooperative;
    cap += coop ? 2 : 1;
    if (coop || a.proc == ProcKind::kGpu) {
      cap += per_gpu_fail;
    }
  }
  return cap;
}

// ULAYER_TRACE enables trace recording without touching the config; any
// value but "0" counts. Checked per run (getenv does not allocate).
bool TraceEnvEnabled() {
  const char* v = std::getenv("ULAYER_TRACE");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

std::string_view RunModeName(RunMode mode) {
  switch (mode) {
    case RunMode::kNormal:
      return "normal";
    case RunMode::kDegraded:
      return "degraded";
    case RunMode::kCpuOnly:
      return "cpu-only";
  }
  return "unknown";
}

int RunModeSeverity(RunMode mode) {
  switch (mode) {
    case RunMode::kNormal:
      return 0;
    case RunMode::kDegraded:
      return 1;
    case RunMode::kCpuOnly:
      return 2;
  }
  return 0;
}

RunMode CombineRunMode(RunMode a, RunMode b) {
  return RunModeSeverity(b) > RunModeSeverity(a) ? b : a;
}

std::string DegradationReport::ToString() const {
  std::ostringstream os;
  os << "mode: " << RunModeName(final_mode) << "\nfaults injected: " << faults_injected
     << "\nslowdowns: " << slowdowns << "\nretries: " << retries
     << "\nfallbacks: " << fallbacks << "\nrerouted steps: " << rerouted_steps
     << "\nreplans: " << replans
     << "\ncircuit breaker: " << (circuit_open ? "open" : "closed");
  for (const fault::FaultEvent& e : events) {
    os << "\n  " << e.ToString();
  }
  os << "\n";
  return os.str();
}

Executor::Executor(const PreparedModel& pm, const SocSpec& soc) : pm_(pm), ctx_(soc) {
  // A config the kernels cannot execute should fail at construction, not as
  // garbage tensors or a crash mid-run.
  ThrowIfErrors("exec config verification failed", VerifyExecConfig(pm.config()));
}

void Executor::SetFaultPlan(fault::FaultPlan plan) {
  if (plan.empty()) {
    ctx_.SetFaultInjector(nullptr);
    injector_.reset();
    return;
  }
  injector_ = std::make_unique<fault::FaultInjector>(std::move(plan));
  ctx_.SetFaultInjector(injector_.get());
}

void Executor::EnsureMemoryPlan() {
  if (mem_ready_) {
    return;
  }
  // Scratch sizing, liveness and the concurrency-safe pool packing live in
  // core/memory_plan.cc so the static analyzer proves invariants about the
  // exact layout the executor runs over.
  mem_layout_ = BuildMemoryLayout(pm_);
  scratch_.Reserve(static_cast<size_t>(mem_layout_.scratch_bytes));
  act_pool_.assign(static_cast<size_t>(mem_layout_.pool_bytes), 0);
  mem_ready_ = true;
}

void Executor::EnsureAnalyzed(const Plan& plan) {
  // FNV-1a over every plan field the analyzer's unit extraction consults, so
  // a steady-state Run with an unchanged plan skips the analysis entirely
  // (and allocates nothing).
  uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  for (const NodeAssignment& a : plan.nodes) {
    mix(static_cast<uint64_t>(a.kind));
    mix(static_cast<uint64_t>(a.proc));
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(a.cpu_fraction));
    std::memcpy(&bits, &a.cpu_fraction, sizeof(bits));
    mix(bits);
    std::memcpy(&bits, &a.gpu_fraction, sizeof(bits));
    mix(bits);
    mix(static_cast<uint64_t>(a.cpu_slice.begin));
    mix(static_cast<uint64_t>(a.cpu_slice.end));
    mix(static_cast<uint64_t>(a.gpu_slice.begin));
    mix(static_cast<uint64_t>(a.gpu_slice.end));
  }
  for (const BranchPlan& bp : plan.branch_plans) {
    for (const ProcKind p : bp.assignment) {
      mix(static_cast<uint64_t>(p) + 0x9e3779b9ull);
    }
  }
  if (analyzed_ && analyzed_fp_ == h) {
    return;
  }
  ThrowIfErrors("memory-access analysis", analysis::AnalyzePlan(pm_, plan, mem_layout_));
  analyzed_ = true;
  analyzed_fp_ = h;
}

double Executor::ReadyTime(const Node& node, bool on_cpu, bool on_gpu, int* syncs,
                           trace::TraceSink& sink) const {
  double ready = 0.0;
  for (int in : node.inputs) {
    const NodeDone& d = done_[static_cast<size_t>(in)];
    double t = d.event.complete_us;
    // If this step needs the data on a device the producer did not run on,
    // the dependency crosses the CPU-GPU boundary and pays one sync.
    const bool needs_sync = (on_cpu && !d.on_cpu) || (on_gpu && !d.on_gpu);
    if (needs_sync) {
      const double sync_us = ctx_.timing().SyncUs();
      // The gap is attributed to the side that lacked the data.
      if (trace::Span* s = sink.AddSpan(
              trace::SpanKind::kSync, node.id,
              (on_cpu && !d.on_cpu) ? ProcKind::kCpu : ProcKind::kGpu, t, t + sync_us)) {
        s->op = node.desc.kind;
        s->overhead_us = sync_us;
      }
      t += sync_us;
      ++*syncs;
    }
    ready = std::max(ready, t);
  }
  return ready;
}

RunResult Executor::Run(const Plan& plan, const Tensor* input) {
  RunResult r;
  RunInto(plan, input, r);
  return r;
}

void Executor::RunInto(const Plan& plan, const Tensor* input, RunResult& out) {
  // Single-flight guard: one executor owns one arena / activation pool /
  // staged via-F16 columns, so a second run entering while one is active
  // would alias them. Serving layers must pool executors (one per lane)
  // instead of sharing one across concurrent requests.
  if (in_flight_.exchange(true, std::memory_order_acq_rel)) {
    throw Error(ErrorCode::kInvalidArgument,
                "Executor::RunInto re-entered while a run is in flight; an executor is "
                "single-flight (its scratch arena and staged columns are per-run state) — "
                "use one executor per concurrent request");
  }
  try {
    RunImpl(plan, input, out);
  } catch (...) {
    in_flight_.store(false, std::memory_order_release);
    AbortRun();
    throw;
  }
  in_flight_.store(false, std::memory_order_release);
}

void Executor::AbortRun() {
  // A mid-run throw must leave the executor reusable: rewind the device
  // timelines, the scratch arena's bump pointer and the fault stream so the
  // next Run is byte-identical to one on a freshly constructed executor.
  ctx_.Reset();
  scratch_.Reset();
  if (injector_ != nullptr) {
    injector_->ResetRun();
  }
}

void Executor::RunImpl(const Plan& plan, const Tensor* input, RunResult& out) {
  const Graph& g = pm_.graph();
  const ExecConfig& cfg = pm_.config();
  if (cfg.verify) {
    // Reject structurally invalid plans before they turn into wrong latency
    // numbers or out-of-bounds tensor writes (functional runs).
    ThrowIfErrors("plan verification failed", VerifyPlan(g, plan, cfg));
  }
  assert(plan.nodes.size() == static_cast<size_t>(g.size()));
  // Apply this run's CPU thread budget to the functional kernels. The budget
  // is process-wide; the last configured run wins (matches how a real
  // runtime pins its worker pool once per session).
  parallel::SetCpuThreads(cfg.cpu_threads);
  ctx_.Reset();
  fault::FaultInjector* fi = injector_.get();
  if (fi != nullptr) {
    fi->ResetRun();
  }
  const TimingModel& timing = ctx_.timing();

  // --- Result reset ---------------------------------------------------------
  // `out` may be a reused result (RunInto): every field is rewritten below
  // and the vectors are cleared in place so their capacity survives — after
  // one warm-up run per plan shape, a timing-only run allocates nothing.
  out.latency_us = 0.0;
  out.cpu_busy_us = out.gpu_busy_us = 0.0;
  out.sync_count = 0;
  out.cpu_energy_mj = out.gpu_energy_mj = out.idle_energy_mj = out.total_energy_mj = 0.0;
  out.output.reset();
  out.trace.clear();
  // Sized from the plan's step kinds and the fault-retry policy, not a flat
  // graph-size guess: branchy fault-heavy plans used to outgrow the old
  // g.size() + 16 reservation and reallocate mid-run.
  out.trace.reserve(TraceCapacity(g, plan, cfg, fi != nullptr));
  DegradationReport& rep = out.degradation;
  rep.retries = 0;
  rep.fallbacks = 0;
  rep.rerouted_steps = 0;
  rep.replans = 0;
  rep.faults_injected = 0;
  rep.slowdowns = 0;
  rep.circuit_open = false;
  rep.final_mode = RunMode::kNormal;
  rep.events.clear();

  // --- Tracing (DESIGN.md Section 11) ---------------------------------------
  // The sink is null when tracing is off: every recording call below is a
  // no-op and the Schedule sequence — hence the simulated timeline — is
  // bit-identical to an untraced run.
  const bool tracing = cfg.trace || TraceEnvEnabled();
  out.run_trace.Clear();
  out.run_trace.enabled = tracing;
  trace::TraceSink sink(tracing ? &out.run_trace : nullptr);

  // --- Fault recovery state (DESIGN.md Section 10) --------------------------
  bool gpu_lost = false;  // Circuit breaker; open pins the rest CPU-only.
  ucl::Device& cpu_dev = ctx_.device(ProcKind::kCpu);

  // Index of the most recent injected FaultEvent, for linking annotated
  // spans back to the injector log (-1 when none fired yet).
  const auto last_fault_event = [&]() -> int {
    return fi != nullptr && !fi->events().empty() ? static_cast<int>(fi->events().size()) - 1
                                                  : -1;
  };

  // Records one completed kernel on the schedule: the KernelTrace entry and,
  // when tracing, the enriched kernel span. `body_us` is the timing model's
  // body prediction (pre-throttle), so predicted_us stays the fault-free
  // expectation the drift table compares against.
  const auto record_kernel = [&](const Node& n, ProcKind proc, const ucl::Event& ev,
                                 const LayerWork& w, double body_us, int64_t c_begin,
                                 int64_t c_end, trace::FaultTag tag, int fault_event) {
    out.trace.push_back(KernelTrace{n.id, proc, ev.start_us, ev.complete_us, tag});
    if (trace::Span* s = sink.AddSpan(trace::SpanKind::kKernel, n.id, proc, ev.start_us,
                                      ev.complete_us)) {
      const double launch = ctx_.device(proc).spec().kernel_launch_us;
      s->op = n.desc.kind;
      s->compute = cfg.ComputeFor(proc);
      s->c_begin = c_begin;
      s->c_end = c_end;
      s->bytes = w.TotalBytes();
      s->macs = w.macs;
      s->overhead_us = launch;
      s->predicted_us = launch + body_us;
      s->fault = tag;
      s->fault_event = fault_event;
    }
  };

  // Enqueues on the CPU queue. The CPU is the last-resort device, so a
  // failure here is unrecoverable and aborts the run.
  const auto must_cpu = [&](const Node& n, double ready, double body, DType compute,
                            double bytes) {
    sink.QueueDelta(ProcKind::kCpu, ready, +1);
    const ucl::EnqueueResult res =
        ctx_.queue(ProcKind::kCpu).EnqueueKernelAt(ready, body, compute, bytes);
    if (!res.ok()) {
      throw Error(ErrorCode::kFault,
                  "node " + std::to_string(n.id) + ": cpu enqueue failed (" +
                      std::string(ucl::StatusName(res.status)) + ") with no fallback device",
                  n.id, ProcKind::kCpu);
    }
    sink.QueueDelta(ProcKind::kCpu, res.event.complete_us, -1);
    return res.event;
  };

  // Runs one GPU attempt with bounded exponential backoff between retries.
  // The host thread owns the retry loop, so backoff is charged to the CPU
  // timeline. Each failed attempt stays on the record — an annotated
  // KernelTrace entry plus a kAttempt span linked to the injected fault —
  // instead of silently vanishing from the schedule. Returns nullopt when
  // unrecovered; kDeviceLost also opens the circuit breaker. `*retried`
  // reports whether the returned success needed retries.
  const auto retry_gpu = [&](const Node& n, double base, const auto& attempt,
                             bool* retried) -> std::optional<ucl::Event> {
    *retried = false;
    for (int tries = 0;; ++tries) {
      sink.QueueDelta(ProcKind::kGpu, base, +1);
      const ucl::EnqueueResult res = attempt(base);
      sink.QueueDelta(ProcKind::kGpu, res.event.complete_us, -1);
      if (res.ok()) {
        *retried = tries > 0;
        return res.event;
      }
      // The aborted attempt: timeouts occupied the device over the event's
      // window (the injector charged it); fail-fast failures are zero-width.
      const int fev = last_fault_event();
      out.trace.push_back(KernelTrace{n.id, ProcKind::kGpu, res.event.start_us,
                                      res.event.complete_us, trace::FaultTag::kFailedAttempt});
      if (trace::Span* s = sink.AddSpan(trace::SpanKind::kAttempt, n.id, ProcKind::kGpu,
                                        res.event.start_us, res.event.complete_us)) {
        s->op = n.desc.kind;
        s->compute = cfg.ComputeFor(ProcKind::kGpu);
        s->fault = trace::FaultTag::kFailedAttempt;
        s->fault_event = fev;
      }
      if (res.status == ucl::Status::kDeviceLost) {
        gpu_lost = true;
        rep.circuit_open = true;
        return std::nullopt;
      }
      if (tries >= cfg.fault_max_retries) {
        return std::nullopt;
      }
      ++rep.retries;
      const double backoff = std::ldexp(cfg.fault_backoff_us, std::min(tries, 20));
      double b0 = 0.0;
      base = cpu_dev.Schedule(std::max(base, res.event.complete_us), backoff, DType::kF32, 0.0,
                              &b0);
      if (trace::Span* s =
              sink.AddSpan(trace::SpanKind::kBackoff, n.id, ProcKind::kCpu, b0, base)) {
        s->op = n.desc.kind;
        s->overhead_us = backoff;
        s->fault_event = fev;
      }
    }
  };

  done_.assign(static_cast<size_t>(g.size()), NodeDone{});
  int syncs = 0;

  // Functional state. With config.scratch_arena the activation tensors are
  // views into a liveness-planned pool and kernel staging buffers come from
  // the prepare-sized arena: steady-state runs allocate nothing.
  std::vector<Tensor> act;
  memory::ScratchArena* scratch = nullptr;
  if (input != nullptr) {
    if (cfg.scratch_arena) {
      EnsureMemoryPlan();
      if (cfg.analyze) {
        EnsureAnalyzed(plan);
      }
      scratch = &scratch_;
    }
    act.resize(static_cast<size_t>(g.size()));
    act[0] = pm_.PrepareInput(*input);
    for (const Node& n : g.nodes()) {
      if (n.desc.kind != LayerKind::kInput) {
        act[static_cast<size_t>(n.id)] =
            cfg.scratch_arena
                ? pm_.MakeActivationView(
                      n.id, act_pool_.data() + mem_layout_.offsets[static_cast<size_t>(n.id)])
                : pm_.MakeActivation(n.id);
      }
    }
  }

  for (const Node& n : g.nodes()) {
    const NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    NodeDone& nd = done_[static_cast<size_t>(n.id)];
    if (n.desc.kind == LayerKind::kInput) {
      // The input buffer is zero-copy shared memory: visible to both devices.
      nd = NodeDone{ucl::Event{0.0}, true, true};
      continue;
    }
    if (fi != nullptr) {
      fi->set_current_node(n.id);
    }

    const int64_t oc = n.out_shape.c;
    const ResolvedSplit split = ResolveSplit(a, oc);
    bool cooperative =
        a.kind == StepKind::kCooperative && !split.cpu.empty() && !split.gpu.empty();
    // Single-processor step (kSingle, kBranch, or a degenerate split where
    // one side's channel slice is empty).
    ProcKind proc = a.kind == StepKind::kCooperative
                        ? (split.gpu.empty() ? ProcKind::kCpu : ProcKind::kGpu)
                        : a.proc;
    // Open circuit breaker: every remaining GPU-touching step reroutes to a
    // single-processor CPU step.
    trace::FaultTag tag = trace::FaultTag::kNone;
    if (gpu_lost && (cooperative || proc == ProcKind::kGpu)) {
      cooperative = false;
      proc = ProcKind::kCpu;
      ++rep.rerouted_steps;
      tag = trace::FaultTag::kRerouted;
    }
    if (!cooperative) {
      const bool gpu_step = proc == ProcKind::kGpu;
      const double ready = ReadyTime(n, !gpu_step, gpu_step, &syncs, sink);
      const LayerWork w = ComputeWork(g, n, cfg.storage);
      const double body = timing.KernelBodyUs(w, proc, cfg.ComputeFor(proc), cfg.cpu_threads);
      ucl::Event ev;
      if (gpu_step) {
        bool retried = false;
        const std::optional<ucl::Event> got = retry_gpu(n, ready,
                                                        [&](double b) {
                                                          return ctx_.queue(ProcKind::kGpu)
                                                              .EnqueueKernelAt(
                                                                  b, body,
                                                                  cfg.ComputeFor(ProcKind::kGpu),
                                                                  w.TotalBytes());
                                                        },
                                                        &retried);
        if (got.has_value()) {
          ev = *got;
          if (retried) {
            tag = trace::FaultTag::kRetried;
          }
        } else {
          // Retries exhausted (or device lost): re-execute the whole layer
          // on the CPU, paying one sync to move the inputs over.
          if (!cfg.fault_cpu_fallback) {
            throw Error(ErrorCode::kFault,
                        "node " + std::to_string(n.id) +
                            ": gpu enqueue unrecovered and cpu fallback is disabled",
                        n.id, ProcKind::kGpu);
          }
          ++rep.fallbacks;
          proc = ProcKind::kCpu;
          tag = trace::FaultTag::kFallback;
          const double fb_base = std::max(ready, cpu_dev.now_us());
          const double fb_ready = fb_base + timing.SyncUs();
          ++syncs;
          if (trace::Span* s =
                  sink.AddSpan(trace::SpanKind::kSync, n.id, ProcKind::kCpu, fb_base, fb_ready)) {
            s->op = n.desc.kind;
            s->overhead_us = timing.SyncUs();
            s->fault = trace::FaultTag::kFallback;
            s->fault_event = last_fault_event();
          }
          const double fb_body =
              timing.KernelBodyUs(w, ProcKind::kCpu, cfg.ComputeFor(ProcKind::kCpu),
                                  cfg.cpu_threads);
          ev = must_cpu(n, fb_ready, fb_body, cfg.ComputeFor(ProcKind::kCpu), w.TotalBytes());
          record_kernel(n, ProcKind::kCpu, ev, w, fb_body, 0, oc, tag, last_fault_event());
          nd = NodeDone{ev, true, false};
          if (input != nullptr) {
            if (scratch != nullptr) {
              scratch->Reset();
            }
            ComputeNode(pm_, n.id, proc, act, scratch);
          }
          continue;
        }
      } else {
        ev = must_cpu(n, ready, body, cfg.ComputeFor(ProcKind::kCpu), w.TotalBytes());
      }
      record_kernel(n, proc, ev, w, body, 0, oc, tag,
                    tag == trace::FaultTag::kNone ? -1 : last_fault_event());
      nd = NodeDone{ev, proc == ProcKind::kCpu, proc == ProcKind::kGpu};
      if (input != nullptr) {
        if (scratch != nullptr) {
          scratch->Reset();
        }
        ComputeNode(pm_, n.id, proc, act, scratch);
      }
      continue;
    }

    // --- Cooperative step: channel-wise workload distribution -------------
    const double ready = ReadyTime(n, /*on_cpu=*/true, /*on_gpu=*/true, &syncs, sink);

    const LayerWork cpu_w = ComputeWork(g, n, cfg.storage, split.cpu.begin, split.cpu.end);
    const LayerWork gpu_w = ComputeWork(g, n, cfg.storage, split.gpu.begin, split.gpu.end);

    // The CPU issues the GPU command first (Section 6). Asynchronous issue
    // costs the CPU only the enqueue call; synchronous issue blocks the CPU
    // for the whole GPU launch.
    ucl::Device& cpu = ctx_.device(ProcKind::kCpu);
    const double issue_cost = cfg.async_issue
                                  ? kIssueCallUs
                                  : ctx_.device(ProcKind::kGpu).spec().kernel_launch_us;
    double issue0 = 0.0;
    double cpu_free = cpu.Schedule(ready, issue_cost, DType::kF32, 0.0, &issue0);
    double gpu_ready = cpu_free;
    if (trace::Span* s =
            sink.AddSpan(trace::SpanKind::kIssue, n.id, ProcKind::kCpu, issue0, cpu_free)) {
      s->op = n.desc.kind;
      s->overhead_us = issue_cost;
    }

    // Shared-memory handoff: zero-copy buffers pay cache maintenance only
    // (charged inside the retried GPU attempt below, where it is also the
    // map fault-injection point); otherwise the GPU's input view and output
    // slice are staged through bandwidth-priced copies on the CPU.
    if (!cfg.zero_copy) {
      const double stage_us =
          timing.MapUs() + gpu_w.input_bytes / (ctx_.soc().copy_gb_per_s * 1e3);
      double st0 = 0.0;
      cpu_free = cpu.Schedule(cpu_free, stage_us, DType::kF32, gpu_w.input_bytes, &st0);
      if (trace::Span* s =
              sink.AddSpan(trace::SpanKind::kStage, n.id, ProcKind::kCpu, st0, cpu_free)) {
        s->op = n.desc.kind;
        s->bytes = gpu_w.input_bytes;
        s->overhead_us = timing.MapUs();
      }
      gpu_ready = cpu_free;
    }

    // One GPU attempt: the inline map (zero-copy handoff, subject to map
    // faults) followed by the kernel enqueue. Retried as a unit.
    const double gpu_body =
        timing.KernelBodyUs(gpu_w, ProcKind::kGpu, cfg.ComputeFor(ProcKind::kGpu));
    const auto gpu_attempt = [&](double base) -> ucl::EnqueueResult {
      double gr = base;
      if (cfg.zero_copy) {
        double map_us = timing.MapUs();
        if (fi != nullptr) {
          if (const auto d = fi->OnCall(ProcKind::kGpu, fault::OpKind::kMap, gr)) {
            switch (d->kind) {
              case fault::FaultKind::kSlowdown:
                map_us *= d->factor;
                break;
              case fault::FaultKind::kTimeout: {
                // The hung map occupies the GPU until the timeout expires —
                // charged through Schedule so gpu_busy_us agrees with the
                // injector's FaultEvent::charged_us (previously the window
                // moved the clock as pure latency and the busy accounting
                // silently dropped it).
                double t0 = 0.0;
                const double end =
                    ctx_.device(ProcKind::kGpu).Schedule(gr, d->timeout_us, DType::kF32, 0.0,
                                                         &t0);
                return ucl::EnqueueResult{ucl::Event{end, t0}, ucl::Status::kTimeout};
              }
              default:
                return ucl::EnqueueResult{ucl::Event{gr, gr}, MapFailureStatus(d->kind)};
            }
          }
        }
        if (trace::Span* s =
                sink.AddSpan(trace::SpanKind::kMap, n.id, ProcKind::kGpu, gr, gr + map_us)) {
          s->op = n.desc.kind;
          s->overhead_us = map_us;
        }
        gr += map_us;
      }
      return ctx_.queue(ProcKind::kGpu)
          .EnqueueKernelAt(gr, gpu_body, cfg.ComputeFor(ProcKind::kGpu), gpu_w.TotalBytes());
    };
    bool gpu_retried = false;
    const std::optional<ucl::Event> gpu_ev = retry_gpu(n, gpu_ready, gpu_attempt, &gpu_retried);
    // The CPU runs its own slice; its kernel-launch overhead applies.
    const double cpu_body = timing.KernelBodyUs(cpu_w, ProcKind::kCpu,
                                                cfg.ComputeFor(ProcKind::kCpu), cfg.cpu_threads);

    if (!gpu_ev.has_value()) {
      // Unrecovered GPU failure: the CPU runs its planned slice, then — one
      // sync later — re-executes the failed GPU channel slice itself with
      // the CPU-flavor kernel. The slices partition the output channels, so
      // the merged result is exactly what the cooperative step produces.
      if (!cfg.fault_cpu_fallback) {
        throw Error(ErrorCode::kFault,
                    "node " + std::to_string(n.id) +
                        ": gpu enqueue unrecovered and cpu fallback is disabled",
                    n.id, ProcKind::kGpu);
      }
      ++rep.fallbacks;
      const ucl::Event cpu_ev =
          must_cpu(n, cpu_free, cpu_body, cfg.ComputeFor(ProcKind::kCpu), cpu_w.TotalBytes());
      record_kernel(n, ProcKind::kCpu, cpu_ev, cpu_w, cpu_body, split.cpu.begin, split.cpu.end,
                    trace::FaultTag::kNone, -1);
      const double fb_ready = cpu_ev.complete_us + timing.SyncUs();
      ++syncs;
      if (trace::Span* s = sink.AddSpan(trace::SpanKind::kSync, n.id, ProcKind::kCpu,
                                        cpu_ev.complete_us, fb_ready)) {
        s->op = n.desc.kind;
        s->overhead_us = timing.SyncUs();
        s->fault = trace::FaultTag::kFallback;
        s->fault_event = last_fault_event();
      }
      const double fb_body = timing.KernelBodyUs(gpu_w, ProcKind::kCpu,
                                                 cfg.ComputeFor(ProcKind::kCpu),
                                                 cfg.cpu_threads);
      const ucl::Event fb_ev =
          must_cpu(n, fb_ready, fb_body, cfg.ComputeFor(ProcKind::kCpu), gpu_w.TotalBytes());
      // The re-execution of the GPU's slice is tagged: it is recovery work,
      // not part of the planned schedule (the old trace logged it as a
      // second indistinguishable CPU kernel).
      record_kernel(n, ProcKind::kCpu, fb_ev, gpu_w, fb_body, split.gpu.begin, split.gpu.end,
                    trace::FaultTag::kFallback, last_fault_event());
      nd = NodeDone{fb_ev, true, false};
      if (input != nullptr) {
        if (scratch != nullptr) {
          scratch->Reset();
        }
        // Both fallback slices run the CPU kernel flavor; when that flavor is
        // via-F16 on both processors' configs, stage the dequantize+im2col
        // producer once and share it (see StageViaF16Cols).
        const Half* staged = cfg.ComputeFor(ProcKind::kCpu) == DType::kF16 &&
                                     cfg.ComputeFor(ProcKind::kGpu) == DType::kF16
                                 ? StageViaF16Cols(pm_, n.id, act, scratch)
                                 : nullptr;
        const memory::ScratchArena::Mark mark =
            scratch != nullptr ? scratch->MarkPoint() : memory::ScratchArena::Mark{};
        ComputeNodeSlice(pm_, n.id, ProcKind::kCpu, act, split.cpu.begin, split.cpu.end,
                         scratch, staged);
        if (scratch != nullptr) {
          if (staged != nullptr) {
            scratch->ResetTo(mark);  // Keep the staging, recycle slice scratch.
          } else {
            scratch->Reset();
          }
        }
        // The GPU's slice, computed with the CPU kernel flavor.
        ComputeNodeSlice(pm_, n.id, ProcKind::kCpu, act, split.gpu.begin, split.gpu.end,
                         scratch, staged);
      }
      continue;
    }

    const ucl::Event cpu_ev =
        must_cpu(n, cpu_free, cpu_body, cfg.ComputeFor(ProcKind::kCpu), cpu_w.TotalBytes());
    record_kernel(n, ProcKind::kGpu, *gpu_ev, gpu_w, gpu_body, split.gpu.begin, split.gpu.end,
                  gpu_retried ? trace::FaultTag::kRetried : trace::FaultTag::kNone,
                  gpu_retried ? last_fault_event() : -1);
    record_kernel(n, ProcKind::kCpu, cpu_ev, cpu_w, cpu_body, split.cpu.begin, split.cpu.end,
                  trace::FaultTag::kNone, -1);

    double merged = std::max(cpu_ev.complete_us, gpu_ev->complete_us);
    if (!cfg.zero_copy) {
      // Stage the GPU's output slice back for CPU visibility.
      const double out_stage_us = gpu_w.output_bytes / (ctx_.soc().copy_gb_per_s * 1e3);
      double st0 = 0.0;
      merged = cpu.Schedule(merged, out_stage_us, DType::kF32, gpu_w.output_bytes, &st0);
      if (trace::Span* s =
              sink.AddSpan(trace::SpanKind::kStage, n.id, ProcKind::kCpu, st0, merged)) {
        s->op = n.desc.kind;
        s->bytes = gpu_w.output_bytes;
      }
    }
    if (trace::Span* s = sink.AddSpan(trace::SpanKind::kSync, n.id, ProcKind::kCpu, merged,
                                      merged + timing.SyncUs())) {
      s->op = n.desc.kind;
      s->overhead_us = timing.SyncUs();
    }
    merged += timing.SyncUs();
    ++syncs;
    // Both devices resume from the merge point (the executor waits for the
    // GPU before the next layer, Section 6).
    ctx_.device(ProcKind::kCpu).Schedule(merged, 0.0, DType::kF32, 0.0);
    ctx_.device(ProcKind::kGpu).Schedule(merged, 0.0, DType::kF32, 0.0);
    nd = NodeDone{ucl::Event{merged}, true, true};

    if (input != nullptr) {
      // Both slices run sequentially on this thread; reset between them so
      // peak arena use is one slice's staging buffers. When both slice
      // flavors compute in kF16 the dequantize+im2col producer is staged
      // once above a Mark and shared across the slices (the redundant
      // per-slice recomputation was the via-F16 cooperative bug).
      if (scratch != nullptr) {
        scratch->Reset();
      }
      const Half* staged = cfg.ComputeFor(ProcKind::kCpu) == DType::kF16 &&
                                   cfg.ComputeFor(ProcKind::kGpu) == DType::kF16
                               ? StageViaF16Cols(pm_, n.id, act, scratch)
                               : nullptr;
      const memory::ScratchArena::Mark mark =
          scratch != nullptr ? scratch->MarkPoint() : memory::ScratchArena::Mark{};
      ComputeNodeSlice(pm_, n.id, ProcKind::kCpu, act, split.cpu.begin, split.cpu.end, scratch,
                       staged);
      if (scratch != nullptr) {
        if (staged != nullptr) {
          scratch->ResetTo(mark);  // Keep the staging, recycle slice scratch.
        } else {
          scratch->Reset();
        }
      }
      ComputeNodeSlice(pm_, n.id, ProcKind::kGpu, act, split.gpu.begin, split.gpu.end, scratch,
                       staged);
    }
  }

  // --- Result assembly ------------------------------------------------------
  out.latency_us = ctx_.NowUs();
  out.sync_count = syncs;
  const EnergyModel energy(ctx_.soc());
  for (const ProcKind k : {ProcKind::kCpu, ProcKind::kGpu}) {
    const ucl::Device& d = ctx_.device(k);
    double e = 0.0;
    for (const DType t : {DType::kF32, DType::kF16, DType::kQUInt8}) {
      e += energy.ComputeEnergyMj(k, t, d.BusyUs(t), 0.0);
    }
    e += energy.DramEnergyMj(d.TotalBytes());
    if (k == ProcKind::kCpu) {
      out.cpu_busy_us = d.TotalBusyUs();
      out.cpu_energy_mj = e;
    } else {
      out.gpu_busy_us = d.TotalBusyUs();
      out.gpu_energy_mj = e;
    }
  }
  out.idle_energy_mj = energy.IdleEnergyMj(out.latency_us);
  out.total_energy_mj = out.cpu_energy_mj + out.gpu_energy_mj + out.idle_energy_mj;
  if (fi != nullptr) {
    rep.faults_injected = static_cast<int64_t>(fi->events().size());
    rep.slowdowns = fi->slowdown_count();
    rep.events.assign(fi->events().begin(), fi->events().end());
  }
  rep.final_mode = rep.circuit_open
                       ? RunMode::kCpuOnly
                       : (rep.degraded() ? RunMode::kDegraded : RunMode::kNormal);
  if (tracing) {
    // Ground truth the trace-invariant verifier (VerifyRunTrace) checks the
    // spans against.
    trace::RunTrace& rt = out.run_trace;
    rt.latency_us = out.latency_us;
    rt.cpu_busy_us = out.cpu_busy_us;
    rt.gpu_busy_us = out.gpu_busy_us;
    rt.sync_count = syncs;
    rt.slowdowns = fi != nullptr ? fi->slowdown_count() : 0;
    rt.arena_high_water = static_cast<int64_t>(scratch_.high_water());
    if (fi != nullptr) {
      rt.fault_events.assign(fi->events().begin(), fi->events().end());
    }
    trace::FinalizeQueueDepth(rt);
  }
  if (input != nullptr) {
    // Pooled activations are views into executor-owned storage; detach the
    // output so the result outlives this run (and the next run's reuse of
    // the pool).
    const Tensor& o = act[static_cast<size_t>(g.OutputId())];
    out.output = o.is_view() ? o.Clone() : o;
  }
}

}  // namespace ulayer
