#include "core/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/compute.h"
#include "parallel/thread_pool.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

// CPU time spent making one asynchronous enqueue call (clEnqueueNDRangeKernel
// returning immediately). The GPU-side launch overhead is separate and lives
// in ProcessorSpec::kernel_launch_us.
constexpr double kIssueCallUs = 2.0;

}  // namespace

Executor::Executor(const PreparedModel& pm, const SocSpec& soc) : pm_(pm), ctx_(soc) {}

void Executor::EnsureMemoryPlan() {
  if (mem_ready_) {
    return;
  }
  const Graph& g = pm_.graph();

  // Kernel scratch: worst case over single nodes (the arena is Reset between
  // kernels, so peak use is one node's staging buffers).
  int64_t scratch_bytes = 0;
  for (const Node& n : g.nodes()) {
    scratch_bytes = std::max(scratch_bytes, NodeScratchBytes(pm_, n));
  }
  scratch_.Reserve(static_cast<size_t>(scratch_bytes));

  // Activation liveness: node ids are topological, so act[i] must stay alive
  // from its own step until its last consumer's step.
  std::vector<int64_t> last_use(static_cast<size_t>(g.size()));
  for (const Node& n : g.nodes()) {
    last_use[static_cast<size_t>(n.id)] =
        std::max(last_use[static_cast<size_t>(n.id)], static_cast<int64_t>(n.id));
    for (int in : n.inputs) {
      last_use[static_cast<size_t>(in)] =
          std::max(last_use[static_cast<size_t>(in)], static_cast<int64_t>(n.id));
    }
  }
  // The network output is read (cloned into RunResult) after the node loop.
  last_use[static_cast<size_t>(g.OutputId())] = g.size();

  std::vector<memory::BufferRequest> reqs(static_cast<size_t>(g.size()));
  for (const Node& n : g.nodes()) {
    memory::BufferRequest& r = reqs[static_cast<size_t>(n.id)];
    r.live_begin = n.id;
    r.live_end = last_use[static_cast<size_t>(n.id)];
    // The input tensor stays an owning tensor (PrepareInput); bytes = 0
    // keeps it out of the pool without perturbing the request indexing.
    r.bytes = n.desc.kind == LayerKind::kInput
                  ? 0
                  : n.out_shape.NumElements() * DTypeSize(pm_.ActivationDType(n.id));
  }
  const memory::BufferPlan plan = memory::PackBuffers(reqs);
  act_pool_.assign(static_cast<size_t>(plan.pool_bytes), 0);
  act_offsets_ = plan.offsets;
  mem_ready_ = true;
}

double Executor::ReadyTime(const Node& node, bool on_cpu, bool on_gpu,
                           const std::vector<NodeDone>& done, int* syncs) const {
  double ready = 0.0;
  for (int in : node.inputs) {
    const NodeDone& d = done[static_cast<size_t>(in)];
    double t = d.event.complete_us;
    // If this step needs the data on a device the producer did not run on,
    // the dependency crosses the CPU-GPU boundary and pays one sync.
    const bool needs_sync = (on_cpu && !d.on_cpu) || (on_gpu && !d.on_gpu);
    if (needs_sync) {
      t += ctx_.timing().SyncUs();
      ++*syncs;
    }
    ready = std::max(ready, t);
  }
  return ready;
}

RunResult Executor::Run(const Plan& plan, const Tensor* input) {
  const Graph& g = pm_.graph();
  const ExecConfig& cfg = pm_.config();
  if (cfg.verify) {
    // Reject structurally invalid plans before they turn into wrong latency
    // numbers or out-of-bounds tensor writes (functional runs).
    ThrowIfErrors("plan verification failed", VerifyPlan(g, plan, cfg));
  }
  assert(plan.nodes.size() == static_cast<size_t>(g.size()));
  // Apply this run's CPU thread budget to the functional kernels. The budget
  // is process-wide; the last configured run wins (matches how a real
  // runtime pins its worker pool once per session).
  parallel::SetCpuThreads(cfg.cpu_threads);
  ctx_.Reset();
  const TimingModel& timing = ctx_.timing();

  std::vector<NodeDone> done(static_cast<size_t>(g.size()));
  std::vector<KernelTrace> trace;
  trace.reserve(static_cast<size_t>(g.size()) + 16);
  int syncs = 0;

  // Functional state. With config.scratch_arena the activation tensors are
  // views into a liveness-planned pool and kernel staging buffers come from
  // the prepare-sized arena: steady-state runs allocate nothing.
  std::vector<Tensor> act;
  memory::ScratchArena* scratch = nullptr;
  if (input != nullptr) {
    if (cfg.scratch_arena) {
      EnsureMemoryPlan();
      scratch = &scratch_;
    }
    act.resize(static_cast<size_t>(g.size()));
    act[0] = pm_.PrepareInput(*input);
    for (const Node& n : g.nodes()) {
      if (n.desc.kind != LayerKind::kInput) {
        act[static_cast<size_t>(n.id)] =
            cfg.scratch_arena
                ? pm_.MakeActivationView(
                      n.id, act_pool_.data() + act_offsets_[static_cast<size_t>(n.id)])
                : pm_.MakeActivation(n.id);
      }
    }
  }

  for (const Node& n : g.nodes()) {
    const NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    NodeDone& nd = done[static_cast<size_t>(n.id)];
    if (n.desc.kind == LayerKind::kInput) {
      // The input buffer is zero-copy shared memory: visible to both devices.
      nd = NodeDone{ucl::Event{0.0}, true, true};
      continue;
    }

    const int64_t oc = n.out_shape.c;
    const ResolvedSplit split = ResolveSplit(a, oc);
    const bool cooperative =
        a.kind == StepKind::kCooperative && !split.cpu.empty() && !split.gpu.empty();
    if (!cooperative) {
      // Single-processor step (kSingle, kBranch, or a degenerate split where
      // one side's channel slice is empty).
      const ProcKind proc =
          a.kind == StepKind::kCooperative
              ? (split.gpu.empty() ? ProcKind::kCpu : ProcKind::kGpu)
              : a.proc;
      const bool on_cpu = proc == ProcKind::kCpu;
      const double ready = ReadyTime(n, on_cpu, !on_cpu, done, &syncs);
      const LayerWork w = ComputeWork(g, n, cfg.storage);
      const double body = timing.KernelBodyUs(w, proc, cfg.ComputeFor(proc), cfg.cpu_threads);
      const ucl::Event ev = ctx_.queue(proc).EnqueueKernelAt(ready, body, cfg.ComputeFor(proc),
                                                             w.TotalBytes());
      trace.push_back(KernelTrace{n.id, proc, ev.start_us, ev.complete_us});
      nd = NodeDone{ev, on_cpu, !on_cpu};
      if (input != nullptr) {
        if (scratch != nullptr) {
          scratch->Reset();
        }
        ComputeNode(pm_, n.id, proc, act, scratch);
      }
      continue;
    }

    // --- Cooperative step: channel-wise workload distribution -------------
    const double ready = ReadyTime(n, /*on_cpu=*/true, /*on_gpu=*/true, done, &syncs);

    const LayerWork cpu_w = ComputeWork(g, n, cfg.storage, split.cpu.begin, split.cpu.end);
    const LayerWork gpu_w = ComputeWork(g, n, cfg.storage, split.gpu.begin, split.gpu.end);

    // The CPU issues the GPU command first (Section 6). Asynchronous issue
    // costs the CPU only the enqueue call; synchronous issue blocks the CPU
    // for the whole GPU launch.
    ucl::Device& cpu = ctx_.device(ProcKind::kCpu);
    double cpu_free;
    double gpu_ready;
    if (cfg.async_issue) {
      cpu_free = cpu.Schedule(ready, kIssueCallUs, DType::kF32, 0.0);
      gpu_ready = cpu_free;
    } else {
      cpu_free = cpu.Schedule(ready, ctx_.device(ProcKind::kGpu).spec().kernel_launch_us,
                              DType::kF32, 0.0);
      gpu_ready = cpu_free;
    }

    // Shared-memory handoff: zero-copy buffers pay cache maintenance only;
    // otherwise the GPU's input view and output slice are staged through
    // bandwidth-priced copies on the CPU.
    if (cfg.zero_copy) {
      gpu_ready += timing.MapUs();
    } else {
      const double stage_us =
          timing.MapUs() + gpu_w.input_bytes / (ctx_.soc().copy_gb_per_s * 1e3);
      cpu_free = cpu.Schedule(cpu_free, stage_us, DType::kF32, gpu_w.input_bytes);
      gpu_ready = cpu_free;
    }

    const ucl::Event gpu_ev = ctx_.queue(ProcKind::kGpu)
                                  .EnqueueKernelAt(gpu_ready, timing.KernelBodyUs(
                                                                  gpu_w, ProcKind::kGpu,
                                                                  cfg.ComputeFor(ProcKind::kGpu)),
                                                   cfg.ComputeFor(ProcKind::kGpu),
                                                   gpu_w.TotalBytes());
    // The CPU runs its own slice; its kernel-launch overhead applies.
    const double cpu_body = timing.KernelBodyUs(cpu_w, ProcKind::kCpu,
                                                cfg.ComputeFor(ProcKind::kCpu), cfg.cpu_threads);
    const ucl::Event cpu_ev = ctx_.queue(ProcKind::kCpu)
                                  .EnqueueKernelAt(cpu_free, cpu_body,
                                                   cfg.ComputeFor(ProcKind::kCpu),
                                                   cpu_w.TotalBytes());
    trace.push_back(KernelTrace{n.id, ProcKind::kGpu, gpu_ev.start_us, gpu_ev.complete_us});
    trace.push_back(KernelTrace{n.id, ProcKind::kCpu, cpu_ev.start_us, cpu_ev.complete_us});

    double merged = std::max(cpu_ev.complete_us, gpu_ev.complete_us);
    if (!cfg.zero_copy) {
      // Stage the GPU's output slice back for CPU visibility.
      merged = cpu.Schedule(merged, gpu_w.output_bytes / (ctx_.soc().copy_gb_per_s * 1e3),
                            DType::kF32, gpu_w.output_bytes);
    }
    merged += timing.SyncUs();
    ++syncs;
    // Both devices resume from the merge point (the executor waits for the
    // GPU before the next layer, Section 6).
    ctx_.device(ProcKind::kCpu).Schedule(merged, 0.0, DType::kF32, 0.0);
    ctx_.device(ProcKind::kGpu).Schedule(merged, 0.0, DType::kF32, 0.0);
    nd = NodeDone{ucl::Event{merged}, true, true};

    if (input != nullptr) {
      // Both slices run sequentially on this thread; reset between them so
      // peak arena use is one slice's staging buffers.
      if (scratch != nullptr) {
        scratch->Reset();
      }
      ComputeNodeSlice(pm_, n.id, ProcKind::kCpu, act, split.cpu.begin, split.cpu.end, scratch);
      if (scratch != nullptr) {
        scratch->Reset();
      }
      ComputeNodeSlice(pm_, n.id, ProcKind::kGpu, act, split.gpu.begin, split.gpu.end, scratch);
    }
  }

  // --- Result assembly ------------------------------------------------------
  RunResult r;
  r.latency_us = ctx_.NowUs();
  r.trace = std::move(trace);
  r.sync_count = syncs;
  const EnergyModel energy(ctx_.soc());
  for (const ProcKind k : {ProcKind::kCpu, ProcKind::kGpu}) {
    const ucl::Device& d = ctx_.device(k);
    double e = 0.0;
    for (const DType t : {DType::kF32, DType::kF16, DType::kQUInt8}) {
      e += energy.ComputeEnergyMj(k, t, d.BusyUs(t), 0.0);
    }
    e += energy.DramEnergyMj(d.TotalBytes());
    if (k == ProcKind::kCpu) {
      r.cpu_busy_us = d.TotalBusyUs();
      r.cpu_energy_mj = e;
    } else {
      r.gpu_busy_us = d.TotalBusyUs();
      r.gpu_energy_mj = e;
    }
  }
  r.idle_energy_mj = energy.IdleEnergyMj(r.latency_us);
  r.total_energy_mj = r.cpu_energy_mj + r.gpu_energy_mj + r.idle_energy_mj;
  if (input != nullptr) {
    // Pooled activations are views into executor-owned storage; detach the
    // output so the result outlives this run (and the next run's reuse of
    // the pool).
    const Tensor& out = act[static_cast<size_t>(g.OutputId())];
    r.output = out.is_view() ? out.Clone() : out;
  }
  return r;
}

}  // namespace ulayer
