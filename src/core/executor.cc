#include "core/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "core/compute.h"
#include "parallel/thread_pool.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

// CPU time spent making one asynchronous enqueue call (clEnqueueNDRangeKernel
// returning immediately). The GPU-side launch overhead is separate and lives
// in ProcessorSpec::kernel_launch_us.
constexpr double kIssueCallUs = 2.0;

// Failure status for a fault injected at the executor's inline map point
// (the zero-copy handoff charges map cost directly instead of calling
// ucl::EnqueueMap, so the executor consults the injector itself).
ucl::Status MapFailureStatus(fault::FaultKind kind) {
  switch (kind) {
    case fault::FaultKind::kDeviceLost:
      return ucl::Status::kDeviceLost;
    case fault::FaultKind::kEnqueueFailed:
      return ucl::Status::kEnqueueFailed;
    default:
      return ucl::Status::kMapFailed;
  }
}

}  // namespace

std::string_view RunModeName(RunMode mode) {
  switch (mode) {
    case RunMode::kNormal:
      return "normal";
    case RunMode::kDegraded:
      return "degraded";
    case RunMode::kCpuOnly:
      return "cpu-only";
  }
  return "unknown";
}

std::string DegradationReport::ToString() const {
  std::ostringstream os;
  os << "mode: " << RunModeName(final_mode) << "\nfaults injected: " << faults_injected
     << "\nslowdowns: " << slowdowns << "\nretries: " << retries
     << "\nfallbacks: " << fallbacks << "\nrerouted steps: " << rerouted_steps
     << "\nreplans: " << replans
     << "\ncircuit breaker: " << (circuit_open ? "open" : "closed");
  for (const fault::FaultEvent& e : events) {
    os << "\n  " << e.ToString();
  }
  os << "\n";
  return os.str();
}

Executor::Executor(const PreparedModel& pm, const SocSpec& soc) : pm_(pm), ctx_(soc) {
  // A config the kernels cannot execute should fail at construction, not as
  // garbage tensors or a crash mid-run.
  ThrowIfErrors("exec config verification failed", VerifyExecConfig(pm.config()));
}

void Executor::SetFaultPlan(fault::FaultPlan plan) {
  if (plan.empty()) {
    ctx_.SetFaultInjector(nullptr);
    injector_.reset();
    return;
  }
  injector_ = std::make_unique<fault::FaultInjector>(std::move(plan));
  ctx_.SetFaultInjector(injector_.get());
}

void Executor::EnsureMemoryPlan() {
  if (mem_ready_) {
    return;
  }
  const Graph& g = pm_.graph();

  // Kernel scratch: worst case over single nodes (the arena is Reset between
  // kernels, so peak use is one node's staging buffers).
  int64_t scratch_bytes = 0;
  for (const Node& n : g.nodes()) {
    scratch_bytes = std::max(scratch_bytes, NodeScratchBytes(pm_, n));
  }
  scratch_.Reserve(static_cast<size_t>(scratch_bytes));

  // Activation liveness: node ids are topological, so act[i] must stay alive
  // from its own step until its last consumer's step.
  std::vector<int64_t> last_use(static_cast<size_t>(g.size()));
  for (const Node& n : g.nodes()) {
    last_use[static_cast<size_t>(n.id)] =
        std::max(last_use[static_cast<size_t>(n.id)], static_cast<int64_t>(n.id));
    for (int in : n.inputs) {
      last_use[static_cast<size_t>(in)] =
          std::max(last_use[static_cast<size_t>(in)], static_cast<int64_t>(n.id));
    }
  }
  // The network output is read (cloned into RunResult) after the node loop.
  last_use[static_cast<size_t>(g.OutputId())] = g.size();

  std::vector<memory::BufferRequest> reqs(static_cast<size_t>(g.size()));
  for (const Node& n : g.nodes()) {
    memory::BufferRequest& r = reqs[static_cast<size_t>(n.id)];
    r.live_begin = n.id;
    r.live_end = last_use[static_cast<size_t>(n.id)];
    // The input tensor stays an owning tensor (PrepareInput); bytes = 0
    // keeps it out of the pool without perturbing the request indexing.
    r.bytes = n.desc.kind == LayerKind::kInput
                  ? 0
                  : n.out_shape.NumElements() * DTypeSize(pm_.ActivationDType(n.id));
  }
  const memory::BufferPlan plan = memory::PackBuffers(reqs);
  act_pool_.assign(static_cast<size_t>(plan.pool_bytes), 0);
  act_offsets_ = plan.offsets;
  mem_ready_ = true;
}

double Executor::ReadyTime(const Node& node, bool on_cpu, bool on_gpu,
                           const std::vector<NodeDone>& done, int* syncs) const {
  double ready = 0.0;
  for (int in : node.inputs) {
    const NodeDone& d = done[static_cast<size_t>(in)];
    double t = d.event.complete_us;
    // If this step needs the data on a device the producer did not run on,
    // the dependency crosses the CPU-GPU boundary and pays one sync.
    const bool needs_sync = (on_cpu && !d.on_cpu) || (on_gpu && !d.on_gpu);
    if (needs_sync) {
      t += ctx_.timing().SyncUs();
      ++*syncs;
    }
    ready = std::max(ready, t);
  }
  return ready;
}

RunResult Executor::Run(const Plan& plan, const Tensor* input) {
  try {
    return RunImpl(plan, input);
  } catch (...) {
    AbortRun();
    throw;
  }
}

void Executor::AbortRun() {
  // A mid-run throw must leave the executor reusable: rewind the device
  // timelines, the scratch arena's bump pointer and the fault stream so the
  // next Run is byte-identical to one on a freshly constructed executor.
  ctx_.Reset();
  scratch_.Reset();
  if (injector_ != nullptr) {
    injector_->ResetRun();
  }
}

RunResult Executor::RunImpl(const Plan& plan, const Tensor* input) {
  const Graph& g = pm_.graph();
  const ExecConfig& cfg = pm_.config();
  if (cfg.verify) {
    // Reject structurally invalid plans before they turn into wrong latency
    // numbers or out-of-bounds tensor writes (functional runs).
    ThrowIfErrors("plan verification failed", VerifyPlan(g, plan, cfg));
  }
  assert(plan.nodes.size() == static_cast<size_t>(g.size()));
  // Apply this run's CPU thread budget to the functional kernels. The budget
  // is process-wide; the last configured run wins (matches how a real
  // runtime pins its worker pool once per session).
  parallel::SetCpuThreads(cfg.cpu_threads);
  ctx_.Reset();
  fault::FaultInjector* fi = injector_.get();
  if (fi != nullptr) {
    fi->ResetRun();
  }
  const TimingModel& timing = ctx_.timing();

  // --- Fault recovery state (DESIGN.md Section 10) --------------------------
  DegradationReport rep;
  bool gpu_lost = false;  // Circuit breaker; open pins the rest CPU-only.
  ucl::Device& cpu_dev = ctx_.device(ProcKind::kCpu);

  // Enqueues on the CPU queue. The CPU is the last-resort device, so a
  // failure here is unrecoverable and aborts the run.
  const auto must_cpu = [&](const Node& n, double ready, double body, DType compute,
                            double bytes) {
    const ucl::EnqueueResult res =
        ctx_.queue(ProcKind::kCpu).EnqueueKernelAt(ready, body, compute, bytes);
    if (!res.ok()) {
      throw Error(ErrorCode::kFault,
                  "node " + std::to_string(n.id) + ": cpu enqueue failed (" +
                      std::string(ucl::StatusName(res.status)) + ") with no fallback device",
                  n.id, ProcKind::kCpu);
    }
    return res.event;
  };

  // Runs one GPU attempt with bounded exponential backoff between retries.
  // The host thread owns the retry loop, so backoff is charged to the CPU
  // timeline. Returns nullopt when unrecovered; kDeviceLost also opens the
  // circuit breaker.
  const auto retry_gpu = [&](double base,
                             const auto& attempt) -> std::optional<ucl::Event> {
    for (int tries = 0;; ++tries) {
      const ucl::EnqueueResult res = attempt(base);
      if (res.ok()) {
        return res.event;
      }
      if (res.status == ucl::Status::kDeviceLost) {
        gpu_lost = true;
        rep.circuit_open = true;
        return std::nullopt;
      }
      if (tries >= cfg.fault_max_retries) {
        return std::nullopt;
      }
      ++rep.retries;
      const double backoff = std::ldexp(cfg.fault_backoff_us, std::min(tries, 20));
      base = cpu_dev.Schedule(std::max(base, res.event.complete_us), backoff, DType::kF32, 0.0);
    }
  };

  std::vector<NodeDone> done(static_cast<size_t>(g.size()));
  std::vector<KernelTrace> trace;
  trace.reserve(static_cast<size_t>(g.size()) + 16);
  int syncs = 0;

  // Functional state. With config.scratch_arena the activation tensors are
  // views into a liveness-planned pool and kernel staging buffers come from
  // the prepare-sized arena: steady-state runs allocate nothing.
  std::vector<Tensor> act;
  memory::ScratchArena* scratch = nullptr;
  if (input != nullptr) {
    if (cfg.scratch_arena) {
      EnsureMemoryPlan();
      scratch = &scratch_;
    }
    act.resize(static_cast<size_t>(g.size()));
    act[0] = pm_.PrepareInput(*input);
    for (const Node& n : g.nodes()) {
      if (n.desc.kind != LayerKind::kInput) {
        act[static_cast<size_t>(n.id)] =
            cfg.scratch_arena
                ? pm_.MakeActivationView(
                      n.id, act_pool_.data() + act_offsets_[static_cast<size_t>(n.id)])
                : pm_.MakeActivation(n.id);
      }
    }
  }

  for (const Node& n : g.nodes()) {
    const NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    NodeDone& nd = done[static_cast<size_t>(n.id)];
    if (n.desc.kind == LayerKind::kInput) {
      // The input buffer is zero-copy shared memory: visible to both devices.
      nd = NodeDone{ucl::Event{0.0}, true, true};
      continue;
    }
    if (fi != nullptr) {
      fi->set_current_node(n.id);
    }

    const int64_t oc = n.out_shape.c;
    const ResolvedSplit split = ResolveSplit(a, oc);
    bool cooperative =
        a.kind == StepKind::kCooperative && !split.cpu.empty() && !split.gpu.empty();
    // Single-processor step (kSingle, kBranch, or a degenerate split where
    // one side's channel slice is empty).
    ProcKind proc = a.kind == StepKind::kCooperative
                        ? (split.gpu.empty() ? ProcKind::kCpu : ProcKind::kGpu)
                        : a.proc;
    // Open circuit breaker: every remaining GPU-touching step reroutes to a
    // single-processor CPU step.
    if (gpu_lost && (cooperative || proc == ProcKind::kGpu)) {
      cooperative = false;
      proc = ProcKind::kCpu;
      ++rep.rerouted_steps;
    }
    if (!cooperative) {
      const bool gpu_step = proc == ProcKind::kGpu;
      const double ready = ReadyTime(n, !gpu_step, gpu_step, done, &syncs);
      const LayerWork w = ComputeWork(g, n, cfg.storage);
      const double body = timing.KernelBodyUs(w, proc, cfg.ComputeFor(proc), cfg.cpu_threads);
      ucl::Event ev;
      if (gpu_step) {
        const std::optional<ucl::Event> got = retry_gpu(ready, [&](double b) {
          return ctx_.queue(ProcKind::kGpu)
              .EnqueueKernelAt(b, body, cfg.ComputeFor(ProcKind::kGpu), w.TotalBytes());
        });
        if (got.has_value()) {
          ev = *got;
        } else {
          // Retries exhausted (or device lost): re-execute the whole layer
          // on the CPU, paying one sync to move the inputs over.
          if (!cfg.fault_cpu_fallback) {
            throw Error(ErrorCode::kFault,
                        "node " + std::to_string(n.id) +
                            ": gpu enqueue unrecovered and cpu fallback is disabled",
                        n.id, ProcKind::kGpu);
          }
          ++rep.fallbacks;
          proc = ProcKind::kCpu;
          const double fb_ready = std::max(ready, cpu_dev.now_us()) + timing.SyncUs();
          ++syncs;
          const double fb_body =
              timing.KernelBodyUs(w, ProcKind::kCpu, cfg.ComputeFor(ProcKind::kCpu),
                                  cfg.cpu_threads);
          ev = must_cpu(n, fb_ready, fb_body, cfg.ComputeFor(ProcKind::kCpu), w.TotalBytes());
        }
      } else {
        ev = must_cpu(n, ready, body, cfg.ComputeFor(ProcKind::kCpu), w.TotalBytes());
      }
      trace.push_back(KernelTrace{n.id, proc, ev.start_us, ev.complete_us});
      nd = NodeDone{ev, proc == ProcKind::kCpu, proc == ProcKind::kGpu};
      if (input != nullptr) {
        if (scratch != nullptr) {
          scratch->Reset();
        }
        ComputeNode(pm_, n.id, proc, act, scratch);
      }
      continue;
    }

    // --- Cooperative step: channel-wise workload distribution -------------
    const double ready = ReadyTime(n, /*on_cpu=*/true, /*on_gpu=*/true, done, &syncs);

    const LayerWork cpu_w = ComputeWork(g, n, cfg.storage, split.cpu.begin, split.cpu.end);
    const LayerWork gpu_w = ComputeWork(g, n, cfg.storage, split.gpu.begin, split.gpu.end);

    // The CPU issues the GPU command first (Section 6). Asynchronous issue
    // costs the CPU only the enqueue call; synchronous issue blocks the CPU
    // for the whole GPU launch.
    ucl::Device& cpu = ctx_.device(ProcKind::kCpu);
    double cpu_free;
    double gpu_ready;
    if (cfg.async_issue) {
      cpu_free = cpu.Schedule(ready, kIssueCallUs, DType::kF32, 0.0);
      gpu_ready = cpu_free;
    } else {
      cpu_free = cpu.Schedule(ready, ctx_.device(ProcKind::kGpu).spec().kernel_launch_us,
                              DType::kF32, 0.0);
      gpu_ready = cpu_free;
    }

    // Shared-memory handoff: zero-copy buffers pay cache maintenance only
    // (charged inside the retried GPU attempt below, where it is also the
    // map fault-injection point); otherwise the GPU's input view and output
    // slice are staged through bandwidth-priced copies on the CPU.
    if (!cfg.zero_copy) {
      const double stage_us =
          timing.MapUs() + gpu_w.input_bytes / (ctx_.soc().copy_gb_per_s * 1e3);
      cpu_free = cpu.Schedule(cpu_free, stage_us, DType::kF32, gpu_w.input_bytes);
      gpu_ready = cpu_free;
    }

    // One GPU attempt: the inline map (zero-copy handoff, subject to map
    // faults) followed by the kernel enqueue. Retried as a unit.
    const double gpu_body =
        timing.KernelBodyUs(gpu_w, ProcKind::kGpu, cfg.ComputeFor(ProcKind::kGpu));
    const auto gpu_attempt = [&](double base) -> ucl::EnqueueResult {
      double gr = base;
      if (cfg.zero_copy) {
        double map_us = timing.MapUs();
        if (fi != nullptr) {
          if (const auto d = fi->OnCall(ProcKind::kGpu, fault::OpKind::kMap, gr)) {
            switch (d->kind) {
              case fault::FaultKind::kSlowdown:
                map_us *= d->factor;
                break;
              case fault::FaultKind::kTimeout:
                return ucl::EnqueueResult{ucl::Event{gr + d->timeout_us, gr},
                                          ucl::Status::kTimeout};
              default:
                return ucl::EnqueueResult{ucl::Event{gr, gr}, MapFailureStatus(d->kind)};
            }
          }
        }
        gr += map_us;
      }
      return ctx_.queue(ProcKind::kGpu)
          .EnqueueKernelAt(gr, gpu_body, cfg.ComputeFor(ProcKind::kGpu), gpu_w.TotalBytes());
    };
    const std::optional<ucl::Event> gpu_ev = retry_gpu(gpu_ready, gpu_attempt);
    // The CPU runs its own slice; its kernel-launch overhead applies.
    const double cpu_body = timing.KernelBodyUs(cpu_w, ProcKind::kCpu,
                                                cfg.ComputeFor(ProcKind::kCpu), cfg.cpu_threads);

    if (!gpu_ev.has_value()) {
      // Unrecovered GPU failure: the CPU runs its planned slice, then — one
      // sync later — re-executes the failed GPU channel slice itself with
      // the CPU-flavor kernel. The slices partition the output channels, so
      // the merged result is exactly what the cooperative step produces.
      if (!cfg.fault_cpu_fallback) {
        throw Error(ErrorCode::kFault,
                    "node " + std::to_string(n.id) +
                        ": gpu enqueue unrecovered and cpu fallback is disabled",
                    n.id, ProcKind::kGpu);
      }
      ++rep.fallbacks;
      const ucl::Event cpu_ev =
          must_cpu(n, cpu_free, cpu_body, cfg.ComputeFor(ProcKind::kCpu), cpu_w.TotalBytes());
      const double fb_ready = cpu_ev.complete_us + timing.SyncUs();
      ++syncs;
      const double fb_body = timing.KernelBodyUs(gpu_w, ProcKind::kCpu,
                                                 cfg.ComputeFor(ProcKind::kCpu),
                                                 cfg.cpu_threads);
      const ucl::Event fb_ev =
          must_cpu(n, fb_ready, fb_body, cfg.ComputeFor(ProcKind::kCpu), gpu_w.TotalBytes());
      trace.push_back(KernelTrace{n.id, ProcKind::kCpu, cpu_ev.start_us, cpu_ev.complete_us});
      trace.push_back(KernelTrace{n.id, ProcKind::kCpu, fb_ev.start_us, fb_ev.complete_us});
      nd = NodeDone{fb_ev, true, false};
      if (input != nullptr) {
        if (scratch != nullptr) {
          scratch->Reset();
        }
        ComputeNodeSlice(pm_, n.id, ProcKind::kCpu, act, split.cpu.begin, split.cpu.end,
                         scratch);
        if (scratch != nullptr) {
          scratch->Reset();
        }
        // The GPU's slice, computed with the CPU kernel flavor.
        ComputeNodeSlice(pm_, n.id, ProcKind::kCpu, act, split.gpu.begin, split.gpu.end,
                         scratch);
      }
      continue;
    }

    const ucl::Event cpu_ev =
        must_cpu(n, cpu_free, cpu_body, cfg.ComputeFor(ProcKind::kCpu), cpu_w.TotalBytes());
    trace.push_back(KernelTrace{n.id, ProcKind::kGpu, gpu_ev->start_us, gpu_ev->complete_us});
    trace.push_back(KernelTrace{n.id, ProcKind::kCpu, cpu_ev.start_us, cpu_ev.complete_us});

    double merged = std::max(cpu_ev.complete_us, gpu_ev->complete_us);
    if (!cfg.zero_copy) {
      // Stage the GPU's output slice back for CPU visibility.
      merged = cpu.Schedule(merged, gpu_w.output_bytes / (ctx_.soc().copy_gb_per_s * 1e3),
                            DType::kF32, gpu_w.output_bytes);
    }
    merged += timing.SyncUs();
    ++syncs;
    // Both devices resume from the merge point (the executor waits for the
    // GPU before the next layer, Section 6).
    ctx_.device(ProcKind::kCpu).Schedule(merged, 0.0, DType::kF32, 0.0);
    ctx_.device(ProcKind::kGpu).Schedule(merged, 0.0, DType::kF32, 0.0);
    nd = NodeDone{ucl::Event{merged}, true, true};

    if (input != nullptr) {
      // Both slices run sequentially on this thread; reset between them so
      // peak arena use is one slice's staging buffers.
      if (scratch != nullptr) {
        scratch->Reset();
      }
      ComputeNodeSlice(pm_, n.id, ProcKind::kCpu, act, split.cpu.begin, split.cpu.end, scratch);
      if (scratch != nullptr) {
        scratch->Reset();
      }
      ComputeNodeSlice(pm_, n.id, ProcKind::kGpu, act, split.gpu.begin, split.gpu.end, scratch);
    }
  }

  // --- Result assembly ------------------------------------------------------
  RunResult r;
  r.latency_us = ctx_.NowUs();
  r.trace = std::move(trace);
  r.sync_count = syncs;
  const EnergyModel energy(ctx_.soc());
  for (const ProcKind k : {ProcKind::kCpu, ProcKind::kGpu}) {
    const ucl::Device& d = ctx_.device(k);
    double e = 0.0;
    for (const DType t : {DType::kF32, DType::kF16, DType::kQUInt8}) {
      e += energy.ComputeEnergyMj(k, t, d.BusyUs(t), 0.0);
    }
    e += energy.DramEnergyMj(d.TotalBytes());
    if (k == ProcKind::kCpu) {
      r.cpu_busy_us = d.TotalBusyUs();
      r.cpu_energy_mj = e;
    } else {
      r.gpu_busy_us = d.TotalBusyUs();
      r.gpu_energy_mj = e;
    }
  }
  r.idle_energy_mj = energy.IdleEnergyMj(r.latency_us);
  r.total_energy_mj = r.cpu_energy_mj + r.gpu_energy_mj + r.idle_energy_mj;
  if (fi != nullptr) {
    rep.faults_injected = static_cast<int64_t>(fi->events().size());
    rep.slowdowns = fi->slowdown_count();
    rep.events = fi->events();
  }
  rep.final_mode = rep.circuit_open
                       ? RunMode::kCpuOnly
                       : (rep.degraded() ? RunMode::kDegraded : RunMode::kNormal);
  r.degradation = std::move(rep);
  if (input != nullptr) {
    // Pooled activations are views into executor-owned storage; detach the
    // output so the result outlives this run (and the next run's reuse of
    // the pool).
    const Tensor& out = act[static_cast<size_t>(g.OutputId())];
    r.output = out.is_view() ? out.Clone() : out;
  }
  return r;
}

}  // namespace ulayer
