#include "core/runtime.h"

namespace ulayer {

ULayerRuntime::ULayerRuntime(const Model& model, const SocSpec& soc, Options options)
    : options_(std::move(options)),
      timing_(soc),
      prepared_(model, options_.config),
      predictor_(timing_, options_.config, {&model.graph}),
      plan_(Partitioner(model.graph, timing_, options_.config, predictor_, options_.partitioner)
                .Build()),
      executor_(prepared_, soc) {}

void ULayerRuntime::Calibrate(const std::vector<Tensor>& inputs) {
  if (options_.config.storage == DType::kQUInt8) {
    prepared_.Calibrate(inputs);
  }
}

RunResult ULayerRuntime::Run(const Tensor* input) { return executor_.Run(plan_, input); }

}  // namespace ulayer
