#include "core/runtime.h"

#include <algorithm>
#include <cmath>

#include "soc/work.h"
#include "trace/trace.h"
#include "verify/verify.h"

namespace ulayer {

ULayerRuntime::Options ULayerRuntime::NormalizeOptions(Options options) {
  // The adaptation loop consumes BuildDriftReport, which needs the
  // structured trace; recording is deterministic and allocation-stable, so
  // forcing it on changes no simulated timeline.
  if (options.adapt.enabled) {
    options.config.trace = true;
  }
  return options;
}

ULayerRuntime::ULayerRuntime(const Model& model, const SocSpec& soc, Options options)
    : model_(&model),
      options_(NormalizeOptions(std::move(options))),
      timing_(soc),
      prepared_(model, options_.config),
      predictor_(timing_, options_.config, {&model.graph}),
      plan_(Partitioner(model.graph, timing_, options_.config, predictor_, options_.partitioner)
                .Build()),
      executor_(prepared_, soc),
      plan_cache_(options_.adapt.enabled ? options_.adapt.plan_cache_capacity : 0) {
  partitioner_builds_ = 1;  // The initializer's Build above.
  if (options_.config.verify) {
    ThrowIfErrors("graph verification failed for " + model.name, VerifyGraph(model.graph));
    ThrowIfErrors("plan verification failed for " + model.name,
                  VerifyPlan(model.graph, plan_, options_.config));
  }
  if (options_.adapt.enabled) {
    // Seed the cache with the healthy-state plan so the first recovery back
    // to baseline health is already a hit.
    plan_cache_.Insert(MakeCacheKey(options_.partitioner.gpu_available,
                                    options_.partitioner.gpu_time_scale),
                       plan_);
  }
  // Install the fault plan: explicit options win; otherwise the
  // ULAYER_FAULTS environment spec (empty plan when unset).
  fault::FaultPlan fp = options_.faults.empty() ? fault::FaultPlan::FromEnv() : options_.faults;
  executor_.SetFaultPlan(std::move(fp));
}

void ULayerRuntime::Calibrate(const std::vector<Tensor>& inputs) {
  if (options_.config.storage != DType::kQUInt8) {
    return;
  }
  prepared_.Calibrate(inputs);
  if (!options_.config.verify) {
    return;
  }
  // Quantization-scale sanity (Section 4): calibration must never produce
  // degenerate scales or out-of-range zero points.
  Report report =
      VerifyActivationQuantization(prepared_.graph(), prepared_.activation_params());
  for (const auto& [id, weights] : prepared_.model().weights) {
    (void)weights;
    const Tensor& filters = prepared_.Filters(id);
    CheckQuantParams(QuantParams{filters.scale(), filters.zero_point()}, id, "filter", report);
    if (options_.config.per_channel_weights) {
      for (const QuantParams& qp : prepared_.FilterChannelParams(id).channels) {
        CheckQuantParams(qp, id, "per-channel filter", report);
      }
    }
  }
  ThrowIfErrors("quantization verification failed for " + prepared_.model().name, report);
}

void ULayerRuntime::SetFaultPlan(fault::FaultPlan faults) {
  executor_.SetFaultPlan(std::move(faults));
}

void ULayerRuntime::Replan(bool gpu_available, double gpu_time_scale) {
  ++partitioner_builds_;
  Partitioner::Options popts = options_.partitioner;
  popts.gpu_available = gpu_available;
  popts.gpu_time_scale = gpu_time_scale;
  // Build and verify into a local: if verification (or the observer hook)
  // throws, the runtime keeps its current plan and stays usable.
  Plan next = Partitioner(model_->graph, timing_, options_.config, predictor_, popts).Build();
  if (options_.config.verify) {
    ThrowIfErrors("replanned plan verification failed for " + model_->name,
                  VerifyPlan(model_->graph, next, options_.config));
  }
  if (options_.on_replan) {
    options_.on_replan(next);
  }
  plan_ = std::move(next);
  ++replans_;
}

PlanCacheKey ULayerRuntime::MakeCacheKey(bool gpu_available, double gpu_time_scale) const {
  PlanCacheKey key;
  key.gpu_available = gpu_available;
  key.scale_bucket = CorrectionTable::BucketOf(gpu_time_scale, options_.adapt.bucket_growth);
  key.correction_fp = predictor_.corrections().Fingerprint(options_.adapt.bucket_growth);
  return key;
}

void ULayerRuntime::InstallPlan(bool gpu_available, double gpu_time_scale) {
  if (!options_.adapt.enabled || plan_cache_.capacity() == 0) {
    Replan(gpu_available, gpu_time_scale);
    return;
  }
  const PlanCacheKey key = MakeCacheKey(gpu_available, gpu_time_scale);
  if (const Plan* cached = plan_cache_.Lookup(key)) {
    // O(1) hot path: no Partitioner::Build. Copy before the hook so a
    // throwing observer leaves both the cache and plan_ untouched.
    Plan next = *cached;
    if (options_.on_replan) {
      options_.on_replan(next);
    }
    plan_ = std::move(next);
    ++replans_;
    return;
  }
  Replan(gpu_available, gpu_time_scale);
  plan_cache_.Insert(key, plan_);
}

std::optional<double> ULayerRuntime::ObservedGpuRatio(const RunResult& r) const {
  // Sum observed GPU kernel durations against what the timing model says
  // they should take under the current plan. The simulation runs on the
  // same timing model, so the fault-free ratio is exactly 1.0; injected
  // slowdowns (DVFS/thermal throttling) show up directly as the factor.
  // nullopt when the plan ran no GPU kernels: a CPU-only or heavily
  // rescaled plan yields no evidence about the GPU, and the caller must not
  // mistake silence for health (or for sickness).
  const Graph& g = prepared_.graph();
  const ExecConfig& cfg = options_.config;
  const double launch_us = timing_.soc().gpu.kernel_launch_us;
  double observed = 0.0;
  double expected = 0.0;
  for (const KernelTrace& t : r.trace) {
    if (t.proc != ProcKind::kGpu || t.node < 0 || t.node >= g.size()) {
      continue;
    }
    // Aborted GPU attempts now stay on the trace (tagged kFailedAttempt);
    // they are recovery noise, not evidence about the GPU's kernel speed.
    if (t.tag == trace::FaultTag::kFailedAttempt) {
      continue;
    }
    const Node& n = g.node(t.node);
    const NodeAssignment& a = plan_.nodes[static_cast<size_t>(t.node)];
    const ResolvedSplit split = ResolveSplit(a, n.out_shape.c);
    const bool coop =
        a.kind == StepKind::kCooperative && !split.cpu.empty() && !split.gpu.empty();
    const LayerWork w = coop
                            ? ComputeWork(g, n, cfg.storage, split.gpu.begin, split.gpu.end)
                            : ComputeWork(g, n, cfg.storage);
    observed += t.end_us - t.start_us;
    expected += launch_us +
                timing_.KernelBodyUs(w, ProcKind::kGpu, cfg.ComputeFor(ProcKind::kGpu));
  }
  if (expected <= 0.0) {
    return std::nullopt;
  }
  return observed / expected;
}

void ULayerRuntime::ApplyDegradationPolicy(const RunResult& r) {
  if (!options_.degradation_replan) {
    return;
  }
  DeviceHealth& h = gpu_health_;
  const DegradationReport& d = r.degradation;
  const bool failed = d.retries > 0 || d.fallbacks > 0 || d.circuit_open;
  if (failed) {
    ++h.consecutive_failures;
  } else {
    h.consecutive_failures = 0;
  }
  const std::optional<double> ratio = ObservedGpuRatio(r);
  h.evidence_last_run = ratio.has_value();
  if (ratio) {
    h.observed_over_predicted = *ratio;
  }

  // Probe verdict: the run just executed the one-run optimistic plan.
  if (h.probing) {
    h.probing = false;
    h.runs_since_probe = 0;
    if (failed) {
      // The GPU is still unreliable: back out of the plan.
      h.excluded = true;
      InstallPlan(/*gpu_available=*/false, /*gpu_time_scale=*/1.0);
      mode_ = RunMode::kCpuOnly;
      return;
    }
    // Clean probe: the GPU rejoins at full trust. Fall through so a device
    // that recovered from faults but still runs slow re-degrades on this
    // run's own throttle evidence.
    h.excluded = false;
    h.applied_time_scale = 1.0;
    h.clean_below_scale_runs = 0;
    mode_ = RunMode::kNormal;
  }

  if (!h.excluded &&
      (d.circuit_open || h.consecutive_failures >= options_.replan_after_failures)) {
    // The GPU is unreliable: open the runtime-level breaker and replan the
    // whole network CPU-only.
    h.excluded = true;
    h.clean_below_scale_runs = 0;
    h.runs_since_probe = 0;
    InstallPlan(/*gpu_available=*/false, /*gpu_time_scale=*/1.0);
    mode_ = RunMode::kCpuOnly;
    return;
  }

  if (h.excluded) {
    // Probation: a CPU-only plan yields no GPU evidence, so recovery can
    // only be discovered by periodically risking one optimistic probe run.
    if (options_.gpu_probe_interval > 0 &&
        ++h.runs_since_probe >= options_.gpu_probe_interval) {
      h.probing = true;
      h.runs_since_probe = 0;
      InstallPlan(/*gpu_available=*/true, /*gpu_time_scale=*/1.0);
      // mode_ stays kCpuOnly until the probe's verdict.
    }
    return;
  }

  if (options_.adapt.enabled) {
    // The correction table subsumes the scalar throttle factor: letting
    // both react would double-count the slowdown (scale * correction).
    // Failure/breaker/probation handling above stays active either way.
    return;
  }

  if (ratio && *ratio > h.applied_time_scale * options_.throttle_replan_ratio) {
    // The GPU runs, but slower than planned (thermal throttle): replan with
    // its latency estimates rescaled by the observed factor.
    h.applied_time_scale = *ratio;
    h.clean_below_scale_runs = 0;
    InstallPlan(/*gpu_available=*/true, /*gpu_time_scale=*/*ratio);
    if (mode_ == RunMode::kNormal) {
      mode_ = RunMode::kDegraded;
    }
    return;
  }

  if (h.applied_time_scale > 1.0) {
    if (!ratio) {
      // A heavily rescaled plan may schedule no GPU work at all; without
      // evidence the throttle would ratchet forever. Probe like the
      // breaker path.
      if (options_.gpu_probe_interval > 0 &&
          ++h.runs_since_probe >= options_.gpu_probe_interval) {
        h.probing = true;
        h.runs_since_probe = 0;
        InstallPlan(/*gpu_available=*/true, /*gpu_time_scale=*/1.0);
      }
      return;
    }
    h.runs_since_probe = 0;
    if (!failed && *ratio < h.applied_time_scale / options_.throttle_replan_ratio) {
      // The throttle eased. Demand the same run-count of consistent
      // evidence the failure path demands before churning the plan.
      if (++h.clean_below_scale_runs >= options_.replan_after_failures) {
        const double next_scale = std::max(*ratio, 1.0);
        h.applied_time_scale = next_scale;
        h.clean_below_scale_runs = 0;
        InstallPlan(/*gpu_available=*/true, /*gpu_time_scale=*/next_scale);
        mode_ = next_scale > 1.0 ? RunMode::kDegraded : RunMode::kNormal;
      }
    } else {
      h.clean_below_scale_runs = 0;
    }
  }
}

void ULayerRuntime::ApplyAdaptation(const RunResult& r) {
  if (!r.run_trace.enabled) {
    return;
  }
  const trace::DriftAggregate agg = trace::AggregateDrift(trace::BuildDriftReport(r.run_trace));
  if (!agg.has_evidence) {
    return;
  }
  // Duration-weighted relative deviation of this run's observed ratios
  // against the corrections the plan was predicted with (pre-update): the
  // residual the EWMA has not absorbed yet. On a stationary fault schedule
  // this series is monotonically non-increasing (H903).
  double dev = 0.0;
  double weight = 0.0;
  for (const trace::DriftCell& cell : agg.cells) {
    const double correction = predictor_.corrections().Get(cell.op, cell.proc);
    dev += cell.predicted_us * std::abs(cell.ratio / correction - 1.0);
    weight += cell.predicted_us;
  }
  const double relative = weight > 0.0 ? dev / weight : 0.0;
  last_relative_deviation_ = relative;
  drift_history_.push_back(relative);
  for (const trace::DriftCell& cell : agg.cells) {
    predictor_.UpdateCorrection(cell.op, cell.proc, cell.ratio, options_.adapt.ewma_alpha);
  }
  // Throttling (DVFS, thermal) is a device-wide effect, but a rescaled plan
  // can stop scheduling some op kinds on the affected processor entirely —
  // their cells would then freeze at a stale correction and pin the plan
  // away from that processor forever. Steer every cell the run did NOT
  // observe toward its processor's duration-weighted aggregate ratio, so
  // all of a device's cells track its health in lockstep. Processors with
  // no evidence at all this run are left untouched: silence about a device
  // is not evidence about it.
  for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
    double num = 0.0;
    double den = 0.0;
    for (const trace::DriftCell& cell : agg.cells) {
      if (cell.proc == proc) {
        num += cell.predicted_us * cell.ratio;
        den += cell.predicted_us;
      }
    }
    if (den <= 0.0) {
      continue;
    }
    const double proc_ratio = num / den;
    for (size_t k = 0; k < static_cast<size_t>(kLayerKindCount); ++k) {
      const LayerKind kind = static_cast<LayerKind>(k);
      const bool observed = std::any_of(
          agg.cells.begin(), agg.cells.end(),
          [&](const trace::DriftCell& c) { return c.op == kind && c.proc == proc; });
      if (!observed) {
        predictor_.UpdateCorrection(kind, proc, proc_ratio, options_.adapt.ewma_alpha);
      }
    }
  }
  // The device state quantizes back to baseline once the corrections carry
  // an identity-bucket fingerprint and the scalar scale buckets to 0.
  const CorrectionTable identity;
  const double growth = options_.adapt.bucket_growth;
  const bool baseline =
      predictor_.corrections().Fingerprint(growth) == identity.Fingerprint(growth) &&
      CorrectionTable::BucketOf(gpu_health_.applied_time_scale, growth) == 0;
  if (relative > options_.adapt.drift_replan_threshold) {
    ++drift_streak_;
  } else {
    drift_streak_ = 0;
  }
  if (drift_streak_ >= options_.adapt.sustained_runs) {
    replan_pending_ = true;
    drift_streak_ = 0;
  }
  if (replan_pending_) {
    // Install first, clear after: if the replan throws (verification or a
    // hook), the pending flag survives and the next evidence run retries
    // instead of silently running on the stale plan.
    InstallPlan(/*gpu_available=*/!gpu_health_.excluded, gpu_health_.applied_time_scale);
    replan_pending_ = false;
    if (!gpu_health_.excluded) {
      mode_ = baseline ? RunMode::kNormal : RunMode::kDegraded;
    }
    return;
  }
  // Drift is quiescent. The EWMA keeps decaying after the last sustained
  // replan, so the installed plan can be left a few percent off the true
  // optimum; once the table is back in the baseline bucket, snap to the
  // seeded baseline plan (an O(1) cache hit on the constructor's entry).
  if (mode_ == RunMode::kDegraded && !gpu_health_.excluded && baseline) {
    InstallPlan(/*gpu_available=*/true, gpu_health_.applied_time_scale);
    mode_ = RunMode::kNormal;
  }
}

ULayerRuntime::AdaptSnapshot ULayerRuntime::Snapshot() const {
  AdaptSnapshot snap;
  snap.corrections = predictor_.SnapshotCorrections();
  snap.health = gpu_health_;
  snap.mode = mode_;
  snap.plan = plan_;
  snap.replans = replans_;
  snap.drift_streak = drift_streak_;
  snap.replan_pending = replan_pending_;
  snap.last_relative_deviation = last_relative_deviation_;
  snap.drift_history = drift_history_;
  return snap;
}

void ULayerRuntime::Restore(const AdaptSnapshot& snap) {
  predictor_.RestoreCorrections(snap.corrections);
  gpu_health_ = snap.health;
  mode_ = snap.mode;
  plan_ = snap.plan;
  replans_ = snap.replans;
  drift_streak_ = snap.drift_streak;
  replan_pending_ = snap.replan_pending;
  last_relative_deviation_ = snap.last_relative_deviation;
  drift_history_ = snap.drift_history;
}

RunResult ULayerRuntime::Run(const Tensor* input) {
  RunResult r = executor_.Run(plan_, input);
  ApplyDegradationPolicy(r);
  if (options_.adapt.enabled) {
    ApplyAdaptation(r);
  }
  r.degradation.replans = replans_;
  // The runtime's session mode can outrank the single run's view (e.g. a
  // clean run on an already CPU-only plan).
  r.degradation.final_mode = CombineRunMode(r.degradation.final_mode, mode_);
  return r;
}

}  // namespace ulayer
