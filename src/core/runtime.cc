#include "core/runtime.h"

#include <algorithm>

#include "soc/work.h"
#include "verify/verify.h"

namespace ulayer {

ULayerRuntime::ULayerRuntime(const Model& model, const SocSpec& soc, Options options)
    : model_(&model),
      options_(std::move(options)),
      timing_(soc),
      prepared_(model, options_.config),
      predictor_(timing_, options_.config, {&model.graph}),
      plan_(Partitioner(model.graph, timing_, options_.config, predictor_, options_.partitioner)
                .Build()),
      executor_(prepared_, soc) {
  if (options_.config.verify) {
    ThrowIfErrors("graph verification failed for " + model.name, VerifyGraph(model.graph));
    ThrowIfErrors("plan verification failed for " + model.name,
                  VerifyPlan(model.graph, plan_, options_.config));
  }
  // Install the fault plan: explicit options win; otherwise the
  // ULAYER_FAULTS environment spec (empty plan when unset).
  fault::FaultPlan fp = options_.faults.empty() ? fault::FaultPlan::FromEnv() : options_.faults;
  executor_.SetFaultPlan(std::move(fp));
}

void ULayerRuntime::Calibrate(const std::vector<Tensor>& inputs) {
  if (options_.config.storage != DType::kQUInt8) {
    return;
  }
  prepared_.Calibrate(inputs);
  if (!options_.config.verify) {
    return;
  }
  // Quantization-scale sanity (Section 4): calibration must never produce
  // degenerate scales or out-of-range zero points.
  Report report =
      VerifyActivationQuantization(prepared_.graph(), prepared_.activation_params());
  for (const auto& [id, weights] : prepared_.model().weights) {
    (void)weights;
    const Tensor& filters = prepared_.Filters(id);
    CheckQuantParams(QuantParams{filters.scale(), filters.zero_point()}, id, "filter", report);
    if (options_.config.per_channel_weights) {
      for (const QuantParams& qp : prepared_.FilterChannelParams(id).channels) {
        CheckQuantParams(qp, id, "per-channel filter", report);
      }
    }
  }
  ThrowIfErrors("quantization verification failed for " + prepared_.model().name, report);
}

void ULayerRuntime::Replan(bool gpu_available, double gpu_time_scale) {
  Partitioner::Options popts = options_.partitioner;
  popts.gpu_available = gpu_available;
  popts.gpu_time_scale = gpu_time_scale;
  plan_ = Partitioner(model_->graph, timing_, options_.config, predictor_, popts).Build();
  if (options_.config.verify) {
    ThrowIfErrors("replanned plan verification failed for " + model_->name,
                  VerifyPlan(model_->graph, plan_, options_.config));
  }
  ++replans_;
}

double ULayerRuntime::ObservedGpuRatio(const RunResult& r) const {
  // Sum observed GPU kernel durations against what the timing model says
  // they should take under the current plan. The simulation runs on the
  // same timing model, so the fault-free ratio is exactly 1.0; injected
  // slowdowns (DVFS/thermal throttling) show up directly as the factor.
  const Graph& g = prepared_.graph();
  const ExecConfig& cfg = options_.config;
  const double launch_us = timing_.soc().gpu.kernel_launch_us;
  double observed = 0.0;
  double expected = 0.0;
  for (const KernelTrace& t : r.trace) {
    if (t.proc != ProcKind::kGpu || t.node < 0 || t.node >= g.size()) {
      continue;
    }
    // Aborted GPU attempts now stay on the trace (tagged kFailedAttempt);
    // they are recovery noise, not evidence about the GPU's kernel speed.
    if (t.tag == trace::FaultTag::kFailedAttempt) {
      continue;
    }
    const Node& n = g.node(t.node);
    const NodeAssignment& a = plan_.nodes[static_cast<size_t>(t.node)];
    const ResolvedSplit split = ResolveSplit(a, n.out_shape.c);
    const bool coop =
        a.kind == StepKind::kCooperative && !split.cpu.empty() && !split.gpu.empty();
    const LayerWork w = coop
                            ? ComputeWork(g, n, cfg.storage, split.gpu.begin, split.gpu.end)
                            : ComputeWork(g, n, cfg.storage);
    observed += t.end_us - t.start_us;
    expected += launch_us +
                timing_.KernelBodyUs(w, ProcKind::kGpu, cfg.ComputeFor(ProcKind::kGpu));
  }
  return expected > 0.0 ? observed / expected : 0.0;
}

void ULayerRuntime::ApplyDegradationPolicy(const RunResult& r) {
  if (!options_.degradation_replan) {
    return;
  }
  DeviceHealth& h = gpu_health_;
  const DegradationReport& d = r.degradation;
  const bool failed = d.retries > 0 || d.fallbacks > 0 || d.circuit_open;
  if (failed) {
    ++h.consecutive_failures;
  } else {
    h.consecutive_failures = 0;
  }
  const double ratio = ObservedGpuRatio(r);
  if (ratio > 0.0) {
    h.observed_over_predicted = ratio;
  }
  if (!h.excluded &&
      (d.circuit_open || h.consecutive_failures >= options_.replan_after_failures)) {
    // The GPU is unreliable: open the runtime-level breaker and replan the
    // whole network CPU-only.
    h.excluded = true;
    Replan(/*gpu_available=*/false, /*gpu_time_scale=*/1.0);
    mode_ = RunMode::kCpuOnly;
  } else if (!h.excluded && ratio > h.applied_time_scale * options_.throttle_replan_ratio) {
    // The GPU runs, but slower than planned (thermal throttle): replan with
    // its latency estimates rescaled by the observed factor.
    h.applied_time_scale = ratio;
    Replan(/*gpu_available=*/true, /*gpu_time_scale=*/ratio);
    if (mode_ == RunMode::kNormal) {
      mode_ = RunMode::kDegraded;
    }
  }
}

RunResult ULayerRuntime::Run(const Tensor* input) {
  RunResult r = executor_.Run(plan_, input);
  ApplyDegradationPolicy(r);
  r.degradation.replans = replans_;
  // The runtime's session mode can outrank the single run's view (e.g. a
  // clean run on an already CPU-only plan).
  r.degradation.final_mode = std::max(r.degradation.final_mode, mode_);
  return r;
}

}  // namespace ulayer
