#include "core/runtime.h"

#include "verify/verify.h"

namespace ulayer {

ULayerRuntime::ULayerRuntime(const Model& model, const SocSpec& soc, Options options)
    : options_(std::move(options)),
      timing_(soc),
      prepared_(model, options_.config),
      predictor_(timing_, options_.config, {&model.graph}),
      plan_(Partitioner(model.graph, timing_, options_.config, predictor_, options_.partitioner)
                .Build()),
      executor_(prepared_, soc) {
  if (options_.config.verify) {
    ThrowIfErrors("graph verification failed for " + model.name, VerifyGraph(model.graph));
    ThrowIfErrors("plan verification failed for " + model.name,
                  VerifyPlan(model.graph, plan_, options_.config));
  }
}

void ULayerRuntime::Calibrate(const std::vector<Tensor>& inputs) {
  if (options_.config.storage != DType::kQUInt8) {
    return;
  }
  prepared_.Calibrate(inputs);
  if (!options_.config.verify) {
    return;
  }
  // Quantization-scale sanity (Section 4): calibration must never produce
  // degenerate scales or out-of-range zero points.
  Report report =
      VerifyActivationQuantization(prepared_.graph(), prepared_.activation_params());
  for (const auto& [id, weights] : prepared_.model().weights) {
    (void)weights;
    const Tensor& filters = prepared_.Filters(id);
    CheckQuantParams(QuantParams{filters.scale(), filters.zero_point()}, id, "filter", report);
    if (options_.config.per_channel_weights) {
      for (const QuantParams& qp : prepared_.FilterChannelParams(id).channels) {
        CheckQuantParams(qp, id, "per-channel filter", report);
      }
    }
  }
  ThrowIfErrors("quantization verification failed for " + prepared_.model().name, report);
}

RunResult ULayerRuntime::Run(const Tensor* input) { return executor_.Run(plan_, input); }

}  // namespace ulayer
