#include "core/memory_plan.h"

#include <algorithm>

#include "core/compute.h"
#include "memory/arena.h"

namespace ulayer {

std::vector<std::vector<bool>> BuildReachability(const Graph& g) {
  const size_t n = static_cast<size_t>(g.size());
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  // Node ids are topological, so one reverse sweep suffices:
  // reach[i] = union over consumers c of ({c} | reach[c]).
  for (int64_t i = static_cast<int64_t>(n) - 1; i >= 0; --i) {
    std::vector<bool>& ri = reach[static_cast<size_t>(i)];
    for (const int c : g.Consumers(static_cast<int>(i))) {
      ri[static_cast<size_t>(c)] = true;
      const std::vector<bool>& rc = reach[static_cast<size_t>(c)];
      for (size_t j = 0; j < n; ++j) {
        if (rc[j]) {
          ri[j] = true;
        }
      }
    }
  }
  return reach;
}

MemoryLayout BuildMemoryLayout(const PreparedModel& pm) {
  const Graph& g = pm.graph();
  MemoryLayout layout;

  layout.scratch_bytes = 0;
  for (const Node& n : g.nodes()) {
    layout.scratch_bytes = std::max(layout.scratch_bytes, NodeScratchBytes(pm, n));
  }

  // Liveness: act[i] must stay alive from its own step until its last
  // consumer's step; the network output is read after the node loop.
  layout.last_use.assign(static_cast<size_t>(g.size()), 0);
  for (const Node& n : g.nodes()) {
    layout.last_use[static_cast<size_t>(n.id)] =
        std::max(layout.last_use[static_cast<size_t>(n.id)], static_cast<int64_t>(n.id));
    for (const int in : n.inputs) {
      layout.last_use[static_cast<size_t>(in)] =
          std::max(layout.last_use[static_cast<size_t>(in)], static_cast<int64_t>(n.id));
    }
  }
  layout.last_use[static_cast<size_t>(g.OutputId())] = g.size();

  std::vector<memory::BufferRequest> reqs(static_cast<size_t>(g.size()));
  layout.bytes.assign(static_cast<size_t>(g.size()), 0);
  for (const Node& n : g.nodes()) {
    memory::BufferRequest& r = reqs[static_cast<size_t>(n.id)];
    r.live_begin = n.id;
    r.live_end = layout.last_use[static_cast<size_t>(n.id)];
    // The input tensor stays an owning tensor (PrepareInput); bytes = 0
    // keeps it out of the pool without perturbing the request indexing.
    r.bytes = n.desc.kind == LayerKind::kInput
                  ? 0
                  : n.out_shape.NumElements() * DTypeSize(pm.ActivationDType(n.id));
    layout.bytes[static_cast<size_t>(n.id)] = r.bytes;
  }

  // Concurrency-safe conflict rule: buffers of producers i < j may share
  // bytes only if EVERY use u of buffer i (the producer itself plus all its
  // consumers) has a strict graph path u -> j — then u's read is over before
  // j's write can start on any device timeline. The virtual after-the-loop
  // read of the graph output has no path anywhere, so the output buffer
  // never shares.
  const std::vector<std::vector<bool>> reach = BuildReachability(g);
  std::vector<std::vector<int>> consumers(static_cast<size_t>(g.size()));
  for (const Node& n : g.nodes()) {
    for (const int in : n.inputs) {
      consumers[static_cast<size_t>(in)].push_back(n.id);
    }
  }
  const auto happens_before = [&](int64_t u, int64_t j) {
    return u < static_cast<int64_t>(g.size()) &&
           reach[static_cast<size_t>(u)][static_cast<size_t>(j)];
  };
  const auto conflict = [&](size_t a, size_t b) {
    const size_t i = std::min(a, b);
    const size_t j = std::max(a, b);
    if (!happens_before(static_cast<int64_t>(i), static_cast<int64_t>(j))) {
      return true;  // Producer i itself may still be running alongside j.
    }
    // Note c == j conflicts too (happens_before is strict): step j reading
    // buffer i must not find its own output bytes there.
    for (const int c : consumers[i]) {
      if (!happens_before(c, static_cast<int64_t>(j))) {
        return true;
      }
    }
    if (static_cast<int>(i) == g.OutputId()) {
      return true;  // Virtual read at step g.size().
    }
    return false;
  };

  const memory::BufferPlan plan = memory::PackBuffers(reqs, conflict);
  layout.offsets = plan.offsets;
  layout.pool_bytes = plan.pool_bytes;
  return layout;
}

}  // namespace ulayer
