// Structured run observability (DESIGN.md Section 11).
//
// The executor's KernelTrace is a bare {node, proc, start, end} list — enough
// for an ASCII timeline, useless for answering "why is this run slow":
// which overheads (sync, map, enqueue issue) ate the gap, whether a retry
// storm occupied the GPU, how far the latency predictor drifted from the
// simulated schedule. A RunTrace carries typed spans with that attribution:
// every occupying interval on a device timeline (kernels, failed attempts,
// issue calls, staging copies, retry backoff) plus the non-occupying latency
// gaps (syncs, zero-copy cache maintenance), each annotated with op kind,
// kernel flavor, channel slice, bytes/MACs and fault linkage.
//
// Recording is driven by ExecConfig::trace (or the ULAYER_TRACE environment
// variable) through a null-safe TraceSink: with tracing off the sink is
// empty, no span state is touched, and the executor's Schedule sequence —
// hence the simulated timeline — is bit-identical to a build without this
// subsystem.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.h"
#include "nn/graph.h"
#include "soc/spec.h"
#include "tensor/dtype.h"

namespace ulayer::trace {

// What a span's interval represents. Occupying kinds charge device busy time
// (their durations sum to Device::TotalBusyUs, the T404 invariant);
// non-occupying kinds are latency gaps that occupy no execution unit.
enum class SpanKind : uint8_t {
  kKernel,   // A kernel that ran to completion (occupying).
  kAttempt,  // A failed GPU attempt: timeouts occupy their window, fail-fast
             // attempts are zero-width (occupying).
  kIssue,    // CPU time spent issuing the GPU command (occupying).
  kStage,    // Bandwidth-priced staging copy, zero-copy off (occupying).
  kBackoff,  // Retry backoff charged to the host thread (occupying).
  kSync,     // CPU-GPU synchronization (non-occupying latency).
  kMap,      // Zero-copy cache maintenance before a GPU kernel
             // (non-occupying latency on the GPU's ready time).
};

// Fault annotation on a span (and on the executor's KernelTrace entries),
// linking the schedule back to the injector's FaultEvent log.
enum class FaultTag : uint8_t {
  kNone,           // Fault-free.
  kRetried,        // Kernel that succeeded after one or more failed attempts.
  kFailedAttempt,  // The aborted attempt itself (kAttempt spans).
  kFallback,       // CPU re-execution of failed GPU work.
  kRerouted,       // Step moved to the CPU by the open circuit breaker.
};

std::string_view SpanKindName(SpanKind kind);
std::string_view FaultTagName(FaultTag tag);
// True for kinds whose duration is charged as device busy time.
bool IsOccupying(SpanKind kind);

struct Span {
  int node = -1;
  ProcKind proc = ProcKind::kCpu;
  SpanKind kind = SpanKind::kKernel;
  LayerKind op = LayerKind::kInput;  // Graph op of the node (kernel spans).
  DType compute = DType::kF32;       // Kernel arithmetic flavor.
  // Output-channel slice [c_begin, c_end) the span computed (kernel spans;
  // end < 0 elsewhere).
  int64_t c_begin = 0;
  int64_t c_end = -1;
  double start_us = 0.0;
  double end_us = 0.0;
  double bytes = 0.0;         // Memory traffic attributed to the span.
  double macs = 0.0;          // Arithmetic work of the slice.
  double overhead_us = 0.0;   // Fixed overhead inside the span (kernel
                              // launch, issue call, map/sync cost).
  double predicted_us = 0.0;  // Timing-model prediction for kernel spans
                              // (launch + body); 0 when not applicable.
  FaultTag fault = FaultTag::kNone;
  int fault_event = -1;  // Index into RunTrace::fault_events, or -1.

  double duration_us() const { return end_us - start_us; }
};

// One queue-depth sample: while recording, `depth` holds the ±1 delta at
// enqueue/completion; FinalizeQueueDepth sorts the samples and converts them
// into the cumulative outstanding-command count per device.
struct QueueSample {
  ProcKind proc = ProcKind::kCpu;
  double t_us = 0.0;
  int depth = 0;
};

// The structured trace of one Executor run. Vectors keep their capacity
// across RunInto reuse; Clear() never frees.
struct RunTrace {
  bool enabled = false;
  std::vector<Span> spans;              // In issue order, devices interleaved.
  std::vector<QueueSample> queue_depth; // Cumulative after FinalizeQueueDepth.
  std::vector<fault::FaultEvent> fault_events;  // Copy of the injector log.

  // Run-level ground truth the invariant verifier checks the spans against.
  double latency_us = 0.0;
  double cpu_busy_us = 0.0;
  double gpu_busy_us = 0.0;
  int sync_count = 0;
  int64_t slowdowns = 0;          // Injected throttle faults (not in events).
  int64_t arena_high_water = 0;   // Scratch-arena high-water mark, bytes.

  void Clear();
};

// Converts the recorded ±1 queue deltas into time-ordered cumulative depth
// samples (ties resolve completions before enqueues).
void FinalizeQueueDepth(RunTrace& rt);

// Null-safe recording facade the executor writes through. With a null
// RunTrace every call is a no-op returning nullptr, so call sites stay
// branch-cheap and the timeline arithmetic never depends on tracing.
class TraceSink {
 public:
  TraceSink() = default;
  explicit TraceSink(RunTrace* rt) : rt_(rt) {}

  bool on() const { return rt_ != nullptr; }
  RunTrace* run_trace() { return rt_; }

  // Appends a span and returns it for field-by-field enrichment, or nullptr
  // when the sink is off.
  Span* AddSpan(SpanKind kind, int node, ProcKind proc, double start_us, double end_us);
  // Records an outstanding-command delta (+1 at enqueue, -1 at completion).
  void QueueDelta(ProcKind proc, double t_us, int delta);

 private:
  RunTrace* rt_ = nullptr;
};

// --- Predictor-fidelity table ------------------------------------------------

// Per-kernel-span predicted-vs-simulated latency. The simulation runs on the
// same timing model the predictor uses, so fault-free ratios are 1.0 to
// floating-point round-off; slowdown faults surface as the throttle factor
// and retried/fallback work shows the recovery cost. This generalizes
// ULayerRuntime's scalar observed_over_predicted GPU ratio into the full
// table (DESIGN.md Section 11).
struct DriftRow {
  int node = -1;
  ProcKind proc = ProcKind::kCpu;
  LayerKind op = LayerKind::kInput;
  FaultTag fault = FaultTag::kNone;
  double predicted_us = 0.0;
  double simulated_us = 0.0;
  double ratio = 0.0;  // simulated / predicted.
};

struct DriftReport {
  std::vector<DriftRow> rows;  // One per kernel span, in issue order.
  // Duration-weighted aggregate ratios; 0 when the device ran no kernels.
  double cpu_ratio = 0.0;
  double gpu_ratio = 0.0;
  double overall_ratio = 0.0;
  double max_abs_deviation = 0.0;  // max |ratio - 1| over the rows.

  // Fixed-width table (tools/ulayer_verify --metrics).
  std::string ToString(const Graph* graph = nullptr) const;
};

// Builds the table from a RunTrace's kernel spans (kAttempt spans are
// excluded: an aborted attempt has no meaningful prediction).
DriftReport BuildDriftReport(const RunTrace& rt);

// --- Drift aggregation for the adaptation loop -------------------------------

// Duration-weighted drift of one (layer kind, processor) cell: the shape the
// predictor's correction table consumes (DESIGN.md Section 16).
struct DriftCell {
  LayerKind op = LayerKind::kInput;
  ProcKind proc = ProcKind::kCpu;
  double predicted_us = 0.0;  // Sum of predictions over contributing rows.
  double simulated_us = 0.0;  // Sum of simulated durations.
  int samples = 0;
  double ratio = 0.0;  // simulated / predicted.
};

struct DriftAggregate {
  // Non-empty cells, ordered by (op, proc) — deterministic regardless of
  // span interleaving.
  std::vector<DriftCell> cells;
  double overall_ratio = 0.0;
  // False when no row contributed (e.g. a CPU-only run with prediction-less
  // spans): callers must not treat ratios as evidence then.
  bool has_evidence = false;
};

// Collapses a drift report into per-(op, proc) cells. Rows whose work moved
// to a different processor than planned (kFallback, kRerouted) are excluded:
// their ratio measures the reroute penalty, not the drift of the processor
// that ran them. kNone and kRetried rows are included — a retry storm IS
// drift the correction table should absorb.
DriftAggregate AggregateDrift(const DriftReport& report);

}  // namespace ulayer::trace
