// Chrome trace-event JSON export of a RunTrace (DESIGN.md Section 11).
//
// The exported file is the "JSON Object Format" of the Trace Event spec and
// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing: one
// track per device (CPU tid 0, GPU tid 1), a third track for non-occupying
// latency gaps (syncs, zero-copy maps), and one counter track per device
// showing outstanding enqueued commands. Span metadata (op kind, kernel
// flavor, channel slice, bytes, MACs, overheads, fault annotations) rides in
// each event's args.
//
// ParseJson is a minimal strict parser for the subset JSON the exporter
// emits (objects, arrays, strings, finite numbers, booleans, null); the
// round-trip tests use it to validate the export schema without an external
// JSON dependency.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nn/graph.h"
#include "trace/trace.h"

namespace ulayer::trace {

struct ChromeExportOptions {
  const Graph* graph = nullptr;  // Optional: span names use graph node names.
  std::string_view model;        // otherData annotations (may be empty).
  std::string_view soc;
  std::string_view config;
};

// Renders `rt` as a Chrome trace-event JSON document. Doubles are printed
// with round-trip precision, so ParseJson(ChromeTraceJson(rt)) reproduces
// every timestamp bit-exactly.
std::string ChromeTraceJson(const RunTrace& rt, const ChromeExportOptions& options = {});

// Thread ids used by the exporter (and checked by the schema tests).
inline constexpr int kChromeTidCpu = 0;
inline constexpr int kChromeTidGpu = 1;
inline constexpr int kChromeTidGaps = 2;

// --- Minimal JSON value model ------------------------------------------------

struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject, in order

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Parses one JSON document (trailing whitespace allowed, nothing else).
// Throws ulayer::Error(kParse) on malformed input.
JsonValue ParseJson(std::string_view text);

}  // namespace ulayer::trace
