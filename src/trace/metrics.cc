#include "trace/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ulayer::trace {
namespace {

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Bucket index for value v: 0 for v <= 1, otherwise the smallest b with
// kGrowth^b >= v, saturating into the overflow slot.
int BucketIndex(double v) {
  if (!(v > 1.0)) {
    return 0;
  }
  const double b = std::ceil(std::log(v) / std::log(Histogram::kGrowth));
  if (!(b > 0.0)) {
    return 0;
  }
  if (b >= static_cast<double>(Histogram::kNumBounds)) {
    return Histogram::kNumBounds;
  }
  return static_cast<int>(b);
}

// Lower edge of bucket b (0 for the catch-all first bucket).
double BucketLower(int b) { return b == 0 ? 0.0 : std::pow(Histogram::kGrowth, b - 1); }

double BucketUpper(int b) { return std::pow(Histogram::kGrowth, b); }

}  // namespace

void Histogram::Observe(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  sum += v;
  ++count;
  ++buckets[static_cast<size_t>(BucketIndex(v))];
}

double Histogram::Quantile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  if (p <= 0.0 || min == max) {
    return min;
  }
  if (p >= 1.0) {
    return max;
  }
  const double target = p * static_cast<double>(count);
  double cum = 0.0;
  for (int b = 0; b <= kNumBounds; ++b) {
    const double in_bucket = static_cast<double>(buckets[static_cast<size_t>(b)]);
    if (in_bucket <= 0.0) {
      continue;
    }
    if (cum + in_bucket >= target) {
      const double lo = b > kNumBounds - 1 ? BucketUpper(kNumBounds - 1) : BucketLower(b);
      const double hi = b > kNumBounds - 1 ? max : BucketUpper(b);
      const double frac = std::clamp((target - cum) / in_bucket, 0.0, 1.0);
      return std::clamp(lo + (hi - lo) * frac, min, max);
    }
    cum += in_bucket;
  }
  return max;
}

void MetricsRegistry::Count(std::string_view name, int64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.Observe(value);
}

void MetricsRegistry::AddRun(const RunTrace& rt) {
  Count("runs");
  Count("spans", static_cast<int64_t>(rt.spans.size()));
  Count("syncs", rt.sync_count);
  Count("faults_injected", static_cast<int64_t>(rt.fault_events.size()));
  Count("slowdowns", rt.slowdowns);
  Observe("latency_us", rt.latency_us);
  Observe("cpu_busy_us", rt.cpu_busy_us);
  Observe("gpu_busy_us", rt.gpu_busy_us);
  Observe("sync_count", static_cast<double>(rt.sync_count));
  Observe("arena_high_water_bytes", static_cast<double>(rt.arena_high_water));
  for (const Span& sp : rt.spans) {
    const std::string kind(SpanKindName(sp.kind));
    Observe("span_us." + kind, sp.duration_us());
    if (sp.overhead_us > 0.0) {
      Observe("overhead_us." + kind, sp.overhead_us);
    }
    switch (sp.kind) {
      case SpanKind::kKernel: {
        Observe("kernel_us." + std::string(LayerKindName(sp.op)) + "." +
                    (sp.proc == ProcKind::kCpu ? "cpu" : "gpu"),
                sp.duration_us());
        Count("kernel_bytes", static_cast<int64_t>(sp.bytes));
        Count("kernel_macs", static_cast<int64_t>(sp.macs));
        if (sp.fault == FaultTag::kFallback) {
          Count("fallbacks");
        } else if (sp.fault == FaultTag::kRerouted) {
          Count("rerouted_kernels");
        }
        break;
      }
      case SpanKind::kAttempt:
        Count("failed_attempts");
        break;
      case SpanKind::kBackoff:
        Count("retries");
        break;
      default:
        break;
    }
  }
  for (const QueueSample& q : rt.queue_depth) {
    Observe(q.proc == ProcKind::kCpu ? "queue_depth.cpu" : "queue_depth.gpu",
            static_cast<double>(q.depth));
  }
}

int64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::ToString() const {
  std::ostringstream os;
  os << "counters:\n";
  for (const auto& [name, value] : counters_) {
    os << "  " << name << " = " << value << "\n";
  }
  os << "histograms (count / mean / min / max / p50 / p99):\n";
  for (const auto& [name, h] : histograms_) {
    os << "  " << name << " = " << h.count << " / " << Num(h.mean()) << " / " << Num(h.min)
       << " / " << Num(h.max) << " / " << Num(h.Quantile(0.5)) << " / " << Num(h.Quantile(0.99))
       << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": " << h.count
       << ", \"sum\": " << Num(h.sum) << ", \"mean\": " << Num(h.mean())
       << ", \"min\": " << Num(h.min) << ", \"max\": " << Num(h.max)
       << ", \"p50\": " << Num(h.Quantile(0.5)) << ", \"p99\": " << Num(h.Quantile(0.99)) << "}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

}  // namespace ulayer::trace
