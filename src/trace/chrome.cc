#include "trace/chrome.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/error.h"

namespace ulayer::trace {
namespace {

// %.17g survives a strtod round trip bit-exactly for every finite double,
// which is what lets the tests compare parsed timestamps with ==.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Str(std::string_view s) { return "\"" + Escape(s) + "\""; }

int SpanTid(const Span& sp) {
  if (!IsOccupying(sp.kind)) {
    return kChromeTidGaps;
  }
  return sp.proc == ProcKind::kCpu ? kChromeTidCpu : kChromeTidGpu;
}

std::string SpanName(const Span& sp, const Graph* g) {
  std::string node = "node" + std::to_string(sp.node);
  if (g != nullptr && sp.node >= 0 && sp.node < g->size()) {
    node = g->node(sp.node).desc.name;
  }
  if (sp.kind == SpanKind::kKernel || sp.kind == SpanKind::kAttempt) {
    std::string name = node;
    if (sp.c_end >= 0) {
      name += " [" + std::to_string(sp.c_begin) + "," + std::to_string(sp.c_end) + ")";
    }
    name += " " + std::string(DTypeName(sp.compute));
    if (sp.kind == SpanKind::kAttempt) {
      name = "attempt! " + name;
    } else if (sp.fault != FaultTag::kNone) {
      name = std::string(FaultTagName(sp.fault)) + " " + name;
    }
    return name;
  }
  return std::string(SpanKindName(sp.kind)) + " " + node;
}

void MetaEvent(std::ostringstream& os, const char* what, int tid, std::string_view name,
               bool& first) {
  os << (first ? "\n  " : ",\n  ") << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
     << ",\"name\":" << Str(what) << ",\"args\":{\"name\":" << Str(name) << "}}";
  first = false;
}

}  // namespace

std::string ChromeTraceJson(const RunTrace& rt, const ChromeExportOptions& options) {
  std::ostringstream os;
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {";
  os << "\"tool\": \"ulayer\"";
  if (!options.model.empty()) {
    os << ", \"model\": " << Str(options.model);
  }
  if (!options.soc.empty()) {
    os << ", \"soc\": " << Str(options.soc);
  }
  if (!options.config.empty()) {
    os << ", \"config\": " << Str(options.config);
  }
  os << ", \"latency_us\": " << Num(rt.latency_us) << ", \"cpu_busy_us\": " << Num(rt.cpu_busy_us)
     << ", \"gpu_busy_us\": " << Num(rt.gpu_busy_us) << ", \"sync_count\": " << rt.sync_count
     << ", \"slowdowns\": " << rt.slowdowns << ", \"faults\": " << rt.fault_events.size()
     << ", \"arena_high_water_bytes\": " << rt.arena_high_water << "},\n\"traceEvents\": [";

  bool first = true;
  MetaEvent(os, "process_name", 0, "ulayer run", first);
  MetaEvent(os, "thread_name", kChromeTidCpu, "CPU", first);
  MetaEvent(os, "thread_name", kChromeTidGpu, "GPU", first);
  MetaEvent(os, "thread_name", kChromeTidGaps, "sync/map gaps", first);

  for (const Span& sp : rt.spans) {
    os << ",\n  {\"ph\":\"X\",\"pid\":0,\"tid\":" << SpanTid(sp)
       << ",\"name\":" << Str(SpanName(sp, options.graph))
       << ",\"cat\":" << Str(SpanKindName(sp.kind)) << ",\"ts\":" << Num(sp.start_us)
       << ",\"dur\":" << Num(sp.duration_us()) << ",\"args\":{";
    os << "\"node\":" << sp.node << ",\"proc\":" << Str(sp.proc == ProcKind::kCpu ? "cpu" : "gpu")
       << ",\"kind\":" << Str(SpanKindName(sp.kind)) << ",\"op\":" << Str(LayerKindName(sp.op))
       << ",\"dtype\":" << Str(DTypeName(sp.compute));
    if (sp.c_end >= 0) {
      os << ",\"c_begin\":" << sp.c_begin << ",\"c_end\":" << sp.c_end;
    }
    os << ",\"bytes\":" << Num(sp.bytes) << ",\"macs\":" << Num(sp.macs)
       << ",\"overhead_us\":" << Num(sp.overhead_us);
    if (sp.predicted_us > 0.0) {
      os << ",\"predicted_us\":" << Num(sp.predicted_us);
    }
    os << ",\"fault\":" << Str(FaultTagName(sp.fault));
    if (sp.fault_event >= 0) {
      os << ",\"fault_event\":" << sp.fault_event;
      if (static_cast<size_t>(sp.fault_event) < rt.fault_events.size()) {
        os << ",\"fault_detail\":" << Str(rt.fault_events[static_cast<size_t>(sp.fault_event)]
                                              .ToString());
      }
    }
    os << "}}";
  }

  for (const QueueSample& q : rt.queue_depth) {
    const bool cpu = q.proc == ProcKind::kCpu;
    os << ",\n  {\"ph\":\"C\",\"pid\":0,\"tid\":" << (cpu ? kChromeTidCpu : kChromeTidGpu)
       << ",\"name\":" << Str(cpu ? "cpu queue depth" : "gpu queue depth")
       << ",\"ts\":" << Num(q.t_us) << ",\"args\":{\"outstanding\":" << q.depth << "}}";
  }

  os << "\n]\n}\n";
  return os.str();
}

// --- JSON parsing ------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) {
    throw Error(ErrorCode::kParse,
                "json: " + why + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  JsonValue ParseValue() {
    SkipWs();
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = ParseString();
        return v;
      }
      case 't':
      case 'f':
        return ParseKeyword(c == 't' ? "true" : "false", c == 't');
      case 'n': {
        JsonValue v = ParseKeyword("null", false);
        v.kind = JsonValue::Kind::kNull;
        return v;
      }
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseKeyword(std::string_view word, bool value) {
    if (text_.substr(pos_, word.size()) != word) {
      Fail("bad keyword");
    }
    pos_ += word.size();
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = value;
    return v;
  }

  JsonValue ParseNumber() {
    const size_t begin = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) {
      Fail("expected a value");
    }
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double num = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(num)) {
      Fail("malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = num;
    return v;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
          }
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          char* end = nullptr;
          const long cp = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) {
            Fail("malformed \\u escape");
          }
          // The exporter only emits \u00xx control escapes; decode those and
          // pass anything wider through as '?' (lossy but schema-sufficient).
          out += cp < 0x80 ? static_cast<char>(cp) : '?';
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      v.members.emplace_back(std::move(key), ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : members) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

JsonValue ParseJson(std::string_view text) { return JsonParser(text).Parse(); }

}  // namespace ulayer::trace
