// MetricsRegistry: counters and histograms aggregated across runs
// (DESIGN.md Section 11).
//
// One registry accumulates any number of RunTraces (AddRun) plus ad-hoc
// Count/Observe calls, yielding the aggregate view CI trends on: per-op-kind
// kernel latency per device, sync counts, retry/fallback/reroute totals,
// arena high-water, queue depth. Exported as a stable-format JSON document
// (BENCH_trace.json) or a human-readable table.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "trace/trace.h"

namespace ulayer::trace {

// Count / sum / min / max summary of an observed value stream, plus
// fixed-boundary geometric buckets so quantiles (p50/p99) can be estimated
// without retaining samples. Bucket b's upper bound is kGrowth^b: bucket 0
// absorbs everything <= 1 (latencies below 1us, zeros, negatives), the last
// slot is the overflow bucket. With kGrowth = 1.25 the 96 bounds reach
// ~1.6e9, covering every stream the registry records (microseconds, bytes,
// depths) with a worst-case relative quantile error of one bucket ratio.
struct Histogram {
  static constexpr int kNumBounds = 96;
  static constexpr double kGrowth = 1.25;

  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<int64_t, kNumBounds + 1> buckets{};  // [0..kNumBounds-1] bounded, last = overflow.

  void Observe(double v);
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  // Estimated p-quantile (p in [0,1]) by cumulative bucket walk with linear
  // interpolation inside the landing bucket, clamped to [min, max]. Exact for
  // degenerate streams (count <= 1 or min == max); 0 when empty.
  double Quantile(double p) const;
};

class MetricsRegistry {
 public:
  // Monotonic counter increment.
  void Count(std::string_view name, int64_t delta = 1);
  // Histogram observation.
  void Observe(std::string_view name, double value);

  // Folds one run's trace into the registry:
  //   counters:   runs, spans, syncs, retries, failed_attempts, fallbacks,
  //               rerouted_kernels, faults_injected, slowdowns,
  //               kernel_bytes, kernel_macs
  //   histograms: latency_us, cpu_busy_us, gpu_busy_us, sync_count,
  //               arena_high_water_bytes, span_us.<kind>,
  //               kernel_us.<op>.<cpu|gpu>, overhead_us.<kind>,
  //               queue_depth.<cpu|gpu>
  void AddRun(const RunTrace& rt);

  int64_t counter(std::string_view name) const;        // 0 when absent.
  const Histogram* histogram(std::string_view name) const;  // nullptr when absent.

  bool empty() const { return counters_.empty() && histograms_.empty(); }

  // Sorted "name value" / "name count/mean/min/max/p50/p99" lines.
  std::string ToString() const;
  // {"counters": {...}, "histograms": {name: {count,sum,mean,min,max,p50,p99}}}.
  std::string ToJson() const;

 private:
  std::map<std::string, int64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace ulayer::trace
