#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace ulayer::trace {

std::string_view SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kKernel:
      return "kernel";
    case SpanKind::kAttempt:
      return "attempt";
    case SpanKind::kIssue:
      return "issue";
    case SpanKind::kStage:
      return "stage";
    case SpanKind::kBackoff:
      return "backoff";
    case SpanKind::kSync:
      return "sync";
    case SpanKind::kMap:
      return "map";
  }
  return "unknown";
}

std::string_view FaultTagName(FaultTag tag) {
  switch (tag) {
    case FaultTag::kNone:
      return "none";
    case FaultTag::kRetried:
      return "retried";
    case FaultTag::kFailedAttempt:
      return "failed-attempt";
    case FaultTag::kFallback:
      return "fallback";
    case FaultTag::kRerouted:
      return "rerouted";
  }
  return "unknown";
}

bool IsOccupying(SpanKind kind) {
  switch (kind) {
    case SpanKind::kKernel:
    case SpanKind::kAttempt:
    case SpanKind::kIssue:
    case SpanKind::kStage:
    case SpanKind::kBackoff:
      return true;
    case SpanKind::kSync:
    case SpanKind::kMap:
      return false;
  }
  return false;
}

void RunTrace::Clear() {
  enabled = false;
  spans.clear();
  queue_depth.clear();
  fault_events.clear();
  latency_us = cpu_busy_us = gpu_busy_us = 0.0;
  sync_count = 0;
  slowdowns = 0;
  arena_high_water = 0;
}

void FinalizeQueueDepth(RunTrace& rt) {
  // Enqueues (+1) sort before completions (-1) at equal times: every -1 has
  // a matching +1 at an earlier-or-equal time, so the cumulative count can
  // never go negative — including zero-width fail-fast attempts whose
  // enqueue and completion share a timestamp. Plain sort (not stable_sort,
  // whose merge buffer would break Run()'s zero-allocation guarantee) is
  // still deterministic: samples equal under the comparator are identical.
  std::sort(rt.queue_depth.begin(), rt.queue_depth.end(),
            [](const QueueSample& a, const QueueSample& b) {
              if (a.proc != b.proc) {
                return a.proc == ProcKind::kCpu && b.proc != ProcKind::kCpu;
              }
              if (a.t_us != b.t_us) {
                return a.t_us < b.t_us;
              }
              return a.depth > b.depth;
            });
  int depth[2] = {0, 0};
  for (QueueSample& s : rt.queue_depth) {
    int& d = depth[s.proc == ProcKind::kCpu ? 0 : 1];
    d += s.depth;
    s.depth = d;
  }
}

Span* TraceSink::AddSpan(SpanKind kind, int node, ProcKind proc, double start_us,
                         double end_us) {
  if (rt_ == nullptr) {
    return nullptr;
  }
  rt_->spans.emplace_back();
  Span& sp = rt_->spans.back();
  sp.kind = kind;
  sp.node = node;
  sp.proc = proc;
  sp.start_us = start_us;
  sp.end_us = end_us;
  return &sp;
}

void TraceSink::QueueDelta(ProcKind proc, double t_us, int delta) {
  if (rt_ == nullptr) {
    return;
  }
  rt_->queue_depth.push_back(QueueSample{proc, t_us, delta});
}

DriftReport BuildDriftReport(const RunTrace& rt) {
  DriftReport report;
  double sum[2] = {0.0, 0.0};       // Simulated kernel time per device.
  double expected[2] = {0.0, 0.0};  // Predicted kernel time per device.
  for (const Span& sp : rt.spans) {
    if (sp.kind != SpanKind::kKernel || sp.predicted_us <= 0.0) {
      continue;
    }
    DriftRow row;
    row.node = sp.node;
    row.proc = sp.proc;
    row.op = sp.op;
    row.fault = sp.fault;
    row.predicted_us = sp.predicted_us;
    row.simulated_us = sp.duration_us();
    row.ratio = row.simulated_us / row.predicted_us;
    report.max_abs_deviation = std::max(report.max_abs_deviation, std::abs(row.ratio - 1.0));
    const int d = sp.proc == ProcKind::kCpu ? 0 : 1;
    sum[d] += row.simulated_us;
    expected[d] += row.predicted_us;
    report.rows.push_back(row);
  }
  report.cpu_ratio = expected[0] > 0.0 ? sum[0] / expected[0] : 0.0;
  report.gpu_ratio = expected[1] > 0.0 ? sum[1] / expected[1] : 0.0;
  const double total_expected = expected[0] + expected[1];
  report.overall_ratio = total_expected > 0.0 ? (sum[0] + sum[1]) / total_expected : 0.0;
  return report;
}

DriftAggregate AggregateDrift(const DriftReport& report) {
  DriftAggregate agg;
  // Fixed-shape accumulators keep the cell order (op, proc) independent of
  // span interleaving.
  struct Acc {
    double predicted = 0.0;
    double simulated = 0.0;
    int samples = 0;
  };
  Acc acc[kLayerKindCount][2] = {};
  double total_predicted = 0.0;
  double total_simulated = 0.0;
  for (const DriftRow& row : report.rows) {
    if (row.fault == FaultTag::kFallback || row.fault == FaultTag::kRerouted) {
      continue;  // Ran on a different processor than planned.
    }
    if (row.predicted_us <= 0.0) {
      continue;
    }
    Acc& a = acc[static_cast<size_t>(row.op)][row.proc == ProcKind::kCpu ? 0 : 1];
    a.predicted += row.predicted_us;
    a.simulated += row.simulated_us;
    ++a.samples;
    total_predicted += row.predicted_us;
    total_simulated += row.simulated_us;
  }
  for (int op = 0; op < kLayerKindCount; ++op) {
    for (int pi = 0; pi < 2; ++pi) {
      const Acc& a = acc[op][pi];
      if (a.samples == 0 || a.predicted <= 0.0) {
        continue;
      }
      DriftCell cell;
      cell.op = static_cast<LayerKind>(op);
      cell.proc = pi == 0 ? ProcKind::kCpu : ProcKind::kGpu;
      cell.predicted_us = a.predicted;
      cell.simulated_us = a.simulated;
      cell.samples = a.samples;
      cell.ratio = a.simulated / a.predicted;
      agg.cells.push_back(cell);
    }
  }
  agg.has_evidence = !agg.cells.empty();
  agg.overall_ratio = total_predicted > 0.0 ? total_simulated / total_predicted : 0.0;
  return agg;
}

std::string DriftReport::ToString(const Graph* graph) const {
  std::ostringstream os;
  os << "predictor drift (simulated / predicted kernel latency)\n";
  os << std::left << std::setw(24) << "  node" << std::setw(5) << "proc" << std::right
     << std::setw(14) << "predicted_us" << std::setw(14) << "simulated_us" << std::setw(10)
     << "ratio"
     << "  fault\n";
  for (const DriftRow& r : rows) {
    std::string name = "node " + std::to_string(r.node);
    if (graph != nullptr && r.node >= 0 && r.node < graph->size()) {
      name = graph->node(r.node).desc.name;
    }
    os << "  " << std::left << std::setw(22) << name << std::setw(5)
       << (r.proc == ProcKind::kCpu ? "cpu" : "gpu") << std::right << std::fixed
       << std::setprecision(3) << std::setw(14) << r.predicted_us << std::setw(14)
       << r.simulated_us << std::setprecision(6) << std::setw(10) << r.ratio;
    os.unsetf(std::ios::fixed);
    if (r.fault != FaultTag::kNone) {
      os << "  " << FaultTagName(r.fault);
    }
    os << "\n";
  }
  os << std::fixed << std::setprecision(6);
  os << "  aggregate: cpu " << cpu_ratio << ", gpu " << gpu_ratio << ", overall "
     << overall_ratio << ", max |ratio-1| " << std::scientific << std::setprecision(3)
     << max_abs_deviation << "\n";
  return os.str();
}

}  // namespace ulayer::trace
