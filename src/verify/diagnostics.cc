#include "verify/diagnostics.h"

#include <sstream>

namespace ulayer {

std::string DiagCodeId(DiagCode code) {
  // The numeric value doubles as the printed id: G004, P106, C201, Q301.
  // Keeping the group offset visible makes codes greppable and stable even
  // if groups grow past ten entries.
  const auto v = static_cast<uint16_t>(code);
  const char prefix = v < 100   ? 'G'
                      : v < 200 ? 'P'
                      : v < 300 ? 'C'
                      : v < 400 ? 'Q'
                      : v < 500 ? 'T'
                      : v < 800 ? 'A'
                      : v < 900 ? 'N'
                                : 'H';
  std::ostringstream os;
  os << prefix;
  if (v < 10) {
    os << "00";
  } else if (v < 100) {
    os << "0";
  }
  os << v;
  return os.str();
}

std::string_view DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kGraphEmpty:
      return "graph-empty";
    case DiagCode::kGraphNoInput:
      return "graph-no-input";
    case DiagCode::kNodeIdMismatch:
      return "node-id-mismatch";
    case DiagCode::kEdgeOutOfRange:
      return "edge-out-of-range";
    case DiagCode::kBadArity:
      return "bad-arity";
    case DiagCode::kInvalidShape:
      return "invalid-shape";
    case DiagCode::kShapeMismatch:
      return "shape-mismatch";
    case DiagCode::kBadLayerParams:
      return "bad-layer-params";
    case DiagCode::kEltwiseShapeMismatch:
      return "eltwise-shape-mismatch";
    case DiagCode::kConcatShapeMismatch:
      return "concat-shape-mismatch";
    case DiagCode::kPlanSizeMismatch:
      return "plan-size-mismatch";
    case DiagCode::kBadSplitFraction:
      return "bad-split-fraction";
    case DiagCode::kSplitRatioNotUnity:
      return "split-ratio-not-unity";
    case DiagCode::kCoopNotSplittable:
      return "coop-not-splittable";
    case DiagCode::kSliceOutOfRange:
      return "slice-out-of-range";
    case DiagCode::kSliceOverlap:
      return "slice-overlap";
    case DiagCode::kSliceGap:
      return "slice-gap";
    case DiagCode::kDegenerateSplit:
      return "degenerate-split";
    case DiagCode::kCoopInputChannelMismatch:
      return "coop-input-channel-mismatch";
    case DiagCode::kBranchAssignmentMissing:
      return "branch-assignment-missing";
    case DiagCode::kBranchNodeNotMarked:
      return "branch-node-not-marked";
    case DiagCode::kBranchStepOutsideGroup:
      return "branch-step-outside-group";
    case DiagCode::kBranchGroupInvalid:
      return "branch-group-invalid";
    case DiagCode::kBranchGroupOverlap:
      return "branch-group-overlap";
    case DiagCode::kPlanBatchMismatch:
      return "plan-batch-mismatch";
    case DiagCode::kConfigBadDType:
      return "config-bad-dtype";
    case DiagCode::kConfigQu8OnFloat:
      return "config-qu8-on-float-storage";
    case DiagCode::kConfigUnimplementedCompute:
      return "config-unimplemented-compute";
    case DiagCode::kConfigNegativeThreads:
      return "config-negative-threads";
    case DiagCode::kConfigBadFaultPolicy:
      return "config-bad-fault-policy";
    case DiagCode::kQuantScaleInvalid:
      return "quant-scale-invalid";
    case DiagCode::kQuantZeroPointRange:
      return "quant-zero-point-range";
    case DiagCode::kTraceNotEnabled:
      return "trace-not-enabled";
    case DiagCode::kTraceSpanInvalid:
      return "trace-span-invalid";
    case DiagCode::kTraceOverlap:
      return "trace-overlap";
    case DiagCode::kTraceBusyMismatch:
      return "trace-busy-mismatch";
    case DiagCode::kTraceSyncMismatch:
      return "trace-sync-mismatch";
    case DiagCode::kTraceDrift:
      return "trace-drift";
    case DiagCode::kRaceWriteOverlap:
      return "race-write-overlap";
    case DiagCode::kRaceWriteReadOverlap:
      return "race-write-read-overlap";
    case DiagCode::kWriteOutsideSlice:
      return "write-outside-slice";
    case DiagCode::kLivenessUseAfterReassign:
      return "liveness-use-after-reassign";
    case DiagCode::kPoolIntervalInvalid:
      return "pool-interval-invalid";
    case DiagCode::kScratchOverflow:
      return "scratch-overflow";
    case DiagCode::kChunkWriteOverlap:
      return "chunk-write-overlap";
    case DiagCode::kChunkCoverageGap:
      return "chunk-coverage-gap";
    case DiagCode::kAccessSpecMissing:
      return "access-spec-missing";
    case DiagCode::kNetSliceCoverage:
      return "net-slice-coverage";
    case DiagCode::kNetDoubleDelivery:
      return "net-double-delivery";
    case DiagCode::kNetRetransmitMismatch:
      return "net-retransmit-mismatch";
    case DiagCode::kNetMessageInvalid:
      return "net-message-invalid";
    case DiagCode::kNetDeadWorkerActivity:
      return "net-dead-worker-activity";
    case DiagCode::kAdaptCorrectionInvalid:
      return "adapt-correction-invalid";
    case DiagCode::kAdaptCacheIncoherent:
      return "adapt-cache-incoherent";
    case DiagCode::kAdaptNotConverging:
      return "adapt-not-converging";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << (severity == Severity::kError ? "error " : "warning ") << DiagCodeId(code) << " ("
     << DiagCodeName(code) << ")";
  if (node >= 0) {
    os << " [node " << node << "]";
  }
  os << " " << message;
  return os.str();
}

void Report::Add(DiagCode code, Severity severity, int node, std::string message) {
  if (severity == Severity::kError) {
    ++errors_;
  }
  diags_.push_back(Diagnostic{code, severity, node, std::move(message)});
}

void Report::Merge(const Report& other) {
  for (const Diagnostic& d : other.diags_) {
    Add(d.code, d.severity, d.node, d.message);
  }
}

bool Report::Has(DiagCode code) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == code) {
      return true;
    }
  }
  return false;
}

std::string Report::ToString() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << d.ToString() << "\n";
  }
  return os.str();
}

}  // namespace ulayer
