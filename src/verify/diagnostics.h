// Typed diagnostics for the Graph/Plan static verifiers.
//
// Every check failure is reported as a Diagnostic carrying a stable code
// (for tests, fuzzers and CI to match on), the offending node id and a
// human-readable message. A Report aggregates the diagnostics of one
// verifier pass.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ulayer {

// Stable diagnostic codes. Grouped by prefix: G = graph structure,
// P = plan structure, C = execution config, Q = quantization parameters,
// T = run-trace invariants, A = static memory-access analysis,
// N = distributed (net-layer) run invariants, H = adaptation-loop
// (device-health) invariants.
enum class DiagCode : uint16_t {
  // --- Graph (G0xx) ---------------------------------------------------------
  kGraphEmpty = 1,          // G001: graph has no nodes.
  kGraphNoInput = 2,        // G002: first node is not an input layer.
  kNodeIdMismatch = 3,      // G003: node id does not equal its index.
  kEdgeOutOfRange = 4,      // G004: input edge references a missing node or
                            //       breaks topological (append) order.
  kBadArity = 5,            // G005: wrong number of inputs for the layer kind.
  kInvalidShape = 6,        // G006: non-positive output dimensions.
  kShapeMismatch = 7,       // G007: stored out_shape disagrees with shape
                            //       inference over the node's inputs.
  kBadLayerParams = 8,      // G008: kernel/stride/channel parameters invalid.
  kEltwiseShapeMismatch = 9,  // G009: eltwise-add inputs differ in shape.
  kConcatShapeMismatch = 10,  // G010: concat inputs differ in n/h/w.

  // --- Plan (P1xx) ----------------------------------------------------------
  kPlanSizeMismatch = 101,        // P101: plan.nodes size != graph size.
  kBadSplitFraction = 102,        // P102: cooperative fraction not finite or
                                  //       outside [0, 1].
  kSplitRatioNotUnity = 103,      // P103: cpu + gpu ratios do not sum to 1.
  kCoopNotSplittable = 104,       // P104: cooperative step on a layer kind
                                  //       that cannot be channel-split.
  kSliceOutOfRange = 105,         // P105: channel slice outside [0, C_out).
  kSliceOverlap = 106,            // P106: CPU and GPU slices overlap
                                  //       (redundant work, merge is undefined).
  kSliceGap = 107,                // P107: slices do not cover [0, C_out).
  kDegenerateSplit = 108,         // P108: one side's slice is empty (warning;
                                  //       the executor degrades to single).
  kCoopInputChannelMismatch = 109,  // P109: input-split layer (pool/dw/lrn)
                                    //       whose in/out channel counts differ.
  kBranchAssignmentMissing = 110,  // P110: branch group with fewer processor
                                   //       assignments than branches.
  kBranchNodeNotMarked = 111,      // P111: node inside an assigned branch is
                                   //       not planned as a kBranch step on
                                   //       the branch's processor.
  kBranchStepOutsideGroup = 112,   // P112: kBranch step not covered by any
                                   //       branch plan (warning).
  kBranchGroupInvalid = 113,       // P113: fork/join/branch node ids invalid.
  kBranchGroupOverlap = 114,       // P114: node claimed by two branch plans.
  kPlanBatchMismatch = 115,        // P115: plan stamped for a batch size that
                                   //       differs from the graph's input N.

  // --- Config (C2xx) --------------------------------------------------------
  kConfigBadDType = 201,      // C201: kInt32 used as storage/compute dtype.
  kConfigQu8OnFloat = 202,    // C202: QUInt8 compute over float storage
                              //       (no quantization parameters exist).
  kConfigUnimplementedCompute = 203,  // C203: storage/compute combination no
                                      //       kernel implements (e.g. F32
                                      //       storage with F16 compute).
  kConfigNegativeThreads = 204,  // C204: cpu_threads is negative.
  kConfigBadFaultPolicy = 205,   // C205: fault recovery knobs out of domain
                                 //       (negative retries, non-finite or
                                 //       negative backoff).

  // --- Quantization (Q3xx) --------------------------------------------------
  kQuantScaleInvalid = 301,     // Q301: scale is zero, negative or not finite.
  kQuantZeroPointRange = 302,   // Q302: zero point outside [0, 255].

  // --- Run trace (T4xx) -----------------------------------------------------
  kTraceNotEnabled = 401,   // T401: verifying a trace that was never recorded.
  kTraceSpanInvalid = 402,  // T402: malformed span (end < start, negative
                            //       time/bytes/MACs, bad channel slice).
  kTraceOverlap = 403,      // T403: two occupying spans overlap on one device
                            //       (the simulated timelines are in-order).
  kTraceBusyMismatch = 404, // T404: per-device occupying-span durations do
                            //       not sum to the reported busy time.
  kTraceSyncMismatch = 405, // T405: sync spans disagree with RunResult's
                            //       sync_count.
  kTraceDrift = 406,        // T406: fault-free kernel span deviates from its
                            //       timing-model prediction (ratio != 1).

  // --- Memory-access analysis (A5xx races, A6xx liveness, A7xx chunking) ----
  // Reported by src/analysis: per-step read/write byte ranges are evaluated
  // from the kernels' AccessSpecs against the packed activation pool.
  kRaceWriteOverlap = 501,   // A501: two steps that may overlap in time have
                             //       intersecting write ranges.
  kRaceWriteReadOverlap = 502,  // A502: a step may write bytes another
                                //       concurrent step reads.
  kWriteOutsideSlice = 503,  // A503: a kernel's (declared or observed) writes
                             //       escape its [c_begin, c_end) output slice.
  kLivenessUseAfterReassign = 601,  // A601: a pool interval is reused while a
                                    //       step may still read the previous
                                    //       occupant.
  kPoolIntervalInvalid = 602,  // A602: packed-pool interval out of bounds or
                               //       misaligned.
  kScratchOverflow = 603,      // A603: a kernel's declared scratch demand
                               //       exceeds the planned arena reservation
                               //       (the overflow path heap-allocates).
  kChunkWriteOverlap = 701,    // A701: ParallelFor chunks of one kernel have
                               //       intersecting write ranges.
  kChunkCoverageGap = 702,     // A702: the chunk decomposition does not cover
                               //       the kernel's declared write set.
  kAccessSpecMissing = 703,    // A703: splittable compute node without an
                               //       AccessSpec (nothing to prove).

  // --- Distributed net-layer invariants (N8xx) ------------------------------
  // Reported by net::VerifyNetRun over a NetRunResult's message/slice logs.
  kNetSliceCoverage = 801,     // N801: delivered channel slices do not
                               //       partition [0, C_out) for a node after
                               //       re-routing (gap or out-of-range).
  kNetDoubleDelivery = 802,    // N802: a channel range was delivered twice
                               //       for one node (overlapping slices).
  kNetRetransmitMismatch = 803,  // N803: per-message attempt counts disagree
                                 //       with the degradation report's
                                 //       retransmit total, or exceed the
                                 //       cluster's retransmit bound.
  kNetMessageInvalid = 804,    // N804: malformed message record (arrival
                               //       before send + link latency, empty
                               //       payload, wrong fragment count, bad
                               //       worker id).
  kNetDeadWorkerActivity = 805,  // N805: a slice was computed by (or a
                                 //       message delivered to/from) a worker
                                 //       after its recorded death time.

  // --- Adaptation-loop invariants (H9xx) ------------------------------------
  // Reported by VerifyCorrectionTable / VerifyPlanCache /
  // VerifyDriftConvergence (DESIGN.md Section 16).
  kAdaptCorrectionInvalid = 901,  // H901: correction factor non-finite,
                                  //       non-positive, or outside the
                                  //       [kMinScale, kMaxScale] sanity band.
  kAdaptCacheIncoherent = 902,    // H902: cached plan contradicts its health
                                  //       key (GPU work under gpu=0, invalid
                                  //       plan, or duplicate keys).
  kAdaptNotConverging = 903,      // H903: drift-deviation series is not
                                  //       monotonically non-increasing, or
                                  //       its final value exceeds tolerance.
};

// "G004"-style stable identifier.
std::string DiagCodeId(DiagCode code);
// Short kebab-case name, e.g. "edge-out-of-range".
std::string_view DiagCodeName(DiagCode code);

enum class Severity : uint8_t { kWarning, kError };

struct Diagnostic {
  DiagCode code;
  Severity severity = Severity::kError;
  int node = -1;  // Graph node id the diagnostic anchors to, or -1.
  std::string message;

  // "error G004 [node 3] input edge 7 out of range"-style line.
  std::string ToString() const;
};

class Report {
 public:
  void Add(DiagCode code, Severity severity, int node, std::string message);
  void Error(DiagCode code, int node, std::string message) {
    Add(code, Severity::kError, node, std::move(message));
  }
  void Warn(DiagCode code, int node, std::string message) {
    Add(code, Severity::kWarning, node, std::move(message));
  }
  // Appends all diagnostics of `other`.
  void Merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  int error_count() const { return errors_; }
  int warning_count() const { return static_cast<int>(diags_.size()) - errors_; }
  // True when no error-severity diagnostic was recorded (warnings allowed).
  bool ok() const { return errors_ == 0; }
  bool Has(DiagCode code) const;

  // One line per diagnostic; empty string for a clean report.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diags_;
  int errors_ = 0;
};

}  // namespace ulayer
