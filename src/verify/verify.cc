#include "verify/verify.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

namespace ulayer {
namespace {

// branch_proc markers: node not claimed by any branch plan / claimed by a
// branch that has no processor assignment.
constexpr int kUnclaimed = -1;
constexpr int kUnassigned = -2;

// Mirrors the partitioner's notion of channel-splittable layers
// (Section 3.2): everything except graph inputs, concat (pure memory
// movement over heterogeneous producers) and softmax (whole-vector op).
bool Splittable(LayerKind k) {
  switch (k) {
    case LayerKind::kConv:
    case LayerKind::kDepthwiseConv:
    case LayerKind::kFullyConnected:
    case LayerKind::kPool:
    case LayerKind::kGlobalAvgPool:
    case LayerKind::kRelu:
    case LayerKind::kLrn:
    case LayerKind::kEltwiseAdd:
      return true;
    case LayerKind::kInput:
    case LayerKind::kConcat:
    case LayerKind::kSoftmax:
      return false;
  }
  return false;
}

// Layers whose output-channel split induces the same split of their *input*
// channels (the paper's pooling rule, Section 3.2): each output channel c is
// computed from input channel c only, so in/out channel counts must match.
bool InputSplit(LayerKind k) {
  switch (k) {
    case LayerKind::kDepthwiseConv:
    case LayerKind::kPool:
    case LayerKind::kGlobalAvgPool:
    case LayerKind::kRelu:
    case LayerKind::kLrn:
    case LayerKind::kEltwiseAdd:
      return true;
    default:
      return false;
  }
}

// Expected input arity per layer kind: {min, max} with max < 0 = unbounded.
std::pair<int, int> ExpectedArity(LayerKind k) {
  switch (k) {
    case LayerKind::kInput:
      return {0, 0};
    case LayerKind::kConcat:
      return {1, -1};
    case LayerKind::kEltwiseAdd:
      return {2, -1};
    default:
      return {1, 1};
  }
}

bool ConvParamsValid(const Conv2DParams& p) {
  return p.kernel_h >= 1 && p.kernel_w >= 1 && p.stride_h >= 1 && p.stride_w >= 1 &&
         p.pad_h >= 0 && p.pad_w >= 0;
}

bool PoolParamsValid(const Pool2DParams& p) {
  return p.kernel_h >= 1 && p.kernel_w >= 1 && p.stride_h >= 1 && p.stride_w >= 1 &&
         p.pad_h >= 0 && p.pad_w >= 0;
}

// Recomputes the node's output shape from its inputs' stored shapes.
// Returns nullopt when the shape is not recomputable (bad params / arity),
// in which case a more specific diagnostic has already been emitted.
std::optional<Shape> InferOutShape(const Graph& g, const Node& n, Report& out) {
  const LayerDesc& d = n.desc;
  switch (d.kind) {
    case LayerKind::kInput:
      return n.out_shape;  // Inputs carry their own shape.
    case LayerKind::kConv:
    case LayerKind::kFullyConnected: {
      const Shape& in = g.node(n.inputs[0]).out_shape;
      return Shape(in.n, d.out_channels, d.conv.OutH(static_cast<int>(in.h)),
                   d.conv.OutW(static_cast<int>(in.w)));
    }
    case LayerKind::kDepthwiseConv: {
      const Shape& in = g.node(n.inputs[0]).out_shape;
      return Shape(in.n, in.c, d.conv.OutH(static_cast<int>(in.h)),
                   d.conv.OutW(static_cast<int>(in.w)));
    }
    case LayerKind::kPool: {
      const Shape& in = g.node(n.inputs[0]).out_shape;
      return Shape(in.n, in.c, d.pool.OutH(static_cast<int>(in.h)),
                   d.pool.OutW(static_cast<int>(in.w)));
    }
    case LayerKind::kGlobalAvgPool: {
      const Shape& in = g.node(n.inputs[0]).out_shape;
      return Shape(in.n, in.c, 1, 1);
    }
    case LayerKind::kRelu:
    case LayerKind::kLrn:
    case LayerKind::kSoftmax:
      return g.node(n.inputs[0]).out_shape;
    case LayerKind::kConcat: {
      Shape s = g.node(n.inputs[0]).out_shape;
      for (size_t i = 1; i < n.inputs.size(); ++i) {
        const Shape& o = g.node(n.inputs[i]).out_shape;
        if (o.n != s.n || o.h != s.h || o.w != s.w) {
          std::ostringstream os;
          os << "concat input " << n.inputs[i] << " shape " << o.ToString()
             << " disagrees with " << s.ToString() << " in n/h/w";
          out.Error(DiagCode::kConcatShapeMismatch, n.id, os.str());
          return std::nullopt;
        }
        s.c += o.c;
      }
      return s;
    }
    case LayerKind::kEltwiseAdd: {
      const Shape& s = g.node(n.inputs[0]).out_shape;
      for (int in : n.inputs) {
        if (g.node(in).out_shape != s) {
          std::ostringstream os;
          os << "eltwise-add input " << in << " shape " << g.node(in).out_shape.ToString()
             << " != " << s.ToString();
          out.Error(DiagCode::kEltwiseShapeMismatch, n.id, os.str());
          return std::nullopt;
        }
      }
      return s;
    }
  }
  return std::nullopt;
}

std::string RangeStr(const ChannelRange& r) {
  std::ostringstream os;
  os << "[" << r.begin << "," << r.end << ")";
  return os.str();
}

}  // namespace

VerifyError::VerifyError(const std::string& context, Report report)
    : Error(ErrorCode::kVerify, context + ":\n" + report.ToString()),
      report_(std::move(report)) {}

void ThrowIfErrors(const std::string& context, const Report& report) {
  if (!report.ok()) {
    throw VerifyError(context, report);
  }
}

Report GraphVerifier::Verify() const {
  Report out;
  const Graph& g = graph_;
  if (g.size() == 0) {
    out.Error(DiagCode::kGraphEmpty, -1, "graph has no nodes");
    return out;
  }
  if (g.node(0).desc.kind != LayerKind::kInput) {
    out.Error(DiagCode::kGraphNoInput, 0, "first node must be an input layer");
  }
  for (int i = 0; i < g.size(); ++i) {
    const Node& n = g.node(i);
    const LayerDesc& d = n.desc;
    if (n.id != i) {
      std::ostringstream os;
      os << "node at index " << i << " carries id " << n.id;
      out.Error(DiagCode::kNodeIdMismatch, i, os.str());
      continue;  // Downstream checks key on ids; skip them for this node.
    }

    // Edges must point at existing earlier nodes (topological append order).
    bool edges_ok = true;
    for (int in : n.inputs) {
      if (in < 0 || in >= i) {
        std::ostringstream os;
        os << "input edge " << in << " out of range [0," << i << ")";
        out.Error(DiagCode::kEdgeOutOfRange, i, os.str());
        edges_ok = false;
      }
    }

    const auto [min_arity, max_arity] = ExpectedArity(d.kind);
    const int arity = static_cast<int>(n.inputs.size());
    if (arity < min_arity || (max_arity >= 0 && arity > max_arity)) {
      std::ostringstream os;
      os << LayerKindName(d.kind) << " has " << arity << " inputs, expected "
         << (max_arity == min_arity ? std::to_string(min_arity)
                                    : ">= " + std::to_string(min_arity));
      out.Error(DiagCode::kBadArity, i, os.str());
      edges_ok = false;
    }

    if (!n.out_shape.IsValid()) {
      out.Error(DiagCode::kInvalidShape, i, "output shape " + n.out_shape.ToString());
    }

    // Layer-parameter sanity; bad parameters also make shape inference
    // meaningless, so skip it for this node.
    bool params_ok = true;
    switch (d.kind) {
      case LayerKind::kConv:
      case LayerKind::kFullyConnected:
        params_ok = ConvParamsValid(d.conv) && d.out_channels >= 1;
        break;
      case LayerKind::kDepthwiseConv:
        params_ok = ConvParamsValid(d.conv);
        break;
      case LayerKind::kPool:
        params_ok = PoolParamsValid(d.pool);
        break;
      case LayerKind::kLrn:
        params_ok = d.lrn.local_size >= 1;
        break;
      default:
        break;
    }
    if (!params_ok) {
      out.Error(DiagCode::kBadLayerParams, i,
                std::string(LayerKindName(d.kind)) + " has invalid kernel/stride/channel params");
    }

    if (!edges_ok || !params_ok) {
      continue;
    }
    const std::optional<Shape> inferred = InferOutShape(g, n, out);
    if (inferred.has_value() && *inferred != n.out_shape) {
      std::ostringstream os;
      os << "stored shape " << n.out_shape.ToString() << " != inferred "
         << inferred->ToString();
      out.Error(DiagCode::kShapeMismatch, i, os.str());
    }
  }
  return out;
}

void PlanVerifier::VerifyConfig(Report& out) const { out.Merge(VerifyExecConfig(config_)); }

Report VerifyExecConfig(const ExecConfig& config) {
  Report out;
  const auto bad_dtype = [](DType t) { return t == DType::kInt32; };
  if (bad_dtype(config.storage) || bad_dtype(config.cpu_compute) ||
      bad_dtype(config.gpu_compute)) {
    out.Error(DiagCode::kConfigBadDType, -1,
              "kInt32 is an accumulator type, not a storage/compute dtype");
  }
  if (config.storage != DType::kQUInt8 &&
      (config.cpu_compute == DType::kQUInt8 || config.gpu_compute == DType::kQUInt8)) {
    out.Error(DiagCode::kConfigQu8OnFloat, -1,
              "QUInt8 compute requires QUInt8 storage (no quantization params otherwise)");
  }
  // The kernels implement exactly these storage -> compute combinations:
  // float storage computes in its own precision; QUInt8 storage computes in
  // integer math (CPU path) or on-the-fly F16 (GPU path, Section 4.2).
  const auto implemented = [&](DType compute) {
    switch (config.storage) {
      case DType::kF32:
        return compute == DType::kF32;
      case DType::kF16:
        return compute == DType::kF16;
      case DType::kQUInt8:
        return compute == DType::kQUInt8 || compute == DType::kF16;
      case DType::kInt32:
        return false;  // Already rejected as C201.
    }
    return false;
  };
  for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
    const DType compute = config.ComputeFor(proc);
    if (!bad_dtype(config.storage) && !bad_dtype(compute) && !implemented(compute)) {
      std::ostringstream os;
      os << "no " << (proc == ProcKind::kCpu ? "cpu" : "gpu") << " kernel computes "
         << DTypeName(compute) << " over " << DTypeName(config.storage) << " storage";
      out.Error(DiagCode::kConfigUnimplementedCompute, -1, os.str());
    }
  }
  if (config.cpu_threads < 0) {
    out.Error(DiagCode::kConfigNegativeThreads, -1,
              "cpu_threads must be >= 0 (0 = automatic), got " +
                  std::to_string(config.cpu_threads));
  }
  if (config.fault_max_retries < 0) {
    out.Error(DiagCode::kConfigBadFaultPolicy, -1,
              "fault_max_retries must be >= 0, got " +
                  std::to_string(config.fault_max_retries));
  }
  if (!std::isfinite(config.fault_backoff_us) || config.fault_backoff_us < 0.0) {
    out.Error(DiagCode::kConfigBadFaultPolicy, -1,
              "fault_backoff_us must be finite and >= 0");
  }
  return out;
}

void PlanVerifier::VerifyBranchPlans(const Plan& plan, std::vector<int>& branch_proc,
                                     Report& out) const {
  const Graph& g = graph_;
  for (size_t bi = 0; bi < plan.branch_plans.size(); ++bi) {
    const BranchPlan& bp = plan.branch_plans[bi];
    const BranchGroup& grp = bp.group;
    std::ostringstream tag;
    tag << "branch group " << bi << " (fork=" << grp.fork << " join=" << grp.join << ")";
    if (grp.fork < 0 || grp.fork >= g.size() || grp.join <= grp.fork || grp.join >= g.size() ||
        grp.branches.empty()) {
      out.Error(DiagCode::kBranchGroupInvalid, grp.fork, tag.str() + " is malformed");
      continue;
    }
    if (bp.assignment.size() != grp.branches.size()) {
      std::ostringstream os;
      os << tag.str() << " assigns " << bp.assignment.size() << " of " << grp.branches.size()
         << " branches (every branch needs exactly one processor, Section 5)";
      out.Error(DiagCode::kBranchAssignmentMissing, grp.fork, os.str());
    }
    for (size_t b = 0; b < grp.branches.size(); ++b) {
      if (grp.branches[b].empty()) {
        out.Error(DiagCode::kBranchGroupInvalid, grp.fork,
                  tag.str() + " branch " + std::to_string(b) + " is empty");
        continue;
      }
      for (int id : grp.branches[b]) {
        if (id <= grp.fork || id >= grp.join) {
          std::ostringstream os;
          os << tag.str() << " branch node " << id << " outside (fork, join)";
          out.Error(DiagCode::kBranchGroupInvalid, id, os.str());
          continue;
        }
        if (branch_proc[static_cast<size_t>(id)] != kUnclaimed) {
          out.Error(DiagCode::kBranchGroupOverlap, id,
                    tag.str() + " claims a node already claimed by another branch");
          continue;
        }
        branch_proc[static_cast<size_t>(id)] =
            b < bp.assignment.size() ? static_cast<int>(bp.assignment[b]) : kUnassigned;
      }
    }
  }
}

void PlanVerifier::VerifyCooperative(const Node& node, const NodeAssignment& a,
                                     Report& out) const {
  if (!Splittable(node.desc.kind)) {
    out.Error(DiagCode::kCoopNotSplittable, node.id,
              std::string(LayerKindName(node.desc.kind)) + " layers cannot be channel-split");
    return;
  }

  const double p = a.cpu_fraction;
  const double q = a.GpuFraction();
  bool fractions_ok = true;
  for (const double f : {p, q}) {
    if (!std::isfinite(f) || f < 0.0 || f > 1.0) {
      std::ostringstream os;
      os << "split fraction " << f << " outside [0, 1]";
      out.Error(DiagCode::kBadSplitFraction, node.id, os.str());
      fractions_ok = false;
    }
  }
  if (fractions_ok && std::abs(p + q - 1.0) > 1e-6) {
    std::ostringstream os;
    os << "CPU:GPU ratios " << p << " + " << q << " = " << p + q
       << " do not sum to 1 (Section 3.2)";
    out.Error(DiagCode::kSplitRatioNotUnity, node.id, os.str());
  }

  const int64_t channels = node.out_shape.c;
  const ResolvedSplit s = ResolveSplit(a, channels);
  bool slices_ok = true;
  for (const auto& [name, r] : {std::pair<const char*, const ChannelRange&>{"CPU", s.cpu},
                                {"GPU", s.gpu}}) {
    if (!r.empty() && (r.begin < 0 || r.end > channels)) {
      std::ostringstream os;
      os << name << " slice " << RangeStr(r) << " outside [0," << channels << ")";
      out.Error(DiagCode::kSliceOutOfRange, node.id, os.str());
      slices_ok = false;
    }
  }
  if (!s.cpu.empty() && !s.gpu.empty() && s.cpu.begin < s.gpu.end && s.gpu.begin < s.cpu.end) {
    std::ostringstream os;
    os << "CPU slice " << RangeStr(s.cpu) << " overlaps GPU slice " << RangeStr(s.gpu)
       << " (channels must be computed exactly once, Section 3.2)";
    out.Error(DiagCode::kSliceOverlap, node.id, os.str());
    slices_ok = false;
  }
  if (slices_ok) {
    const int64_t covered = std::max<int64_t>(s.cpu.size(), 0) + std::max<int64_t>(s.gpu.size(), 0);
    const int64_t lo = std::min(s.cpu.empty() ? channels : s.cpu.begin,
                                s.gpu.empty() ? channels : s.gpu.begin);
    const int64_t hi = std::max(s.cpu.empty() ? 0 : s.cpu.end, s.gpu.empty() ? 0 : s.gpu.end);
    if (covered != channels || lo != 0 || hi != channels) {
      std::ostringstream os;
      os << "slices " << RangeStr(s.cpu) << " + " << RangeStr(s.gpu) << " do not cover [0,"
         << channels << ") exactly";
      out.Error(DiagCode::kSliceGap, node.id, os.str());
    } else if (s.cpu.empty() || s.gpu.empty()) {
      out.Warn(DiagCode::kDegenerateSplit, node.id,
               "one processor's channel slice is empty; the executor degrades this "
               "cooperative step to a single-processor step");
    }
  }

  if (InputSplit(node.desc.kind)) {
    for (int in : node.inputs) {
      if (in >= 0 && in < graph_.size() && graph_.node(in).out_shape.c != channels) {
        std::ostringstream os;
        os << "input-split layer has " << graph_.node(in).out_shape.c
           << " input channels but " << channels
           << " output channels; the split cannot be mirrored onto the input (Section 3.2)";
        out.Error(DiagCode::kCoopInputChannelMismatch, node.id, os.str());
      }
    }
  }
}

Report PlanVerifier::Verify(const Plan& plan) const {
  Report out;
  VerifyConfig(out);
  const Graph& g = graph_;
  if (plan.nodes.size() != static_cast<size_t>(g.size())) {
    std::ostringstream os;
    os << "plan has " << plan.nodes.size() << " node assignments for a graph of " << g.size();
    out.Error(DiagCode::kPlanSizeMismatch, -1, os.str());
    return out;  // Per-node indexing below would be unsafe.
  }
  if (plan.batch > 0 && plan.batch != g.BatchSize()) {
    std::ostringstream os;
    os << "plan was built for batch " << plan.batch << " but the graph's input batch is "
       << g.BatchSize() << "; split ratios priced at one N are invalid at another";
    out.Error(DiagCode::kPlanBatchMismatch, -1, os.str());
  }

  // Which processor each node was claimed for by a branch plan.
  std::vector<int> branch_proc(static_cast<size_t>(g.size()), kUnclaimed);
  VerifyBranchPlans(plan, branch_proc, out);

  for (const Node& n : g.nodes()) {
    if (n.desc.kind == LayerKind::kInput) {
      continue;  // The executor ignores input-node assignments.
    }
    const NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    const int claimed = branch_proc[static_cast<size_t>(n.id)];
    if (claimed >= 0 &&
        (a.kind != StepKind::kBranch || static_cast<int>(a.proc) != claimed)) {
      out.Error(DiagCode::kBranchNodeNotMarked, n.id,
                "node belongs to an assigned branch but is not planned as a branch step on "
                "that branch's processor");
    }
    if (a.kind == StepKind::kBranch && claimed == kUnclaimed) {
      // Executes like a single-processor step; flagged because the branch
      // table no longer accounts for it.
      out.Warn(DiagCode::kBranchStepOutsideGroup, n.id,
               "branch step is not covered by any branch plan");
    }
    if (a.kind == StepKind::kCooperative) {
      VerifyCooperative(n, a, out);
    }
  }
  return out;
}

Report VerifyGraph(const Graph& graph) { return GraphVerifier(graph).Verify(); }

Report VerifyPlan(const Graph& graph, const Plan& plan, const ExecConfig& config) {
  return PlanVerifier(graph, config).Verify(plan);
}

void CheckQuantParams(const QuantParams& qp, int node, const char* what, Report& out) {
  if (!std::isfinite(qp.scale) || qp.scale <= 0.0f) {
    std::ostringstream os;
    os << what << " scale " << qp.scale << " must be positive and finite (Section 4)";
    out.Error(DiagCode::kQuantScaleInvalid, node, os.str());
  }
  if (qp.zero_point < 0 || qp.zero_point > 255) {
    std::ostringstream os;
    os << what << " zero point " << qp.zero_point << " outside [0, 255]";
    out.Error(DiagCode::kQuantZeroPointRange, node, os.str());
  }
}

Report VerifyActivationQuantization(const Graph& graph, const std::vector<QuantParams>& act) {
  Report out;
  const size_t n = std::min(act.size(), static_cast<size_t>(graph.size()));
  for (size_t i = 0; i < n; ++i) {
    CheckQuantParams(act[i], static_cast<int>(i), "activation", out);
  }
  return out;
}

int ExpectedSyncCount(const Graph& graph, const Plan& plan, const ExecConfig& config) {
  (void)config;  // Sync accounting is independent of zero-copy/async settings.
  struct Avail {
    bool cpu = false;
    bool gpu = false;
  };
  std::vector<Avail> avail(static_cast<size_t>(graph.size()));
  int syncs = 0;
  for (const Node& n : graph.nodes()) {
    if (n.desc.kind == LayerKind::kInput) {
      avail[static_cast<size_t>(n.id)] = {true, true};  // Zero-copy input buffer.
      continue;
    }
    const NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    const ResolvedSplit s = ResolveSplit(a, n.out_shape.c);
    const bool coop = a.kind == StepKind::kCooperative && !s.cpu.empty() && !s.gpu.empty();
    bool on_cpu;
    bool on_gpu;
    if (coop) {
      on_cpu = on_gpu = true;
    } else {
      const ProcKind proc = a.kind == StepKind::kCooperative
                                ? (s.gpu.empty() ? ProcKind::kCpu : ProcKind::kGpu)
                                : a.proc;
      on_cpu = proc == ProcKind::kCpu;
      on_gpu = !on_cpu;
    }
    for (int in : n.inputs) {
      const Avail& d = avail[static_cast<size_t>(in)];
      if ((on_cpu && !d.cpu) || (on_gpu && !d.gpu)) {
        ++syncs;
      }
    }
    if (coop) {
      ++syncs;  // The merge synchronization after the split slices join.
      avail[static_cast<size_t>(n.id)] = {true, true};
    } else {
      avail[static_cast<size_t>(n.id)] = {on_cpu, on_gpu};
    }
  }
  return syncs;
}

Report VerifyRunTrace(const trace::RunTrace& rt) {
  Report out;
  if (!rt.enabled) {
    out.Error(DiagCode::kTraceNotEnabled, -1,
              "run trace was not recorded (enable ExecConfig::trace or ULAYER_TRACE)");
    return out;
  }
  // Durations accumulate once per Schedule call while span sums accumulate
  // (start + dur) - start, which can differ by round-off; every comparison
  // below therefore carries a 1e-9 relative tolerance.
  const auto rel_close = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
  };

  double busy_sum[2] = {0.0, 0.0};
  int sync_spans = 0;
  // The executor emits spans in issue order; per device that order is also
  // time order (the simulated queues are in-order), so the overlap check is
  // one pass over the previous occupying end time per device.
  double prev_end[2] = {0.0, 0.0};
  const bool fault_free = rt.fault_events.empty() && rt.slowdowns == 0;
  for (size_t i = 0; i < rt.spans.size(); ++i) {
    const trace::Span& sp = rt.spans[i];
    const int d = sp.proc == ProcKind::kCpu ? 0 : 1;
    std::ostringstream at;
    at << trace::SpanKindName(sp.kind) << " span #" << i << " ["
       << sp.start_us << ", " << sp.end_us << ")";
    if (!(sp.end_us >= sp.start_us) || sp.start_us < 0.0 || !std::isfinite(sp.end_us) ||
        sp.bytes < 0.0 || sp.macs < 0.0 || sp.overhead_us < 0.0 ||
        (sp.kind == trace::SpanKind::kKernel && sp.c_end >= 0 && sp.c_begin > sp.c_end)) {
      out.Error(DiagCode::kTraceSpanInvalid, sp.node, at.str() + " is malformed");
      continue;
    }
    if (sp.kind == trace::SpanKind::kSync) {
      ++sync_spans;
    }
    if (!trace::IsOccupying(sp.kind)) {
      continue;
    }
    // Zero-width spans (fail-fast attempts) anchor at the request time, not
    // the device-queue time: they occupy nothing and cannot overlap.
    if (sp.duration_us() == 0.0) {
      continue;
    }
    if (sp.start_us < prev_end[d] && !rel_close(sp.start_us, prev_end[d])) {
      std::ostringstream os;
      os << at.str() << " overlaps the previous "
         << (d == 0 ? "cpu" : "gpu") << " span ending at " << prev_end[d];
      out.Error(DiagCode::kTraceOverlap, sp.node, os.str());
    }
    prev_end[d] = std::max(prev_end[d], sp.end_us);
    busy_sum[d] += sp.duration_us();
    if (fault_free && sp.kind == trace::SpanKind::kKernel && sp.predicted_us > 0.0 &&
        !rel_close(sp.duration_us(), sp.predicted_us)) {
      std::ostringstream os;
      os << at.str() << " ran " << sp.duration_us() << "us against a fault-free prediction of "
         << sp.predicted_us << "us (ratio " << sp.duration_us() / sp.predicted_us << ")";
      out.Error(DiagCode::kTraceDrift, sp.node, os.str());
    }
  }
  for (int d = 0; d < 2; ++d) {
    const double reported = d == 0 ? rt.cpu_busy_us : rt.gpu_busy_us;
    if (!rel_close(busy_sum[d], reported)) {
      std::ostringstream os;
      os << (d == 0 ? "cpu" : "gpu") << " occupying spans sum to " << busy_sum[d]
         << "us but the run reported " << reported << "us busy";
      out.Error(DiagCode::kTraceBusyMismatch, -1, os.str());
    }
  }
  if (sync_spans != rt.sync_count) {
    std::ostringstream os;
    os << "trace has " << sync_spans << " sync spans but the run reported " << rt.sync_count
       << " syncs";
    out.Error(DiagCode::kTraceSyncMismatch, -1, os.str());
  }
  return out;
}

Report VerifyCorrectionTable(const CorrectionTable& table) {
  Report out;
  for (int kind = 0; kind < kLayerKindCount; ++kind) {
    for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
      const double scale = table.Get(static_cast<LayerKind>(kind), proc);
      if (std::isfinite(scale) && scale >= CorrectionTable::kMinScale &&
          scale <= CorrectionTable::kMaxScale) {
        continue;
      }
      std::ostringstream os;
      os << "correction " << LayerKindName(static_cast<LayerKind>(kind)) << "/"
         << ProcKindName(proc) << " = " << scale << " outside [" << CorrectionTable::kMinScale
         << ", " << CorrectionTable::kMaxScale << "]";
      out.Error(DiagCode::kAdaptCorrectionInvalid, -1, os.str());
    }
  }
  return out;
}

Report VerifyPlanCache(const Graph& graph, const PlanCache& cache, const ExecConfig& config) {
  Report out;
  const auto& entries = cache.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const PlanCache::Entry& e = entries[i];
    for (size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[j].key == e.key) {
        out.Error(DiagCode::kAdaptCacheIncoherent, -1,
                  "duplicate cache key {" + e.key.ToString() + "}");
      }
    }
    const Report plan_report = VerifyPlan(graph, e.plan, config);
    if (!plan_report.ok()) {
      out.Error(DiagCode::kAdaptCacheIncoherent, -1,
                "cached plan for {" + e.key.ToString() +
                    "} fails plan verification: " + plan_report.ToString());
    }
    if (!e.key.gpu_available) {
      for (size_t n = 0; n < e.plan.nodes.size(); ++n) {
        const NodeAssignment& a = e.plan.nodes[n];
        if (a.kind == StepKind::kCooperative || a.proc == ProcKind::kGpu) {
          std::ostringstream os;
          os << "plan cached under {" << e.key.ToString() << "} schedules GPU work";
          out.Error(DiagCode::kAdaptCacheIncoherent, static_cast<int>(n), os.str());
          break;
        }
      }
    }
  }
  return out;
}

Report VerifyDriftConvergence(const std::vector<double>& deviations, double tolerance,
                              double slack) {
  Report out;
  for (size_t i = 1; i < deviations.size(); ++i) {
    if (deviations[i] > deviations[i - 1] + slack) {
      std::ostringstream os;
      os << "drift deviation rose from " << deviations[i - 1] << " (run " << i - 1 << ") to "
         << deviations[i] << " (run " << i << ")";
      out.Error(DiagCode::kAdaptNotConverging, -1, os.str());
    }
  }
  if (!deviations.empty() && deviations.back() > tolerance) {
    std::ostringstream os;
    os << "final drift deviation " << deviations.back() << " exceeds tolerance " << tolerance;
    out.Error(DiagCode::kAdaptNotConverging, -1, os.str());
  }
  return out;
}

}  // namespace ulayer
