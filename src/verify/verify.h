// Static verifiers for the structural invariants μLayer's correctness rests
// on (see DESIGN.md "Static analysis & invariants"):
//
//  - GraphVerifier: the Graph is a well-formed DAG in topological order and
//    every node's stored output shape agrees with shape inference over its
//    inputs (arity, parameter and shape checks).
//  - PlanVerifier: a Plan is executable against a Graph under an ExecConfig:
//    channel splits partition [0, C_out) exactly once with ratios summing
//    to 1 (paper Section 3.2), input-split layers (pooling, depthwise, LRN)
//    have consistent channel counts, branch groups are fully assigned with
//    one processor per branch (Section 5), and the config's dtype
//    combination is coherent (Section 4).
//  - VerifyActivationQuantization: calibrated activation quantization
//    parameters are sane — positive finite scales, zero points in [0, 255]
//    (Section 4, after Jacob et al.).
//
// Verifiers report typed diagnostics and never mutate their inputs. They are
// wired into ULayerRuntime/Executor behind ExecConfig::verify and exposed
// standalone through tools/ulayer_verify.
#pragma once

#include <vector>

#include "common/error.h"
#include "core/adapt.h"
#include "core/config.h"
#include "core/plan.h"
#include "nn/graph.h"
#include "quant/quantize.h"
#include "trace/trace.h"
#include "verify/diagnostics.h"

namespace ulayer {

// Thrown by the Runtime/Executor entry points (ExecConfig::verify) when a
// verifier pass reports errors. what() embeds the full diagnostic listing.
class VerifyError : public Error {
 public:
  VerifyError(const std::string& context, Report report);

  const Report& report() const { return report_; }

 private:
  Report report_;
};

// Throws VerifyError when `report` contains error-severity diagnostics.
void ThrowIfErrors(const std::string& context, const Report& report);

class GraphVerifier {
 public:
  explicit GraphVerifier(const Graph& graph) : graph_(graph) {}

  Report Verify() const;

 private:
  const Graph& graph_;
};

class PlanVerifier {
 public:
  PlanVerifier(const Graph& graph, const ExecConfig& config) : graph_(graph), config_(config) {}

  Report Verify(const Plan& plan) const;

 private:
  void VerifyConfig(Report& out) const;
  void VerifyBranchPlans(const Plan& plan, std::vector<int>& branch_proc, Report& out) const;
  void VerifyCooperative(const Node& node, const NodeAssignment& a, Report& out) const;

  const Graph& graph_;
  const ExecConfig& config_;
};

// Convenience wrappers.
Report VerifyGraph(const Graph& graph);
Report VerifyPlan(const Graph& graph, const Plan& plan, const ExecConfig& config);

// Checks an ExecConfig in isolation: dtype coherence (C201/C202), that the
// storage/compute combination is one the kernels implement (C203), thread
// and fault-recovery knob domains (C204/C205). Run by the Runtime and
// Executor constructors so a bad config fails at build time, not mid-run;
// also folded into PlanVerifier::Verify.
Report VerifyExecConfig(const ExecConfig& config);

// Checks one (scale, zero_point) pair; appends diagnostics to `out`.
// `what` names the tensor being checked (e.g. "activation", "filter").
void CheckQuantParams(const QuantParams& qp, int node, const char* what, Report& out);

// Checks per-node activation quantization parameters (indexed by node id,
// as produced by PreparedModel calibration).
Report VerifyActivationQuantization(const Graph& graph, const std::vector<QuantParams>& act);

// The exact number of CPU-GPU synchronizations the executor will charge when
// running `plan` (dependency syncs plus one merge sync per cooperative
// step). Mirrors Executor::Run's accounting so tests can cross-check
// RunResult::sync_count against the plan's structure.
int ExpectedSyncCount(const Graph& graph, const Plan& plan, const ExecConfig& config);

// Trace-invariant verifier (DESIGN.md Section 11, T4xx codes): on one device
// occupying spans never overlap and their durations sum to the reported busy
// time, sync spans agree with RunResult::sync_count, every span is
// well-formed, and — fault-free — each kernel span matches its timing-model
// prediction to 1e-9 relative tolerance. The trace must carry its run-level
// ground truth (RunTrace::{cpu,gpu}_busy_us / sync_count), which the
// executor fills in at the end of every traced run.
Report VerifyRunTrace(const trace::RunTrace& rt);

// --- Adaptation-loop invariants (DESIGN.md Section 16, H9xx codes) -----------

// H901: every correction factor is finite, positive, and inside the
// [CorrectionTable::kMinScale, kMaxScale] sanity band. The table's own
// setters clamp, so a violation means corrupted state (e.g. a bad Restore).
Report VerifyCorrectionTable(const CorrectionTable& table);

// H902: every cached plan is coherent with the health key it is stored
// under — a gpu_available=false key holds a plan with no GPU or cooperative
// work, every plan passes PlanVerifier against (graph, config), and no key
// appears twice.
Report VerifyPlanCache(const Graph& graph, const PlanCache& cache, const ExecConfig& config);

// H903: the per-run drift-deviation series of a stationary scenario (e.g.
// the committed throttle ramp) is monotonically non-increasing within
// `slack` and ends at or below `tolerance` — the EWMA correction loop must
// converge, not oscillate.
Report VerifyDriftConvergence(const std::vector<double>& deviations, double tolerance,
                              double slack = 1e-9);

}  // namespace ulayer
