// Plan-level static memory-access analysis (DESIGN.md §12).
//
// Given a PreparedModel, a Plan and the packed activation-pool layout, the
// analyzer evaluates every kernel family's declared AccessSpec symbolically
// and proves three invariant families, reporting typed A-series diagnostics
// (verify/diagnostics.h) on violation:
//
//  - A5xx races: no two execution units that may overlap in time (the two
//    halves of a cooperative step; steps the in-order CPU and GPU queues may
//    pipeline against each other) have intersecting pool write ranges (A501)
//    or write/read conflicts (A502), and no unit's declared writes escape its
//    [c_begin, c_end) output slice (A503).
//  - A6xx liveness: pool intervals are only reused when every use of the
//    previous occupant happens-before the new producer along graph edges
//    (A601); every interval is in-bounds and 64-byte aligned (A602); no
//    kernel's declared scratch demand exceeds the planned arena reservation
//    (A603). The scratch arena itself is a separate allocation, so arena
//    ranges can never alias activation views by construction.
//  - A7xx chunking: ParallelFor's fixed chunk decomposition of each declared
//    loop yields pairwise-disjoint write ranges (A701) whose union equals the
//    declared write set (A702); splittable compute nodes must carry a spec at
//    all (A703).
//
// Everything here is prepare-time only: the executor runs the analysis once
// per plan fingerprint (ExecConfig::analyze) and steady-state Run() never
// re-enters it.
#pragma once

#include <functional>

#include "core/memory_plan.h"
#include "core/plan.h"
#include "core/prepared.h"
#include "kernels/access_spec.h"
#include "verify/diagnostics.h"

namespace ulayer {
namespace analysis {

struct AnalyzeOptions {
  // Test hook: rewrites the spec the analyzer derives for node `id` before
  // any checking (adversarial under/over-declaration fixtures). Identity
  // when unset.
  std::function<AccessSpec(int id, AccessSpec spec)> spec_transform;
};

// The AccessSpec ComputeNodeSlice(pm, id, proc, c0, c1) is declared to obey,
// mirroring the kernel dispatch in core/compute.cc. kInput returns an empty
// spec (has_spec == false): input nodes execute nothing.
AccessSpec NodeAccessSpec(const PreparedModel& pm, int id, ProcKind proc, int64_t c0, int64_t c1);

// A7xx checks of one spec in isolation: every declared ParallelFor loop's
// chunk write sets must be pairwise disjoint (A701) and the non-scratch
// loops' union must equal the declared writes (A702). Exposed so kernel
// families the executor does not dispatch to (e.g. Winograd) are provable in
// unit tests.
void CheckSpecLoops(const AccessSpec& spec, int node_id, Report& report);

// Full static proof of the A5xx/A6xx/A7xx invariants for `plan` over
// `layout`. Returns a Report; ok() means every invariant holds.
Report AnalyzePlan(const PreparedModel& pm, const Plan& plan, const MemoryLayout& layout,
                   const AnalyzeOptions& opts = {});

// Convenience: builds the layout with BuildMemoryLayout(pm) first.
Report AnalyzePlan(const PreparedModel& pm, const Plan& plan, const AnalyzeOptions& opts = {});

// Dynamic cross-check of the declarations themselves: executes the plan's
// units functionally (weights must be materialized and, for QUInt8 storage,
// the model calibrated), checksumming every pool byte outside each unit's
// declared write set before and after the kernel runs. A kernel that writes
// bytes its spec does not declare changes the checksum and is reported as
// A503. When built with AddressSanitizer the undeclared bytes are also
// poisoned for the duration of the call, so the offending write aborts with
// a precise stack instead of only failing the checksum.
Report CrossCheckSpecs(const PreparedModel& pm, const Plan& plan, const MemoryLayout& layout,
                       const Tensor& f32_input, const AnalyzeOptions& opts = {});

}  // namespace analysis
}  // namespace ulayer
