#include "analysis/analyzer.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/compute.h"
#include "kernels/conv.h"
#include "kernels/elementwise.h"
#include "kernels/pool.h"
#include "memory/shadow.h"
#include "models/model.h"
#include "parallel/thread_pool.h"

namespace ulayer {
namespace analysis {
namespace {

// PackBuffers / ScratchArena placement alignment (memory/arena.cc).
constexpr int64_t kPoolAlignment = 64;

std::string RangeStr(const AccessRange& r) {
  return "[" + std::to_string(r.begin) + ", " + std::to_string(r.end) + ")";
}

std::string_view ProcName(ProcKind p) { return p == ProcKind::kCpu ? "cpu" : "gpu"; }

// Sorts, drops empties and merges touching/overlapping ranges.
std::vector<AccessRange> Normalize(std::vector<AccessRange> rs) {
  rs.erase(std::remove_if(rs.begin(), rs.end(), [](const AccessRange& r) { return r.empty(); }),
           rs.end());
  std::sort(rs.begin(), rs.end(),
            [](const AccessRange& a, const AccessRange& b) { return a.begin < b.begin; });
  std::vector<AccessRange> out;
  for (const AccessRange& r : rs) {
    if (!out.empty() && r.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, r.end);
    } else {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<AccessRange> Shift(const std::vector<AccessRange>& rs, int64_t delta) {
  std::vector<AccessRange> out;
  out.reserve(rs.size());
  for (const AccessRange& r : rs) {
    out.push_back(AccessRange{r.begin + delta, r.end + delta});
  }
  return out;
}

// First intersection of two normalized range lists; empty range when disjoint.
AccessRange FirstOverlap(const std::vector<AccessRange>& a, const std::vector<AccessRange>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const int64_t lo = std::max(a[i].begin, b[j].begin);
    const int64_t hi = std::min(a[i].end, b[j].end);
    if (lo < hi) {
      return AccessRange{lo, hi};
    }
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return AccessRange{};
}

// Every byte of normalized `inner` lies inside normalized `outer`.
bool Contains(const std::vector<AccessRange>& outer, const std::vector<AccessRange>& inner) {
  size_t i = 0;
  for (const AccessRange& r : inner) {
    while (i < outer.size() && outer[i].end < r.end) {
      ++i;
    }
    if (i == outer.size() || r.begin < outer[i].begin || r.end > outer[i].end) {
      return false;
    }
  }
  return true;
}

bool Equal(const std::vector<AccessRange>& a, const std::vector<AccessRange>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].begin != b[i].begin || a[i].end != b[i].end) {
      return false;
    }
  }
  return true;
}

std::vector<memory::ShadowRange> ToShadow(const std::vector<AccessRange>& rs) {
  std::vector<memory::ShadowRange> out;
  out.reserve(rs.size());
  for (const AccessRange& r : rs) {
    out.push_back(memory::ShadowRange{r.begin, r.end});
  }
  return out;
}

// One kernel invocation the executor performs for a plan step: a
// (node, processor, channel slice) triple. Non-degenerate cooperative steps
// contribute two units; everything else (kSingle, kBranch, degenerate
// cooperative) one full-range unit, mirroring Executor::RunImpl.
struct Unit {
  int node = -1;
  ProcKind proc = ProcKind::kCpu;
  int64_t c0 = 0;
  int64_t c1 = 0;
  AccessSpec spec;
  // Pool-absolute normalized ranges, filled by ResolvePoolRanges.
  std::vector<AccessRange> writes_abs;
  std::vector<AccessRange> reads_abs;
};

struct UnitSet {
  std::vector<Unit> units;
  // barrier_prefix[k] = number of merge barriers (non-degenerate cooperative
  // steps, whose end syncs both device timelines) among nodes [0, k).
  std::vector<int> barrier_prefix;
};

UnitSet BuildUnits(const PreparedModel& pm, const Plan& plan, const AnalyzeOptions& opts) {
  const Graph& g = pm.graph();
  UnitSet us;
  us.barrier_prefix.assign(static_cast<size_t>(g.size()) + 1, 0);
  for (const Node& n : g.nodes()) {
    bool barrier = false;
    if (n.desc.kind != LayerKind::kInput) {
      const NodeAssignment a = static_cast<size_t>(n.id) < plan.nodes.size()
                                   ? plan.nodes[static_cast<size_t>(n.id)]
                                   : NodeAssignment{};
      const int64_t oc = n.out_shape.c;
      const ResolvedSplit split = ResolveSplit(a, oc);
      if (a.kind == StepKind::kCooperative && !split.cpu.empty() && !split.gpu.empty()) {
        barrier = true;
        us.units.push_back(Unit{n.id, ProcKind::kCpu, split.cpu.begin, split.cpu.end, {}, {}, {}});
        us.units.push_back(Unit{n.id, ProcKind::kGpu, split.gpu.begin, split.gpu.end, {}, {}, {}});
      } else {
        const ProcKind proc = a.kind == StepKind::kCooperative
                                  ? (split.gpu.empty() ? ProcKind::kCpu : ProcKind::kGpu)
                                  : a.proc;
        us.units.push_back(Unit{n.id, proc, 0, oc, {}, {}, {}});
      }
    }
    us.barrier_prefix[static_cast<size_t>(n.id) + 1] =
        us.barrier_prefix[static_cast<size_t>(n.id)] + (barrier ? 1 : 0);
  }
  for (Unit& u : us.units) {
    u.spec = NodeAccessSpec(pm, u.node, u.proc, u.c0, u.c1);
    if (opts.spec_transform) {
      u.spec = opts.spec_transform(u.node, std::move(u.spec));
    }
  }
  return us;
}

// Whether two units may overlap in time. The two halves of a cooperative
// step always may. Across nodes i < j (node ids are topological, so no path
// j -> i exists): they may overlap unless a graph path orders them, a merge
// barrier in [i, j) syncs both devices between them, or both run on the same
// in-order device queue.
bool MayHappenInParallel(const Unit& u, const Unit& v,
                         const std::vector<std::vector<bool>>& reach,
                         const std::vector<int>& barrier_prefix) {
  if (u.node == v.node) {
    return true;
  }
  const size_t i = static_cast<size_t>(std::min(u.node, v.node));
  const size_t j = static_cast<size_t>(std::max(u.node, v.node));
  if (reach[i][j]) {
    return false;
  }
  if (barrier_prefix[j] - barrier_prefix[i] > 0) {
    return false;
  }
  return u.proc != v.proc;
}

// Validates layout shape/alignment/bounds (A602). Returns false when the
// layout is too malformed to index safely.
bool CheckLayout(const PreparedModel& pm, const MemoryLayout& layout, Report& report) {
  const Graph& g = pm.graph();
  const size_t nn = static_cast<size_t>(g.size());
  if (layout.offsets.size() != nn || layout.bytes.size() != nn) {
    report.Error(DiagCode::kPoolIntervalInvalid, -1,
                 "layout offsets/bytes arrays do not match the graph size");
    return false;
  }
  bool indexable = true;
  for (const Node& n : g.nodes()) {
    const size_t id = static_cast<size_t>(n.id);
    const int64_t bytes = layout.bytes[id];
    const int64_t expect =
        n.desc.kind == LayerKind::kInput
            ? 0
            : n.out_shape.NumElements() * DTypeSize(pm.ActivationDType(n.id));
    if (bytes != expect) {
      report.Error(DiagCode::kPoolIntervalInvalid, n.id,
                   "pool interval holds " + std::to_string(bytes) +
                       " bytes but the activation needs " + std::to_string(expect));
      indexable = false;
      continue;
    }
    if (bytes == 0) {
      continue;
    }
    const int64_t off = layout.offsets[id];
    if (off < 0 || off + bytes > layout.pool_bytes) {
      report.Error(DiagCode::kPoolIntervalInvalid, n.id,
                   "pool interval " + RangeStr(AccessRange{off, off + bytes}) +
                       " escapes the pool of " + std::to_string(layout.pool_bytes) + " bytes");
      indexable = false;
    } else if (off % kPoolAlignment != 0) {
      report.Error(DiagCode::kPoolIntervalInvalid, n.id,
                   "pool offset " + std::to_string(off) + " is not " +
                       std::to_string(kPoolAlignment) + "-byte aligned");
    }
  }
  return indexable;
}

// Re-proves the pool-sharing rule from the final offsets (A601): buffers of
// producers i < j may overlap only when every use of i (producer and all
// consumers, plus the virtual after-the-loop read of the graph output)
// happens-before j along graph edges.
void CheckPoolSharing(const PreparedModel& pm, const MemoryLayout& layout,
                      const std::vector<std::vector<bool>>& reach, Report& report) {
  const Graph& g = pm.graph();
  std::vector<std::vector<int>> consumers(static_cast<size_t>(g.size()));
  for (const Node& n : g.nodes()) {
    for (const int in : n.inputs) {
      consumers[static_cast<size_t>(in)].push_back(n.id);
    }
  }
  const auto happens_before = [&](int u, int j) {
    return u < g.size() && reach[static_cast<size_t>(u)][static_cast<size_t>(j)];
  };
  for (int i = 0; i < g.size(); ++i) {
    const int64_t ib = layout.bytes[static_cast<size_t>(i)];
    if (ib == 0) {
      continue;
    }
    const int64_t io = layout.offsets[static_cast<size_t>(i)];
    for (int j = i + 1; j < g.size(); ++j) {
      const int64_t jb = layout.bytes[static_cast<size_t>(j)];
      if (jb == 0) {
        continue;
      }
      const int64_t jo = layout.offsets[static_cast<size_t>(j)];
      if (io + ib <= jo || jo + jb <= io) {
        continue;  // Disjoint intervals.
      }
      bool safe = happens_before(i, j) && i != g.OutputId();
      if (safe) {
        for (const int c : consumers[static_cast<size_t>(i)]) {
          if (!happens_before(c, j)) {
            safe = false;
            break;
          }
        }
      }
      if (!safe) {
        report.Error(DiagCode::kLivenessUseAfterReassign, j,
                     "pool bytes of node " + std::to_string(i) + " " +
                         RangeStr(AccessRange{io, io + ib}) + " are reassigned to node " +
                         std::to_string(j) + " " + RangeStr(AccessRange{jo, jo + jb}) +
                         " while a step may still read the previous occupant");
      }
    }
  }
}

// Per-unit spec checks: A703 (missing), static A503 (declared writes vs the
// unit's channel slice), A603 (scratch demand vs reservation), A7xx loop
// checks, and the pool-absolute range resolution used by the race checks.
void ResolveUnit(const PreparedModel& pm, const MemoryLayout& layout, Unit& u, Report& report) {
  const Graph& g = pm.graph();
  const Node& n = g.node(u.node);
  if (!u.spec.has_spec) {
    report.Error(DiagCode::kAccessSpecMissing, u.node,
                 std::string(LayerKindName(n.desc.kind)) +
                     " node has no AccessSpec: nothing to prove about its memory accesses");
    return;
  }
  const int64_t elem = DTypeSize(pm.ActivationDType(u.node));
  const std::vector<AccessRange> slice =
      Normalize(ChannelSliceRanges(n.out_shape, elem, u.c0, u.c1));
  const std::vector<AccessRange> writes = Normalize(u.spec.writes);
  if (!Contains(slice, writes)) {
    report.Error(DiagCode::kWriteOutsideSlice, u.node,
                 std::string(ProcName(u.proc)) + " slice [" + std::to_string(u.c0) + ", " +
                     std::to_string(u.c1) + ") declares writes outside its output channel range");
  }
  if (u.spec.scratch_bytes > layout.scratch_bytes) {
    report.Error(DiagCode::kScratchOverflow, u.node,
                 "declared scratch demand " + std::to_string(u.spec.scratch_bytes) +
                     " exceeds the planned arena reservation of " +
                     std::to_string(layout.scratch_bytes) + " bytes");
  }
  CheckSpecLoops(u.spec, u.node, report);

  u.writes_abs = Shift(writes, layout.offsets[static_cast<size_t>(u.node)]);
  std::vector<AccessRange> reads;
  const size_t n_reads = std::min(u.spec.reads.size(), n.inputs.size());
  for (size_t i = 0; i < n_reads; ++i) {
    const int in = n.inputs[i];
    if (g.node(in).desc.kind == LayerKind::kInput) {
      continue;  // The network input is an owning tensor outside the pool.
    }
    const std::vector<AccessRange> r = Normalize(u.spec.reads[i]);
    const int64_t in_bytes = layout.bytes[static_cast<size_t>(in)];
    if (!Contains({AccessRange{0, in_bytes}}, r)) {
      report.Error(DiagCode::kPoolIntervalInvalid, u.node,
                   "declared read of input " + std::to_string(in) +
                       " exceeds that buffer's " + std::to_string(in_bytes) + " bytes");
      continue;
    }
    const std::vector<AccessRange> shifted = Shift(r, layout.offsets[static_cast<size_t>(in)]);
    reads.insert(reads.end(), shifted.begin(), shifted.end());
  }
  u.reads_abs = Normalize(reads);
}

void CheckRaces(const UnitSet& us, const std::vector<std::vector<bool>>& reach, Report& report) {
  for (size_t a = 0; a < us.units.size(); ++a) {
    for (size_t b = a + 1; b < us.units.size(); ++b) {
      const Unit& u = us.units[a];
      const Unit& v = us.units[b];
      if (!MayHappenInParallel(u, v, reach, us.barrier_prefix)) {
        continue;
      }
      const AccessRange ww = FirstOverlap(u.writes_abs, v.writes_abs);
      if (!ww.empty()) {
        report.Error(DiagCode::kRaceWriteOverlap, v.node,
                     "nodes " + std::to_string(u.node) + " (" + std::string(ProcName(u.proc)) +
                         ") and " + std::to_string(v.node) + " (" +
                         std::string(ProcName(v.proc)) +
                         ") may run concurrently and both write pool bytes " + RangeStr(ww));
      }
      const AccessRange wr = FirstOverlap(u.writes_abs, v.reads_abs);
      if (!wr.empty()) {
        report.Error(DiagCode::kRaceWriteReadOverlap, v.node,
                     "node " + std::to_string(u.node) + " (" + std::string(ProcName(u.proc)) +
                         ") may write pool bytes " + RangeStr(wr) + " while node " +
                         std::to_string(v.node) + " (" + std::string(ProcName(v.proc)) +
                         ") reads them");
      }
      const AccessRange rw = FirstOverlap(v.writes_abs, u.reads_abs);
      if (!rw.empty()) {
        report.Error(DiagCode::kRaceWriteReadOverlap, u.node,
                     "node " + std::to_string(v.node) + " (" + std::string(ProcName(v.proc)) +
                         ") may write pool bytes " + RangeStr(rw) + " while node " +
                         std::to_string(u.node) + " (" + std::string(ProcName(u.proc)) +
                         ") reads them");
      }
    }
  }
}

}  // namespace

AccessSpec NodeAccessSpec(const PreparedModel& pm, int id, ProcKind proc, int64_t c0,
                          int64_t c1) {
  const Graph& g = pm.graph();
  const Node& n = g.node(id);
  const ExecConfig& cfg = pm.config();
  const DType storage = cfg.storage;
  const Shape in_shape = n.inputs.empty() ? n.out_shape : g.node(n.inputs[0]).out_shape;
  switch (n.desc.kind) {
    case LayerKind::kInput:
      return AccessSpec{};
    case LayerKind::kConv:
    case LayerKind::kFullyConnected:
      return Conv2DAccessSpec(storage, cfg.ComputeFor(proc), cfg.per_channel_weights, in_shape,
                              FilterShape(g, n), n.desc.conv, n.out_shape, c0, c1);
    case LayerKind::kDepthwiseConv:
      return DepthwiseConv2DAccessSpec(storage, in_shape, n.desc.conv, n.out_shape, c0, c1);
    case LayerKind::kPool:
      return Pool2DAccessSpec(storage, in_shape, n.desc.pool, n.out_shape, c0, c1);
    case LayerKind::kGlobalAvgPool:
      return GlobalAvgPoolAccessSpec(storage, in_shape, n.out_shape, c0, c1);
    case LayerKind::kRelu:
      return ReluAccessSpec(storage, n.out_shape, c0, c1);
    case LayerKind::kLrn:
      return LrnAccessSpec(storage, n.out_shape, n.desc.lrn, c0, c1);
    case LayerKind::kConcat: {
      std::vector<Shape> in_shapes;
      in_shapes.reserve(n.inputs.size());
      for (const int in : n.inputs) {
        in_shapes.push_back(g.node(in).out_shape);
      }
      return ConcatAccessSpec(in_shapes, storage, n.out_shape);
    }
    case LayerKind::kEltwiseAdd:
      return EltwiseAddAccessSpec(storage, n.out_shape, c0, c1);
    case LayerKind::kSoftmax:
      return SoftmaxAccessSpec(storage, n.out_shape);
  }
  return AccessSpec{};
}

void CheckSpecLoops(const AccessSpec& spec, int node_id, Report& report) {
  std::vector<AccessRange> coverage;
  bool has_write_loops = false;
  for (size_t li = 0; li < spec.loops.size(); ++li) {
    const LoopSpec& loop = spec.loops[li];
    const std::string tag = "loop " + std::to_string(li);
    if (loop.end <= loop.begin || loop.bases.empty() || loop.iter_bytes == 0) {
      continue;  // Writes nothing.
    }
    if (loop.grain <= 0 || loop.stride_bytes < 0 || loop.iter_bytes < 0) {
      report.Error(DiagCode::kChunkCoverageGap, node_id,
                   tag + ": invalid parameters (grain " + std::to_string(loop.grain) +
                       ", stride " + std::to_string(loop.stride_bytes) + ", iter " +
                       std::to_string(loop.iter_bytes) + ")");
      continue;
    }
    // An iteration that writes less than its stride leaves holes between
    // consecutive iterations: the chunk union cannot equal any contiguous
    // declared write set.
    if (!loop.writes_scratch && loop.end - loop.begin > 1 &&
        loop.iter_bytes < loop.stride_bytes) {
      report.Error(DiagCode::kChunkCoverageGap, node_id,
                   tag + ": iterations write " + std::to_string(loop.iter_bytes) +
                       " bytes at stride " + std::to_string(loop.stride_bytes) +
                       ", leaving gaps inside the declared write set");
    }
    const int64_t chunks = parallel::ChunkCount(loop.begin, loop.end, loop.grain);
    const int64_t total = chunks * static_cast<int64_t>(loop.bases.size());
    if (total > (int64_t{1} << 22)) {
      report.Warn(DiagCode::kChunkWriteOverlap, node_id,
                  tag + ": " + std::to_string(total) +
                      " chunk envelopes exceed the enumeration budget; disjointness unproven");
      continue;
    }
    // Envelope of each (chunk, base): [base + first*stride, base +
    // last*stride + iter). Exact for the affine model when iter <= stride;
    // iter > stride makes adjacent iterations (and thus adjacent chunks)
    // overlap, which this check reports.
    struct Envelope {
      int64_t begin;
      int64_t end;
      int64_t chunk;
    };
    std::vector<Envelope> envs;
    envs.reserve(static_cast<size_t>(total));
    for (int64_t x = 0; x < chunks; ++x) {
      const parallel::ChunkRange cr = parallel::ChunkBounds(loop.begin, loop.end, loop.grain, x);
      for (const int64_t base : loop.bases) {
        envs.push_back(Envelope{base + cr.begin * loop.stride_bytes,
                                base + (cr.end - 1) * loop.stride_bytes + loop.iter_bytes, x});
      }
    }
    std::sort(envs.begin(), envs.end(), [](const Envelope& a, const Envelope& b) {
      return a.begin != b.begin ? a.begin < b.begin : a.chunk < b.chunk;
    });
    // Sweep with an open list: any two open envelopes from different chunks
    // intersect. Legit specs have zero overlap, so the list stays short.
    std::vector<const Envelope*> open;
    bool flagged = false;
    for (const Envelope& e : envs) {
      open.erase(std::remove_if(open.begin(), open.end(),
                                [&](const Envelope* o) { return o->end <= e.begin; }),
                 open.end());
      for (const Envelope* o : open) {
        if (o->chunk != e.chunk) {
          report.Error(DiagCode::kChunkWriteOverlap, node_id,
                       tag + ": chunks " + std::to_string(o->chunk) + " and " +
                           std::to_string(e.chunk) + " both write bytes " +
                           RangeStr(AccessRange{e.begin, std::min(o->end, e.end)}));
          flagged = true;
          break;
        }
      }
      if (flagged) {
        break;
      }
      open.push_back(&e);
    }
    if (!loop.writes_scratch) {
      has_write_loops = true;
      for (const int64_t base : loop.bases) {
        coverage.push_back(AccessRange{base + loop.begin * loop.stride_bytes,
                                       base + (loop.end - 1) * loop.stride_bytes +
                                           loop.iter_bytes});
      }
    }
  }
  if (has_write_loops && !Equal(Normalize(coverage), Normalize(spec.writes))) {
    report.Error(DiagCode::kChunkCoverageGap, node_id,
                 "the union of the declared loop writes does not equal the declared write set");
  }
}

Report AnalyzePlan(const PreparedModel& pm, const Plan& plan, const MemoryLayout& layout,
                   const AnalyzeOptions& opts) {
  Report report;
  if (!CheckLayout(pm, layout, report)) {
    return report;
  }
  const std::vector<std::vector<bool>> reach = BuildReachability(pm.graph());
  CheckPoolSharing(pm, layout, reach, report);
  UnitSet us = BuildUnits(pm, plan, opts);
  for (Unit& u : us.units) {
    ResolveUnit(pm, layout, u, report);
  }
  CheckRaces(us, reach, report);
  return report;
}

Report AnalyzePlan(const PreparedModel& pm, const Plan& plan, const AnalyzeOptions& opts) {
  return AnalyzePlan(pm, plan, BuildMemoryLayout(pm), opts);
}

Report CrossCheckSpecs(const PreparedModel& pm, const Plan& plan, const MemoryLayout& layout,
                       const Tensor& f32_input, const AnalyzeOptions& opts) {
  Report report;
  if (!CheckLayout(pm, layout, report)) {
    return report;
  }
  const Graph& g = pm.graph();
  UnitSet us = BuildUnits(pm, plan, opts);
  for (Unit& u : us.units) {
    // Resolves pool-absolute ranges; static diagnostics land in the same
    // report so a caller sees both views of an offending spec.
    ResolveUnit(pm, layout, u, report);
  }

  std::vector<uint8_t> pool(static_cast<size_t>(layout.pool_bytes), 0);
  std::vector<Tensor> act(static_cast<size_t>(g.size()));
  for (const Node& n : g.nodes()) {
    act[static_cast<size_t>(n.id)] =
        n.desc.kind == LayerKind::kInput
            ? pm.PrepareInput(f32_input)
            : pm.MakeActivationView(n.id, pool.data() + layout.offsets[static_cast<size_t>(n.id)]);
  }
  memory::ScratchArena scratch;
  scratch.Reserve(static_cast<size_t>(layout.scratch_bytes));

  for (const Unit& u : us.units) {
    if (!u.spec.has_spec) {
      continue;  // Already reported (A703); cannot bound this kernel's writes.
    }
    const std::vector<memory::ShadowRange> allowed_writes =
        memory::NormalizeRanges(ToShadow(u.writes_abs), layout.pool_bytes);
    std::vector<AccessRange> rw = u.writes_abs;
    rw.insert(rw.end(), u.reads_abs.begin(), u.reads_abs.end());
    const std::vector<memory::ShadowRange> allowed_rw =
        memory::NormalizeRanges(ToShadow(Normalize(std::move(rw))), layout.pool_bytes);

    const uint64_t pre = memory::ChecksumOutside(pool.data(), layout.pool_bytes, allowed_writes);
    memory::ShadowPoison(pool.data(), layout.pool_bytes, allowed_rw);
    scratch.Reset();
    ComputeNodeSlice(pm, u.node, u.proc, act, u.c0, u.c1, &scratch);
    memory::ShadowUnpoison(pool.data(), layout.pool_bytes);
    const uint64_t post = memory::ChecksumOutside(pool.data(), layout.pool_bytes, allowed_writes);
    if (pre != post) {
      report.Error(DiagCode::kWriteOutsideSlice, u.node,
                   std::string(ProcName(u.proc)) + " kernel over slice [" +
                       std::to_string(u.c0) + ", " + std::to_string(u.c1) +
                       ") wrote pool bytes outside its declared write set");
    }
  }
  return report;
}

}  // namespace analysis
}  // namespace ulayer
