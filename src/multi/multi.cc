#include "multi/multi.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ulayer::multi {

bool SplittableLayer(LayerKind k) {
  switch (k) {
    case LayerKind::kConv:
    case LayerKind::kDepthwiseConv:
    case LayerKind::kFullyConnected:
    case LayerKind::kPool:
    case LayerKind::kGlobalAvgPool:
    case LayerKind::kRelu:
    case LayerKind::kLrn:
    case LayerKind::kEltwiseAdd:
      return true;
    case LayerKind::kInput:
    case LayerKind::kConcat:
    case LayerKind::kSoftmax:
      return false;
  }
  return false;
}

LayerWork SliceWork(const Graph& g, const Node& node, double fraction) {
  const int64_t c = node.out_shape.c;
  const int64_t c_end =
      std::clamp<int64_t>(static_cast<int64_t>(std::llround(fraction * static_cast<double>(c))),
                          1, c);
  return ComputeWork(g, node, DType::kQUInt8, 0, c_end);
}

std::vector<std::vector<double>> FractionGrid(size_t n, double step) {
  std::vector<std::vector<double>> grid;
  const int steps = static_cast<int>(std::lround(1.0 / step));
  std::vector<int> parts(n, 0);
  auto recurse = [&](auto&& self, size_t idx, int remaining) -> void {
    if (idx + 1 == n) {
      parts[idx] = remaining;
      int active = 0;
      for (int p : parts) {
        active += p > 0 ? 1 : 0;
      }
      if (active >= 2) {
        std::vector<double> fractions(n);
        for (size_t i = 0; i < n; ++i) {
          fractions[i] = static_cast<double>(parts[i]) * step;
        }
        grid.push_back(std::move(fractions));
      }
      return;
    }
    for (int p = 0; p <= remaining; ++p) {
      parts[idx] = p;
      self(self, idx + 1, remaining - p);
    }
  };
  if (n > 0) {
    recurse(recurse, 0, steps);
  }
  return grid;
}

MultiSoc MakeExynos7420Multi() {
  const SocSpec base = MakeExynos7420();
  MultiSoc soc;
  soc.name = "Exynos7420-CPU+GPU";
  soc.procs.push_back({base.cpu, DType::kQUInt8});
  soc.procs.push_back({base.gpu, DType::kF16});
  soc.sync_us = base.sync_us;
  soc.map_us = base.map_us;
  soc.dram_nj_per_byte = base.dram_nj_per_byte;
  soc.idle_w = base.idle_w;
  return soc;
}

MultiSoc MakeExynos7420WithNpu() {
  MultiSoc soc = MakeExynos7420Multi();
  soc.name = "Exynos7420-CPU+GPU+NPU";
  // Edge-TPU-class mobile NPU: strong 8-bit integer MAC arrays, no floating
  // point to speak of, and a noticeable offload/launch latency.
  ProcessorSpec npu;
  npu.name = "EdgeNPU";
  npu.kind = ProcKind::kGpu;  // Closest existing kind; unused by this module.
  npu.gmacs_f32 = 1.0;
  npu.gmacs_f16 = 2.0;
  npu.gmacs_qu8 = 90.0;
  npu.gb_per_s = 12.0;
  npu.kernel_launch_us = 120.0;
  npu.active_w_f32 = 1.0;
  npu.active_w_f16 = 1.0;
  npu.active_w_qu8 = 1.1;
  soc.procs.push_back({npu, DType::kQUInt8});
  return soc;
}

double KernelLatencyUs(const MultiProcessor& p, const LayerWork& work) {
  const double compute_us = work.macs / (p.spec.GmacsFor(p.compute) * 1e3);
  const double memory_us = work.TotalBytes() / (p.spec.gb_per_s * 1e3);
  return p.spec.kernel_launch_us + compute_us + memory_us;
}

MultiPartitioner::MultiPartitioner(const Graph& graph, const MultiSoc& soc, Options options)
    : graph_(graph), soc_(soc), options_(options) {}

double MultiPartitioner::EstimateNodeUs(const Node& node, const MultiAssignment& a) const {
  double worst = 0.0;
  for (size_t i = 0; i < soc_.procs.size(); ++i) {
    const double f = a.fractions[i];
    if (f <= 0.0) {
      continue;
    }
    worst = std::max(worst, KernelLatencyUs(soc_.procs[i], SliceWork(graph_, node, f)));
  }
  if (a.ActiveProcs() > 1) {
    worst += soc_.sync_us + soc_.map_us;
  }
  return worst;
}

std::vector<MultiAssignment> MultiPartitioner::CandidateAssignments(bool splittable) const {
  const size_t n = soc_.procs.size();
  std::vector<MultiAssignment> out;
  // Single-processor unit vectors first.
  for (size_t i = 0; i < n; ++i) {
    MultiAssignment a;
    a.fractions.assign(n, 0.0);
    a.fractions[i] = 1.0;
    out.push_back(std::move(a));
  }
  if (!splittable || !options_.channel_distribution) {
    return out;
  }
  // All grid compositions summing to 1 with >= 2 active processors.
  for (std::vector<double>& fractions : FractionGrid(n, options_.grid_step)) {
    MultiAssignment a;
    a.fractions = std::move(fractions);
    out.push_back(std::move(a));
  }
  return out;
}

MultiPlan MultiPartitioner::Build() const {
  MultiPlan plan;
  const size_t n = soc_.procs.size();
  plan.nodes.resize(static_cast<size_t>(graph_.size()));
  for (MultiAssignment& a : plan.nodes) {
    a.fractions.assign(n, 0.0);
    a.fractions[0] = 1.0;
  }
  std::vector<bool> planned(static_cast<size_t>(graph_.size()), false);

  if (options_.branch_distribution) {
    for (const BranchGroup& group : FindBranchGroups(graph_)) {
      const size_t nb = group.branches.size();
      // N^B enumeration; guard against pathological graphs.
      double total_combos = std::pow(static_cast<double>(n), static_cast<double>(nb));
      if (total_combos > 1e6) {
        continue;
      }
      std::vector<int> assign(nb, 0);
      std::vector<int> best(nb, 0);
      double best_cost = std::numeric_limits<double>::infinity();
      auto evaluate = [&]() {
        std::vector<double> per_proc(n, 0.0);
        for (size_t b = 0; b < nb; ++b) {
          for (int id : group.branches[b]) {
            per_proc[static_cast<size_t>(assign[b])] +=
                KernelLatencyUs(soc_.procs[static_cast<size_t>(assign[b])],
                                SliceWork(graph_, graph_.node(id), 1.0));
          }
        }
        double worst = 0.0;
        int active = 0;
        for (size_t i = 0; i < n; ++i) {
          worst = std::max(worst, per_proc[i]);
          active += per_proc[i] > 0.0 ? 1 : 0;
        }
        return worst + (active > 1 ? 2.0 * soc_.sync_us : 0.0);
      };
      auto recurse = [&](auto&& self, size_t b) -> void {
        if (b == nb) {
          const double cost = evaluate();
          if (cost < best_cost) {
            best_cost = cost;
            best = assign;
          }
          return;
        }
        for (size_t i = 0; i < n; ++i) {
          assign[b] = static_cast<int>(i);
          self(self, b + 1);
        }
      };
      recurse(recurse, 0);

      MultiBranchPlan bp;
      bp.group = group;
      bp.assignment = best;
      for (size_t b = 0; b < nb; ++b) {
        for (int id : group.branches[b]) {
          MultiAssignment& a = plan.nodes[static_cast<size_t>(id)];
          a.fractions.assign(n, 0.0);
          a.fractions[static_cast<size_t>(best[b])] = 1.0;
          planned[static_cast<size_t>(id)] = true;
        }
      }
      plan.branch_plans.push_back(std::move(bp));
    }
  }

  for (const Node& node : graph_.nodes()) {
    if (planned[static_cast<size_t>(node.id)] || node.desc.kind == LayerKind::kInput) {
      continue;
    }
    double best_cost = std::numeric_limits<double>::infinity();
    for (const MultiAssignment& a : CandidateAssignments(SplittableLayer(node.desc.kind))) {
      const double cost = EstimateNodeUs(node, a);
      if (cost < best_cost) {
        best_cost = cost;
        plan.nodes[static_cast<size_t>(node.id)] = a;
      }
    }
  }
  return plan;
}

MultiRunResult MultiExecutor::Run(const MultiPlan& plan) const {
  const size_t n = soc_.procs.size();
  assert(plan.nodes.size() == static_cast<size_t>(graph_.size()));
  std::vector<double> timeline(n, 0.0);
  std::vector<double> busy(n, 0.0);
  std::vector<double> bytes(n, 0.0);
  std::vector<double> done(static_cast<size_t>(graph_.size()), 0.0);
  // Bitmask of processors each node's output is visible on.
  std::vector<uint32_t> visible(static_cast<size_t>(graph_.size()), ~0u);
  int syncs = 0;

  for (const Node& node : graph_.nodes()) {
    if (node.desc.kind == LayerKind::kInput) {
      done[static_cast<size_t>(node.id)] = 0.0;
      continue;
    }
    const MultiAssignment& a = plan.nodes[static_cast<size_t>(node.id)];
    uint32_t used = 0;
    for (size_t i = 0; i < n; ++i) {
      if (a.fractions[i] > 0.0) {
        used |= 1u << i;
      }
    }
    double ready = 0.0;
    for (int in : node.inputs) {
      double t = done[static_cast<size_t>(in)];
      if ((visible[static_cast<size_t>(in)] & used) != used) {
        t += soc_.sync_us;  // Producer output not visible on some used proc.
        ++syncs;
      }
      ready = std::max(ready, t);
    }
    double node_end = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double f = a.fractions[i];
      if (f <= 0.0) {
        continue;
      }
      const LayerWork w = SliceWork(graph_, node, f);
      const double start = std::max(ready, timeline[i]);
      const double dur = KernelLatencyUs(soc_.procs[i], w);
      timeline[i] = start + dur;
      busy[i] += dur;
      bytes[i] += w.TotalBytes();
      node_end = std::max(node_end, timeline[i]);
    }
    if (a.ActiveProcs() > 1) {
      node_end += soc_.sync_us;
      ++syncs;
      for (size_t i = 0; i < n; ++i) {
        if (a.fractions[i] > 0.0) {
          timeline[i] = node_end;
        }
      }
      visible[static_cast<size_t>(node.id)] = used;  // Merged: visible on all used.
    } else {
      visible[static_cast<size_t>(node.id)] = used;
    }
    done[static_cast<size_t>(node.id)] = node_end;
  }

  MultiRunResult r;
  r.busy_us = busy;
  r.sync_count = syncs;
  for (size_t i = 0; i < n; ++i) {
    r.latency_us = std::max(r.latency_us, timeline[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    r.total_energy_mj += soc_.procs[i].spec.ActiveWattsFor(soc_.procs[i].compute) * busy[i] * 1e-3;
    r.total_energy_mj += bytes[i] * soc_.dram_nj_per_byte * 1e-6;
  }
  r.total_energy_mj += soc_.idle_w * r.latency_us * 1e-3;
  return r;
}

}  // namespace ulayer::multi
