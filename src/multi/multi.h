// Multi-processor extension (paper Section 8.3): cooperative single-layer
// acceleration generalized from {CPU, GPU} to N processors, including NPUs
// and DSPs.
//
// The paper claims the three mechanisms extend naturally:
//  1. channel-wise distribution splits output channels across all N
//     processors (fraction vector instead of a single ratio p);
//  2. processor-friendly quantization assigns each processor its preferred
//     arithmetic dtype (NPUs: 8-bit linear quantization, like Google's TPU);
//  3. branch distribution maps branches onto N processors (N^B enumeration).
//
// This module is a planning/simulation study: it reuses the LayerWork cost
// model and the roofline per-processor latency, with its own N-way
// partitioner and timeline executor. Functional N-way execution would reuse
// the same QUInt8 kernels the CPU path uses (an NPU computes 8-bit integer
// MACs), so no new numerics are introduced.
#pragma once

#include <string>
#include <vector>

#include "nn/branch.h"
#include "soc/spec.h"
#include "soc/work.h"

namespace ulayer::multi {

// One processor of an N-processor SoC plus its friendly compute dtype.
struct MultiProcessor {
  ProcessorSpec spec;
  DType compute = DType::kQUInt8;
};

struct MultiSoc {
  std::string name;
  std::vector<MultiProcessor> procs;
  double sync_us = 80.0;  // Cost of one multi-processor merge point.
  double map_us = 8.0;
  double dram_nj_per_byte = 0.4;
  double idle_w = 1.0;
};

// Exynos 7420's CPU (QUInt8) + GPU (F16) + an Edge-TPU-class NPU (QUInt8,
// high integer throughput, higher kernel-launch latency).
MultiSoc MakeExynos7420WithNpu();
// The same SoC without the NPU (for apples-to-apples comparisons).
MultiSoc MakeExynos7420Multi();

// Roofline latency of `work` on one processor at its friendly dtype.
double KernelLatencyUs(const MultiProcessor& p, const LayerWork& work);

// True when `kind` supports channel-wise output splitting (paper Section 5).
// Shared by the N-processor partitioner here and the N-node distributed
// partitioner in src/net.
bool SplittableLayer(LayerKind kind);

// Work of the fraction-f output-channel slice of `node` (QUInt8 storage).
LayerWork SliceWork(const Graph& g, const Node& node, double fraction);

// All compositions of 1.0 into `n` parts on a `step` grid with at least two
// active entries, in a deterministic enumeration order. The candidate pool
// both N-way partitioners (processors in src/multi, nodes in src/net) search.
std::vector<std::vector<double>> FractionGrid(size_t n, double step);

// Per-node output-channel fractions, one per processor; sums to 1.
struct MultiAssignment {
  std::vector<double> fractions;

  int ActiveProcs() const {
    int n = 0;
    for (double f : fractions) {
      n += f > 0.0 ? 1 : 0;
    }
    return n;
  }
};

struct MultiBranchPlan {
  BranchGroup group;
  std::vector<int> assignment;  // Processor index per branch.
};

struct MultiPlan {
  std::vector<MultiAssignment> nodes;  // Indexed by node id.
  std::vector<MultiBranchPlan> branch_plans;
};

struct MultiRunResult {
  double latency_us = 0.0;
  double total_energy_mj = 0.0;
  std::vector<double> busy_us;  // Per processor.
  int sync_count = 0;
};

// N-way partitioner: per layer, enumerates fraction vectors on a 0.25 grid
// over all processors (plus single-processor unit vectors) and picks the
// minimum of max-over-processors latency + merge cost. Branch groups are
// mapped by exhaustive N^B enumeration first.
class MultiPartitioner {
 public:
  struct Options {
    bool channel_distribution = true;
    bool branch_distribution = true;
    double grid_step = 0.25;
  };

  MultiPartitioner(const Graph& graph, const MultiSoc& soc, Options options);
  MultiPartitioner(const Graph& graph, const MultiSoc& soc)
      : MultiPartitioner(graph, soc, Options()) {}

  MultiPlan Build() const;

  // Estimated latency of one node under a fraction vector.
  double EstimateNodeUs(const Node& node, const MultiAssignment& a) const;

 private:
  std::vector<MultiAssignment> CandidateAssignments(bool splittable) const;

  const Graph& graph_;
  const MultiSoc& soc_;
  Options options_;
};

// Simulate-only executor over N virtual timelines.
class MultiExecutor {
 public:
  MultiExecutor(const Graph& graph, const MultiSoc& soc) : graph_(graph), soc_(soc) {}

  MultiRunResult Run(const MultiPlan& plan) const;

 private:
  const Graph& graph_;
  const MultiSoc& soc_;
};

}  // namespace ulayer::multi
