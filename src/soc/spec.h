// SoC hardware specifications for the timing/energy simulator.
//
// ulayer executes NN arithmetic functionally on the host; wall-clock latency
// and energy are produced by this model instead of real mobile silicon. The
// presets below are calibrated so the *relative* behaviours the paper
// measures hold (see DESIGN.md Section 2):
//   - Exynos 7420: GPU ~1.40x faster than CPU on VGG-16 conv layers (F32).
//   - Exynos 7880: CPU ~26% faster than GPU (F32).
//   - CPUs gain ~2.5-3x from QUInt8 and nothing from F16 (emulated via F32).
//   - GPUs gain ~1.8x from F16; QUInt8 on the GPU is worse than F16 because
//     32-bit accumulation halves ALU concurrency.
#pragma once

#include <string>

#include "tensor/dtype.h"

namespace ulayer {

enum class ProcKind : uint8_t { kCpu, kGpu };

constexpr std::string_view ProcKindName(ProcKind k) {
  return k == ProcKind::kCpu ? "CPU" : "GPU";
}

// One processor (CPU cluster or GPU) of a mobile SoC.
struct ProcessorSpec {
  std::string name;
  ProcKind kind = ProcKind::kCpu;

  // Effective arithmetic throughput in giga-MACs per second, per compute
  // data type. "Effective" folds in achievable kernel efficiency, not the
  // datasheet peak.
  double gmacs_f32 = 1.0;
  double gmacs_f16 = 1.0;
  double gmacs_qu8 = 1.0;

  // Cores the effective throughput above is spread across (big-cluster cores
  // for the CPU, shader cores for the GPU). The gmacs_* numbers are the
  // *whole-cluster* throughput the paper measures; running a CPU kernel with
  // fewer threads than cores scales compute time up linearly (memory
  // bandwidth is shared and does not scale). See TimingModel::KernelBodyUs.
  int cores = 1;

  // Effective memory bandwidth available to this processor (GB/s).
  double gb_per_s = 5.0;

  // Fixed overhead for issuing one kernel (microseconds). Mobile-GPU OpenCL
  // command issue is tens of microseconds; CPU dispatch is cheap.
  double kernel_launch_us = 5.0;

  // Active power draw while computing (watts), per compute data type.
  double active_w_f32 = 1.0;
  double active_w_f16 = 1.0;
  double active_w_qu8 = 1.0;

  // Fraction of the cluster's arithmetic throughput available to a kernel
  // running on `threads` cores. `threads <= 0` means "all cores" (the
  // paper's measurement setup); values above `cores` clamp.
  double ThreadScale(int threads) const {
    if (threads <= 0 || cores <= 1) {
      return 1.0;
    }
    return static_cast<double>(threads < cores ? threads : cores) /
           static_cast<double>(cores);
  }

  double GmacsFor(DType compute) const {
    switch (compute) {
      case DType::kF32:
        return gmacs_f32;
      case DType::kF16:
        return gmacs_f16;
      case DType::kQUInt8:
        return gmacs_qu8;
      case DType::kInt32:
        return gmacs_f32;
    }
    return gmacs_f32;
  }

  double ActiveWattsFor(DType compute) const {
    switch (compute) {
      case DType::kF32:
        return active_w_f32;
      case DType::kF16:
        return active_w_f16;
      case DType::kQUInt8:
        return active_w_qu8;
      case DType::kInt32:
        return active_w_f32;
    }
    return active_w_f32;
  }
};

// A whole SoC: one CPU cluster abstraction + one GPU, shared memory.
struct SocSpec {
  std::string name;
  ProcessorSpec cpu;
  ProcessorSpec gpu;

  // Cost of one CPU-GPU synchronization point (event wait + cache
  // maintenance), microseconds.
  double sync_us = 60.0;

  // Cost of mapping/unmapping a zero-copy buffer for CPU access (us).
  double map_us = 8.0;

  // memcpy bandwidth used when zero-copy sharing is disabled (GB/s).
  double copy_gb_per_s = 4.0;

  // DRAM access energy (nanojoules per byte moved). Data movement is a major
  // energy consumer on mobile (paper Section 4.2).
  double dram_nj_per_byte = 0.4;

  // Baseline device power (watts): rails that stay on during inference.
  // The paper measures whole-phone energy at the battery (Monsoon HVPM,
  // Figure 15), so this covers DRAM refresh, PMIC, interconnect and the
  // idle remainder of the device — it is charged over the run's makespan,
  // which is how latency reductions turn into energy reductions.
  double idle_w = 0.35;
};

// Samsung Exynos 7420 (Galaxy Note 5): 4x Cortex-A57 @2.1GHz + 4x A53,
// Mali-T760 MP8 @700MHz. "High-end" SoC of the paper.
SocSpec MakeExynos7420();

// Samsung Exynos 7880 (Galaxy A5 2017): 8x Cortex-A53 @1.9GHz,
// Mali-T830 MP3 @962MHz. "Mid-range" SoC of the paper.
SocSpec MakeExynos7880();

}  // namespace ulayer
