// LayerWork: the arithmetic and memory-traffic footprint of (a slice of) an
// NN layer, independent of which processor runs it.
#pragma once

#include <cstdint>

#include "nn/graph.h"
#include "tensor/dtype.h"

namespace ulayer {

struct LayerWork {
  double macs = 0.0;          // Multiply-accumulates (or equivalent ops).
  double input_bytes = 0.0;   // Activations read.
  double weight_bytes = 0.0;  // Filter/bias bytes read.
  double output_bytes = 0.0;  // Activations written.

  double TotalBytes() const { return input_bytes + weight_bytes + output_bytes; }
};

// Computes the work of executing output channels [c_begin, c_end) of `node`
// with activations and weights stored as `storage` dtype.
//
// Channel-slicing semantics follow Section 3.2: conv/FC slices share the
// whole input but read only their filter slice; pooling/depthwise/LRN slices
// read only their input channels. Concat/softmax are treated as pure memory
// traffic.
LayerWork ComputeWork(const Graph& g, const Node& node, DType storage, int64_t c_begin = 0,
                      int64_t c_end = -1);

// Total MACs of the full network (for reporting).
double TotalMacs(const Graph& g);

// Work model of the Winograd F(2x2,3x3) lowering for an eligible conv node
// slice (3x3, stride 1): 16/36 of the direct MACs, plus transform traffic.
// Pairs with kernels/winograd.h; used by bench/winograd_ablation.
LayerWork WinogradConvWork(const Graph& g, const Node& node, DType storage, int64_t c_begin = 0,
                           int64_t c_end = -1);

}  // namespace ulayer
