#include "soc/spec.h"

namespace ulayer {

SocSpec MakeExynos7420() {
  SocSpec soc;
  soc.name = "Exynos7420";

  // 4x Cortex-A57 @ 2.1 GHz (big cluster carries NN kernels; the A53 little
  // cluster contributes little under ACL's big-core affinity).
  soc.cpu.name = "4xA57";
  soc.cpu.kind = ProcKind::kCpu;
  soc.cpu.cores = 4;
  soc.cpu.gmacs_f32 = 18.0;  // 128-bit NEON FMA, ~55% GEMM efficiency.
  soc.cpu.gmacs_f16 = 18.0;  // No vector F16 ALU: emulated via F32 (Sec. 4.1).
  soc.cpu.gmacs_qu8 = 52.0;  // gemmlowp u8 dot paths, ~2.9x over F32.
  soc.cpu.gb_per_s = 8.0;
  soc.cpu.kernel_launch_us = 4.0;
  soc.cpu.active_w_f32 = 4.3;
  soc.cpu.active_w_f16 = 4.3;
  soc.cpu.active_w_qu8 = 3.9;

  // Mali-T760 MP8 @ 700 MHz. FP16 ALUs run two lanes per FP32 lane; QUInt8
  // loses concurrency to 32-bit accumulation (Sec. 4.1).
  soc.gpu.name = "MaliT760MP8";
  soc.gpu.kind = ProcKind::kGpu;
  soc.gpu.cores = 8;
  soc.gpu.gmacs_f32 = 25.2;  // 1.40x the CPU, matching the paper's Figure 5.
  soc.gpu.gmacs_f16 = 38.0;
  soc.gpu.gmacs_qu8 = 27.0;
  soc.gpu.gb_per_s = 10.0;
  soc.gpu.kernel_launch_us = 55.0;  // OpenCL command issue on Mali.
  soc.gpu.active_w_f32 = 2.4;
  soc.gpu.active_w_f16 = 1.55;
  soc.gpu.active_w_qu8 = 2.4;

  soc.sync_us = 80.0;
  soc.map_us = 8.0;
  soc.copy_gb_per_s = 4.0;
  soc.dram_nj_per_byte = 0.4;
  soc.idle_w = 1.05;
  return soc;
}

SocSpec MakeExynos7880() {
  SocSpec soc;
  soc.name = "Exynos7880";

  // 8x Cortex-A53 @ 1.9 GHz (in-order, 64-bit NEON datapath).
  soc.cpu.name = "8xA53";
  soc.cpu.kind = ProcKind::kCpu;
  soc.cpu.cores = 8;
  soc.cpu.gmacs_f32 = 12.0;
  soc.cpu.gmacs_f16 = 12.0;
  soc.cpu.gmacs_qu8 = 22.0;  // Dual-issue limits u8 gains on A53 (~1.8x).
  soc.cpu.gb_per_s = 5.5;
  soc.cpu.kernel_launch_us = 4.0;
  soc.cpu.active_w_f32 = 2.7;
  soc.cpu.active_w_f16 = 2.7;
  soc.cpu.active_w_qu8 = 2.5;

  // Mali-T830 MP3 @ 962 MHz: the CPU beats it at F32 by ~26% (Figure 5b).
  soc.gpu.name = "MaliT830MP3";
  soc.gpu.kind = ProcKind::kGpu;
  soc.gpu.cores = 3;
  soc.gpu.gmacs_f32 = 8.9;
  soc.gpu.gmacs_f16 = 19.0;
  soc.gpu.gmacs_qu8 = 10.0;
  soc.gpu.gb_per_s = 4.5;
  soc.gpu.kernel_launch_us = 75.0;
  soc.gpu.active_w_f32 = 1.5;
  soc.gpu.active_w_f16 = 1.05;
  soc.gpu.active_w_qu8 = 1.5;

  soc.sync_us = 110.0;
  soc.map_us = 10.0;
  soc.copy_gb_per_s = 3.0;
  soc.dram_nj_per_byte = 0.5;
  soc.idle_w = 0.85;
  return soc;
}

}  // namespace ulayer
