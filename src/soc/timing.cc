#include "soc/timing.h"

namespace ulayer {

double TimingModel::KernelBodyUs(const LayerWork& work, ProcKind k, DType compute,
                                 int cpu_threads) const {
  const ProcessorSpec& p = proc(k);
  // gmacs = 1e9 MAC/s = 1e3 MAC/us; GB/s = 1e3 bytes/us. The gmacs numbers
  // are whole-cluster throughput; a CPU kernel restricted to fewer threads
  // than cores gets a proportional slice. Memory bandwidth is shared across
  // the cluster and does not scale with the thread count.
  const double scale = k == ProcKind::kCpu ? p.ThreadScale(cpu_threads) : 1.0;
  const double compute_us = work.macs / (p.GmacsFor(compute) * scale * 1e3);
  const double memory_us = work.TotalBytes() / (p.gb_per_s * 1e3);
  return compute_us + memory_us;
}

double TimingModel::KernelLatencyUs(const LayerWork& work, ProcKind k, DType compute,
                                    int cpu_threads) const {
  return proc(k).kernel_launch_us + KernelBodyUs(work, k, compute, cpu_threads);
}

double EnergyModel::ComputeEnergyMj(ProcKind k, DType compute, double busy_us,
                                    double bytes) const {
  const ProcessorSpec& p = k == ProcKind::kCpu ? soc_.cpu : soc_.gpu;
  // 1 W * 1 us = 1e-3 mJ; 1 nJ = 1e-6 mJ.
  const double compute_mj = p.ActiveWattsFor(compute) * busy_us * 1e-3;
  const double dram_mj = bytes * soc_.dram_nj_per_byte * 1e-6;
  return compute_mj + dram_mj;
}

double EnergyModel::IdleEnergyMj(double makespan_us) const {
  return soc_.idle_w * makespan_us * 1e-3;
}

}  // namespace ulayer
