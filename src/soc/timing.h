// TimingModel: converts LayerWork into simulated microseconds on a
// processor, and EnergyModel: converts busy time + traffic into millijoules.
//
// Latency model (additive, no compute/memory overlap — conservative for
// in-order mobile memory systems):
//   t = kernel_launch + macs / gmacs(compute_dtype) + bytes / bandwidth
#pragma once

#include "soc/spec.h"
#include "soc/work.h"

namespace ulayer {

class TimingModel {
 public:
  explicit TimingModel(const SocSpec& soc) : soc_(soc) {}

  const SocSpec& soc() const { return soc_; }
  const ProcessorSpec& proc(ProcKind k) const {
    return k == ProcKind::kCpu ? soc_.cpu : soc_.gpu;
  }

  // Latency (microseconds) of one kernel performing `work` on `proc`, with
  // arithmetic executed as `compute` dtype. `cpu_threads` is the CPU thread
  // budget (ExecConfig::cpu_threads): fewer threads than the CPU cluster's
  // cores scale the compute term up linearly; 0 means all cores (the
  // default, matching the paper's measurements). The GPU term ignores it.
  double KernelLatencyUs(const LayerWork& work, ProcKind proc, DType compute,
                         int cpu_threads = 0) const;

  // Latency excluding the fixed launch overhead (used when several logical
  // ops are fused into one kernel invocation).
  double KernelBodyUs(const LayerWork& work, ProcKind proc, DType compute,
                      int cpu_threads = 0) const;

  double SyncUs() const { return soc_.sync_us; }
  double MapUs() const { return soc_.map_us; }

 private:
  SocSpec soc_;
};

// Accumulates the energy of an inference run. The executor reports per-
// processor busy time and the bytes each kernel moves; the model adds SoC
// baseline power over the wall-clock makespan.
class EnergyModel {
 public:
  explicit EnergyModel(const SocSpec& soc) : soc_(soc) {}

  // Energy of `busy_us` microseconds of computation on `proc` at `compute`
  // dtype, plus DRAM energy for `bytes` of traffic. Returns millijoules.
  double ComputeEnergyMj(ProcKind proc, DType compute, double busy_us, double bytes) const;

  // DRAM energy alone for `bytes` of traffic (millijoules).
  double DramEnergyMj(double bytes) const { return bytes * soc_.dram_nj_per_byte * 1e-6; }

  // Baseline (always-on rails) energy over the run's makespan.
  double IdleEnergyMj(double makespan_us) const;

 private:
  SocSpec soc_;
};

}  // namespace ulayer
