#include "soc/work.h"

#include <cassert>

namespace ulayer {

LayerWork ComputeWork(const Graph& g, const Node& node, DType storage, int64_t c_begin,
                      int64_t c_end) {
  const double esize = static_cast<double>(DTypeSize(storage));
  LayerWork w;
  const Shape& out = node.out_shape;
  if (c_end < 0) {
    c_end = out.c;
  }
  const double oc = static_cast<double>(c_end - c_begin);
  const double out_spatial = static_cast<double>(out.n * out.h * out.w);

  switch (node.desc.kind) {
    case LayerKind::kInput:
      return w;
    case LayerKind::kConv:
    case LayerKind::kFullyConnected: {
      const Shape& in = g.node(node.inputs[0]).out_shape;
      const double k2ic = static_cast<double>(node.desc.conv.kernel_h) *
                          node.desc.conv.kernel_w * static_cast<double>(in.c);
      w.macs = oc * out_spatial * k2ic;
      // The whole input is shared by every channel slice (filters extend
      // through all input channels, Figure 7a).
      w.input_bytes = static_cast<double>(in.NumElements()) * esize;
      w.weight_bytes = oc * k2ic * esize;
      w.output_bytes = oc * out_spatial * esize;
      return w;
    }
    case LayerKind::kDepthwiseConv: {
      const double k2 =
          static_cast<double>(node.desc.conv.kernel_h) * node.desc.conv.kernel_w;
      const Shape& in = g.node(node.inputs[0]).out_shape;
      w.macs = oc * out_spatial * k2;
      // Channel c of the output needs only channel c of the input.
      w.input_bytes = oc * static_cast<double>(in.n * in.h * in.w) * esize;
      w.weight_bytes = oc * k2 * esize;
      w.output_bytes = oc * out_spatial * esize;
      return w;
    }
    case LayerKind::kPool: {
      const double k2 =
          static_cast<double>(node.desc.pool.kernel_h) * node.desc.pool.kernel_w;
      const Shape& in = g.node(node.inputs[0]).out_shape;
      // One compare/add per window element, counted as one MAC-equivalent.
      w.macs = oc * out_spatial * k2;
      w.input_bytes = oc * static_cast<double>(in.n * in.h * in.w) * esize;
      w.output_bytes = oc * out_spatial * esize;
      return w;
    }
    case LayerKind::kGlobalAvgPool: {
      const Shape& in = g.node(node.inputs[0]).out_shape;
      w.macs = oc * static_cast<double>(in.n * in.h * in.w);
      w.input_bytes = oc * static_cast<double>(in.n * in.h * in.w) * esize;
      w.output_bytes = oc * static_cast<double>(out.n) * esize;
      return w;
    }
    case LayerKind::kRelu: {
      w.macs = oc * out_spatial;
      w.input_bytes = oc * out_spatial * esize;
      w.output_bytes = oc * out_spatial * esize;
      return w;
    }
    case LayerKind::kLrn: {
      // local_size squared-accumulates + one pow/div per element; the pow is
      // folded into a small constant factor.
      const double per_elem = static_cast<double>(node.desc.lrn.local_size) + 8.0;
      w.macs = oc * out_spatial * per_elem;
      // Each output channel reads a local_size window of input channels.
      w.input_bytes = oc * out_spatial * esize * 2.0;
      w.output_bytes = oc * out_spatial * esize;
      return w;
    }
    case LayerKind::kConcat: {
      // Pure data movement: write the slice once (reads accounted on the
      // producers' output side would double-count; count read+write here and
      // treat producer writes as cache-resident).
      w.input_bytes = oc * out_spatial * esize;
      w.output_bytes = oc * out_spatial * esize;
      return w;
    }
    case LayerKind::kEltwiseAdd: {
      // One add per element; reads both operands, writes the sum.
      w.macs = oc * out_spatial;
      w.input_bytes = 2.0 * oc * out_spatial * esize;
      w.output_bytes = oc * out_spatial * esize;
      return w;
    }
    case LayerKind::kSoftmax: {
      w.macs = oc * out_spatial * 8.0;  // exp ~ a handful of MAC-equivalents
      w.input_bytes = oc * out_spatial * esize;
      w.output_bytes = oc * out_spatial * esize;
      return w;
    }
  }
  return w;
}

LayerWork WinogradConvWork(const Graph& g, const Node& node, DType storage, int64_t c_begin,
                           int64_t c_end) {
  assert(node.desc.kind == LayerKind::kConv);
  assert(node.desc.conv.kernel_h == 3 && node.desc.conv.stride_h == 1);
  LayerWork w = ComputeWork(g, node, storage, c_begin, c_end);
  // 16 transform-domain multiplies replace the 36 direct MACs of each 2x2
  // output tile, per (oc, ic) pair.
  w.macs *= 16.0 / 36.0;
  // Transform overhead: the input transform touches each input element ~4x
  // (tiles overlap by 2) and the inverse transform each output element once;
  // count them as extra traffic in the storage dtype.
  const double esize = static_cast<double>(DTypeSize(storage));
  const Shape& in = g.node(node.inputs[0]).out_shape;
  w.input_bytes += static_cast<double>(in.NumElements()) * esize;  // V tiles.
  w.output_bytes += w.output_bytes;                                // M tiles.
  return w;
}

double TotalMacs(const Graph& g) {
  double total = 0.0;
  for (const Node& n : g.nodes()) {
    total += ComputeWork(g, n, DType::kF32).macs;
  }
  return total;
}

}  // namespace ulayer
