// ulayer::Error: the one exception type the runtime throws.
//
// Every failure carries a stable ErrorCode plus the graph node id and
// processor it anchors to (when known), so callers can route on the code
// instead of string-matching what(). Subsystem-specific exceptions
// (VerifyError, ParseError) derive from Error so a single catch handles the
// whole runtime while specific handlers keep working. what() is the message
// verbatim — migrating a throw site onto Error never changes its text.
//
// Header-only on purpose: quant, io, core and fault all throw, and none of
// them should grow a link dependency for an exception class.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "soc/spec.h"

namespace ulayer {

enum class ErrorCode : uint8_t {
  kInvalidArgument,  // A caller-supplied value is out of domain.
  kInvalidConfig,    // ExecConfig combination no kernel implements.
  kQuantization,     // Degenerate scale/multiplier in the quantized path.
  kParse,            // Malformed ulayer-graph/ulayer-plan/fault-spec text.
  kVerify,           // Static verifier reported error diagnostics.
  kFault,            // Injected or observed device fault was unrecoverable.
};

constexpr std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kInvalidConfig:
      return "invalid-config";
    case ErrorCode::kQuantization:
      return "quantization";
    case ErrorCode::kParse:
      return "parse";
    case ErrorCode::kVerify:
      return "verify";
    case ErrorCode::kFault:
      return "fault";
  }
  return "unknown";
}

class Error : public std::runtime_error {
 public:
  explicit Error(ErrorCode code, const std::string& message, int node = -1,
                 std::optional<ProcKind> proc = std::nullopt)
      : std::runtime_error(message), code_(code), node_(node), proc_(proc) {}

  ErrorCode code() const { return code_; }
  // Graph node id the error anchors to, or -1 when not node-specific.
  int node() const { return node_; }
  // Processor the error anchors to, when one is involved.
  std::optional<ProcKind> proc() const { return proc_; }

 private:
  ErrorCode code_;
  int node_;
  std::optional<ProcKind> proc_;
};

}  // namespace ulayer
