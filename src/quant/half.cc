#include "quant/half.h"

#include <cstring>

namespace ulayer {
namespace {

uint32_t FloatBits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float BitsFloat(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

}  // namespace

uint16_t Half::FromFloat(float f) {
  const uint32_t x = FloatBits(f);
  const uint32_t sign = (x >> 16) & 0x8000u;
  const uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf or NaN. Keep a quiet NaN payload bit so NaN stays NaN.
    const uint32_t mantissa = (abs > 0x7f800000u) ? 0x0200u : 0u;
    return static_cast<uint16_t>(sign | 0x7c00u | mantissa);
  }
  if (abs >= 0x47800000u) {
    // Magnitude >= 65536 overflows binary16 -> infinity. Values in
    // (65504, 65536) are handled by the normal path below, whose mantissa
    // carry rounds them to infinity as IEEE requires.
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {
    // Subnormal half (or zero): magnitude < 2^-14.
    if (abs < 0x33000000u) {
      // Below half the smallest subnormal: rounds to zero.
      return static_cast<uint16_t>(sign);
    }
    // Align the implicit leading 1 and shift into a subnormal mantissa with
    // round-to-nearest-even.
    const int shift = 113 - static_cast<int>(abs >> 23);
    const uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
    const uint32_t shifted = mant >> (shift + 13);
    const uint32_t remainder = mant & ((1u << (shift + 13)) - 1);
    const uint32_t halfway = 1u << (shift + 12);
    uint32_t result = shifted;
    if (remainder > halfway || (remainder == halfway && (shifted & 1u))) {
      ++result;
    }
    return static_cast<uint16_t>(sign | result);
  }

  // Normal range. Rebias exponent from 127 to 15 and round the 13 dropped
  // mantissa bits to nearest-even. A mantissa carry naturally increments the
  // exponent (and can correctly produce infinity at the top of the range).
  const uint32_t rebased = abs - ((127 - 15) << 23);
  const uint32_t shifted = rebased >> 13;
  const uint32_t remainder = rebased & 0x1fffu;
  uint32_t result = shifted;
  if (remainder > 0x1000u || (remainder == 0x1000u && (shifted & 1u))) {
    ++result;
  }
  return static_cast<uint16_t>(sign | result);
}

float Half::ToFloatImpl(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  const uint32_t mant = h & 0x3ffu;

  if (exp == 0) {
    if (mant == 0) {
      return BitsFloat(sign);  // +/- zero
    }
    // Subnormal: normalize by shifting the mantissa up until the leading 1
    // reaches the implicit-bit position.
    int e = -1;
    uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x400u) == 0);
    const uint32_t exp32 = static_cast<uint32_t>(127 - 15 - e);
    return BitsFloat(sign | (exp32 << 23) | ((m & 0x3ffu) << 13));
  }
  if (exp == 0x1f) {
    // Inf/NaN.
    return BitsFloat(sign | 0x7f800000u | (mant << 13));
  }
  return BitsFloat(sign | ((exp + 127 - 15) << 23) | (mant << 13));
}

}  // namespace ulayer
