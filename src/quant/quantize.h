// Linear (affine) 8-bit quantization, following Jacob et al. (CVPR'18) and
// gemmlowp: real = scale * (q - zero_point), q in [0, 255].
//
// Also provides the fixed-point requantization pipeline used to bring the
// 32-bit accumulators of a QUInt8 GEMM back to 8 bits, and min/max range
// observers used for post-training ("fake quant") calibration.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "tensor/tensor.h"

namespace ulayer {

// Affine quantization parameters for a tensor.
struct QuantParams {
  float scale = 1.0f;
  int32_t zero_point = 0;

  float Dequantize(uint8_t q) const {
    return scale * static_cast<float>(static_cast<int32_t>(q) - zero_point);
  }
  uint8_t Quantize(float real) const;

  bool operator==(const QuantParams&) const = default;
};

// Chooses (scale, zero_point) so that [min_val, max_val] maps onto [0, 255]
// with zero exactly representable (required so zero-padding is exact).
// The range is widened to include 0 if it does not already.
QuantParams ChooseQuantParams(float min_val, float max_val);

// Quantizes an F32 tensor into a QUInt8 tensor with the given parameters.
// The result carries (scale, zero_point) in its tensor metadata.
Tensor QuantizeTensor(const Tensor& f32, const QuantParams& qp);

// Dequantizes a QUInt8 tensor (using its embedded parameters) back to F32.
Tensor DequantizeTensor(const Tensor& q);

// Converts an F32 tensor to F16 storage (round-to-nearest-even per element).
Tensor ToF16Tensor(const Tensor& f32);

// Converts an F16 tensor back to F32.
Tensor F16ToF32Tensor(const Tensor& f16);

// --- Requantization -------------------------------------------------------
//
// A QUInt8 GEMM accumulates uint8*uint8 products into int32. Bringing the
// accumulator back to uint8 requires multiplying by the real-valued ratio
//   M = (input_scale * filter_scale) / output_scale,  usually < 1,
// which gemmlowp expresses as a normalized int32 fixed-point multiplier and
// a shift: M = M0 * 2^-shift, M0 in [2^30, 2^31). M >= 1 (large input or
// filter scales relative to the output scale) yields a negative shift,
// applied as a saturating left shift before the fixed-point multiply.
struct RequantScale {
  int32_t multiplier = 0;  // Q31 fixed-point mantissa in [2^30, 2^31).
  int shift = 0;           // Right shift; negative = left shift (M >= 1).
};

// Decomposes a positive real multiplier into (multiplier, shift). Throws
// ulayer::Error (kQuantization) if the multiplier is non-positive,
// non-finite, or outside the representable range [2^-32, 2^31).
RequantScale ComputeRequantScale(double real_multiplier);

// Rounding doubling high multiply + rounding right shift, exactly the
// gemmlowp/NEON SQRDMULH + RSHL sequence.
int32_t SaturatingRoundingDoublingHighMul(int32_t a, int32_t b);
int32_t RoundingDivideByPOT(int32_t x, int exponent);

// Applies the full requantization of one accumulator value:
//   q = clamp(zero_point_out + round(acc * M), 0, 255).
uint8_t RequantizeOne(int32_t acc, const RequantScale& rs, int32_t output_zero_point);

// --- Per-channel weight quantization ---------------------------------------
//
// The paper quantizes filters per layer (one scale for the whole tensor).
// Modern integer stacks (TFLite, QNNPACK) quantize conv filters per output
// channel, which tightens each channel's range and markedly reduces accuracy
// loss. Provided here as an extension; see bench/per_channel_quant.

struct PerChannelParams {
  std::vector<QuantParams> channels;  // One per output channel.
};

// Quantizes a filter tensor [OC, IC, KH, KW] with an independent min/max
// range per output channel. The returned tensor's embedded (scale, zp) are
// those of channel 0; real parameters live in `params`.
Tensor QuantizeFiltersPerChannel(const Tensor& f32, PerChannelParams& params);

// Dequantizes a per-channel-quantized filter tensor.
Tensor DequantizeFiltersPerChannel(const Tensor& q, const PerChannelParams& params);

// --- Range calibration -----------------------------------------------------

// Tracks the running min/max of values it observes. Used for post-training
// range calibration: run a calibration set through the F32 network, observe
// every activation tensor, then derive QuantParams from the observed range.
// This plays the role of TensorFlow's "fake quantization" range learning
// (Section 4.3): naive single-batch ranges lose accuracy; calibrated ranges
// recover it.
class MinMaxObserver {
 public:
  void Observe(const Tensor& f32);
  void Observe(float v);

  bool seen() const { return seen_; }
  float min_val() const { return min_; }
  float max_val() const { return max_; }
  QuantParams Params() const { return ChooseQuantParams(min_, max_); }

  // Expands the tracked range by keeping only the central `fraction` of the
  // magnitude (simple percentile-style clipping used by some calibrators).
  void ShrinkRange(float fraction);

 private:
  bool seen_ = false;
  float min_ = std::numeric_limits<float>::max();
  float max_ = std::numeric_limits<float>::lowest();
};

}  // namespace ulayer
