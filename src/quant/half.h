// Half: software IEEE 754 binary16 ("half precision", OpenCL `half`).
//
// Mobile GPUs (e.g. ARM Mali) have native F16 ALUs; ulayer's GPU compute
// path performs arithmetic in F16 (Section 4.2 of the paper). This class
// emulates that arithmetic bit-accurately: every operation converts to F32,
// computes, and rounds the result back to binary16 with round-to-nearest-
// even — exactly what a per-operation F16 ALU produces.
#pragma once

#include <cstdint>

namespace ulayer {

class Half {
 public:
  Half() = default;
  explicit Half(float f) : bits_(FromFloat(f)) {}

  static Half FromBits(uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  uint16_t bits() const { return bits_; }
  float ToFloat() const { return ToFloatImpl(bits_); }
  explicit operator float() const { return ToFloat(); }

  Half operator+(Half o) const { return Half(ToFloat() + o.ToFloat()); }
  Half operator-(Half o) const { return Half(ToFloat() - o.ToFloat()); }
  Half operator*(Half o) const { return Half(ToFloat() * o.ToFloat()); }
  Half operator/(Half o) const { return Half(ToFloat() / o.ToFloat()); }
  Half& operator+=(Half o) { return *this = *this + o; }

  bool operator==(const Half& o) const = default;
  bool operator<(Half o) const { return ToFloat() < o.ToFloat(); }

  // Round a float to the nearest representable binary16 value, ties to even.
  // Overflow saturates to +/-infinity; subnormals are preserved.
  static uint16_t FromFloat(float f);
  static float ToFloatImpl(uint16_t h);

 private:
  uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2, "Half must be exactly 16 bits for tensor storage");

}  // namespace ulayer
