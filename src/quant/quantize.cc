#include "quant/quantize.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "common/error.h"
#include "parallel/thread_pool.h"
#include "quant/half.h"

namespace ulayer {

uint8_t QuantParams::Quantize(float real) const {
  const float q = std::nearbyint(real / scale) + static_cast<float>(zero_point);
  return static_cast<uint8_t>(std::clamp(q, 0.0f, 255.0f));
}

QuantParams ChooseQuantParams(float min_val, float max_val) {
  // Widen to include zero so that zero padding quantizes exactly.
  min_val = std::min(min_val, 0.0f);
  max_val = std::max(max_val, 0.0f);
  if (min_val == max_val) {
    // Degenerate all-zero range; any scale works.
    return QuantParams{1.0f, 0};
  }
  QuantParams qp;
  qp.scale = (max_val - min_val) / 255.0f;
  // Nudge the zero point to the nearest integer so 0.0 is exactly
  // representable (Jacob et al., Section 3).
  const float zp_real = -min_val / qp.scale;
  qp.zero_point = static_cast<int32_t>(std::clamp(std::nearbyint(zp_real), 0.0f, 255.0f));
  return qp;
}

Tensor QuantizeTensor(const Tensor& f32, const QuantParams& qp) {
  assert(f32.dtype() == DType::kF32);
  Tensor q(f32.shape(), DType::kQUInt8);
  q.set_quant_params(qp.scale, qp.zero_point);
  const float* src = f32.Data<float>();
  uint8_t* dst = q.Data<uint8_t>();
  parallel::ParallelFor(0, f32.NumElements(), parallel::GrainForOps(1.0),
                        [&](int64_t b, int64_t e) {
                          for (int64_t i = b; i < e; ++i) {
                            dst[i] = qp.Quantize(src[i]);
                          }
                        });
  return q;
}

Tensor DequantizeTensor(const Tensor& q) {
  assert(q.dtype() == DType::kQUInt8);
  Tensor f(q.shape(), DType::kF32);
  const QuantParams qp{q.scale(), q.zero_point()};
  const uint8_t* src = q.Data<uint8_t>();
  float* dst = f.Data<float>();
  parallel::ParallelFor(0, q.NumElements(), parallel::GrainForOps(1.0),
                        [&](int64_t b, int64_t e) {
                          for (int64_t i = b; i < e; ++i) {
                            dst[i] = qp.Dequantize(src[i]);
                          }
                        });
  return f;
}

Tensor ToF16Tensor(const Tensor& f32) {
  assert(f32.dtype() == DType::kF32);
  Tensor h(f32.shape(), DType::kF16);
  const float* src = f32.Data<float>();
  Half* dst = h.Data<Half>();
  parallel::ParallelFor(0, f32.NumElements(), parallel::GrainForOps(1.0),
                        [&](int64_t b, int64_t e) {
                          for (int64_t i = b; i < e; ++i) {
                            dst[i] = Half(src[i]);
                          }
                        });
  return h;
}

Tensor F16ToF32Tensor(const Tensor& f16) {
  assert(f16.dtype() == DType::kF16);
  Tensor f(f16.shape(), DType::kF32);
  const Half* src = f16.Data<Half>();
  float* dst = f.Data<float>();
  parallel::ParallelFor(0, f16.NumElements(), parallel::GrainForOps(1.0),
                        [&](int64_t b, int64_t e) {
                          for (int64_t i = b; i < e; ++i) {
                            dst[i] = src[i].ToFloat();
                          }
                        });
  return f;
}

RequantScale ComputeRequantScale(double real_multiplier) {
  // A zero, negative, or non-finite multiplier cannot come out of valid
  // quantization parameters; reject it with a real error instead of an
  // assert, which release builds compile away (leaving garbage shifts and
  // silent corruption).
  if (!std::isfinite(real_multiplier) || real_multiplier <= 0.0) {
    throw Error(ErrorCode::kQuantization,
                "ComputeRequantScale: multiplier must be positive and finite, got " +
                    std::to_string(real_multiplier));
  }
  RequantScale rs;
  int exponent = 0;
  const double mantissa = std::frexp(real_multiplier, &exponent);
  // mantissa in [0.5, 1), real = mantissa * 2^exponent. Multipliers >= 1
  // (large input/filter scales relative to the output scale) have
  // exponent >= 1 and decompose into a *left* shift, gemmlowp-style.
  auto q31 = static_cast<int64_t>(std::llround(mantissa * (1ll << 31)));
  if (q31 == (1ll << 31)) {
    q31 /= 2;
    ++exponent;
  }
  rs.multiplier = static_cast<int32_t>(q31);
  rs.shift = -exponent;
  if (rs.shift < -31 || rs.shift > 31) {
    throw Error(ErrorCode::kQuantization,
                "ComputeRequantScale: multiplier " + std::to_string(real_multiplier) +
                    " is out of the representable range [2^-32, 2^31)");
  }
  return rs;
}

int32_t SaturatingRoundingDoublingHighMul(int32_t a, int32_t b) {
  const bool overflow = (a == b) && (a == std::numeric_limits<int32_t>::min());
  if (overflow) {
    return std::numeric_limits<int32_t>::max();
  }
  const int64_t ab = static_cast<int64_t>(a) * static_cast<int64_t>(b);
  const int32_t nudge = ab >= 0 ? (1 << 30) : (1 - (1 << 30));
  return static_cast<int32_t>((ab + nudge) / (1ll << 31));
}

int32_t RoundingDivideByPOT(int32_t x, int exponent) {
  assert(exponent >= 0 && exponent <= 31);
  if (exponent == 0) {
    return x;
  }
  const int32_t mask = static_cast<int32_t>((1ll << exponent) - 1);
  const int32_t remainder = x & mask;
  int32_t threshold = mask >> 1;
  if (x < 0) {
    ++threshold;
  }
  return (x >> exponent) + (remainder > threshold ? 1 : 0);
}

uint8_t RequantizeOne(int32_t acc, const RequantScale& rs, int32_t output_zero_point) {
  // Negative shift = left shift (multiplier >= 1): pre-scale the accumulator
  // by 2^-shift with saturation, then the usual doubling-high-mul. This is
  // gemmlowp's MultiplyByQuantizedMultiplier with our sign convention.
  int32_t x = acc;
  if (rs.shift < 0) {
    const int64_t shifted = static_cast<int64_t>(acc) << -rs.shift;
    x = static_cast<int32_t>(
        std::clamp<int64_t>(shifted, std::numeric_limits<int32_t>::min(),
                            std::numeric_limits<int32_t>::max()));
  }
  const int32_t scaled = RoundingDivideByPOT(SaturatingRoundingDoublingHighMul(x, rs.multiplier),
                                             rs.shift > 0 ? rs.shift : 0);
  const int32_t q = scaled + output_zero_point;
  return static_cast<uint8_t>(std::clamp(q, 0, 255));
}

Tensor QuantizeFiltersPerChannel(const Tensor& f32, PerChannelParams& params) {
  assert(f32.dtype() == DType::kF32);
  const Shape& s = f32.shape();  // [OC, IC, KH, KW]
  params.channels.resize(static_cast<size_t>(s.n));
  Tensor q(s, DType::kQUInt8);
  const int64_t per_channel = s.c * s.h * s.w;
  for (int64_t oc = 0; oc < s.n; ++oc) {
    const float* src = f32.Data<float>() + oc * per_channel;
    MinMaxObserver obs;
    for (int64_t i = 0; i < per_channel; ++i) {
      obs.Observe(src[i]);
    }
    const QuantParams qp = obs.Params();
    params.channels[static_cast<size_t>(oc)] = qp;
    uint8_t* dst = q.Data<uint8_t>() + oc * per_channel;
    for (int64_t i = 0; i < per_channel; ++i) {
      dst[i] = qp.Quantize(src[i]);
    }
  }
  if (!params.channels.empty()) {
    q.set_quant_params(params.channels[0].scale, params.channels[0].zero_point);
  }
  return q;
}

Tensor DequantizeFiltersPerChannel(const Tensor& q, const PerChannelParams& params) {
  assert(q.dtype() == DType::kQUInt8);
  const Shape& s = q.shape();
  assert(params.channels.size() == static_cast<size_t>(s.n));
  Tensor f(s, DType::kF32);
  const int64_t per_channel = s.c * s.h * s.w;
  for (int64_t oc = 0; oc < s.n; ++oc) {
    const QuantParams& qp = params.channels[static_cast<size_t>(oc)];
    const uint8_t* src = q.Data<uint8_t>() + oc * per_channel;
    float* dst = f.Data<float>() + oc * per_channel;
    for (int64_t i = 0; i < per_channel; ++i) {
      dst[i] = qp.Dequantize(src[i]);
    }
  }
  return f;
}

void MinMaxObserver::Observe(const Tensor& f32) {
  assert(f32.dtype() == DType::kF32);
  const float* p = f32.Data<float>();
  for (int64_t i = 0; i < f32.NumElements(); ++i) {
    Observe(p[i]);
  }
}

void MinMaxObserver::Observe(float v) {
  seen_ = true;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void MinMaxObserver::ShrinkRange(float fraction) {
  assert(fraction > 0.0f && fraction <= 1.0f);
  min_ *= fraction;
  max_ *= fraction;
}

}  // namespace ulayer
