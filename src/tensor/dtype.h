// Data types supported by the ulayer kernels and runtime.
#pragma once

#include <cstdint>
#include <string_view>

namespace ulayer {

// Element types a tensor can hold. kInt32 exists for the widening
// accumulators of 8-bit linear-quantized GEMMs (gemmlowp-style) and is not a
// storage type for network tensors.
enum class DType : uint8_t {
  kF32,     // 32-bit IEEE single precision (the NN default).
  kF16,     // 16-bit IEEE half precision, software-emulated (see quant/half.h).
  kQUInt8,  // 8-bit linearly-quantized unsigned integer with scale/zero-point.
  kInt32,   // 32-bit signed accumulator.
};

// Size of one element of `t` in bytes.
constexpr int64_t DTypeSize(DType t) {
  switch (t) {
    case DType::kF32:
      return 4;
    case DType::kF16:
      return 2;
    case DType::kQUInt8:
      return 1;
    case DType::kInt32:
      return 4;
  }
  return 0;
}

constexpr std::string_view DTypeName(DType t) {
  switch (t) {
    case DType::kF32:
      return "F32";
    case DType::kF16:
      return "F16";
    case DType::kQUInt8:
      return "QUInt8";
    case DType::kInt32:
      return "Int32";
  }
  return "?";
}

}  // namespace ulayer
