// Rng: small deterministic pseudo-random generator (xorshift128+).
//
// Used everywhere instead of <random> so weights, inputs and sampled
// calibration sets are reproducible across platforms and standard libraries.
#pragma once

#include <cstdint>

namespace ulayer {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding to decorrelate nearby seeds.
    s_[0] = SplitMix(seed);
    s_[1] = SplitMix(s_[0]);
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  // Uniform float in [lo, hi).
  float Uniform(float lo, float hi) {
    const double u = static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
    return lo + static_cast<float>(u * static_cast<double>(hi - lo));
  }

  // Uniform integer in [0, n).
  uint64_t Below(uint64_t n) { return Next() % n; }

 private:
  static uint64_t SplitMix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  uint64_t s_[2];
};

}  // namespace ulayer
