#include "tensor/shape.h"

namespace ulayer {

std::string Shape::ToString() const {
  return std::to_string(n) + "x" + std::to_string(c) + "x" + std::to_string(h) + "x" +
         std::to_string(w);
}

}  // namespace ulayer
