#include "tensor/tensor.h"

#include <cmath>

#include "tensor/rng.h"

namespace ulayer {

void FillUniform(Tensor& t, uint64_t seed, float lo, float hi) {
  assert(t.dtype() == DType::kF32);
  Rng rng(seed);
  float* p = t.Data<float>();
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    p[i] = rng.Uniform(lo, hi);
  }
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  assert(a.dtype() == DType::kF32 && b.dtype() == DType::kF32);
  assert(a.shape() == b.shape());
  const float* pa = a.Data<float>();
  const float* pb = b.Data<float>();
  float max_diff = 0.0f;
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
  }
  return max_diff;
}

float RmsDiff(const Tensor& a, const Tensor& b) {
  assert(a.dtype() == DType::kF32 && b.dtype() == DType::kF32);
  assert(a.shape() == b.shape());
  const float* pa = a.Data<float>();
  const float* pb = b.Data<float>();
  double sum = 0.0;
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    const double d = pa[i] - pb[i];
    sum += d * d;
  }
  return static_cast<float>(std::sqrt(sum / static_cast<double>(a.NumElements())));
}

}  // namespace ulayer
