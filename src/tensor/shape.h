// Shape: dimensions of a 4-D NCHW tensor.
//
// All tensors in ulayer are logically 4-D (batch N, channels C, height H,
// width W); lower-rank data (e.g. fully-connected activations) use H = W = 1.
#pragma once

#include <cstdint>
#include <string>

namespace ulayer {

// Dimensions of an NCHW tensor. Value type; cheap to copy.
struct Shape {
  int64_t n = 1;
  int64_t c = 1;
  int64_t h = 1;
  int64_t w = 1;

  constexpr Shape() = default;
  constexpr Shape(int64_t n_, int64_t c_, int64_t h_, int64_t w_) : n(n_), c(c_), h(h_), w(w_) {}

  // Total number of elements.
  constexpr int64_t NumElements() const { return n * c * h * w; }

  // Linear offset of element (ni, ci, hi, wi) in row-major NCHW order.
  constexpr int64_t Offset(int64_t ni, int64_t ci, int64_t hi, int64_t wi) const {
    return ((ni * c + ci) * h + hi) * w + wi;
  }

  constexpr bool operator==(const Shape& o) const = default;

  // True when every dimension is positive.
  constexpr bool IsValid() const { return n > 0 && c > 0 && h > 0 && w > 0; }

  // "1x64x56x56"-style debug string.
  std::string ToString() const;
};

}  // namespace ulayer
