// Tensor: an owning, dtype-erased NCHW buffer.
//
// Tensors carry the linear-quantization parameters (scale, zero_point) when
// their dtype is kQUInt8; the parameters describe the affine map
//   real_value = scale * (stored_value - zero_point).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace ulayer {

class Tensor {
 public:
  Tensor() = default;
  Tensor(Shape shape, DType dtype)
      : shape_(shape), dtype_(dtype), data_(shape.NumElements() * DTypeSize(dtype)) {
    assert(shape.IsValid());
  }

  // Non-owning view over caller-managed storage (e.g. a slice of the
  // executor's planned activation pool). `data` must stay valid and hold at
  // least NumElements * DTypeSize(dtype) bytes for the view's lifetime.
  // Copying a view tensor copies the pointer, not the bytes; use Clone() to
  // detach.
  static Tensor View(Shape shape, DType dtype, uint8_t* data) {
    assert(shape.IsValid() && data != nullptr);
    Tensor t;
    t.shape_ = shape;
    t.dtype_ = dtype;
    t.view_ = data;
    return t;
  }

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  int64_t NumElements() const { return shape_.NumElements(); }
  int64_t SizeBytes() const {
    return view_ != nullptr ? NumElements() * DTypeSize(dtype_)
                            : static_cast<int64_t>(data_.size());
  }
  bool empty() const { return view_ == nullptr && data_.empty(); }
  bool is_view() const { return view_ != nullptr; }

  uint8_t* raw() { return view_ != nullptr ? view_ : data_.data(); }
  const uint8_t* raw() const { return view_ != nullptr ? view_ : data_.data(); }

  // Deep copy into an owning tensor (quantization parameters included).
  Tensor Clone() const {
    Tensor t(shape_, dtype_);
    std::memcpy(t.raw(), raw(), static_cast<size_t>(SizeBytes()));
    t.set_quant_params(scale_, zero_point_);
    return t;
  }

  // Typed views. T must have the same size as the element dtype.
  template <typename T>
  T* Data() {
    assert(sizeof(T) == static_cast<size_t>(DTypeSize(dtype_)));
    return reinterpret_cast<T*>(raw());
  }
  template <typename T>
  const T* Data() const {
    assert(sizeof(T) == static_cast<size_t>(DTypeSize(dtype_)));
    return reinterpret_cast<const T*>(raw());
  }

  // Linear-quantization parameters (meaningful only for kQUInt8 tensors).
  float scale() const { return scale_; }
  int32_t zero_point() const { return zero_point_; }
  void set_quant_params(float scale, int32_t zero_point) {
    scale_ = scale;
    zero_point_ = zero_point;
  }

  // Fills the tensor with zero bytes.
  void Zero() { std::memset(raw(), 0, static_cast<size_t>(SizeBytes())); }

 private:
  Shape shape_;
  DType dtype_ = DType::kF32;
  std::vector<uint8_t> data_;
  uint8_t* view_ = nullptr;  // Non-null: non-owning view, data_ unused.
  float scale_ = 1.0f;
  int32_t zero_point_ = 0;
};

// Element-wise helpers used across tests and examples (F32 tensors only).

// Fills `t` with a deterministic pseudo-random sequence in [lo, hi).
void FillUniform(Tensor& t, uint64_t seed, float lo = -1.0f, float hi = 1.0f);

// Maximum absolute difference between two F32 tensors of identical shape.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

// Root-mean-square difference between two F32 tensors of identical shape.
float RmsDiff(const Tensor& a, const Tensor& b);

}  // namespace ulayer
