// Tensor: an owning, dtype-erased NCHW buffer.
//
// Tensors carry the linear-quantization parameters (scale, zero_point) when
// their dtype is kQUInt8; the parameters describe the affine map
//   real_value = scale * (stored_value - zero_point).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace ulayer {

class Tensor {
 public:
  Tensor() = default;
  Tensor(Shape shape, DType dtype)
      : shape_(shape), dtype_(dtype), data_(shape.NumElements() * DTypeSize(dtype)) {
    assert(shape.IsValid());
  }

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  int64_t NumElements() const { return shape_.NumElements(); }
  int64_t SizeBytes() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  uint8_t* raw() { return data_.data(); }
  const uint8_t* raw() const { return data_.data(); }

  // Typed views. T must have the same size as the element dtype.
  template <typename T>
  T* Data() {
    assert(sizeof(T) == static_cast<size_t>(DTypeSize(dtype_)));
    return reinterpret_cast<T*>(data_.data());
  }
  template <typename T>
  const T* Data() const {
    assert(sizeof(T) == static_cast<size_t>(DTypeSize(dtype_)));
    return reinterpret_cast<const T*>(data_.data());
  }

  // Linear-quantization parameters (meaningful only for kQUInt8 tensors).
  float scale() const { return scale_; }
  int32_t zero_point() const { return zero_point_; }
  void set_quant_params(float scale, int32_t zero_point) {
    scale_ = scale;
    zero_point_ = zero_point;
  }

  // Fills the tensor with zero bytes.
  void Zero() { std::memset(data_.data(), 0, data_.size()); }

 private:
  Shape shape_;
  DType dtype_ = DType::kF32;
  std::vector<uint8_t> data_;
  float scale_ = 1.0f;
  int32_t zero_point_ = 0;
};

// Element-wise helpers used across tests and examples (F32 tensors only).

// Fills `t` with a deterministic pseudo-random sequence in [lo, hi).
void FillUniform(Tensor& t, uint64_t seed, float lo = -1.0f, float hi = 1.0f);

// Maximum absolute difference between two F32 tensors of identical shape.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

// Root-mean-square difference between two F32 tensors of identical shape.
float RmsDiff(const Tensor& a, const Tensor& b);

}  // namespace ulayer
