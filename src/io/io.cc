#include "io/io.h"

#include <algorithm>
#include <sstream>

namespace ulayer {
namespace {

constexpr char kHeader[] = "ulayer-graph v1";

// Names may contain '/' but no whitespace; enforce on write so the
// whitespace-delimited parser stays unambiguous.
std::string SafeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ' ' || c == '\t') {
      c = '_';
    }
  }
  return out.empty() ? "_" : out;
}

// Reads the next whitespace token, expects "key=value", returns "value"
// (empty string on mismatch, so the caller's numeric parse fails).
std::string ReadKeyValue(std::istream& is, const std::string& key) {
  std::string tok;
  if (!(is >> tok) || tok.rfind(key + "=", 0) != 0) {
    return "";
  }
  return tok.substr(key.size() + 1);
}

template <typename Fail>
double ParseDouble(const std::string& s, Fail fail) {
  try {
    size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) {
      fail("trailing characters in number '" + s + "'");
    }
    return v;
  } catch (const std::logic_error&) {
    fail("bad number '" + s + "'");
    return 0.0;
  }
}

// Parses a "[begin,end)" channel range.
template <typename Fail>
ChannelRange ParseRange(const std::string& s, Fail fail) {
  ChannelRange r;
  char lb = 0;
  char comma = 0;
  char rb = 0;
  std::istringstream rs(s);
  if (!(rs >> lb >> r.begin >> comma >> r.end >> rb) || lb != '[' || comma != ',' || rb != ')') {
    fail("bad channel range '" + s + "'");
  }
  return r;
}

}  // namespace

std::string GraphToText(const Graph& g) {
  std::ostringstream os;
  os << kHeader << "\n";
  for (const Node& n : g.nodes()) {
    const LayerDesc& d = n.desc;
    switch (d.kind) {
      case LayerKind::kInput:
        os << "input " << SafeName(d.name) << " " << n.out_shape.n << " " << n.out_shape.c << " "
           << n.out_shape.h << " " << n.out_shape.w << "\n";
        break;
      case LayerKind::kConv:
        os << "conv " << SafeName(d.name) << " " << n.inputs[0] << " " << d.out_channels << " "
           << d.conv.kernel_h << " " << d.conv.kernel_w << " " << d.conv.stride_h << " "
           << d.conv.stride_w << " " << d.conv.pad_h << " " << d.conv.pad_w << " "
           << (d.conv.relu ? 1 : 0) << "\n";
        break;
      case LayerKind::kDepthwiseConv:
        os << "dwconv " << SafeName(d.name) << " " << n.inputs[0] << " " << d.conv.kernel_h << " "
           << d.conv.stride_h << " " << d.conv.pad_h << " " << (d.conv.relu ? 1 : 0) << "\n";
        break;
      case LayerKind::kFullyConnected:
        os << "fc " << SafeName(d.name) << " " << n.inputs[0] << " " << d.out_channels << " "
           << (d.conv.relu ? 1 : 0) << "\n";
        break;
      case LayerKind::kPool:
        os << "pool " << SafeName(d.name) << " " << n.inputs[0] << " "
           << (d.pool.kind == PoolKind::kMax ? "max" : "avg") << " " << d.pool.kernel_h << " "
           << d.pool.stride_h << " " << d.pool.pad_h << " " << (d.pool.ceil_mode ? 1 : 0) << "\n";
        break;
      case LayerKind::kGlobalAvgPool:
        os << "gavgpool " << SafeName(d.name) << " " << n.inputs[0] << "\n";
        break;
      case LayerKind::kRelu:
        os << "relu " << SafeName(d.name) << " " << n.inputs[0] << "\n";
        break;
      case LayerKind::kLrn:
        os << "lrn " << SafeName(d.name) << " " << n.inputs[0] << " " << d.lrn.local_size << " "
           << d.lrn.alpha << " " << d.lrn.beta << " " << d.lrn.k << "\n";
        break;
      case LayerKind::kConcat: {
        os << "concat " << SafeName(d.name) << " " << n.inputs.size();
        for (int in : n.inputs) {
          os << " " << in;
        }
        os << "\n";
        break;
      }
      case LayerKind::kEltwiseAdd: {
        os << "add " << SafeName(d.name) << " " << (d.conv.relu ? 1 : 0) << " "
           << n.inputs.size();
        for (int in : n.inputs) {
          os << " " << in;
        }
        os << "\n";
        break;
      }
      case LayerKind::kSoftmax:
        os << "softmax " << SafeName(d.name) << " " << n.inputs[0] << "\n";
        break;
    }
  }
  return os.str();
}

Graph GraphFromText(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw ParseError("missing 'ulayer-graph v1' header");
  }
  Graph g;
  int line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string op, name;
    ls >> op >> name;
    auto fail = [&](const std::string& why) {
      throw ParseError("line " + std::to_string(line_no) + ": " + why + ": " + line);
    };
    auto check_input = [&](int id) {
      if (id < 0 || id >= g.size()) {
        fail("input node id out of range");
      }
      return id;
    };
    if (op == "input") {
      Shape s;
      if (!(ls >> s.n >> s.c >> s.h >> s.w) || !s.IsValid()) {
        fail("bad input shape");
      }
      g.AddInput(s, name);
    } else if (op == "conv") {
      int in = 0, relu = 0;
      int64_t oc = 0;
      Conv2DParams p;
      if (!(ls >> in >> oc >> p.kernel_h >> p.kernel_w >> p.stride_h >> p.stride_w >> p.pad_h >>
            p.pad_w >> relu) ||
          oc <= 0) {
        fail("bad conv");
      }
      p.relu = relu != 0;
      g.AddConv2D(name, check_input(in), oc, p);
    } else if (op == "dwconv") {
      int in = 0, k = 0, s = 0, pad = 0, relu = 0;
      if (!(ls >> in >> k >> s >> pad >> relu)) {
        fail("bad dwconv");
      }
      g.AddDepthwiseConv(name, check_input(in), k, s, pad, relu != 0);
    } else if (op == "fc") {
      int in = 0, relu = 0;
      int64_t out = 0;
      if (!(ls >> in >> out >> relu) || out <= 0) {
        fail("bad fc");
      }
      g.AddFullyConnected(name, check_input(in), out, relu != 0);
    } else if (op == "pool") {
      int in = 0, k = 0, s = 0, pad = 0, ceil_mode = 0;
      std::string kind;
      if (!(ls >> in >> kind >> k >> s >> pad >> ceil_mode) || (kind != "max" && kind != "avg")) {
        fail("bad pool");
      }
      g.AddPool(name, check_input(in), kind == "max" ? PoolKind::kMax : PoolKind::kAvg, k, s, pad,
                ceil_mode != 0);
    } else if (op == "gavgpool") {
      int in = 0;
      if (!(ls >> in)) {
        fail("bad gavgpool");
      }
      g.AddGlobalAvgPool(name, check_input(in));
    } else if (op == "relu") {
      int in = 0;
      if (!(ls >> in)) {
        fail("bad relu");
      }
      g.AddRelu(name, check_input(in));
    } else if (op == "lrn") {
      int in = 0;
      LrnParams p;
      if (!(ls >> in >> p.local_size >> p.alpha >> p.beta >> p.k)) {
        fail("bad lrn");
      }
      g.AddLrn(name, check_input(in), p);
    } else if (op == "concat") {
      int count = 0;
      if (!(ls >> count) || count < 1) {
        fail("bad concat");
      }
      std::vector<int> inputs(static_cast<size_t>(count));
      for (int& id : inputs) {
        if (!(ls >> id)) {
          fail("bad concat inputs");
        }
        check_input(id);
      }
      g.AddConcat(name, inputs);
    } else if (op == "add") {
      int relu = 0, count = 0;
      if (!(ls >> relu >> count) || count < 2) {
        fail("bad add");
      }
      std::vector<int> inputs(static_cast<size_t>(count));
      for (int& id : inputs) {
        if (!(ls >> id)) {
          fail("bad add inputs");
        }
        check_input(id);
      }
      g.AddEltwiseAdd(name, inputs, relu != 0);
    } else if (op == "softmax") {
      int in = 0;
      if (!(ls >> in)) {
        fail("bad softmax");
      }
      g.AddSoftmax(name, check_input(in));
    } else {
      fail("unknown op '" + op + "'");
    }
  }
  if (g.size() == 0) {
    throw ParseError("empty graph");
  }
  return g;
}

std::string PlanToText(const Plan& plan, const Graph& g) {
  std::ostringstream os;
  os << "ulayer-plan v1 for " << g.size() << " nodes\n";
  if (plan.batch > 0) {
    os << "batch " << plan.batch << "\n";
  }
  for (const Node& n : g.nodes()) {
    if (n.desc.kind == LayerKind::kInput) {
      continue;
    }
    const NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    os << "  " << n.id << " " << SafeName(n.desc.name) << " [" << LayerKindName(n.desc.kind)
       << "] ";
    switch (a.kind) {
      case StepKind::kSingle:
        os << "single " << ProcKindName(a.proc);
        break;
      case StepKind::kCooperative:
        os << "coop p=" << a.cpu_fraction;
        if (a.gpu_fraction >= 0.0) {
          os << " q=" << a.gpu_fraction;
        }
        if (a.has_explicit_slices()) {
          os << " cpu=[" << a.cpu_slice.begin << "," << a.cpu_slice.end << ") gpu=["
             << a.gpu_slice.begin << "," << a.gpu_slice.end << ")";
        }
        break;
      case StepKind::kBranch:
        os << "branch " << ProcKindName(a.proc);
        break;
    }
    os << "\n";
  }
  for (size_t i = 0; i < plan.branch_plans.size(); ++i) {
    const BranchPlan& bp = plan.branch_plans[i];
    os << "branch-group " << i << ": fork=" << bp.group.fork << " join=" << bp.group.join;
    for (size_t b = 0; b < bp.assignment.size(); ++b) {
      os << " b" << b << "->" << ProcKindName(bp.assignment[b]);
    }
    os << "\n";
  }
  return os.str();
}

Plan PlanFromText(const std::string& text, const Graph& g) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line.rfind("ulayer-plan", 0) != 0) {
    throw ParseError("missing 'ulayer-plan' header");
  }
  Plan plan;
  plan.nodes.resize(static_cast<size_t>(g.size()));
  const std::vector<BranchGroup> groups = FindBranchGroups(g);

  int line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first) || first.empty() || first[0] == '#') {
      continue;
    }
    auto fail = [&](const std::string& why) {
      throw ParseError("line " + std::to_string(line_no) + ": " + why + ": " + line);
    };
    auto parse_proc = [&](const std::string& tok) {
      if (tok == "CPU") {
        return ProcKind::kCpu;
      }
      if (tok == "GPU") {
        return ProcKind::kGpu;
      }
      fail("bad processor '" + tok + "'");
      return ProcKind::kCpu;
    };

    if (first == "batch") {
      if (!(ls >> plan.batch) || plan.batch <= 0) {
        fail("bad batch size");
      }
      continue;
    }
    if (first == "branch-group") {
      std::string idx_tok;
      int fork = -1;
      int join = -1;
      if (!(ls >> idx_tok) ||
          !(std::istringstream(ReadKeyValue(ls, "fork")) >> fork) ||
          !(std::istringstream(ReadKeyValue(ls, "join")) >> join)) {
        fail("bad branch-group header");
      }
      BranchPlan bp;
      for (const BranchGroup& grp : groups) {
        if (grp.fork == fork && grp.join == join) {
          bp.group = grp;
          break;
        }
      }
      if (bp.group.fork < 0) {
        fail("no branch group with fork=" + std::to_string(fork) +
             " join=" + std::to_string(join) + " exists in the graph");
      }
      std::string tok;
      while (ls >> tok) {
        const size_t arrow = tok.find("->");
        if (arrow == std::string::npos) {
          fail("bad branch assignment '" + tok + "'");
        }
        bp.assignment.push_back(parse_proc(tok.substr(arrow + 2)));
      }
      plan.branch_plans.push_back(std::move(bp));
      continue;
    }

    // Node line: <id> <name> [<kind>] <step...>
    int id = -1;
    if (!(std::istringstream(first) >> id) || id < 0 || id >= g.size()) {
      fail("bad node id '" + first + "'");
    }
    std::string name;
    std::string kind;
    std::string step;
    if (!(ls >> name >> kind >> step)) {
      fail("truncated node line");
    }
    const std::string expect = "[" + std::string(LayerKindName(g.node(id).desc.kind)) + "]";
    if (kind != expect) {
      fail("layer kind " + kind + " does not match the graph's " + expect);
    }
    NodeAssignment& a = plan.nodes[static_cast<size_t>(id)];
    if (step == "single" || step == "branch") {
      std::string proc;
      if (!(ls >> proc)) {
        fail("missing processor");
      }
      a = NodeAssignment{step == "single" ? StepKind::kSingle : StepKind::kBranch,
                         parse_proc(proc), 1.0};
    } else if (step == "coop") {
      a.kind = StepKind::kCooperative;
      std::string tok;
      bool saw_p = false;
      while (ls >> tok) {
        if (tok.rfind("p=", 0) == 0) {
          a.cpu_fraction = ParseDouble(tok.substr(2), fail);
          saw_p = true;
        } else if (tok.rfind("q=", 0) == 0) {
          a.gpu_fraction = ParseDouble(tok.substr(2), fail);
        } else if (tok.rfind("cpu=", 0) == 0) {
          a.cpu_slice = ParseRange(tok.substr(4), fail);
        } else if (tok.rfind("gpu=", 0) == 0) {
          a.gpu_slice = ParseRange(tok.substr(4), fail);
        } else {
          fail("unknown coop token '" + tok + "'");
        }
      }
      if (!saw_p) {
        fail("coop step without p=");
      }
    } else {
      fail("unknown step kind '" + step + "'");
    }
  }
  return plan;
}

std::string TraceToText(const RunResult& result, const Graph& g, int columns) {
  std::ostringstream os;
  const double total = result.latency_us;
  os << "timeline (" << total * 1e-3 << " ms total, '#' = busy)\n";
  if (total <= 0.0 || columns < 8) {
    return os.str();
  }
  const double per_col = total / columns;
  for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
    std::string row(static_cast<size_t>(columns), '.');
    double busy = 0.0;
    for (const KernelTrace& kt : result.trace) {
      if (kt.proc != proc) {
        continue;
      }
      busy += kt.end_us - kt.start_us;
      const int c0 = std::max(0, static_cast<int>(kt.start_us / per_col));
      const int c1 = std::min(columns - 1, static_cast<int>(kt.end_us / per_col));
      for (int c = c0; c <= c1; ++c) {
        row[static_cast<size_t>(c)] = '#';
      }
    }
    os << (proc == ProcKind::kCpu ? "CPU |" : "GPU |") << row << "| "
       << static_cast<int>(busy / total * 100.0) << "% busy\n";
  }
  // Annotate the densest kernels for orientation.
  std::vector<const KernelTrace*> big;
  for (const KernelTrace& kt : result.trace) {
    big.push_back(&kt);
  }
  std::sort(big.begin(), big.end(), [](const KernelTrace* a, const KernelTrace* b) {
    return a->end_us - a->start_us > b->end_us - b->start_us;
  });
  const size_t show = std::min<size_t>(3, big.size());
  for (size_t i = 0; i < show; ++i) {
    const KernelTrace& kt = *big[i];
    os << "  top-" << i + 1 << ": " << g.node(kt.node).desc.name << " on "
       << ProcKindName(kt.proc) << " [" << kt.start_us * 1e-3 << ", " << kt.end_us * 1e-3
       << "] ms\n";
  }
  return os.str();
}

}  // namespace ulayer
