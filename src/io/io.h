// Text serialization for graphs and execution plans.
//
// Graphs round-trip through a line-based format ("ulayer-graph v1") so
// models can be stored next to deployments and plans can be inspected or
// diffed. Weights are deliberately not serialized — they are deterministic
// from Model::MaterializeWeights(seed) in this reproduction; a real
// deployment would ship a standard weights container alongside.
#pragma once

#include <string>

#include "common/error.h"
#include "core/executor.h"
#include "core/plan.h"
#include "nn/graph.h"

namespace ulayer {

// Thrown by the parser on malformed input.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(ErrorCode::kParse, what) {}
};

// Serializes the graph structure. Node ids equal line order, so the format
// is also a readable architecture listing.
std::string GraphToText(const Graph& g);

// Parses a graph produced by GraphToText (or written by hand).
Graph GraphFromText(const std::string& text);

// Plan listing ("ulayer-plan v1"): one line per node with its step kind,
// processor / split ratio (explicit GPU ratios and channel slices included
// when present), plus the branch-group table. Round-trips through
// PlanFromText, so plans can be stored, diffed and fed to tools/ulayer_verify.
std::string PlanToText(const Plan& plan, const Graph& g);

// Parses a plan produced by PlanToText (or written by hand) against the
// graph it plans. Branch-group node membership is re-derived from
// FindBranchGroups(g) by matching fork/join ids. Unlisted nodes default to
// single-processor CPU steps. Throws ParseError on malformed input; the
// result is *not* verified — run it through PlanVerifier.
Plan PlanFromText(const std::string& text, const Graph& g);

// ASCII Gantt chart of a run's kernel trace: one row per device, time
// bucketed into `columns` cells, '#' where the device is busy. Shows the
// CPU/GPU overlap that cooperative execution and branch distribution create.
std::string TraceToText(const RunResult& result, const Graph& g, int columns = 72);

}  // namespace ulayer
