// Model: a Graph plus (optionally materialized) F32 weights.
//
// Latency/energy experiments run in simulate-only mode and never materialize
// weights; functional experiments (numerics tests, the quantization-accuracy
// proxy) call MaterializeWeights() first. Weights are deterministic given
// the seed, He-style scaled so activations neither vanish nor explode —
// which keeps the quantization-accuracy experiment meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/graph.h"
#include "tensor/tensor.h"

namespace ulayer {

struct LayerWeights {
  Tensor filters;  // Conv/FC: [OC, IC, KH, KW]; depthwise: [C, 1, KH, KW].
  Tensor bias;     // [OC] (F32).
};

struct Model {
  std::string name;
  Graph graph;

  // node id -> weights, present only after MaterializeWeights().
  std::unordered_map<int, LayerWeights> weights;

  bool has_weights() const { return !weights.empty(); }

  // Fills `weights` for every parameterized layer with deterministic
  // pseudo-random values (He-uniform filters, small biases).
  void MaterializeWeights(uint64_t seed = 0x5eed);

  // Total parameter count of the network (weights need not be materialized).
  int64_t ParameterCount() const;
};

// Filter tensor shape of a parameterized node, derived from the graph alone
// (no materialized weights needed): depthwise -> [C, 1, KH, KW], conv/FC ->
// [OC, IC, KH, KW]. Shared by weight materialization, scratch sizing and the
// static memory-access analyzer.
Shape FilterShape(const Graph& g, const Node& n);

// --- Model zoo (paper Table 1) ---------------------------------------------
//
// `image_hw` scales the input resolution (default: the resolution the
// original network was designed for). Smaller values keep functional runs
// cheap; graph structure is unchanged.

Model MakeLeNet5(int batch = 1);                       // Figure 1a example.
Model MakeAlexNet(int batch = 1, int image_hw = 227);  // Single-group variant.
Model MakeVgg16(int batch = 1, int image_hw = 224);
Model MakeGoogLeNet(int batch = 1, int image_hw = 224);
Model MakeSqueezeNetV11(int batch = 1, int image_hw = 224);
Model MakeMobileNetV1(int batch = 1, int image_hw = 224);

// Residual networks (He et al.): used by the paper's accuracy study
// (Figure 10). BatchNorm is folded into the convolutions (standard
// inference-time folding), so blocks are conv(+ReLU) chains joined by
// element-wise adds with identity or 1x1-projection shortcuts.
Model MakeResNet18(int batch = 1, int image_hw = 224);
Model MakeResNet50(int batch = 1, int image_hw = 224);

// Inception-v3 (Szegedy et al., CVPR'16): also in the paper's Figure 10
// model set. Uses asymmetric 1x7/7x1 and 1x3/3x1 factorized convolutions
// (the only rectangular-kernel network in the zoo) and nested branch
// structures that deliberately defeat simple branch-group detection.
Model MakeInceptionV3(int batch = 1, int image_hw = 299);

// The five networks of the paper's evaluation (Table 1), full resolution.
std::vector<Model> MakeEvaluationModels();

}  // namespace ulayer
