#include "models/model.h"

#include <cassert>
#include <cmath>

#include "tensor/rng.h"

namespace ulayer {
namespace {

bool IsParameterized(LayerKind k) {
  return k == LayerKind::kConv || k == LayerKind::kDepthwiseConv ||
         k == LayerKind::kFullyConnected;
}

}  // namespace

Shape FilterShape(const Graph& g, const Node& n) {
  const Shape& in = g.node(n.inputs[0]).out_shape;
  if (n.desc.kind == LayerKind::kDepthwiseConv) {
    return Shape(in.c, 1, n.desc.conv.kernel_h, n.desc.conv.kernel_w);
  }
  return Shape(n.desc.out_channels, in.c, n.desc.conv.kernel_h, n.desc.conv.kernel_w);
}

void Model::MaterializeWeights(uint64_t seed) {
  weights.clear();
  for (const Node& n : graph.nodes()) {
    if (!IsParameterized(n.desc.kind)) {
      continue;
    }
    const Shape fs = FilterShape(graph, n);
    LayerWeights lw;
    lw.filters = Tensor(fs, DType::kF32);
    // He-uniform: limit = sqrt(6 / fan_in) keeps post-ReLU activation
    // variance roughly constant through the network.
    const double fan_in = static_cast<double>(fs.c * fs.h * fs.w);
    const float limit = static_cast<float>(std::sqrt(6.0 / fan_in));
    FillUniform(lw.filters, seed ^ (static_cast<uint64_t>(n.id) * 0x9e37u), -limit, limit);

    const int64_t oc = n.desc.kind == LayerKind::kDepthwiseConv ? fs.n : n.desc.out_channels;
    lw.bias = Tensor(Shape(1, oc, 1, 1), DType::kF32);
    FillUniform(lw.bias, seed ^ (static_cast<uint64_t>(n.id) * 0x85ebu) ^ 0xb1a5, -0.05f, 0.05f);
    weights.emplace(n.id, std::move(lw));
  }
}

int64_t Model::ParameterCount() const {
  int64_t total = 0;
  for (const Node& n : graph.nodes()) {
    if (!IsParameterized(n.desc.kind)) {
      continue;
    }
    const Shape fs = FilterShape(graph, n);
    const int64_t oc = n.desc.kind == LayerKind::kDepthwiseConv ? fs.n : n.desc.out_channels;
    total += fs.NumElements() + oc;
  }
  return total;
}

Model MakeLeNet5(int batch) {
  Model m;
  m.name = "LeNet-5";
  Graph& g = m.graph;
  const int in = g.AddInput(Shape(batch, 1, 28, 28));
  const int c1 = g.AddConv("conv1", in, 6, /*kernel=*/5, /*stride=*/1, /*pad=*/2, /*relu=*/true);
  const int p1 = g.AddPool("pool1", c1, PoolKind::kMax, 2, 2);
  const int c2 = g.AddConv("conv2", p1, 16, 5, 1, 0, true);
  const int p2 = g.AddPool("pool2", c2, PoolKind::kMax, 2, 2);
  const int f3 = g.AddFullyConnected("fc3", p2, 120, true);
  const int f4 = g.AddFullyConnected("fc4", f3, 84, true);
  const int f5 = g.AddFullyConnected("fc5", f4, 10, false);
  g.AddSoftmax("prob", f5);
  return m;
}

Model MakeAlexNet(int batch, int image_hw) {
  Model m;
  m.name = "AlexNet";
  Graph& g = m.graph;
  LrnParams lrn;
  lrn.local_size = 5;
  lrn.alpha = 1e-4f;
  lrn.beta = 0.75f;
  lrn.k = 2.0f;
  const int in = g.AddInput(Shape(batch, 3, image_hw, image_hw));
  // One-tower (single-group) AlexNet; the original's 2-GPU grouping was a
  // memory workaround, not an architectural feature.
  int x = g.AddConv("conv1", in, 96, 11, 4, 0, true);
  x = g.AddLrn("norm1", x, lrn);
  x = g.AddPool("pool1", x, PoolKind::kMax, 3, 2);
  x = g.AddConv("conv2", x, 256, 5, 1, 2, true);
  x = g.AddLrn("norm2", x, lrn);
  x = g.AddPool("pool2", x, PoolKind::kMax, 3, 2);
  x = g.AddConv("conv3", x, 384, 3, 1, 1, true);
  x = g.AddConv("conv4", x, 384, 3, 1, 1, true);
  x = g.AddConv("conv5", x, 256, 3, 1, 1, true);
  x = g.AddPool("pool5", x, PoolKind::kMax, 3, 2);
  x = g.AddFullyConnected("fc6", x, 4096, true);
  x = g.AddFullyConnected("fc7", x, 4096, true);
  x = g.AddFullyConnected("fc8", x, 1000, false);
  g.AddSoftmax("prob", x);
  return m;
}

Model MakeVgg16(int batch, int image_hw) {
  Model m;
  m.name = "VGG-16";
  Graph& g = m.graph;
  const int in = g.AddInput(Shape(batch, 3, image_hw, image_hw));
  int x = in;
  const struct {
    int convs;
    int64_t channels;
  } blocks[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};
  int bi = 1;
  for (const auto& b : blocks) {
    for (int i = 1; i <= b.convs; ++i) {
      x = g.AddConv("conv" + std::to_string(bi) + "_" + std::to_string(i), x, b.channels, 3, 1, 1,
                    true);
    }
    x = g.AddPool("pool" + std::to_string(bi), x, PoolKind::kMax, 2, 2);
    ++bi;
  }
  x = g.AddFullyConnected("fc6", x, 4096, true);
  x = g.AddFullyConnected("fc7", x, 4096, true);
  x = g.AddFullyConnected("fc8", x, 1000, false);
  g.AddSoftmax("prob", x);
  return m;
}

namespace {

// One GoogLeNet Inception module (Figure 11a): four branches concatenated
// along channels.
int AddInception(Graph& g, const std::string& name, int input, int64_t c1x1, int64_t c3x3_reduce,
                 int64_t c3x3, int64_t c5x5_reduce, int64_t c5x5, int64_t pool_proj) {
  const int b0 = g.AddConv(name + "/1x1", input, c1x1, 1, 1, 0, true);
  const int b1r = g.AddConv(name + "/3x3_reduce", input, c3x3_reduce, 1, 1, 0, true);
  const int b1 = g.AddConv(name + "/3x3", b1r, c3x3, 3, 1, 1, true);
  const int b2r = g.AddConv(name + "/5x5_reduce", input, c5x5_reduce, 1, 1, 0, true);
  const int b2 = g.AddConv(name + "/5x5", b2r, c5x5, 5, 1, 2, true);
  const int b3p = g.AddPool(name + "/pool", input, PoolKind::kMax, 3, 1, 1);
  const int b3 = g.AddConv(name + "/pool_proj", b3p, pool_proj, 1, 1, 0, true);
  return g.AddConcat(name + "/output", {b0, b1, b2, b3});
}

// One SqueezeNet Fire module (Figure 11b).
int AddFire(Graph& g, const std::string& name, int input, int64_t squeeze, int64_t expand) {
  const int s = g.AddConv(name + "/squeeze1x1", input, squeeze, 1, 1, 0, true);
  const int e1 = g.AddConv(name + "/expand1x1", s, expand, 1, 1, 0, true);
  const int e3 = g.AddConv(name + "/expand3x3", s, expand, 3, 1, 1, true);
  return g.AddConcat(name + "/concat", {e1, e3});
}

}  // namespace

Model MakeGoogLeNet(int batch, int image_hw) {
  Model m;
  m.name = "GoogLeNet";
  Graph& g = m.graph;
  LrnParams lrn;
  lrn.local_size = 5;
  lrn.alpha = 1e-4f;
  lrn.beta = 0.75f;
  lrn.k = 1.0f;
  const int in = g.AddInput(Shape(batch, 3, image_hw, image_hw));
  int x = g.AddConv("conv1/7x7_s2", in, 64, 7, 2, 3, true);
  x = g.AddPool("pool1/3x3_s2", x, PoolKind::kMax, 3, 2, 0, /*ceil_mode=*/true);
  x = g.AddLrn("pool1/norm1", x, lrn);
  x = g.AddConv("conv2/3x3_reduce", x, 64, 1, 1, 0, true);
  x = g.AddConv("conv2/3x3", x, 192, 3, 1, 1, true);
  x = g.AddLrn("conv2/norm2", x, lrn);
  x = g.AddPool("pool2/3x3_s2", x, PoolKind::kMax, 3, 2, 0, true);
  x = AddInception(g, "inception_3a", x, 64, 96, 128, 16, 32, 32);
  x = AddInception(g, "inception_3b", x, 128, 128, 192, 32, 96, 64);
  x = g.AddPool("pool3/3x3_s2", x, PoolKind::kMax, 3, 2, 0, true);
  x = AddInception(g, "inception_4a", x, 192, 96, 208, 16, 48, 64);
  x = AddInception(g, "inception_4b", x, 160, 112, 224, 24, 64, 64);
  x = AddInception(g, "inception_4c", x, 128, 128, 256, 24, 64, 64);
  x = AddInception(g, "inception_4d", x, 112, 144, 288, 32, 64, 64);
  x = AddInception(g, "inception_4e", x, 256, 160, 320, 32, 128, 128);
  x = g.AddPool("pool4/3x3_s2", x, PoolKind::kMax, 3, 2, 0, true);
  x = AddInception(g, "inception_5a", x, 256, 160, 320, 32, 128, 128);
  x = AddInception(g, "inception_5b", x, 384, 192, 384, 48, 128, 128);
  x = g.AddGlobalAvgPool("pool5/7x7_s1", x);
  x = g.AddFullyConnected("loss3/classifier", x, 1000, false);
  g.AddSoftmax("prob", x);
  return m;
}

Model MakeSqueezeNetV11(int batch, int image_hw) {
  Model m;
  m.name = "SqueezeNet-v1.1";
  Graph& g = m.graph;
  const int in = g.AddInput(Shape(batch, 3, image_hw, image_hw));
  int x = g.AddConv("conv1", in, 64, 3, 2, 0, true);
  x = g.AddPool("pool1", x, PoolKind::kMax, 3, 2, 0, true);
  x = AddFire(g, "fire2", x, 16, 64);
  x = AddFire(g, "fire3", x, 16, 64);
  x = g.AddPool("pool3", x, PoolKind::kMax, 3, 2, 0, true);
  x = AddFire(g, "fire4", x, 32, 128);
  x = AddFire(g, "fire5", x, 32, 128);
  x = g.AddPool("pool5", x, PoolKind::kMax, 3, 2, 0, true);
  x = AddFire(g, "fire6", x, 48, 192);
  x = AddFire(g, "fire7", x, 48, 192);
  x = AddFire(g, "fire8", x, 64, 256);
  x = AddFire(g, "fire9", x, 64, 256);
  x = g.AddConv("conv10", x, 1000, 1, 1, 0, true);
  x = g.AddGlobalAvgPool("pool10", x);
  g.AddSoftmax("prob", x);
  return m;
}

Model MakeMobileNetV1(int batch, int image_hw) {
  Model m;
  m.name = "MobileNet-v1";
  Graph& g = m.graph;
  const int in = g.AddInput(Shape(batch, 3, image_hw, image_hw));
  int x = g.AddConv("conv0", in, 32, 3, 2, 1, true);
  const struct {
    int64_t out_channels;
    int stride;
  } blocks[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},  {512, 2}, {512, 1},
                {512, 1}, {512, 1}, {512, 1}, {512, 1},  {1024, 2}, {1024, 1}};
  int i = 1;
  for (const auto& b : blocks) {
    x = g.AddDepthwiseConv("conv" + std::to_string(i) + "/dw", x, 3, b.stride, 1, true);
    x = g.AddConv("conv" + std::to_string(i) + "/pw", x, b.out_channels, 1, 1, 0, true);
    ++i;
  }
  x = g.AddGlobalAvgPool("pool", x);
  x = g.AddFullyConnected("fc", x, 1000, false);
  g.AddSoftmax("prob", x);
  return m;
}

namespace {

// ResNet basic block (two 3x3 convs) with identity or projection shortcut.
int AddBasicBlock(Graph& g, const std::string& name, int input, int64_t channels, int stride) {
  const int c1 = g.AddConv(name + "/conv1", input, channels, 3, stride, 1, true);
  const int c2 = g.AddConv(name + "/conv2", c1, channels, 3, 1, 1, false);
  int shortcut = input;
  if (stride != 1 || g.node(input).out_shape.c != channels) {
    shortcut = g.AddConv(name + "/proj", input, channels, 1, stride, 0, false);
  }
  return g.AddEltwiseAdd(name + "/add", {c2, shortcut}, /*relu=*/true);
}

// ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand).
int AddBottleneck(Graph& g, const std::string& name, int input, int64_t mid, int64_t out,
                  int stride) {
  const int c1 = g.AddConv(name + "/conv1", input, mid, 1, 1, 0, true);
  const int c2 = g.AddConv(name + "/conv2", c1, mid, 3, stride, 1, true);
  const int c3 = g.AddConv(name + "/conv3", c2, out, 1, 1, 0, false);
  int shortcut = input;
  if (stride != 1 || g.node(input).out_shape.c != out) {
    shortcut = g.AddConv(name + "/proj", input, out, 1, stride, 0, false);
  }
  return g.AddEltwiseAdd(name + "/add", {c3, shortcut}, /*relu=*/true);
}

int AddResNetStem(Graph& g, int in) {
  const int c = g.AddConv("conv1", in, 64, 7, 2, 3, true);
  return g.AddPool("pool1", c, PoolKind::kMax, 3, 2, 1);
}

}  // namespace

Model MakeResNet18(int batch, int image_hw) {
  Model m;
  m.name = "ResNet-18";
  Graph& g = m.graph;
  const int in = g.AddInput(Shape(batch, 3, image_hw, image_hw));
  int x = AddResNetStem(g, in);
  const struct {
    int64_t channels;
    int blocks;
    int stride;
  } stages[] = {{64, 2, 1}, {128, 2, 2}, {256, 2, 2}, {512, 2, 2}};
  int si = 1;
  for (const auto& st : stages) {
    for (int b = 0; b < st.blocks; ++b) {
      x = AddBasicBlock(g, "layer" + std::to_string(si) + "_" + std::to_string(b), x, st.channels,
                        b == 0 ? st.stride : 1);
    }
    ++si;
  }
  x = g.AddGlobalAvgPool("pool5", x);
  x = g.AddFullyConnected("fc", x, 1000, false);
  g.AddSoftmax("prob", x);
  return m;
}

Model MakeResNet50(int batch, int image_hw) {
  Model m;
  m.name = "ResNet-50";
  Graph& g = m.graph;
  const int in = g.AddInput(Shape(batch, 3, image_hw, image_hw));
  int x = AddResNetStem(g, in);
  const struct {
    int64_t mid;
    int64_t out;
    int blocks;
    int stride;
  } stages[] = {{64, 256, 3, 1}, {128, 512, 4, 2}, {256, 1024, 6, 2}, {512, 2048, 3, 2}};
  int si = 1;
  for (const auto& st : stages) {
    for (int b = 0; b < st.blocks; ++b) {
      x = AddBottleneck(g, "layer" + std::to_string(si) + "_" + std::to_string(b), x, st.mid,
                        st.out, b == 0 ? st.stride : 1);
    }
    ++si;
  }
  x = g.AddGlobalAvgPool("pool5", x);
  x = g.AddFullyConnected("fc", x, 1000, false);
  g.AddSoftmax("prob", x);
  return m;
}

namespace {

// Rectangular conv helper: kernel (kh x kw), stride 1, "same" padding.
int AddRectConv(Graph& g, const std::string& name, int input, int64_t oc, int kh, int kw) {
  Conv2DParams p;
  p.kernel_h = kh;
  p.kernel_w = kw;
  p.pad_h = kh / 2;
  p.pad_w = kw / 2;
  p.relu = true;
  return g.AddConv2D(name, input, oc, p);
}

// Inception-A (35x35 grid): 1x1 / 5x5 / double-3x3 / pool-proj branches.
int AddInceptionA(Graph& g, const std::string& name, int input, int64_t pool_proj) {
  const int b0 = g.AddConv(name + "/1x1", input, 64, 1, 1, 0, true);
  const int b1r = g.AddConv(name + "/5x5_reduce", input, 48, 1, 1, 0, true);
  const int b1 = g.AddConv(name + "/5x5", b1r, 64, 5, 1, 2, true);
  const int b2r = g.AddConv(name + "/d3x3_reduce", input, 64, 1, 1, 0, true);
  const int b2a = g.AddConv(name + "/d3x3_1", b2r, 96, 3, 1, 1, true);
  const int b2 = g.AddConv(name + "/d3x3_2", b2a, 96, 3, 1, 1, true);
  const int b3p = g.AddPool(name + "/pool", input, PoolKind::kAvg, 3, 1, 1);
  const int b3 = g.AddConv(name + "/pool_proj", b3p, pool_proj, 1, 1, 0, true);
  return g.AddConcat(name + "/out", {b0, b1, b2, b3});
}

// Inception-B (17x17 grid) with factorized 7x7 convolutions.
int AddInceptionB(Graph& g, const std::string& name, int input, int64_t c7) {
  const int b0 = g.AddConv(name + "/1x1", input, 192, 1, 1, 0, true);
  int b1 = g.AddConv(name + "/7x7_reduce", input, c7, 1, 1, 0, true);
  b1 = AddRectConv(g, name + "/1x7", b1, c7, 1, 7);
  b1 = AddRectConv(g, name + "/7x1", b1, 192, 7, 1);
  int b2 = g.AddConv(name + "/7x7dbl_reduce", input, c7, 1, 1, 0, true);
  b2 = AddRectConv(g, name + "/7x1_a", b2, c7, 7, 1);
  b2 = AddRectConv(g, name + "/1x7_a", b2, c7, 1, 7);
  b2 = AddRectConv(g, name + "/7x1_b", b2, c7, 7, 1);
  b2 = AddRectConv(g, name + "/1x7_b", b2, 192, 1, 7);
  const int b3p = g.AddPool(name + "/pool", input, PoolKind::kAvg, 3, 1, 1);
  const int b3 = g.AddConv(name + "/pool_proj", b3p, 192, 1, 1, 0, true);
  return g.AddConcat(name + "/out", {b0, b1, b2, b3});
}

// Inception-C (8x8 grid): expanded 1x3/3x1 fan-outs (nested branching).
int AddInceptionC(Graph& g, const std::string& name, int input) {
  const int b0 = g.AddConv(name + "/1x1", input, 320, 1, 1, 0, true);
  const int b1r = g.AddConv(name + "/3x3_reduce", input, 384, 1, 1, 0, true);
  const int b1a = AddRectConv(g, name + "/1x3", b1r, 384, 1, 3);
  const int b1b = AddRectConv(g, name + "/3x1", b1r, 384, 3, 1);
  const int b2r = g.AddConv(name + "/d3x3_reduce", input, 448, 1, 1, 0, true);
  const int b2m = g.AddConv(name + "/d3x3", b2r, 384, 3, 1, 1, true);
  const int b2a = AddRectConv(g, name + "/d1x3", b2m, 384, 1, 3);
  const int b2b = AddRectConv(g, name + "/d3x1", b2m, 384, 3, 1);
  const int b3p = g.AddPool(name + "/pool", input, PoolKind::kAvg, 3, 1, 1);
  const int b3 = g.AddConv(name + "/pool_proj", b3p, 192, 1, 1, 0, true);
  return g.AddConcat(name + "/out", {b0, b1a, b1b, b2a, b2b, b3});
}

}  // namespace

Model MakeInceptionV3(int batch, int image_hw) {
  Model m;
  m.name = "Inception-v3";
  Graph& g = m.graph;
  const int in = g.AddInput(Shape(batch, 3, image_hw, image_hw));
  int x = g.AddConv("conv1", in, 32, 3, 2, 0, true);
  x = g.AddConv("conv2", x, 32, 3, 1, 0, true);
  x = g.AddConv("conv3", x, 64, 3, 1, 1, true);
  x = g.AddPool("pool1", x, PoolKind::kMax, 3, 2);
  x = g.AddConv("conv4", x, 80, 1, 1, 0, true);
  x = g.AddConv("conv5", x, 192, 3, 1, 0, true);
  x = g.AddPool("pool2", x, PoolKind::kMax, 3, 2);
  x = AddInceptionA(g, "mixed_5b", x, 32);
  x = AddInceptionA(g, "mixed_5c", x, 64);
  x = AddInceptionA(g, "mixed_5d", x, 64);
  // Reduction-A: 35 -> 17.
  {
    const int b0 = g.AddConv("mixed_6a/3x3", x, 384, 3, 2, 0, true);
    int b1 = g.AddConv("mixed_6a/d3x3_reduce", x, 64, 1, 1, 0, true);
    b1 = g.AddConv("mixed_6a/d3x3_1", b1, 96, 3, 1, 1, true);
    b1 = g.AddConv("mixed_6a/d3x3_2", b1, 96, 3, 2, 0, true);
    const int b2 = g.AddPool("mixed_6a/pool", x, PoolKind::kMax, 3, 2);
    x = g.AddConcat("mixed_6a/out", {b0, b1, b2});
  }
  x = AddInceptionB(g, "mixed_6b", x, 128);
  x = AddInceptionB(g, "mixed_6c", x, 160);
  x = AddInceptionB(g, "mixed_6d", x, 160);
  x = AddInceptionB(g, "mixed_6e", x, 192);
  // Reduction-B: 17 -> 8.
  {
    int b0 = g.AddConv("mixed_7a/3x3_reduce", x, 192, 1, 1, 0, true);
    b0 = g.AddConv("mixed_7a/3x3", b0, 320, 3, 2, 0, true);
    int b1 = g.AddConv("mixed_7a/7x7_reduce", x, 192, 1, 1, 0, true);
    b1 = AddRectConv(g, "mixed_7a/1x7", b1, 192, 1, 7);
    b1 = AddRectConv(g, "mixed_7a/7x1", b1, 192, 7, 1);
    b1 = g.AddConv("mixed_7a/3x3b", b1, 192, 3, 2, 0, true);
    const int b2 = g.AddPool("mixed_7a/pool", x, PoolKind::kMax, 3, 2);
    x = g.AddConcat("mixed_7a/out", {b0, b1, b2});
  }
  x = AddInceptionC(g, "mixed_7b", x);
  x = AddInceptionC(g, "mixed_7c", x);
  x = g.AddGlobalAvgPool("pool3", x);
  x = g.AddFullyConnected("fc", x, 1000, false);
  g.AddSoftmax("prob", x);
  return m;
}

std::vector<Model> MakeEvaluationModels() {
  std::vector<Model> v;
  v.push_back(MakeGoogLeNet());
  v.push_back(MakeSqueezeNetV11());
  v.push_back(MakeVgg16());
  v.push_back(MakeAlexNet());
  v.push_back(MakeMobileNetV1());
  return v;
}

}  // namespace ulayer
