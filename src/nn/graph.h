// Graph: a DAG of NN layers with shape inference.
//
// The graph is a pure structural description (no weights); weights live in
// models::Model. Nodes are appended in topological order, so node id order
// is a valid execution order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/params.h"
#include "tensor/shape.h"

namespace ulayer {

enum class LayerKind : uint8_t {
  kInput,
  kConv,
  kDepthwiseConv,
  kFullyConnected,  // Lowered to a conv whose kernel covers the full input.
  kPool,
  kGlobalAvgPool,
  kRelu,
  kLrn,
  kConcat,
  kEltwiseAdd,  // Residual connections (ResNet); inputs share one shape.
  kSoftmax,
};

// Number of LayerKind values (keep in sync with the enum above).
inline constexpr int kLayerKindCount = static_cast<int>(LayerKind::kSoftmax) + 1;

std::string_view LayerKindName(LayerKind k);

// Description of one layer. Only the fields relevant to `kind` are used.
struct LayerDesc {
  LayerKind kind = LayerKind::kInput;
  std::string name;
  Conv2DParams conv;         // kConv / kDepthwiseConv / kFullyConnected
  int64_t out_channels = 0;  // kConv / kFullyConnected
  Pool2DParams pool;         // kPool
  LrnParams lrn;             // kLrn
};

struct Node {
  int id = -1;
  LayerDesc desc;
  std::vector<int> inputs;  // Producer node ids.
  Shape out_shape;
};

class Graph {
 public:
  // All Add* methods return the new node's id and infer its output shape.
  int AddInput(const Shape& shape, std::string name = "input");
  int AddConv(std::string name, int input, int64_t out_channels, int kernel, int stride, int pad,
              bool relu);
  // Rectangular-kernel variant (used by Inception 1xN-style layers if needed).
  int AddConv2D(std::string name, int input, int64_t out_channels, const Conv2DParams& p);
  int AddDepthwiseConv(std::string name, int input, int kernel, int stride, int pad, bool relu);
  int AddFullyConnected(std::string name, int input, int64_t out_features, bool relu);
  int AddPool(std::string name, int input, PoolKind kind, int kernel, int stride, int pad = 0,
              bool ceil_mode = false);
  int AddGlobalAvgPool(std::string name, int input);
  int AddRelu(std::string name, int input);
  int AddLrn(std::string name, int input, const LrnParams& p);
  int AddConcat(std::string name, const std::vector<int>& inputs);
  // Element-wise sum of same-shaped inputs, with optional fused ReLU
  // (ResNet residual joins).
  int AddEltwiseAdd(std::string name, const std::vector<int>& inputs, bool relu = false);
  int AddSoftmax(std::string name, int input);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  int size() const { return static_cast<int>(nodes_.size()); }

  // Node ids that consume `id`'s output.
  std::vector<int> Consumers(int id) const;

  // The last node (by convention the network output).
  int OutputId() const { return size() - 1; }

  // Batch dimension of the first input node (the N every activation in the
  // graph shares, per shape inference). 1 when the graph has no input node.
  int64_t BatchSize() const {
    for (const Node& n : nodes_) {
      if (n.desc.kind == LayerKind::kInput) {
        return n.out_shape.n;
      }
    }
    return 1;
  }

  // Adopts `nodes` verbatim: no shape inference, no validity checks.
  // Exists for the GraphVerifier tests, which need graphs the checked Add*
  // API refuses to build (dangling edges, wrong arity, corrupt shapes).
  static Graph UncheckedFromNodes(std::vector<Node> nodes);

 private:
  int Append(LayerDesc desc, std::vector<int> inputs, Shape out_shape);

  std::vector<Node> nodes_;
};

}  // namespace ulayer
