// Branch detection for branch distribution (paper Section 5).
//
// A branch group is a fork node whose output feeds multiple independent
// linear chains that reconverge at a single concat node (GoogLeNet Inception
// modules, SqueezeNet Fire modules). Branch distribution assigns whole
// branches to processors instead of splitting each layer.
#pragma once

#include <vector>

#include "nn/graph.h"

namespace ulayer {

struct BranchGroup {
  int fork = -1;  // Node whose output all branches consume.
  int join = -1;  // The concat node where branches reconverge.
  // Each branch is the ordered list of node ids between fork and join
  // (exclusive of both). Branches are independent linear chains.
  std::vector<std::vector<int>> branches;
};

// Finds all branch groups in `g`. For each concat node, walks each input
// backwards through single-input/single-consumer chains; if every chain
// starts at the same fork node, the concat closes a branch group.
std::vector<BranchGroup> FindBranchGroups(const Graph& g);

// True if any layer of the network belongs to a branch group (Table 1's
// "Branch Distribution applicability" column).
bool HasBranches(const Graph& g);

}  // namespace ulayer
