#include "nn/graph.h"

#include <cassert>

namespace ulayer {

std::string_view LayerKindName(LayerKind k) {
  switch (k) {
    case LayerKind::kInput:
      return "input";
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kDepthwiseConv:
      return "dwconv";
    case LayerKind::kFullyConnected:
      return "fc";
    case LayerKind::kPool:
      return "pool";
    case LayerKind::kGlobalAvgPool:
      return "gavgpool";
    case LayerKind::kRelu:
      return "relu";
    case LayerKind::kLrn:
      return "lrn";
    case LayerKind::kConcat:
      return "concat";
    case LayerKind::kEltwiseAdd:
      return "add";
    case LayerKind::kSoftmax:
      return "softmax";
  }
  return "?";
}

int Graph::Append(LayerDesc desc, std::vector<int> inputs, Shape out_shape) {
  for ([[maybe_unused]] int in : inputs) {
    assert(in >= 0 && in < size() && "inputs must already exist (topological append)");
  }
  Node n;
  n.id = size();
  n.desc = std::move(desc);
  n.inputs = std::move(inputs);
  n.out_shape = out_shape;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int Graph::AddInput(const Shape& shape, std::string name) {
  LayerDesc d;
  d.kind = LayerKind::kInput;
  d.name = std::move(name);
  return Append(std::move(d), {}, shape);
}

int Graph::AddConv(std::string name, int input, int64_t out_channels, int kernel, int stride,
                   int pad, bool relu) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = kernel;
  p.stride_h = p.stride_w = stride;
  p.pad_h = p.pad_w = pad;
  p.relu = relu;
  LayerDesc d;
  d.kind = LayerKind::kConv;
  d.name = std::move(name);
  d.conv = p;
  d.out_channels = out_channels;
  const Shape in = node(input).out_shape;
  return Append(std::move(d), {input},
                Shape(in.n, out_channels, p.OutH(static_cast<int>(in.h)),
                      p.OutW(static_cast<int>(in.w))));
}

int Graph::AddConv2D(std::string name, int input, int64_t out_channels, const Conv2DParams& p) {
  LayerDesc d;
  d.kind = LayerKind::kConv;
  d.name = std::move(name);
  d.conv = p;
  d.out_channels = out_channels;
  const Shape in = node(input).out_shape;
  return Append(std::move(d), {input},
                Shape(in.n, out_channels, p.OutH(static_cast<int>(in.h)),
                      p.OutW(static_cast<int>(in.w))));
}

int Graph::AddDepthwiseConv(std::string name, int input, int kernel, int stride, int pad,
                            bool relu) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = kernel;
  p.stride_h = p.stride_w = stride;
  p.pad_h = p.pad_w = pad;
  p.relu = relu;
  LayerDesc d;
  d.kind = LayerKind::kDepthwiseConv;
  d.name = std::move(name);
  d.conv = p;
  const Shape in = node(input).out_shape;
  d.out_channels = in.c;
  return Append(std::move(d), {input},
                Shape(in.n, in.c, p.OutH(static_cast<int>(in.h)), p.OutW(static_cast<int>(in.w))));
}

int Graph::AddFullyConnected(std::string name, int input, int64_t out_features, bool relu) {
  const Shape in = node(input).out_shape;
  // An FC layer is a convolution whose kernel spans the whole input plane
  // (paper Section 2.1).
  Conv2DParams p;
  p.kernel_h = static_cast<int>(in.h);
  p.kernel_w = static_cast<int>(in.w);
  p.stride_h = p.stride_w = 1;
  p.pad_h = p.pad_w = 0;
  p.relu = relu;
  LayerDesc d;
  d.kind = LayerKind::kFullyConnected;
  d.name = std::move(name);
  d.conv = p;
  d.out_channels = out_features;
  return Append(std::move(d), {input}, Shape(in.n, out_features, 1, 1));
}

int Graph::AddPool(std::string name, int input, PoolKind kind, int kernel, int stride, int pad,
                   bool ceil_mode) {
  Pool2DParams p;
  p.kind = kind;
  p.kernel_h = p.kernel_w = kernel;
  p.stride_h = p.stride_w = stride;
  p.pad_h = p.pad_w = pad;
  p.ceil_mode = ceil_mode;
  LayerDesc d;
  d.kind = LayerKind::kPool;
  d.name = std::move(name);
  d.pool = p;
  const Shape in = node(input).out_shape;
  return Append(std::move(d), {input},
                Shape(in.n, in.c, p.OutH(static_cast<int>(in.h)), p.OutW(static_cast<int>(in.w))));
}

int Graph::AddGlobalAvgPool(std::string name, int input) {
  LayerDesc d;
  d.kind = LayerKind::kGlobalAvgPool;
  d.name = std::move(name);
  const Shape in = node(input).out_shape;
  return Append(std::move(d), {input}, Shape(in.n, in.c, 1, 1));
}

int Graph::AddRelu(std::string name, int input) {
  LayerDesc d;
  d.kind = LayerKind::kRelu;
  d.name = std::move(name);
  return Append(std::move(d), {input}, node(input).out_shape);
}

int Graph::AddLrn(std::string name, int input, const LrnParams& p) {
  LayerDesc d;
  d.kind = LayerKind::kLrn;
  d.name = std::move(name);
  d.lrn = p;
  return Append(std::move(d), {input}, node(input).out_shape);
}

int Graph::AddConcat(std::string name, const std::vector<int>& inputs) {
  assert(!inputs.empty());
  LayerDesc d;
  d.kind = LayerKind::kConcat;
  d.name = std::move(name);
  Shape out = node(inputs[0]).out_shape;
  for (size_t i = 1; i < inputs.size(); ++i) {
    const Shape& s = node(inputs[i]).out_shape;
    assert(s.n == out.n && s.h == out.h && s.w == out.w);
    out.c += s.c;
  }
  return Append(std::move(d), inputs, out);
}

int Graph::AddEltwiseAdd(std::string name, const std::vector<int>& inputs, bool relu) {
  assert(inputs.size() >= 2);
  const Shape out = node(inputs[0]).out_shape;
  for ([[maybe_unused]] int in : inputs) {
    assert(node(in).out_shape == out && "eltwise add requires identical shapes");
  }
  LayerDesc d;
  d.kind = LayerKind::kEltwiseAdd;
  d.name = std::move(name);
  d.conv.relu = relu;  // Fused post-add ReLU (ResNet joins).
  return Append(std::move(d), inputs, out);
}

int Graph::AddSoftmax(std::string name, int input) {
  LayerDesc d;
  d.kind = LayerKind::kSoftmax;
  d.name = std::move(name);
  return Append(std::move(d), {input}, node(input).out_shape);
}

std::vector<int> Graph::Consumers(int id) const {
  std::vector<int> out;
  for (const Node& n : nodes_) {
    for (int in : n.inputs) {
      if (in == id) {
        out.push_back(n.id);
        break;
      }
    }
  }
  return out;
}

Graph Graph::UncheckedFromNodes(std::vector<Node> nodes) {
  Graph g;
  g.nodes_ = std::move(nodes);
  return g;
}

}  // namespace ulayer
