#include "nn/branch.h"

#include <algorithm>

namespace ulayer {

std::vector<BranchGroup> FindBranchGroups(const Graph& g) {
  std::vector<BranchGroup> groups;

  // Precompute consumer counts once.
  std::vector<int> consumer_count(static_cast<size_t>(g.size()), 0);
  for (const Node& n : g.nodes()) {
    for (int in : n.inputs) {
      ++consumer_count[static_cast<size_t>(in)];
    }
  }

  for (const Node& n : g.nodes()) {
    // Branches reconverge at a concat (Inception/Fire) or an element-wise
    // add (ResNet residual blocks).
    const bool is_join =
        n.desc.kind == LayerKind::kConcat || n.desc.kind == LayerKind::kEltwiseAdd;
    if (!is_join || n.inputs.size() < 2) {
      continue;
    }
    BranchGroup bg;
    bg.join = n.id;
    int fork = -1;
    bool ok = true;
    for (int in : n.inputs) {
      // The join may consume the fork directly (a ResNet identity shortcut):
      // that is an empty branch.
      if (consumer_count[static_cast<size_t>(in)] > 1) {
        if (fork == -1) {
          fork = in;
        } else if (fork != in) {
          ok = false;
          break;
        }
        bg.branches.emplace_back();
        continue;
      }
      // Walk backwards through a linear chain: every node on the branch must
      // have exactly one input and exactly one consumer.
      std::vector<int> chain;
      int cur = in;
      while (true) {
        const Node& cn = g.node(cur);
        if (cn.inputs.size() != 1 || consumer_count[static_cast<size_t>(cur)] != 1) {
          ok = false;
          break;
        }
        chain.push_back(cur);
        const int prev = cn.inputs[0];
        // The fork is the first node with multiple consumers (or a node we
        // already identified as the fork).
        if (consumer_count[static_cast<size_t>(prev)] > 1) {
          if (fork == -1) {
            fork = prev;
          } else if (fork != prev) {
            ok = false;
          }
          break;
        }
        cur = prev;
      }
      if (!ok) {
        break;
      }
      std::reverse(chain.begin(), chain.end());
      bg.branches.push_back(std::move(chain));
    }
    if (ok && fork != -1 && bg.branches.size() == n.inputs.size()) {
      bg.fork = fork;
      groups.push_back(std::move(bg));
    }
  }
  return groups;
}

bool HasBranches(const Graph& g) { return !FindBranchGroups(g).empty(); }

}  // namespace ulayer
