// Scratch-arena memory planning (DESIGN.md Section 9).
//
// A production inference runtime amortizes every steady-state allocation at
// prepare time: kernel scratch (im2col matrices, F16 staging buffers) comes
// from a monotonic arena sized once by a dry run over the graph, and
// activation tensors share a packed pool planned from their liveness
// intervals. This header provides both building blocks; they are wired into
// the executor by src/core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace ulayer::memory {

// Monotonic bump allocator for kernel scratch buffers.
//
// Usage contract: Reserve() once at prepare time, then per kernel call
// Alloc() any number of buffers and Reset() before the next kernel. Alloc
// never fails: a request beyond the reserved block falls back to a dedicated
// overflow allocation (correctness never depends on the dry-run sizing), and
// the next Reset() coalesces the observed high-water mark back into one
// block so steady state returns to zero heap allocations.
//
// Returned buffers are kAlignment-aligned and UNINITIALIZED. Not thread-safe:
// all Alloc/Reset calls must come from one thread (workers may freely read
// and write the returned buffers).
class ScratchArena {
 public:
  static constexpr size_t kAlignment = 64;  // One cache line.

  ScratchArena() = default;
  explicit ScratchArena(size_t capacity_bytes) { Reserve(capacity_bytes); }

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // Grows the main block to at least `bytes`. Invalidates outstanding
  // pointers; call only between kernel invocations (used_ must be 0).
  void Reserve(size_t bytes);

  // Returns a kAlignment-aligned uninitialized buffer of `bytes` bytes,
  // valid until the next Reset()/Reserve(). bytes == 0 returns a valid
  // (dereferenceable-for-zero-bytes) pointer.
  void* Alloc(size_t bytes);

  template <typename T>
  T* AllocN(size_t n) {
    static_assert(alignof(T) <= kAlignment, "arena alignment too small for T");
    return static_cast<T*>(Alloc(n * sizeof(T)));
  }

  // Rewinds the arena. If any Alloc overflowed the main block, the overflow
  // blocks are released and the main block is regrown to the high-water
  // mark, so subsequent identical allocation patterns stay in-block.
  void Reset();

  // A rewind point for ResetTo(). Buffers allocated before Mark() survive
  // ResetTo(mark); buffers allocated after it are discarded (their overflow
  // blocks, if any, are released). Used by the executor to share staged
  // producer buffers across cooperative slices while still recycling the
  // per-slice scratch in between.
  struct Mark {
    size_t used = 0;
    size_t overflow_blocks = 0;
    size_t overflow_used = 0;
  };
  Mark MarkPoint() const { return {used_, overflow_.size(), overflow_used_}; }

  // Rewinds to a previously taken Mark. Unlike Reset(), the main block is
  // never regrown here (pointers below the mark must stay valid); coalescing
  // of any surviving overflow blocks happens at the next full Reset().
  void ResetTo(const Mark& mark);

  size_t capacity() const { return capacity_; }
  // Bytes handed out since the last Reset (including alignment padding).
  size_t used() const { return used_ + overflow_used_; }
  // Largest used() observed over the arena's lifetime.
  size_t high_water() const { return high_water_; }
  // Number of Alloc calls that did not fit the main block (lifetime total).
  int64_t overflow_count() const { return overflow_count_; }

 private:
  uint8_t* AlignedBase();

  std::vector<uint8_t> block_;        // Main block (capacity_ + alignment slack).
  size_t capacity_ = 0;               // Usable bytes from the aligned base.
  size_t used_ = 0;                   // Bump offset into the main block.
  std::vector<std::vector<uint8_t>> overflow_;  // Fallback blocks, one per miss.
  size_t overflow_used_ = 0;
  size_t high_water_ = 0;
  int64_t overflow_count_ = 0;
};

// --- Liveness-based buffer packing -----------------------------------------

// One buffer that must be alive over the (inclusive) interval
// [live_begin, live_end] of some totally ordered schedule (the executor uses
// node ids, which are topological).
struct BufferRequest {
  int64_t bytes = 0;
  int64_t live_begin = 0;
  int64_t live_end = 0;
};

struct BufferPlan {
  // Byte offset of each request into the shared pool (index-parallel with
  // the input vector). Offsets are ScratchArena::kAlignment-aligned.
  std::vector<int64_t> offsets;
  int64_t pool_bytes = 0;
};

// Packs buffers into one pool such that any two requests whose live
// intervals overlap occupy disjoint byte ranges. Greedy best-offset
// assignment, largest buffers first — the standard inference-runtime
// activation planner (cf. TFLite's memory arena). O(n^2), n = #requests.
BufferPlan PackBuffers(const std::vector<BufferRequest>& requests);

// Generalized packing: `conflict(a, b)` decides whether requests a and b must
// occupy disjoint byte ranges (it is queried with a != b and must be
// symmetric). The interval overload above is this with "liveness intervals
// overlap"; the executor passes a concurrency-safe predicate that also keeps
// buffers apart when their uses may overlap in time on the CPU/GPU timelines
// (see core/memory_plan.h). Placement order and offsets are otherwise
// identical.
BufferPlan PackBuffers(const std::vector<BufferRequest>& requests,
                       const std::function<bool(size_t, size_t)>& conflict);

}  // namespace ulayer::memory
