#include "memory/arena.h"

#include <algorithm>
#include <cassert>

namespace ulayer::memory {
namespace {

size_t AlignUp(size_t n, size_t a) { return (n + a - 1) & ~(a - 1); }

}  // namespace

uint8_t* ScratchArena::AlignedBase() {
  return reinterpret_cast<uint8_t*>(
      AlignUp(reinterpret_cast<uintptr_t>(block_.data()), kAlignment));
}

void ScratchArena::Reserve(size_t bytes) {
  assert(used_ == 0 && overflow_.empty() && "Reserve with live allocations");
  if (bytes <= capacity_) {
    return;
  }
  block_.resize(bytes + kAlignment);
  capacity_ = bytes;
}

void* ScratchArena::Alloc(size_t bytes) {
  const size_t padded = AlignUp(bytes, kAlignment);
  if (used_ + padded <= capacity_) {
    uint8_t* p = AlignedBase() + used_;
    used_ += padded;
    high_water_ = std::max(high_water_, used() );
    return p;
  }
  // Miss: a dedicated overflow block keeps the pointer valid until Reset.
  ++overflow_count_;
  overflow_.emplace_back(padded + kAlignment);
  overflow_used_ += padded;
  high_water_ = std::max(high_water_, used());
  return reinterpret_cast<uint8_t*>(
      AlignUp(reinterpret_cast<uintptr_t>(overflow_.back().data()), kAlignment));
}

void ScratchArena::ResetTo(const Mark& mark) {
  assert(mark.used <= used_ && mark.overflow_blocks <= overflow_.size() &&
         mark.overflow_used <= overflow_used_ && "ResetTo with a stale mark");
  used_ = mark.used;
  overflow_.resize(mark.overflow_blocks);
  overflow_used_ = mark.overflow_used;
}

void ScratchArena::Reset() {
  used_ = 0;
  overflow_used_ = 0;
  if (!overflow_.empty()) {
    // Coalesce: one growth here buys allocation-free steady state.
    overflow_.clear();
    if (high_water_ > capacity_) {
      block_.resize(AlignUp(high_water_, kAlignment) + kAlignment);
      capacity_ = AlignUp(high_water_, kAlignment);
    }
  }
}

BufferPlan PackBuffers(const std::vector<BufferRequest>& requests) {
  return PackBuffers(requests, [&](size_t a, size_t b) {
    const BufferRequest& r = requests[a];
    const BufferRequest& q = requests[b];
    return r.live_begin <= q.live_end && q.live_begin <= r.live_end;
  });
}

BufferPlan PackBuffers(const std::vector<BufferRequest>& requests,
                       const std::function<bool(size_t, size_t)>& conflict) {
  constexpr int64_t kAlign = static_cast<int64_t>(ScratchArena::kAlignment);
  BufferPlan plan;
  plan.offsets.assign(requests.size(), 0);

  // Largest-first placement keeps the big conv activations tightly packed.
  std::vector<size_t> order(requests.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (requests[a].bytes != requests[b].bytes) {
      return requests[a].bytes > requests[b].bytes;
    }
    return a < b;  // Deterministic tie-break.
  });

  std::vector<size_t> placed;
  placed.reserve(requests.size());
  for (const size_t idx : order) {
    const BufferRequest& r = requests[idx];
    const int64_t size = std::max<int64_t>(r.bytes, 0);
    // Collect the occupied ranges of already-placed, conflicting buffers,
    // sorted by offset, then scan for the first gap that fits.
    std::vector<std::pair<int64_t, int64_t>> busy;  // [offset, offset+size)
    for (const size_t p : placed) {
      if (conflict(idx, p)) {
        busy.emplace_back(plan.offsets[p],
                          plan.offsets[p] + std::max<int64_t>(requests[p].bytes, kAlign));
      }
    }
    std::sort(busy.begin(), busy.end());
    int64_t offset = 0;
    for (const auto& [b, e] : busy) {
      if (offset + size <= b) {
        break;  // Fits in the gap before this range.
      }
      offset = std::max(offset, (e + kAlign - 1) / kAlign * kAlign);
    }
    plan.offsets[idx] = offset;
    plan.pool_bytes = std::max(plan.pool_bytes, offset + size);
    placed.push_back(idx);
  }
  plan.pool_bytes = (plan.pool_bytes + kAlign - 1) / kAlign * kAlign;
  return plan;
}

}  // namespace ulayer::memory
