// Shadow instrumentation for the packed activation pool (DESIGN.md §12).
//
// The static analyzer (src/analysis) proves per-step read/write byte ranges
// from declared AccessSpecs; this header provides the *dynamic* cross-check
// that keeps those declarations honest:
//
//  - ChecksumOutside(): a portable FNV-64 hash of every pool byte OUTSIDE a
//    set of allowed ranges. The cross-check driver hashes the complement of a
//    step's declared write set before and after running the step — any
//    mutation outside the declaration changes the hash, so an under-declaring
//    AccessSpec fails loudly in every build type.
//  - ShadowPoison()/ShadowUnpoison(): when compiled under AddressSanitizer,
//    additionally poison the complement of the declared (write ∪ read) set so
//    an out-of-declaration *access* (not just a surviving mutation) aborts
//    with a use-after-poison report pinpointing the exact address.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ulayer::memory {

// Half-open byte interval [begin, end) relative to some base pointer.
struct ShadowRange {
  int64_t begin = 0;
  int64_t end = 0;
};

// Sorts ranges, clamps them to [0, size) and merges overlaps/adjacencies.
// Returns the normalized disjoint ascending list.
std::vector<ShadowRange> NormalizeRanges(std::vector<ShadowRange> ranges, int64_t size);

// FNV-1a 64-bit hash of base[0, size) EXCLUDING bytes covered by `allowed`
// (which must be normalized: disjoint, ascending, clamped to [0, size)).
uint64_t ChecksumOutside(const uint8_t* base, int64_t size,
                         const std::vector<ShadowRange>& allowed);

// True when this translation unit is built with AddressSanitizer (and the
// poison calls below are therefore real).
bool ShadowPoisonActive();

// Poisons/unpoisons base[0, size) except the bytes covered by `allowed`
// (normalized as above). No-ops without ASan.
void ShadowPoison(const uint8_t* base, int64_t size, const std::vector<ShadowRange>& allowed);
void ShadowUnpoison(const uint8_t* base, int64_t size);

}  // namespace ulayer::memory
