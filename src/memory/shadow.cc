#include "memory/shadow.h"

#include <algorithm>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ULAYER_ASAN 1
#endif
#endif
#if !defined(ULAYER_ASAN) && defined(__SANITIZE_ADDRESS__)
#define ULAYER_ASAN 1
#endif

#ifdef ULAYER_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace ulayer::memory {

std::vector<ShadowRange> NormalizeRanges(std::vector<ShadowRange> ranges, int64_t size) {
  std::vector<ShadowRange> out;
  out.reserve(ranges.size());
  for (ShadowRange r : ranges) {
    r.begin = std::max<int64_t>(r.begin, 0);
    r.end = std::min<int64_t>(r.end, size);
    if (r.begin < r.end) {
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ShadowRange& a, const ShadowRange& b) { return a.begin < b.begin; });
  size_t w = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (w > 0 && out[i].begin <= out[w - 1].end) {
      out[w - 1].end = std::max(out[w - 1].end, out[i].end);
    } else {
      out[w++] = out[i];
    }
  }
  out.resize(w);
  return out;
}

uint64_t ChecksumOutside(const uint8_t* base, int64_t size,
                         const std::vector<ShadowRange>& allowed) {
  constexpr uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  uint64_t h = kOffset;
  int64_t pos = 0;
  auto hash_span = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      h = (h ^ base[i]) * kPrime;
    }
    // Fold the gap position in as well so a byte value moving between two
    // equal-valued complement regions still changes the hash.
    h = (h ^ static_cast<uint64_t>(begin)) * kPrime;
  };
  for (const ShadowRange& r : allowed) {
    hash_span(pos, r.begin);
    pos = r.end;
  }
  hash_span(pos, size);
  return h;
}

bool ShadowPoisonActive() {
#ifdef ULAYER_ASAN
  return true;
#else
  return false;
#endif
}

void ShadowPoison(const uint8_t* base, int64_t size, const std::vector<ShadowRange>& allowed) {
#ifdef ULAYER_ASAN
  int64_t pos = 0;
  for (const ShadowRange& r : allowed) {
    if (pos < r.begin) {
      ASAN_POISON_MEMORY_REGION(base + pos, static_cast<size_t>(r.begin - pos));
    }
    pos = r.end;
  }
  if (pos < size) {
    ASAN_POISON_MEMORY_REGION(base + pos, static_cast<size_t>(size - pos));
  }
#else
  (void)base;
  (void)size;
  (void)allowed;
#endif
}

void ShadowUnpoison(const uint8_t* base, int64_t size) {
#ifdef ULAYER_ASAN
  ASAN_UNPOISON_MEMORY_REGION(base, static_cast<size_t>(size));
#else
  (void)base;
  (void)size;
#endif
}

}  // namespace ulayer::memory
