#include "ucl/ucl.h"

#include <algorithm>

namespace ulayer::ucl {

double Device::Schedule(double ready_us, double duration_us, DType compute, double bytes,
                        double* start_out) {
  const double start = std::max(ready_us, now_us_);
  if (start_out != nullptr) {
    *start_out = start;
  }
  now_us_ = start + duration_us;
  switch (compute) {
    case DType::kF32:
    case DType::kInt32:
      busy_f32_ += duration_us;
      break;
    case DType::kF16:
      busy_f16_ += duration_us;
      break;
    case DType::kQUInt8:
      busy_qu8_ += duration_us;
      break;
  }
  bytes_ += bytes;
  return now_us_;
}

double Device::BusyUs(DType compute) const {
  switch (compute) {
    case DType::kF32:
    case DType::kInt32:
      return busy_f32_;
    case DType::kF16:
      return busy_f16_;
    case DType::kQUInt8:
      return busy_qu8_;
  }
  return 0.0;
}

void Device::Reset() {
  now_us_ = 0.0;
  busy_f32_ = busy_f16_ = busy_qu8_ = 0.0;
  bytes_ = 0.0;
}

namespace {

double MaxComplete(const std::vector<Event>& waits) {
  double t = 0.0;
  for (const Event& e : waits) {
    t = std::max(t, e.complete_us);
  }
  return t;
}

// Maps an injector decision onto the failure status an enqueue returns
// (slowdown is not a failure; callers apply the factor instead).
Status FailureStatus(fault::FaultKind kind) {
  switch (kind) {
    case fault::FaultKind::kEnqueueFailed:
      return Status::kEnqueueFailed;
    case fault::FaultKind::kMapFailed:
      return Status::kMapFailed;
    case fault::FaultKind::kDeviceLost:
      return Status::kDeviceLost;
    case fault::FaultKind::kTimeout:
      return Status::kTimeout;
    case fault::FaultKind::kSlowdown:
      return Status::kOk;
    case fault::FaultKind::kDrop:
    case fault::FaultKind::kDelay:
    case fault::FaultKind::kPartition:
    case fault::FaultKind::kWorkerDeath:
      // Net kinds never reach a device timeline (OnCall skips net rules).
      return Status::kOk;
  }
  return Status::kOk;
}

}  // namespace

std::string_view StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kEnqueueFailed:
      return "enqueue-failed";
    case Status::kMapFailed:
      return "map-failed";
    case Status::kDeviceLost:
      return "device-lost";
    case Status::kTimeout:
      return "timeout";
  }
  return "unknown";
}

EnqueueResult CommandQueue::EnqueueKernel(double body_us, DType compute, double bytes,
                                          const std::vector<Event>& waits) {
  return EnqueueKernelAt(0.0, body_us, compute, bytes, waits);
}

EnqueueResult CommandQueue::EnqueueKernelAt(double ready_us, double body_us, DType compute,
                                            double bytes, const std::vector<Event>& waits) {
  const double ready = std::max(ready_us, MaxComplete(waits));
  if (fault::FaultInjector* fi = ctx_->injector_; fi != nullptr) {
    if (const auto d = fi->OnCall(device_->kind(), fault::OpKind::kKernel, device_->now_us())) {
      switch (d->kind) {
        case fault::FaultKind::kSlowdown:
          body_us *= d->factor;
          break;
        case fault::FaultKind::kTimeout: {
          // The command hangs: the device is occupied for the timeout window
          // and the caller gets a failure whose event spans it.
          double start = 0.0;
          const double end = device_->Schedule(ready, d->timeout_us, compute, 0.0, &start);
          return EnqueueResult{Event{end, start}, Status::kTimeout};
        }
        default:
          // Fail-fast errors charge nothing; the queue state is untouched.
          return EnqueueResult{Event{ready, ready}, FailureStatus(d->kind)};
      }
    }
  }
  double start = 0.0;
  const double end = device_->Schedule(ready, device_->spec().kernel_launch_us + body_us,
                                       compute, bytes, &start);
  return EnqueueResult{Event{end, start}, Status::kOk};
}

EnqueueResult CommandQueue::EnqueueMap(const Buffer& buffer, MapAccess /*access*/,
                                       const std::vector<Event>& waits) {
  return EnqueueMapOp(buffer, fault::OpKind::kMap, waits);
}

EnqueueResult CommandQueue::EnqueueUnmap(const Buffer& buffer, const std::vector<Event>& waits) {
  return EnqueueMapOp(buffer, fault::OpKind::kUnmap, waits);
}

EnqueueResult CommandQueue::EnqueueMapOp(const Buffer& buffer, fault::OpKind op,
                                         const std::vector<Event>& waits) {
  const double ready = MaxComplete(waits);
  double cost = ctx_->timing_.MapUs();
  if (buffer.flag() == MemFlag::kCopyMode) {
    cost += static_cast<double>(buffer.size()) / (ctx_->soc_.copy_gb_per_s * 1e3);
  }
  if (fault::FaultInjector* fi = ctx_->injector_; fi != nullptr) {
    if (const auto d = fi->OnCall(device_->kind(), op, device_->now_us())) {
      switch (d->kind) {
        case fault::FaultKind::kSlowdown:
          cost *= d->factor;
          break;
        case fault::FaultKind::kTimeout: {
          double start = 0.0;
          const double end = ctx_->cpu_.Schedule(ready, d->timeout_us, DType::kF32, 0.0, &start);
          return EnqueueResult{Event{end, start}, Status::kTimeout};
        }
        default:
          return EnqueueResult{Event{ready, ready}, FailureStatus(d->kind)};
      }
    }
  }
  // Map/unmap work (cache maintenance or copy) executes on the CPU side.
  double start = 0.0;
  const double end = ctx_->cpu_.Schedule(ready, cost, DType::kF32,
                                         buffer.flag() == MemFlag::kCopyMode
                                             ? static_cast<double>(buffer.size())
                                             : 0.0,
                                         &start);
  return EnqueueResult{Event{end, start}, Status::kOk};
}

double Context::SyncPoint() {
  const double t = std::max(cpu_.now_us(), gpu_.now_us()) + soc_.sync_us;
  // Both devices are unavailable during the synchronization; advance both
  // clocks to the post-sync time.
  cpu_.Schedule(t, 0.0, DType::kF32, 0.0);
  gpu_.Schedule(t, 0.0, DType::kF32, 0.0);
  ++sync_count_;
  return t;
}

void Context::Reset() {
  cpu_.Reset();
  gpu_.Reset();
  sync_count_ = 0;
}

}  // namespace ulayer::ucl
