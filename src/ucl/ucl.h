// ucl: a micro OpenCL-shaped runtime over simulated device timelines.
//
// ulayer's executor drives both the CPU and the GPU through this interface,
// mirroring the structure of the real implementation (ARM Compute Library
// over OpenCL command queues). Each device owns a virtual clock; enqueueing
// a kernel schedules it at max(queue-ready time, dependency completion) and
// advances the clock by the kernel's simulated duration. Host wall-clock is
// the maximum over device clocks, so asynchronous GPU command issuing
// overlapping CPU-side work (paper Section 6) is reproduced measurably.
//
// Buffers model the paper's zero-copy shared CPU-GPU memory: created with
// kAllocHostPtr they are a single host allocation that both devices access;
// Map/Unmap costs only cache-maintenance time. Created with kCopyMode, every
// map/unmap pays a bandwidth-priced copy (the ablation path).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "soc/spec.h"
#include "soc/timing.h"

namespace ulayer::ucl {

// Completion token for an enqueued command (an OpenCL event). `start_us`
// is when the command actually began executing on its device (OpenCL's
// CL_PROFILING_COMMAND_START), which can be later than its ready time when
// the queue was busy.
struct Event {
  double complete_us = 0.0;
  double start_us = 0.0;
};

// Outcome of one enqueue call. Mirrors real OpenCL, where every clEnqueue*
// returns an error code the caller must check: with a FaultInjector attached
// to the Context, any enqueue can come back failed (DESIGN.md Section 10).
// Without an injector the status is always kOk and the timeline arithmetic
// is bit-identical to the pre-fault-injection implementation.
enum class Status : uint8_t {
  kOk,
  kEnqueueFailed,  // The enqueue call itself failed; no timeline charge.
  kMapFailed,      // Map/unmap failed; no timeline charge.
  kDeviceLost,     // Device reset; the caller should stop using this queue.
  kTimeout,        // The command hung: the device was busy until event's end.
};

std::string_view StatusName(Status s);

struct EnqueueResult {
  Event event;
  Status status = Status::kOk;

  bool ok() const { return status == Status::kOk; }
};

enum class MemFlag : uint8_t {
  kAllocHostPtr,  // Zero-copy shared CPU-GPU allocation (CL_MEM_ALLOC_HOST_PTR).
  kCopyMode,      // Discrete staging: map/unmap copies through the host.
};

enum class MapAccess : uint8_t {
  kRead,                   // CL_MAP_READ
  kWriteInvalidateRegion,  // CL_MAP_WRITE_INVALIDATE_REGION
};

// A device-visible memory object. Storage is always host memory (the
// simulator computes functionally on the host); the flag only affects the
// simulated cost of Map/Unmap.
class Buffer {
 public:
  Buffer(int64_t size_bytes, MemFlag flag)
      : flag_(flag), storage_(static_cast<size_t>(size_bytes)) {}

  int64_t size() const { return static_cast<int64_t>(storage_.size()); }
  MemFlag flag() const { return flag_; }
  uint8_t* host_ptr() { return storage_.data(); }
  const uint8_t* host_ptr() const { return storage_.data(); }

 private:
  MemFlag flag_;
  std::vector<uint8_t> storage_;
};

// Per-device virtual timeline plus busy-time accounting for the energy model.
class Device {
 public:
  Device(ProcKind kind, const ProcessorSpec& spec) : kind_(kind), spec_(spec) {}

  ProcKind kind() const { return kind_; }
  const ProcessorSpec& spec() const { return spec_; }
  double now_us() const { return now_us_; }

  // Schedules `duration_us` of work that may start once `ready_us` has
  // passed; returns the completion time. `start_out`, when non-null,
  // receives the actual start time (max of ready time and queue-free time).
  double Schedule(double ready_us, double duration_us, DType compute, double bytes,
                  double* start_out = nullptr);

  // Busy microseconds per compute dtype (for the energy model).
  double BusyUs(DType compute) const;
  double TotalBytes() const { return bytes_; }
  double TotalBusyUs() const { return busy_f32_ + busy_f16_ + busy_qu8_; }

  void Reset();

 private:
  ProcKind kind_;
  ProcessorSpec spec_;
  double now_us_ = 0.0;
  double busy_f32_ = 0.0;
  double busy_f16_ = 0.0;
  double busy_qu8_ = 0.0;
  double bytes_ = 0.0;
};

class Context;

// An in-order command queue bound to one device.
class CommandQueue {
 public:
  CommandQueue(Context* ctx, Device* device) : ctx_(ctx), device_(device) {}

  Device& device() { return *device_; }

  // Enqueues a kernel whose simulated body takes `body_us`; the device's
  // fixed kernel-launch overhead is added automatically. The kernel starts
  // after every event in `waits` completes. `bytes` is the memory traffic
  // attributed to the kernel (energy accounting). The result must be
  // status-checked: with a fault injector attached the enqueue can fail
  // (kEnqueueFailed/kDeviceLost, no timeline charge), hang until a timeout
  // (kTimeout, device busy over the window), or run throttled (kOk with a
  // stretched body).
  EnqueueResult EnqueueKernel(double body_us, DType compute, double bytes,
                              const std::vector<Event>& waits = {});

  // As above but with an explicit ready time (used to model the host issuing
  // the command at a known point).
  EnqueueResult EnqueueKernelAt(double ready_us, double body_us, DType compute, double bytes,
                                const std::vector<Event>& waits = {});

  // Maps `buffer` for host access. Zero-copy buffers cost cache maintenance
  // only; copy-mode buffers pay size/copy-bandwidth. Asynchronous: returns
  // an event (the paper maps/unmaps in parallel with CPU-side work). Subject
  // to map faults (kMapFailed/kDeviceLost/kTimeout) when an injector is set.
  EnqueueResult EnqueueMap(const Buffer& buffer, MapAccess access,
                           const std::vector<Event>& waits = {});
  EnqueueResult EnqueueUnmap(const Buffer& buffer, const std::vector<Event>& waits = {});

  // Blocks the host until every command in this queue completes, returning
  // the completion time (clFinish).
  double Finish() const { return device_->now_us(); }

 private:
  EnqueueResult EnqueueMapOp(const Buffer& buffer, fault::OpKind op,
                             const std::vector<Event>& waits);

  Context* ctx_;
  Device* device_;
};

// The ucl context: owns the devices and buffers of one SoC.
class Context {
 public:
  explicit Context(const SocSpec& soc)
      : soc_(soc),
        timing_(soc),
        cpu_(ProcKind::kCpu, soc.cpu),
        gpu_(ProcKind::kGpu, soc.gpu),
        cpu_queue_(this, &cpu_),
        gpu_queue_(this, &gpu_) {}

  const SocSpec& soc() const { return soc_; }
  const TimingModel& timing() const { return timing_; }

  CommandQueue& queue(ProcKind k) { return k == ProcKind::kCpu ? cpu_queue_ : gpu_queue_; }
  Device& device(ProcKind k) { return k == ProcKind::kCpu ? cpu_ : gpu_; }
  const Device& device(ProcKind k) const { return k == ProcKind::kCpu ? cpu_ : gpu_; }

  std::shared_ptr<Buffer> CreateBuffer(int64_t size_bytes, MemFlag flag) {
    return std::make_shared<Buffer>(size_bytes, flag);
  }

  // Host wall-clock: both devices idle.
  double NowUs() const { return std::max(cpu_.now_us(), gpu_.now_us()); }

  // A CPU-GPU synchronization point: both timelines advance to
  // max(cpu, gpu) + sync cost. Returns the post-sync time.
  double SyncPoint();

  // Number of SyncPoint calls since Reset (overhead introspection).
  int sync_count() const { return sync_count_; }

  // Attaches a fault injector consulted by every enqueue call (non-owning;
  // nullptr detaches). The owner is responsible for ResetRun() — Reset()
  // deliberately leaves injector state alone so the executor controls the
  // fault stream's lifetime.
  void SetFaultInjector(fault::FaultInjector* injector) { injector_ = injector; }
  fault::FaultInjector* fault_injector() const { return injector_; }

  void Reset();

 private:
  SocSpec soc_;
  TimingModel timing_;
  Device cpu_;
  Device gpu_;
  CommandQueue cpu_queue_;
  CommandQueue gpu_queue_;
  int sync_count_ = 0;
  fault::FaultInjector* injector_ = nullptr;

  friend class CommandQueue;
};

}  // namespace ulayer::ucl
