file(REMOVE_RECURSE
  "CMakeFiles/ucl_test.dir/ucl_test.cc.o"
  "CMakeFiles/ucl_test.dir/ucl_test.cc.o.d"
  "ucl_test"
  "ucl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
