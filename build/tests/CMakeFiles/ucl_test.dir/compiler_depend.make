# Empty compiler generated dependencies file for ucl_test.
# This may be replaced when dependencies are built.
