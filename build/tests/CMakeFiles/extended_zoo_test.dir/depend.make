# Empty dependencies file for extended_zoo_test.
# This may be replaced when dependencies are built.
