file(REMOVE_RECURSE
  "CMakeFiles/extended_zoo_test.dir/extended_zoo_test.cc.o"
  "CMakeFiles/extended_zoo_test.dir/extended_zoo_test.cc.o.d"
  "extended_zoo_test"
  "extended_zoo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
