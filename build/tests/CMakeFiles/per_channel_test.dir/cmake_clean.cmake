file(REMOVE_RECURSE
  "CMakeFiles/per_channel_test.dir/per_channel_test.cc.o"
  "CMakeFiles/per_channel_test.dir/per_channel_test.cc.o.d"
  "per_channel_test"
  "per_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
