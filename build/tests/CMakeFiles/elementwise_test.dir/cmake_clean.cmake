file(REMOVE_RECURSE
  "CMakeFiles/elementwise_test.dir/elementwise_test.cc.o"
  "CMakeFiles/elementwise_test.dir/elementwise_test.cc.o.d"
  "elementwise_test"
  "elementwise_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elementwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
