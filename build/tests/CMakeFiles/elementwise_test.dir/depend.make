# Empty dependencies file for elementwise_test.
# This may be replaced when dependencies are built.
