file(REMOVE_RECURSE
  "CMakeFiles/winograd_test.dir/winograd_test.cc.o"
  "CMakeFiles/winograd_test.dir/winograd_test.cc.o.d"
  "winograd_test"
  "winograd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winograd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
