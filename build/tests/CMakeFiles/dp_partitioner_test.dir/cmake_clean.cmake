file(REMOVE_RECURSE
  "CMakeFiles/dp_partitioner_test.dir/dp_partitioner_test.cc.o"
  "CMakeFiles/dp_partitioner_test.dir/dp_partitioner_test.cc.o.d"
  "dp_partitioner_test"
  "dp_partitioner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
