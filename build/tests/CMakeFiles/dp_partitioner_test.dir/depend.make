# Empty dependencies file for dp_partitioner_test.
# This may be replaced when dependencies are built.
