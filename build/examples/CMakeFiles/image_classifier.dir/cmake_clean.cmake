file(REMOVE_RECURSE
  "CMakeFiles/image_classifier.dir/image_classifier.cc.o"
  "CMakeFiles/image_classifier.dir/image_classifier.cc.o.d"
  "image_classifier"
  "image_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
