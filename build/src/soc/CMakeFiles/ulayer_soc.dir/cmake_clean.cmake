file(REMOVE_RECURSE
  "CMakeFiles/ulayer_soc.dir/spec.cc.o"
  "CMakeFiles/ulayer_soc.dir/spec.cc.o.d"
  "CMakeFiles/ulayer_soc.dir/timing.cc.o"
  "CMakeFiles/ulayer_soc.dir/timing.cc.o.d"
  "CMakeFiles/ulayer_soc.dir/work.cc.o"
  "CMakeFiles/ulayer_soc.dir/work.cc.o.d"
  "libulayer_soc.a"
  "libulayer_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
