file(REMOVE_RECURSE
  "libulayer_soc.a"
)
