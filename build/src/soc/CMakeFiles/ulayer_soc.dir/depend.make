# Empty dependencies file for ulayer_soc.
# This may be replaced when dependencies are built.
