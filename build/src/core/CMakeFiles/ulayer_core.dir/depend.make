# Empty dependencies file for ulayer_core.
# This may be replaced when dependencies are built.
