file(REMOVE_RECURSE
  "CMakeFiles/ulayer_core.dir/compute.cc.o"
  "CMakeFiles/ulayer_core.dir/compute.cc.o.d"
  "CMakeFiles/ulayer_core.dir/dp_partitioner.cc.o"
  "CMakeFiles/ulayer_core.dir/dp_partitioner.cc.o.d"
  "CMakeFiles/ulayer_core.dir/executor.cc.o"
  "CMakeFiles/ulayer_core.dir/executor.cc.o.d"
  "CMakeFiles/ulayer_core.dir/partitioner.cc.o"
  "CMakeFiles/ulayer_core.dir/partitioner.cc.o.d"
  "CMakeFiles/ulayer_core.dir/predictor.cc.o"
  "CMakeFiles/ulayer_core.dir/predictor.cc.o.d"
  "CMakeFiles/ulayer_core.dir/prepared.cc.o"
  "CMakeFiles/ulayer_core.dir/prepared.cc.o.d"
  "CMakeFiles/ulayer_core.dir/reference.cc.o"
  "CMakeFiles/ulayer_core.dir/reference.cc.o.d"
  "CMakeFiles/ulayer_core.dir/runtime.cc.o"
  "CMakeFiles/ulayer_core.dir/runtime.cc.o.d"
  "libulayer_core.a"
  "libulayer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
