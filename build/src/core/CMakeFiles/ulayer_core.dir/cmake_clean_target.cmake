file(REMOVE_RECURSE
  "libulayer_core.a"
)
