file(REMOVE_RECURSE
  "libulayer_io.a"
)
