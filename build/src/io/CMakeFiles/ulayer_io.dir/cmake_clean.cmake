file(REMOVE_RECURSE
  "CMakeFiles/ulayer_io.dir/io.cc.o"
  "CMakeFiles/ulayer_io.dir/io.cc.o.d"
  "libulayer_io.a"
  "libulayer_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
