# Empty dependencies file for ulayer_io.
# This may be replaced when dependencies are built.
