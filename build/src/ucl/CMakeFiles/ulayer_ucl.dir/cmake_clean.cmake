file(REMOVE_RECURSE
  "CMakeFiles/ulayer_ucl.dir/ucl.cc.o"
  "CMakeFiles/ulayer_ucl.dir/ucl.cc.o.d"
  "libulayer_ucl.a"
  "libulayer_ucl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_ucl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
