file(REMOVE_RECURSE
  "libulayer_ucl.a"
)
