# Empty dependencies file for ulayer_ucl.
# This may be replaced when dependencies are built.
