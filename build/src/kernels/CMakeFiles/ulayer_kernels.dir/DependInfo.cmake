
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/conv.cc" "src/kernels/CMakeFiles/ulayer_kernels.dir/conv.cc.o" "gcc" "src/kernels/CMakeFiles/ulayer_kernels.dir/conv.cc.o.d"
  "/root/repo/src/kernels/elementwise.cc" "src/kernels/CMakeFiles/ulayer_kernels.dir/elementwise.cc.o" "gcc" "src/kernels/CMakeFiles/ulayer_kernels.dir/elementwise.cc.o.d"
  "/root/repo/src/kernels/gemm.cc" "src/kernels/CMakeFiles/ulayer_kernels.dir/gemm.cc.o" "gcc" "src/kernels/CMakeFiles/ulayer_kernels.dir/gemm.cc.o.d"
  "/root/repo/src/kernels/im2col.cc" "src/kernels/CMakeFiles/ulayer_kernels.dir/im2col.cc.o" "gcc" "src/kernels/CMakeFiles/ulayer_kernels.dir/im2col.cc.o.d"
  "/root/repo/src/kernels/pool.cc" "src/kernels/CMakeFiles/ulayer_kernels.dir/pool.cc.o" "gcc" "src/kernels/CMakeFiles/ulayer_kernels.dir/pool.cc.o.d"
  "/root/repo/src/kernels/winograd.cc" "src/kernels/CMakeFiles/ulayer_kernels.dir/winograd.cc.o" "gcc" "src/kernels/CMakeFiles/ulayer_kernels.dir/winograd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ulayer_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/ulayer_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
