file(REMOVE_RECURSE
  "libulayer_kernels.a"
)
