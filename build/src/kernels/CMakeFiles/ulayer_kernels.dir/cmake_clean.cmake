file(REMOVE_RECURSE
  "CMakeFiles/ulayer_kernels.dir/conv.cc.o"
  "CMakeFiles/ulayer_kernels.dir/conv.cc.o.d"
  "CMakeFiles/ulayer_kernels.dir/elementwise.cc.o"
  "CMakeFiles/ulayer_kernels.dir/elementwise.cc.o.d"
  "CMakeFiles/ulayer_kernels.dir/gemm.cc.o"
  "CMakeFiles/ulayer_kernels.dir/gemm.cc.o.d"
  "CMakeFiles/ulayer_kernels.dir/im2col.cc.o"
  "CMakeFiles/ulayer_kernels.dir/im2col.cc.o.d"
  "CMakeFiles/ulayer_kernels.dir/pool.cc.o"
  "CMakeFiles/ulayer_kernels.dir/pool.cc.o.d"
  "CMakeFiles/ulayer_kernels.dir/winograd.cc.o"
  "CMakeFiles/ulayer_kernels.dir/winograd.cc.o.d"
  "libulayer_kernels.a"
  "libulayer_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
