# Empty compiler generated dependencies file for ulayer_kernels.
# This may be replaced when dependencies are built.
