# Empty dependencies file for ulayer_models.
# This may be replaced when dependencies are built.
