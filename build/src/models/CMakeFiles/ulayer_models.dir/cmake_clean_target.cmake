file(REMOVE_RECURSE
  "libulayer_models.a"
)
