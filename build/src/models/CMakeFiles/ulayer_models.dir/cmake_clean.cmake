file(REMOVE_RECURSE
  "CMakeFiles/ulayer_models.dir/model.cc.o"
  "CMakeFiles/ulayer_models.dir/model.cc.o.d"
  "libulayer_models.a"
  "libulayer_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
