file(REMOVE_RECURSE
  "libulayer_baselines.a"
)
