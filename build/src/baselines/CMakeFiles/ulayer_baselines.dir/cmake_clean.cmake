file(REMOVE_RECURSE
  "CMakeFiles/ulayer_baselines.dir/baselines.cc.o"
  "CMakeFiles/ulayer_baselines.dir/baselines.cc.o.d"
  "libulayer_baselines.a"
  "libulayer_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
