# Empty dependencies file for ulayer_baselines.
# This may be replaced when dependencies are built.
