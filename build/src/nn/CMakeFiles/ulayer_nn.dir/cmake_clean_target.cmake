file(REMOVE_RECURSE
  "libulayer_nn.a"
)
