# Empty dependencies file for ulayer_nn.
# This may be replaced when dependencies are built.
