file(REMOVE_RECURSE
  "CMakeFiles/ulayer_nn.dir/branch.cc.o"
  "CMakeFiles/ulayer_nn.dir/branch.cc.o.d"
  "CMakeFiles/ulayer_nn.dir/graph.cc.o"
  "CMakeFiles/ulayer_nn.dir/graph.cc.o.d"
  "libulayer_nn.a"
  "libulayer_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
