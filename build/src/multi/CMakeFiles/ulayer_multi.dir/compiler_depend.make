# Empty compiler generated dependencies file for ulayer_multi.
# This may be replaced when dependencies are built.
