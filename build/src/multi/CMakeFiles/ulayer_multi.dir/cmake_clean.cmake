file(REMOVE_RECURSE
  "CMakeFiles/ulayer_multi.dir/multi.cc.o"
  "CMakeFiles/ulayer_multi.dir/multi.cc.o.d"
  "libulayer_multi.a"
  "libulayer_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
