
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multi/multi.cc" "src/multi/CMakeFiles/ulayer_multi.dir/multi.cc.o" "gcc" "src/multi/CMakeFiles/ulayer_multi.dir/multi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/ulayer_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ulayer_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/ulayer_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/ulayer_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ulayer_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
