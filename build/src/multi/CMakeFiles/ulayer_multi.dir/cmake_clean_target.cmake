file(REMOVE_RECURSE
  "libulayer_multi.a"
)
