file(REMOVE_RECURSE
  "CMakeFiles/ulayer_quant.dir/half.cc.o"
  "CMakeFiles/ulayer_quant.dir/half.cc.o.d"
  "CMakeFiles/ulayer_quant.dir/quantize.cc.o"
  "CMakeFiles/ulayer_quant.dir/quantize.cc.o.d"
  "libulayer_quant.a"
  "libulayer_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
