file(REMOVE_RECURSE
  "libulayer_quant.a"
)
