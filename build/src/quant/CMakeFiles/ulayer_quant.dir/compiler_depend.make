# Empty compiler generated dependencies file for ulayer_quant.
# This may be replaced when dependencies are built.
