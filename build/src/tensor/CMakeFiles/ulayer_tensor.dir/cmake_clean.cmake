file(REMOVE_RECURSE
  "CMakeFiles/ulayer_tensor.dir/shape.cc.o"
  "CMakeFiles/ulayer_tensor.dir/shape.cc.o.d"
  "CMakeFiles/ulayer_tensor.dir/tensor.cc.o"
  "CMakeFiles/ulayer_tensor.dir/tensor.cc.o.d"
  "libulayer_tensor.a"
  "libulayer_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulayer_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
