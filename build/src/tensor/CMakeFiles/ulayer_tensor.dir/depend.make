# Empty dependencies file for ulayer_tensor.
# This may be replaced when dependencies are built.
