file(REMOVE_RECURSE
  "libulayer_tensor.a"
)
