# Empty compiler generated dependencies file for npu_extension.
# This may be replaced when dependencies are built.
