file(REMOVE_RECURSE
  "CMakeFiles/npu_extension.dir/npu_extension.cc.o"
  "CMakeFiles/npu_extension.dir/npu_extension.cc.o.d"
  "npu_extension"
  "npu_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npu_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
