file(REMOVE_RECURSE
  "CMakeFiles/dp_partitioner_study.dir/dp_partitioner_study.cc.o"
  "CMakeFiles/dp_partitioner_study.dir/dp_partitioner_study.cc.o.d"
  "dp_partitioner_study"
  "dp_partitioner_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_partitioner_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
