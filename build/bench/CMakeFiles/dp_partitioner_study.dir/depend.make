# Empty dependencies file for dp_partitioner_study.
# This may be replaced when dependencies are built.
