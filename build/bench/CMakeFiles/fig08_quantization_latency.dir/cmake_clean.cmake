file(REMOVE_RECURSE
  "CMakeFiles/fig08_quantization_latency.dir/fig08_quantization_latency.cc.o"
  "CMakeFiles/fig08_quantization_latency.dir/fig08_quantization_latency.cc.o.d"
  "fig08_quantization_latency"
  "fig08_quantization_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_quantization_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
