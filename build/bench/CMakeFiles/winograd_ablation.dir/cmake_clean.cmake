file(REMOVE_RECURSE
  "CMakeFiles/winograd_ablation.dir/winograd_ablation.cc.o"
  "CMakeFiles/winograd_ablation.dir/winograd_ablation.cc.o.d"
  "winograd_ablation"
  "winograd_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winograd_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
