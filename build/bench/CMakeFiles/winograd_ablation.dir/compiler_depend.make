# Empty compiler generated dependencies file for winograd_ablation.
# This may be replaced when dependencies are built.
