file(REMOVE_RECURSE
  "CMakeFiles/fig12_branch_potential.dir/fig12_branch_potential.cc.o"
  "CMakeFiles/fig12_branch_potential.dir/fig12_branch_potential.cc.o.d"
  "fig12_branch_potential"
  "fig12_branch_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_branch_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
