# Empty dependencies file for fig12_branch_potential.
# This may be replaced when dependencies are built.
