file(REMOVE_RECURSE
  "CMakeFiles/throughput_pipeline.dir/throughput_pipeline.cc.o"
  "CMakeFiles/throughput_pipeline.dir/throughput_pipeline.cc.o.d"
  "throughput_pipeline"
  "throughput_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
