file(REMOVE_RECURSE
  "CMakeFiles/fig05_per_layer_latency.dir/fig05_per_layer_latency.cc.o"
  "CMakeFiles/fig05_per_layer_latency.dir/fig05_per_layer_latency.cc.o.d"
  "fig05_per_layer_latency"
  "fig05_per_layer_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_per_layer_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
