# Empty dependencies file for fig05_per_layer_latency.
# This may be replaced when dependencies are built.
