# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig06_nn_latency_cpu_gpu.
