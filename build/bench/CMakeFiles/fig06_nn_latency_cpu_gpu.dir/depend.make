# Empty dependencies file for fig06_nn_latency_cpu_gpu.
# This may be replaced when dependencies are built.
