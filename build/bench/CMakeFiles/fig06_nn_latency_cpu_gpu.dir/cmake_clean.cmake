file(REMOVE_RECURSE
  "CMakeFiles/fig06_nn_latency_cpu_gpu.dir/fig06_nn_latency_cpu_gpu.cc.o"
  "CMakeFiles/fig06_nn_latency_cpu_gpu.dir/fig06_nn_latency_cpu_gpu.cc.o.d"
  "fig06_nn_latency_cpu_gpu"
  "fig06_nn_latency_cpu_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_nn_latency_cpu_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
