# Empty compiler generated dependencies file for sensitivity_sweep.
# This may be replaced when dependencies are built.
