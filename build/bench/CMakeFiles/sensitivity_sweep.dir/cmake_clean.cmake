file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_sweep.dir/sensitivity_sweep.cc.o"
  "CMakeFiles/sensitivity_sweep.dir/sensitivity_sweep.cc.o.d"
  "sensitivity_sweep"
  "sensitivity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
