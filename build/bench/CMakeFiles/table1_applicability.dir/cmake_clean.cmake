file(REMOVE_RECURSE
  "CMakeFiles/table1_applicability.dir/table1_applicability.cc.o"
  "CMakeFiles/table1_applicability.dir/table1_applicability.cc.o.d"
  "table1_applicability"
  "table1_applicability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
