# Empty compiler generated dependencies file for fig16_ulayer_latency.
# This may be replaced when dependencies are built.
