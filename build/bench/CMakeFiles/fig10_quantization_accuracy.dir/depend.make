# Empty dependencies file for fig10_quantization_accuracy.
# This may be replaced when dependencies are built.
