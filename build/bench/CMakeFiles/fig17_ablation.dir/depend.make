# Empty dependencies file for fig17_ablation.
# This may be replaced when dependencies are built.
