file(REMOVE_RECURSE
  "CMakeFiles/predictor_fidelity.dir/predictor_fidelity.cc.o"
  "CMakeFiles/predictor_fidelity.dir/predictor_fidelity.cc.o.d"
  "predictor_fidelity"
  "predictor_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
