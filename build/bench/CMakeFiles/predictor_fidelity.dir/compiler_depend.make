# Empty compiler generated dependencies file for predictor_fidelity.
# This may be replaced when dependencies are built.
