file(REMOVE_RECURSE
  "CMakeFiles/per_channel_quant.dir/per_channel_quant.cc.o"
  "CMakeFiles/per_channel_quant.dir/per_channel_quant.cc.o.d"
  "per_channel_quant"
  "per_channel_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_channel_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
