# Empty dependencies file for per_channel_quant.
# This may be replaced when dependencies are built.
