// Throughput study (paper Section 2.2, Figure 4): network-to-processor
// mapping (MCDNN-style) improves multi-input throughput but not single-input
// latency; ulayer improves both, because each input already uses every
// processor. For a stream of N inputs we compare per-input time and the
// latency of the first result.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ulayer {
namespace {

void PrintStudy() {
  benchutil::PrintHeader("Throughput: network-to-processor vs ulayer over input streams",
                         "Kim et al., EuroSys'19, Figure 4 / Section 2.2");
  const SocSpec soc = MakeExynos7420();
  const int kInputs = 8;
  std::printf("stream of %d inputs on %s\n", kInputs, soc.name.c_str());
  std::printf("%-16s | %12s %12s | %12s %12s\n", "network", "N2P per-in", "N2P first",
              "uL per-in", "uL first");
  for (const Model& m : MakeEvaluationModels()) {
    const ThroughputResult n2p = RunNetworkToProcessor(m, soc, ExecConfig::AllQU8(), kInputs);
    ULayerRuntime rt(m, soc);
    const double ul = rt.Run().latency_us;
    // ulayer processes the stream serially: per-input == first-input latency.
    std::printf("%-16s | %10.2fms %10.2fms | %10.2fms %10.2fms\n", m.name.c_str(),
                n2p.per_input_us * 1e-3, n2p.first_input_us * 1e-3, ul * 1e-3, ul * 1e-3);
  }
  std::printf("\nShape: N2P's per-input time beats its own first-input latency\n"
              "(throughput win) but its first result arrives at single-processor\n"
              "latency; ulayer's first result is the fastest of all, and its\n"
              "serial per-input time is competitive with N2P's parallel one.\n");
}

void BM_N2PScheduling(benchmark::State& state) {
  const Model m = MakeAlexNet();
  const SocSpec soc = MakeExynos7420();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunNetworkToProcessor(m, soc, ExecConfig::AllQU8(), 16).makespan_us);
  }
}
BENCHMARK(BM_N2PScheduling);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
