// Extension study (paper Section 8.3): cooperative single-layer
// acceleration with a third processor (an Edge-TPU-class NPU) added to the
// high-end SoC. The paper claims all three mechanisms extend naturally; this
// bench quantifies the headroom.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "multi/multi.h"

namespace ulayer {
namespace {

void PrintNpuStudy() {
  benchutil::PrintHeader("Extension: CPU+GPU+NPU cooperative acceleration",
                         "Kim et al., EuroSys'19, Section 8.3 (claimed extension)");
  const multi::MultiSoc two = multi::MakeExynos7420Multi();
  const multi::MultiSoc three = multi::MakeExynos7420WithNpu();
  std::printf("%-16s %12s %12s %10s | %12s %12s\n", "network", "CPU+GPU ms", "+NPU ms",
              "speedup", "CPU+GPU mJ", "+NPU mJ");
  std::vector<double> speedups;
  for (const Model& m : MakeEvaluationModels()) {
    const multi::MultiRunResult r2 =
        multi::MultiExecutor(m.graph, two).Run(multi::MultiPartitioner(m.graph, two).Build());
    const multi::MultiRunResult r3 =
        multi::MultiExecutor(m.graph, three).Run(multi::MultiPartitioner(m.graph, three).Build());
    speedups.push_back(r2.latency_us / r3.latency_us);
    std::printf("%-16s %12.2f %12.2f %9.2fx | %12.1f %12.1f\n", m.name.c_str(),
                r2.latency_us * 1e-3, r3.latency_us * 1e-3, r2.latency_us / r3.latency_us,
                r2.total_energy_mj, r3.total_energy_mj);
  }
  std::printf("geomean speedup from adding the NPU: %.2fx\n", benchutil::GeoMean(speedups));

  // Per-mechanism attribution with three processors (GoogLeNet).
  const Model goog = MakeGoogLeNet();
  multi::MultiPartitioner::Options no_branch;
  no_branch.branch_distribution = false;
  multi::MultiPartitioner::Options no_split = no_branch;
  no_split.channel_distribution = false;
  const double base = multi::MultiExecutor(goog.graph, three)
                          .Run(multi::MultiPartitioner(goog.graph, three, no_split).Build())
                          .latency_us;
  const double split = multi::MultiExecutor(goog.graph, three)
                           .Run(multi::MultiPartitioner(goog.graph, three, no_branch).Build())
                           .latency_us;
  const double full = multi::MultiExecutor(goog.graph, three)
                          .Run(multi::MultiPartitioner(goog.graph, three).Build())
                          .latency_us;
  std::printf("\nGoogLeNet on CPU+GPU+NPU: layer-to-processor %.2f ms, +3-way "
              "channel split %.2f ms, +3-way branch distribution %.2f ms\n",
              base * 1e-3, split * 1e-3, full * 1e-3);
}

void BM_ThreeWayPartitioning(benchmark::State& state) {
  const Model m = MakeGoogLeNet();
  const multi::MultiSoc soc = multi::MakeExynos7420WithNpu();
  for (auto _ : state) {
    benchmark::DoNotOptimize(multi::MultiPartitioner(m.graph, soc).Build().nodes.size());
  }
}
BENCHMARK(BM_ThreeWayPartitioning);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintNpuStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
