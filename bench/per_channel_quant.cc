// Quantization-extension study: per-tensor (the paper's scheme, Jacob et
// al.) vs per-output-channel filter quantization, measured with the
// Figure-10 agreement proxy. Latency is identical (same integer arithmetic);
// only accuracy differs — per-channel is how TFLite/QNNPACK quantize today.
#include <benchmark/benchmark.h>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "core/reference.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

std::vector<Tensor> MakeInputs(const Shape& shape, int count, uint64_t seed) {
  std::vector<Tensor> v;
  for (int i = 0; i < count; ++i) {
    Tensor t(shape, DType::kF32);
    FillUniform(t, seed + static_cast<uint64_t>(i), -1.0f, 1.0f);
    v.push_back(std::move(t));
  }
  return v;
}

struct Score {
  double top1 = 0.0;
  double rms = 0.0;
};

Score Evaluate(const Model& m, bool per_channel, const std::vector<Tensor>& calib,
               const std::vector<Tensor>& tests, const std::vector<Tensor>& refs) {
  ExecConfig cfg = ExecConfig::ProcessorFriendly();
  cfg.per_channel_weights = per_channel;
  PreparedModel pm(m, cfg);
  pm.Calibrate(calib);
  Executor ex(pm, MakeExynos7420());
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kCpu);
  Score s;
  for (size_t i = 0; i < tests.size(); ++i) {
    const RunResult r = ex.Run(plan, &tests[i]);
    s.top1 += Argmax(*r.output) == Argmax(refs[i]) ? 1.0 : 0.0;
    s.rms += static_cast<double>(RmsDiff(*r.output, refs[i]));
  }
  s.top1 /= static_cast<double>(tests.size());
  s.rms /= static_cast<double>(tests.size());
  return s;
}

void RunModel(Model m, const Shape& in_shape, int n_test) {
  m.MaterializeWeights();
  const auto calib = MakeInputs(in_shape, 4, 7000);
  const auto tests = MakeInputs(in_shape, n_test, 7100);
  std::vector<Tensor> refs;
  for (const Tensor& t : tests) {
    refs.push_back(ForwardF32(m, t).back());
  }
  const Score pt = Evaluate(m, false, calib, tests, refs);
  const Score pc = Evaluate(m, true, calib, tests, refs);
  std::printf("%-18s | per-tensor: top1 %5.1f%% rms %.4f | per-channel: top1 %5.1f%% rms %.4f\n",
              m.name.c_str(), pt.top1 * 100, pt.rms, pc.top1 * 100, pc.rms);
}

void PrintStudy() {
  benchutil::PrintHeader("Per-tensor vs per-channel filter quantization",
                         "extension of Kim et al., EuroSys'19, Section 4 (Jacob et al. scheme)");
  RunModel(MakeLeNet5(), Shape(1, 1, 28, 28), 10);
  RunModel(MakeSqueezeNetV11(1, 64), Shape(1, 3, 64, 64), 6);
  RunModel(MakeMobileNetV1(1, 64), Shape(1, 3, 64, 64), 6);
  std::printf("\nShape: per-channel never loses; RMS error vs the F32 reference\n"
              "shrinks, most on nets with skewed filter ranges. Latency is\n"
              "unchanged (identical integer pipeline).\n");
}

void BM_PerChannelPrepare(benchmark::State& state) {
  Model m = MakeSqueezeNetV11(1, 64);
  m.MaterializeWeights();
  ExecConfig cfg = ExecConfig::ProcessorFriendly();
  cfg.per_channel_weights = true;
  for (auto _ : state) {
    PreparedModel pm(m, cfg);
    benchmark::DoNotOptimize(pm.config().per_channel_weights);
  }
}
BENCHMARK(BM_PerChannelPrepare);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
