// Adaptation-loop bench (DESIGN.md Section 16): the committed
// thermal-throttle ramp, measured end to end.
//
// Three sections, all deterministic (simulated timelines):
//   ramp    - baseline -> throttle -> recovery phases over the zoo, with an
//             adaptive runtime (drift-fed corrections + health-keyed plan
//             cache) against a static runtime pinned to its profile-time
//             plan and a never-throttled control. The acceptance criteria
//             are asserted, not just reported: adaptive must beat static
//             while throttled, the drift table must converge monotonically
//             to 1.0 +/- 5%, and post-recovery latency must return to
//             within 2% of the never-throttled control.
//   cache   - plan-cache accounting over the same ramp with coarse buckets:
//             every replan is either a Partitioner::Build or an O(1) cache
//             hit (replans = builds + hits), and returning to baseline
//             health hits the seeded entry.
//   digest  - functional byte-identity: adaptation on vs off must produce
//             bit-equal network outputs under the throttle spec.
//
// Flags:
//   --quick       fewer models / shorter phases (CI smoke mode)
//   --out PATH    JSON output path (default: BENCH_adapt.json)

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "kernels/simd.h"
#include "models/model.h"
#include "parallel/thread_pool.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

constexpr const char* kThrottleSpec = "gpu.kernel=slow:2.5";

struct RampRow {
  std::string model;
  std::string phase;
  int run = 0;
  double adaptive_us = 0.0;
  double static_us = 0.0;
  double clean_us = 0.0;
  double deviation = 0.0;  // Adaptive runtime's drift deviation this run.
};

struct RampSummary {
  std::string model;
  double adaptive_throttled_us = 0.0;
  double static_throttled_us = 0.0;
  double throttled_speedup = 0.0;
  double final_deviation = 0.0;
  double recovery_ratio = 0.0;  // Last recovery run vs never-throttled.
  int replans = 0;
  bool converged = false;   // H903 over the throttle phase.
  bool recovered = false;   // Within 2% of the control after recovery.
  bool beat_static = false;
  bool verify_ok = false;   // H901 + H902 at the end of the ramp.
  std::string corrections;
};

uint64_t Fnv1a64(const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

Model MakeRampModel(const std::string& family) {
  if (family == "googlenet") {
    return MakeGoogLeNet();
  }
  if (family == "vgg16") {
    return MakeVgg16();
  }
  return MakeLeNet5();
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_adapt.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const char* isa = simd::IsaName(simd::ActiveIsa());
  const int threads = parallel::CpuThreads();
  const int baseline_runs = 2;
  const int throttle_runs = quick ? 5 : 8;
  // The EWMA needs ~7 clean runs (alpha 0.5) to decay a 2.5x correction
  // into the identity bucket at growth 1.05; keep the recovery phase past
  // that even in quick mode so the baseline snap-back fires.
  const int recovery_runs = quick ? 8 : 10;

  std::printf("adapt bench: config=pf isa=%s threads=%d %s\n", isa, threads,
              quick ? "(quick)" : "");

  // --- ramp ------------------------------------------------------------------
  const std::vector<std::string> families =
      quick ? std::vector<std::string>{"googlenet"}
            : std::vector<std::string>{"googlenet", "vgg16"};
  std::vector<RampRow> ramp_rows;
  std::vector<RampSummary> summaries;
  const SocSpec soc = MakeExynos7420();

  for (const std::string& family : families) {
    const Model model = MakeRampModel(family);
    ULayerRuntime::Options adaptive_opts;
    adaptive_opts.adapt.enabled = true;
    ULayerRuntime adaptive(model, soc, adaptive_opts);
    ULayerRuntime::Options static_opts;
    static_opts.degradation_replan = false;
    ULayerRuntime static_rt(model, soc, static_opts);
    ULayerRuntime control(model, soc);

    RampSummary sum;
    sum.model = family;
    const auto phase = [&](const char* name, const char* spec, int runs) {
      adaptive.SetFaultPlan(fault::FaultPlan::Parse(spec));
      static_rt.SetFaultPlan(fault::FaultPlan::Parse(spec));
      for (int i = 0; i < runs; ++i) {
        RampRow row;
        row.model = family;
        row.phase = name;
        row.run = i;
        row.adaptive_us = adaptive.Run().latency_us;
        row.static_us = static_rt.Run().latency_us;
        row.clean_us = control.Run().latency_us;
        row.deviation = adaptive.last_relative_deviation();
        ramp_rows.push_back(row);
      }
    };

    phase("baseline", "", baseline_runs);
    const size_t throttle_begin = adaptive.drift_history().size();
    phase("throttle", kThrottleSpec, throttle_runs);
    const size_t throttle_end = adaptive.drift_history().size();
    phase("recovery", "", recovery_runs);

    for (const RampRow& row : ramp_rows) {
      if (row.model != family) {
        continue;
      }
      if (row.phase == "throttle") {
        sum.adaptive_throttled_us += row.adaptive_us;
        sum.static_throttled_us += row.static_us;
      }
    }
    const RampRow& last = ramp_rows.back();
    sum.throttled_speedup = sum.adaptive_throttled_us > 0.0
                                ? sum.static_throttled_us / sum.adaptive_throttled_us
                                : 0.0;
    sum.final_deviation = adaptive.last_relative_deviation();
    sum.recovery_ratio = last.clean_us > 0.0 ? last.adaptive_us / last.clean_us : 0.0;
    sum.replans = adaptive.replans();
    const std::vector<double> throttle_devs(
        adaptive.drift_history().begin() + static_cast<long>(throttle_begin),
        adaptive.drift_history().begin() + static_cast<long>(throttle_end));
    sum.converged = VerifyDriftConvergence(throttle_devs, 0.05).ok();
    sum.recovered = sum.recovery_ratio <= 1.02;
    sum.beat_static = sum.adaptive_throttled_us < sum.static_throttled_us;
    sum.verify_ok = VerifyCorrectionTable(adaptive.predictor().corrections()).ok() &&
                    VerifyPlanCache(model.graph, adaptive.plan_cache(), adaptive.config()).ok();
    sum.corrections = adaptive.predictor().corrections().ToString();
    std::printf("  ramp  %-10s throttled: adaptive=%10.1fus static=%10.1fus (%.2fx)  "
                "final_dev=%.4f recovery=%.4fx replans=%d %s%s%s%s\n",
                family.c_str(), sum.adaptive_throttled_us, sum.static_throttled_us,
                sum.throttled_speedup, sum.final_deviation, sum.recovery_ratio, sum.replans,
                sum.beat_static ? "" : "STATIC-WON ", sum.converged ? "" : "NOT-CONVERGED ",
                sum.recovered ? "" : "NOT-RECOVERED ", sum.verify_ok ? "" : "VERIFY-FAIL");
    summaries.push_back(std::move(sum));
  }

  // --- cache accounting ------------------------------------------------------
  ULayerRuntime::Options cache_opts;
  cache_opts.adapt.enabled = true;
  cache_opts.adapt.bucket_growth = 2.0;  // Coarse: recovery rejoins baseline.
  const Model cache_model = MakeRampModel("googlenet");
  ULayerRuntime cache_rt(cache_model, soc, cache_opts);
  cache_rt.SetFaultPlan(fault::FaultPlan::Parse(kThrottleSpec));
  for (int i = 0; i < throttle_runs; ++i) {
    cache_rt.Run();
  }
  cache_rt.SetFaultPlan(fault::FaultPlan());
  for (int i = 0; i < recovery_runs; ++i) {
    cache_rt.Run();
  }
  const PlanCacheStats cache_stats = cache_rt.plan_cache().stats();
  const int64_t cache_builds = cache_rt.partitioner_builds();
  const bool cache_ok =
      cache_rt.replans() == static_cast<int>(cache_builds - 1 + cache_stats.hits) &&
      cache_stats.hits > 0;
  std::printf("  cache googlenet replans=%d builds=%lld hits=%lld misses=%lld evictions=%lld %s\n",
              cache_rt.replans(), static_cast<long long>(cache_builds),
              static_cast<long long>(cache_stats.hits), static_cast<long long>(cache_stats.misses),
              static_cast<long long>(cache_stats.evictions), cache_ok ? "" : "ACCOUNTING-FAIL");

  // --- functional digest: adaptation on/off ----------------------------------
  Model digest_model = MakeLeNet5();
  digest_model.MaterializeWeights();
  Tensor input(digest_model.graph.node(0).out_shape, DType::kF32);
  FillUniform(input, 0x5eed);
  ULayerRuntime::Options off_opts;
  off_opts.config = ExecConfig::AllF32();
  off_opts.faults = fault::FaultPlan::Parse(kThrottleSpec);
  ULayerRuntime digest_off(digest_model, soc, off_opts);
  ULayerRuntime::Options on_opts = off_opts;
  on_opts.adapt.enabled = true;
  ULayerRuntime digest_on(digest_model, soc, on_opts);
  bool digest_match = true;
  uint64_t digest = 0;
  for (int i = 0; i < 4; ++i) {
    const RunResult a = digest_off.Run(&input);
    const RunResult b = digest_on.Run(&input);
    const bool match =
        a.output.has_value() && b.output.has_value() &&
        a.output->SizeBytes() == b.output->SizeBytes() &&
        std::memcmp(a.output->raw(), b.output->raw(),
                    static_cast<size_t>(a.output->SizeBytes())) == 0;
    digest_match = digest_match && match;
    if (a.output.has_value()) {
      digest = Fnv1a64(a.output->raw(), static_cast<size_t>(a.output->SizeBytes()));
    }
  }
  std::printf("  digest lenet5 adapt on/off: %s (fnv=%016llx)\n",
              digest_match ? "identical" : "MISMATCH",
              static_cast<unsigned long long>(digest));

  bool ok = digest_match && cache_ok;
  for (const RampSummary& s : summaries) {
    ok = ok && s.beat_static && s.converged && s.recovered && s.verify_ok;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"schema\": \"ulayer-adapt-bench-v1\",\n  \"isa\": \"%s\",\n"
               "  \"quick\": %s,\n  \"threads\": %d,\n  \"config\": \"pf\",\n"
               "  \"throttle_spec\": \"%s\",\n  \"ramp\": [\n",
               isa, quick ? "true" : "false", threads, kThrottleSpec);
  for (size_t i = 0; i < ramp_rows.size(); ++i) {
    const RampRow& r = ramp_rows[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"phase\": \"%s\", \"run\": %d, "
                 "\"adaptive_us\": %.3f, \"static_us\": %.3f, \"clean_us\": %.3f, "
                 "\"deviation\": %.6f}%s\n",
                 r.model.c_str(), r.phase.c_str(), r.run, r.adaptive_us, r.static_us, r.clean_us,
                 r.deviation, i + 1 < ramp_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": [\n");
  for (size_t i = 0; i < summaries.size(); ++i) {
    const RampSummary& s = summaries[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"adaptive_throttled_us\": %.3f, "
                 "\"static_throttled_us\": %.3f, \"throttled_speedup\": %.4f, "
                 "\"final_deviation\": %.6f, \"recovery_ratio\": %.6f, \"replans\": %d, "
                 "\"beat_static\": %s, \"converged\": %s, \"recovered\": %s, "
                 "\"verify_ok\": %s, \"corrections\": \"%s\"}%s\n",
                 s.model.c_str(), s.adaptive_throttled_us, s.static_throttled_us,
                 s.throttled_speedup, s.final_deviation, s.recovery_ratio, s.replans,
                 s.beat_static ? "true" : "false", s.converged ? "true" : "false",
                 s.recovered ? "true" : "false", s.verify_ok ? "true" : "false",
                 s.corrections.c_str(), i + 1 < summaries.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"cache\": {\"replans\": %d, \"builds\": %lld, \"hits\": %lld, "
               "\"misses\": %lld, \"evictions\": %lld, \"accounting_ok\": %s},\n"
               "  \"digest\": {\"model\": \"lenet5\", \"match\": %s, \"fnv\": \"%016llx\"}\n}\n",
               cache_rt.replans(), static_cast<long long>(cache_builds),
               static_cast<long long>(cache_stats.hits),
               static_cast<long long>(cache_stats.misses),
               static_cast<long long>(cache_stats.evictions), cache_ok ? "true" : "false",
               digest_match ? "true" : "false", static_cast<unsigned long long>(digest));
  std::fclose(f);
  std::printf("wrote %s (%zu ramp rows, %zu summaries): %s\n", out_path.c_str(), ramp_rows.size(),
              summaries.size(), ok ? "ok" : "ACCEPTANCE VIOLATED");
  return ok ? 0 : 1;
}

}  // namespace ulayer

int main(int argc, char** argv) { return ulayer::Main(argc, argv); }
