// Sensitivity study: how much of ulayer's gain survives when the CPU/GPU
// balance changes? The paper's Section 3.1 premise is that mobile CPUs and
// GPUs are well-balanced; this sweep scales the GPU's throughput from 1/4x
// to 4x and measures ulayer's improvement over layer-to-processor at each
// point. Expected: the gain peaks near balance (ratio ~1) and decays as one
// processor dominates — exactly why the idea suits mobile SoCs but not
// discrete-GPU desktops.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ulayer {
namespace {

SocSpec ScaleGpu(SocSpec soc, double factor) {
  soc.gpu.gmacs_f32 *= factor;
  soc.gpu.gmacs_f16 *= factor;
  soc.gpu.gmacs_qu8 *= factor;
  soc.gpu.gb_per_s *= factor;
  return soc;
}

void PrintSweep() {
  benchutil::PrintHeader("Sensitivity: ulayer gain vs CPU/GPU balance",
                         "extension of Kim et al., EuroSys'19, Section 3.1 premise");
  const Model m = MakeGoogLeNet();
  std::printf("%-10s %14s %14s %12s %14s\n", "GPU scale", "GPU-F16 ms", "L2P-U8 ms", "uLayer ms",
              "gain vs L2P");
  for (const double f : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0}) {
    const SocSpec soc = ScaleGpu(MakeExynos7420(), f);
    const double gpu =
        RunSingleProcessor(m, soc, ProcKind::kGpu, ExecConfig::AllF16()).latency_us;
    const double l2p = RunLayerToProcessor(m, soc, ExecConfig::AllQU8()).latency_us;
    ULayerRuntime rt(m, soc);
    const double ul = rt.Run().latency_us;
    std::printf("%9.2fx %14.2f %14.2f %12.2f %+13.1f%%\n", f, gpu * 1e-3, l2p * 1e-3, ul * 1e-3,
                (l2p / ul - 1.0) * 100.0);
  }
  std::printf("\nNote: 'L2P' may itself use the GPU once the GPU dominates, so\n"
              "the gain decays rather than collapsing; the peak sits where the\n"
              "processors are balanced (the paper's mobile-SoC sweet spot).\n");
}

void BM_SweepPoint(benchmark::State& state) {
  const Model m = MakeGoogLeNet();
  const SocSpec soc = ScaleGpu(MakeExynos7420(), static_cast<double>(state.range(0)) / 4.0);
  for (auto _ : state) {
    ULayerRuntime rt(m, soc);
    benchmark::DoNotOptimize(rt.Run().latency_us);
  }
}
BENCHMARK(BM_SweepPoint)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
