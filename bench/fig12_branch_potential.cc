// Figure 12: potential latency benefit of branch distribution on the first
// Inception module of GoogLeNet (inception_3a) on the high-end SoC.
//
// Paper numbers: cooperative channel-split improves 52.1% over CPU-only;
// the optimal branch mapping reaches 6.3 ms (63.4% improvement).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ulayer {
namespace {

// inception_3a as a standalone model (input = GoogLeNet's pool2 output).
Model MakeInception3a() {
  Model m;
  m.name = "inception_3a";
  Graph& g = m.graph;
  const int in = g.AddInput(Shape(1, 192, 28, 28));
  const int b0 = g.AddConv("1x1", in, 64, 1, 1, 0, true);
  const int b1r = g.AddConv("3x3_reduce", in, 96, 1, 1, 0, true);
  const int b1 = g.AddConv("3x3", b1r, 128, 3, 1, 1, true);
  const int b2r = g.AddConv("5x5_reduce", in, 16, 1, 1, 0, true);
  const int b2 = g.AddConv("5x5", b2r, 32, 5, 1, 2, true);
  const int b3p = g.AddPool("pool", in, PoolKind::kMax, 3, 1, 1);
  const int b3 = g.AddConv("pool_proj", b3p, 32, 1, 1, 0, true);
  g.AddConcat("output", {b0, b1, b2, b3});
  return m;
}

void PrintFigure12() {
  benchutil::PrintHeader("Figure 12: branch distribution potential (inception_3a)",
                         "Kim et al., EuroSys'19, Figure 12 (Section 5)");
  const Model m = MakeInception3a();
  const SocSpec soc = MakeExynos7420();

  // CPU-only with 8-bit linear quantization (the figure's baseline).
  const double cpu_only =
      RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllQU8()).latency_ms();

  // Cooperative = channel-wise distribution + processor-friendly
  // quantization on every layer (no branch distribution).
  ULayerRuntime::Options coop_opts;
  coop_opts.partitioner.branch_distribution = false;
  const double coop = ULayerRuntime(m, soc, coop_opts).Run().latency_ms();

  // Cooperative (Optimal) = branch distribution: whole branches mapped to
  // processors by exhaustive enumeration.
  ULayerRuntime rt(m, soc);
  const double optimal = rt.Run().latency_ms();

  std::printf("%-28s %10s %16s\n", "mechanism", "ms", "vs CPU-only");
  std::printf("%-28s %10.2f %16s\n", "CPU-Only (QUInt8)", cpu_only, "-");
  std::printf("%-28s %10.2f %+15.1f%%\n", "Cooperative (ch-split)", coop,
              (cpu_only - coop) / cpu_only * 100.0);
  std::printf("%-28s %10.2f %+15.1f%%\n", "Cooperative (Optimal branch)", optimal,
              (cpu_only - optimal) / cpu_only * 100.0);
  std::printf("\npaper: Cooperative +52.1%%, Optimal +63.4%% (6.3 ms)\n");

  // Show the chosen branch-to-processor mapping.
  if (!rt.plan().branch_plans.empty()) {
    const BranchPlan& bp = rt.plan().branch_plans[0];
    std::printf("chosen mapping: ");
    for (size_t b = 0; b < bp.assignment.size(); ++b) {
      std::printf("branch%zu->%s ", b,
                  std::string(ProcKindName(bp.assignment[b])).c_str());
    }
    std::printf("\n");
  }
}

void BM_BranchEnumeration(benchmark::State& state) {
  const Model m = MakeInception3a();
  const SocSpec soc = MakeExynos7420();
  const TimingModel tm(soc);
  const ExecConfig cfg = ExecConfig::ProcessorFriendly();
  const LatencyPredictor pred(tm, cfg, {&m.graph});
  for (auto _ : state) {
    const Plan plan = Partitioner(m.graph, tm, cfg, pred).Build();
    benchmark::DoNotOptimize(plan.branch_plans.size());
  }
}
BENCHMARK(BM_BranchEnumeration);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintFigure12();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
