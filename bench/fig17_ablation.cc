// Figure 17: contribution of ulayer's three optimizations, applied
// incrementally — channel-wise workload distribution (Ch.Dist), processor-
// friendly quantization (+Proc.Quant), branch distribution (+Br.Dist) —
// normalized to the complete ulayer.
//
// Expected shape: Ch.Dist dominates for AlexNet (few large layers),
// Proc.Quant dominates for GoogLeNet (many small layers), Br.Dist helps
// only the branchy NNs (GoogLeNet, SqueezeNet).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ulayer {
namespace {

void PrintFigure17() {
  benchutil::PrintHeader("Figure 17: ablation of ulayer's optimizations",
                         "Kim et al., EuroSys'19, Figure 17 (Section 7.2)");
  const std::vector<Model> models = MakeEvaluationModels();
  for (const SocSpec& soc : benchutil::BothSocs()) {
    std::printf("\n--- %s (normalized to complete ulayer; 1.00 = full) ---\n",
                benchutil::SocLabel(soc));
    std::printf("%-16s %9s %12s %10s %12s\n", "network", "Ch.Dist", "+Proc.Quant", "+Br.Dist",
                "full ms");

    for (const Model& m : models) {
      ULayerRuntime::Options ch;  // Channel distribution only, both procs QUInt8.
      ch.config = ExecConfig::AllQU8();
      ch.partitioner.branch_distribution = false;

      ULayerRuntime::Options pq;  // + processor-friendly quantization.
      pq.config = ExecConfig::ProcessorFriendly();
      pq.partitioner.branch_distribution = false;

      ULayerRuntime::Options full;  // + branch distribution = complete ulayer.

      const double t_ch = ULayerRuntime(m, soc, ch).Run().latency_us;
      const double t_pq = ULayerRuntime(m, soc, pq).Run().latency_us;
      const double t_full = ULayerRuntime(m, soc, full).Run().latency_us;
      std::printf("%-16s %9.2f %12.2f %10.2f %12.1f\n", m.name.c_str(), t_ch / t_full,
                  t_pq / t_full, 1.0, t_full * 1e-3);
    }
  }
  std::printf("\nExpected shape: Ch.Dist column largest for AlexNet/VGG-16; the\n"
              "+Proc.Quant step largest for GoogLeNet; +Br.Dist only moves\n"
              "GoogLeNet and SqueezeNet (Table 1 applicability).\n");
}

void BM_PartitionerAblation(benchmark::State& state) {
  const Model m = MakeSqueezeNetV11();
  const SocSpec soc = MakeExynos7880();
  for (auto _ : state) {
    ULayerRuntime::Options o;
    o.partitioner.branch_distribution = state.range(0) != 0;
    ULayerRuntime rt(m, soc, o);
    benchmark::DoNotOptimize(rt.Run().latency_us);
  }
}
BENCHMARK(BM_PartitionerAblation)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintFigure17();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
