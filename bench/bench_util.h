// Shared helpers for the figure-reproduction benches. Each bench binary
// prints the rows/series of one paper table or figure (simulated SoC time),
// then runs a few google-benchmark measurements of the host-side runtime
// costs (planning, simulation) so `--benchmark_*` flags remain useful.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/runtime.h"
#include "models/model.h"
#include "parallel/thread_pool.h"

namespace ulayer::benchutil {

inline std::vector<SocSpec> BothSocs() { return {MakeExynos7420(), MakeExynos7880()}; }

inline const char* SocLabel(const SocSpec& soc) {
  return soc.name == "Exynos7420" ? "High-end (Exynos 7420)" : "Mid-range (Exynos 7880)";
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("(all latencies/energies are simulated SoC time; see DESIGN.md)\n");
  std::printf("CPU threads: %d (override with ULAYER_CPU_THREADS)\n", parallel::CpuThreads());
  std::printf("================================================================\n");
}

inline double GeoMean(const std::vector<double>& v) {
  double log_sum = 0.0;
  for (const double x : v) {
    log_sum += std::log(x);
  }
  return v.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(v.size()));
}

}  // namespace ulayer::benchutil
