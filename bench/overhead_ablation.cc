// Implementation study: the multi-processor management optimizations of
// Section 6 — asynchronous GPU command issuing and zero-copy shared
// CPU-GPU memory — ablated independently.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ulayer {
namespace {

void PrintAblation() {
  benchutil::PrintHeader("Overhead ablation: async issue and zero-copy memory",
                         "Kim et al., EuroSys'19, Section 6 (implementation)");
  for (const SocSpec& soc : benchutil::BothSocs()) {
    std::printf("\n--- %s (ms; normalized to full ulayer) ---\n", benchutil::SocLabel(soc));
    std::printf("%-16s %12s %12s %12s %12s | %8s\n", "network", "async+zc", "sync+zc",
                "async+copy", "sync+copy", "syncs");
    for (const Model& m : MakeEvaluationModels()) {
      double t[4];
      int syncs = 0;
      int i = 0;
      for (const bool async_issue : {true, false}) {
        for (const bool zero_copy : {true, false}) {
          ULayerRuntime::Options o;
          o.config.async_issue = async_issue;
          o.config.zero_copy = zero_copy;
          ULayerRuntime rt(m, soc, o);
          const RunResult r = rt.Run();
          t[i++] = r.latency_us;
          if (async_issue && zero_copy) {
            syncs = r.sync_count;
          }
        }
      }
      // Order produced above: (async,zc), (async,copy), (sync,zc), (sync,copy).
      std::printf("%-16s %12.2f %12.2f %12.2f %12.2f | %8d\n", m.name.c_str(), t[0] / t[0],
                  t[2] / t[0], t[1] / t[0], t[3] / t[0], syncs);
    }
  }
  std::printf("\nShape: both optimizations matter most for many-small-layer NNs\n"
              "(GoogLeNet/MobileNet); copies dominate for big-activation NNs.\n");
}

void BM_SimulatedRunZeroCopy(benchmark::State& state) {
  const Model m = MakeMobileNetV1();
  const SocSpec soc = MakeExynos7880();
  ULayerRuntime::Options o;
  o.config.zero_copy = state.range(0) != 0;
  ULayerRuntime rt(m, soc, o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.Run().latency_us);
  }
}
BENCHMARK(BM_SimulatedRunZeroCopy)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
