// Kernel microbenchmark: pre-PR kernels vs the blocked/cached kernels
// (DESIGN.md Section 9).
//
// Measures GemmQU8 / GemmF32 and the QUInt8 conv paths at representative
// layer shapes (AlexNet conv2, VGG-16 conv3_1, GoogLeNet inception 3a) on a
// single thread, comparing byte-for-byte-identical "legacy" replicas of the
// pre-optimization kernels (embedded below, copied from the previous
// implementation) against the current kernels fed the prepare-time caches
// and a scratch arena. Reports ns/op, effective GB/s and speedup, writes a
// machine-readable JSON summary, and exits non-zero if any optimized kernel
// fails to reproduce the legacy bytes.
//
// Flags:
//   --quick       1 trial x 1 iteration per case (CI smoke mode)
//   --out PATH    JSON output path (default: BENCH_kernels.json)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "kernels/conv.h"
#include "kernels/gemm.h"
#include "kernels/im2col.h"
#include "kernels/pack.h"
#include "kernels/simd.h"
#include "kernels/winograd.h"
#include "memory/arena.h"
#include "parallel/thread_pool.h"
#include "quant/half.h"
#include "quant/quantize.h"
#include "tensor/tensor.h"

namespace ulayer {
namespace legacy {

// The kernels below are verbatim replicas of the pre-optimization
// implementations (naive zero-point handling, per-call staging vectors).
// They are the baseline this benchmark compares against.

void GemmF32(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
             const float* bias, bool relu) {
  parallel::ParallelFor(
      0, m, parallel::GrainForOps(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        for (int64_t i = i_begin; i < i_end; ++i) {
          float* crow = c + i * n;
          const float b0 = bias != nullptr ? bias[i] : 0.0f;
          std::fill(crow, crow + n, b0);
          const float* arow = a + i * k;
          for (int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) {
              continue;
            }
            const float* brow = b + kk * n;
            for (int64_t j = 0; j < n; ++j) {
              crow[j] += av * brow[j];
            }
          }
          if (relu) {
            for (int64_t j = 0; j < n; ++j) {
              crow[j] = std::max(crow[j], 0.0f);
            }
          }
        }
      });
}

void GemmQU8(const uint8_t* a, int32_t a_zp, const uint8_t* b, int32_t b_zp, uint8_t* c,
             int32_t c_zp, const RequantScale& rs, int64_t m, int64_t n, int64_t k,
             const int32_t* bias, bool relu) {
  parallel::ParallelFor(
      0, m, parallel::GrainForOps(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        std::vector<int32_t> acc(static_cast<size_t>(n));
        for (int64_t i = i_begin; i < i_end; ++i) {
          const int32_t b0 = bias != nullptr ? bias[i] : 0;
          std::fill(acc.begin(), acc.end(), b0);
          const uint8_t* arow = a + i * k;
          for (int64_t kk = 0; kk < k; ++kk) {
            const int32_t av = static_cast<int32_t>(arow[kk]) - a_zp;
            if (av == 0) {
              continue;
            }
            const uint8_t* brow = b + kk * n;
            for (int64_t j = 0; j < n; ++j) {
              acc[static_cast<size_t>(j)] += av * (static_cast<int32_t>(brow[j]) - b_zp);
            }
          }
          uint8_t* crow = c + i * n;
          for (int64_t j = 0; j < n; ++j) {
            uint8_t q = RequantizeOne(acc[static_cast<size_t>(j)], rs, c_zp);
            if (relu && q < c_zp) {
              q = static_cast<uint8_t>(c_zp);
            }
            crow[j] = q;
          }
        }
      });
}

void Conv2DQU8(const Tensor& input, const Tensor& filters, const Tensor& bias,
               const Conv2DParams& p, Tensor& output) {
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  const int64_t k = fs.c * fs.h * fs.w;
  const int64_t spatial = int64_t{out_h} * out_w;
  std::vector<uint8_t> cols(static_cast<size_t>(k * spatial));

  const double real_mult = static_cast<double>(input.scale()) *
                           static_cast<double>(filters.scale()) /
                           static_cast<double>(output.scale());
  const RequantScale rs = ComputeRequantScale(real_mult);
  const uint8_t in_pad = static_cast<uint8_t>(input.zero_point());

  const int32_t* bias_ptr = bias.empty() ? nullptr : bias.Data<int32_t>();
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const uint8_t* img = input.Data<uint8_t>() + ni * is.c * is.h * is.w;
    Im2ColQU8(img, static_cast<int>(is.c), static_cast<int>(is.h), static_cast<int>(is.w), p,
              cols.data(), in_pad);
    uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, 0, 0, 0);
    legacy::GemmQU8(filters.Data<uint8_t>(), filters.zero_point(), cols.data(),
                    input.zero_point(), out, output.zero_point(), rs, fs.n, spatial, k, bias_ptr,
                    p.relu);
  }
}

// Frozen replica of the naive F16 GEMM: per-output-element, ascending-k Half
// accumulation. Bit-identical to the current kernels::GemmF16, but embedded
// so the via_f16 comparison keeps a fixed baseline when the live kernel is
// optimized — before this replica existed, Conv2DQU8ViaF16 below resolved to
// the live GemmF16 and the reported "speedup" was a self-comparison
// (~1.006x, noise).
void GemmF16(const Half* a, const Half* b, Half* c, int64_t m, int64_t n, int64_t k,
             const Half* bias, bool relu) {
  const Half zero(0.0f);
  parallel::ParallelFor(
      0, m, parallel::GrainForOps(static_cast<double>(n) * static_cast<double>(k)),
      [&](int64_t i_begin, int64_t i_end) {
        for (int64_t i = i_begin; i < i_end; ++i) {
          Half* crow = c + i * n;
          const Half b0 = bias != nullptr ? bias[i] : zero;
          const Half* arow = a + i * k;
          for (int64_t j = 0; j < n; ++j) {
            Half acc = b0;
            for (int64_t kk = 0; kk < k; ++kk) {
              acc += arow[kk] * b[kk * n + j];
            }
            if (relu && acc < zero) {
              acc = zero;
            }
            crow[j] = acc;
          }
        }
      });
}

void Conv2DQU8ViaF16(const Tensor& input, const Tensor& filters, const Tensor& bias,
                     const Conv2DParams& p, Tensor& output) {
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  const QuantParams in_qp{input.scale(), input.zero_point()};
  const QuantParams w_qp{filters.scale(), filters.zero_point()};
  const QuantParams out_qp{output.scale(), output.zero_point()};
  const int64_t k = fs.c * fs.h * fs.w;
  const int64_t spatial = int64_t{out_h} * out_w;

  // Per-call operand conversion: the cost the prepare-time F16 caches remove.
  std::vector<Half> w16(static_cast<size_t>(fs.n * k));
  const uint8_t* wq = filters.Data<uint8_t>();
  for (size_t i = 0; i < w16.size(); ++i) {
    w16[i] = Half(w_qp.Dequantize(wq[i]));
  }
  std::vector<Half> bias16(static_cast<size_t>(fs.n));
  if (!bias.empty()) {
    const float* bp = bias.Data<float>();
    for (size_t i = 0; i < bias16.size(); ++i) {
      bias16[i] = Half(bp[i]);
    }
  }

  std::vector<Half> img16(static_cast<size_t>(is.c * is.h * is.w));
  std::vector<Half> cols(static_cast<size_t>(k * spatial));
  std::vector<Half> out16(static_cast<size_t>(fs.n * spatial));
  for (int64_t ni = 0; ni < is.n; ++ni) {
    const uint8_t* img = input.Data<uint8_t>() + ni * is.c * is.h * is.w;
    parallel::ParallelFor(0, static_cast<int64_t>(img16.size()), parallel::GrainForOps(1.0),
                          [&](int64_t b, int64_t e) {
                            for (int64_t i = b; i < e; ++i) {
                              img16[static_cast<size_t>(i)] = Half(in_qp.Dequantize(img[i]));
                            }
                          });
    Im2ColF16(img16.data(), static_cast<int>(is.c), static_cast<int>(is.h),
              static_cast<int>(is.w), p, cols.data());
    legacy::GemmF16(w16.data(), cols.data(), out16.data(), fs.n, spatial, k,
                    bias.empty() ? nullptr : bias16.data(), p.relu);
    uint8_t* out = output.Data<uint8_t>() + output.shape().Offset(ni, 0, 0, 0);
    parallel::ParallelFor(0, static_cast<int64_t>(out16.size()), parallel::GrainForOps(1.0),
                          [&](int64_t b, int64_t e) {
                            for (int64_t i = b; i < e; ++i) {
                              out[i] = out_qp.Quantize(out16[static_cast<size_t>(i)].ToFloat());
                            }
                          });
  }
}

// Frozen replica of the pre-SIMD Winograd F(2x2,3x3) conv: identical
// transforms, scalar element-wise multiply-accumulate in the transform
// domain. Bit-identical to the live kernel (the micro-kernel preserves the
// per-lane ascending-c order), embedded so the comparison keeps a fixed
// baseline.
namespace wino {

void TransformFilter(const float* g, float* u) {
  float t[4][3];
  for (int c = 0; c < 3; ++c) {
    const float g0 = g[0 * 3 + c], g1 = g[1 * 3 + c], g2 = g[2 * 3 + c];
    t[0][c] = g0;
    t[1][c] = 0.5f * (g0 + g1 + g2);
    t[2][c] = 0.5f * (g0 - g1 + g2);
    t[3][c] = g2;
  }
  for (int r = 0; r < 4; ++r) {
    const float t0 = t[r][0], t1 = t[r][1], t2 = t[r][2];
    u[r * 4 + 0] = t0;
    u[r * 4 + 1] = 0.5f * (t0 + t1 + t2);
    u[r * 4 + 2] = 0.5f * (t0 - t1 + t2);
    u[r * 4 + 3] = t2;
  }
}

void TransformInput(const float d[4][4], float* v) {
  float t[4][4];
  for (int c = 0; c < 4; ++c) {
    t[0][c] = d[0][c] - d[2][c];
    t[1][c] = d[1][c] + d[2][c];
    t[2][c] = d[2][c] - d[1][c];
    t[3][c] = d[1][c] - d[3][c];
  }
  for (int r = 0; r < 4; ++r) {
    v[r * 4 + 0] = t[r][0] - t[r][2];
    v[r * 4 + 1] = t[r][1] + t[r][2];
    v[r * 4 + 2] = t[r][2] - t[r][1];
    v[r * 4 + 3] = t[r][1] - t[r][3];
  }
}

void TransformOutput(const float* m, float y[2][2]) {
  float t[2][4];
  for (int c = 0; c < 4; ++c) {
    t[0][c] = m[0 * 4 + c] + m[1 * 4 + c] + m[2 * 4 + c];
    t[1][c] = m[1 * 4 + c] - m[2 * 4 + c] - m[3 * 4 + c];
  }
  for (int r = 0; r < 2; ++r) {
    y[r][0] = t[r][0] + t[r][1] + t[r][2];
    y[r][1] = t[r][1] - t[r][2] - t[r][3];
  }
}

}  // namespace wino

void WinogradConv2DF32(const Tensor& input, const Tensor& filters, const Tensor& bias,
                       const Conv2DParams& p, Tensor& output) {
  const Shape& is = input.shape();
  const Shape& fs = filters.shape();
  const int out_h = p.OutH(static_cast<int>(is.h));
  const int out_w = p.OutW(static_cast<int>(is.w));
  const int64_t ic = is.c;
  std::vector<float> u(static_cast<size_t>(fs.n * ic * 16));
  for (int64_t oc = 0; oc < fs.n; ++oc) {
    for (int64_t c = 0; c < ic; ++c) {
      wino::TransformFilter(filters.Data<float>() + fs.Offset(oc, c, 0, 0),
                            u.data() + (oc * ic + c) * 16);
    }
  }
  const int tiles_h = (out_h + 1) / 2;
  const int tiles_w = (out_w + 1) / 2;
  const double ops_per_oc =
      static_cast<double>(tiles_h) * tiles_w * static_cast<double>(ic) * 16.0;
  parallel::ParallelFor(0, fs.n, parallel::GrainForOps(ops_per_oc), [&](int64_t ob,
                                                                        int64_t oe) {
    std::vector<float> v(static_cast<size_t>(ic) * 16);
    for (int64_t ni = 0; ni < is.n; ++ni) {
      for (int th = 0; th < tiles_h; ++th) {
        for (int tw = 0; tw < tiles_w; ++tw) {
          const int ih0 = th * 2 - p.pad_h;
          const int iw0 = tw * 2 - p.pad_w;
          for (int64_t c = 0; c < ic; ++c) {
            float d[4][4];
            const float* in_c = input.Data<float>() + is.Offset(ni, c, 0, 0);
            for (int r = 0; r < 4; ++r) {
              for (int cc = 0; cc < 4; ++cc) {
                const int ih = ih0 + r;
                const int iw = iw0 + cc;
                d[r][cc] = (ih < 0 || ih >= is.h || iw < 0 || iw >= is.w)
                               ? 0.0f
                               : in_c[ih * is.w + iw];
              }
            }
            wino::TransformInput(d, v.data() + c * 16);
          }
          for (int64_t oc = ob; oc < oe; ++oc) {
            float m[16] = {};
            const float* u_oc = u.data() + oc * ic * 16;
            for (int64_t c = 0; c < ic; ++c) {
              const float* uc = u_oc + c * 16;
              const float* vc = v.data() + c * 16;
              for (int kidx = 0; kidx < 16; ++kidx) {
                m[kidx] += uc[kidx] * vc[kidx];
              }
            }
            float y[2][2];
            wino::TransformOutput(m, y);
            const float b0 = bias.empty() ? 0.0f : bias.Data<float>()[oc];
            float* out = output.Data<float>() + output.shape().Offset(ni, oc, 0, 0);
            for (int r = 0; r < 2; ++r) {
              const int oh = th * 2 + r;
              if (oh >= out_h) {
                continue;
              }
              for (int cc = 0; cc < 2; ++cc) {
                const int ow = tw * 2 + cc;
                if (ow >= out_w) {
                  continue;
                }
                float val = y[r][cc] + b0;
                if (p.relu) {
                  val = std::max(val, 0.0f);
                }
                out[oh * out_w + ow] = val;
              }
            }
          }
        }
      }
    }
  });
}

}  // namespace legacy

namespace {

struct ConvCase {
  const char* name;
  int64_t ic, hw, oc;
  int kernel, pad;
};

// Representative layers from the paper's workload set.
constexpr ConvCase kCases[] = {
    {"alexnet_conv2", 96, 31, 256, 5, 0},      // k=2400, spatial=729
    {"vgg16_conv3_1", 128, 56, 256, 3, 1},     // k=1152, spatial=3136
    {"googlenet_3a_3x3", 96, 28, 128, 3, 1},   // k=864,  spatial=784
};

// Quantized conv operands plus every prepare-time cache, built the same way
// PreparedModel builds them.
struct Operands {
  Conv2DParams p;
  Tensor in_q, w_q, bias_i32, bias_f32;
  QuantParams out_qp;
  RequantScale rs;
  std::vector<int32_t> rowsum;
  std::vector<Half> w16, b16;
  std::vector<uint8_t> w_packed_q;  // Packed filter panels (kernels/pack.h),
  std::vector<Half> w_packed_16;    // as PreparedModel caches them.
  int64_t m, n, k;

  explicit Operands(const ConvCase& c, uint64_t seed) {
    p.kernel_h = p.kernel_w = c.kernel;
    p.pad_h = p.pad_w = c.pad;
    p.relu = true;
    Tensor in(Shape(1, c.ic, c.hw, c.hw), DType::kF32);
    Tensor w(Shape(c.oc, c.ic, c.kernel, c.kernel), DType::kF32);
    bias_f32 = Tensor(Shape(1, c.oc, 1, 1), DType::kF32);
    FillUniform(in, seed, -1.0f, 1.0f);
    FillUniform(w, seed + 1, -0.4f, 0.4f);
    FillUniform(bias_f32, seed + 2, -0.2f, 0.2f);
    const QuantParams in_qp = ChooseQuantParams(-1.0f, 1.0f);
    const QuantParams w_qp = ChooseQuantParams(-0.4f, 0.4f);
    in_q = QuantizeTensor(in, in_qp);
    w_q = QuantizeTensor(w, w_qp);
    bias_i32 = Tensor(bias_f32.shape(), DType::kInt32);
    for (int64_t i = 0; i < bias_f32.NumElements(); ++i) {
      bias_i32.Data<int32_t>()[i] = static_cast<int32_t>(
          std::lround(bias_f32.Data<float>()[i] / (in_qp.scale * w_qp.scale)));
    }
    out_qp = ChooseQuantParams(-8.0f, 8.0f);
    rs = ComputeRequantScale(static_cast<double>(in_qp.scale) *
                             static_cast<double>(w_qp.scale) /
                             static_cast<double>(out_qp.scale));
    m = c.oc;
    k = int64_t{c.ic} * c.kernel * c.kernel;
    n = int64_t{p.OutH(static_cast<int>(c.hw))} * p.OutW(static_cast<int>(c.hw));
    rowsum.resize(static_cast<size_t>(m));
    for (int64_t oc = 0; oc < m; ++oc) {
      int32_t raw = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        raw += static_cast<int32_t>(w_q.Data<uint8_t>()[oc * k + kk]);
      }
      rowsum[static_cast<size_t>(oc)] = raw;
    }
    w16.resize(static_cast<size_t>(w_q.NumElements()));
    for (int64_t i = 0; i < w_q.NumElements(); ++i) {
      w16[static_cast<size_t>(i)] = Half(w_qp.Dequantize(w_q.Data<uint8_t>()[i]));
    }
    b16.resize(static_cast<size_t>(bias_f32.NumElements()));
    for (int64_t i = 0; i < bias_f32.NumElements(); ++i) {
      b16[static_cast<size_t>(i)] = Half(bias_f32.Data<float>()[i]);
    }
    w_packed_q.resize(static_cast<size_t>(PackedPanelElems(m, k)));
    PackRowPanels(w_q.Data<uint8_t>(), m, k, w_packed_q.data());
    w_packed_16.resize(static_cast<size_t>(PackedPanelElems(m, k)));
    PackRowPanels(w16.data(), m, k, w_packed_16.data());
  }

  Tensor MakeOut() const {
    const Shape& is = in_q.shape();
    Tensor out(Shape(1, m, p.OutH(static_cast<int>(is.h)), p.OutW(static_cast<int>(is.w))),
               DType::kQUInt8);
    out.set_quant_params(out_qp.scale, out_qp.zero_point);
    return out;
  }

  ConvAux IntAux(memory::ScratchArena* arena) const {
    ConvAux aux;
    aux.scratch = arena;
    aux.requant = &rs;
    aux.filter_rowsum = rowsum.data();
    aux.filters_packed_qu8 = w_packed_q.data();
    return aux;
  }

  ConvAux F16Aux(memory::ScratchArena* arena) const {
    ConvAux aux;
    aux.scratch = arena;
    aux.filters_f16 = w16.data();
    aux.bias_f16 = b16.data();
    aux.filters_packed_f16 = w_packed_16.data();
    return aux;
  }
};

// Minimum wall time of `iters` consecutive calls across `trials` timed runs
// (one untimed warmup), in ns per call.
double BestNsPerCall(const std::function<void()>& fn, int iters, int trials) {
  fn();
  double best = 1e30;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
        iters;
    best = std::min(best, ns);
  }
  return best;
}

struct Result {
  std::string name;
  int64_t m, n, k;
  int64_t bytes;  // Raw bytes moved per call — gbps without precision loss.
  double legacy_ns, new_ns, speedup, gbps;
  bool identical;
};

void FillBytes(std::vector<uint8_t>& v, uint64_t seed) {
  uint64_t s = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (auto& b : v) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    b = static_cast<uint8_t>(s >> 56);
  }
}

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  using namespace ulayer;
  bool quick = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  // Single-thread: the kernels under test are the per-core primitives; thread
  // scaling is benchmarked elsewhere (fig05/fig16).
  parallel::SetCpuThreads(1);
  const char* isa = simd::IsaName(simd::ActiveIsa());
  std::printf("simd isa: %s\n", isa);

  // Quick mode still takes the min of two trials: single-shot timings on a
  // busy CI machine are too noisy to gate on.
  const int iters = quick ? 1 : 3;
  const int trials = quick ? 2 : 3;
  std::vector<Result> results;

  const auto record = [&](const std::string& name, int64_t m, int64_t n, int64_t k,
                          int64_t bytes, double legacy_ns, double new_ns, bool identical) {
    Result r;
    r.name = name;
    r.m = m;
    r.n = n;
    r.k = k;
    r.bytes = bytes;
    r.legacy_ns = legacy_ns;
    r.new_ns = new_ns;
    r.speedup = legacy_ns / new_ns;
    r.gbps = static_cast<double>(bytes) / new_ns;  // bytes/ns == GB/s
    r.identical = identical;
    results.push_back(r);
    std::printf("%-28s m=%-4lld n=%-5lld k=%-5lld  legacy %10.0f ns  new %10.0f ns  "
                "speedup %5.2fx  %8.4g GB/s  %s\n",
                name.c_str(), static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k), legacy_ns, new_ns, r.speedup, r.gbps,
                identical ? "bytes-identical" : "MISMATCH");
  };

  for (const ConvCase& c : kCases) {
    const Operands ops(c, 1000 + static_cast<uint64_t>(&c - kCases));
    const int64_t m = ops.m, n = ops.n, k = ops.k;

    // --- GemmQU8: naive zero-point formulation vs blocked row-sum hoist.
    {
      std::vector<uint8_t> b(static_cast<size_t>(k * n));
      FillBytes(b, 77);
      std::vector<uint8_t> c_legacy(static_cast<size_t>(m * n));
      std::vector<uint8_t> c_new(static_cast<size_t>(m * n));
      const uint8_t* a = ops.w_q.Data<uint8_t>();
      const int32_t a_zp = ops.w_q.zero_point();
      const int32_t b_zp = 5, c_zp = 3;
      const int32_t* bias = ops.bias_i32.Data<int32_t>();
      const double legacy_ns = BestNsPerCall(
          [&] {
            legacy::GemmQU8(a, a_zp, b.data(), b_zp, c_legacy.data(), c_zp, ops.rs, m, n, k,
                            bias, true);
          },
          iters, trials);
      const double new_ns = BestNsPerCall(
          [&] {
            GemmQU8(a, a_zp, b.data(), b_zp, c_new.data(), c_zp, ops.rs, m, n, k, bias, true,
                    ops.rowsum.data(), ops.w_packed_q.data());
          },
          iters, trials);
      const bool same = std::memcmp(c_legacy.data(), c_new.data(), c_new.size()) == 0;
      record(std::string("gemm_qu8_") + c.name, m, n, k, m * k + k * n + m * n, legacy_ns,
             new_ns, same);
    }

    // --- GemmF32: naive full-row streaming vs column-blocked (bit-identical).
    {
      std::vector<float> a(static_cast<size_t>(m * k)), b(static_cast<size_t>(k * n));
      std::vector<float> c_legacy(static_cast<size_t>(m * n)), c_new(static_cast<size_t>(m * n));
      Tensor af(Shape(1, 1, m, k), DType::kF32), bf(Shape(1, 1, k, n), DType::kF32);
      FillUniform(af, 31, -1.0f, 1.0f);
      FillUniform(bf, 32, -1.0f, 1.0f);
      std::memcpy(a.data(), af.Data<float>(), a.size() * sizeof(float));
      std::memcpy(b.data(), bf.Data<float>(), b.size() * sizeof(float));
      std::vector<float> a_packed(static_cast<size_t>(PackedPanelElems(m, k)));
      PackRowPanels(a.data(), m, k, a_packed.data());
      const double legacy_ns = BestNsPerCall(
          [&] { legacy::GemmF32(a.data(), b.data(), c_legacy.data(), m, n, k, nullptr, true); },
          iters, trials);
      const double new_ns = BestNsPerCall(
          [&] {
            GemmF32(a.data(), b.data(), c_new.data(), m, n, k, nullptr, true, a_packed.data());
          },
          iters, trials);
      const bool same =
          std::memcmp(c_legacy.data(), c_new.data(), c_new.size() * sizeof(float)) == 0;
      record(std::string("gemm_f32_") + c.name, m, n, k, (m * k + k * n + m * n) * 4,
             legacy_ns, new_ns, same);
    }

    // --- Conv2DQU8 end to end: per-call requant/rowsum/heap vs cached + arena.
    {
      Tensor out_legacy = ops.MakeOut();
      Tensor out_new = ops.MakeOut();
      memory::ScratchArena arena(static_cast<size_t>(
          Conv2DScratchBytes(DType::kQUInt8, DType::kQUInt8, ops.in_q.shape(), ops.w_q.shape(),
                             ops.p)));
      const ConvAux aux = ops.IntAux(&arena);
      const double legacy_ns = BestNsPerCall(
          [&] { legacy::Conv2DQU8(ops.in_q, ops.w_q, ops.bias_i32, ops.p, out_legacy); }, iters,
          trials);
      const double new_ns = BestNsPerCall(
          [&] {
            arena.Reset();
            Conv2DQU8(ops.in_q, ops.w_q, ops.bias_i32, ops.p, out_new, 0, -1, aux);
          },
          iters, trials);
      const bool same = std::memcmp(out_legacy.raw(), out_new.raw(),
                                    static_cast<size_t>(out_new.SizeBytes())) == 0;
      record(std::string("conv_qu8_") + c.name, m, n, k, m * k + k * n + m * n, legacy_ns,
             new_ns, same);
    }
  }

  // --- Conv2DQU8ViaF16 (the GPU-emulation path): per-call F16 operand
  // conversion vs prepare-time caches. One shape; software-F16 arithmetic
  // dominates, so the interesting signal is the removed conversion overhead.
  {
    const ConvCase& c = kCases[2];  // googlenet_3a_3x3
    const Operands ops(c, 2000);
    Tensor out_legacy = ops.MakeOut();
    Tensor out_new = ops.MakeOut();
    memory::ScratchArena arena(static_cast<size_t>(
        Conv2DScratchBytes(DType::kQUInt8, DType::kF16, ops.in_q.shape(), ops.w_q.shape(),
                           ops.p)));
    const ConvAux aux = ops.F16Aux(&arena);
    const double legacy_ns = BestNsPerCall(
        [&] { legacy::Conv2DQU8ViaF16(ops.in_q, ops.w_q, ops.bias_f32, ops.p, out_legacy); }, 1,
        quick ? 1 : 2);
    const double new_ns = BestNsPerCall(
        [&] {
          arena.Reset();
          Conv2DQU8ViaF16(ops.in_q, ops.w_q, ops.bias_f32, ops.p, out_new, 0, -1, aux);
        },
        1, quick ? 1 : 2);
    const bool same = std::memcmp(out_legacy.raw(), out_new.raw(),
                                  static_cast<size_t>(out_new.SizeBytes())) == 0;
    record(std::string("conv_qu8_via_f16_") + c.name, ops.m, ops.n, ops.k,
           ops.m * ops.k + ops.k * ops.n + ops.m * ops.n, legacy_ns, new_ns, same);
  }

  // --- Winograd F(2x2,3x3): scalar transform-domain MAC vs the wino_madd
  // micro-kernel. F32 end to end (Winograd runs only in the F32 flavor).
  {
    const ConvCase& c = kCases[2];  // googlenet_3a_3x3: 3x3 stride-1 pad-1
    Conv2DParams p;
    p.kernel_h = p.kernel_w = c.kernel;
    p.pad_h = p.pad_w = c.pad;
    p.relu = true;
    Tensor in(Shape(1, c.ic, c.hw, c.hw), DType::kF32);
    Tensor w(Shape(c.oc, c.ic, c.kernel, c.kernel), DType::kF32);
    Tensor bias(Shape(1, c.oc, 1, 1), DType::kF32);
    FillUniform(in, 41, -1.0f, 1.0f);
    FillUniform(w, 42, -0.4f, 0.4f);
    FillUniform(bias, 43, -0.2f, 0.2f);
    const Shape os(1, c.oc, p.OutH(c.hw), p.OutW(c.hw));
    Tensor out_legacy(os, DType::kF32);
    Tensor out_new(os, DType::kF32);
    const int64_t m = c.oc;
    const int64_t k = int64_t{c.ic} * c.kernel * c.kernel;
    const int64_t n = os.h * os.w;
    const double legacy_ns = BestNsPerCall(
        [&] { legacy::WinogradConv2DF32(in, w, bias, p, out_legacy); }, 1, quick ? 2 : 3);
    const double new_ns = BestNsPerCall(
        [&] { WinogradConv2DF32(in, w, bias, p, out_new); }, 1, quick ? 2 : 3);
    const bool same = std::memcmp(out_legacy.raw(), out_new.raw(),
                                  static_cast<size_t>(out_new.SizeBytes())) == 0;
    record(std::string("winograd_f32_") + c.name, m, n, k, (m * k + k * n + m * n) * 4,
           legacy_ns, new_ns, same);
  }

  // JSON summary.
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"schema\": \"ulayer-kernel-bench-v2\",\n  \"isa\": \"%s\",\n"
                  "  \"quick\": %s,\n  \"threads\": 1,\n  \"results\": [\n",
               isa, quick ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    // %.6g for gbps: %.3f truncated slow (software-F16) kernels to 0.000.
    // Each row repeats the run provenance (isa/quick/threads) so rows stay
    // self-describing when results from different runs are merged.
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
                 "\"bytes\": %lld, \"legacy_ns\": %.0f, \"new_ns\": %.0f, "
                 "\"speedup\": %.3f, \"gbps\": %.6g, \"bytes_identical\": %s, "
                 "\"isa\": \"%s\", \"quick\": %s, \"threads\": 1}%s\n",
                 r.name.c_str(), static_cast<long long>(r.m), static_cast<long long>(r.n),
                 static_cast<long long>(r.k), static_cast<long long>(r.bytes), r.legacy_ns,
                 r.new_ns, r.speedup, r.gbps, r.identical ? "true" : "false", isa,
                 quick ? "true" : "false", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  for (const Result& r : results) {
    if (!r.identical) {
      std::fprintf(stderr, "FAIL: %s output differs from the legacy kernel\n", r.name.c_str());
      return 1;
    }
  }
  return 0;
}
