// Figure 16: NN execution latency of the single-processor mechanism, the
// layer-to-processor mechanism (state of the art), and ulayer — both SoCs,
// all five evaluation NNs — normalized to layer-to-processor.
//
// Paper headline: ulayer improves speed by up to 59.9% (high-end) and 69.6%
// (mid-range), geometric means 30.5% / 35.3%.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ulayer {
namespace {

void PrintFigure16() {
  benchutil::PrintHeader("Figure 16: ulayer vs single-processor and layer-to-processor",
                         "Kim et al., EuroSys'19, Figure 16 (Section 7.2)");
  const std::vector<Model> models = MakeEvaluationModels();
  for (const SocSpec& soc : benchutil::BothSocs()) {
    std::printf("\n--- %s (latency normalized to layer-to-processor) ---\n",
                benchutil::SocLabel(soc));
    std::printf("%-16s %9s %9s %9s %9s | %10s %12s\n", "network", "CPU-U8", "GPU-F16", "L2P-U8",
                "uLayer", "uLayer ms", "speed +%");
    std::vector<double> speedups;
    for (const Model& m : models) {
      const double cpu =
          RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllQU8()).latency_us;
      const double gpu =
          RunSingleProcessor(m, soc, ProcKind::kGpu, ExecConfig::AllF16()).latency_us;
      const double l2p = RunLayerToProcessor(m, soc, ExecConfig::AllQU8()).latency_us;
      ULayerRuntime rt(m, soc);
      const double ul = rt.Run().latency_us;
      speedups.push_back(l2p / ul);
      std::printf("%-16s %9.2f %9.2f %9.2f %9.2f | %10.1f %+11.1f%%\n", m.name.c_str(),
                  cpu / l2p, gpu / l2p, 1.0, ul / l2p, ul * 1e-3, (l2p / ul - 1.0) * 100.0);
    }
    std::printf("geomean speed improvement over layer-to-processor: %+.1f%%  "
                "(paper: %s)\n",
                (benchutil::GeoMean(speedups) - 1.0) * 100.0,
                soc.name == "Exynos7420" ? "+30.5% geomean, up to +59.9%"
                                         : "+35.3% geomean, up to +69.6%");
  }
}

void BM_FullULayerPipeline(benchmark::State& state) {
  const Model m = MakeGoogLeNet();
  const SocSpec soc = MakeExynos7420();
  for (auto _ : state) {
    ULayerRuntime rt(m, soc);  // Predictor fit + partitioning + simulation.
    benchmark::DoNotOptimize(rt.Run().latency_us);
  }
}
BENCHMARK(BM_FullULayerPipeline);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintFigure16();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
