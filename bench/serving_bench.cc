// Serving-layer load bench: throughput vs p99 under rising offered load
// (DESIGN.md Section 14).
//
// Open-loop load generator over the multi-tenant serving layer (src/serve):
// for each scenario (single-model and mixed-zoo) it generates deterministic
// request traces at offered loads swept as multiples of the batch=1
// saturation rate, replays each trace through two server configurations —
// batch assembly enabled (batch sizes 1/2/4/8) and forced batch=1 — and
// reports throughput, exact p50/p99 latency over completed requests, shed
// fraction and mean batch size. Also reports raw batch efficiency per model
// (service_us(N) vs N x service_us(1)): the batching win is weight-traffic +
// per-step launch/sync amortization, so overhead- and FC-dominated networks
// (LeNet-5, AlexNet at reduced resolution) gain the most while
// conv-dominated full-resolution networks gain least — both are reported.
//
// Timing is the simulated SoC (simulate-only runs; no tensor math), so the
// bench is deterministic across hosts and thread counts.
//
// Flags:
//   --quick       fewer loads x smaller traces (CI smoke mode)
//   --out PATH    JSON output path (default: BENCH_serving.json)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "kernels/simd.h"
#include "parallel/thread_pool.h"
#include "serve/request.h"
#include "serve/server.h"
#include "soc/spec.h"

namespace ulayer {
namespace {

struct Scenario {
  std::string name;
  std::vector<std::string> models;
  int image_hw = 0;  // 0 = family default resolution.
};

struct EffRow {
  std::string model;
  int image_hw = 0;
  int batch = 0;
  double service_us = 0.0;
  double speedup = 0.0;  // batch * service_us(1) / service_us(batch)
};

struct Row {
  std::string scenario;
  std::string mode;  // "batched" | "batch1"
  double load_x = 0.0;
  double offered_rps = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double shed_fraction = 0.0;
  double mean_batch = 0.0;
  int64_t completed = 0;
  int64_t shed = 0;
};

serve::ServerOptions MakeOptions(const Scenario& sc, bool batched) {
  serve::ServerOptions opts;
  opts.cache.batch_sizes = batched ? std::vector<int>{1, 2, 4, 8} : std::vector<int>{1};
  opts.cache.lanes = 2;
  opts.cache.functional = false;
  opts.cache.image_hw = sc.image_hw;
  opts.queue_capacity = 64;
  opts.admission_control = true;
  return opts;
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const char* isa = simd::IsaName(simd::ActiveIsa());
  const int threads = parallel::CpuThreads();
  const SocSpec soc = MakeExynos7420();
  const ExecConfig config = ExecConfig::ProcessorFriendly();

  // LeNet-5 (launch/sync-overhead-dominated) and AlexNet@64 (FC-weight-
  // dominated) are the headline batching scenarios; AlexNet@112 and the
  // mixed zoo sit closer to the conv-dominated regime where per-element MACs
  // scale with N and batching buys less — reported as-is.
  const std::vector<Scenario> scenarios = {
      {"lenet5", {"lenet5"}, 0},
      {"alexnet64", {"alexnet"}, 64},
      {"alexnet112", {"alexnet"}, 112},
      {"mixed112", {"lenet5", "alexnet", "squeezenet"}, 112},
  };
  const std::vector<double> loads =
      quick ? std::vector<double>{1.0, 4.0}
            : std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  const int num_requests = quick ? 200 : 2000;

  std::vector<EffRow> eff;
  std::set<std::string> eff_seen;  // Mixed scenarios repeat (model, hw) pairs.
  std::vector<Row> rows;

  std::printf("serving bench: soc=exynos7420 config=pf isa=%s threads=%d %s\n", isa, threads,
              quick ? "(quick)" : "");
  for (size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& sc = scenarios[si];
    serve::Server batched(soc, config, MakeOptions(sc, true));
    serve::Server batch1(soc, config, MakeOptions(sc, false));
    for (const std::string& m : sc.models) {
      batched.RegisterModel(m);
      batch1.RegisterModel(m);
    }

    // Batch efficiency per model (batched server's prepared entries).
    double service1_sum = 0.0;
    double service1_max = 0.0;
    for (const std::string& m : sc.models) {
      const double s1 = batched.cache().ServiceUs(m, 1);
      service1_sum += s1;
      service1_max = std::max(service1_max, s1);
      const bool fresh =
          eff_seen.insert(m + ":" + std::to_string(sc.image_hw)).second;
      for (int b : batched.cache().batch_sizes()) {
        EffRow e;
        e.model = m;
        e.image_hw = sc.image_hw;
        e.batch = b;
        e.service_us = batched.cache().ServiceUs(m, b);
        e.speedup = static_cast<double>(b) * s1 / e.service_us;
        if (fresh) {
          std::printf("  %-12s b=%-2d service=%10.1fus speedup=%5.2fx\n", m.c_str(), b,
                      e.service_us, e.speedup);
          eff.push_back(std::move(e));
        }
      }
    }
    const double service_mean = service1_sum / static_cast<double>(sc.models.size());
    const double base_rps = 1e6 / service_mean;  // batch=1 saturation rate.

    for (double load : loads) {
      serve::TraceSpec spec;
      spec.seed = 42 + si;
      spec.num_requests = num_requests;
      spec.duration_us = static_cast<double>(num_requests) * service_mean / load;
      spec.models = sc.models;
      spec.sessions = 8;
      spec.interactive_fraction = 0.5;
      spec.interactive_deadline_us = 10.0 * service1_max;
      spec.batch_deadline_us = 50.0 * service1_max;
      const std::vector<serve::Request> trace = serve::GenerateTrace(spec);

      for (int mode = 0; mode < 2; ++mode) {
        serve::Server& server = mode == 0 ? batched : batch1;
        const serve::ServeReport rep = server.Run(trace);
        Row r;
        r.scenario = sc.name;
        r.mode = mode == 0 ? "batched" : "batch1";
        r.load_x = load;
        r.offered_rps = base_rps * load;
        r.throughput_rps = rep.ThroughputRps();
        r.p50_us = rep.LatencyQuantileUs(0.5);
        r.p99_us = rep.LatencyQuantileUs(0.99);
        r.shed_fraction = rep.ShedFraction();
        r.mean_batch = rep.MeanBatchSize();
        r.completed = rep.completed;
        r.shed = rep.shed;
        std::printf(
            "  %-10s %-7s load=%4.2fx offered=%8.1f rps tput=%8.1f rps p50=%9.1fus "
            "p99=%9.1fus shed=%4.1f%% mean_batch=%4.2f\n",
            sc.name.c_str(), r.mode.c_str(), load, r.offered_rps, r.throughput_rps, r.p50_us,
            r.p99_us, 100.0 * r.shed_fraction, r.mean_batch);
        rows.push_back(std::move(r));
      }
    }
    // Headline ratio at the highest load (equal offered load, both modes).
    const Row& rb = rows[rows.size() - 2];
    const Row& r1 = rows[rows.size() - 1];
    std::printf("  %-10s batched/batch1 throughput at %.2fx load: %.2fx\n", sc.name.c_str(),
                rb.load_x, rb.throughput_rps / r1.throughput_rps);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"schema\": \"ulayer-serving-bench-v1\",\n  \"isa\": \"%s\",\n"
               "  \"quick\": %s,\n  \"threads\": %d,\n  \"soc\": \"exynos7420\",\n"
               "  \"config\": \"pf\",\n  \"batch_efficiency\": [\n",
               isa, quick ? "true" : "false", threads);
  for (size_t i = 0; i < eff.size(); ++i) {
    const EffRow& e = eff[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"image_hw\": %d, \"batch\": %d, "
                 "\"service_us\": %.3f, \"speedup_vs_batch1\": %.4f}%s\n",
                 e.model.c_str(), e.image_hw, e.batch, e.service_us, e.speedup,
                 i + 1 < eff.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    // Each row repeats the run provenance (isa/quick/threads) so rows stay
    // self-describing when results from different runs are merged.
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"mode\": \"%s\", \"load_x\": %.3f, "
                 "\"offered_rps\": %.3f, \"throughput_rps\": %.3f, \"p50_us\": %.3f, "
                 "\"p99_us\": %.3f, \"shed_fraction\": %.5f, \"mean_batch\": %.4f, "
                 "\"completed\": %lld, \"shed\": %lld, "
                 "\"isa\": \"%s\", \"quick\": %s, \"threads\": %d}%s\n",
                 r.scenario.c_str(), r.mode.c_str(), r.load_x, r.offered_rps, r.throughput_rps,
                 r.p50_us, r.p99_us, r.shed_fraction, r.mean_batch,
                 static_cast<long long>(r.completed), static_cast<long long>(r.shed), isa,
                 quick ? "true" : "false", threads, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  return 0;
}

}  // namespace ulayer

int main(int argc, char** argv) { return ulayer::Main(argc, argv); }
