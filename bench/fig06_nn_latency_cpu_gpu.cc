// Figure 6: whole-NN execution latency on the CPUs and GPUs of both SoCs
// (F32). Expected shape: the two processors achieve comparable latency —
// the premise of cooperative single-layer acceleration (Section 3.1).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ulayer {
namespace {

void PrintFigure6() {
  benchutil::PrintHeader("Figure 6: NN execution latency, CPU vs GPU (F32)",
                         "Kim et al., EuroSys'19, Figure 6 (Section 3.1)");
  const std::vector<Model> models = MakeEvaluationModels();
  for (const SocSpec& soc : benchutil::BothSocs()) {
    std::printf("\n--- %s ---\n", benchutil::SocLabel(soc));
    std::printf("%-16s %10s %10s %10s\n", "network", "CPU ms", "GPU ms", "CPU/GPU");
    for (const Model& m : models) {
      const double cpu =
          RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllF32()).latency_ms();
      const double gpu =
          RunSingleProcessor(m, soc, ProcKind::kGpu, ExecConfig::AllF32()).latency_ms();
      std::printf("%-16s %10.1f %10.1f %10.2f\n", m.name.c_str(), cpu, gpu, cpu / gpu);
    }
  }
  std::printf("\nExpected shape: ratios near 1 on both SoCs -> well-balanced "
              "processors (paper's premise for cooperative acceleration).\n");
}

void BM_WholeNetworkSimulation(benchmark::State& state) {
  const Model m = MakeGoogLeNet();
  const SocSpec soc = MakeExynos7420();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllF32()).latency_us);
  }
}
BENCHMARK(BM_WholeNetworkSimulation);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintFigure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
