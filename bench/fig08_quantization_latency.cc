// Figure 8: impact of quantization (F32 / F16 / QUInt8) on NN execution
// latency per processor, normalized to CPU-F32.
//
// Expected shape (Section 4.1): the CPU gains a lot from QUInt8 and nothing
// from F16 (no vector F16 ALUs); the GPU gains from F16 while QUInt8 hurts
// it relative to F16 (32-bit accumulation halves concurrency).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ulayer {
namespace {

void PrintFigure8() {
  benchutil::PrintHeader("Figure 8: quantization impact on latency",
                         "Kim et al., EuroSys'19, Figure 8 (Section 4.1)");
  const std::vector<Model> models = MakeEvaluationModels();
  const struct {
    const char* label;
    ExecConfig config;
  } dtypes[] = {{"F32", ExecConfig::AllF32()},
                {"F16", ExecConfig::AllF16()},
                {"QUInt8", ExecConfig::AllQU8()}};
  for (const SocSpec& soc : benchutil::BothSocs()) {
    std::printf("\n--- %s (normalized to CPU-F32; lower is better) ---\n",
                benchutil::SocLabel(soc));
    std::printf("%-16s | %6s %6s %6s | %6s %6s %6s\n", "network", "C-F32", "C-F16", "C-U8",
                "G-F32", "G-F16", "G-U8");
    for (const Model& m : models) {
      const double base =
          RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllF32()).latency_us;
      double row[2][3];
      for (int pi = 0; pi < 2; ++pi) {
        for (int di = 0; di < 3; ++di) {
          const ProcKind proc = pi == 0 ? ProcKind::kCpu : ProcKind::kGpu;
          row[pi][di] = RunSingleProcessor(m, soc, proc, dtypes[di].config).latency_us / base;
        }
      }
      std::printf("%-16s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n", m.name.c_str(), row[0][0],
                  row[0][1], row[0][2], row[1][0], row[1][1], row[1][2]);
    }
  }
  std::printf("\nExpected shape: C-U8 << C-F32 ~= C-F16; G-F16 < G-F32 and G-F16 < G-U8.\n");
}

void BM_DtypeSweepSimulation(benchmark::State& state) {
  const Model m = MakeMobileNetV1();
  const SocSpec soc = MakeExynos7880();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunSingleProcessor(m, soc, ProcKind::kGpu, ExecConfig::AllF16()).latency_us);
  }
}
BENCHMARK(BM_DtypeSweepSimulation);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintFigure8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
