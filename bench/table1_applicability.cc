// Table 1: the evaluated NNs and which of ulayer's mechanisms apply to each.
// Channel-wise distribution and processor-friendly quantization apply to all
// five; branch distribution applies only to NNs with divergent branches
// (GoogLeNet, SqueezeNet v1.1).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "nn/branch.h"
#include "soc/work.h"

namespace ulayer {
namespace {

void PrintTable1() {
  benchutil::PrintHeader("Table 1: evaluated NNs and mechanism applicability",
                         "Kim et al., EuroSys'19, Table 1 (Section 7.1)");
  std::printf("%-16s %10s %10s %10s | %9s %8s %8s\n", "network", "Ch.Dist", "Pr.Quant",
              "Br.Dist", "params M", "GMACs", "branches");
  for (const Model& m : MakeEvaluationModels()) {
    const bool branchy = HasBranches(m.graph);
    const auto groups = FindBranchGroups(m.graph);
    std::printf("%-16s %10s %10s %10s | %9.2f %8.2f %8zu\n", m.name.c_str(), "yes", "yes",
                branchy ? "yes" : "-", static_cast<double>(m.ParameterCount()) / 1e6,
                TotalMacs(m.graph) / 1e9, groups.size());
  }
  std::printf("\npaper Table 1: Br.Dist applies to GoogLeNet and SqueezeNet only.\n");
}

void BM_BranchDetection(benchmark::State& state) {
  const Model m = MakeGoogLeNet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindBranchGroups(m.graph).size());
  }
}
BENCHMARK(BM_BranchDetection);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
