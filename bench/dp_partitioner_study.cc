// Planner study: greedy per-layer planning (the paper's partitioner) vs
// sync-aware dynamic programming, for both the layer-to-processor baseline
// and full ulayer. Quantifies how much of the baseline's weakness is
// planner myopia (cross-layer sync blindness) rather than the mechanism.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/dp_partitioner.h"

namespace ulayer {
namespace {

double Measure(const Model& m, const SocSpec& soc, const ExecConfig& cfg, const Plan& plan,
               int* syncs = nullptr) {
  PreparedModel pm(m, cfg);
  Executor ex(pm, soc);
  const RunResult r = ex.Run(plan);
  if (syncs != nullptr) {
    *syncs = r.sync_count;
  }
  return r.latency_us;
}

void PrintStudy() {
  benchutil::PrintHeader("Planner study: greedy vs sync-aware DP partitioning",
                         "extension of Kim et al., EuroSys'19, Section 6");
  for (const SocSpec& soc : benchutil::BothSocs()) {
    std::printf("\n--- %s (ms; L2P = no channel split) ---\n", benchutil::SocLabel(soc));
    std::printf("%-16s %12s %12s | %12s %12s %10s\n", "network", "L2P greedy", "L2P DP",
                "uL greedy", "uL DP", "uL syncs");
    for (const Model& m : MakeEvaluationModels()) {
      const ExecConfig l2p_cfg = ExecConfig::AllQU8();
      const ExecConfig ul_cfg = ExecConfig::ProcessorFriendly();
      const TimingModel tm(soc);
      const LatencyPredictor pred_l2p(tm, l2p_cfg, {&m.graph});
      const LatencyPredictor pred_ul(tm, ul_cfg, {&m.graph});

      Partitioner::Options g_l2p;
      g_l2p.channel_distribution = false;
      g_l2p.branch_distribution = false;
      DpPartitioner::Options d_l2p;
      d_l2p.channel_distribution = false;
      d_l2p.branch_distribution = false;

      const double t1 = Measure(
          m, soc, l2p_cfg, Partitioner(m.graph, tm, l2p_cfg, pred_l2p, g_l2p).Build());
      const double t2 = Measure(
          m, soc, l2p_cfg, DpPartitioner(m.graph, tm, l2p_cfg, pred_l2p, d_l2p).Build());
      int syncs_greedy = 0, syncs_dp = 0;
      const double t3 = Measure(m, soc, ul_cfg,
                                Partitioner(m.graph, tm, ul_cfg, pred_ul).Build(), &syncs_greedy);
      const double t4 = Measure(
          m, soc, ul_cfg, DpPartitioner(m.graph, tm, ul_cfg, pred_ul).Build(), &syncs_dp);
      std::printf("%-16s %12.2f %12.2f | %12.2f %12.2f %4d->%-4d\n", m.name.c_str(), t1 * 1e-3,
                  t2 * 1e-3, t3 * 1e-3, t4 * 1e-3, syncs_greedy, syncs_dp);
    }
  }
  std::printf("\nShape: DP wins concentrate where greedy plans bounce between\n"
              "processors (sync-heavy nets); small regressions elsewhere come\n"
              "from optimizing predicted rather than executed cost.\n");
}

void BM_DpPlanning(benchmark::State& state) {
  const Model m = MakeGoogLeNet();
  const SocSpec soc = MakeExynos7420();
  const TimingModel tm(soc);
  const ExecConfig cfg = ExecConfig::ProcessorFriendly();
  const LatencyPredictor pred(tm, cfg, {&m.graph});
  for (auto _ : state) {
    benchmark::DoNotOptimize(DpPartitioner(m.graph, tm, cfg, pred).Build().nodes.size());
  }
}
BENCHMARK(BM_DpPlanning);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
