// Figure 18: energy consumption of the single-processor mechanism, the
// layer-to-processor mechanism and ulayer, normalized to layer-to-processor.
//
// Paper: ulayer improves energy efficiency by geomeans of 1.26x (high-end)
// and 1.34x (mid-range) over layer-to-processor, and is comparable to the
// single-processor mechanism.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ulayer {
namespace {

void PrintFigure18() {
  benchutil::PrintHeader("Figure 18: energy consumption",
                         "Kim et al., EuroSys'19, Figure 18 (Section 7.3)");
  const std::vector<Model> models = MakeEvaluationModels();
  for (const SocSpec& soc : benchutil::BothSocs()) {
    std::printf("\n--- %s (energy normalized to layer-to-processor) ---\n",
                benchutil::SocLabel(soc));
    std::printf("%-16s %9s %9s %9s %9s | %11s\n", "network", "CPU-U8", "GPU-F16", "L2P-U8",
                "uLayer", "uLayer mJ");
    std::vector<double> gains;
    for (const Model& m : models) {
      const double cpu =
          RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllQU8()).total_energy_mj;
      const double gpu =
          RunSingleProcessor(m, soc, ProcKind::kGpu, ExecConfig::AllF16()).total_energy_mj;
      const double l2p = RunLayerToProcessor(m, soc, ExecConfig::AllQU8()).total_energy_mj;
      ULayerRuntime rt(m, soc);
      const double ul = rt.Run().total_energy_mj;
      gains.push_back(l2p / ul);
      std::printf("%-16s %9.2f %9.2f %9.2f %9.2f | %11.1f\n", m.name.c_str(), cpu / l2p,
                  gpu / l2p, 1.0, ul / l2p, ul);
    }
    std::printf("geomean energy-efficiency gain over layer-to-processor: %.2fx "
                "(paper: %s)\n",
                benchutil::GeoMean(gains),
                soc.name == "Exynos7420" ? "1.26x" : "1.34x");
  }
}

void BM_EnergyAccounting(benchmark::State& state) {
  const Model m = MakeVgg16();
  const SocSpec soc = MakeExynos7880();
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  Executor ex(pm, soc);
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kCpu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.Run(plan).total_energy_mj);
  }
}
BENCHMARK(BM_EnergyAccounting);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintFigure18();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
