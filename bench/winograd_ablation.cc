// Algorithm-choice ablation: GEMM (im2col) vs Winograd F(2x2,3x3) lowering
// for the 3x3 stride-1 convolutions of the evaluation networks, under the
// SoC cost model. ARM Compute Library makes this choice per layer on real
// hardware; the ablation shows where Winograd's 2.25x multiply reduction
// survives its extra transform traffic.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "kernels/winograd.h"
#include "soc/timing.h"

namespace ulayer {
namespace {

void PrintAblation() {
  benchutil::PrintHeader("Algorithm ablation: GEMM vs Winograd for 3x3/s1 convs",
                         "substrate study (ACL-style algorithm choice)");
  for (const SocSpec& soc : benchutil::BothSocs()) {
    const TimingModel tm(soc);
    std::printf("\n--- %s (CPU F32; eligible layers only) ---\n", benchutil::SocLabel(soc));
    std::printf("%-16s %10s %10s %10s %10s\n", "network", "#eligible", "GEMM ms", "Wino ms",
                "speedup");
    for (const Model& m : MakeEvaluationModels()) {
      double gemm_us = 0.0;
      double wino_us = 0.0;
      int eligible = 0;
      for (const Node& n : m.graph.nodes()) {
        if (n.desc.kind != LayerKind::kConv || !WinogradApplicable(n.desc.conv)) {
          continue;
        }
        ++eligible;
        gemm_us += tm.KernelLatencyUs(ComputeWork(m.graph, n, DType::kF32), ProcKind::kCpu,
                                      DType::kF32);
        wino_us += tm.KernelLatencyUs(WinogradConvWork(m.graph, n, DType::kF32), ProcKind::kCpu,
                                      DType::kF32);
      }
      if (eligible == 0) {
        std::printf("%-16s %10d %10s %10s %10s\n", m.name.c_str(), 0, "-", "-", "-");
        continue;
      }
      std::printf("%-16s %10d %10.2f %10.2f %9.2fx\n", m.name.c_str(), eligible, gemm_us * 1e-3,
                  wino_us * 1e-3, gemm_us / wino_us);
    }
  }
  std::printf("\nShape: compute-bound 3x3 stacks (VGG-16) gain ~1.5-2x; memory-\n"
              "bound or 1x1-heavy nets gain little (no eligible layers in\n"
              "MobileNet's pointwise stack).\n");
}

void BM_WinogradKernelHostCost(benchmark::State& state) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in(Shape(1, 16, 28, 28), DType::kF32);
  Tensor w(Shape(16, 16, 3, 3), DType::kF32);
  Tensor bias(Shape(1, 16, 1, 1), DType::kF32);
  FillUniform(in, 1);
  FillUniform(w, 2, -0.5f, 0.5f);
  FillUniform(bias, 3);
  Tensor out(Shape(1, 16, 28, 28), DType::kF32);
  for (auto _ : state) {
    WinogradConv2DF32(in, w, bias, p, out);
    benchmark::DoNotOptimize(out.raw());
  }
}
BENCHMARK(BM_WinogradKernelHostCost);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
