// Figure 5: per-layer execution latency of VGG-16 on the CPU and the GPU of
// both SoCs (F32, ARM Compute Library setting of the paper's Section 3.1).
//
// Expected shape: on the high-end SoC the GPU is ~1.40x faster on average;
// on the mid-range SoC the CPU is ~26% faster overall.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "soc/timing.h"
#include "soc/work.h"

namespace ulayer {
namespace {

void PrintFigure5() {
  benchutil::PrintHeader("Figure 5: VGG-16 per-layer latency, CPU vs GPU",
                         "Kim et al., EuroSys'19, Figure 5 (Section 3.1)");
  const Model vgg = MakeVgg16();
  for (const SocSpec& soc : benchutil::BothSocs()) {
    const TimingModel tm(soc);
    std::printf("\n--- %s: VGG-16 per-layer latency (F32), ms ---\n",
                benchutil::SocLabel(soc));
    std::printf("%-12s %10s %10s %8s\n", "layer", "CPU", "GPU", "GPU/CPU");
    double cpu_total = 0.0, gpu_total = 0.0;
    std::vector<double> speedups;
    for (const Node& n : vgg.graph.nodes()) {
      if (n.desc.kind != LayerKind::kConv && n.desc.kind != LayerKind::kFullyConnected) {
        continue;
      }
      const LayerWork w = ComputeWork(vgg.graph, n, DType::kF32);
      const double cpu = tm.KernelLatencyUs(w, ProcKind::kCpu, DType::kF32) * 1e-3;
      const double gpu = tm.KernelLatencyUs(w, ProcKind::kGpu, DType::kF32) * 1e-3;
      cpu_total += cpu;
      gpu_total += gpu;
      speedups.push_back(cpu / gpu);
      std::printf("%-12s %10.2f %10.2f %8.2fx\n", n.desc.name.c_str(), cpu, gpu, cpu / gpu);
    }
    std::printf("%-12s %10.2f %10.2f\n", "TOTAL", cpu_total, gpu_total);
    std::printf("average GPU speedup over CPU: %.2fx (paper: 1.40x high-end; "
                "CPU 26.1%% faster mid-range)\n",
                benchutil::GeoMean(speedups));
    std::printf("whole-network: CPU is %+.1f%% vs GPU\n",
                (gpu_total - cpu_total) / gpu_total * 100.0);
  }
}

// Host-side cost of evaluating the analytic model over all VGG-16 layers.
void BM_PerLayerTiming(benchmark::State& state) {
  const Model vgg = MakeVgg16();
  const TimingModel tm(MakeExynos7420());
  for (auto _ : state) {
    double total = 0.0;
    for (const Node& n : vgg.graph.nodes()) {
      const LayerWork w = ComputeWork(vgg.graph, n, DType::kF32);
      total += tm.KernelLatencyUs(w, ProcKind::kCpu, DType::kF32);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PerLayerTiming);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintFigure5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
