// Figure 10: impact of quantization on classification accuracy.
//
// Substitution (DESIGN.md Section 2): we have no ImageNet weights, so the
// proxy is *prediction agreement with the F32 reference* over randomized
// inputs, with deterministic synthetic weights. The paper's mechanism is
// preserved: F16 is essentially lossless, naive post-training QUInt8
// (ranges from a single batch) degrades, and calibrated ranges (the paper's
// QUInt8+FakeQuant retraining) recover most of the loss.
//
// Networks run at reduced resolution so the bit-accurate functional kernels
// (including software F16) finish in seconds; the structure is unchanged.
#include <benchmark/benchmark.h>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "core/reference.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

std::vector<Tensor> MakeInputs(const Shape& shape, int count, uint64_t seed) {
  std::vector<Tensor> v;
  for (int i = 0; i < count; ++i) {
    Tensor t(shape, DType::kF32);
    FillUniform(t, seed + static_cast<uint64_t>(i), -1.0f, 1.0f);
    v.push_back(std::move(t));
  }
  return v;
}

struct Agreement {
  double top1 = 0.0;     // Fraction of inputs whose argmax matches F32.
  double top5 = 0.0;     // Mean overlap of top-5 sets with F32.
};

Agreement Score(const std::vector<Tensor>& outputs, const std::vector<Tensor>& refs) {
  Agreement a;
  for (size_t i = 0; i < outputs.size(); ++i) {
    a.top1 += Argmax(outputs[i]) == Argmax(refs[i]) ? 1.0 : 0.0;
    const auto t5q = TopK(outputs[i], 5);
    const auto t5r = TopK(refs[i], 5);
    int overlap = 0;
    for (int64_t x : t5q) {
      for (int64_t y : t5r) {
        overlap += x == y ? 1 : 0;
      }
    }
    a.top5 += overlap / 5.0;
  }
  a.top1 /= static_cast<double>(outputs.size());
  a.top5 /= static_cast<double>(outputs.size());
  return a;
}

void RunModel(Model m, const Shape& in_shape, int n_test, bool include_f16) {
  m.MaterializeWeights();
  const SocSpec soc = MakeExynos7420();
  const auto calib = MakeInputs(in_shape, 6, 9000);
  const auto tests = MakeInputs(in_shape, n_test, 100);

  // F32 reference outputs.
  std::vector<Tensor> refs;
  for (const Tensor& in : tests) {
    refs.push_back(ForwardF32(m, in).back());
  }

  auto run_cfg = [&](const ExecConfig& cfg, const std::vector<Tensor>& calib_set) {
    PreparedModel pm(m, cfg);
    if (cfg.storage == DType::kQUInt8) {
      pm.Calibrate(calib_set);
    }
    Executor ex(pm, soc);
    const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kCpu);
    std::vector<Tensor> outs;
    for (const Tensor& in : tests) {
      outs.push_back(*ex.Run(plan, &in).output);
    }
    return Score(outs, refs);
  };

  std::printf("%-18s", m.name.c_str());
  if (include_f16) {
    const Agreement f16 = run_cfg(ExecConfig::AllF16(), {});
    std::printf(" | F16: top1 %5.1f%% top5 %5.1f%%", f16.top1 * 100, f16.top5 * 100);
  } else {
    std::printf(" | F16: (skipped: host cost)      ");
  }
  const Agreement naive = run_cfg(ExecConfig::AllQU8(), {calib[0]});
  std::printf(" | QUInt8(naive): %5.1f%%/%5.1f%%", naive.top1 * 100, naive.top5 * 100);
  const Agreement calibd = run_cfg(ExecConfig::AllQU8(), calib);
  std::printf(" | QUInt8+Calib: %5.1f%%/%5.1f%%\n", calibd.top1 * 100, calibd.top5 * 100);
}

void PrintFigure10() {
  benchutil::PrintHeader(
      "Figure 10: quantization impact on accuracy (agreement-with-F32 proxy)",
      "Kim et al., EuroSys'19, Figure 10 (Section 4.3)");
  std::printf("Agreement of the quantized network's predictions with the F32\n"
              "reference (top1%%/top5-overlap%%); F32 itself is 100%% by "
              "definition.\n\n");
  RunModel(MakeLeNet5(), Shape(1, 1, 28, 28), 12, /*include_f16=*/true);
  RunModel(MakeSqueezeNetV11(1, 64), Shape(1, 3, 64, 64), 8, /*include_f16=*/true);
  RunModel(MakeMobileNetV1(1, 64), Shape(1, 3, 64, 64), 8, /*include_f16=*/true);
  RunModel(MakeGoogLeNet(1, 64), Shape(1, 3, 64, 64), 6, /*include_f16=*/true);
  std::printf("\nExpected shape: F16 ~lossless; naive QUInt8 degrades (more on "
              "deeper nets); calibration recovers most of it (paper: max 2.7%%p "
              "loss after fake-quant retraining).\n");
}

void BM_QuantizedForwardLeNet(benchmark::State& state) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  PreparedModel pm(m, ExecConfig::AllQU8());
  pm.Calibrate(MakeInputs(Shape(1, 1, 28, 28), 2, 1));
  Executor ex(pm, MakeExynos7420());
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kCpu);
  Tensor in(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(in, 2, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.Run(plan, &in).output->raw());
  }
}
BENCHMARK(BM_QuantizedForwardLeNet);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintFigure10();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
