// Implementation study: fidelity of the Neurosurgeon-style latency
// predictor (Section 6) and its effect on plan quality, versus an oracle
// partitioner that queries the timing model directly.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ulayer {
namespace {

void PrintFidelity() {
  benchutil::PrintHeader("Latency-predictor fidelity and plan-quality impact",
                         "Kim et al., EuroSys'19, Section 6 (implementation study)");
  std::printf("%-16s %-12s %12s %12s | %12s %12s %8s\n", "network", "SoC", "mean |err|",
              "max |err|", "pred ms", "oracle ms", "gap");
  for (const SocSpec& soc : benchutil::BothSocs()) {
    for (const Model& m : MakeEvaluationModels()) {
      const ExecConfig cfg = ExecConfig::ProcessorFriendly();
      const TimingModel tm(soc);
      const LatencyPredictor pred(tm, cfg, {&m.graph});
      const auto fid = pred.Evaluate(m.graph);

      ULayerRuntime::Options with_pred;
      ULayerRuntime::Options with_oracle;
      with_oracle.partitioner.use_oracle = true;
      const double t_pred = ULayerRuntime(m, soc, with_pred).Run().latency_us;
      const double t_oracle = ULayerRuntime(m, soc, with_oracle).Run().latency_us;
      std::printf("%-16s %-12s %11.1f%% %11.1f%% | %12.1f %12.1f %+7.1f%%\n", m.name.c_str(),
                  soc.name.c_str(), fid.mean_abs_rel_err * 100.0, fid.max_abs_rel_err * 100.0,
                  t_pred * 1e-3, t_oracle * 1e-3, (t_pred / t_oracle - 1.0) * 100.0);
    }
  }
  std::printf("\nShape: regression error is tolerable; plans built from the\n"
              "predictor stay within a few percent of oracle plans.\n");
}

void BM_PredictorFit(benchmark::State& state) {
  const Model m = MakeGoogLeNet();
  const TimingModel tm(MakeExynos7420());
  for (auto _ : state) {
    const LatencyPredictor pred(tm, ExecConfig::ProcessorFriendly(), {&m.graph});
    benchmark::DoNotOptimize(pred.Evaluate(m.graph).mean_abs_rel_err);
  }
}
BENCHMARK(BM_PredictorFit);

}  // namespace
}  // namespace ulayer

int main(int argc, char** argv) {
  ulayer::PrintFidelity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
