// Distributed split-inference bench: latency scaling, pipeline throughput
// and fault-recovery overhead over the simulated cluster (DESIGN.md §15).
//
// Three sections, all deterministic (simulated link/worker timelines):
//   scaling   - single-item latency of the channel-distribution plan as the
//               worker count grows, per zoo model. Links are what a SoC
//               never pays, so small models stop scaling (or regress) early
//               while conv-heavy models keep absorbing workers.
//   pipeline  - throughput of the stage-partitioned plan streaming a burst
//               of items, vs the channel plan run back-to-back.
//   faults    - functional runs under committed fault specs (worker death,
//               message drops, both) with the output digest checked against
//               the fault-free run at every node count: recovery must be
//               byte-identical, faults may only cost latency.
//
// Flags:
//   --quick       fewer models x node counts (CI smoke mode)
//   --out PATH    JSON output path (default: BENCH_net.json)

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "kernels/simd.h"
#include "net/coordinator.h"
#include "parallel/thread_pool.h"
#include "serve/model_cache.h"

namespace ulayer {
namespace {

struct ScaleRow {
  std::string model;
  int nodes = 0;
  double latency_us = 0.0;
  double speedup_vs_1 = 0.0;
  int64_t messages = 0;
  int64_t wire_bytes = 0;
};

struct PipeRow {
  std::string model;
  int nodes = 0;
  int items = 0;
  double channel_tput_s = 0.0;   // Channel plan, items run back-to-back.
  double pipeline_tput_s = 0.0;  // Stage-partitioned plan, items streamed.
  double bottleneck_us = 0.0;
};

struct FaultRow {
  std::string model;
  int nodes = 0;
  std::string spec;
  double latency_us = 0.0;
  double overhead_x = 0.0;  // vs the fault-free run at the same node count.
  int reroutes = 0;
  int retransmits = 0;
  int worker_deaths = 0;
  bool digest_match = false;
  bool verify_ok = false;
};

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const char* isa = simd::IsaName(simd::ActiveIsa());
  const int threads = parallel::CpuThreads();
  const ExecConfig config = ExecConfig::ProcessorFriendly();

  struct ModelSel {
    std::string family;
    int image_hw = 0;
  };
  const std::vector<ModelSel> scale_models =
      quick ? std::vector<ModelSel>{{"lenet5", 0}, {"alexnet", 64}}
            : std::vector<ModelSel>{{"lenet5", 0}, {"alexnet", 64}, {"squeezenet", 112},
                                    {"mobilenet", 112}};
  const std::vector<int> node_counts =
      quick ? std::vector<int>{1, 2, 3} : std::vector<int>{1, 2, 3, 4, 6};
  const int pipe_items = quick ? 8 : 32;

  std::vector<ScaleRow> scale_rows;
  std::vector<PipeRow> pipe_rows;
  std::vector<FaultRow> fault_rows;

  std::printf("net bench: config=pf isa=%s threads=%d %s\n", isa, threads,
              quick ? "(quick)" : "");

  // --- scaling + pipeline (timing-only; no weights needed) -------------------
  for (const ModelSel& sel : scale_models) {
    const Model model = serve::MakeZooModel(sel.family, 1, sel.image_hw);
    const PreparedModel prepared(model, config);
    const std::string label =
        sel.image_hw > 0 ? sel.family + "@" + std::to_string(sel.image_hw) : sel.family;
    double latency1 = 0.0;
    for (int n : node_counts) {
      const net::ClusterSpec cluster = net::MakeUniformCluster(n);
      const net::NetPartitioner part(model.graph, cluster);
      net::Coordinator coord(prepared, cluster);
      const net::NetRunResult r = coord.Run(part.Build());
      if (n == node_counts.front()) {
        latency1 = r.latency_us;
      }
      ScaleRow row;
      row.model = label;
      row.nodes = n;
      row.latency_us = r.latency_us;
      row.speedup_vs_1 = latency1 / r.latency_us;
      row.messages = r.wire_messages;
      row.wire_bytes = r.wire_bytes;
      std::printf("  scale %-14s n=%d latency=%10.1fus speedup=%5.2fx msgs=%4lld wire=%9lldB\n",
                  label.c_str(), n, row.latency_us, row.speedup_vs_1,
                  static_cast<long long>(row.messages), static_cast<long long>(row.wire_bytes));
      scale_rows.push_back(std::move(row));

      if (n >= 2) {
        const net::NetPlan pipe = part.BuildPipeline(n);
        const net::PipelineResult pr = coord.RunPipeline(pipe, pipe_items);
        PipeRow prow;
        prow.model = label;
        prow.nodes = n;
        prow.items = pipe_items;
        prow.channel_tput_s = 1e6 / r.latency_us;
        prow.pipeline_tput_s = pr.throughput_per_s;
        prow.bottleneck_us = pr.bottleneck_us;
        std::printf("  pipe  %-14s n=%d items=%d channel=%8.1f/s pipeline=%8.1f/s "
                    "bottleneck=%9.1fus\n",
                    label.c_str(), n, pipe_items, prow.channel_tput_s, prow.pipeline_tput_s,
                    prow.bottleneck_us);
        pipe_rows.push_back(std::move(prow));
      }
    }
  }

  // --- fault recovery (functional; byte-identity is the headline) -----------
  const std::vector<ModelSel> fault_models =
      quick ? std::vector<ModelSel>{{"lenet5", 0}}
            : std::vector<ModelSel>{{"lenet5", 0}, {"alexnet", 64}};
  const std::vector<std::string> fault_specs = {
      "seed=7;net.worker@id:1=death",
      "seed=7;net.link@id:0@prob:0.3=drop",
      "seed=7;net.link@id:0@call:2=drop;net.worker@id:1=death",
  };
  const std::vector<int> fault_nodes = quick ? std::vector<int>{2, 3} : std::vector<int>{2, 3, 4};
  for (const ModelSel& sel : fault_models) {
    Model model = serve::MakeZooModel(sel.family, 1, sel.image_hw);
    model.MaterializeWeights();
    PreparedModel prepared(model, config);
    if (config.storage == DType::kQUInt8) {
      std::vector<Tensor> calib;
      for (int i = 0; i < 2; ++i) {
        Tensor t(model.graph.node(0).out_shape, DType::kF32);
        FillUniform(t, 0xca11 + static_cast<uint64_t>(i));
        calib.push_back(std::move(t));
      }
      prepared.Calibrate(calib);
    }
    Tensor input(model.graph.node(0).out_shape, DType::kF32);
    FillUniform(input, 0x5eed);
    const std::string label =
        sel.image_hw > 0 ? sel.family + "@" + std::to_string(sel.image_hw) : sel.family;
    for (int n : fault_nodes) {
      const net::ClusterSpec cluster = net::MakeUniformCluster(n);
      // Even distribution so every worker participates and faults engage.
      const net::NetPlan plan = net::MakeEvenPlan(model.graph, n);
      net::Coordinator coord(prepared, cluster);
      const net::NetRunResult clean = coord.Run(plan, &input);
      for (const std::string& spec : fault_specs) {
        coord.SetFaultPlan(fault::FaultPlan::Parse(spec));
        const net::NetRunResult r = coord.Run(plan, &input);
        coord.SetFaultPlan(fault::FaultPlan{});
        FaultRow row;
        row.model = label;
        row.nodes = n;
        row.spec = spec;
        row.latency_us = r.latency_us;
        row.overhead_x = r.latency_us / clean.latency_us;
        row.reroutes = r.degradation.reroutes;
        row.retransmits = r.degradation.retransmits;
        row.worker_deaths = r.degradation.worker_deaths;
        row.digest_match = r.output_digest == clean.output_digest;
        row.verify_ok = net::VerifyNetRun(model.graph, cluster, r).ok();
        std::printf("  fault %-14s n=%d %-48s latency=%10.1fus overhead=%5.2fx "
                    "reroutes=%d retrans=%d digest=%s verify=%s\n",
                    label.c_str(), n, spec.c_str(), row.latency_us, row.overhead_x, row.reroutes,
                    row.retransmits, row.digest_match ? "match" : "MISMATCH",
                    row.verify_ok ? "ok" : "FAIL");
        fault_rows.push_back(std::move(row));
      }
    }
  }

  bool all_match = true;
  for (const FaultRow& row : fault_rows) {
    all_match = all_match && row.digest_match && row.verify_ok;
  }
  std::printf("fault recovery byte-identity: %s\n", all_match ? "all match" : "MISMATCH");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"schema\": \"ulayer-net-bench-v1\",\n  \"isa\": \"%s\",\n"
               "  \"quick\": %s,\n  \"threads\": %d,\n  \"config\": \"pf\",\n"
               "  \"scaling\": [\n",
               isa, quick ? "true" : "false", threads);
  for (size_t i = 0; i < scale_rows.size(); ++i) {
    const ScaleRow& r = scale_rows[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"nodes\": %d, \"latency_us\": %.3f, "
                 "\"speedup_vs_1\": %.4f, \"messages\": %lld, \"wire_bytes\": %lld}%s\n",
                 r.model.c_str(), r.nodes, r.latency_us, r.speedup_vs_1,
                 static_cast<long long>(r.messages), static_cast<long long>(r.wire_bytes),
                 i + 1 < scale_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"pipeline\": [\n");
  for (size_t i = 0; i < pipe_rows.size(); ++i) {
    const PipeRow& r = pipe_rows[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"nodes\": %d, \"items\": %d, "
                 "\"channel_tput_s\": %.3f, \"pipeline_tput_s\": %.3f, "
                 "\"bottleneck_us\": %.3f}%s\n",
                 r.model.c_str(), r.nodes, r.items, r.channel_tput_s, r.pipeline_tput_s,
                 r.bottleneck_us, i + 1 < pipe_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"faults\": [\n");
  for (size_t i = 0; i < fault_rows.size(); ++i) {
    const FaultRow& r = fault_rows[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"nodes\": %d, \"spec\": \"%s\", "
                 "\"latency_us\": %.3f, \"overhead_x\": %.4f, \"reroutes\": %d, "
                 "\"retransmits\": %d, \"worker_deaths\": %d, \"digest_match\": %s, "
                 "\"verify_ok\": %s}%s\n",
                 r.model.c_str(), r.nodes, r.spec.c_str(), r.latency_us, r.overhead_x,
                 r.reroutes, r.retransmits, r.worker_deaths, r.digest_match ? "true" : "false",
                 r.verify_ok ? "true" : "false", i + 1 < fault_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu scaling, %zu pipeline, %zu fault rows)\n", out_path.c_str(),
              scale_rows.size(), pipe_rows.size(), fault_rows.size());
  return all_match ? 0 : 1;
}

}  // namespace ulayer

int main(int argc, char** argv) { return ulayer::Main(argc, argv); }
