#include "models/model.h"

#include <gtest/gtest.h>

#include "core/reference.h"
#include "soc/work.h"

namespace ulayer {
namespace {

TEST(ModelsTest, LeNetShapes) {
  const Model m = MakeLeNet5();
  const Graph& g = m.graph;
  EXPECT_EQ(g.node(g.OutputId()).out_shape, Shape(1, 10, 1, 1));
}

TEST(ModelsTest, AlexNetShapesAndParams) {
  const Model m = MakeAlexNet();
  const Graph& g = m.graph;
  // conv1: 227 -> (227-11)/4+1 = 55.
  EXPECT_EQ(g.node(1).out_shape, Shape(1, 96, 55, 55));
  EXPECT_EQ(g.node(g.OutputId()).out_shape, Shape(1, 1000, 1, 1));
  // Single-tower AlexNet has ~62.4M parameters (the grouped original: 60.9M).
  const double params = static_cast<double>(m.ParameterCount());
  EXPECT_NEAR(params / 1e6, 62.4, 2.0);
}

TEST(ModelsTest, Vgg16ShapesParamsAndMacs) {
  const Model m = MakeVgg16();
  const Graph& g = m.graph;
  EXPECT_EQ(g.node(g.OutputId()).out_shape, Shape(1, 1000, 1, 1));
  // VGG-16: ~138M parameters, ~15.5 GMACs at 224x224.
  EXPECT_NEAR(static_cast<double>(m.ParameterCount()) / 1e6, 138.3, 2.0);
  EXPECT_NEAR(TotalMacs(g) / 1e9, 15.5, 0.5);
}

TEST(ModelsTest, GoogLeNetShapesParamsAndMacs) {
  const Model m = MakeGoogLeNet();
  const Graph& g = m.graph;
  EXPECT_EQ(g.node(g.OutputId()).out_shape, Shape(1, 1000, 1, 1));
  // GoogLeNet: ~7M params, ~1.6 GMACs (with the auxiliary heads removed).
  EXPECT_NEAR(static_cast<double>(m.ParameterCount()) / 1e6, 7.0, 1.0);
  EXPECT_NEAR(TotalMacs(g) / 1e9, 1.6, 0.4);
}

TEST(ModelsTest, SqueezeNetShapesAndParams) {
  const Model m = MakeSqueezeNetV11();
  const Graph& g = m.graph;
  EXPECT_EQ(g.node(g.OutputId()).out_shape, Shape(1, 1000, 1, 1));
  // SqueezeNet v1.1: ~1.24M parameters ("50x fewer than AlexNet").
  EXPECT_NEAR(static_cast<double>(m.ParameterCount()) / 1e6, 1.24, 0.15);
}

TEST(ModelsTest, MobileNetShapesParamsAndMacs) {
  const Model m = MakeMobileNetV1();
  const Graph& g = m.graph;
  EXPECT_EQ(g.node(g.OutputId()).out_shape, Shape(1, 1000, 1, 1));
  // MobileNet v1 1.0: ~4.2M params, ~569M MACs.
  EXPECT_NEAR(static_cast<double>(m.ParameterCount()) / 1e6, 4.2, 0.4);
  EXPECT_NEAR(TotalMacs(g) / 1e9, 0.57, 0.1);
}

TEST(ModelsTest, ReducedResolutionScalesSpatially) {
  const Model m = MakeVgg16(1, 64);
  EXPECT_EQ(m.graph.node(1).out_shape, Shape(1, 64, 64, 64));
  EXPECT_EQ(m.graph.node(m.graph.OutputId()).out_shape, Shape(1, 1000, 1, 1));
}

TEST(ModelsTest, MaterializeWeightsCoversParameterizedLayers) {
  Model m = MakeLeNet5();
  EXPECT_FALSE(m.has_weights());
  m.MaterializeWeights();
  EXPECT_TRUE(m.has_weights());
  int parameterized = 0;
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConv || n.desc.kind == LayerKind::kFullyConnected ||
        n.desc.kind == LayerKind::kDepthwiseConv) {
      ++parameterized;
      ASSERT_TRUE(m.weights.contains(n.id)) << n.desc.name;
      const LayerWeights& w = m.weights.at(n.id);
      EXPECT_EQ(w.filters.dtype(), DType::kF32);
      EXPECT_GT(w.filters.NumElements(), 0);
      EXPECT_EQ(w.bias.NumElements(), n.out_shape.c);
    }
  }
  EXPECT_EQ(parameterized, 5);  // 2 conv + 3 fc.
}

TEST(ModelsTest, WeightsAreDeterministicPerSeed) {
  Model a = MakeLeNet5();
  Model b = MakeLeNet5();
  a.MaterializeWeights(7);
  b.MaterializeWeights(7);
  for (const auto& [id, w] : a.weights) {
    EXPECT_EQ(MaxAbsDiff(w.filters, b.weights.at(id).filters), 0.0f);
  }
  Model c = MakeLeNet5();
  c.MaterializeWeights(8);
  EXPECT_GT(MaxAbsDiff(a.weights.begin()->second.filters,
                       c.weights.at(a.weights.begin()->first).filters),
            0.0f);
}

TEST(ModelsTest, EvaluationSetMatchesTable1) {
  const std::vector<Model> models = MakeEvaluationModels();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_EQ(models[0].name, "GoogLeNet");
  EXPECT_EQ(models[1].name, "SqueezeNet-v1.1");
  EXPECT_EQ(models[2].name, "VGG-16");
  EXPECT_EQ(models[3].name, "AlexNet");
  EXPECT_EQ(models[4].name, "MobileNet-v1");
}

TEST(ModelsTest, DepthwiseWeightShape) {
  Model m = MakeMobileNetV1(1, 32);
  m.MaterializeWeights();
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kDepthwiseConv) {
      const Tensor& f = m.weights.at(n.id).filters;
      const Shape& in = m.graph.node(n.inputs[0]).out_shape;
      EXPECT_EQ(f.shape(), Shape(in.c, 1, 3, 3)) << n.desc.name;
    }
  }
}


TEST(ModelsTest, ResNet18ShapesParamsAndMacs) {
  const Model m = MakeResNet18();
  EXPECT_EQ(m.graph.node(m.graph.OutputId()).out_shape, Shape(1, 1000, 1, 1));
  // ResNet-18: ~11.7M params, ~1.8 GMACs.
  EXPECT_NEAR(static_cast<double>(m.ParameterCount()) / 1e6, 11.7, 1.0);
  EXPECT_NEAR(TotalMacs(m.graph) / 1e9, 1.8, 0.3);
}

TEST(ModelsTest, ResNet50ShapesParamsAndMacs) {
  const Model m = MakeResNet50();
  EXPECT_EQ(m.graph.node(m.graph.OutputId()).out_shape, Shape(1, 1000, 1, 1));
  // ResNet-50: ~25.6M params, ~3.9 GMACs.
  EXPECT_NEAR(static_cast<double>(m.ParameterCount()) / 1e6, 25.6, 1.5);
  EXPECT_NEAR(TotalMacs(m.graph) / 1e9, 3.9, 0.5);
}

TEST(ModelsTest, ResNetFunctionalForwardRuns) {
  Model m = MakeResNet18(1, 32);
  m.MaterializeWeights();
  Tensor in(Shape(1, 3, 32, 32), DType::kF32);
  FillUniform(in, 77, -1.0f, 1.0f);
  const auto act = ForwardF32(m, in);
  const Tensor& probs = act.back();
  float sum = 0.0f;
  for (int64_t i = 0; i < probs.NumElements(); ++i) {
    sum += probs.Data<float>()[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}


TEST(ModelsTest, InceptionV3ShapesParamsAndMacs) {
  const Model m = MakeInceptionV3();
  EXPECT_EQ(m.graph.node(m.graph.OutputId()).out_shape, Shape(1, 1000, 1, 1));
  // Inception-v3: ~23.8M params, ~5.7 G multiply-adds at 299x299
  // (Szegedy et al. report "about 5 billion multiply-adds").
  EXPECT_NEAR(static_cast<double>(m.ParameterCount()) / 1e6, 23.8, 2.0);
  EXPECT_NEAR(TotalMacs(m.graph) / 1e9, 5.7, 0.7);
}

TEST(ModelsTest, InceptionV3UsesRectangularKernels) {
  const Model m = MakeInceptionV3();
  int rect = 0;
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConv &&
        n.desc.conv.kernel_h != n.desc.conv.kernel_w) {
      ++rect;
      // Same-padding invariant: rectangular kernels preserve spatial size.
      const Shape& in = m.graph.node(n.inputs[0]).out_shape;
      EXPECT_EQ(n.out_shape.h, in.h) << n.desc.name;
      EXPECT_EQ(n.out_shape.w, in.w) << n.desc.name;
    }
  }
  EXPECT_GT(rect, 15) << "factorized 1x7/7x1/1x3/3x1 convolutions expected";
}

TEST(ModelsTest, InceptionV3RectConvFunctionalForward) {
  // Small-resolution functional pass through the rectangular-kernel layers.
  Model m = MakeInceptionV3(1, 75);
  m.MaterializeWeights();
  Tensor in(Shape(1, 3, 75, 75), DType::kF32);
  FillUniform(in, 42, -1.0f, 1.0f);
  const auto act = ForwardF32(m, in);
  float sum = 0.0f;
  for (int64_t i = 0; i < act.back().NumElements(); ++i) {
    sum += act.back().Data<float>()[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

}  // namespace
}  // namespace ulayer
